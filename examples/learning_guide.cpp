// The business case of §5: an Intelligent Learning Guide. Simulates an
// emagister-like deployment — synthetic user population with latent
// emotional sensibilities, a course catalog, Gradual EIT delivery
// through push campaigns, reward/punish updates and model-retraining —
// then prints the campaign dashboard a marketing analyst would read.
//
// Build & run:  ./build/examples/learning_guide [users]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "campaign/redemption.h"
#include "campaign/runner.h"
#include "core/spa.h"
#include "sum/human_values.h"

int main(int argc, char** argv) {
  using namespace spa;
  const size_t users =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 10'000;

  core::SpaConfig config;
  config.seed = 42;
  auto platform = std::make_unique<core::Spa>(config);
  campaign::PopulationConfig pop_config;
  pop_config.seed = 42;
  const campaign::PopulationModel population(pop_config);
  const campaign::CourseCatalog courses =
      campaign::CourseCatalog::Generate(
          150, platform->attribute_catalog(), 42);
  const campaign::ResponseModel responses;

  campaign::RunnerConfig runner_config;
  runner_config.seed = 42;
  campaign::CampaignRunner runner(platform.get(), &population, &courses,
                                  &responses, runner_config);
  runner.RegisterCourses();

  std::vector<sum::UserId> everyone;
  for (size_t u = 0; u < users; ++u) {
    everyone.push_back(static_cast<sum::UserId>(u));
  }
  std::printf("bootstrapping %zu users (profiles, browsing history, "
              "EIT warm-up)...\n",
              users);
  runner.BootstrapUsers(everyone);
  std::printf("  lifelog: %zu events, %zu EIT answers recorded\n",
              platform->lifelog()->total_events(),
              static_cast<size_t>(
                  platform->attributes_manager()->stats().eit_answers));

  // Pilot to train the initial model, then three production campaigns.
  const auto schedule = runner.DefaultSchedule(
      users * 42 / 100, 5, campaign::TargetingMode::kRandom);
  campaign::CampaignSpec pilot;
  pilot.id = 0;
  pilot.target_count = users / 10;
  pilot.featured_courses = schedule.front().featured_courses;
  runner.RunCampaign(pilot, everyone);

  std::vector<campaign::CampaignOutcome> outcomes;
  for (int c = 0; c < 3; ++c) {
    outcomes.push_back(runner.RunCampaign(schedule[c], everyone));
  }

  std::printf("\ncampaign dashboard\n");
  std::printf("%-10s %-11s %9s %7s %8s %13s %11s\n", "campaign",
              "channel", "targeted", "opened", "clicked",
              "transactions", "impacts");
  for (const auto& o : outcomes) {
    std::printf("%-10d %-11s %9zu %7zu %8zu %13zu %10.1f%%\n",
                o.campaign_id,
                o.channel == campaign::Channel::kPush ? "push"
                                                      : "newsletter",
                o.targeted, o.opened, o.clicked, o.transactions,
                o.PredictiveScore() * 100.0);
  }

  const campaign::RedemptionReport report =
      campaign::ComputeRedemption(outcomes);
  std::printf("\ntargeting quality: AUC %.3f; top-40%% of the ranking "
              "captures %.0f%% of impacts (+%.0f%% redemption)\n",
              report.auc, report.captured_at_40 * 100.0,
              report.redemption_improvement * 100.0);

  // What the Attributes Manager learned about one engaged user.
  for (sum::UserId u : everyone) {
    const auto model = platform->sum_snapshot()->Get(u);
    if (!model.ok()) continue;
    const auto dominant = model.value()->Dominant(
        sum::AttributeKind::kEmotional, 0.3, 3);
    if (dominant.size() < 2) continue;
    std::printf("\nuser %lld dominant emotional sensibilities:",
                static_cast<long long>(u));
    for (const auto& d : dominant) {
      std::printf("  %s=%.2f",
                  platform->attribute_catalog().def(d.id).name.c_str(),
                  d.sensibility);
    }
    const auto values = sum::ComputeHumanValues(*model.value());
    std::printf("\n  dominant human value: %s\n",
                std::string(sum::HumanValueName(values.Dominant()))
                    .c_str());
    std::printf("  action/preference coherence: %.2f\n",
                sum::CoherenceFunction(*model.value()));
    const agents::ComposedMessage message = platform->MessageFor(
        u, courses.course(0).id, courses.course(0).sellable_attributes);
    std::printf("  next message: \"%s\"\n", message.text.c_str());
    break;
  }
  return 0;
}
