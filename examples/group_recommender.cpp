// Group recommendation with affective state — the research direction the
// paper cites from Masthoff ("The Pursuit of Satisfaction: Affective
// State in Group Recommender Systems", [7]). A family wants to pick a
// course to take together; we aggregate the members' Smart User Models
// under two classic group strategies (average satisfaction and
// least-misery) with the emotion-aware alignment as the satisfaction
// signal, and show how the group's most anxious member vetoes
// high-pressure courses under least-misery.
//
// Build & run:  ./build/examples/group_recommender

#include <algorithm>
#include <cstdio>
#include <vector>

#include "campaign/course.h"
#include "recsys/emotion_aware.h"
#include "sum/sum_service.h"

int main() {
  using namespace spa;

  const sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  sum::SumService members(&catalog);
  auto emo = [&](eit::EmotionalAttribute e) {
    return catalog.EmotionalId(e);
  };

  // The group: an enthusiastic parent, a stimulation-seeking teenager,
  // and a grandparent who is easily frightened by pressure.
  struct Member {
    sum::UserId id;
    const char* name;
  };
  const std::vector<Member> group = {
      {1, "parent"}, {2, "teenager"}, {3, "grandparent"}};
  (void)members.Apply(
      sum::SumUpdate(1)
          .SetSensibility(emo(eit::EmotionalAttribute::kEnthusiastic),
                          0.8)
          .SetSensibility(emo(eit::EmotionalAttribute::kMotivated),
                          0.6));
  (void)members.Apply(
      sum::SumUpdate(2)
          .SetSensibility(emo(eit::EmotionalAttribute::kStimulated),
                          0.9)
          .SetSensibility(emo(eit::EmotionalAttribute::kLively), 0.7));
  (void)members.Apply(
      sum::SumUpdate(3)
          .SetSensibility(emo(eit::EmotionalAttribute::kFrightened),
                          0.85)
          .SetSensibility(emo(eit::EmotionalAttribute::kEmpathic),
                          0.6));

  // One pinned snapshot scores the whole group consistently.
  const sum::SumSnapshotPtr family = members.snapshot();

  // Candidate courses with distinct emotional resonance profiles.
  const campaign::CourseCatalog courses =
      campaign::CourseCatalog::Generate(25, catalog, 77);
  recsys::EmotionAwareReranker reranker({1.0, 0.2});
  for (const auto& course : courses.courses()) {
    reranker.SetItemProfile(course.id, course.emotion_profile);
  }

  // Per-member satisfaction = emotional alignment in [-1, 1].
  std::printf("per-member alignment (first 8 courses):\n%-22s", "course");
  for (const Member& m : group) std::printf(" %12s", m.name);
  std::printf("\n");
  for (size_t i = 0; i < 8; ++i) {
    const auto& course = courses.course(i);
    std::printf("%-22s", course.name.c_str());
    for (const Member& m : group) {
      std::printf(" %12.2f",
                  reranker.Alignment(*family->Get(m.id).value(),
                                     course.id));
    }
    std::printf("\n");
  }

  // Group strategies.
  struct GroupScore {
    lifelog::ItemId item;
    double average;
    double least_misery;
  };
  std::vector<GroupScore> scores;
  for (const auto& course : courses.courses()) {
    GroupScore gs{course.id, 0.0, 1e9};
    for (const Member& m : group) {
      const double a =
          reranker.Alignment(*family->Get(m.id).value(), course.id);
      gs.average += a / static_cast<double>(group.size());
      gs.least_misery = std::min(gs.least_misery, a);
    }
    scores.push_back(gs);
  }

  auto top3 = [&](auto key, const char* label) {
    std::sort(scores.begin(), scores.end(),
              [&](const GroupScore& a, const GroupScore& b) {
                return key(a) > key(b);
              });
    std::printf("\n%s:\n", label);
    for (int i = 0; i < 3; ++i) {
      const auto& course = *courses.ById(scores[static_cast<size_t>(i)].item).value();
      std::printf("  %d. %-22s (avg %+.2f, min %+.2f)\n", i + 1,
                  course.name.c_str(),
                  scores[static_cast<size_t>(i)].average,
                  scores[static_cast<size_t>(i)].least_misery);
    }
  };
  top3([](const GroupScore& g) { return g.average; },
       "average-satisfaction strategy");
  top3([](const GroupScore& g) { return g.least_misery; },
       "least-misery strategy (the grandparent's fear vetoes)");

  std::printf("\nMasthoff's observation, reproduced: strategies that "
              "ignore the weakest member's\naffective state pick "
              "courses that frighten the grandparent; least-misery "
              "does not.\n");
  return 0;
}
