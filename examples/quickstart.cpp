// Quickstart: the smallest end-to-end tour of the SPA public API.
//
//   1. construct the platform,
//   2. register a user and run a few Gradual EIT questions,
//   3. record some browsing events,
//   4. train the propensity model,
//   5. get a propensity score, course recommendations and an
//      individualized message.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "campaign/course.h"
#include "core/spa.h"

int main() {
  using namespace spa;

  // 1. The platform: action catalog (984 actions), 75-attribute SUM
  //    catalog, Gradual EIT bank, agents, Smart Component.
  core::SpaConfig config;
  config.seed = 7;
  core::Spa spa(config);
  std::printf("SPA up: %zu actions, %zu attributes, %zu EIT items\n",
              spa.action_catalog().size(),
              spa.attribute_catalog().size(),
              spa.gradual_eit().bank().size());

  // 2. One user answers three EIT questions (one per contact, as the
  //    paper's newsletters did).
  const sum::UserId alice = 1001;
  for (int contact = 0; contact < 3; ++contact) {
    const auto question_id = spa.NextEitQuestion(alice);
    if (!question_id.ok()) break;
    const eit::EitQuestion& q =
        *spa.gradual_eit().bank().ById(question_id.value()).value();
    std::printf("contact %d asks: \"%s\"\n", contact + 1,
                q.text.c_str());
    // Alice answers with the population-consensus option.
    (void)spa.RecordEitAnswer(alice, question_id.value(),
                              q.ModalOption());
  }
  const eit::EitScores scores = spa.EitScoresFor(alice);
  std::printf("EIT progress: %zu answered, standardized EIQ %.1f\n",
              scores.answered, scores.Standardized());

  // 3. Browsing events (normally ingested from WebLogs; RecordEvent is
  //    the already-clean path).
  const auto& clicks =
      spa.action_catalog().CodesFor(lifelog::ActionType::kClick);
  for (int i = 0; i < 6; ++i) {
    lifelog::Event event;
    event.user = alice;
    event.time = spa.clock()->now() - i * kMicrosPerHour;
    event.action_code = clicks[static_cast<size_t>(i) % clicks.size()];
    event.item = static_cast<lifelog::ItemId>(i % 3);
    spa.RecordEvent(event);
  }

  // A few background users so the recommender and the trainer have a
  // population to work with.
  Rng rng(13);
  std::vector<core::PropensityExample> examples;
  for (sum::UserId user = 1; user <= 200; ++user) {
    (void)spa.sum_service()->Apply(sum::SumUpdate(user));
    const bool responder = rng.Bernoulli(0.3);
    const int activity = responder ? 10 : 2;
    for (int i = 0; i < activity; ++i) {
      lifelog::Event event;
      event.user = user;
      event.time = spa.clock()->now() - i * kMicrosPerDay;
      event.action_code = clicks[static_cast<size_t>(i) % clicks.size()];
      event.item = static_cast<lifelog::ItemId>((user + i) % 20);
      spa.RecordEvent(event);
    }
    examples.push_back({user, responder});
  }

  // 4. Train the Smart Component's propensity SVM.
  const Status trained = spa.TrainPropensity(examples);
  std::printf("propensity model: %s (validation AUC %.3f)\n",
              trained.ok() ? "trained" : trained.ToString().c_str(),
              spa.smart_component()->last_validation_auc());

  // 5a. Propensity (the paper's selection function input).
  const auto propensity = spa.Propensity(alice);
  if (propensity.ok()) {
    std::printf("alice's propensity to transact: %.3f\n",
                propensity.value());
  }

  // 5b. Course recommendations through the serving engine: a
  //     RecommendRequest carries the user, cutoff, candidate policy and
  //     an explain flag; the response carries per-item score breakdowns.
  const campaign::CourseCatalog catalog =
      campaign::CourseCatalog::Generate(20, spa.attribute_catalog(), 7);
  for (const auto& course : catalog.courses()) {
    spa.SetItemFeatures(course.id, catalog.ContentFeatures(course));
    spa.SetItemEmotionProfile(course.id, course.emotion_profile);
  }
  recsys::RecommendRequest request;
  request.user = alice;
  request.k = 3;
  request.exclude_seen = recsys::ExcludeSeen::kYes;
  request.explain = true;
  const auto response = spa.Recommend(request);
  if (!response.ok()) {
    std::printf("recommendation failed: %s\n",
                response.status().ToString().c_str());
    return 1;
  }
  std::printf("recommended courses (emotion stage %s):\n",
              response.value().emotion_applied ? "applied" : "skipped");
  for (const auto& item : response.value().items) {
    std::printf("  %-24s score %.3f  [base %.3f, emotion %+.3f]\n",
                catalog.ById(item.item).value()->name.c_str(),
                item.score, item.breakdown.base_share,
                item.breakdown.emotion_delta);
    for (const auto& c : item.breakdown.components) {
      std::printf("      %-14s w=%.2f contributed %.3f\n",
                  c.component.c_str(), c.weight, c.contribution);
    }
  }

  // 5c. The individualized sales message (§5.3), composed for the
  //     engine's top suggestion.
  if (!response.value().items.empty()) {
    const campaign::Course& course =
        *catalog.ById(response.value().items.front().item).value();
    const agents::ComposedMessage message =
        spa.MessageFor(alice, course.id, course.sellable_attributes);
    std::printf("message for alice: \"%s\"\n", message.text.c_str());
  }
  return 0;
}
