// The paper's future-work scenario (§7): the wearIT@work experiments —
// "sensing physiological and contextual parameters of firefighters in
// Paris brigades through wearable computing ... to provide
// recommendations to their commander who is advised by an Ambient
// Recommender System in an emergency".
//
// We simulate wearable streams (heart rate, galvanic skin response,
// skin temperature, motion) per firefighter, map them to the emotional
// attribute space through the same SUM reinforcement path the
// e-commerce deployment uses, and let the platform advise the
// commander on each colleague's operational fitness.
//
// Build & run:  ./build/examples/firefighter_monitor

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "sum/catalog.h"
#include "sum/human_values.h"
#include "sum/reward_punish.h"
#include "sum/sum_service.h"

namespace {

/// One wearable sample (normalized sensor channels).
struct VitalSample {
  double heart_rate;   ///< [0,1], 1 = max observed
  double gsr;          ///< galvanic skin response (arousal)
  double skin_temp;    ///< [0,1]
  double motion;       ///< accelerometer energy
};

/// Maps a wearable sample to emotional-attribute evidence: which
/// attributes this physiological picture activates (positive
/// magnitude) or contradicts (negative).
std::vector<std::pair<spa::eit::EmotionalAttribute, double>>
EmotionalEvidence(const VitalSample& v) {
  using spa::eit::EmotionalAttribute;
  std::vector<std::pair<EmotionalAttribute, double>> evidence;
  // High arousal + high heart rate with little motion: fear response.
  const double fear =
      std::max(0.0, v.gsr * 0.6 + v.heart_rate * 0.6 - v.motion * 0.5 -
                        0.3);
  if (fear > 0.0) {
    evidence.emplace_back(EmotionalAttribute::kFrightened, fear);
  }
  // High motion + moderate arousal: engaged, stimulated operation.
  const double engagement =
      std::max(0.0, v.motion * 0.7 + v.gsr * 0.3 - 0.25);
  if (engagement > 0.0) {
    evidence.emplace_back(EmotionalAttribute::kStimulated, engagement);
    evidence.emplace_back(EmotionalAttribute::kLively,
                          engagement * 0.6);
  }
  // Flat everything: apathy / exhaustion.
  const double apathy = std::max(
      0.0, 0.35 - (v.heart_rate + v.gsr + v.motion) / 3.0);
  if (apathy > 0.0) {
    evidence.emplace_back(EmotionalAttribute::kApathetic, apathy * 2.0);
  }
  // Elevated heart rate with controlled arousal: impatience to act.
  const double impatience =
      std::max(0.0, v.heart_rate * 0.8 - v.gsr * 0.5 - 0.2);
  if (impatience > 0.0) {
    evidence.emplace_back(EmotionalAttribute::kImpatient, impatience);
  }
  return evidence;
}

/// Commander-facing fitness score: positive-valence activation minus
/// aversive activation, in [0,1].
double OperationalFitness(const spa::sum::SmartUserModel& model) {
  double positive = 0.0, negative = 0.0;
  const auto& catalog = model.catalog();
  for (spa::eit::EmotionalAttribute e :
       spa::eit::AllEmotionalAttributes()) {
    const double w = model.sensibility(catalog.EmotionalId(e));
    if (spa::eit::ValenceOf(e) == spa::eit::Valence::kPositive) {
      positive += w;
    } else {
      negative += w;
    }
  }
  return std::clamp(0.5 + (positive - negative) / 4.0, 0.0, 1.0);
}

}  // namespace

int main() {
  using namespace spa;

  const sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  // The crew's models live behind the versioned service: wearable
  // samples stream in as SumUpdates while the commander's dashboard
  // reads pinned snapshots.
  sum::SumService crew(
      &catalog,
      sum::SumServiceConfig{
          {.learning_rate = 0.25, .decay_rate = 0.05, .floor = 0.0}});

  struct Firefighter {
    sum::UserId id;
    const char* name;
    const char* scenario;
    // Scenario generator knobs.
    double hr_base, gsr_base, motion_base;
  };
  const std::vector<Firefighter> brigade = {
      {1, "Durand", "steady interior attack", 0.55, 0.35, 0.7},
      {2, "Moreau", "trapped-feeling rookie", 0.85, 0.8, 0.15},
      {3, "Petit", "exhausted after 3rd rotation", 0.25, 0.15, 0.1},
      {4, "Leroy", "eager, waiting for orders", 0.75, 0.3, 0.25},
  };

  std::printf("wearIT@work simulation: streaming 60 wearable samples "
              "per firefighter\n\n");
  Rng rng(2026);
  for (const Firefighter& ff : brigade) {
    for (int t = 0; t < 60; ++t) {
      VitalSample sample;
      sample.heart_rate =
          std::clamp(ff.hr_base + rng.Normal(0.0, 0.08), 0.0, 1.0);
      sample.gsr =
          std::clamp(ff.gsr_base + rng.Normal(0.0, 0.08), 0.0, 1.0);
      sample.skin_temp = std::clamp(0.5 + rng.Normal(0.0, 0.05), 0.0, 1.0);
      sample.motion =
          std::clamp(ff.motion_base + rng.Normal(0.0, 0.1), 0.0, 1.0);
      sum::SumUpdate update(ff.id);
      for (const auto& [attribute, magnitude] :
           EmotionalEvidence(sample)) {
        update.Reward(catalog.EmotionalId(attribute), magnitude);
      }
      // Physiology is transient: decay every few samples.
      if (t % 10 == 9) {
        update.Decay(sum::AttributeKind::kEmotional);
      }
      (void)crew.Apply(update);
    }
  }

  std::printf("%-10s %-30s %10s  %s\n", "name", "scenario", "fitness",
              "dominant emotional state");
  std::printf("--------------------------------------------------------"
              "---------------------\n");
  // One pinned snapshot ranks the whole brigade consistently even if
  // samples kept streaming.
  const sum::SumSnapshotPtr board = crew.snapshot();
  std::vector<std::pair<double, const Firefighter*>> ranked;
  for (const Firefighter& ff : brigade) {
    const auto model = board->Get(ff.id).value();
    ranked.emplace_back(OperationalFitness(*model), &ff);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (const auto& [fitness, ff] : ranked) {
    const auto model = board->Get(ff->id).value();
    const auto dominant =
        model->Dominant(sum::AttributeKind::kEmotional, 0.15, 2);
    std::string state;
    for (const auto& d : dominant) {
      if (!state.empty()) state += ", ";
      state += catalog.def(d.id).name +
               spa::StrFormat(" (%.2f)", d.sensibility);
    }
    std::printf("%-10s %-30s %10.2f  %s\n", ff->name, ff->scenario,
                fitness, state.empty() ? "neutral" : state.c_str());
  }

  std::printf("\ncommander advice:\n");
  for (const auto& [fitness, ff] : ranked) {
    const auto model = board->Get(ff->id).value();
    const auto& cat = model->catalog();
    const double fear = model->sensibility(
        cat.EmotionalId(eit::EmotionalAttribute::kFrightened));
    const double apathy = model->sensibility(
        cat.EmotionalId(eit::EmotionalAttribute::kApathetic));
    const char* advice =
        fear > 0.5    ? "ROTATE OUT - acute stress response"
        : apathy > 0.5 ? "REST - exhaustion indicators"
        : fitness > 0.55
            ? "fit for assignment"
            : "monitor closely";
    std::printf("  %-10s -> %s\n", ff->name, advice);
  }
  return 0;
}
