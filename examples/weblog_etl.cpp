// LifeLog ETL walk-through: the data-engineering path of the platform.
// Synthesizes a noisy Apache combined-format WebLog (bots, error
// responses, truncated lines, replayed requests), pushes it through the
// self-replicating pre-processor agent family, then sessionizes and
// feature-izes one user — everything the paper's "50 Gb/month of
// WebLogs" pipeline (§5.1) has to do, in miniature.
//
// Build & run:  ./build/examples/weblog_etl [lines]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/rng.h"
#include "core/spa.h"
#include "lifelog/features.h"
#include "lifelog/session.h"
#include "lifelog/weblog.h"

int main(int argc, char** argv) {
  using namespace spa;
  const size_t n_events =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 100'000;

  // 1. Synthesize a realistic raw log.
  Rng rng(99);
  std::vector<lifelog::Event> truth;
  truth.reserve(n_events);
  TimeMicros t = int64_t{13149} * kMicrosPerDay;  // 2006-01-01
  for (size_t i = 0; i < n_events; ++i) {
    lifelog::Event e;
    e.user = static_cast<lifelog::UserId>(rng.Zipf(5'000, 1.3));
    t += static_cast<TimeMicros>(rng.Exponential(2.0) *
                                 static_cast<double>(kMicrosPerSecond));
    e.time = t;
    e.action_code = static_cast<int32_t>(rng.UniformInt(0, 983));
    if (rng.Bernoulli(0.45)) {
      e.item = static_cast<lifelog::ItemId>(rng.Zipf(300, 1.2)) - 1;
    }
    e.value = rng.Bernoulli(0.1) ? rng.Uniform(1.0, 5.0) : 0.0;
    truth.push_back(e);
  }
  lifelog::WeblogNoiseOptions noise;
  noise.bot_fraction = 0.12;
  noise.error_fraction = 0.06;
  noise.malformed_fraction = 0.02;
  lifelog::WeblogSynthesizer synth(noise);
  std::vector<std::string> lines;
  synth.Synthesize(truth, &lines);
  std::printf("raw log: %zu lines (first line below)\n%s\n\n",
              lines.size(), lines.front().c_str());

  // 2. Ingest through the platform's pre-processor agent family.
  core::SpaConfig config;
  config.preprocessor.capacity_per_batch = 20'000;
  config.preprocessor.max_replicas = 8;
  auto platform = std::make_unique<core::Spa>(config);
  platform->IngestLogLines(lines);

  const auto& stats =
      platform->preprocessor()->family_stats().preprocess;
  std::printf("pre-processing report:\n");
  std::printf("  lines in:        %llu\n",
              static_cast<unsigned long long>(stats.lines_in));
  std::printf("  parse errors:    %llu\n",
              static_cast<unsigned long long>(stats.parse_errors));
  std::printf("  bot lines:       %llu (+%llu anonymous)\n",
              static_cast<unsigned long long>(stats.bot_lines),
              static_cast<unsigned long long>(stats.anonymous));
  std::printf("  error statuses:  %llu\n",
              static_cast<unsigned long long>(stats.error_status));
  std::printf("  non-action URLs: %llu\n",
              static_cast<unsigned long long>(stats.non_action));
  std::printf("  duplicates:      %llu\n",
              static_cast<unsigned long long>(stats.duplicates));
  std::printf("  clean events:    %llu (expected %zu)\n",
              static_cast<unsigned long long>(stats.events_out),
              truth.size());
  std::printf("  replicas spawned: %zu\n",
              platform->preprocessor()->family_stats().replicas);

  // 3. Sessionize + feature-ize the most active user.
  lifelog::UserId top_user = 0;
  size_t top_count = 0;
  platform->lifelog()->ForEachUser(
      [&](lifelog::UserId user, const std::vector<lifelog::Event>& ev) {
        if (ev.size() > top_count) {
          top_count = ev.size();
          top_user = user;
        }
      });
  const auto& events = platform->lifelog()->UserEvents(top_user);
  const auto sessions =
      lifelog::Sessionize(events, platform->action_catalog());
  std::printf("\nmost active user %lld: %zu events across %zu "
              "sessions\n",
              static_cast<long long>(top_user), events.size(),
              sessions.size());

  lifelog::FeatureSpace space;
  const lifelog::BehaviorFeatureExtractor extractor(
      &platform->action_catalog(), &space);
  const ml::SparseVector features =
      extractor.Extract(events, platform->clock()->now());
  std::printf("behavioural features:\n");
  for (size_t i = 0; i < features.nnz(); ++i) {
    std::printf("  %-36s %8.3f\n",
                space.NameOf(features.index(i)).c_str(),
                features.value(i));
  }
  return 0;
}
