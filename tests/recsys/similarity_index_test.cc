#include <memory>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"
#include "recsys/recsys_test_util.h"
#include "recsys/similarity_index.h"

namespace spa::recsys {
namespace {

/// A noisy two-community matrix large enough that top-N truncation and
/// min-similarity filtering both bite.
InteractionMatrix MakeNoisyMatrix(uint64_t seed, size_t users = 60,
                                  size_t items = 30) {
  Rng rng(seed);
  InteractionMatrix m;
  for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
    const auto base =
        static_cast<ItemId>((u % 2 == 0) ? 0 : items / 2);
    for (int j = 0; j < 6; ++j) {
      const auto item = static_cast<ItemId>(
          base + rng.UniformInt(0, static_cast<int64_t>(items) / 2 - 1));
      m.Add(u, item, rng.Uniform(0.2, 3.0));
    }
  }
  return m;
}

void ExpectSameScored(const std::vector<Scored>& lazy,
                      const std::vector<Scored>& indexed) {
  ASSERT_EQ(lazy.size(), indexed.size());
  for (size_t i = 0; i < lazy.size(); ++i) {
    EXPECT_EQ(lazy[i].item, indexed[i].item) << "rank " << i;
    // Exact (bitwise) parity: both paths run the same float ops in the
    // same order.
    EXPECT_EQ(lazy[i].score, indexed[i].score) << "rank " << i;
  }
}

TEST(SimilarityIndexTest, UserIndexMatchesLiveSimilarities) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  UserKnnRecommender reference(KnnConfig{.use_index = false});
  ASSERT_TRUE(reference.Fit(m).ok());
  const auto index = BuildUserSimilarityIndex(m);

  const auto row = index.NeighborsOf(0);
  ASSERT_EQ(row.size(), 4u);  // the other community-0 users
  double prev = 2.0;
  for (const auto& neighbor : row) {
    EXPECT_GE(neighbor.id, 1);
    EXPECT_LE(neighbor.id, 4);
    EXPECT_EQ(neighbor.similarity,
              reference.Similarity(0, neighbor.id));
    EXPECT_LE(neighbor.similarity, prev);  // sorted desc
    prev = neighbor.similarity;
  }
  EXPECT_TRUE(index.NeighborsOf(999).empty());  // unknown user
}

TEST(SimilarityIndexTest, TopNTruncatesAndMinSimilarityFilters) {
  const InteractionMatrix m = MakeNoisyMatrix(3);
  SimilarityIndexConfig config;
  config.top_n = 3;
  const auto truncated = BuildUserSimilarityIndex(m, config);
  for (UserId u : m.users()) {
    EXPECT_LE(truncated.NeighborsOf(u).size(), 3u);
  }

  SimilarityIndexConfig strict;
  strict.top_n = 100;
  strict.min_similarity = 0.9;
  const auto filtered = BuildUserSimilarityIndex(m, strict);
  for (UserId u : m.users()) {
    for (const auto& neighbor : filtered.NeighborsOf(u)) {
      EXPECT_GE(neighbor.similarity, 0.9);
    }
  }
}

TEST(SimilarityIndexTest, ParallelBuildIsDeterministic) {
  const InteractionMatrix m = MakeNoisyMatrix(11, /*users=*/120);
  SimilarityIndexConfig serial;
  serial.build_threads = 1;
  SimilarityIndexConfig parallel;
  parallel.build_threads = 4;

  const auto user_serial = BuildUserSimilarityIndex(m, serial);
  const auto user_parallel = BuildUserSimilarityIndex(m, parallel);
  EXPECT_EQ(user_parallel.stats().build_threads, 4u);
  for (UserId u : m.users()) {
    const auto a = user_serial.NeighborsOf(u);
    const auto b = user_parallel.NeighborsOf(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].similarity, b[i].similarity);
    }
  }

  const auto item_serial = BuildItemSimilarityIndex(m, serial);
  const auto item_parallel = BuildItemSimilarityIndex(m, parallel);
  for (ItemId i : m.items()) {
    const auto a = item_serial.NeighborsOf(i);
    const auto b = item_parallel.NeighborsOf(i);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id);
      EXPECT_EQ(a[j].similarity, b[j].similarity);
    }
  }
}

TEST(SimilarityIndexTest, CancelledNormsYieldZeroSimilarityNotNaN) {
  // Incremental norm maintenance can round a fully-cancelled norm to a
  // tiny negative value; SparseCosine must clamp it to "no signal"
  // instead of emitting NaN.
  InteractionMatrix m;
  m.Add(1, 10, 1.0);
  m.Add(1, 11, 1e-9);
  m.Add(1, 10, -1.0);
  m.Add(1, 11, -1e-9);
  m.Add(2, 10, 1.0);
  m.Add(2, 11, 1.0);
  EXPECT_LE(m.UserNormSquared(1), 1e-12);  // cancelled (maybe negative)
  UserKnnRecommender rec(KnnConfig{.use_index = false});
  ASSERT_TRUE(rec.Fit(m).ok());
  EXPECT_EQ(rec.Similarity(1, 2), 0.0);
  const auto index = BuildUserSimilarityIndex(m);
  for (const auto& neighbor : index.NeighborsOf(2)) {
    EXPECT_FALSE(std::isnan(neighbor.similarity));
  }
}

TEST(SimilarityIndexTest, StatsReportBuildCostAndVersionStamp) {
  const InteractionMatrix m = MakeNoisyMatrix(5);
  const auto index = BuildItemSimilarityIndex(m);
  const SimilarityIndexStats& stats = index.stats();
  EXPECT_EQ(stats.rows, m.item_count());
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GE(stats.build_seconds, 0.0);
  EXPECT_GE(stats.build_threads, 1u);
  EXPECT_EQ(stats.matrix_version, m.version());
  EXPECT_EQ(index.built_version(), m.version());
}

/// Parity harness: every user served by the lazy and the indexed
/// recommender under the same config must rank identically.
template <typename Rec>
void ExpectIndexedLazyParity(const InteractionMatrix& m,
                             KnnConfig config, size_t k) {
  config.use_index = false;
  Rec lazy(config);
  ASSERT_TRUE(lazy.Fit(m).ok());
  config.use_index = true;
  Rec indexed(config);
  ASSERT_TRUE(indexed.Fit(m).ok());
  for (UserId u : m.users()) {
    CandidateQuery query;
    query.user = u;
    query.k = k;
    ExpectSameScored(lazy.RecommendCandidates(query),
                     indexed.RecommendCandidates(query));
  }
}

TEST(KnnIndexParityTest, UserKnnMatchesLazyAcrossConfigSweep) {
  const InteractionMatrix m = MakeNoisyMatrix(17);
  for (const size_t neighbors : {1u, 2u, 5u, 40u}) {
    for (const double min_similarity : {1e-9, 1e-6, 0.25, 0.6}) {
      KnnConfig config;
      config.neighbors = neighbors;
      config.min_similarity = min_similarity;
      ExpectIndexedLazyParity<UserKnnRecommender>(m, config, 8);
    }
  }
}

TEST(KnnIndexParityTest, ItemKnnMatchesLazyAcrossConfigSweep) {
  const InteractionMatrix m = MakeNoisyMatrix(23);
  for (const size_t neighbors : {1u, 2u, 5u, 40u}) {
    for (const double min_similarity : {1e-9, 1e-6, 0.25, 0.6}) {
      KnnConfig config;
      config.neighbors = neighbors;
      config.min_similarity = min_similarity;
      ExpectIndexedLazyParity<ItemKnnRecommender>(m, config, 8);
    }
  }
}

TEST(KnnIndexParityTest, ParityHoldsUnderQueryPolicies) {
  const InteractionMatrix m = MakeNoisyMatrix(29);
  KnnConfig config;
  config.neighbors = 5;
  KnnConfig lazy_config = config;
  lazy_config.use_index = false;

  UserKnnRecommender user_lazy(lazy_config), user_indexed(config);
  ItemKnnRecommender item_lazy(lazy_config), item_indexed(config);
  const std::vector<Recommender*> recommenders = {
      &user_lazy, &user_indexed, &item_lazy, &item_indexed};
  for (Recommender* rec : recommenders) {
    ASSERT_TRUE(rec->Fit(m).ok());
  }

  const std::unordered_set<ItemId> denied = {1, 4, 17};
  const std::unordered_set<ItemId> allowed = {0, 2, 3, 5, 8, 13, 21};
  std::vector<CandidateQuery> queries;
  for (UserId u : m.users()) {
    CandidateQuery relaxed;
    relaxed.user = u;
    relaxed.k = 10;
    relaxed.exclude_seen = ExcludeSeen::kNo;
    queries.push_back(relaxed);
    CandidateQuery denylisted;
    denylisted.user = u;
    denylisted.k = 10;
    denylisted.exclude_items = &denied;
    queries.push_back(denylisted);
    CandidateQuery allowlisted;
    allowlisted.user = u;
    allowlisted.k = 10;
    allowlisted.candidate_items = &allowed;
    queries.push_back(allowlisted);
  }
  for (const CandidateQuery& query : queries) {
    ExpectSameScored(user_lazy.RecommendCandidates(query),
                     user_indexed.RecommendCandidates(query));
    ExpectSameScored(item_lazy.RecommendCandidates(query),
                     item_indexed.RecommendCandidates(query));
  }
}

TEST(KnnIndexParityTest, UnknownUserStillGetsNothing) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  UserKnnRecommender user_rec;  // indexed by default
  ItemKnnRecommender item_rec;
  ASSERT_TRUE(user_rec.Fit(m).ok());
  ASSERT_TRUE(item_rec.Fit(m).ok());
  EXPECT_TRUE(RecommendTopK(user_rec, 999, 5).empty());
  EXPECT_TRUE(RecommendTopK(item_rec, 999, 5).empty());
}

TEST(SimilarityIndexDeathTest, UserKnnRejectsStaleIndex) {
  InteractionMatrix m = MakeTwoCommunityMatrix();
  UserKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  ASSERT_FALSE(RecommendTopK(rec, 0, 3).empty());  // fresh: serves
  m.Add(0, 7, 1.0);  // mutation after Fit
  EXPECT_DEATH(RecommendTopK(rec, 0, 3), "stale UserKNN");
  // An incremental Refresh picks the mutation up and serving resumes
  // (a refit would too; Refresh is the cheap live-update path).
  RefreshOutcome outcome;
  ASSERT_TRUE(rec.Refresh(&outcome).ok());
  EXPECT_FALSE(RecommendTopK(rec, 0, 3).empty());
}

TEST(SimilarityIndexDeathTest, ItemKnnRejectsStaleIndex) {
  InteractionMatrix m = MakeTwoCommunityMatrix();
  ItemKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  m.Add(5, 2, 1.0);
  EXPECT_DEATH(RecommendTopK(rec, 5, 3), "stale ItemKNN");
}

TEST(EngineIndexStatsTest, EngineSurfacesComponentIndexStats) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  RecsysEngine engine;
  engine.AddComponent(std::make_unique<UserKnnRecommender>(), 0.6);
  engine.AddComponent(std::make_unique<PopularityRecommender>(), 0.4);
  EXPECT_TRUE(engine.index_stats().empty());  // nothing fitted yet
  ASSERT_TRUE(engine.Fit(m).ok());

  const auto stats = engine.index_stats();
  ASSERT_EQ(stats.size(), 1u);  // popularity keeps no index
  EXPECT_EQ(stats[0].component, "UserKNN");
  EXPECT_EQ(stats[0].stats.rows, m.user_count());
  EXPECT_EQ(stats[0].stats.matrix_version, m.version());
  EXPECT_GT(stats[0].stats.memory_bytes, 0u);
}

}  // namespace
}  // namespace spa::recsys
