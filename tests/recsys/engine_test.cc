#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"
#include "recsys/request.h"
#include "recsys/recsys_test_util.h"
#include "sum/sum_service.h"

namespace spa::recsys {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : matrix_(MakeTwoCommunityMatrix()),
        catalog_(sum::AttributeCatalog::EmagisterDefault()),
        sums_(&catalog_) {}

  /// Engine over the two-community matrix: UserKNN + Popularity.
  std::unique_ptr<RecsysEngine> MakeEngine(EngineConfig config = {}) {
    auto engine = std::make_unique<RecsysEngine>(config);
    engine->AddComponent(std::make_unique<UserKnnRecommender>(), 0.6);
    engine->AddComponent(std::make_unique<PopularityRecommender>(),
                         0.4);
    engine->set_sum_service(&sums_);
    EXPECT_TRUE(engine->Fit(matrix_).ok());
    return engine;
  }

  /// Publishes one sensibility through the service.
  void SetSensibility(sum::UserId user, eit::EmotionalAttribute attr,
                      double sensibility) {
    ASSERT_TRUE(sums_
                    .Apply(sum::SumUpdate(user).SetSensibility(
                        catalog_.EmotionalId(attr), sensibility))
                    .ok());
  }

  InteractionMatrix matrix_;
  sum::AttributeCatalog catalog_;
  sum::SumService sums_;
};

TEST(RequestValidationTest, RejectsZeroK) {
  RecommendRequest request;
  request.k = 0;
  EXPECT_EQ(ValidateRequest(request).code(),
            StatusCode::kInvalidArgument);
}

TEST(RequestValidationTest, RejectsEmptyAllowlist) {
  RecommendRequest request;
  request.candidate_items.emplace();
  EXPECT_EQ(ValidateRequest(request).code(),
            StatusCode::kInvalidArgument);
}

TEST(RequestValidationTest, FullyExcludedAllowlistIsValid) {
  // Server-side exclusion merging (seen items the sparse matrix
  // missed) can legitimately cover the whole allowlist; that must
  // serve an empty response, not reject the request.
  RecommendRequest request;
  request.candidate_items = std::unordered_set<ItemId>{1, 2};
  request.exclude_items = {1, 2};
  EXPECT_TRUE(ValidateRequest(request).ok());
}

TEST(RequestValidationTest, AcceptsTypicalRequest) {
  RecommendRequest request;
  request.user = 3;
  request.k = 10;
  request.candidate_items = std::unordered_set<ItemId>{1, 2};
  request.exclude_items = {2};
  EXPECT_TRUE(ValidateRequest(request).ok());
}

TEST_F(EngineTest, RequiresFitBeforeServing) {
  RecsysEngine engine;
  engine.AddComponent(std::make_unique<PopularityRecommender>(), 1.0);
  RecommendRequest request;
  request.user = 0;
  EXPECT_EQ(engine.Recommend(request).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, InvalidRequestRejected) {
  auto engine = MakeEngine();
  RecommendRequest request;
  request.k = 0;
  EXPECT_EQ(engine->Recommend(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, RecommendsCommunityItemFirst) {
  auto engine = MakeEngine();
  RecommendRequest request;
  request.user = 0;
  request.k = 3;
  const auto response = engine->Recommend(request);
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response.value().items.empty());
  // Item 4 is the one community item user 0 misses.
  EXPECT_EQ(response.value().items.front().item, 4);
  EXPECT_LE(response.value().items.size(), 3u);
}

TEST_F(EngineTest, ExcludeSeenPolicyIsPerRequest) {
  auto engine = MakeEngine();
  RecommendRequest exclude;
  exclude.user = 0;
  exclude.k = 10;
  exclude.exclude_seen = ExcludeSeen::kYes;
  const auto strict = engine->Recommend(exclude);
  ASSERT_TRUE(strict.ok());
  for (const auto& item : strict.value().items) {
    EXPECT_FALSE(matrix_.Seen(0, item.item)) << "item " << item.item;
  }

  RecommendRequest include = exclude;
  include.exclude_seen = ExcludeSeen::kNo;
  const auto relaxed = engine->Recommend(include);
  ASSERT_TRUE(relaxed.ok());
  bool any_seen = false;
  for (const auto& item : relaxed.value().items) {
    if (matrix_.Seen(0, item.item)) any_seen = true;
  }
  EXPECT_TRUE(any_seen);
  EXPECT_GT(relaxed.value().items.size(),
            strict.value().items.size());
}

TEST_F(EngineTest, ExplicitExclusionsOverrideRanking) {
  auto engine = MakeEngine();
  RecommendRequest request;
  request.user = 0;
  request.k = 5;
  const auto baseline = engine->Recommend(request);
  ASSERT_TRUE(baseline.ok());
  const ItemId top = baseline.value().items.front().item;

  request.exclude_items = {top};
  const auto filtered = engine->Recommend(request);
  ASSERT_TRUE(filtered.ok());
  for (const auto& item : filtered.value().items) {
    EXPECT_NE(item.item, top);
  }
}

TEST_F(EngineTest, AllowlistRestrictsCandidatePool) {
  auto engine = MakeEngine();
  RecommendRequest request;
  request.user = 5;
  request.k = 10;
  request.candidate_items = std::unordered_set<ItemId>{9, 0};
  const auto response = engine->Recommend(request);
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response.value().items.empty());
  for (const auto& item : response.value().items) {
    EXPECT_TRUE(item.item == 9 || item.item == 0);
  }
}

TEST_F(EngineTest, FullyExcludedAllowlistServesEmptyResponse) {
  auto engine = MakeEngine();
  RecommendRequest request;
  request.user = 0;
  request.k = 5;
  request.candidate_items = std::unordered_set<ItemId>{4};
  request.exclude_items = {4};
  const auto response = engine->Recommend(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().items.empty());
}

TEST_F(EngineTest, ExplainBreakdownIsConsistent) {
  // Give user 0 emotional context and the items resonance profiles so
  // the emotional stage runs.
  SetSensibility(0, eit::EmotionalAttribute::kEnthusiastic, 0.9);
  auto engine = MakeEngine();
  for (ItemId item = 0; item < 10; ++item) {
    EmotionProfile profile{};
    profile[static_cast<size_t>(
        eit::EmotionalAttribute::kEnthusiastic)] =
        static_cast<double>(item) / 10.0;
    engine->SetItemEmotionProfile(item, profile);
  }

  RecommendRequest request;
  request.user = 0;
  request.k = 5;
  request.explain = true;
  const auto response = engine->Recommend(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().explained);
  EXPECT_TRUE(response.value().emotion_applied);
  ASSERT_FALSE(response.value().items.empty());
  for (const auto& item : response.value().items) {
    // Final score decomposes into base share + emotional delta.
    EXPECT_NEAR(item.breakdown.base_share + item.breakdown.emotion_delta,
                item.score, 1e-12);
    // Component contributions sum to the blended base score.
    ASSERT_EQ(item.breakdown.components.size(), 2u);
    double component_sum = 0.0;
    for (const auto& c : item.breakdown.components) {
      component_sum += c.contribution;
    }
    EXPECT_NEAR(component_sum, item.breakdown.base, 1e-12);
    EXPECT_GE(item.breakdown.emotional_alignment, -1.0);
    EXPECT_LE(item.breakdown.emotional_alignment, 1.0);
  }
}

TEST_F(EngineTest, ExplainOffLeavesBreakdownEmpty) {
  auto engine = MakeEngine();
  RecommendRequest request;
  request.user = 0;
  request.k = 3;
  const auto response = engine->Recommend(request);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().explained);
  for (const auto& item : response.value().items) {
    EXPECT_TRUE(item.breakdown.components.empty());
  }
}

TEST_F(EngineTest, EmotionOverrideReplacesStoreLookup) {
  auto engine = MakeEngine();
  EmotionProfile enthusiastic_profile{};
  enthusiastic_profile[static_cast<size_t>(
      eit::EmotionalAttribute::kEnthusiastic)] = 1.0;
  engine->SetItemEmotionProfile(9, enthusiastic_profile);

  // User 5 has no SUM in the store: no emotional stage.
  RecommendRequest request;
  request.user = 5;
  request.k = 5;
  const auto plain = engine->Recommend(request);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().emotion_applied);

  // The same request with a what-if snapshot gets the emotional stage:
  // a separate service holds the hypothetical profile for user 5, and
  // the request pins its snapshot.
  sum::SumService whatif(&catalog_);
  ASSERT_TRUE(whatif
                  .Apply(sum::SumUpdate(5).SetSensibility(
                      catalog_.EmotionalId(
                          eit::EmotionalAttribute::kEnthusiastic),
                      0.9))
                  .ok());
  request.emotion_override = whatif.snapshot();
  const auto adjusted = engine->Recommend(request);
  ASSERT_TRUE(adjusted.ok());
  EXPECT_TRUE(adjusted.value().emotion_applied);
  // Item 9 resonates with the snapshot's dominant attribute.
  EXPECT_EQ(adjusted.value().items.front().item, 9);
}

TEST_F(EngineTest, BatchMatchesSequentialExactly) {
  SetSensibility(0, eit::EmotionalAttribute::kMotivated, 0.8);
  EngineConfig config;
  config.batch_threads = 4;
  auto engine = MakeEngine(config);
  for (ItemId item = 0; item < 10; ++item) {
    EmotionProfile profile{};
    profile[static_cast<size_t>(eit::EmotionalAttribute::kMotivated)] =
        0.1 * static_cast<double>(item);
    engine->SetItemEmotionProfile(item, profile);
  }

  // A mixed batch: every user, varying k, some relaxed policies, some
  // with explanations.
  std::vector<RecommendRequest> requests;
  for (UserId u = 0; u < 10; ++u) {
    RecommendRequest request;
    request.user = u;
    request.k = 1 + static_cast<size_t>(u % 5);
    request.exclude_seen =
        (u % 3 == 0) ? ExcludeSeen::kNo : ExcludeSeen::kYes;
    request.explain = (u % 2 == 0);
    requests.push_back(std::move(request));
  }

  std::vector<spa::Result<RecommendResponse>> sequential;
  for (const auto& request : requests) {
    sequential.push_back(engine->Recommend(request));
  }
  const auto batched = engine->RecommendBatch(requests);

  ASSERT_EQ(batched.size(), sequential.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched[i].ok(), sequential[i].ok()) << "request " << i;
    const auto& lhs = sequential[i].value().items;
    const auto& rhs = batched[i].value().items;
    ASSERT_EQ(lhs.size(), rhs.size()) << "request " << i;
    for (size_t j = 0; j < lhs.size(); ++j) {
      EXPECT_EQ(lhs[j].item, rhs[j].item) << "request " << i;
      // Bitwise-identical scores: same computation, same order.
      EXPECT_EQ(lhs[j].score, rhs[j].score) << "request " << i;
    }
  }
}

TEST_F(EngineTest, BatchReportsPerRequestErrors) {
  EngineConfig config;
  config.batch_threads = 2;
  auto engine = MakeEngine(config);
  std::vector<RecommendRequest> requests(3);
  requests[0].user = 0;
  requests[1].user = 1;
  requests[1].k = 0;  // invalid
  requests[2].user = 2;
  const auto results = engine->RecommendBatch(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].ok());
}

TEST_F(EngineTest, TieBreakIsDeterministic) {
  // All items equally popular: ranking must fall back to ascending id.
  InteractionMatrix flat;
  for (UserId u = 0; u < 4; ++u) {
    for (ItemId i = 0; i < 6; ++i) flat.Add(u, i, 1.0);
  }
  RecsysEngine engine;
  engine.AddComponent(std::make_unique<PopularityRecommender>(), 1.0);
  ASSERT_TRUE(engine.Fit(flat).ok());
  RecommendRequest request;
  request.user = 99;  // unknown user: nothing seen
  request.k = 6;
  const auto response = engine.Recommend(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().items.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(response.value().items[i].item,
              static_cast<ItemId>(i));
  }
}

TEST_F(EngineTest, RerankOverfetchWidensEmotionReach) {
  // With overfetch 1 the emotional stage can only reorder the top-k;
  // with a deeper overfetch an emotionally aligned long-tail item can
  // enter the top-k. Both must stay deterministic.
  SetSensibility(0, eit::EmotionalAttribute::kEnthusiastic, 0.9);
  EngineConfig narrow;
  narrow.rerank_overfetch = 1;
  narrow.rerank.beta = 0.6;
  auto narrow_engine = MakeEngine(narrow);
  EngineConfig wide;
  wide.rerank_overfetch = 5;
  wide.rerank.beta = 0.6;
  auto wide_engine = MakeEngine(wide);

  EmotionProfile profile{};
  profile[static_cast<size_t>(
      eit::EmotionalAttribute::kEnthusiastic)] = 1.0;
  // Item 9 is outside user 0's community: weak base, strong resonance.
  narrow_engine->SetItemEmotionProfile(9, profile);
  wide_engine->SetItemEmotionProfile(9, profile);

  RecommendRequest request;
  request.user = 0;
  request.k = 2;
  request.exclude_seen = ExcludeSeen::kNo;
  const auto narrow_response = narrow_engine->Recommend(request);
  const auto wide_response = wide_engine->Recommend(request);
  ASSERT_TRUE(narrow_response.ok());
  ASSERT_TRUE(wide_response.ok());
  bool narrow_has_9 = false, wide_has_9 = false;
  for (const auto& item : narrow_response.value().items) {
    if (item.item == 9) narrow_has_9 = true;
  }
  for (const auto& item : wide_response.value().items) {
    if (item.item == 9) wide_has_9 = true;
  }
  EXPECT_FALSE(narrow_has_9);
  EXPECT_TRUE(wide_has_9);
}

}  // namespace
}  // namespace spa::recsys
