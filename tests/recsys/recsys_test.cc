#include <memory>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "recsys/content_based.h"
#include "recsys/emotion_aware.h"
#include "recsys/evaluator.h"
#include "recsys/hybrid.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"
#include "recsys/recsys_test_util.h"

namespace spa::recsys {
namespace {

TEST(InteractionMatrixTest, AddAndQuery) {
  InteractionMatrix m;
  m.Add(1, 10, 2.0);
  m.Add(1, 10, 1.0);  // accumulates
  m.Add(1, 11, 1.0);
  m.Add(2, 10, 1.0);
  EXPECT_EQ(m.user_count(), 2u);
  EXPECT_EQ(m.item_count(), 2u);
  EXPECT_EQ(m.interaction_count(), 4u);
  EXPECT_TRUE(m.Seen(1, 10));
  EXPECT_FALSE(m.Seen(2, 11));
  ASSERT_EQ(m.ItemsOf(1).size(), 2u);
  EXPECT_DOUBLE_EQ(m.ItemsOf(1)[0].second, 3.0);  // accumulated
  EXPECT_EQ(m.UsersOf(10).size(), 2u);
  EXPECT_DOUBLE_EQ(m.UserNormSquared(1), 9.0 + 1.0);
  EXPECT_DOUBLE_EQ(m.ItemNormSquared(11), 1.0);
  EXPECT_TRUE(m.ItemsOf(99).empty());
}

TEST(SortAndTruncateTest, OrdersByScoreThenItem) {
  std::vector<Scored> v = {{3, 1.0}, {1, 2.0}, {2, 2.0}, {4, 0.5}};
  SortAndTruncate(&v, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].item, 1);  // tie broken by item id
  EXPECT_EQ(v[1].item, 2);
  EXPECT_EQ(v[2].item, 3);
}

TEST(PopularityTest, RanksGlobalFavorites) {
  InteractionMatrix m;
  m.Add(1, 100, 1.0);
  m.Add(2, 100, 1.0);
  m.Add(3, 100, 1.0);
  m.Add(1, 200, 1.0);
  m.Add(2, 300, 1.0);
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  const auto recs = RecommendTopK(rec, 3, 2);
  ASSERT_FALSE(recs.empty());
  // User 3 has seen 100 already -> 200/300 recommended.
  for (const Scored& s : recs) {
    EXPECT_NE(s.item, 100);
  }
}

TEST(UserKnnTest, SimilarityWithinCommunityHigher) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  UserKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  EXPECT_GT(rec.Similarity(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(rec.Similarity(0, 5), 0.0);
}

TEST(UserKnnTest, RecommendsWithinCommunity) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  UserKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  const auto recs = RecommendTopK(rec, 0, 3);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 4);  // the one community item user 0 misses
}

TEST(ItemKnnTest, SimilarityAndRecommendation) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  ItemKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  EXPECT_GT(rec.Similarity(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(rec.Similarity(0, 5), 0.0);
  const auto recs = RecommendTopK(rec, 5, 3);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 9);
}

TEST(KnnTest, UnknownUserGetsNothing) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  UserKnnRecommender user_rec;
  ItemKnnRecommender item_rec;
  ASSERT_TRUE(user_rec.Fit(m).ok());
  ASSERT_TRUE(item_rec.Fit(m).ok());
  EXPECT_TRUE(RecommendTopK(user_rec, 999, 5).empty());
  EXPECT_TRUE(RecommendTopK(item_rec, 999, 5).empty());
}

TEST(ContentBasedTest, RequiresFeaturesBeforeFit) {
  InteractionMatrix m;
  m.Add(1, 1, 1.0);
  ContentBasedRecommender rec;
  EXPECT_EQ(rec.Fit(m).code(), StatusCode::kFailedPrecondition);
}

TEST(ContentBasedTest, RecommendsSimilarContent) {
  InteractionMatrix m;
  m.Add(1, 0, 1.0);  // user 1 likes item 0 (topic A)
  ContentBasedRecommender rec;
  rec.SetItemFeatures(0, ml::SparseVector({{0, 1.0}}));        // topic A
  rec.SetItemFeatures(1, ml::SparseVector({{0, 1.0}}));        // topic A
  rec.SetItemFeatures(2, ml::SparseVector({{1, 1.0}}));        // topic B
  rec.SetItemFeatures(3, ml::SparseVector({{0, 0.7}, {1, 0.7}}));
  ASSERT_TRUE(rec.Fit(m).ok());
  const auto recs = RecommendTopK(rec, 1, 3);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].item, 1);            // same topic ranks first
  EXPECT_EQ(recs.back().item, 2);        // disjoint topic ranks last
  EXPECT_GT(recs[0].score, recs[1].score);
}

TEST(ContentBasedTest, ProfileIsWeightedCentroid) {
  InteractionMatrix m;
  m.Add(1, 0, 3.0);
  m.Add(1, 2, 1.0);
  ContentBasedRecommender rec;
  rec.SetItemFeatures(0, ml::SparseVector({{0, 1.0}}));
  rec.SetItemFeatures(2, ml::SparseVector({{1, 1.0}}));
  ASSERT_TRUE(rec.Fit(m).ok());
  const auto profile = rec.ProfileOf(1);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_DOUBLE_EQ(profile[0], 0.75);
  EXPECT_DOUBLE_EQ(profile[1], 0.25);
}

TEST(HybridTest, RequiresComponents) {
  InteractionMatrix m;
  m.Add(1, 1, 1.0);
  HybridRecommender rec;
  EXPECT_EQ(rec.Fit(m).code(), StatusCode::kFailedPrecondition);
}

TEST(PopularityTest, IncludeSeenPolicyReturnsSeenItems) {
  InteractionMatrix m;
  m.Add(1, 100, 5.0);
  m.Add(2, 100, 1.0);
  m.Add(2, 200, 1.0);
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  CandidateQuery query;
  query.user = 1;
  query.k = 5;
  query.exclude_seen = ExcludeSeen::kNo;
  const auto recs = rec.RecommendCandidates(query);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 100);  // seen but admitted by policy
}

TEST(CandidateQueryTest, ExclusionAndAllowlistCompose) {
  InteractionMatrix m;
  m.Add(1, 10, 1.0);
  const std::unordered_set<ItemId> denied = {11};
  const std::unordered_set<ItemId> allowed = {10, 11, 12};
  CandidateQuery query;
  query.user = 1;
  query.k = 5;
  query.exclude_items = &denied;
  query.candidate_items = &allowed;
  EXPECT_FALSE(query.Admits(&m, 10));  // seen
  EXPECT_FALSE(query.Admits(&m, 11));  // denied
  EXPECT_TRUE(query.Admits(&m, 12));
  EXPECT_FALSE(query.Admits(&m, 13));  // outside allowlist
  query.exclude_seen = ExcludeSeen::kNo;
  EXPECT_TRUE(query.Admits(&m, 10));
}

TEST(HybridTest, ComponentDepthConfigurable) {
  InteractionMatrix m;
  m.Add(1, 10, 3.0);
  m.Add(1, 11, 2.0);
  m.Add(2, 12, 1.0);
  HybridRecommender rec(HybridConfig{.component_depth = 1});
  rec.AddComponent(std::make_unique<PopularityRecommender>(), 1.0);
  ASSERT_TRUE(rec.Fit(m).ok());
  // Depth 1: each component surfaces only its single best candidate.
  const auto recs = RecommendTopK(rec, 2, 10);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].item, 10);
}

TEST(HybridTest, ShortComponentListKeepsWeakestCandidateRanked) {
  // A component that returns fewer candidates than the blend depth
  // must not zero out its weakest pick: returned items always outrank
  // items the component did not return at all.
  InteractionMatrix m;
  m.Add(1, 10, 3.0);
  m.Add(1, 11, 2.0);
  m.Add(1, 12, 1.0);
  m.Add(2, 99, 1.0);
  HybridRecommender rec;
  rec.AddComponent(std::make_unique<PopularityRecommender>(), 1.0);
  ASSERT_TRUE(rec.Fit(m).ok());
  const auto recs = RecommendTopK(rec, 2, 10);  // 3 candidates < depth 100
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].item, 10);
  EXPECT_EQ(recs[1].item, 11);
  EXPECT_EQ(recs[2].item, 12);
  // The weakest returned candidate keeps a strictly positive score.
  EXPECT_GT(recs[2].score, 0.0);
  EXPECT_GT(recs[0].score, recs[1].score);
  EXPECT_GT(recs[1].score, recs[2].score);
}

TEST(HybridTest, BlendCandidatesExposesContributions) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  HybridRecommender rec;
  rec.AddComponent(std::make_unique<UserKnnRecommender>(), 0.5);
  rec.AddComponent(std::make_unique<PopularityRecommender>(), 0.5);
  ASSERT_TRUE(rec.Fit(m).ok());
  CandidateQuery query;
  query.user = 0;
  query.k = 5;
  const auto blended = rec.BlendCandidates(query);
  ASSERT_FALSE(blended.empty());
  for (const auto& b : blended) {
    ASSERT_EQ(b.contributions.size(), 2u);
    double sum = 0.0;
    for (double c : b.contributions) sum += c;
    EXPECT_NEAR(sum, b.score, 1e-12);
  }
}

TEST(HybridTest, BlendsComponents) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  HybridRecommender rec;
  rec.AddComponent(std::make_unique<UserKnnRecommender>(), 0.5);
  rec.AddComponent(std::make_unique<PopularityRecommender>(), 0.5);
  ASSERT_TRUE(rec.Fit(m).ok());
  EXPECT_EQ(rec.component_count(), 2u);
  const auto recs = RecommendTopK(rec, 0, 5);
  ASSERT_FALSE(recs.empty());
  // Item 4 is both popular-unseen and community-endorsed.
  EXPECT_EQ(recs[0].item, 4);
}

class EmotionRerankTest : public ::testing::Test {
 protected:
  EmotionRerankTest()
      : catalog_(sum::AttributeCatalog::EmagisterDefault()),
        model_(1, &catalog_) {}

  sum::AttributeCatalog catalog_;
  sum::SmartUserModel model_;
};

TEST_F(EmotionRerankTest, PositiveValenceActivates) {
  EmotionAwareReranker reranker;
  EmotionProfile enthusiastic_profile{};
  enthusiastic_profile[static_cast<size_t>(
      eit::EmotionalAttribute::kEnthusiastic)] = 1.0;
  reranker.SetItemProfile(10, enthusiastic_profile);

  model_.set_sensibility(
      catalog_.EmotionalId(eit::EmotionalAttribute::kEnthusiastic),
      0.9);
  EXPECT_GT(reranker.Alignment(model_, 10), 0.5);
}

TEST_F(EmotionRerankTest, NegativeValenceInhibits) {
  EmotionAwareReranker reranker;
  EmotionProfile scary_profile{};
  scary_profile[static_cast<size_t>(
      eit::EmotionalAttribute::kFrightened)] = 1.0;
  reranker.SetItemProfile(11, scary_profile);

  model_.set_sensibility(
      catalog_.EmotionalId(eit::EmotionalAttribute::kFrightened), 0.9);
  EXPECT_LT(reranker.Alignment(model_, 11), -0.5);
}

TEST_F(EmotionRerankTest, UnknownItemNeutral) {
  EmotionAwareReranker reranker;
  EXPECT_DOUBLE_EQ(reranker.Alignment(model_, 999), 0.0);
}

TEST_F(EmotionRerankTest, RerankPromotesAlignedItems) {
  EmotionAwareReranker reranker({0.6, 0.2});
  EmotionProfile aligned{};
  aligned[static_cast<size_t>(
      eit::EmotionalAttribute::kMotivated)] = 1.0;
  EmotionProfile inhibiting{};
  inhibiting[static_cast<size_t>(
      eit::EmotionalAttribute::kApathetic)] = 1.0;
  reranker.SetItemProfile(1, aligned);
  reranker.SetItemProfile(2, inhibiting);

  model_.set_sensibility(
      catalog_.EmotionalId(eit::EmotionalAttribute::kMotivated), 0.9);
  model_.set_sensibility(
      catalog_.EmotionalId(eit::EmotionalAttribute::kApathetic), 0.9);

  // Item 2 has a better base score, but emotional context flips it.
  std::vector<Scored> base = {{2, 1.0}, {1, 0.9}};
  const auto reranked = reranker.Rerank(model_, base);
  ASSERT_EQ(reranked.size(), 2u);
  EXPECT_EQ(reranked[0].item, 1);
}

TEST_F(EmotionRerankTest, NoSensibilityLeavesOrderIntact) {
  EmotionAwareReranker reranker;
  EmotionProfile profile{};
  profile.fill(1.0);
  reranker.SetItemProfile(1, profile);
  reranker.SetItemProfile(2, profile);
  std::vector<Scored> base = {{2, 1.0}, {1, 0.5}};
  const auto reranked = reranker.Rerank(model_, base);
  EXPECT_EQ(reranked[0].item, 2);
}

TEST(EvaluatorTest, PerfectRecommenderScoresOne) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  UserKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  RelevanceSets held_out;
  held_out[0] = {4};  // the item user 0 is missing
  held_out[5] = {9};
  const TopKMetrics metrics = EvaluateTopK(rec, held_out, 1);
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(metrics.ndcg, 1.0);
  EXPECT_DOUBLE_EQ(metrics.hit_rate, 1.0);
  EXPECT_EQ(metrics.users_evaluated, 2u);
}

TEST(EvaluatorTest, EmptyHeldOutSkipped) {
  const InteractionMatrix m = MakeTwoCommunityMatrix();
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  RelevanceSets held_out;
  held_out[0] = {};
  const TopKMetrics metrics = EvaluateTopK(rec, held_out, 3);
  EXPECT_EQ(metrics.users_evaluated, 0u);
}

TEST(EvaluatorTest, RandomVsOracleOrdering) {
  // An oracle that knows the held-out item must beat popularity.
  Rng rng(7);
  InteractionMatrix train;
  RelevanceSets held_out;
  for (UserId u = 0; u < 60; ++u) {
    const ItemId community_base = (u % 2 == 0) ? 0 : 30;
    for (int j = 0; j < 8; ++j) {
      const ItemId item = community_base +
                          static_cast<ItemId>(rng.UniformInt(0, 29));
      train.Add(u, item, 1.0);
    }
    held_out[u] = {community_base +
                   static_cast<ItemId>(rng.UniformInt(0, 29))};
    // Held-out items the user already saw do not count; drop those.
    if (train.Seen(u, *held_out[u].begin())) held_out.erase(u);
  }
  UserKnnRecommender knn;
  PopularityRecommender pop;
  ASSERT_TRUE(knn.Fit(train).ok());
  ASSERT_TRUE(pop.Fit(train).ok());
  const TopKMetrics knn_metrics = EvaluateTopK(knn, held_out, 10);
  const TopKMetrics pop_metrics = EvaluateTopK(pop, held_out, 10);
  // Community structure: CF should beat global popularity on recall.
  EXPECT_GT(knn_metrics.recall, pop_metrics.recall * 0.9);
}

}  // namespace
}  // namespace spa::recsys
