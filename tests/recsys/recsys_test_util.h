#ifndef SPA_TESTS_RECSYS_RECSYS_TEST_UTIL_H_
#define SPA_TESTS_RECSYS_RECSYS_TEST_UTIL_H_

#include "recsys/interaction_matrix.h"
#include "recsys/recommender.h"

/// Shared fixtures for the recsys test suites.

namespace spa::recsys {

/// Top-k excluding seen items through the CandidateQuery API (what the
/// since-removed Recommend(user, k) shim used to spell).
inline std::vector<Scored> RecommendTopK(const Recommender& rec,
                                         UserId user, size_t k) {
  CandidateQuery query;
  query.user = user;
  query.k = k;
  query.exclude_seen = ExcludeSeen::kYes;
  return rec.RecommendCandidates(query);
}

/// Users 0-4 like items 0-4; users 5-9 like items 5-9; user 0 has not
/// seen item 4 yet, user 5 has not seen item 9.
inline InteractionMatrix MakeTwoCommunityMatrix() {
  InteractionMatrix m;
  for (UserId u = 0; u < 5; ++u) {
    for (ItemId i = 0; i < 5; ++i) {
      if (u == 0 && i == 4) continue;
      m.Add(u, i, 1.0);
    }
  }
  for (UserId u = 5; u < 10; ++u) {
    for (ItemId i = 5; i < 10; ++i) {
      if (u == 5 && i == 9) continue;
      m.Add(u, i, 1.0);
    }
  }
  return m;
}

}  // namespace spa::recsys

#endif  // SPA_TESTS_RECSYS_RECSYS_TEST_UTIL_H_
