#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/profiler.h"
#include "common/rng.h"
#include "eit/emotion.h"
#include "gtest/gtest.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/serving_pipeline.h"
#include "sum/sum_service.h"

/// The staged serving dataflow (`RecsysEngine::RecommendBatchStaged`:
/// admit → candidate-gen → blend → rerank → explain, stage-major
/// across a micro-batch). The load-bearing claim tested here is
/// **bitwise parity**: at the same `BatchPin`, the staged path must
/// reproduce the fused inline path byte-for-byte — every score, every
/// breakdown field, every error — for every request shape the serving
/// API admits (explain, exclusions, allowlists, overrides, duplicates,
/// invalid requests). The TSAN stress case runs under TSAN in CI
/// (StagePipelineTest is in the TSAN job's ctest regex).

namespace spa::recsys {
namespace {

constexpr size_t kUsers = 60;
constexpr size_t kItems = 40;

/// Engine + matrix + SUM context with deterministic contents.
struct Stack {
  Stack() : catalog(sum::AttributeCatalog::EmagisterDefault()),
            sums(&catalog),
            matrix(4) {
    Rng rng(7, /*stream=*/1);
    for (size_t u = 0; u < kUsers; ++u) {
      const auto base =
          static_cast<ItemId>((u % 2 == 0) ? 0 : kItems / 2);
      for (int j = 0; j < 6; ++j) {
        const auto item = static_cast<ItemId>(
            base +
            rng.UniformInt(0, static_cast<int64_t>(kItems) / 2 - 1));
        matrix.Add(static_cast<UserId>(u), item, rng.Uniform(0.2, 3.0));
      }
    }
    std::vector<sum::SumUpdate> bootstrap;
    for (size_t u = 0; u < kUsers; ++u) {
      sum::SumUpdate update(static_cast<sum::UserId>(u));
      for (eit::EmotionalAttribute attr :
           eit::AllEmotionalAttributes()) {
        if (rng.Bernoulli(0.4)) {
          update.SetSensibility(catalog.EmotionalId(attr),
                                rng.Uniform(0.2, 1.0));
        }
      }
      bootstrap.push_back(std::move(update));
    }
    EXPECT_TRUE(sums.ApplyAll(bootstrap).ok());
  }

  std::unique_ptr<RecsysEngine> MakeEngine(size_t cache_capacity) {
    EngineConfig config;
    config.response_cache_capacity = cache_capacity;
    config.interaction_shards = matrix.shard_count();
    auto engine = std::make_unique<RecsysEngine>(config);
    engine->AddComponent(std::make_unique<UserKnnRecommender>(), 0.6);
    engine->AddComponent(std::make_unique<ItemKnnRecommender>(), 0.4);
    Rng rng(7, /*stream=*/3);
    for (size_t i = 0; i < kItems; ++i) {
      EmotionProfile profile{};
      for (double& p : profile) p = rng.Uniform();
      engine->SetItemEmotionProfile(static_cast<ItemId>(i), profile);
    }
    engine->set_sum_service(&sums);
    EXPECT_TRUE(engine->Fit(&matrix).ok());
    return engine;
  }

  sum::AttributeCatalog catalog;
  sum::SumService sums;
  InteractionMatrix matrix;
};

/// Every request shape the serving API admits, plus invalid ones.
std::vector<RecommendRequest> MakeRequestMix(
    const sum::SumService& sums) {
  std::vector<RecommendRequest> requests;
  for (size_t u = 0; u < 20; ++u) {
    RecommendRequest request;
    request.user = static_cast<UserId>(u * 3 % kUsers);
    request.k = 1 + u % 7;
    request.explain = (u % 2 == 0);
    if (u % 3 == 0) {
      request.exclude_items = {static_cast<ItemId>(u % kItems),
                               static_cast<ItemId>((u + 5) % kItems)};
    }
    if (u % 5 == 0) {
      request.candidate_items.emplace();
      for (ItemId item = 0; item < static_cast<ItemId>(kItems);
           item += 2) {
        request.candidate_items->insert(item);
      }
    }
    if (u % 7 == 0) {
      request.emotion_override = sums.snapshot();  // bypasses cache
    }
    requests.push_back(std::move(request));
  }
  // Duplicates: the staged batch computes both, bytes must not change.
  requests.push_back(requests.front());
  requests.push_back(requests[4]);
  // Invalid: k == 0 and an empty allowlist fail validation on both
  // paths with the same verdict.
  RecommendRequest bad_k;
  bad_k.user = 1;
  bad_k.k = 0;
  requests.push_back(bad_k);
  RecommendRequest empty_allowlist;
  empty_allowlist.user = 2;
  empty_allowlist.candidate_items.emplace();
  requests.push_back(empty_allowlist);
  return requests;
}

void ExpectBitwiseEqual(const RecommendResponse& a,
                        const RecommendResponse& b,
                        const std::string& context) {
  EXPECT_EQ(a.user, b.user) << context;
  EXPECT_EQ(a.emotion_applied, b.emotion_applied) << context;
  EXPECT_EQ(a.explained, b.explained) << context;
  ASSERT_EQ(a.items.size(), b.items.size()) << context;
  for (size_t i = 0; i < a.items.size(); ++i) {
    const RecommendedItem& x = a.items[i];
    const RecommendedItem& y = b.items[i];
    EXPECT_EQ(x.item, y.item) << context << " rank " << i;
    EXPECT_EQ(x.score, y.score) << context << " rank " << i;  // bitwise
    EXPECT_EQ(x.breakdown.base, y.breakdown.base) << context;
    EXPECT_EQ(x.breakdown.base_share, y.breakdown.base_share)
        << context;
    EXPECT_EQ(x.breakdown.emotional_alignment,
              y.breakdown.emotional_alignment)
        << context;
    EXPECT_EQ(x.breakdown.emotion_delta, y.breakdown.emotion_delta)
        << context;
    ASSERT_EQ(x.breakdown.components.size(),
              y.breakdown.components.size())
        << context;
    for (size_t c = 0; c < x.breakdown.components.size(); ++c) {
      EXPECT_EQ(x.breakdown.components[c].component,
                y.breakdown.components[c].component)
          << context;
      EXPECT_EQ(x.breakdown.components[c].contribution,
                y.breakdown.components[c].contribution)
          << context;
    }
  }
}

void ExpectSameResults(
    const std::vector<spa::Result<RecommendResponse>>& staged,
    const std::vector<spa::Result<RecommendResponse>>& fused,
    const std::string& context) {
  ASSERT_EQ(staged.size(), fused.size()) << context;
  for (size_t i = 0; i < staged.size(); ++i) {
    const std::string at = context + " request " + std::to_string(i);
    ASSERT_EQ(staged[i].ok(), fused[i].ok()) << at;
    if (!staged[i].ok()) continue;
    ExpectBitwiseEqual(staged[i].value(), fused[i].value(), at);
  }
}

class StagePipelineTest : public ::testing::Test {
 protected:
  Stack stack_;
};

TEST_F(StagePipelineTest, StagedMatchesInlineBitwiseOnColdEngines) {
  // Two identically-fitted engines, both computing from scratch: the
  // stage-major batch must reproduce the fused per-request loop
  // byte-for-byte, same pins, same errors.
  auto staged_engine = stack_.MakeEngine(/*cache_capacity=*/0);
  auto fused_engine = stack_.MakeEngine(/*cache_capacity=*/0);
  const auto requests = MakeRequestMix(stack_.sums);

  BatchPin staged_pin, fused_pin;
  const auto staged =
      staged_engine->RecommendBatchStaged(requests, &staged_pin);
  const auto fused =
      fused_engine->RecommendBatchInline(requests, &fused_pin);
  ExpectSameResults(staged, fused, "cold");
  EXPECT_EQ(staged_pin.fit_epoch, fused_pin.fit_epoch);
  EXPECT_EQ(staged_pin.matrix_version, fused_pin.matrix_version);
  EXPECT_EQ(staged_pin.sum_version, fused_pin.sum_version);
}

TEST_F(StagePipelineTest, StagedMatchesInlineThroughCacheAndUpdates) {
  // One engine, served in alternating staged/inline rounds across a
  // live-update boundary: cache hits, recomputes and re-stamped
  // entries must all produce identical bytes on both paths.
  auto engine = stack_.MakeEngine(/*cache_capacity=*/256);
  const auto requests = MakeRequestMix(stack_.sums);

  const auto round1_staged = engine->RecommendBatchStaged(requests);
  const auto round1_inline = engine->RecommendBatchInline(requests);
  ExpectSameResults(round1_staged, round1_inline, "warm");
  EXPECT_GT(engine->cache_stats().hits, 0u);

  std::vector<Interaction> batch = {{2, 1, 1.0}, {5, 7, 0.5},
                                    {2, 3, 2.0}};
  ASSERT_TRUE(engine->ApplyInteractions(batch).ok());

  const auto round2_staged = engine->RecommendBatchStaged(requests);
  const auto round2_inline = engine->RecommendBatchInline(requests);
  ExpectSameResults(round2_staged, round2_inline, "post-update");
}

TEST_F(StagePipelineTest, StagedBatchRecordsLeveledProfilerItems) {
  auto engine = stack_.MakeEngine(/*cache_capacity=*/0);
  std::vector<RecommendRequest> requests;
  for (size_t u = 0; u < 8; ++u) {
    RecommendRequest request;
    request.user = static_cast<UserId>(u);
    request.k = 3;
    requests.push_back(request);
  }
  (void)engine->RecommendBatchStaged(requests);

  const ProfilerSnapshot snap =
      engine->profiler().Snapshot(ProfilerLevel::kL3);
  for (const ProfilerItemSnapshot& s : snap.items) {
    switch (s.item) {
      case ProfilerItem::kBatchServe:
        EXPECT_EQ(s.count, 1u);
        break;
      case ProfilerItem::kStageCandidateGen:
      case ProfilerItem::kStageBlend:
      case ProfilerItem::kStageRerank:
      case ProfilerItem::kStageExplain:
        EXPECT_EQ(s.count, requests.size()) << s.name;
        // One histogram recording per stage execution, exactly.
        EXPECT_EQ(s.histogram.total(), s.count) << s.name;
        break;
      case ProfilerItem::kCandidateComponent:
        // Two components per request.
        EXPECT_EQ(s.count, 2 * requests.size());
        break;
      default:
        break;
    }
  }
  // stage_stats() is a projection of the same L2 banks.
  const StageStats stages = engine->stage_stats();
  EXPECT_EQ(stages.candidate_gen.count, requests.size());
  EXPECT_EQ(stages.rerank.count, requests.size());
}

TEST_F(StagePipelineTest, StagedPipelineMatchesInlinePipeline) {
  // The same submissions drained by a staged pipeline and an inline
  // pipeline over identically-fitted stacks: responses must match
  // bitwise at matching pins.
  auto staged_engine = stack_.MakeEngine(/*cache_capacity=*/128);
  auto fused_engine = stack_.MakeEngine(/*cache_capacity=*/128);
  PipelineConfig staged_config;
  staged_config.workers = 2;
  staged_config.staged = true;
  PipelineConfig fused_config = staged_config;
  fused_config.staged = false;

  std::vector<StreamTicketPtr> staged_tickets, fused_tickets;
  {
    ServingPipeline staged_pipeline(staged_engine.get(), &stack_.sums,
                                    staged_config);
    ServingPipeline fused_pipeline(fused_engine.get(), &stack_.sums,
                                   fused_config);
    for (size_t u = 0; u < 30; ++u) {
      RecommendRequest request;
      request.user = static_cast<UserId>(u % kUsers);
      request.k = 4;
      request.explain = (u % 2 == 0);
      auto staged_ticket = staged_pipeline.Submit(request);
      auto fused_ticket = fused_pipeline.Submit(request);
      ASSERT_TRUE(staged_ticket.ok());
      ASSERT_TRUE(fused_ticket.ok());
      staged_tickets.push_back(std::move(staged_ticket).value());
      fused_tickets.push_back(std::move(fused_ticket).value());
    }
    for (const auto& ticket : staged_tickets) {
      EXPECT_EQ(ticket->Wait(), TicketState::kDone);
    }
    for (const auto& ticket : fused_tickets) {
      EXPECT_EQ(ticket->Wait(), TicketState::kDone);
    }
  }
  for (size_t i = 0; i < staged_tickets.size(); ++i) {
    const auto& staged = staged_tickets[i]->response();
    const auto& fused = fused_tickets[i]->response();
    ASSERT_TRUE(staged.ok());
    ASSERT_TRUE(fused.ok());
    ExpectBitwiseEqual(staged.value(), fused.value(),
                       "pipeline request " + std::to_string(i));
  }
}

TEST_F(StagePipelineTest, TsanStressStagedServeWhileUpdating) {
  // Staged batches racing live updates and SUM publishes: the staged
  // path holds the shared serve lock for the whole batch while the
  // profiler records from every thread. Run under TSAN in CI.
  auto engine = stack_.MakeEngine(/*cache_capacity=*/64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&engine, &stop, t] {
      std::vector<RecommendRequest> requests;
      for (size_t u = 0; u < 6; ++u) {
        RecommendRequest request;
        request.user =
            static_cast<UserId>((t * 11 + u * 5) % kUsers);
        request.k = 4;
        request.explain = (u % 2 == 0);
        requests.push_back(request);
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const auto results = engine->RecommendBatchStaged(requests);
        for (const auto& result : results) {
          EXPECT_TRUE(result.ok());
        }
      }
    });
  }
  std::thread writer([&engine, &stop] {
    Rng rng(13);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<Interaction> batch;
      for (int i = 0; i < 4; ++i) {
        batch.push_back(
            {static_cast<UserId>(rng.UniformInt(0, kUsers - 1)),
             static_cast<ItemId>(rng.UniformInt(0, kItems - 1)),
             rng.Uniform(0.2, 2.0)});
      }
      EXPECT_TRUE(engine->ApplyInteractions(batch).ok());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  writer.join();
  // Quiescent now: every stage histogram agrees with its counter.
  const StageStats stages = engine->stage_stats();
  EXPECT_EQ(stages.candidate_gen.histogram.total(),
            stages.candidate_gen.count);
  EXPECT_EQ(stages.rerank.histogram.total(), stages.rerank.count);
  EXPECT_EQ(stages.cache_lookup.histogram.total(),
            stages.cache_lookup.count);
}

}  // namespace
}  // namespace spa::recsys
