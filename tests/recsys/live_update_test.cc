#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/content_based.h"
#include "recsys/popularity.h"
#include "recsys/recsys_test_util.h"
#include "recsys/similarity_index.h"

/// The live-update stack: sharded interaction store, incremental
/// similarity-index refresh, and the engine's ApplyInteractions write
/// path. The load-bearing claims tested here:
///
///  * shard count never changes stored data or rankings (bit-for-bit),
///  * an incremental Refresh is bitwise-identical to a full rebuild /
///    full refit, for random update streams across shard counts and
///    full-rebuild thresholds,
///  * ApplyInteractions invalidates exactly the affected users' cache
///    entries, and
///  * serve-while-ApplyInteractions is race-free (LiveUpdateEngineTest
///    runs under TSAN in CI).

namespace spa::recsys {
namespace {

/// Random two-community matrix (same shape the serving bench uses).
InteractionMatrix MakeRandomMatrix(uint64_t seed, size_t users,
                                   size_t items, size_t shards) {
  Rng rng(seed);
  InteractionMatrix m(shards);
  for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
    const auto base =
        static_cast<ItemId>((u % 2 == 0) ? 0 : items / 2);
    for (int j = 0; j < 6; ++j) {
      const auto item = static_cast<ItemId>(
          base + rng.UniformInt(0, static_cast<int64_t>(items) / 2 - 1));
      m.Add(u, item, rng.Uniform(0.2, 3.0));
    }
  }
  return m;
}

/// One random interaction batch, applied nowhere (the caller decides).
std::vector<Interaction> MakeBatch(Rng* rng, size_t batch_size,
                                   size_t users, size_t items) {
  std::vector<Interaction> batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    batch.push_back(
        {static_cast<UserId>(
             rng->UniformInt(0, static_cast<int64_t>(users) - 1)),
         static_cast<ItemId>(
             rng->UniformInt(0, static_cast<int64_t>(items) - 1)),
         rng->Uniform(0.2, 3.0)});
  }
  return batch;
}

template <typename Id>
void ExpectSameIndex(const SimilarityIndex<Id>& a,
                     const SimilarityIndex<Id>& b,
                     const std::vector<Id>& row_ids) {
  for (const Id id : row_ids) {
    const auto ra = a.NeighborsOf(id);
    const auto rb = b.NeighborsOf(id);
    ASSERT_EQ(ra.size(), rb.size()) << "row " << id;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id) << "row " << id << " rank " << i;
      EXPECT_EQ(ra[i].similarity, rb[i].similarity)  // bitwise
          << "row " << id << " rank " << i;
    }
  }
}

// ---- sharded store ---------------------------------------------------------

TEST(ShardedMatrixTest, ShardCountIsContentInvariant) {
  // The same Add stream into 1, 3 and 8 shards must store bit-for-bit
  // identical data: row order, posting order, weights, norms, counts.
  std::vector<InteractionMatrix> matrices;
  matrices.emplace_back(1);
  matrices.emplace_back(3);
  matrices.emplace_back(8);
  for (InteractionMatrix& m : matrices) {
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
      m.Add(static_cast<UserId>(rng.UniformInt(0, 39)),
            static_cast<ItemId>(rng.UniformInt(0, 19)),
            rng.Uniform(0.1, 2.0));
    }
  }
  const InteractionMatrix& reference = matrices[0];
  EXPECT_EQ(reference.shard_count(), 1u);
  EXPECT_EQ(matrices[2].shard_count(), 8u);
  for (const InteractionMatrix& m : matrices) {
    EXPECT_EQ(m.users(), reference.users());
    EXPECT_EQ(m.items(), reference.items());
    EXPECT_EQ(m.version(), reference.version());
    EXPECT_EQ(m.interaction_count(), reference.interaction_count());
    EXPECT_EQ(m.user_count(), reference.user_count());
    EXPECT_EQ(m.item_count(), reference.item_count());
    for (UserId u : reference.users()) {
      EXPECT_EQ(m.ItemsOf(u), reference.ItemsOf(u)) << "user " << u;
      EXPECT_EQ(m.UserNormSquared(u), reference.UserNormSquared(u));
    }
    for (ItemId i : reference.items()) {
      EXPECT_EQ(m.UsersOf(i), reference.UsersOf(i)) << "item " << i;
      EXPECT_EQ(m.ItemNormSquared(i), reference.ItemNormSquared(i));
    }
  }
}

TEST(ShardedMatrixTest, ShardVersionsSumToGlobalVersion) {
  const InteractionMatrix m = MakeRandomMatrix(11, 30, 20, 4);
  uint64_t user_side = 0, item_side = 0;
  for (size_t s = 0; s < m.shard_count(); ++s) {
    user_side += m.user_shard_version(s);
    item_side += m.item_shard_version(s);
  }
  EXPECT_EQ(user_side, m.version());
  EXPECT_EQ(item_side, m.version());
  EXPECT_GT(m.version(), 0u);
}

TEST(ShardedMatrixTest, TouchedSinceReportsExactlyTheDirtyRows) {
  InteractionMatrix m = MakeRandomMatrix(13, 30, 20, 4);
  const uint64_t checkpoint = m.version();
  EXPECT_TRUE(m.UsersTouchedSince(checkpoint).empty());
  EXPECT_TRUE(m.ItemsTouchedSince(checkpoint).empty());

  m.Add(5, 17, 1.0);
  m.Add(22, 17, 0.5);
  m.Add(5, 3, 2.0);
  EXPECT_EQ(m.UsersTouchedSince(checkpoint),
            (std::vector<UserId>{5, 22}));
  EXPECT_EQ(m.ItemsTouchedSince(checkpoint),
            (std::vector<ItemId>{3, 17}));
  // From the beginning of time, everything is dirty.
  EXPECT_EQ(m.UsersTouchedSince(0).size(), m.user_count());
  EXPECT_EQ(m.ItemsTouchedSince(0).size(), m.item_count());
}

TEST(ShardedMatrixTest, MoveAssignPreservesContent) {
  // core::Spa rebuilds its store in place via move assignment.
  InteractionMatrix a = MakeRandomMatrix(17, 20, 10, 2);
  const size_t interactions = a.interaction_count();
  InteractionMatrix b;
  b = std::move(a);
  EXPECT_EQ(b.interaction_count(), interactions);
  EXPECT_EQ(b.shard_count(), 2u);
  EXPECT_FALSE(b.ItemsOf(b.users().front()).empty());
}

// ---- incremental index refresh ---------------------------------------------

/// Applies random update rounds and checks after each that the
/// refreshed index equals a from-scratch rebuild, bitwise, for every
/// row. Sweeps shard counts and full-rebuild thresholds (0 forces the
/// fallback path, 1.0 forces the incremental path).
TEST(IndexRefreshTest, UserIndexRefreshMatchesFullRebuild) {
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    for (const double threshold : {0.0, 0.3, 1.0}) {
      InteractionMatrix m = MakeRandomMatrix(23, 60, 30, shards);
      SimilarityIndexConfig config;
      config.top_n = 5;
      config.full_rebuild_fraction = threshold;
      auto index = BuildUserSimilarityIndex(m, config);
      Rng rng(29);
      for (int round = 0; round < 4; ++round) {
        for (const Interaction& x : MakeBatch(&rng, 8, 60, 30)) {
          m.Add(x.user, x.item, x.weight);
        }
        const auto report = RefreshUserSimilarityIndex(&index, m);
        ASSERT_TRUE(report.refreshed);
        EXPECT_EQ(index.built_version(), m.version());
        const auto reference = BuildUserSimilarityIndex(m, config);
        ExpectSameIndex(index, reference, m.users());
        if (threshold == 0.0) {
          EXPECT_TRUE(report.full_rebuild);
        }
        if (threshold == 1.0) {
          EXPECT_FALSE(report.full_rebuild);
          EXPECT_GT(report.rows.size(), 0u);
          EXPECT_GE(report.rows.size(), report.dirty_rows);
        }
      }
    }
  }
}

TEST(IndexRefreshTest, ItemIndexRefreshMatchesFullRebuild) {
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    for (const double threshold : {0.0, 0.3, 1.0}) {
      InteractionMatrix m = MakeRandomMatrix(31, 60, 30, shards);
      SimilarityIndexConfig config;
      config.top_n = 5;
      config.full_rebuild_fraction = threshold;
      auto index = BuildItemSimilarityIndex(m, config);
      Rng rng(37);
      for (int round = 0; round < 4; ++round) {
        for (const Interaction& x : MakeBatch(&rng, 8, 60, 30)) {
          m.Add(x.user, x.item, x.weight);
        }
        const auto report = RefreshItemSimilarityIndex(&index, m);
        ASSERT_TRUE(report.refreshed);
        EXPECT_EQ(index.built_version(), m.version());
        const auto reference = BuildItemSimilarityIndex(m, config);
        ExpectSameIndex(index, reference, m.items());
      }
    }
  }
}

TEST(IndexRefreshTest, CleanIndexRefreshIsANoOp) {
  const InteractionMatrix m = MakeRandomMatrix(41, 40, 20, 2);
  auto index = BuildUserSimilarityIndex(m);
  const auto report = RefreshUserSimilarityIndex(&index, m);
  EXPECT_FALSE(report.refreshed);
  EXPECT_EQ(index.stats().refreshes, 0u);
}

TEST(IndexRefreshTest, NewUsersAndItemsEnterTheIndex) {
  InteractionMatrix m = MakeRandomMatrix(43, 40, 20, 2);
  SimilarityIndexConfig config;
  config.full_rebuild_fraction = 1.0;  // force the incremental path
  auto user_index = BuildUserSimilarityIndex(m, config);
  auto item_index = BuildItemSimilarityIndex(m, config);

  // A brand-new user interacts with a brand-new item and an old one.
  m.Add(999, 777, 1.0);
  m.Add(999, 3, 2.0);
  ASSERT_TRUE(RefreshUserSimilarityIndex(&user_index, m).refreshed);
  ASSERT_TRUE(RefreshItemSimilarityIndex(&item_index, m).refreshed);

  ExpectSameIndex(user_index, BuildUserSimilarityIndex(m, config),
                  m.users());
  ExpectSameIndex(item_index, BuildItemSimilarityIndex(m, config),
                  m.items());
  EXPECT_FALSE(user_index.NeighborsOf(999).empty());
}

TEST(IndexRefreshTest, StatsAccumulateAcrossRefreshes) {
  InteractionMatrix m = MakeRandomMatrix(47, 40, 20, 2);
  SimilarityIndexConfig config;
  config.full_rebuild_fraction = 1.0;
  auto index = BuildUserSimilarityIndex(m, config);
  EXPECT_EQ(index.stats().refreshes, 0u);
  m.Add(1, 2, 1.0);
  (void)RefreshUserSimilarityIndex(&index, m);
  m.Add(3, 4, 1.0);
  (void)RefreshUserSimilarityIndex(&index, m);
  EXPECT_EQ(index.stats().refreshes, 2u);
  EXPECT_EQ(index.stats().full_rebuild_refreshes, 0u);
  EXPECT_GT(index.stats().rows_refreshed_total, 0u);
  EXPECT_GT(index.stats().last_refresh_rows, 0u);
  EXPECT_EQ(index.stats().matrix_version, m.version());
  EXPECT_GT(index.stats().entries, 0u);
  EXPECT_GT(index.stats().memory_bytes, 0u);
}

// ---- recommender-level refresh ---------------------------------------------

TEST(KnnRefreshTest, RefreshRestoresServingAfterMutation) {
  InteractionMatrix m = MakeTwoCommunityMatrix();
  UserKnnRecommender user_rec;  // indexed by default
  ItemKnnRecommender item_rec;
  ASSERT_TRUE(user_rec.Fit(m).ok());
  ASSERT_TRUE(item_rec.Fit(m).ok());

  m.Add(0, 7, 1.0);  // mutation after Fit: serving would SPA_CHECK

  RefreshOutcome user_outcome;
  ASSERT_TRUE(user_rec.Refresh(&user_outcome).ok());
  EXPECT_TRUE(user_outcome.refreshed_index);
  RefreshOutcome item_outcome;
  ASSERT_TRUE(item_rec.Refresh(&item_outcome).ok());
  EXPECT_TRUE(item_outcome.refreshed_index);

  // Serving resumes and matches freshly fitted recommenders bitwise.
  UserKnnRecommender user_refit;
  ItemKnnRecommender item_refit;
  ASSERT_TRUE(user_refit.Fit(m).ok());
  ASSERT_TRUE(item_refit.Fit(m).ok());
  for (UserId u : m.users()) {
    const auto refreshed_u = RecommendTopK(user_rec, u, 5);
    const auto refit_u = RecommendTopK(user_refit, u, 5);
    ASSERT_EQ(refreshed_u.size(), refit_u.size());
    for (size_t i = 0; i < refreshed_u.size(); ++i) {
      EXPECT_EQ(refreshed_u[i].item, refit_u[i].item);
      EXPECT_EQ(refreshed_u[i].score, refit_u[i].score);
    }
    const auto refreshed_i = RecommendTopK(item_rec, u, 5);
    const auto refit_i = RecommendTopK(item_refit, u, 5);
    ASSERT_EQ(refreshed_i.size(), refit_i.size());
    for (size_t i = 0; i < refreshed_i.size(); ++i) {
      EXPECT_EQ(refreshed_i[i].item, refit_i[i].item);
      EXPECT_EQ(refreshed_i[i].score, refit_i[i].score);
    }
  }
}

TEST(KnnRefreshTest, UserKnnReportsReverseNeighborsAsAffected) {
  // Two communities share no items: an update to user 0 can only
  // affect community-0 rows.
  InteractionMatrix m = MakeTwoCommunityMatrix();
  KnnConfig config;
  config.refresh_full_rebuild_fraction = 1.0;
  UserKnnRecommender rec(config);
  ASSERT_TRUE(rec.Fit(m).ok());
  m.Add(0, 2, 1.0);
  RefreshOutcome outcome;
  ASSERT_TRUE(rec.Refresh(&outcome).ok());
  EXPECT_FALSE(outcome.all_users);
  EXPECT_FALSE(outcome.affected_users.empty());
  for (const UserId u : outcome.affected_users) {
    EXPECT_LT(u, 5) << "community-1 user reported affected";
  }
}

TEST(KnnRefreshTest, LazyKnnCannotBoundTheAffectedSet) {
  InteractionMatrix m = MakeTwoCommunityMatrix();
  UserKnnRecommender rec(KnnConfig{.use_index = false});
  ASSERT_TRUE(rec.Fit(m).ok());
  m.Add(0, 2, 1.0);
  RefreshOutcome outcome;
  ASSERT_TRUE(rec.Refresh(&outcome).ok());
  EXPECT_TRUE(outcome.all_users);
  EXPECT_FALSE(outcome.refreshed_index);
}

TEST(PopularityRefreshTest, RefreshMatchesRefitBitwise) {
  InteractionMatrix m = MakeRandomMatrix(53, 30, 15, 2);
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(m).ok());
  Rng rng(59);
  for (const Interaction& x : MakeBatch(&rng, 10, 30, 15)) {
    m.Add(x.user, x.item, x.weight);
  }
  RefreshOutcome outcome;
  ASSERT_TRUE(rec.Refresh(&outcome).ok());
  EXPECT_TRUE(outcome.all_users);  // popularity is non-personalized
  EXPECT_GT(outcome.rows_refreshed, 0u);

  PopularityRecommender refit;
  ASSERT_TRUE(refit.Fit(m).ok());
  CandidateQuery query;
  query.user = 0;
  query.k = 15;
  query.exclude_seen = ExcludeSeen::kNo;
  const auto a = rec.RecommendCandidates(query);
  const auto b = refit.RecommendCandidates(query);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

// ---- engine ApplyInteractions ----------------------------------------------

std::unique_ptr<RecsysEngine> MakeKnnEngine(
    size_t cache_capacity, double full_rebuild_fraction = 0.25) {
  EngineConfig config;
  config.response_cache_capacity = cache_capacity;
  KnnConfig knn;
  knn.refresh_full_rebuild_fraction = full_rebuild_fraction;
  auto engine = std::make_unique<RecsysEngine>(config);
  engine->AddComponent(std::make_unique<UserKnnRecommender>(knn), 0.6);
  engine->AddComponent(std::make_unique<ItemKnnRecommender>(knn), 0.4);
  return engine;
}

void ExpectSameResponses(const RecommendResponse& a,
                         const RecommendResponse& b) {
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].item, b.items[i].item);
    EXPECT_EQ(a.items[i].score, b.items[i].score);  // bitwise
  }
}

TEST(LiveUpdateEngineTest, ApplyInteractionsMatchesFullRefit) {
  // The tentpole claim end to end: after every live batch, the
  // incrementally maintained engine ranks bitwise-identically to an
  // engine fully refitted on the same matrix.
  InteractionMatrix matrix = MakeRandomMatrix(61, 60, 30, 4);
  auto live = MakeKnnEngine(/*cache_capacity=*/128);
  ASSERT_TRUE(live->Fit(&matrix).ok());
  auto refit = MakeKnnEngine(/*cache_capacity=*/0);
  Rng rng(67);
  for (int round = 0; round < 3; ++round) {
    const auto batch = MakeBatch(&rng, 12, 60, 30);
    const auto report = live->ApplyInteractions(batch);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().interactions, batch.size());
    ASSERT_TRUE(refit->Fit(matrix).ok());
    for (UserId u : matrix.users()) {
      RecommendRequest request;
      request.user = u;
      request.k = 8;
      const auto a = live->Recommend(request);
      const auto b = refit->Recommend(request);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ExpectSameResponses(a.value(), b.value());
    }
  }
  EXPECT_EQ(live->live_update_stats().batches, 3u);
  EXPECT_GT(live->live_update_stats().rows_refreshed, 0u);
}

TEST(LiveUpdateEngineTest, ShardCountDoesNotChangeRankings) {
  // N=1 vs N=8: identical adds, identical live-update batches,
  // identical rankings throughout.
  InteractionMatrix m1 = MakeRandomMatrix(71, 60, 30, 1);
  InteractionMatrix m8 = MakeRandomMatrix(71, 60, 30, 8);
  auto e1 = MakeKnnEngine(64);
  auto e8 = MakeKnnEngine(64);
  ASSERT_TRUE(e1->Fit(&m1).ok());
  ASSERT_TRUE(e8->Fit(&m8).ok());

  auto expect_identical = [&] {
    for (UserId u : m1.users()) {
      RecommendRequest request;
      request.user = u;
      request.k = 8;
      const auto a = e1->Recommend(request);
      const auto b = e8->Recommend(request);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ExpectSameResponses(a.value(), b.value());
    }
  };
  expect_identical();

  Rng rng(73);
  const auto batch = MakeBatch(&rng, 16, 60, 30);
  ASSERT_TRUE(e1->ApplyInteractions(batch).ok());
  ASSERT_TRUE(e8->ApplyInteractions(batch).ok());
  EXPECT_EQ(m1.version(), m8.version());
  expect_identical();
}

TEST(LiveUpdateEngineTest, OnlyAffectedUsersCacheEntriesAreDropped) {
  // Two communities share no items, so a batch touching community 0
  // must leave community-1 entries hot. (KNN-only stack: popularity
  // would honestly report everyone affected.)
  InteractionMatrix matrix = MakeTwoCommunityMatrix();
  // Force the incremental path: the 10-user fixture trips the default
  // full-rebuild threshold, and a full rebuild honestly reports every
  // user as potentially affected.
  auto engine = MakeKnnEngine(/*cache_capacity=*/64,
                              /*full_rebuild_fraction=*/1.0);
  ASSERT_TRUE(engine->Fit(&matrix).ok());

  RecommendRequest community0;
  community0.user = 1;
  community0.k = 3;
  RecommendRequest community1;
  community1.user = 6;
  community1.k = 3;
  ASSERT_TRUE(engine->Recommend(community0).ok());
  ASSERT_TRUE(engine->Recommend(community1).ok());
  EXPECT_EQ(engine->cache_size(), 2u);

  const auto report =
      engine->ApplyInteractions({{/*user=*/0, /*item=*/2, 1.0}});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().invalidated_all);
  EXPECT_GT(report.value().affected_users, 0u);
  EXPECT_EQ(report.value().cache_entries_invalidated, 1u);

  // Community 1 still hits; community 0 recomputes.
  ASSERT_TRUE(engine->Recommend(community1).ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
  ASSERT_TRUE(engine->Recommend(community0).ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
}

TEST(LiveUpdateEngineTest, OutOfBandStaleEntriesAreNotResurrected) {
  // A no-op-Refresh stack (content-based serves per-user state from
  // the live matrix). An entry staled by an out-of-band matrix
  // mutation must stay stale through a later ApplyInteractions that
  // does not mention its user — re-stamping it would resurrect a
  // pre-mutation response as a cache hit.
  InteractionMatrix matrix = MakeTwoCommunityMatrix();
  auto content = std::make_unique<ContentBasedRecommender>();
  for (ItemId item = 0; item < 12; ++item) {
    content->SetItemFeatures(
        item, ml::SparseVector({{item % 3, 1.0}, {3 + item % 2, 0.5}}));
  }
  EngineConfig config;
  config.response_cache_capacity = 16;
  auto engine = std::make_unique<RecsysEngine>(config);
  engine->AddComponent(std::move(content), 1.0);
  ASSERT_TRUE(engine->Fit(&matrix).ok());

  RecommendRequest for_user0;
  for_user0.user = 0;
  for_user0.k = 3;
  ASSERT_TRUE(engine->Recommend(for_user0).ok());  // cached

  matrix.Add(0, 10, 3.0);  // out-of-band: user 0's profile changed
  const auto report = engine->ApplyInteractions({{/*user=*/6, 5, 1.0}});
  ASSERT_TRUE(report.ok());

  ASSERT_TRUE(engine->Recommend(for_user0).ok());
  EXPECT_EQ(engine->cache_stats().hits, 0u);  // recomputed, not served
}

TEST(LiveUpdateEngineTest, RewarmedEntriesMatchColdReserveAfterApply) {
  // A hot user (frequency >= rewarm_min_frequency) whose cache entry
  // is invalidated by ApplyInteractions is re-served into the cache
  // before the writer returns. The re-warmed entry must be a cache
  // HIT whose bytes equal a cold re-serve at the post-apply state —
  // re-warming is a latency optimisation, never a staleness hazard.
  InteractionMatrix matrix = MakeTwoCommunityMatrix();
  InteractionMatrix reference_matrix = MakeTwoCommunityMatrix();
  auto engine = MakeKnnEngine(/*cache_capacity=*/64,
                              /*full_rebuild_fraction=*/1.0);
  ASSERT_TRUE(engine->Fit(&matrix).ok());
  // Cache-less reference replaying the same Fit + Apply: every serve
  // is a cold compute at the current state.
  auto reference = MakeKnnEngine(/*cache_capacity=*/0,
                                 /*full_rebuild_fraction=*/1.0);
  ASSERT_TRUE(reference->Fit(&reference_matrix).ok());

  RecommendRequest hot;
  hot.user = 1;
  hot.k = 3;
  RecommendRequest cold;
  cold.user = 3;
  cold.k = 3;
  // Two serves push user 1 to frequency 2.0 (== the default
  // rewarm_min_frequency); user 3's single serve stays below it.
  ASSERT_TRUE(engine->Recommend(hot).ok());
  ASSERT_TRUE(engine->Recommend(hot).ok());
  ASSERT_TRUE(engine->Recommend(cold).ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
  EXPECT_EQ(engine->user_frequency(1), 2.0);
  EXPECT_EQ(engine->user_frequency(3), 1.0);

  // Touches community 0: both cached entries invalidate, but only the
  // hot user is re-warmed.
  const std::vector<Interaction> batch = {{/*user=*/0, /*item=*/2, 1.0}};
  const auto report = engine->ApplyInteractions(batch);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(reference->ApplyInteractions(batch).ok());
  EXPECT_EQ(report.value().cache_entries_invalidated, 2u);
  EXPECT_EQ(report.value().users_rewarmed, 1u);
  EXPECT_EQ(report.value().entries_rewarmed, 1u);
  EXPECT_GE(report.value().rewarm_seconds, 0.0);

  // The hot user hits on the re-warmed entry; bytes match the cold
  // reference at the post-apply version. The cold user misses.
  const auto warmed = engine->Recommend(hot);
  ASSERT_TRUE(warmed.ok());
  EXPECT_EQ(engine->cache_stats().hits, 2u);
  const auto recomputed = reference->Recommend(hot);
  ASSERT_TRUE(recomputed.ok());
  ExpectSameResponses(warmed.value(), recomputed.value());
  EXPECT_FALSE(warmed.value().degraded);

  ASSERT_TRUE(engine->Recommend(cold).ok());
  EXPECT_EQ(engine->cache_stats().hits, 2u);  // miss: not re-warmed

  EXPECT_EQ(engine->live_update_stats().users_rewarmed, 1u);
  EXPECT_EQ(engine->live_update_stats().entries_rewarmed, 1u);
}

TEST(LiveUpdateEngineTest, RewarmHonorsLimitAndPrefersHigherFrequency) {
  // rewarm_limit caps writer-lane work; candidates are taken in
  // (frequency desc, user asc) order so the hottest users win.
  EngineConfig config;
  config.response_cache_capacity = 64;
  config.rewarm_limit = 1;
  KnnConfig knn;
  knn.refresh_full_rebuild_fraction = 1.0;
  auto engine = std::make_unique<RecsysEngine>(config);
  engine->AddComponent(std::make_unique<UserKnnRecommender>(knn), 0.6);
  engine->AddComponent(std::make_unique<ItemKnnRecommender>(knn), 0.4);
  InteractionMatrix matrix = MakeTwoCommunityMatrix();
  ASSERT_TRUE(engine->Fit(&matrix).ok());

  RecommendRequest hotter;
  hotter.user = 1;
  hotter.k = 3;
  RecommendRequest warm;
  warm.user = 2;
  warm.k = 3;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine->Recommend(hotter).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(engine->Recommend(warm).ok());
  EXPECT_EQ(engine->user_frequency(1), 3.0);
  EXPECT_EQ(engine->user_frequency(2), 2.0);
  const uint64_t hits_before = engine->cache_stats().hits;

  // Both users are eligible (frequency >= 2.0) but the limit admits
  // only the hotter one.
  const auto report = engine->ApplyInteractions({{/*user=*/0, 2, 1.0}});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().cache_entries_invalidated, 2u);
  EXPECT_EQ(report.value().users_rewarmed, 1u);
  EXPECT_EQ(report.value().entries_rewarmed, 1u);

  ASSERT_TRUE(engine->Recommend(hotter).ok());
  EXPECT_EQ(engine->cache_stats().hits, hits_before + 1);  // re-warmed
  ASSERT_TRUE(engine->Recommend(warm).ok());
  EXPECT_EQ(engine->cache_stats().hits, hits_before + 1);  // shed by limit
}

TEST(LiveUpdateEngineTest, ConstFitRejectsApplyInteractions) {
  InteractionMatrix matrix = MakeTwoCommunityMatrix();
  auto engine = MakeKnnEngine(0);
  ASSERT_TRUE(engine->Fit(matrix).ok());  // const overload: read-only
  const auto result = engine->ApplyInteractions({{0, 2, 1.0}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), spa::StatusCode::kFailedPrecondition);
}

TEST(LiveUpdateEngineTest, ServeWhileApplyInteractionsIsSafe) {
  // Concurrent Recommend / RecommendBatch against a stream of live
  // update batches: every response must stay well-formed. Run under
  // TSAN in CI to certify data-race freedom of the reader/writer
  // locking.
  InteractionMatrix matrix = MakeRandomMatrix(79, 40, 20, 4);
  EngineConfig config;
  config.response_cache_capacity = 64;
  config.batch_threads = 2;
  auto engine = std::make_unique<RecsysEngine>(config);
  engine->AddComponent(std::make_unique<UserKnnRecommender>(), 0.6);
  engine->AddComponent(std::make_unique<ItemKnnRecommender>(), 0.4);
  ASSERT_TRUE(engine->Fit(&matrix).ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> failure{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        RecommendRequest request;
        request.user = static_cast<UserId>((t * 13 + i++) % 40);
        request.k = 5;
        if (!engine->Recommend(request).ok()) {
          failure.store(true);
          return;
        }
      }
    });
  }
  std::thread batch_reader([&] {
    std::vector<RecommendRequest> requests;
    for (UserId u = 0; u < 8; ++u) {
      RecommendRequest request;
      request.user = u;
      request.k = 5;
      requests.push_back(std::move(request));
    }
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& result : engine->RecommendBatch(requests)) {
        if (!result.ok()) {
          failure.store(true);
          return;
        }
      }
    }
  });

  Rng rng(83);
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(
        engine->ApplyInteractions(MakeBatch(&rng, 4, 40, 20)).ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  batch_reader.join();
  EXPECT_FALSE(failure.load());
  EXPECT_EQ(engine->live_update_stats().batches, 30u);
}

// ---- ApplyInteractions determinism contract --------------------------------
//
// ApplyInteractions applies shard groups sequentially *on purpose*:
// registration order of brand-new users/items must be deterministic so
// shard counts and scheduling never change stored bytes or rankings.
// These tests pin that contract so the planned parallelization of
// shard-group application has a regression gate: whatever executes the
// batch must preserve (a) bit-identical stored bytes for any shard
// count given the same op order, (b) op-order-invariant row contents
// for row-disjoint batches, and (c) first-appearance registration
// order.

/// Strict comparison: identical stored bytes including row order and
/// registration order (the shard-count invariance contract).
void ExpectSameMatrixBytes(const InteractionMatrix& a,
                           const InteractionMatrix& b) {
  ASSERT_EQ(a.user_count(), b.user_count());
  ASSERT_EQ(a.item_count(), b.item_count());
  EXPECT_EQ(a.interaction_count(), b.interaction_count());
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(a.users(), b.users());  // registration order
  EXPECT_EQ(a.items(), b.items());
  for (const UserId user : a.users()) {
    const auto& ra = a.ItemsOf(user);
    const auto& rb = b.ItemsOf(user);
    ASSERT_EQ(ra.size(), rb.size()) << "user " << user;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].first, rb[i].first) << "user " << user;
      EXPECT_EQ(ra[i].second, rb[i].second) << "user " << user;
    }
    EXPECT_EQ(a.UserNormSquared(user), b.UserNormSquared(user))
        << "user " << user;
  }
  for (const ItemId item : a.items()) {
    const auto& pa = a.UsersOf(item);
    const auto& pb = b.UsersOf(item);
    ASSERT_EQ(pa.size(), pb.size()) << "item " << item;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].first, pb[i].first) << "item " << item;
      EXPECT_EQ(pa[i].second, pb[i].second) << "item " << item;
    }
    EXPECT_EQ(a.ItemNormSquared(item), b.ItemNormSquared(item))
        << "item " << item;
  }
}

/// Canonical comparison: identical *content* with rows and postings
/// sorted — what op-order shuffles must preserve (registration and
/// in-row order legitimately follow op order).
void ExpectSameCanonicalContent(const InteractionMatrix& a,
                                const InteractionMatrix& b) {
  EXPECT_EQ(a.interaction_count(), b.interaction_count());
  EXPECT_EQ(a.version(), b.version());
  auto sorted_ids = [](auto ids) {
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  ASSERT_EQ(sorted_ids(a.users()), sorted_ids(b.users()));
  ASSERT_EQ(sorted_ids(a.items()), sorted_ids(b.items()));
  auto sorted_row = [](std::vector<std::pair<ItemId, double>> row) {
    std::sort(row.begin(), row.end());
    return row;
  };
  for (const UserId user : a.users()) {
    const auto ra = sorted_row(a.ItemsOf(user));
    const auto rb = sorted_row(b.ItemsOf(user));
    ASSERT_EQ(ra.size(), rb.size()) << "user " << user;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].first, rb[i].first) << "user " << user;
      EXPECT_EQ(ra[i].second, rb[i].second) << "user " << user;
    }
    EXPECT_EQ(a.UserNormSquared(user), b.UserNormSquared(user))
        << "user " << user;
  }
  for (const ItemId item : a.items()) {
    EXPECT_EQ(a.ItemNormSquared(item), b.ItemNormSquared(item))
        << "item " << item;
  }
}

TEST(ApplyDeterminismTest, SameBatchesSameBytesForEveryShardCount) {
  // Identical base stream + identical ApplyInteractions batches into
  // 1/2/3/8 shards: every stored byte (row order, posting order,
  // weights, norms, registration order, version) must match.
  std::vector<size_t> shard_counts = {1, 2, 3, 8};
  std::vector<InteractionMatrix> matrices;
  std::vector<std::unique_ptr<RecsysEngine>> engines;
  for (const size_t shards : shard_counts) {
    matrices.push_back(MakeRandomMatrix(91, 60, 30, shards));
  }
  for (size_t i = 0; i < matrices.size(); ++i) {
    engines.push_back(MakeKnnEngine(/*cache_capacity=*/64));
    ASSERT_TRUE(engines[i]->Fit(&matrices[i]).ok());
  }
  Rng rng(97);
  for (int round = 0; round < 3; ++round) {
    // The batch deliberately contains brand-new users and items (ids
    // beyond the fitted range) plus repeated (user, item) cells.
    auto batch = MakeBatch(&rng, 14, 64, 34);
    batch.push_back(batch.front());  // guaranteed duplicate cell
    for (auto& engine : engines) {
      ASSERT_TRUE(engine->ApplyInteractions(batch).ok());
    }
    for (size_t i = 1; i < matrices.size(); ++i) {
      ExpectSameMatrixBytes(matrices[0], matrices[i]);
    }
  }
}

TEST(ApplyDeterminismTest, ApplyBatchMatchesSequentialAddBitwise) {
  // ApplyBatch (the parallel shard-group path ApplyInteractions uses)
  // must store exactly the bytes of a sequential Add loop over the
  // same batch — every row, posting, weight, norm, stamp, version and
  // registration entry — for any shard count, with or without a pool.
  ThreadPool pool(4);
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{3},
                              size_t{8}}) {
    InteractionMatrix sequential = MakeRandomMatrix(53, 40, 24, shards);
    InteractionMatrix pooled = MakeRandomMatrix(53, 40, 24, shards);
    InteractionMatrix poolless = MakeRandomMatrix(53, 40, 24, shards);
    Rng rng(71);
    for (int round = 0; round < 3; ++round) {
      // New users/items beyond the fitted range plus a duplicate cell.
      auto batch = MakeBatch(&rng, 20, 48, 30);
      batch.push_back(batch.front());
      for (const Interaction& x : batch) {
        sequential.Add(x.user, x.item, x.weight);
      }
      InteractionMatrix::ShardGroupTiming timing;
      pooled.ApplyBatch(batch, &pool, &timing);
      poolless.ApplyBatch(batch, /*pool=*/nullptr);
      ExpectSameMatrixBytes(sequential, pooled);
      ExpectSameMatrixBytes(sequential, poolless);
      // Timing covers every shard group, and the batch's ops are fully
      // accounted for across each side's groups.
      ASSERT_EQ(timing.user_shard_seconds.size(), shards);
      ASSERT_EQ(timing.item_shard_seconds.size(), shards);
      size_t user_ops = 0, item_ops = 0;
      for (const size_t n : timing.user_shard_ops) user_ops += n;
      for (const size_t n : timing.item_shard_ops) item_ops += n;
      EXPECT_EQ(user_ops, batch.size());
      EXPECT_EQ(item_ops, batch.size());
    }
  }
}

TEST(ApplyDeterminismTest, RowDisjointBatchIsOrderInvariant) {
  // A batch touching every user row and item posting at most once is
  // fully op-order-invariant: any shuffle stores the same content
  // (weights and norms bitwise) and serves the same rankings. (With
  // repeated rows per batch, in-row FP accumulation order is the op
  // order by design — that is why the sequential contract pins op
  // order, not an arbitrary schedule.)
  std::vector<Interaction> batch;
  Rng rng(101);
  for (int i = 0; i < 12; ++i) {
    // Distinct users 0..11 (half existing, half new), distinct items.
    batch.push_back({static_cast<UserId>(i % 2 == 0 ? i : 60 + i),
                     static_cast<ItemId>(i % 3 == 0 ? i : 30 + i),
                     rng.Uniform(0.2, 3.0)});
  }
  auto run_shuffled = [&](uint64_t shuffle_seed) {
    auto shuffled = batch;
    Rng shuffle_rng(shuffle_seed);
    shuffle_rng.Shuffle(&shuffled);
    auto matrix = std::make_unique<InteractionMatrix>(
        MakeRandomMatrix(91, 60, 30, 3));
    auto engine = MakeKnnEngine(/*cache_capacity=*/64);
    EXPECT_TRUE(engine->Fit(matrix.get()).ok());
    EXPECT_TRUE(engine->ApplyInteractions(shuffled).ok());
    return std::make_pair(std::move(matrix), std::move(engine));
  };
  auto [m0, e0] = run_shuffled(1);
  for (uint64_t shuffle_seed = 2; shuffle_seed <= 5; ++shuffle_seed) {
    auto [m1, e1] = run_shuffled(shuffle_seed);
    ExpectSameCanonicalContent(*m0, *m1);
    for (UserId u : m0->users()) {
      RecommendRequest request;
      request.user = u;
      request.k = 8;
      const auto a = e0->Recommend(request);
      const auto b = e1->Recommend(request);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ExpectSameResponses(a.value(), b.value());
    }
  }
}

TEST(ApplyDeterminismTest, RegistrationOrderFollowsBatchOrder) {
  // New users/items register in first-appearance order of the batch —
  // the property that forces sequential application today and that a
  // parallelized ApplyInteractions must reproduce.
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    InteractionMatrix matrix = MakeRandomMatrix(91, 20, 10, shards);
    auto engine = MakeKnnEngine(/*cache_capacity=*/0);
    ASSERT_TRUE(engine->Fit(&matrix).ok());
    const size_t users_before = matrix.user_count();
    const size_t items_before = matrix.item_count();
    const std::vector<Interaction> batch = {
        {static_cast<UserId>(105), static_cast<ItemId>(53), 1.0},
        {static_cast<UserId>(101), static_cast<ItemId>(57), 1.0},
        {static_cast<UserId>(105), static_cast<ItemId>(51), 1.0},
        {static_cast<UserId>(103), static_cast<ItemId>(53), 1.0},
    };
    ASSERT_TRUE(engine->ApplyInteractions(batch).ok());
    const std::vector<UserId> expected_users = {105, 101, 103};
    const std::vector<ItemId> expected_items = {53, 57, 51};
    ASSERT_EQ(matrix.user_count(), users_before + 3);
    ASSERT_EQ(matrix.item_count(), items_before + 3);
    for (size_t i = 0; i < expected_users.size(); ++i) {
      EXPECT_EQ(matrix.users()[users_before + i], expected_users[i])
          << "shards=" << shards;
    }
    for (size_t i = 0; i < expected_items.size(); ++i) {
      EXPECT_EQ(matrix.items()[items_before + i], expected_items[i])
          << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace spa::recsys
