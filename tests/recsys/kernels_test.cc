// Bitwise parity tests of the SIMD scoring kernels: every kernel must
// produce byte-identical results under the scalar reference and the
// AVX2 backend, for randomized inputs including the awkward shapes
// (empty, singleton, lengths straddling the 4-lane width, unaligned
// buffers). This is the contract that lets the engine's differential
// parity gates hold on machines with and without AVX2.

#include "recsys/kernels.h"

#include <cmath>
#include <cstring>
#include <random>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "recsys/similarity_index.h"

namespace spa::recsys::kernels {
namespace {

/// Runs `fn` under the scalar backend, then (when the CPU supports
/// it) under AVX2, returning whether AVX2 ran. Restores kAuto.
template <typename Fn>
bool RunBothBackends(const Fn& fn) {
  SetBackend(Backend::kScalar);
  fn(Backend::kScalar);
  bool ran_avx2 = false;
  if (SupportsAvx2()) {
    SetBackend(Backend::kAvx2);
    fn(Backend::kAvx2);
    ran_avx2 = true;
  }
  SetBackend(Backend::kAuto);
  return ran_avx2;
}

std::vector<double> RandomDoubles(std::mt19937_64* rng, size_t n) {
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  std::vector<double> out(n);
  for (double& v : out) v = dist(*rng);
  return out;
}

TEST(KernelBackendTest, ActiveBackendNeverReportsAuto) {
  EXPECT_NE(ActiveBackend(), Backend::kAuto);
  SetBackend(Backend::kScalar);
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  SetBackend(Backend::kAuto);
}

TEST(KernelParityTest, DotMatchesBitwiseAcrossBackends) {
  std::mt19937_64 rng(101);
  // Lengths around the 4-lane boundaries plus larger odd sizes.
  for (const size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64,
                         65, 251, 1024, 1027}) {
    const std::vector<double> x = RandomDoubles(&rng, n);
    const std::vector<double> y = RandomDoubles(&rng, n);
    double results[2] = {0.0, 0.0};
    const bool both = RunBothBackends([&](Backend backend) {
      results[backend == Backend::kAvx2 ? 1 : 0] =
          Dot(x.data(), y.data(), n);
    });
    if (!both) GTEST_SKIP() << "CPU lacks AVX2; scalar-only host";
    EXPECT_EQ(std::memcmp(&results[0], &results[1], sizeof(double)), 0)
        << "n=" << n;
  }
}

TEST(KernelParityTest, DotMatchesOnUnalignedSlices) {
  std::mt19937_64 rng(202);
  const std::vector<double> x = RandomDoubles(&rng, 130);
  const std::vector<double> y = RandomDoubles(&rng, 130);
  for (size_t offset = 0; offset < 4; ++offset) {
    for (const size_t n : {1, 5, 33, 100}) {
      double results[2] = {0.0, 0.0};
      const bool both = RunBothBackends([&](Backend backend) {
        results[backend == Backend::kAvx2 ? 1 : 0] =
            Dot(x.data() + offset, y.data() + offset + 1, n);
      });
      if (!both) GTEST_SKIP() << "CPU lacks AVX2; scalar-only host";
      EXPECT_EQ(std::memcmp(&results[0], &results[1], sizeof(double)),
                0)
          << "offset=" << offset << " n=" << n;
    }
  }
}

TEST(KernelParityTest, ScaleGatherMatchesBitwiseForStrides) {
  std::mt19937_64 rng(303);
  for (const size_t stride : {1, 2, 3}) {
    for (const size_t n : {0, 1, 3, 4, 5, 17, 64, 129}) {
      const std::vector<double> base = RandomDoubles(&rng, n * stride + 1);
      const double scale = 1.7320508075688772;
      std::vector<double> out_scalar(n, 0.0), out_avx2(n, 0.0);
      const bool both = RunBothBackends([&](Backend backend) {
        ScaleGather(base.data(), stride, n, scale,
                    backend == Backend::kAvx2 ? out_avx2.data()
                                              : out_scalar.data());
      });
      if (!both) GTEST_SKIP() << "CPU lacks AVX2; scalar-only host";
      ASSERT_EQ(std::memcmp(out_scalar.data(), out_avx2.data(),
                            n * sizeof(double)),
                0)
          << "stride=" << stride << " n=" << n;
    }
  }
}

TEST(KernelParityTest, NormalizedContributionMatchesBitwise) {
  std::mt19937_64 rng(404);
  for (const size_t n : {0, 1, 2, 4, 5, 31, 100}) {
    const std::vector<double> base = RandomDoubles(&rng, 2 * n + 1);
    double lo = 1e300, hi = -1e300;
    for (size_t i = 0; i < n; ++i) {
      lo = std::min(lo, base[2 * i]);
      hi = std::max(hi, base[2 * i]);
    }
    for (const double span : {n > 0 ? hi - lo : 0.0, 0.0}) {
      const double floor = 1.0 / static_cast<double>(n + 1);
      std::vector<double> out_scalar(n, 0.0), out_avx2(n, 0.0);
      const bool both = RunBothBackends([&](Backend backend) {
        NormalizedContribution(base.data(), 2, n, lo, span, floor, 0.75,
                               backend == Backend::kAvx2
                                   ? out_avx2.data()
                                   : out_scalar.data());
      });
      if (!both) GTEST_SKIP() << "CPU lacks AVX2; scalar-only host";
      ASSERT_EQ(std::memcmp(out_scalar.data(), out_avx2.data(),
                            n * sizeof(double)),
                0)
          << "n=" << n << " span=" << span;
    }
  }
}

TEST(KernelParityTest, SparseCosineMatchesBitwiseAcrossBackends) {
  std::mt19937_64 rng(505);
  std::uniform_int_distribution<int> key_dist(0, 60);
  std::uniform_real_distribution<double> w_dist(-1.0, 1.0);
  for (int round = 0; round < 30; ++round) {
    std::vector<std::pair<ItemId, double>> a, b;
    const size_t na = rng() % 20;
    const size_t nb = rng() % 20;
    for (size_t i = 0; i < na; ++i) a.push_back({key_dist(rng), w_dist(rng)});
    for (size_t i = 0; i < nb; ++i) b.push_back({key_dist(rng), w_dist(rng)});
    double norm_a = 0.0, norm_b = 0.0;
    for (const auto& [k, w] : a) norm_a += w * w;
    for (const auto& [k, w] : b) norm_b += w * w;
    double results[2] = {0.0, 0.0};
    const bool both = RunBothBackends([&](Backend backend) {
      results[backend == Backend::kAvx2 ? 1 : 0] =
          SparseCosine(a, b, norm_a, norm_b);
    });
    if (!both) GTEST_SKIP() << "CPU lacks AVX2; scalar-only host";
    EXPECT_EQ(std::memcmp(&results[0], &results[1], sizeof(double)), 0)
        << "round " << round;
  }
}

TEST(SparseCosineJoinerTest, ReuseMatchesOneShotCalls) {
  std::mt19937_64 rng(606);
  std::uniform_int_distribution<int> key_dist(0, 40);
  std::uniform_real_distribution<double> w_dist(-1.0, 1.0);
  std::vector<std::pair<ItemId, double>> row;
  for (int i = 0; i < 12; ++i) row.push_back({key_dist(rng), w_dist(rng)});
  double norm_row = 0.0;
  for (const auto& [k, w] : row) norm_row += w * w;

  SparseCosineJoiner<ItemId> joiner;
  joiner.SetLeft(row);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::pair<ItemId, double>> other;
    const size_t n = rng() % 25;
    for (size_t i = 0; i < n; ++i) {
      other.push_back({key_dist(rng), w_dist(rng)});
    }
    double norm_other = 0.0;
    for (const auto& [k, w] : other) norm_other += w * w;
    const double reused = joiner.Against(other, norm_row, norm_other);
    const double one_shot = SparseCosine(row, other, norm_row, norm_other);
    EXPECT_EQ(std::memcmp(&reused, &one_shot, sizeof(double)), 0)
        << "round " << round;
  }
}

TEST(SparseCosineJoinerTest, DuplicateLeftKeysKeepFirstOccurrence) {
  // The one-shot path's `emplace` kept the first occurrence of a
  // duplicated key; the joiner must preserve that.
  const std::vector<std::pair<ItemId, double>> left = {
      {3, 0.5}, {3, 99.0}, {7, 1.0}};
  const std::vector<std::pair<ItemId, double>> right = {{3, 2.0}, {7, 4.0}};
  const double expect = (0.5 * 2.0 + 1.0 * 4.0) /
                        (std::sqrt(0.5 * 0.5 + 99.0 * 99.0 + 1.0) *
                         std::sqrt(2.0 * 2.0 + 4.0 * 4.0));
  SparseCosineJoiner<ItemId> joiner;
  joiner.SetLeft(left);
  const double norm_left = 0.5 * 0.5 + 99.0 * 99.0 + 1.0;
  const double got = joiner.Against(right, norm_left, 20.0);
  EXPECT_DOUBLE_EQ(got, expect);
}

TEST(SparseCosineJoinerTest, NonPositiveNormsShortCircuitToZero) {
  const std::vector<std::pair<ItemId, double>> v = {{1, 1.0}};
  SparseCosineJoiner<ItemId> joiner;
  joiner.SetLeft(v);
  EXPECT_EQ(joiner.Against(v, 0.0, 1.0), 0.0);
  EXPECT_EQ(joiner.Against(v, 1.0, -1e-18), 0.0);
}

TEST(ScoreAccumulatorTest, MatchesUnorderedMapSumsAndFirstTouchOrder) {
  std::mt19937_64 rng(707);
  std::uniform_int_distribution<ItemId> item_dist(0, 99);
  std::uniform_real_distribution<double> w_dist(-2.0, 2.0);
  ScoreAccumulator acc;
  for (int round = 0; round < 20; ++round) {
    acc.Begin(8);
    std::unordered_map<ItemId, double> reference;
    std::vector<ItemId> first_touch;
    const size_t adds = rng() % 500;
    for (size_t i = 0; i < adds; ++i) {
      const ItemId item = item_dist(rng);
      const double delta = w_dist(rng);
      acc.Add(item, delta);
      auto [it, inserted] = reference.emplace(item, 0.0);
      if (inserted) first_touch.push_back(item);
      it->second += delta;
    }
    ASSERT_EQ(acc.size(), reference.size()) << "round " << round;
    for (size_t i = 0; i < acc.size(); ++i) {
      EXPECT_EQ(acc.item(i), first_touch[i]) << "round " << round;
      const double expect = reference.at(acc.item(i));
      const double got = acc.score(i);
      EXPECT_EQ(std::memcmp(&got, &expect, sizeof(double)), 0)
          << "round " << round << " slot " << i;
    }
  }
}

TEST(ScoreAccumulatorTest, GrowthPreservesSumsBitwise) {
  // Start tiny and force several growths mid-accumulation; sums and
  // first-touch order must be unaffected (the map reference never
  // rehashes values, only buckets).
  ScoreAccumulator acc;
  acc.Begin(1);
  std::unordered_map<ItemId, double> reference;
  std::vector<ItemId> first_touch;
  std::mt19937_64 rng(808);
  std::uniform_real_distribution<double> w_dist(-1.0, 1.0);
  for (ItemId item = 0; item < 3000; ++item) {
    const double delta = w_dist(rng);
    acc.Add(item, delta);
    reference.emplace(item, 0.0);
    first_touch.push_back(item);
    reference[item] += delta;
    if (item % 7 == 0) {
      acc.Add(item / 2, 0.25);  // revisit an earlier slot
      reference[item / 2] += 0.25;
    }
  }
  ASSERT_EQ(acc.size(), reference.size());
  for (size_t i = 0; i < acc.size(); ++i) {
    EXPECT_EQ(acc.item(i), first_touch[i]);
    const double expect = reference.at(acc.item(i));
    const double got = acc.score(i);
    ASSERT_EQ(std::memcmp(&got, &expect, sizeof(double)), 0)
        << "slot " << i;
  }
}

TEST(ScoreAccumulatorTest, BeginDropsPriorItems) {
  ScoreAccumulator acc;
  acc.Begin(4);
  acc.Add(1, 1.0);
  acc.Add(2, 2.0);
  ASSERT_EQ(acc.size(), 2u);
  acc.Begin(4);
  EXPECT_EQ(acc.size(), 0u);
  acc.Add(2, 5.0);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc.item(0), 2);
  EXPECT_EQ(acc.score(0), 5.0);
  // Growth right after a reset must not resurrect stale items.
  acc.Begin(4096);
  EXPECT_EQ(acc.size(), 0u);
}

}  // namespace
}  // namespace spa::recsys::kernels
