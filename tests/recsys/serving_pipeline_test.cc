#include "recsys/serving_pipeline.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "eit/emotion.h"
#include "gtest/gtest.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"
#include "sum/sum_service.h"

/// The streaming serving pipeline. The load-bearing claims tested here:
///
///  * **Differential determinism**: every streamed response is
///    bitwise-identical to the synchronous `RecommendBatch` result
///    computed against the same pinned (matrix version, SUM version)
///    pair — asserted by a seeded fuzzer that generates interleaved
///    Submit / ApplyInteractions / SumUpdate schedules, runs them
///    through the pipeline, then replays the applied writes in order
///    on a fresh reference stack and re-serves every response at its
///    pin (>= 100 seeded schedules across all four backpressure
///    policies).
///  * **Admission control**: block / reject-with-status / shed-oldest
///    behave exactly as specified when the queue is full (driven
///    deterministically by a gated recommender that parks the worker).
///  * **Deadline degradation**: under kDegrade the pipeline sheds by
///    remaining slack — expired reads drop with a status, pressed
///    reads get the popularity fallback tier, flagged `degraded` and
///    bitwise-equal to `RecommendFallback` at their pinned matrix
///    version. The differential harness runs with mixed deadline
///    pressure and classifies every outcome.
///  * **Writer priority**: queued writes drain before queued reads.
///  * **Race freedom**: the TSAN stress case below runs under TSAN in
///    CI (ServingPipeline* is in the TSAN job's ctest regex).

namespace spa::recsys {
namespace {

constexpr size_t kUsers = 100;
constexpr size_t kItems = 50;

/// Deterministic clustered interaction matrix (same generator for the
/// live run and the reference replay).
InteractionMatrix MakeMatrix(uint64_t seed, size_t shards) {
  Rng rng(seed, /*stream=*/1);
  InteractionMatrix m(shards);
  for (size_t u = 0; u < kUsers; ++u) {
    const auto base =
        static_cast<ItemId>((u % 2 == 0) ? 0 : kItems / 2);
    for (int j = 0; j < 6; ++j) {
      const auto item = static_cast<ItemId>(
          base +
          rng.UniformInt(0, static_cast<int64_t>(kItems) / 2 - 1));
      m.Add(static_cast<UserId>(u), item, rng.Uniform(0.2, 3.0));
    }
  }
  return m;
}

/// Deterministic SUM bootstrap: one ApplyAll publish (version 1).
void BootstrapSums(sum::SumService* sums,
                   const sum::AttributeCatalog& catalog,
                   uint64_t seed) {
  Rng rng(seed, /*stream=*/2);
  std::vector<sum::SumUpdate> bootstrap;
  bootstrap.reserve(kUsers);
  for (size_t u = 0; u < kUsers; ++u) {
    sum::SumUpdate update(static_cast<sum::UserId>(u));
    for (eit::EmotionalAttribute attr : eit::AllEmotionalAttributes()) {
      if (rng.Bernoulli(0.4)) {
        update.SetSensibility(catalog.EmotionalId(attr),
                              rng.Uniform(0.2, 1.0));
      }
    }
    bootstrap.push_back(std::move(update));
  }
  ASSERT_TRUE(sums->ApplyAll(bootstrap).ok());
}

/// Engine with two KNN components and deterministic item profiles.
std::unique_ptr<RecsysEngine> MakeEngine(const sum::SumService* sums,
                                         InteractionMatrix* matrix,
                                         uint64_t seed,
                                         size_t cache_capacity) {
  EngineConfig config;
  config.response_cache_capacity = cache_capacity;
  config.interaction_shards = matrix->shard_count();
  auto engine = std::make_unique<RecsysEngine>(config);
  engine->AddComponent(std::make_unique<UserKnnRecommender>(), 0.6);
  engine->AddComponent(std::make_unique<ItemKnnRecommender>(), 0.4);
  Rng rng(seed, /*stream=*/3);
  for (size_t i = 0; i < kItems; ++i) {
    EmotionProfile profile{};
    for (double& p : profile) p = rng.Uniform();
    engine->SetItemEmotionProfile(static_cast<ItemId>(i), profile);
  }
  engine->set_sum_service(sums);
  EXPECT_TRUE(engine->Fit(matrix).ok());
  return engine;
}

void ExpectBitwiseEqual(const RecommendResponse& streamed,
                        const RecommendResponse& reference,
                        const std::string& context) {
  EXPECT_EQ(streamed.user, reference.user) << context;
  EXPECT_EQ(streamed.emotion_applied, reference.emotion_applied)
      << context;
  EXPECT_EQ(streamed.explained, reference.explained) << context;
  EXPECT_EQ(streamed.degraded, reference.degraded) << context;
  ASSERT_EQ(streamed.items.size(), reference.items.size()) << context;
  for (size_t i = 0; i < streamed.items.size(); ++i) {
    const RecommendedItem& a = streamed.items[i];
    const RecommendedItem& b = reference.items[i];
    EXPECT_EQ(a.item, b.item) << context << " rank " << i;
    EXPECT_EQ(a.score, b.score) << context << " rank " << i;  // bitwise
    if (streamed.explained) {
      EXPECT_EQ(a.breakdown.base, b.breakdown.base)
          << context << " rank " << i;
      EXPECT_EQ(a.breakdown.base_share, b.breakdown.base_share)
          << context << " rank " << i;
      EXPECT_EQ(a.breakdown.emotional_alignment,
                b.breakdown.emotional_alignment)
          << context << " rank " << i;
      EXPECT_EQ(a.breakdown.emotion_delta, b.breakdown.emotion_delta)
          << context << " rank " << i;
    }
  }
}

// ---- randomized differential harness ---------------------------------------

enum class OpKind { kRead, kInteractions, kSumUpdates };

struct ScheduleOp {
  OpKind kind = OpKind::kRead;
  RecommendRequest request;
  std::vector<Interaction> interactions;
  std::vector<sum::SumUpdate> sum_updates;
};

/// One random schedule of interleaved reads and writes. New users and
/// items enter through interaction batches (ids above the bootstrap
/// range) so the stream also exercises live registration.
std::vector<ScheduleOp> MakeSchedule(uint64_t seed,
                                     const sum::AttributeCatalog& catalog,
                                     size_t ops) {
  Rng rng(seed, /*stream=*/4);
  std::vector<ScheduleOp> schedule;
  schedule.reserve(ops);
  UserId next_new_user = static_cast<UserId>(kUsers);
  ItemId next_new_item = static_cast<ItemId>(kItems);
  const auto attributes = eit::AllEmotionalAttributes();
  for (size_t i = 0; i < ops; ++i) {
    const double roll = rng.Uniform();
    ScheduleOp op;
    if (roll < 0.70) {
      op.kind = OpKind::kRead;
      op.request.user = static_cast<UserId>(
          rng.UniformInt(0, static_cast<int64_t>(kUsers) - 1));
      op.request.k = static_cast<size_t>(rng.UniformInt(1, 8));
      op.request.exclude_seen =
          rng.Bernoulli(0.85) ? ExcludeSeen::kYes : ExcludeSeen::kNo;
      op.request.explain = rng.Bernoulli(0.15);
    } else if (roll < 0.85) {
      op.kind = OpKind::kInteractions;
      const size_t batch = static_cast<size_t>(rng.UniformInt(1, 4));
      for (size_t b = 0; b < batch; ++b) {
        Interaction interaction;
        interaction.user =
            rng.Bernoulli(0.1)
                ? next_new_user++
                : static_cast<UserId>(rng.UniformInt(
                      0, static_cast<int64_t>(kUsers) - 1));
        interaction.item =
            rng.Bernoulli(0.1)
                ? next_new_item++
                : static_cast<ItemId>(rng.UniformInt(
                      0, static_cast<int64_t>(kItems) - 1));
        interaction.weight = rng.Uniform(0.2, 3.0);
        op.interactions.push_back(interaction);
      }
    } else {
      op.kind = OpKind::kSumUpdates;
      const size_t updates = static_cast<size_t>(rng.UniformInt(1, 3));
      for (size_t b = 0; b < updates; ++b) {
        sum::SumUpdate update(static_cast<sum::UserId>(
            rng.UniformInt(0, static_cast<int64_t>(kUsers) - 1)));
        const auto attr = attributes[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(attributes.size()) - 1))];
        if (rng.Bernoulli(0.5)) {
          update.SetSensibility(catalog.EmotionalId(attr),
                                rng.Uniform(0.0, 1.0));
        } else {
          update.Reward(catalog.EmotionalId(attr), rng.Uniform(0.1, 1.0));
        }
        op.sum_updates.push_back(std::move(update));
      }
    }
    schedule.push_back(std::move(op));
  }
  return schedule;
}

struct StreamedRead {
  size_t op_index = 0;
  RecommendRequest request;
  RecommendResponse response;
  BatchPin pin;
  bool degraded = false;
};

struct AppliedWrite {
  OpKind kind = OpKind::kInteractions;
  std::vector<Interaction> interactions;
  std::vector<sum::SumUpdate> sum_updates;
  BatchPin pin;  ///< post-apply versions reported by the ticket
};

/// Runs one schedule through a live pipeline, then replays the applied
/// writes in submission order on a fresh reference stack and asserts
/// every streamed response equals the synchronous RecommendBatch
/// result at the same pinned (matrix version, SUM version) pair.
void RunDifferentialSchedule(uint64_t seed, BackpressurePolicy policy,
                             size_t shards) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " policy=" +
               std::to_string(static_cast<int>(policy)) + " shards=" +
               std::to_string(shards));
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();

  // ---- live streamed run ---------------------------------------------------
  InteractionMatrix live_matrix = MakeMatrix(seed, shards);
  sum::SumService live_sums(&catalog);
  BootstrapSums(&live_sums, catalog, seed);
  auto live_engine =
      MakeEngine(&live_sums, &live_matrix, seed, /*cache_capacity=*/256);

  const std::vector<ScheduleOp> schedule =
      MakeSchedule(seed, catalog, /*ops=*/48);

  PipelineConfig config;
  config.workers = 3;
  config.queue_capacity = 6;  // small: the policy actually engages
  config.writer_queue_capacity = 6;
  config.policy = policy;
  config.max_batch = 4;

  std::vector<StreamedRead> reads;
  std::vector<AppliedWrite> writes;
  uint64_t fallback_count = 0;
  uint64_t dropped_reads = 0;
  PipelineStats live_stats;
  // Deadline pressure is only meaningful under kDegrade: a mix of
  // deadline-free, generous and knife-edge deadlines so every outcome
  // class (full serve, fallback, drop) shows up across the seeds.
  Rng deadline_rng(seed, /*stream=*/9);
  {
    ServingPipeline pipeline(live_engine.get(), &live_sums, config);
    std::vector<std::pair<size_t, StreamTicketPtr>> tickets;
    for (size_t i = 0; i < schedule.size(); ++i) {
      const ScheduleOp& op = schedule[i];
      auto submit = [&]() -> spa::Result<StreamTicketPtr> {
        if (op.kind == OpKind::kInteractions) {
          return pipeline.SubmitInteractions(op.interactions);
        }
        if (op.kind == OpKind::kSumUpdates) {
          return pipeline.SubmitSumUpdates(op.sum_updates);
        }
        double deadline_seconds = 0.0;
        if (policy == BackpressurePolicy::kDegrade) {
          const double roll = deadline_rng.Uniform();
          if (roll < 0.4) {
            deadline_seconds = 0.0;  // no deadline
          } else if (roll < 0.8) {
            deadline_seconds = 5.0;  // generous: full serve expected
          } else {
            // Knife-edge: likely degraded or dropped.
            deadline_seconds = 0.0002 + 0.0008 * deadline_rng.Uniform();
          }
        }
        return pipeline.SubmitWithDeadline(op.request, deadline_seconds);
      };
      spa::Result<StreamTicketPtr> admitted = submit();
      if (!admitted.ok()) {
        // Only the reject policy may refuse an admission.
        EXPECT_EQ(config.policy, BackpressurePolicy::kReject);
        EXPECT_EQ(admitted.status().code(),
                  spa::StatusCode::kResourceExhausted);
        continue;
      }
      tickets.emplace_back(i, admitted.value());
    }
    pipeline.Flush();
    for (auto& [index, ticket] : tickets) {
      const TicketState state = ticket->Wait();
      if (state == TicketState::kShed) {
        // kShedOldest sheds anywhere; kDegrade sheds expired reads and
        // (writer lane only) overflowing writes.
        EXPECT_TRUE(config.policy == BackpressurePolicy::kShedOldest ||
                    config.policy == BackpressurePolicy::kDegrade);
        if (config.policy == BackpressurePolicy::kDegrade &&
            ticket->kind() == StreamOpKind::kRecommend) {
          EXPECT_EQ(ticket->response().status().code(),
                    spa::StatusCode::kResourceExhausted);
          ++dropped_reads;
        }
        continue;
      }
      ASSERT_EQ(state, TicketState::kDone);
      const ScheduleOp& op = schedule[index];
      switch (ticket->kind()) {
        case StreamOpKind::kRecommend: {
          ASSERT_TRUE(ticket->response().ok());
          StreamedRead read{index, op.request,
                            ticket->response().value(),
                            ticket->pinned()};
          read.degraded = read.response.degraded;
          if (read.degraded) {
            // The degraded flag is the ONE sanctioned departure from
            // bitwise parity, and only kDegrade may raise it.
            EXPECT_EQ(config.policy, BackpressurePolicy::kDegrade);
            ++fallback_count;
          }
          reads.push_back(std::move(read));
          break;
        }
        case StreamOpKind::kInteractions: {
          ASSERT_TRUE(ticket->update_report().ok());
          writes.push_back({OpKind::kInteractions, op.interactions,
                            {}, ticket->pinned()});
          break;
        }
        case StreamOpKind::kSumUpdates: {
          ASSERT_TRUE(ticket->sum_status().ok());
          writes.push_back({OpKind::kSumUpdates, {}, op.sum_updates,
                            ticket->pinned()});
          break;
        }
      }
    }
    live_stats = pipeline.stats();
  }

  // Shed-quality accounting must agree with the observed tickets:
  // every degraded response was counted as a served fallback, every
  // dropped read as an expired drop — and fallbacks ARE responses with
  // full histogram coverage.
  if (policy == BackpressurePolicy::kDegrade) {
    EXPECT_EQ(live_stats.fallback_served, fallback_count);
    EXPECT_EQ(live_stats.expired_drops, dropped_reads);
    EXPECT_EQ(live_stats.shed_reads, dropped_reads);
    EXPECT_EQ(live_stats.responses, reads.size());
    EXPECT_EQ(live_stats.end_to_end.total(), live_stats.responses);
    EXPECT_EQ(live_stats.queue_wait.total(),
              live_stats.responses + live_stats.updates_applied);
  } else {
    EXPECT_EQ(live_stats.fallback_served, 0u);
    EXPECT_EQ(live_stats.expired_drops, 0u);
  }

  // Tickets complete out of submission order, but the writer lane
  // applies FIFO: re-sort the applied writes by submission index (we
  // appended in ticket iteration order, which *is* submission order
  // because `tickets` preserves it). Their post-apply versions must be
  // strictly increasing along that order.
  for (size_t i = 1; i < writes.size(); ++i) {
    if (writes[i].kind == OpKind::kInteractions &&
        writes[i - 1].kind == OpKind::kInteractions) {
      EXPECT_GT(writes[i].pin.matrix_version,
                writes[i - 1].pin.matrix_version);
    }
    if (writes[i].kind == OpKind::kSumUpdates &&
        writes[i - 1].kind == OpKind::kSumUpdates) {
      EXPECT_GT(writes[i].pin.sum_version,
                writes[i - 1].pin.sum_version);
    }
  }

  // ---- reference replay ----------------------------------------------------
  // Because exactly one write executes at a time (FIFO), the set of
  // applied writes at any pin instant is a prefix of the write order:
  // sorting responses by (matrix version, SUM version) lets one
  // forward replay visit every pinned state.
  std::sort(reads.begin(), reads.end(),
            [](const StreamedRead& a, const StreamedRead& b) {
              if (a.pin.matrix_version != b.pin.matrix_version) {
                return a.pin.matrix_version < b.pin.matrix_version;
              }
              return a.pin.sum_version < b.pin.sum_version;
            });
  for (size_t i = 1; i < reads.size(); ++i) {
    // Joint monotonicity: a response computed from a newer matrix can
    // never carry an older SUM view (writes are totally ordered).
    ASSERT_LE(reads[i - 1].pin.sum_version, reads[i].pin.sum_version)
        << "pinned versions invert: the pipeline tore a batch pin";
  }

  InteractionMatrix ref_matrix = MakeMatrix(seed, shards);
  sum::SumService ref_sums(&catalog);
  BootstrapSums(&ref_sums, catalog, seed);
  auto ref_engine =
      MakeEngine(&ref_sums, &ref_matrix, seed, /*cache_capacity=*/0);

  size_t next_write = 0;
  size_t compared = 0;
  size_t i = 0;
  while (i < reads.size()) {
    const BatchPin target = reads[i].pin;
    ASSERT_EQ(target.fit_epoch, 1u);
    while (ref_matrix.version() < target.matrix_version ||
           ref_sums.version() < target.sum_version) {
      ASSERT_LT(next_write, writes.size())
          << "pinned state not reachable by replaying applied writes";
      const AppliedWrite& write = writes[next_write++];
      if (write.kind == OpKind::kInteractions) {
        const auto report =
            ref_engine->ApplyInteractions(write.interactions);
        ASSERT_TRUE(report.ok());
        ASSERT_EQ(report.value().matrix_version,
                  write.pin.matrix_version)
            << "replayed matrix version diverged from the live run";
      } else {
        ASSERT_TRUE(ref_sums.ApplyAll(write.sum_updates).ok());
        ASSERT_EQ(ref_sums.version(), write.pin.sum_version)
            << "replayed SUM version diverged from the live run";
      }
    }
    ASSERT_EQ(ref_matrix.version(), target.matrix_version);
    ASSERT_EQ(ref_sums.version(), target.sum_version);

    // Serve every response pinned at this state: non-degraded ones as
    // one synchronous RecommendBatch (bitwise parity), degraded ones
    // against the popularity fallback reference at the same pin —
    // degradation changes the tier, never the determinism.
    std::vector<RecommendRequest> group;
    std::vector<size_t> group_reads;
    while (i < reads.size() &&
           reads[i].pin.matrix_version == target.matrix_version &&
           reads[i].pin.sum_version == target.sum_version) {
      if (reads[i].degraded) {
        BatchPin fb_pin;
        const auto fallback =
            ref_engine->RecommendFallback(reads[i].request, &fb_pin);
        ASSERT_TRUE(fallback.ok());
        EXPECT_EQ(fb_pin.matrix_version, target.matrix_version);
        EXPECT_EQ(fb_pin.sum_version, target.sum_version);
        ExpectBitwiseEqual(
            reads[i].response, fallback.value(),
            "degraded op " + std::to_string(reads[i].op_index));
        ++compared;
      } else {
        group.push_back(reads[i].request);
        group_reads.push_back(i);
      }
      ++i;
    }
    if (!group.empty()) {
      BatchPin ref_pin;
      const auto reference = ref_engine->RecommendBatch(group, &ref_pin);
      ASSERT_EQ(ref_pin.matrix_version, target.matrix_version);
      ASSERT_EQ(ref_pin.sum_version, target.sum_version);
      for (size_t g = 0; g < group.size(); ++g) {
        ASSERT_TRUE(reference[g].ok());
        ExpectBitwiseEqual(
            reads[group_reads[g]].response, reference[g].value(),
            "op " + std::to_string(reads[group_reads[g]].op_index));
        ++compared;
      }
    }
  }
  EXPECT_EQ(compared, reads.size());
  EXPECT_GT(compared, 0u);
}

class ServingPipelineDifferentialTest
    : public ::testing::TestWithParam<BackpressurePolicy> {};

TEST_P(ServingPipelineDifferentialTest,
       StreamedResponsesMatchSynchronousBatchAtPinnedVersions) {
  // 35 schedules per policy x 4 policies = 140 seeded schedules, with
  // the shard count varied across them.
  for (uint64_t seed = 0; seed < 35; ++seed) {
    const size_t shards = 1 + seed % 4;
    RunDifferentialSchedule(1000 + seed, GetParam(), shards);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ServingPipelineDifferentialTest,
    ::testing::Values(BackpressurePolicy::kBlock,
                      BackpressurePolicy::kReject,
                      BackpressurePolicy::kShedOldest,
                      BackpressurePolicy::kDegrade),
    [](const ::testing::TestParamInfo<BackpressurePolicy>& info) {
      switch (info.param) {
        case BackpressurePolicy::kBlock: return "Block";
        case BackpressurePolicy::kReject: return "Reject";
        case BackpressurePolicy::kShedOldest: return "ShedOldest";
        case BackpressurePolicy::kDegrade: return "Degrade";
      }
      return "Unknown";
    });

// ---- deterministic admission-control coverage ------------------------------

/// Shared gate a recommender can park on: lets a test hold the single
/// drain worker mid-serve and fill the queue deterministically.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void WaitUntilOpen() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
};

/// Minimal recommender that blocks every candidate call on the gate.
class GatedRecommender : public Recommender {
 public:
  explicit GatedRecommender(Gate* gate) : gate_(gate) {}

  spa::Status Fit(const InteractionMatrix& matrix) override {
    matrix_ = &matrix;
    return spa::Status::OK();
  }
  spa::Status Refresh(RefreshOutcome* outcome) override {
    outcome->all_users = true;
    return spa::Status::OK();
  }
  std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const override {
    gate_->WaitUntilOpen();
    return {{static_cast<ItemId>(query.user % 3), 1.0}};
  }
  std::string name() const override { return "gated"; }

 private:
  Gate* gate_;
  const InteractionMatrix* matrix_ = nullptr;
};

/// Engine with one gated component, no emotion stage, no cache.
struct GatedStack {
  explicit GatedStack(size_t users = 8) : matrix(MakeTiny(users)) {
    EngineConfig config;
    config.response_cache_capacity = 0;
    config.emotion_enabled = false;
    engine = std::make_unique<RecsysEngine>(config);
    engine->AddComponent(std::make_unique<GatedRecommender>(&gate),
                         1.0);
    EXPECT_TRUE(engine->Fit(&matrix).ok());
  }

  static InteractionMatrix MakeTiny(size_t users) {
    InteractionMatrix m;
    for (size_t u = 0; u < users; ++u) {
      m.Add(static_cast<UserId>(u), static_cast<ItemId>(u % 4), 1.0);
    }
    return m;
  }

  RecommendRequest Request(UserId user) const {
    RecommendRequest request;
    request.user = user;
    request.k = 1;
    request.exclude_seen = ExcludeSeen::kNo;
    return request;
  }

  Gate gate;
  InteractionMatrix matrix;
  std::unique_ptr<RecsysEngine> engine;
};

PipelineConfig TinyPipelineConfig(BackpressurePolicy policy) {
  PipelineConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.writer_queue_capacity = 2;
  config.max_batch = 1;
  config.policy = policy;
  return config;
}

/// Parks the single worker on r0, fills the queue with r1, r2. Returns
/// after the worker has provably dequeued r0 (queue depth settled).
std::vector<StreamTicketPtr> FillQueue(ServingPipeline* pipeline,
                                       GatedStack* stack) {
  std::vector<StreamTicketPtr> tickets;
  auto r0 = pipeline->Submit(stack->Request(0));
  EXPECT_TRUE(r0.ok());
  tickets.push_back(r0.value());
  // Wait until the worker dequeued r0 (it then parks on the gate);
  // only then do r1/r2 fill the queue to exactly its capacity.
  while (pipeline->queue_depth() != 0) std::this_thread::yield();
  for (UserId u = 1; u <= 2; ++u) {
    auto ticket = pipeline->Submit(stack->Request(u));
    EXPECT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  EXPECT_EQ(pipeline->queue_depth(), 2u);
  return tickets;
}

TEST(ServingPipelineTest, BlockPolicyBlocksProducerUntilRoomFrees) {
  GatedStack stack;
  ServingPipeline pipeline(stack.engine.get(), nullptr,
                           TinyPipelineConfig(BackpressurePolicy::kBlock));
  auto tickets = FillQueue(&pipeline, &stack);

  std::atomic<bool> admitted{false};
  StreamTicketPtr blocked_ticket;
  std::thread producer([&] {
    auto ticket = pipeline.Submit(stack.Request(3));
    EXPECT_TRUE(ticket.ok());
    blocked_ticket = ticket.value();
    admitted.store(true);
  });
  // The producer must still be parked after a generous delay: the
  // queue is full and nothing drains while the gate is closed.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());

  stack.gate.Open();
  producer.join();
  EXPECT_TRUE(admitted.load());
  pipeline.Flush();
  for (const auto& ticket : tickets) {
    EXPECT_EQ(ticket->Wait(), TicketState::kDone);
    EXPECT_TRUE(ticket->response().ok());
  }
  EXPECT_EQ(blocked_ticket->Wait(), TicketState::kDone);
  EXPECT_EQ(pipeline.stats().rejected, 0u);
  EXPECT_EQ(pipeline.stats().shed, 0u);
}

TEST(ServingPipelineTest, RejectPolicyFailsSubmitWithStatus) {
  GatedStack stack;
  ServingPipeline pipeline(
      stack.engine.get(), nullptr,
      TinyPipelineConfig(BackpressurePolicy::kReject));
  auto tickets = FillQueue(&pipeline, &stack);

  auto rejected = pipeline.Submit(stack.Request(3));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(),
            spa::StatusCode::kResourceExhausted);
  // A read rejection lands in the read lane only; the totals are the
  // lane sums.
  EXPECT_EQ(pipeline.stats().rejected, 1u);
  EXPECT_EQ(pipeline.stats().rejected_reads, 1u);
  EXPECT_EQ(pipeline.stats().rejected_writes, 0u);

  stack.gate.Open();
  pipeline.Flush();
  for (const auto& ticket : tickets) {
    EXPECT_EQ(ticket->Wait(), TicketState::kDone);
    EXPECT_TRUE(ticket->response().ok());
  }
  // Admission recovered once the queue drained.
  auto late = pipeline.Submit(stack.Request(4));
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late.value()->Wait(), TicketState::kDone);
}

TEST(ServingPipelineTest, ShedOldestDropsTheOldestQueuedTicket) {
  GatedStack stack;
  ServingPipeline pipeline(
      stack.engine.get(), nullptr,
      TinyPipelineConfig(BackpressurePolicy::kShedOldest));
  auto tickets = FillQueue(&pipeline, &stack);

  // Queue holds [r1, r2]; admitting r3 must shed r1 (oldest queued —
  // r0 is already serving and is not sheddable).
  auto r3 = pipeline.Submit(stack.Request(3));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(tickets[1]->Wait(), TicketState::kShed);
  ASSERT_FALSE(tickets[1]->response().ok());
  EXPECT_EQ(tickets[1]->response().status().code(),
            spa::StatusCode::kResourceExhausted);
  EXPECT_EQ(pipeline.stats().shed, 1u);
  EXPECT_EQ(pipeline.stats().shed_reads, 1u);
  EXPECT_EQ(pipeline.stats().shed_writes, 0u);

  stack.gate.Open();
  pipeline.Flush();
  EXPECT_EQ(tickets[0]->Wait(), TicketState::kDone);
  EXPECT_EQ(tickets[2]->Wait(), TicketState::kDone);
  EXPECT_EQ(r3.value()->Wait(), TicketState::kDone);
  EXPECT_EQ(r3.value()->response().value().user, 3u);
}

TEST(ServingPipelineTest, DegradeFallbackServesTheMostPressedWhenFull) {
  GatedStack stack;
  ServingPipeline pipeline(
      stack.engine.get(), nullptr,
      TinyPipelineConfig(BackpressurePolicy::kDegrade));
  auto tickets = FillQueue(&pipeline, &stack);

  // Queue holds [r1, r2], all deadline-free (infinite slack, ties
  // prefer the oldest queued). Admitting r3 degrades r1 — but unlike
  // kShedOldest, r1 gets a real (popularity fallback) response, on the
  // submitting thread, while the worker is still parked.
  auto r3 = pipeline.Submit(stack.Request(3));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(tickets[1]->Wait(), TicketState::kDone);
  ASSERT_TRUE(tickets[1]->response().ok());
  const RecommendResponse& degraded = tickets[1]->response().value();
  EXPECT_TRUE(degraded.degraded);
  // Deterministic vs the engine's own fallback tier at the same state.
  const auto reference = stack.engine->RecommendFallback(stack.Request(1));
  ASSERT_TRUE(reference.ok());
  ExpectBitwiseEqual(degraded, reference.value(), "degraded r1");

  stack.gate.Open();
  pipeline.Flush();
  EXPECT_EQ(tickets[0]->Wait(), TicketState::kDone);
  EXPECT_EQ(tickets[2]->Wait(), TicketState::kDone);
  EXPECT_EQ(r3.value()->Wait(), TicketState::kDone);
  EXPECT_FALSE(tickets[0]->response().value().degraded);
  EXPECT_FALSE(r3.value()->response().value().degraded);

  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.fallback_served, 1u);
  EXPECT_EQ(stats.expired_drops, 0u);
  EXPECT_EQ(stats.shed, 0u);  // a fallback serve is a response, not a shed
  EXPECT_EQ(stats.responses, 4u);
  // Fallback serves carry full histogram coverage.
  EXPECT_EQ(stats.end_to_end.total(), stats.responses);
  EXPECT_EQ(stats.queue_wait.total(), stats.responses);
}

TEST(ServingPipelineTest, DegradeDropsExpiredVictimsAtAdmission) {
  GatedStack stack;
  ServingPipeline pipeline(
      stack.engine.get(), nullptr,
      TinyPipelineConfig(BackpressurePolicy::kDegrade));
  // Park the worker on a deadline-free read.
  auto r0 = pipeline.Submit(stack.Request(0));
  ASSERT_TRUE(r0.ok());
  while (pipeline.queue_depth() != 0) std::this_thread::yield();
  // r1 carries a knife-edge deadline and expires while queued; r2 is
  // deadline-free.
  auto r1 = pipeline.SubmitWithDeadline(stack.Request(1),
                                        /*deadline_seconds=*/0.001);
  ASSERT_TRUE(r1.ok());
  auto r2 = pipeline.Submit(stack.Request(2));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(pipeline.queue_depth(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // r3 overflows the queue: the victim is r1 (least slack, long
  // expired), and expired work is dropped, not fallback-served.
  auto r3 = pipeline.Submit(stack.Request(3));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r1.value()->Wait(), TicketState::kShed);
  ASSERT_FALSE(r1.value()->response().ok());
  EXPECT_EQ(r1.value()->response().status().code(),
            spa::StatusCode::kResourceExhausted);

  stack.gate.Open();
  pipeline.Flush();
  EXPECT_EQ(r0.value()->Wait(), TicketState::kDone);
  EXPECT_EQ(r2.value()->Wait(), TicketState::kDone);
  EXPECT_EQ(r3.value()->Wait(), TicketState::kDone);

  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.expired_drops, 1u);
  EXPECT_EQ(stats.shed_reads, 1u);
  EXPECT_EQ(stats.fallback_served, 0u);
  EXPECT_EQ(stats.responses, 3u);
  // Drops record no histograms: totals still reconcile.
  EXPECT_EQ(stats.queue_wait.total(), stats.responses);
  EXPECT_EQ(stats.end_to_end.total(), stats.responses);
}

TEST(ServingPipelineTest, DegradeDropsExpiredReadsAtDrainTime) {
  GatedStack stack;
  PipelineConfig config = TinyPipelineConfig(BackpressurePolicy::kDegrade);
  // Plain Submit inherits the configured default deadline.
  config.default_deadline_seconds = 0.001;
  ServingPipeline pipeline(stack.engine.get(), nullptr, config);
  // The parked read is explicitly deadline-free so it reliably holds
  // the worker regardless of scheduling delays.
  auto r0 = pipeline.SubmitWithDeadline(stack.Request(0),
                                        /*deadline_seconds=*/0.0);
  ASSERT_TRUE(r0.ok());
  while (pipeline.queue_depth() != 0) std::this_thread::yield();
  // r1 expires while queued — the queue never overflows, so the drain
  // loop's slack classifier (not admission) must catch it.
  auto r1 = pipeline.Submit(stack.Request(1));
  ASSERT_TRUE(r1.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  stack.gate.Open();
  pipeline.Flush();
  EXPECT_EQ(r0.value()->Wait(), TicketState::kDone);
  EXPECT_EQ(r1.value()->Wait(), TicketState::kShed);
  EXPECT_EQ(r1.value()->response().status().code(),
            spa::StatusCode::kResourceExhausted);
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.expired_drops, 1u);
  EXPECT_EQ(stats.fallback_served, 0u);
  EXPECT_EQ(stats.responses, 1u);
}

TEST(ServingPipelineTest, DegradeWriterLaneShedsOldestWriteDeadlineFree) {
  GatedStack stack;
  ServingPipeline pipeline(
      stack.engine.get(), nullptr,
      TinyPipelineConfig(BackpressurePolicy::kDegrade));
  // Writes carry no deadline: a full writer lane under kDegrade falls
  // back to shed-oldest semantics, never to fallback serving.
  auto r0 = pipeline.Submit(stack.Request(0));
  ASSERT_TRUE(r0.ok());
  while (pipeline.queue_depth() != 0) std::this_thread::yield();
  std::vector<StreamTicketPtr> writes;
  for (int i = 0; i < 2; ++i) {
    auto w = pipeline.SubmitInteractions(
        {{static_cast<UserId>(i), static_cast<ItemId>(1), 1.0}});
    ASSERT_TRUE(w.ok());
    writes.push_back(w.value());
  }
  auto overflow = pipeline.SubmitInteractions(
      {{static_cast<UserId>(3), static_cast<ItemId>(1), 1.0}});
  ASSERT_TRUE(overflow.ok());
  EXPECT_EQ(writes[0]->Wait(), TicketState::kShed);
  EXPECT_EQ(writes[0]->update_report().status().code(),
            spa::StatusCode::kResourceExhausted);

  stack.gate.Open();
  pipeline.Flush();
  EXPECT_EQ(writes[1]->Wait(), TicketState::kDone);
  EXPECT_EQ(overflow.value()->Wait(), TicketState::kDone);
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.shed_writes, 1u);
  EXPECT_EQ(stats.fallback_served, 0u);
  EXPECT_EQ(stats.expired_drops, 0u);
  EXPECT_EQ(stats.updates_applied, 2u);
}

TEST(ServingPipelineTest, WriterLaneRejectionsCountInTheWriteLane) {
  GatedStack stack;
  ServingPipeline pipeline(
      stack.engine.get(), nullptr,
      TinyPipelineConfig(BackpressurePolicy::kReject));
  // Park the single worker on a gated read, then fill the writer
  // queue (capacity 2) behind it.
  auto r0 = pipeline.Submit(stack.Request(0));
  ASSERT_TRUE(r0.ok());
  while (pipeline.queue_depth() != 0) std::this_thread::yield();
  std::vector<StreamTicketPtr> writes;
  for (int i = 0; i < 2; ++i) {
    auto w = pipeline.SubmitInteractions(
        {{static_cast<UserId>(i), static_cast<ItemId>(1), 1.0}});
    ASSERT_TRUE(w.ok());
    writes.push_back(w.value());
  }
  EXPECT_EQ(pipeline.writer_queue_depth(), 2u);

  auto overflow = pipeline.SubmitInteractions(
      {{static_cast<UserId>(3), static_cast<ItemId>(1), 1.0}});
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(),
            spa::StatusCode::kResourceExhausted);
  EXPECT_EQ(pipeline.stats().rejected_writes, 1u);
  EXPECT_EQ(pipeline.stats().rejected_reads, 0u);
  EXPECT_EQ(pipeline.stats().rejected, 1u);

  stack.gate.Open();
  pipeline.Flush();
  for (const auto& w : writes) {
    EXPECT_EQ(w->Wait(), TicketState::kDone);
    EXPECT_TRUE(w->update_report().ok());
  }
  // The high-water mark saw the full writer queue.
  EXPECT_EQ(pipeline.stats().max_writer_queue_depth, 2u);
}

TEST(ServingPipelineTest, WriterLaneDrainsBeforeQueuedReads) {
  GatedStack stack;
  ServingPipeline pipeline(stack.engine.get(), nullptr,
                           TinyPipelineConfig(BackpressurePolicy::kBlock));

  std::mutex order_mu;
  std::vector<std::string> completion_order;
  auto record = [&](std::string label) {
    return [&order_mu, &completion_order,
            label = std::move(label)](const StreamTicket&) {
      std::lock_guard<std::mutex> lock(order_mu);
      completion_order.push_back(label);
    };
  };

  auto r0 = pipeline.Submit(stack.Request(0), record("r0"));
  ASSERT_TRUE(r0.ok());
  while (pipeline.queue_depth() != 0) std::this_thread::yield();
  // r0 is parked on the gate; now queue a read, then a write. Despite
  // the read being older, the write drains first (writer priority).
  auto r1 = pipeline.Submit(stack.Request(1), record("r1"));
  ASSERT_TRUE(r1.ok());
  auto w0 = pipeline.SubmitInteractions(
      {{static_cast<UserId>(0), static_cast<ItemId>(1), 1.0}},
      record("w0"));
  ASSERT_TRUE(w0.ok());

  stack.gate.Open();
  pipeline.Flush();
  ASSERT_TRUE(w0.value()->update_report().ok());
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], "r0");
  EXPECT_EQ(completion_order[1], "w0");
  EXPECT_EQ(completion_order[2], "r1");
}

TEST(ServingPipelineTest, MicroBatchPinsOneSnapshotPerBatch) {
  // All requests drained as one micro-batch share one BatchPin.
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  InteractionMatrix matrix = MakeMatrix(7, /*shards=*/1);
  sum::SumService sums(&catalog);
  BootstrapSums(&sums, catalog, 7);
  auto engine = MakeEngine(&sums, &matrix, 7, /*cache_capacity=*/64);

  PipelineConfig config;
  config.workers = 1;
  config.max_batch = 16;
  ServingPipeline pipeline(engine.get(), &sums, config);
  std::vector<StreamTicketPtr> tickets;
  for (UserId u = 0; u < 8; ++u) {
    auto ticket = pipeline.Submit(
        [&] {
          RecommendRequest request;
          request.user = u;
          request.k = 3;
          return request;
        }());
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  pipeline.Flush();
  for (const auto& ticket : tickets) {
    ASSERT_EQ(ticket->Wait(), TicketState::kDone);
    EXPECT_EQ(ticket->pinned().sum_version, tickets[0]->pinned().sum_version);
    EXPECT_EQ(ticket->pinned().matrix_version,
              tickets[0]->pinned().matrix_version);
    EXPECT_EQ(ticket->pinned().matrix_version, matrix.version());
  }
  EXPECT_GE(pipeline.stats().batches, 1u);
  EXPECT_EQ(pipeline.stats().responses, 8u);
}

TEST(ServingPipelineTest, StatsHistogramTotalsMatchCounters) {
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  InteractionMatrix matrix = MakeMatrix(9, /*shards=*/2);
  sum::SumService sums(&catalog);
  BootstrapSums(&sums, catalog, 9);
  auto engine = MakeEngine(&sums, &matrix, 9, /*cache_capacity=*/64);

  PipelineConfig config;
  config.workers = 2;
  ServingPipeline pipeline(engine.get(), &sums, config);
  for (UserId u = 0; u < 20; ++u) {
    RecommendRequest request;
    request.user = u % static_cast<UserId>(kUsers);
    request.k = 3;
    ASSERT_TRUE(pipeline.Submit(std::move(request)).ok());
  }
  ASSERT_TRUE(pipeline
                  .SubmitInteractions(
                      {{static_cast<UserId>(1), static_cast<ItemId>(2),
                        1.0}})
                  .ok());
  pipeline.Flush();
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.responses, 20u);
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.end_to_end.total(), stats.responses);
  EXPECT_EQ(stats.batch_serve.total(), stats.batches);
  EXPECT_EQ(stats.update_apply.total(), stats.updates_applied);
  // Every admitted op waited in the queue exactly once.
  EXPECT_EQ(stats.queue_wait.total(), stats.responses + stats.updates_applied);
  EXPECT_LE(stats.end_to_end.Quantile(0.5),
            stats.end_to_end.Quantile(0.99));
}

TEST(ServingPipelineTest, SubmitAfterShutdownFailsCleanly) {
  GatedStack stack;
  stack.gate.Open();
  ServingPipeline pipeline(stack.engine.get(), nullptr,
                           TinyPipelineConfig(BackpressurePolicy::kBlock));
  auto ticket = pipeline.Submit(stack.Request(0));
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(ticket.value()->Wait(), TicketState::kDone);
  pipeline.Shutdown();
  const auto late = pipeline.Submit(stack.Request(1));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), spa::StatusCode::kFailedPrecondition);
  EXPECT_EQ(pipeline.worker_count(), 0u);
}

TEST(ServingPipelineTest, DestructorDrainsAdmittedTickets) {
  GatedStack stack;
  std::vector<StreamTicketPtr> tickets;
  {
    ServingPipeline pipeline(
        stack.engine.get(), nullptr,
        TinyPipelineConfig(BackpressurePolicy::kBlock));
    tickets = FillQueue(&pipeline, &stack);
    stack.gate.Open();
    // The destructor must complete r0..r2 before the workers stop.
  }
  for (const auto& ticket : tickets) {
    EXPECT_EQ(ticket->state(), TicketState::kDone);
    EXPECT_TRUE(ticket->response().ok());
  }
}

// ---- TSAN stress (in the CI TSAN job's regex) ------------------------------

TEST(ServingPipelineTest, TsanStressServeWhileStreamingUpdates) {
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  InteractionMatrix matrix = MakeMatrix(21, /*shards=*/4);
  sum::SumService sums(&catalog);
  BootstrapSums(&sums, catalog, 21);
  auto engine = MakeEngine(&sums, &matrix, 21, /*cache_capacity=*/128);

  PipelineConfig config;
  config.workers = 4;
  config.queue_capacity = 16;
  config.writer_queue_capacity = 16;
  config.policy = BackpressurePolicy::kBlock;
  config.max_batch = 4;
  ServingPipeline pipeline(engine.get(), &sums, config);

  constexpr int kProducers = 3;
  constexpr int kOpsPerProducer = 120;
  std::atomic<bool> stop_polling{false};
  std::atomic<uint64_t> producer_failures{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(100 + static_cast<uint64_t>(p));
      const auto attributes = eit::AllEmotionalAttributes();
      for (int i = 0; i < kOpsPerProducer; ++i) {
        const double roll = rng.Uniform();
        if (roll < 0.8) {
          RecommendRequest request;
          request.user = static_cast<UserId>(
              rng.UniformInt(0, static_cast<int64_t>(kUsers) - 1));
          request.k = 4;
          if (!pipeline.Submit(std::move(request)).ok()) {
            producer_failures.fetch_add(1);
          }
        } else if (roll < 0.9) {
          std::vector<Interaction> batch{
              {static_cast<UserId>(rng.UniformInt(
                   0, static_cast<int64_t>(kUsers) - 1)),
               static_cast<ItemId>(rng.UniformInt(
                   0, static_cast<int64_t>(kItems) - 1)),
               rng.Uniform(0.2, 3.0)}};
          if (!pipeline.SubmitInteractions(std::move(batch)).ok()) {
            producer_failures.fetch_add(1);
          }
        } else {
          const auto attr = attributes[static_cast<size_t>(
              rng.UniformInt(0,
                             static_cast<int64_t>(attributes.size()) -
                                 1))];
          std::vector<sum::SumUpdate> updates;
          updates.push_back(
              sum::SumUpdate(static_cast<sum::UserId>(rng.UniformInt(
                                 0, static_cast<int64_t>(kUsers) - 1)))
                  .Reward(catalog.EmotionalId(attr), 0.2));
          if (!pipeline.SubmitSumUpdates(std::move(updates)).ok()) {
            producer_failures.fetch_add(1);
          }
        }
      }
    });
  }
  std::thread poller([&] {
    while (!stop_polling.load(std::memory_order_relaxed)) {
      (void)pipeline.stats();
      (void)pipeline.queue_depth();
      (void)pipeline.writer_queue_depth();
      (void)engine->stage_stats();
      std::this_thread::yield();
    }
  });
  for (std::thread& producer : producers) producer.join();
  pipeline.Flush();
  stop_polling.store(true);
  poller.join();

  EXPECT_EQ(producer_failures.load(), 0u);
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kProducers * kOpsPerProducer));
  EXPECT_EQ(stats.admitted, stats.submitted);  // block policy
  EXPECT_EQ(stats.responses + stats.updates_applied, stats.admitted);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

}  // namespace
}  // namespace spa::recsys
