// Allocation-count regression for the serve hot path: the warm cached
// `RecommendInto` path must perform ZERO heap allocations. This TU
// replaces the global operator new/delete with counting versions
// (binary-wide — the replacements just delegate to malloc/free, so
// every other test is unaffected) and asserts that a window of warm
// cache-hit calls never enters the allocator.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "gtest/gtest.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"
#include "recsys/recsys_test_util.h"
#include "recsys/request.h"
#include "sum/sum_service.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_new_calls{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* CountedAllocAligned(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t alignment = static_cast<std::size_t>(align);
  std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (rounded == 0) rounded = alignment;
  void* ptr = std::aligned_alloc(alignment, rounded);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t,
                       std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace spa::recsys {
namespace {

class AllocationRegressionTest : public ::testing::Test {
 protected:
  AllocationRegressionTest()
      : matrix_(MakeTwoCommunityMatrix()),
        catalog_(sum::AttributeCatalog::EmagisterDefault()),
        sums_(&catalog_) {}

  std::unique_ptr<RecsysEngine> MakeEngine() {
    auto engine = std::make_unique<RecsysEngine>(EngineConfig{});
    engine->AddComponent(std::make_unique<UserKnnRecommender>(), 0.6);
    engine->AddComponent(std::make_unique<PopularityRecommender>(),
                         0.4);
    engine->set_sum_service(&sums_);
    EXPECT_TRUE(engine->Fit(matrix_).ok());
    return engine;
  }

  InteractionMatrix matrix_;
  sum::AttributeCatalog catalog_;
  sum::SumService sums_;
};

TEST_F(AllocationRegressionTest, WarmCachedRecommendIntoIsAllocFree) {
  auto engine = MakeEngine();
  RecommendRequest request;
  request.user = 0;
  request.k = 3;

  // Warm up: first call computes + caches; the next hits the cache and
  // sizes the reused response's buffers.
  RecommendResponse out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine->RecommendInto(request, &out).ok());
  }
  ASSERT_GT(engine->cache_stats().hits, 0u);

  // Measurement window: nothing inside may allocate, including the
  // Status round-trips (OK is an SSO-empty string). All EXPECTs stay
  // outside the window — gtest assertions allocate.
  bool all_ok = true;
  g_new_calls.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_release);
  for (int i = 0; i < 200; ++i) {
    all_ok = all_ok && engine->RecommendInto(request, &out).ok();
  }
  g_counting.store(false, std::memory_order_release);
  const uint64_t allocs = g_new_calls.load(std::memory_order_relaxed);

  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u)
      << "warm cached RecommendInto entered operator new " << allocs
      << " times over 200 calls";
  EXPECT_FALSE(out.items.empty());
}

TEST_F(AllocationRegressionTest, DistinctWarmEntriesStayAllocFree) {
  // Alternating between several already-cached fingerprints must also
  // stay alloc-free: the reused response's capacity only grows.
  auto engine = MakeEngine();
  RecommendRequest requests[4];
  for (UserId u = 0; u < 4; ++u) {
    requests[u].user = u;
    requests[u].k = 5;
  }
  RecommendResponse out;
  for (int round = 0; round < 3; ++round) {
    for (const RecommendRequest& request : requests) {
      ASSERT_TRUE(engine->RecommendInto(request, &out).ok());
    }
  }

  bool all_ok = true;
  g_new_calls.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_release);
  for (int round = 0; round < 50; ++round) {
    for (const RecommendRequest& request : requests) {
      all_ok = all_ok && engine->RecommendInto(request, &out).ok();
    }
  }
  g_counting.store(false, std::memory_order_release);
  const uint64_t allocs = g_new_calls.load(std::memory_order_relaxed);

  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

TEST_F(AllocationRegressionTest, RecomputePathStillProducesResults) {
  // Sanity guard for the counter harness itself: the cold (computing)
  // path does allocate, so the counter must observe traffic there —
  // otherwise a silent counting breakage would make the zero-alloc
  // assertions above vacuous.
  auto engine = MakeEngine();
  RecommendRequest request;
  request.user = 1;
  request.k = 3;
  RecommendResponse out;

  g_new_calls.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_release);
  const bool ok = engine->RecommendInto(request, &out).ok();
  g_counting.store(false, std::memory_order_release);

  EXPECT_TRUE(ok);
  EXPECT_GT(g_new_calls.load(std::memory_order_relaxed), 0u);
  EXPECT_FALSE(out.items.empty());
}

}  // namespace
}  // namespace spa::recsys
