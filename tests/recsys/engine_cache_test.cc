#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"
#include "recsys/recsys_test_util.h"
#include "recsys/request.h"
#include "sum/sum_service.h"

namespace spa::recsys {
namespace {

/// Fixture: engine over the two-community matrix with emotional
/// context wired through a SumService, exercising the response cache.
class EngineCacheTest : public ::testing::Test {
 protected:
  EngineCacheTest()
      : matrix_(MakeTwoCommunityMatrix()),
        catalog_(sum::AttributeCatalog::EmagisterDefault()),
        sums_(&catalog_) {}

  std::unique_ptr<RecsysEngine> MakeEngine(EngineConfig config = {}) {
    auto engine = std::make_unique<RecsysEngine>(config);
    engine->AddComponent(std::make_unique<UserKnnRecommender>(), 0.6);
    engine->AddComponent(std::make_unique<PopularityRecommender>(),
                         0.4);
    engine->set_sum_service(&sums_);
    EXPECT_TRUE(engine->Fit(matrix_).ok());
    return engine;
  }

  void SetItemProfiles(RecsysEngine* engine) {
    for (ItemId item = 0; item < 10; ++item) {
      EmotionProfile profile{};
      profile[static_cast<size_t>(
          eit::EmotionalAttribute::kEnthusiastic)] =
          static_cast<double>(item) / 10.0;
      engine->SetItemEmotionProfile(item, profile);
    }
  }

  sum::AttributeId Enthusiastic() const {
    return catalog_.EmotionalId(eit::EmotionalAttribute::kEnthusiastic);
  }

  static void ExpectSameItems(const RecommendResponse& a,
                              const RecommendResponse& b) {
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].item, b.items[i].item);
      EXPECT_EQ(a.items[i].score, b.items[i].score);  // bitwise
    }
  }

  InteractionMatrix matrix_;
  sum::AttributeCatalog catalog_;
  sum::SumService sums_;
};

TEST_F(EngineCacheTest, SecondIdenticalRecommendIsServedFromCache) {
  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(0).SetSensibility(Enthusiastic(), 0.8))
          .ok());
  auto engine = MakeEngine();
  SetItemProfiles(engine.get());

  RecommendRequest request;
  request.user = 0;
  request.k = 3;
  const auto first = engine->Recommend(request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine->cache_stats().hits, 0u);
  EXPECT_EQ(engine->cache_stats().misses, 1u);

  const auto second = engine->Recommend(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
  EXPECT_EQ(engine->cache_stats().misses, 1u);
  ExpectSameItems(first.value(), second.value());
}

TEST_F(EngineCacheTest, SumUpdateToUserInvalidatesExactlyThatUser) {
  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(0).SetSensibility(Enthusiastic(), 0.8))
          .ok());
  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(1).SetSensibility(Enthusiastic(), 0.5))
          .ok());
  auto engine = MakeEngine();
  SetItemProfiles(engine.get());

  RecommendRequest for_user0;
  for_user0.user = 0;
  for_user0.k = 3;
  RecommendRequest for_user1;
  for_user1.user = 1;
  for_user1.k = 3;
  ASSERT_TRUE(engine->Recommend(for_user0).ok());
  ASSERT_TRUE(engine->Recommend(for_user1).ok());

  // One update lands for user 0.
  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(0).SetSensibility(Enthusiastic(), 0.1))
          .ok());

  // User 1's entry still hits; user 0's entry is stale and recomputes
  // against the new snapshot.
  ASSERT_TRUE(engine->Recommend(for_user1).ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
  const auto refreshed = engine->Recommend(for_user0);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
  EXPECT_EQ(engine->cache_stats().stale_evictions, 1u);

  // And the recomputed response is cached again.
  ASSERT_TRUE(engine->Recommend(for_user0).ok());
  EXPECT_EQ(engine->cache_stats().hits, 2u);
}

TEST_F(EngineCacheTest, CachedResponseReflectsPreUpdateRanking) {
  // The cache must serve the *same bytes* as the original computation,
  // and recompute only after the invalidating update.
  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(0).SetSensibility(Enthusiastic(), 0.9))
          .ok());
  auto engine = MakeEngine();
  SetItemProfiles(engine.get());

  RecommendRequest request;
  request.user = 0;
  request.k = 2;
  request.exclude_seen = ExcludeSeen::kNo;
  const auto before = engine->Recommend(request);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(0).SetSensibility(Enthusiastic(), 0.0))
          .ok());
  const auto after = engine->Recommend(request);
  ASSERT_TRUE(after.ok());
  // Emotion stage still applies (model exists) but alignment changed;
  // scores must differ from the cached pre-update response.
  ASSERT_FALSE(after.value().items.empty());
  EXPECT_NE(before.value().items.front().score,
            after.value().items.front().score);
}

TEST_F(EngineCacheTest, RequestFingerprintSeparatesEntries) {
  auto engine = MakeEngine();
  RecommendRequest request;
  request.user = 0;
  request.k = 3;
  ASSERT_TRUE(engine->Recommend(request).ok());

  RecommendRequest different_k = request;
  different_k.k = 4;
  RecommendRequest with_exclusion = request;
  with_exclusion.exclude_items = {2};
  RecommendRequest with_explain = request;
  with_explain.explain = true;
  RecommendRequest relaxed = request;
  relaxed.exclude_seen = ExcludeSeen::kNo;
  ASSERT_TRUE(engine->Recommend(different_k).ok());
  ASSERT_TRUE(engine->Recommend(with_exclusion).ok());
  ASSERT_TRUE(engine->Recommend(with_explain).ok());
  ASSERT_TRUE(engine->Recommend(relaxed).ok());
  // Five distinct fingerprints: no hit yet, five live entries.
  EXPECT_EQ(engine->cache_stats().hits, 0u);
  EXPECT_EQ(engine->cache_size(), 5u);

  // Each repeats as a hit.
  ASSERT_TRUE(engine->Recommend(request).ok());
  ASSERT_TRUE(engine->Recommend(different_k).ok());
  ASSERT_TRUE(engine->Recommend(with_exclusion).ok());
  ASSERT_TRUE(engine->Recommend(with_explain).ok());
  ASSERT_TRUE(engine->Recommend(relaxed).ok());
  EXPECT_EQ(engine->cache_stats().hits, 5u);
}

TEST_F(EngineCacheTest, ZeroCapacityDisablesCache) {
  EngineConfig config;
  config.response_cache_capacity = 0;
  auto engine = MakeEngine(config);
  RecommendRequest request;
  request.user = 0;
  request.k = 3;
  ASSERT_TRUE(engine->Recommend(request).ok());
  ASSERT_TRUE(engine->Recommend(request).ok());
  EXPECT_EQ(engine->cache_stats().hits, 0u);
  EXPECT_EQ(engine->cache_stats().misses, 0u);
  EXPECT_EQ(engine->cache_size(), 0u);
}

TEST_F(EngineCacheTest, OverrideRequestsBypassCache) {
  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(0).SetSensibility(Enthusiastic(), 0.8))
          .ok());
  auto engine = MakeEngine();
  SetItemProfiles(engine.get());

  RecommendRequest request;
  request.user = 0;
  request.k = 3;
  request.emotion_override = sums_.snapshot();
  ASSERT_TRUE(engine->Recommend(request).ok());
  ASSERT_TRUE(engine->Recommend(request).ok());
  EXPECT_EQ(engine->cache_stats().hits, 0u);
  EXPECT_EQ(engine->cache_stats().misses, 0u);
  EXPECT_EQ(engine->cache_size(), 0u);
}

TEST_F(EngineCacheTest, MatrixMutationWithoutRefitInvalidates) {
  // Index-free recommenders serve from the live matrix (e.g. the seen
  // filter), so a mutation after Fit must stop cached entries from
  // matching even before anyone refits. (Indexed KNN components
  // instead hard-fail on post-Fit mutation — covered in
  // similarity_index_test.cc — so this engine uses the lazy path.)
  auto engine = std::make_unique<RecsysEngine>(EngineConfig{});
  engine->AddComponent(std::make_unique<UserKnnRecommender>(
                           KnnConfig{.use_index = false}),
                       0.6);
  engine->AddComponent(std::make_unique<PopularityRecommender>(), 0.4);
  engine->set_sum_service(&sums_);
  ASSERT_TRUE(engine->Fit(matrix_).ok());
  RecommendRequest request;
  request.user = 0;
  request.k = 5;
  const auto before = engine->Recommend(request);
  ASSERT_TRUE(before.ok());
  const ItemId top = before.value().items.front().item;

  matrix_.Add(0, top, 1.0);  // user 0 just saw the top item
  const auto after = engine->Recommend(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(engine->cache_stats().hits, 0u);
  EXPECT_EQ(engine->cache_stats().stale_evictions, 1u);
  // The recomputed response excludes the now-seen item.
  for (const auto& item : after.value().items) {
    EXPECT_NE(item.item, top);
  }
}

TEST_F(EngineCacheTest, RefitClearsCache) {
  auto engine = MakeEngine();
  RecommendRequest request;
  request.user = 0;
  request.k = 3;
  ASSERT_TRUE(engine->Recommend(request).ok());
  EXPECT_EQ(engine->cache_size(), 1u);

  matrix_.Add(0, 7, 2.0);  // matrix changed...
  ASSERT_TRUE(engine->Fit(matrix_).ok());  // ...and the stack refitted
  EXPECT_EQ(engine->cache_size(), 0u);
  const auto refreshed = engine->Recommend(request);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(engine->cache_stats().hits, 0u);
}

TEST_F(EngineCacheTest, LruEvictsBeyondCapacity) {
  EngineConfig config;
  config.response_cache_capacity = 4;
  auto engine = MakeEngine(config);
  for (UserId u = 0; u < 8; ++u) {
    RecommendRequest request;
    request.user = u;
    request.k = 3;
    ASSERT_TRUE(engine->Recommend(request).ok());
  }
  EXPECT_EQ(engine->cache_size(), 4u);
  EXPECT_EQ(engine->cache_stats().capacity_evictions, 4u);

  // The most recent four (users 4..7) still hit; the oldest are gone.
  RecommendRequest request;
  request.k = 3;
  request.user = 7;
  ASSERT_TRUE(engine->Recommend(request).ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
  request.user = 0;
  ASSERT_TRUE(engine->Recommend(request).ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);  // miss: evicted
}

// ---- frequency-aware tiering ----------------------------------------------

TEST_F(EngineCacheTest, FrequencyAdmissionProtectsHotSetFromOneHitWonders) {
  EngineConfig config;
  config.response_cache_capacity = 2;
  auto engine = MakeEngine(config);

  // Users 0 and 1 are hot: five accesses each.
  for (int round = 0; round < 5; ++round) {
    for (UserId u = 0; u < 2; ++u) {
      RecommendRequest request;
      request.user = u;
      request.k = 3;
      ASSERT_TRUE(engine->Recommend(request).ok());
    }
  }
  EXPECT_DOUBLE_EQ(engine->user_frequency(0), 5.0);
  EXPECT_DOUBLE_EQ(engine->user_frequency(1), 5.0);
  const uint64_t hot_hits = engine->cache_stats().hits;

  // A parade of one-hit wonders. Under plain LRU each would evict a
  // hot entry; frequency admission refuses them (1 access < 5).
  for (UserId u = 10; u < 16; ++u) {
    RecommendRequest request;
    request.user = u;
    request.k = 3;
    ASSERT_TRUE(engine->Recommend(request).ok());
  }
  EXPECT_EQ(engine->cache_stats().admission_rejections, 6u);
  EXPECT_EQ(engine->cache_stats().capacity_evictions, 0u);
  EXPECT_EQ(engine->cache_size(), 2u);

  // The hot set is intact: both users still hit.
  for (UserId u = 0; u < 2; ++u) {
    RecommendRequest request;
    request.user = u;
    request.k = 3;
    ASSERT_TRUE(engine->Recommend(request).ok());
  }
  EXPECT_EQ(engine->cache_stats().hits, hot_hits + 2);
}

TEST_F(EngineCacheTest, AdmissionRejectionNeverChangesServedBytes) {
  // Rejected-from-cache responses are still full computes: the
  // admission policy controls memoization only, never bytes.
  EngineConfig tiered;
  tiered.response_cache_capacity = 2;
  auto engine = MakeEngine(tiered);
  EngineConfig uncached;
  uncached.response_cache_capacity = 0;
  auto reference = MakeEngine(uncached);

  for (int round = 0; round < 3; ++round) {
    RecommendRequest request;
    request.user = 0;
    request.k = 4;
    ASSERT_TRUE(engine->Recommend(request).ok());
    request.user = 1;
    ASSERT_TRUE(engine->Recommend(request).ok());
  }
  for (UserId u = 5; u < 9; ++u) {
    RecommendRequest request;
    request.user = u;
    request.k = 4;
    const auto got = engine->Recommend(request);
    const auto want = reference->Recommend(request);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectSameItems(got.value(), want.value());
    EXPECT_FALSE(got.value().degraded);
  }
  EXPECT_GT(engine->cache_stats().admission_rejections, 0u);
}

TEST_F(EngineCacheTest, DisablingFrequencyAdmissionReproducesPlainLru) {
  EngineConfig config;
  config.response_cache_capacity = 2;
  config.cache_frequency_admission = false;
  auto engine = MakeEngine(config);

  for (int round = 0; round < 5; ++round) {
    for (UserId u = 0; u < 2; ++u) {
      RecommendRequest request;
      request.user = u;
      request.k = 3;
      ASSERT_TRUE(engine->Recommend(request).ok());
    }
  }
  // One cold user displaces the LRU hot entry — plain LRU behavior.
  RecommendRequest cold;
  cold.user = 10;
  cold.k = 3;
  ASSERT_TRUE(engine->Recommend(cold).ok());
  EXPECT_EQ(engine->cache_stats().admission_rejections, 0u);
  EXPECT_EQ(engine->cache_stats().capacity_evictions, 1u);

  RecommendRequest hot;
  hot.user = 0;  // the older of the two hot entries: evicted
  hot.k = 3;
  const uint64_t hits = engine->cache_stats().hits;
  ASSERT_TRUE(engine->Recommend(hot).ok());
  EXPECT_EQ(engine->cache_stats().hits, hits);  // miss
}

TEST_F(EngineCacheTest, FrequencyDecayRunsOnTheLookupCadence) {
  EngineConfig config;
  config.response_cache_capacity = 8;
  config.cache_decay_interval = 4;  // decay every 4th cacheable lookup
  config.cache_decay_factor = 0.5;
  auto engine = MakeEngine(config);

  RecommendRequest request;
  request.user = 0;
  request.k = 3;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine->Recommend(request).ok());
  }
  // Four touches then one decay epoch: 4 * 0.5.
  EXPECT_EQ(engine->user_frequency_stats().decay_epochs, 1u);
  EXPECT_DOUBLE_EQ(engine->user_frequency(0), 2.0);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine->Recommend(request).ok());
  }
  EXPECT_EQ(engine->user_frequency_stats().decay_epochs, 2u);
  EXPECT_DOUBLE_EQ(engine->user_frequency(0), 3.0);  // (2 + 4) * 0.5
}

TEST_F(EngineCacheTest, ItemFrequencyTracksComputedResponses) {
  EngineConfig config;
  config.response_cache_capacity = 8;
  auto engine = MakeEngine(config);

  RecommendRequest request;
  request.user = 0;
  request.k = 3;
  const auto first = engine->Recommend(request);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().items.empty());
  const ItemId top = first.value().items[0].item;
  EXPECT_DOUBLE_EQ(engine->item_frequency(top), 1.0);

  // A cache hit is not a new computed response: item counts hold.
  ASSERT_TRUE(engine->Recommend(request).ok());
  EXPECT_DOUBLE_EQ(engine->item_frequency(top), 1.0);
}

// ---- popularity fallback tier ---------------------------------------------

TEST_F(EngineCacheTest, FallbackServesDegradedPopularityRanking) {
  auto engine = MakeEngine();
  SetItemProfiles(engine.get());

  RecommendRequest request;
  request.user = 0;
  request.k = 4;
  BatchPin pin;
  const auto fallback = engine->RecommendFallback(request, &pin);
  ASSERT_TRUE(fallback.ok());
  EXPECT_TRUE(fallback.value().degraded);
  EXPECT_FALSE(fallback.value().explained);
  EXPECT_FALSE(fallback.value().emotion_applied);
  EXPECT_EQ(pin.matrix_version, matrix_.version());
  ASSERT_FALSE(fallback.value().items.empty());
  // Ranked best-first with ties broken by ascending item id — the
  // popularity contract.
  for (size_t i = 1; i < fallback.value().items.size(); ++i) {
    const auto& prev = fallback.value().items[i - 1];
    const auto& cur = fallback.value().items[i];
    EXPECT_TRUE(prev.score > cur.score ||
                (prev.score == cur.score && prev.item < cur.item));
  }

  // Deterministic: a second engine over the same matrix produces the
  // same degraded bytes.
  auto reference = MakeEngine();
  const auto again = reference->RecommendFallback(request);
  ASSERT_TRUE(again.ok());
  ExpectSameItems(fallback.value(), again.value());
  EXPECT_TRUE(again.value().degraded);

  // The full path is NOT the fallback path: full responses are never
  // flagged degraded, and the fallback never touches the cache.
  EXPECT_EQ(engine->cache_size(), 0u);
  const auto full = engine->Recommend(request);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full.value().degraded);
}

TEST_F(EngineCacheTest, FallbackHonorsExclusionsAndValidation) {
  auto engine = MakeEngine();

  RecommendRequest request;
  request.user = 0;
  request.k = 50;
  request.exclude_seen = ExcludeSeen::kNo;
  const auto all = engine->RecommendFallback(request);
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all.value().items.size(), 1u);
  const ItemId banned = all.value().items[0].item;

  request.exclude_items.insert(banned);
  const auto filtered = engine->RecommendFallback(request);
  ASSERT_TRUE(filtered.ok());
  for (const auto& item : filtered.value().items) {
    EXPECT_NE(item.item, banned);
  }

  RecommendRequest invalid;
  invalid.user = 0;
  invalid.k = 0;
  EXPECT_FALSE(engine->RecommendFallback(invalid).ok());
}

// ---- concurrent serve-while-update ----------------------------------------

TEST_F(EngineCacheTest, PinnedSnapshotServesStableRankingsUnderUpdates) {
  // Readers serving against a pinned snapshot must observe rankings
  // identical to the pinned version no matter how many SumUpdates land
  // concurrently. Run under TSAN to certify the data-race freedom.
  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(0).SetSensibility(Enthusiastic(), 0.5))
          .ok());
  auto engine = MakeEngine();
  SetItemProfiles(engine.get());

  const sum::SumSnapshotPtr pinned = sums_.snapshot();
  RecommendRequest pinned_request;
  pinned_request.user = 0;
  pinned_request.k = 4;
  pinned_request.exclude_seen = ExcludeSeen::kNo;
  pinned_request.emotion_override = pinned;
  const auto expected = engine->Recommend(pinned_request);
  ASSERT_TRUE(expected.ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto response = engine->Recommend(pinned_request);
        if (!response.ok() ||
            response.value().items.size() !=
                expected.value().items.size()) {
          mismatch.store(true);
          return;
        }
        for (size_t i = 0; i < response.value().items.size(); ++i) {
          if (response.value().items[i].item !=
                  expected.value().items[i].item ||
              response.value().items[i].score !=
                  expected.value().items[i].score) {
            mismatch.store(true);
            return;
          }
        }
      }
    });
  }
  // A live reader exercises the service-pinning + cache path under
  // concurrent writes (responses must stay well-formed).
  std::thread live_reader([&] {
    RecommendRequest live = pinned_request;
    live.emotion_override = nullptr;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto response = engine->Recommend(live);
      if (!response.ok()) {
        mismatch.store(true);
        return;
      }
    }
  });

  // The writer mutates user 0's emotional context the whole time.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(sums_
                    .Apply(sum::SumUpdate(0).SetSensibility(
                        Enthusiastic(), (i % 10) / 10.0))
                    .ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  live_reader.join();
  EXPECT_FALSE(mismatch.load());

  // The pinned view itself never moved.
  EXPECT_EQ(pinned->UserVersion(0), 1u);
  EXPECT_EQ(sums_.UserVersion(0), 501u);
}

TEST_F(EngineCacheTest, StageLatencyCountersAccumulate) {
  auto engine = MakeEngine();
  const StageStats before = engine->stage_stats();
  EXPECT_EQ(before.candidate_gen.count, 0u);

  for (UserId u = 0; u < 3; ++u) {
    RecommendRequest request;
    request.user = u;
    request.k = 3;
    ASSERT_TRUE(engine->Recommend(request).ok());
  }
  StageStats stats = engine->stage_stats();
  EXPECT_EQ(stats.candidate_gen.count, 3u);
  EXPECT_EQ(stats.rerank.count, 3u);
  EXPECT_EQ(stats.cache_lookup.count, 3u);
  EXPECT_GE(stats.candidate_gen.total_seconds,
            stats.candidate_gen.max_seconds);
  EXPECT_GT(stats.candidate_gen.max_seconds, 0.0);

  // A cache hit probes the cache but recomputes nothing.
  RecommendRequest repeat;
  repeat.user = 0;
  repeat.k = 3;
  ASSERT_TRUE(engine->Recommend(repeat).ok());
  stats = engine->stage_stats();
  EXPECT_EQ(stats.cache_lookup.count, 4u);
  EXPECT_EQ(stats.candidate_gen.count, 3u);
  EXPECT_EQ(stats.rerank.count, 3u);
}

TEST_F(EngineCacheTest, StageHistogramTotalsMatchStageCounters) {
  // The latency histograms record exactly once per stage execution, so
  // their totals must equal the existing counters — on the computed
  // path and on cache hits (which probe the cache but skip the
  // compute stages).
  auto engine = MakeEngine();
  for (UserId u = 0; u < 5; ++u) {
    RecommendRequest request;
    request.user = u;
    request.k = 3;
    ASSERT_TRUE(engine->Recommend(request).ok());
    ASSERT_TRUE(engine->Recommend(request).ok());  // cache hit
  }
  const StageStats stats = engine->stage_stats();
  EXPECT_EQ(stats.candidate_gen.count, 5u);
  EXPECT_EQ(stats.cache_lookup.count, 10u);
  for (const StageStats::Stage* stage :
       {&stats.candidate_gen, &stats.rerank, &stats.cache_lookup}) {
    EXPECT_EQ(stage->histogram.total(), stage->count);
    EXPECT_LE(stage->p50_seconds, stage->p95_seconds);
    EXPECT_LE(stage->p95_seconds, stage->p99_seconds);
    EXPECT_GT(stage->p50_seconds, 0.0);
    // The max counter cannot sit below the histogram's p99 by more
    // than one bucket width (both saw the same samples).
    EXPECT_LE(stage->p99_seconds,
              std::max(stage->max_seconds * 1.34, 1e-7 * 1.34));
  }
}

TEST_F(EngineCacheTest, RecommendBatchReportsItsPin) {
  auto engine = MakeEngine();
  std::vector<RecommendRequest> requests;
  for (UserId u = 0; u < 4; ++u) {
    RecommendRequest request;
    request.user = u;
    request.k = 3;
    requests.push_back(std::move(request));
  }
  BatchPin pin;
  const auto responses = engine->RecommendBatch(requests, &pin);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(pin.fit_epoch, 1u);
  EXPECT_EQ(pin.matrix_version, matrix_.version());
  EXPECT_EQ(pin.sum_version, sums_.version());

  // The inline (sequential, caller-thread) micro-batch primitive is
  // byte-identical at the same pin.
  BatchPin inline_pin;
  const auto inline_responses =
      engine->RecommendBatchInline(requests, &inline_pin);
  EXPECT_EQ(inline_pin.matrix_version, pin.matrix_version);
  EXPECT_EQ(inline_pin.sum_version, pin.sum_version);
  ASSERT_EQ(inline_responses.size(), responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok());
    ASSERT_TRUE(inline_responses[i].ok());
    ExpectSameItems(responses[i].value(), inline_responses[i].value());
  }
}

TEST_F(EngineCacheTest, RecommendBatchPinsOneSnapshotForTheWholeBatch) {
  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(0).SetSensibility(Enthusiastic(), 0.5))
          .ok());
  EngineConfig config;
  config.batch_threads = 4;
  auto engine = MakeEngine(config);
  SetItemProfiles(engine.get());

  // The same request repeated across one batch: because the whole
  // batch serves against one pinned snapshot, the copies must come
  // back identical even while updates to that user land concurrently.
  // (Per-request pinning would let later copies observe newer
  // context.)
  std::vector<RecommendRequest> requests;
  for (int i = 0; i < 8; ++i) {
    RecommendRequest request;
    request.user = 0;
    request.k = 4;
    request.exclude_seen = ExcludeSeen::kNo;
    requests.push_back(std::move(request));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(sums_
                      .Apply(sum::SumUpdate(0).SetSensibility(
                          Enthusiastic(), (i++ % 10) / 10.0))
                      .ok());
    }
  });
  for (int round = 0; round < 50; ++round) {
    const auto results = engine->RecommendBatch(requests);
    ASSERT_TRUE(results.front().ok());
    for (const auto& result : results) {
      ASSERT_TRUE(result.ok());
      ExpectSameItems(results.front().value(), result.value());
    }
  }
  stop.store(true);
  writer.join();
}

TEST_F(EngineCacheTest, RecommendBatchWhileUpdatesLand) {
  ASSERT_TRUE(
      sums_.Apply(sum::SumUpdate(0).SetSensibility(Enthusiastic(), 0.5))
          .ok());
  EngineConfig config;
  config.batch_threads = 4;
  auto engine = MakeEngine(config);
  SetItemProfiles(engine.get());

  std::vector<RecommendRequest> requests;
  for (UserId u = 0; u < 10; ++u) {
    RecommendRequest request;
    request.user = u;
    request.k = 3;
    requests.push_back(std::move(request));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(sums_
                      .Apply(sum::SumUpdate(i % 10).Reward(
                          Enthusiastic(), 0.05))
                      .ok());
      ++i;
    }
  });
  for (int round = 0; round < 50; ++round) {
    const auto results = engine->RecommendBatch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (const auto& result : results) {
      ASSERT_TRUE(result.ok());
    }
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace spa::recsys
