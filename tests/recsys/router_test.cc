#include "recsys/router/serving_router.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "eit/emotion.h"
#include "gtest/gtest.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/router/ownership_directory.h"
#include "sum/sum_service.h"

/// The router tier. Load-bearing claims tested here:
///
///  * **Directory determinism**: the user->worker resolution is a pure
///    function of (user, membership) — identical across instances,
///    pinned by golden values — and membership changes move exactly
///    the shards rendezvous hashing says they move (join: only *to*
///    the newcomer; leave: only *from* the leaver).
///  * **Routed parity**: every routed response is bitwise-identical to
///    a single-process engine serving the same request at the same
///    pinned (matrix version, SUM version) pair — asserted by the
///    randomized differential harness below over interleaved Submit /
///    ApplyInteractions / SubmitSumUpdates / worker join+leave
///    schedules (the router-tier extension of the PR 5 pipeline
///    harness).
///  * **Replica convergence**: fanned interaction batches land on
///    every worker with the same post-apply matrix version, and a
///    joining worker's log replay reaches the bitwise-identical state.
///  * **Race freedom**: the TSAN stress case (routed traffic under
///    membership churn) runs under TSAN in CI (ServingRouter* is in
///    the TSAN job's ctest regex).

namespace spa::recsys {
namespace {

constexpr size_t kUsers = 100;
constexpr size_t kItems = 50;

// ---- shared deterministic fixtures -----------------------------------------

/// The ordered interaction log every replica bootstraps from (the
/// router-tier analogue of the pipeline harness's MakeMatrix: same
/// generator, as a replayable log instead of a built matrix).
std::vector<Interaction> MakeBootstrapLog(uint64_t seed) {
  Rng rng(seed, /*stream=*/1);
  std::vector<Interaction> log;
  log.reserve(kUsers * 6);
  for (size_t u = 0; u < kUsers; ++u) {
    const auto base =
        static_cast<ItemId>((u % 2 == 0) ? 0 : kItems / 2);
    for (int j = 0; j < 6; ++j) {
      const auto item = static_cast<ItemId>(
          base +
          rng.UniformInt(0, static_cast<int64_t>(kItems) / 2 - 1));
      log.push_back(Interaction{static_cast<UserId>(u), item,
                                rng.Uniform(0.2, 3.0)});
    }
  }
  return log;
}

InteractionMatrix MatrixFromLog(const std::vector<Interaction>& log,
                                size_t shards) {
  InteractionMatrix m(shards);
  for (const Interaction& it : log) m.Add(it.user, it.item, it.weight);
  return m;
}

/// Deterministic SUM bootstrap: one ApplyAll publish (version 1).
void BootstrapSums(sum::SumService* sums,
                   const sum::AttributeCatalog& catalog,
                   uint64_t seed) {
  Rng rng(seed, /*stream=*/2);
  std::vector<sum::SumUpdate> bootstrap;
  bootstrap.reserve(kUsers);
  for (size_t u = 0; u < kUsers; ++u) {
    sum::SumUpdate update(static_cast<sum::UserId>(u));
    for (eit::EmotionalAttribute attr : eit::AllEmotionalAttributes()) {
      if (rng.Bernoulli(0.4)) {
        update.SetSensibility(catalog.EmotionalId(attr),
                              rng.Uniform(0.2, 1.0));
      }
    }
    bootstrap.push_back(std::move(update));
  }
  ASSERT_TRUE(sums->ApplyAll(bootstrap).ok());
}

/// The stack every worker (and the single-process reference) builds:
/// two KNN components plus deterministic item emotion profiles.
std::function<void(RecsysEngine&)> MakeStackBuilder(uint64_t seed) {
  return [seed](RecsysEngine& engine) {
    engine.AddComponent(std::make_unique<UserKnnRecommender>(), 0.6);
    engine.AddComponent(std::make_unique<ItemKnnRecommender>(), 0.4);
    Rng rng(seed, /*stream=*/3);
    for (size_t i = 0; i < kItems; ++i) {
      EmotionProfile profile{};
      for (double& p : profile) p = rng.Uniform();
      engine.SetItemEmotionProfile(static_cast<ItemId>(i), profile);
    }
  };
}

/// Single-process reference engine over the same log and stack (cache
/// off: the reference must always recompute).
std::unique_ptr<RecsysEngine> MakeReferenceEngine(
    const sum::SumService* sums, InteractionMatrix* matrix,
    uint64_t seed, size_t shards) {
  EngineConfig config;
  config.response_cache_capacity = 0;
  config.interaction_shards = shards;
  auto engine = std::make_unique<RecsysEngine>(config);
  MakeStackBuilder(seed)(*engine);
  engine->set_sum_service(sums);
  EXPECT_TRUE(engine->Fit(matrix).ok());
  return engine;
}

RouterConfig MakeRouterConfig(uint64_t seed, size_t workers,
                              size_t cache_capacity = 256) {
  RouterConfig config;
  config.workers = workers;
  config.directory.virtual_shards = 32;
  config.engine.response_cache_capacity = cache_capacity;
  config.engine.interaction_shards = 1 + seed % 4;
  config.queue.workers = 1;
  config.queue.queue_capacity = 16;
  config.queue.writer_queue_capacity = 16;
  config.queue.max_batch = 4;
  config.stack_builder = MakeStackBuilder(seed);
  return config;
}

void ExpectBitwiseEqual(const RecommendResponse& routed,
                        const RecommendResponse& reference,
                        const std::string& context) {
  EXPECT_EQ(routed.user, reference.user) << context;
  EXPECT_EQ(routed.emotion_applied, reference.emotion_applied)
      << context;
  EXPECT_EQ(routed.explained, reference.explained) << context;
  ASSERT_EQ(routed.items.size(), reference.items.size()) << context;
  for (size_t i = 0; i < routed.items.size(); ++i) {
    const RecommendedItem& a = routed.items[i];
    const RecommendedItem& b = reference.items[i];
    EXPECT_EQ(a.item, b.item) << context << " rank " << i;
    EXPECT_EQ(a.score, b.score) << context << " rank " << i;  // bitwise
  }
}

// ---- OwnershipDirectory ----------------------------------------------------

TEST(OwnershipDirectoryTest, EmptyDirectoryResolvesToNoWorker) {
  OwnershipDirectory directory;
  EXPECT_EQ(directory.OwnerOf(7), kNoWorker);
  EXPECT_EQ(directory.worker_count(), 0u);
  EXPECT_EQ(directory.version(), 0u);
}

TEST(OwnershipDirectoryTest, ShardOfIsTheSplitMix64Fold) {
  DirectoryConfig config;
  config.virtual_shards = 8;
  OwnershipDirectory directory(config);
  for (UserId user = 0; user < 20; ++user) {
    EXPECT_EQ(directory.ShardOf(user),
              SplitMix64(static_cast<uint64_t>(user)) % 8);
  }
}

TEST(OwnershipDirectoryTest, GoldenAssignmentIsPinnedAcrossBuilds) {
  // The assignment is wire format for a multi-process deployment: two
  // routers must agree on "who owns user X" from membership alone.
  // If this test fails the rendezvous arithmetic changed — that is a
  // breaking protocol change, not a fixable test.
  DirectoryConfig config;
  config.virtual_shards = 8;
  OwnershipDirectory directory(config);
  ASSERT_TRUE(directory.AddWorker(0).ok());
  ASSERT_TRUE(directory.AddWorker(1).ok());
  ASSERT_TRUE(directory.AddWorker(2).ok());
  const WorkerId kGoldenOwners[8] = {0, 1, 2, 0, 2, 2, 2, 2};
  for (uint32_t shard = 0; shard < 8; ++shard) {
    EXPECT_EQ(directory.OwnerOfShard(shard), kGoldenOwners[shard])
        << "shard " << shard;
  }
}

TEST(OwnershipDirectoryTest, DeterministicAcrossInstancesAndHistory) {
  // Same current membership => same table, regardless of how the
  // membership was reached.
  DirectoryConfig config;
  config.virtual_shards = 64;
  OwnershipDirectory a(config);
  ASSERT_TRUE(a.AddWorker(0).ok());
  ASSERT_TRUE(a.AddWorker(1).ok());
  ASSERT_TRUE(a.AddWorker(2).ok());
  ASSERT_TRUE(a.AddWorker(3).ok());
  ASSERT_TRUE(a.RemoveWorker(1).ok());

  OwnershipDirectory b(config);
  ASSERT_TRUE(b.AddWorker(3).ok());
  ASSERT_TRUE(b.AddWorker(0).ok());
  ASSERT_TRUE(b.AddWorker(2).ok());

  for (uint32_t shard = 0; shard < 64; ++shard) {
    EXPECT_EQ(a.OwnerOfShard(shard), b.OwnerOfShard(shard));
  }
  for (UserId user = 0; user < 200; ++user) {
    EXPECT_EQ(a.OwnerOf(user), b.OwnerOf(user));
  }
}

TEST(OwnershipDirectoryTest, JoinMovesShardsOnlyToTheNewcomer) {
  OwnershipDirectory directory;
  ASSERT_TRUE(directory.AddWorker(0).ok());
  ASSERT_TRUE(directory.AddWorker(1).ok());
  const auto before_owner = [&] {
    std::vector<WorkerId> owners;
    for (uint32_t s = 0; s < 128; ++s) {
      owners.push_back(directory.OwnerOfShard(s));
    }
    return owners;
  }();

  auto plan = directory.AddWorker(2);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->moves.empty());  // the newcomer wins something
  for (const ShardMove& move : plan->moves) {
    EXPECT_EQ(move.to, 2u);
    EXPECT_EQ(move.from, before_owner[move.shard]);
    EXPECT_NE(move.from, 2u);
  }
  // Shards not in the plan kept their owner: minimal disruption.
  std::vector<bool> moved(128, false);
  for (const ShardMove& move : plan->moves) moved[move.shard] = true;
  for (uint32_t s = 0; s < 128; ++s) {
    if (!moved[s]) {
      EXPECT_EQ(directory.OwnerOfShard(s), before_owner[s]);
    }
  }
}

TEST(OwnershipDirectoryTest, LeaveMovesOnlyTheLeaversShards) {
  OwnershipDirectory directory;
  for (WorkerId w = 0; w < 4; ++w) {
    ASSERT_TRUE(directory.AddWorker(w).ok());
  }
  const std::vector<uint32_t> owned = directory.ShardsOwnedBy(2);
  auto plan = directory.RemoveWorker(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->moves.size(), owned.size());
  for (const ShardMove& move : plan->moves) {
    EXPECT_EQ(move.from, 2u);
    EXPECT_NE(move.to, 2u);
    EXPECT_NE(move.to, kNoWorker);
  }
  EXPECT_TRUE(directory.ShardsOwnedBy(2).empty());
}

TEST(OwnershipDirectoryTest, AssignmentIsRoughlyBalanced) {
  OwnershipDirectory directory;  // 128 virtual shards
  for (WorkerId w = 0; w < 4; ++w) {
    ASSERT_TRUE(directory.AddWorker(w).ok());
  }
  size_t total = 0;
  for (WorkerId w = 0; w < 4; ++w) {
    const size_t owned = directory.ShardsOwnedBy(w).size();
    total += owned;
    // Expected 32 per worker; rendezvous keeps every worker within a
    // loose band (the concrete assignment is pinned by construction,
    // so this cannot flake).
    EXPECT_GE(owned, 16u) << "worker " << w;
    EXPECT_LE(owned, 48u) << "worker " << w;
  }
  EXPECT_EQ(total, 128u);
}

TEST(OwnershipDirectoryTest, MembershipErrorsAndVersioning) {
  OwnershipDirectory directory;
  EXPECT_EQ(directory.AddWorker(kNoWorker).status().code(),
            spa::StatusCode::kInvalidArgument);
  ASSERT_TRUE(directory.AddWorker(5).ok());
  EXPECT_EQ(directory.version(), 1u);
  EXPECT_EQ(directory.AddWorker(5).status().code(),
            spa::StatusCode::kAlreadyExists);
  EXPECT_EQ(directory.RemoveWorker(6).status().code(),
            spa::StatusCode::kNotFound);
  EXPECT_EQ(directory.version(), 1u);  // failed changes don't bump
  auto plan = directory.RemoveWorker(5);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->directory_version, 2u);
  for (const ShardMove& move : plan->moves) {
    EXPECT_EQ(move.to, kNoWorker);  // membership emptied
  }
}

TEST(OwnershipDirectoryDeathTest, ZeroVirtualShardsAborts) {
  DirectoryConfig config;
  config.virtual_shards = 0;
  EXPECT_DEATH(OwnershipDirectory directory(config),
               "virtual shard");
}

// ---- ServingRouter: routing, fan-out, membership ---------------------------

struct RouterFixture {
  explicit RouterFixture(uint64_t seed, size_t workers)
      : catalog(sum::AttributeCatalog::EmagisterDefault()),
        sums(&catalog),
        log(MakeBootstrapLog(seed)) {
    BootstrapSums(&sums, catalog, seed);
    auto created = ServingRouter::Create(
        MakeRouterConfig(seed, workers), log, &sums);
    EXPECT_TRUE(created.ok()) << created.status();
    if (created.ok()) router = std::move(created).value();
  }

  RecommendRequest Request(UserId user, size_t k = 5) const {
    RecommendRequest request;
    request.user = user;
    request.k = k;
    return request;
  }

  sum::AttributeCatalog catalog;
  sum::SumService sums;
  std::vector<Interaction> log;
  std::unique_ptr<ServingRouter> router;
};

TEST(ServingRouterTest, CreateRequiresStackBuilder) {
  RouterConfig config;
  config.workers = 1;
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  sum::SumService sums(&catalog);
  auto created =
      ServingRouter::Create(config, MakeBootstrapLog(1), &sums);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), spa::StatusCode::kInvalidArgument);
}

TEST(ServingRouterDeathTest, ZeroWorkersAborts) {
  RouterConfig config;
  config.workers = 0;
  config.stack_builder = MakeStackBuilder(1);
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  sum::SumService sums(&catalog);
  EXPECT_DEATH(
      { auto r = ServingRouter::Create(config, MakeBootstrapLog(1), &sums); },
      ">= 1 worker");
}

TEST(ServingRouterTest, RoutedServingMatchesSingleProcessBitwise) {
  const uint64_t seed = 11;
  RouterFixture fx(seed, /*workers=*/3);
  ASSERT_NE(fx.router, nullptr);

  // Quiescent parity: route one request per user, then serve the same
  // requests on a single-process engine at the same (only) pin.
  std::vector<std::pair<RecommendRequest, StreamTicketPtr>> routed;
  for (UserId user = 0; user < static_cast<UserId>(kUsers); ++user) {
    auto ticket = fx.router->Submit(fx.Request(user));
    ASSERT_TRUE(ticket.ok());
    routed.emplace_back(fx.Request(user), std::move(ticket).value());
  }
  fx.router->Flush();

  InteractionMatrix ref_matrix =
      MatrixFromLog(fx.log, 1 + seed % 4);
  auto ref_engine = MakeReferenceEngine(&fx.sums, &ref_matrix, seed,
                                        1 + seed % 4);
  for (auto& [request, ticket] : routed) {
    ASSERT_EQ(ticket->Wait(), TicketState::kDone);
    ASSERT_TRUE(ticket->response().ok());
    EXPECT_EQ(ticket->pinned().matrix_version, ref_matrix.version());
    const auto reference = ref_engine->Recommend(request);
    ASSERT_TRUE(reference.ok());
    ExpectBitwiseEqual(ticket->response().value(), reference.value(),
                       "user " + std::to_string(request.user));
  }

  const RouterStats stats = fx.router->stats();
  EXPECT_EQ(stats.reads_routed, kUsers);
  uint64_t responses = 0;
  for (const auto& ws : stats.workers) {
    responses += ws.pipeline.responses;
  }
  EXPECT_EQ(responses, kUsers);
  EXPECT_EQ(stats.end_to_end.total(), kUsers);
}

TEST(ServingRouterTest, ReadsLandOnTheDirectoryOwner) {
  RouterFixture fx(3, /*workers=*/4);
  ASSERT_NE(fx.router, nullptr);
  // Count served responses per worker; they must match the ownership
  // split of the submitted users exactly (reads are never proxied).
  std::unordered_map<WorkerId, uint64_t> expected;
  for (UserId user = 0; user < static_cast<UserId>(kUsers); ++user) {
    expected[fx.router->OwnerOf(user)]++;
    ASSERT_TRUE(fx.router->Submit(fx.Request(user)).ok());
  }
  fx.router->Flush();
  for (const auto& ws : fx.router->stats().workers) {
    EXPECT_EQ(ws.pipeline.responses, expected[ws.worker])
        << "worker " << ws.worker;
  }
}

TEST(ServingRouterTest, FanoutAppliesOnEveryReplicaWithAgreedVersion) {
  RouterFixture fx(5, /*workers=*/3);
  ASSERT_NE(fx.router, nullptr);
  const uint64_t bootstrap_version = fx.log.size();

  std::vector<Interaction> batch{
      {static_cast<UserId>(1), static_cast<ItemId>(2), 1.5},
      {static_cast<UserId>(200), static_cast<ItemId>(60), 0.7}};
  auto fanout = fx.router->SubmitInteractions(batch);
  ASSERT_TRUE(fanout.ok());
  ASSERT_EQ(fanout->tickets().size(), 3u);
  fanout->Wait();
  EXPECT_TRUE(fanout->ok());
  EXPECT_EQ(fanout->matrix_version(), bootstrap_version + batch.size());

  for (WorkerId id : fx.router->worker_ids()) {
    const WorkerNode* node = fx.router->worker(id);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->matrix().version(),
              bootstrap_version + batch.size());
    EXPECT_TRUE(node->matrix().Seen(200, 60));
  }
  EXPECT_EQ(fx.router->log_size(), fx.log.size() + batch.size());
  EXPECT_EQ(fx.router->stats().writes_fanned, 1u);
}

TEST(ServingRouterTest, SumUpdatesRouteToTheOwnerLaneOnly) {
  RouterFixture fx(7, /*workers=*/3);
  ASSERT_NE(fx.router, nullptr);
  const uint64_t version_before = fx.sums.version();

  std::vector<sum::SumUpdate> updates;
  updates.push_back(
      sum::SumUpdate(4).Reward(fx.catalog.EmotionalId(
                                   eit::EmotionalAttribute::kMotivated),
                               0.5));
  auto ticket = fx.router->SubmitSumUpdates(std::move(updates));
  ASSERT_TRUE(ticket.ok());
  ASSERT_EQ((*ticket)->Wait(), TicketState::kDone);
  ASSERT_TRUE((*ticket)->sum_status().ok());
  // Exactly one publish on the *shared* service: routing to one lane
  // is what keeps a fanned deployment from double-applying.
  EXPECT_EQ(fx.sums.version(), version_before + 1);

  uint64_t lanes_with_updates = 0;
  for (const auto& ws : fx.router->stats().workers) {
    if (ws.pipeline.updates_applied > 0) {
      ++lanes_with_updates;
      EXPECT_EQ(ws.worker, fx.router->OwnerOf(4));
    }
  }
  EXPECT_EQ(lanes_with_updates, 1u);
  EXPECT_EQ(fx.router->stats().sum_routed, 1u);

  EXPECT_EQ(fx.router->SubmitSumUpdates({}).status().code(),
            spa::StatusCode::kInvalidArgument);
}

TEST(ServingRouterTest, JoinReplaysTheLogToIdenticalReplicaState) {
  const uint64_t seed = 13;
  RouterFixture fx(seed, /*workers=*/2);
  ASSERT_NE(fx.router, nullptr);

  // Move the deployment past its bootstrap state first.
  std::vector<Interaction> batch{
      {static_cast<UserId>(3), static_cast<ItemId>(9), 2.0},
      {static_cast<UserId>(150), static_cast<ItemId>(70), 1.0}};
  auto fanout = fx.router->SubmitInteractions(batch);
  ASSERT_TRUE(fanout.ok());

  auto plan = fx.router->AddWorker();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->moves.empty());
  const WorkerId newcomer = plan->moves.front().to;
  ASSERT_EQ(fx.router->worker_count(), 3u);

  fx.router->Flush();
  fanout->Wait();
  const uint64_t expected_version = fx.log.size() + batch.size();
  for (WorkerId id : fx.router->worker_ids()) {
    ASSERT_EQ(fx.router->worker(id)->matrix().version(),
              expected_version)
        << "worker " << id;
  }

  // Serve users the newcomer now owns; compare against a single
  // process that applied the same batch.
  InteractionMatrix ref_matrix = MatrixFromLog(fx.log, 1 + seed % 4);
  auto ref_engine = MakeReferenceEngine(&fx.sums, &ref_matrix, seed,
                                        1 + seed % 4);
  ASSERT_TRUE(ref_engine->ApplyInteractions(batch).ok());

  size_t compared = 0;
  for (UserId user = 0; user < static_cast<UserId>(kUsers); ++user) {
    if (fx.router->OwnerOf(user) != newcomer) continue;
    auto ticket = fx.router->Submit(fx.Request(user));
    ASSERT_TRUE(ticket.ok());
    ASSERT_EQ((*ticket)->Wait(), TicketState::kDone);
    ASSERT_TRUE((*ticket)->response().ok());
    const auto reference = ref_engine->Recommend(fx.Request(user));
    ASSERT_TRUE(reference.ok());
    ExpectBitwiseEqual((*ticket)->response().value(),
                       reference.value(),
                       "joined-owner user " + std::to_string(user));
    ++compared;
  }
  EXPECT_GT(compared, 0u);
  EXPECT_EQ(fx.router->stats().joins, 1u);
}

TEST(ServingRouterTest, RemoveWorkerHandsShardsOverAndRefusesLast) {
  RouterFixture fx(17, /*workers=*/2);
  ASSERT_NE(fx.router, nullptr);
  const std::vector<WorkerId> ids = fx.router->worker_ids();
  ASSERT_EQ(ids.size(), 2u);

  EXPECT_EQ(fx.router->RemoveWorker(99).status().code(),
            spa::StatusCode::kNotFound);

  auto plan = fx.router->RemoveWorker(ids[0]);
  ASSERT_TRUE(plan.ok());
  for (const ShardMove& move : plan->moves) {
    EXPECT_EQ(move.from, ids[0]);
    EXPECT_EQ(move.to, ids[1]);
  }
  EXPECT_EQ(fx.router->worker_count(), 1u);
  // Every user now resolves to the survivor and still gets served.
  EXPECT_EQ(fx.router->OwnerOf(42), ids[1]);
  auto ticket = fx.router->Submit(fx.Request(42));
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ((*ticket)->Wait(), TicketState::kDone);

  EXPECT_EQ(fx.router->RemoveWorker(ids[1]).status().code(),
            spa::StatusCode::kFailedPrecondition);
  EXPECT_EQ(fx.router->stats().leaves, 1u);
}

TEST(ServingRouterTest, SubmitAfterShutdownFailsCleanly) {
  RouterFixture fx(19, /*workers=*/2);
  ASSERT_NE(fx.router, nullptr);
  fx.router->Shutdown();
  EXPECT_EQ(fx.router->Submit(fx.Request(1)).status().code(),
            spa::StatusCode::kFailedPrecondition);
  EXPECT_EQ(fx.router->SubmitInteractions({{1, 2, 1.0}}).status().code(),
            spa::StatusCode::kFailedPrecondition);
  EXPECT_EQ(fx.router->AddWorker().status().code(),
            spa::StatusCode::kFailedPrecondition);
}

// ---- randomized differential harness (router tier) -------------------------

enum class RouterOpKind { kRead, kInteractions, kSumUpdates, kJoin, kLeave };

struct RouterScheduleOp {
  RouterOpKind kind = RouterOpKind::kRead;
  RecommendRequest request;
  std::vector<Interaction> interactions;
  std::vector<sum::SumUpdate> sum_updates;
};

std::vector<RouterScheduleOp> MakeRouterSchedule(
    uint64_t seed, const sum::AttributeCatalog& catalog, size_t ops) {
  Rng rng(seed, /*stream=*/4);
  std::vector<RouterScheduleOp> schedule;
  schedule.reserve(ops);
  UserId next_new_user = static_cast<UserId>(kUsers);
  ItemId next_new_item = static_cast<ItemId>(kItems);
  const auto attributes = eit::AllEmotionalAttributes();
  for (size_t i = 0; i < ops; ++i) {
    const double roll = rng.Uniform();
    RouterScheduleOp op;
    if (roll < 0.62) {
      op.kind = RouterOpKind::kRead;
      op.request.user = static_cast<UserId>(
          rng.UniformInt(0, static_cast<int64_t>(kUsers) - 1));
      op.request.k = static_cast<size_t>(rng.UniformInt(1, 8));
      op.request.exclude_seen =
          rng.Bernoulli(0.85) ? ExcludeSeen::kYes : ExcludeSeen::kNo;
      op.request.explain = rng.Bernoulli(0.15);
    } else if (roll < 0.78) {
      op.kind = RouterOpKind::kInteractions;
      const size_t batch = static_cast<size_t>(rng.UniformInt(1, 4));
      for (size_t b = 0; b < batch; ++b) {
        Interaction interaction;
        interaction.user =
            rng.Bernoulli(0.1)
                ? next_new_user++
                : static_cast<UserId>(rng.UniformInt(
                      0, static_cast<int64_t>(kUsers) - 1));
        interaction.item =
            rng.Bernoulli(0.1)
                ? next_new_item++
                : static_cast<ItemId>(rng.UniformInt(
                      0, static_cast<int64_t>(kItems) - 1));
        interaction.weight = rng.Uniform(0.2, 3.0);
        op.interactions.push_back(interaction);
      }
    } else if (roll < 0.88) {
      op.kind = RouterOpKind::kSumUpdates;
      const size_t updates = static_cast<size_t>(rng.UniformInt(1, 3));
      for (size_t b = 0; b < updates; ++b) {
        sum::SumUpdate update(static_cast<sum::UserId>(
            rng.UniformInt(0, static_cast<int64_t>(kUsers) - 1)));
        const auto attr = attributes[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(attributes.size()) - 1))];
        if (rng.Bernoulli(0.5)) {
          update.SetSensibility(catalog.EmotionalId(attr),
                                rng.Uniform(0.0, 1.0));
        } else {
          update.Reward(catalog.EmotionalId(attr), rng.Uniform(0.1, 1.0));
        }
        op.sum_updates.push_back(std::move(update));
      }
    } else if (roll < 0.94) {
      op.kind = RouterOpKind::kJoin;
    } else {
      op.kind = RouterOpKind::kLeave;
    }
    schedule.push_back(std::move(op));
  }
  return schedule;
}

struct RoutedRead {
  size_t op_index = 0;
  RecommendRequest request;
  RecommendResponse response;
  BatchPin pin;
};

/// Runs one schedule (reads, fanned interaction batches, SUM publishes
/// and worker join/leave) through a live router, then rebuilds every
/// pinned state on a single-process reference stack:
///
///  * interaction writes are replayed in post-apply version order
///    (the router's exclusive-lock fan-out totally orders them, and
///    the FanoutTicket's agreed version is the order key);
///  * SUM publishes are replayed in service-version order, keeping a
///    snapshot per version so each read can be re-served against the
///    exact emotional context it pinned (`emotion_override`) — with
///    per-worker lanes, a read on one worker may pin a newer matrix
///    with an older SUM view than a read elsewhere, so the two axes
///    replay independently;
///
/// and asserts every routed response is bitwise-identical to the
/// single-process serve at its pin.
void RunRouterDifferentialSchedule(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  const std::vector<Interaction> bootstrap = MakeBootstrapLog(seed);
  const size_t shards = 1 + seed % 4;

  // ---- live routed run -----------------------------------------------------
  sum::SumService live_sums(&catalog);
  BootstrapSums(&live_sums, catalog, seed);
  auto created = ServingRouter::Create(
      MakeRouterConfig(seed, /*workers=*/1 + seed % 3), bootstrap,
      &live_sums);
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<ServingRouter> router = std::move(created).value();

  const std::vector<RouterScheduleOp> schedule =
      MakeRouterSchedule(seed, catalog, /*ops=*/40);
  Rng churn_rng(seed, /*stream=*/5);

  std::vector<std::pair<size_t, StreamTicketPtr>> read_tickets;
  std::vector<std::pair<size_t, FanoutTicket>> fanout_tickets;
  std::vector<std::pair<size_t, StreamTicketPtr>> sum_tickets;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const RouterScheduleOp& op = schedule[i];
    switch (op.kind) {
      case RouterOpKind::kRead: {
        auto ticket = router->Submit(op.request);
        ASSERT_TRUE(ticket.ok());
        read_tickets.emplace_back(i, std::move(ticket).value());
        break;
      }
      case RouterOpKind::kInteractions: {
        auto fanout = router->SubmitInteractions(op.interactions);
        ASSERT_TRUE(fanout.ok());
        fanout_tickets.emplace_back(i, std::move(fanout).value());
        break;
      }
      case RouterOpKind::kSumUpdates: {
        auto ticket = router->SubmitSumUpdates(op.sum_updates);
        ASSERT_TRUE(ticket.ok());
        sum_tickets.emplace_back(i, std::move(ticket).value());
        break;
      }
      case RouterOpKind::kJoin: {
        ASSERT_TRUE(router->AddWorker().ok());
        break;
      }
      case RouterOpKind::kLeave: {
        const std::vector<WorkerId> ids = router->worker_ids();
        if (ids.size() <= 1) break;  // the last worker never leaves
        const WorkerId victim = ids[static_cast<size_t>(churn_rng.UniformInt(
            0, static_cast<int64_t>(ids.size()) - 1))];
        ASSERT_TRUE(router->RemoveWorker(victim).ok());
        break;
      }
    }
  }
  router->Flush();

  std::vector<RoutedRead> reads;
  for (auto& [index, ticket] : read_tickets) {
    ASSERT_EQ(ticket->Wait(), TicketState::kDone);
    ASSERT_TRUE(ticket->response().ok());
    ASSERT_EQ(ticket->pinned().fit_epoch, 1u);
    reads.push_back({index, schedule[index].request,
                     ticket->response().value(), ticket->pinned()});
  }

  struct MatrixWrite {
    std::vector<Interaction> interactions;
    uint64_t version = 0;  ///< agreed post-apply matrix version
  };
  std::vector<MatrixWrite> matrix_writes;
  for (auto& [index, fanout] : fanout_tickets) {
    fanout.Wait();
    ASSERT_TRUE(fanout.ok());
    matrix_writes.push_back(
        {schedule[index].interactions, fanout.matrix_version()});
  }
  std::sort(matrix_writes.begin(), matrix_writes.end(),
            [](const MatrixWrite& a, const MatrixWrite& b) {
              return a.version < b.version;
            });

  struct SumWrite {
    std::vector<sum::SumUpdate> updates;
    uint64_t version = 0;  ///< post-publish service version
  };
  std::vector<SumWrite> sum_writes;
  for (auto& [index, ticket] : sum_tickets) {
    ASSERT_EQ(ticket->Wait(), TicketState::kDone);
    ASSERT_TRUE(ticket->sum_status().ok());
    sum_writes.push_back(
        {schedule[index].sum_updates, ticket->pinned().sum_version});
  }
  std::sort(sum_writes.begin(), sum_writes.end(),
            [](const SumWrite& a, const SumWrite& b) {
              return a.version < b.version;
            });

  // ---- reference replay ----------------------------------------------------
  // SUM axis first: replay publishes in version order, snapshotting
  // after each so any pinned emotional context can be re-pinned.
  sum::SumService ref_sums(&catalog);
  BootstrapSums(&ref_sums, catalog, seed);
  std::unordered_map<uint64_t, sum::SumSnapshotPtr> snapshots;
  snapshots[ref_sums.version()] = ref_sums.snapshot();
  for (const SumWrite& write : sum_writes) {
    ASSERT_TRUE(ref_sums.ApplyAll(write.updates).ok());
    ASSERT_EQ(ref_sums.version(), write.version)
        << "replayed SUM version diverged from the live run";
    snapshots[write.version] = ref_sums.snapshot();
  }

  // Matrix axis: forward-replay fanned batches in version order,
  // serving each read at its pinned matrix state with its pinned
  // emotional context.
  InteractionMatrix ref_matrix = MatrixFromLog(bootstrap, shards);
  auto ref_engine =
      MakeReferenceEngine(&ref_sums, &ref_matrix, seed, shards);

  std::sort(reads.begin(), reads.end(),
            [](const RoutedRead& a, const RoutedRead& b) {
              return a.pin.matrix_version < b.pin.matrix_version;
            });
  size_t next_write = 0;
  size_t compared = 0;
  for (const RoutedRead& read : reads) {
    while (ref_matrix.version() < read.pin.matrix_version) {
      ASSERT_LT(next_write, matrix_writes.size())
          << "pinned state not reachable by replaying fanned batches";
      const MatrixWrite& write = matrix_writes[next_write++];
      const auto report = ref_engine->ApplyInteractions(write.interactions);
      ASSERT_TRUE(report.ok());
      ASSERT_EQ(report.value().matrix_version, write.version)
          << "replayed matrix version diverged from the live run";
    }
    ASSERT_EQ(ref_matrix.version(), read.pin.matrix_version);
    auto snapshot = snapshots.find(read.pin.sum_version);
    ASSERT_NE(snapshot, snapshots.end())
        << "read pinned a SUM version no publish produced";

    RecommendRequest request = read.request;
    request.emotion_override = snapshot->second;
    const auto reference = ref_engine->Recommend(request);
    ASSERT_TRUE(reference.ok());
    ExpectBitwiseEqual(read.response, reference.value(),
                       "op " + std::to_string(read.op_index));
    ++compared;
  }
  EXPECT_EQ(compared, reads.size());
  EXPECT_GT(compared, 0u);
}

TEST(ServingRouterDifferentialTest,
     RoutedResponsesMatchSingleProcessAtPinnedVersionsUnderChurn) {
  // 18 seeded schedules, varying initial worker count (1-3), matrix
  // shard count (1-4) and membership churn.
  for (uint64_t seed = 0; seed < 18; ++seed) {
    RunRouterDifferentialSchedule(2000 + seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---- TSAN stress (in the CI TSAN job's regex) ------------------------------

TEST(ServingRouterTest, TsanStressRoutedTrafficUnderMembershipChurn) {
  const uint64_t seed = 31;
  RouterFixture fx(seed, /*workers=*/2);
  ASSERT_NE(fx.router, nullptr);
  ServingRouter* router = fx.router.get();

  constexpr int kProducers = 2;
  constexpr int kOpsPerProducer = 80;
  std::atomic<uint64_t> failures{0};
  std::atomic<bool> stop_polling{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(300 + static_cast<uint64_t>(p));
      const auto attributes = eit::AllEmotionalAttributes();
      for (int i = 0; i < kOpsPerProducer; ++i) {
        const double roll = rng.Uniform();
        if (roll < 0.75) {
          RecommendRequest request;
          request.user = static_cast<UserId>(
              rng.UniformInt(0, static_cast<int64_t>(kUsers) - 1));
          request.k = 4;
          if (!router->Submit(std::move(request)).ok()) {
            failures.fetch_add(1);
          }
        } else if (roll < 0.9) {
          std::vector<Interaction> batch{
              {static_cast<UserId>(rng.UniformInt(
                   0, static_cast<int64_t>(kUsers) - 1)),
               static_cast<ItemId>(rng.UniformInt(
                   0, static_cast<int64_t>(kItems) - 1)),
               rng.Uniform(0.2, 3.0)}};
          if (!router->SubmitInteractions(std::move(batch)).ok()) {
            failures.fetch_add(1);
          }
        } else {
          const auto attr = attributes[static_cast<size_t>(
              rng.UniformInt(0,
                             static_cast<int64_t>(attributes.size()) -
                                 1))];
          std::vector<sum::SumUpdate> updates;
          updates.push_back(
              sum::SumUpdate(static_cast<sum::UserId>(rng.UniformInt(
                                 0, static_cast<int64_t>(kUsers) - 1)))
                  .Reward(fx.catalog.EmotionalId(attr), 0.2));
          if (!router->SubmitSumUpdates(std::move(updates)).ok()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  std::thread churn([&] {
    Rng rng(seed, /*stream=*/6);
    for (int round = 0; round < 6; ++round) {
      if (rng.Bernoulli(0.5)) {
        if (!router->AddWorker().ok()) failures.fetch_add(1);
      } else {
        const std::vector<WorkerId> ids = router->worker_ids();
        if (ids.size() > 1) {
          const WorkerId victim =
              ids[static_cast<size_t>(rng.UniformInt(
                  0, static_cast<int64_t>(ids.size()) - 1))];
          if (!router->RemoveWorker(victim).ok()) failures.fetch_add(1);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::thread poller([&] {
    while (!stop_polling.load(std::memory_order_relaxed)) {
      (void)router->stats();
      (void)router->worker_count();
      (void)router->OwnerOf(3);
      (void)router->directory().workers();
      std::this_thread::yield();
    }
  });
  for (std::thread& producer : producers) producer.join();
  churn.join();
  router->Flush();
  stop_polling.store(true);
  poller.join();

  EXPECT_EQ(failures.load(), 0u);
  const RouterStats stats = router->stats();
  EXPECT_EQ(stats.joins + 2, stats.leaves + router->worker_count());
  EXPECT_GT(stats.reads_routed, 0u);
}

}  // namespace
}  // namespace spa::recsys
