#include <cmath>

#include "gtest/gtest.h"
#include "sum/catalog.h"
#include "sum/human_values.h"
#include "sum/reward_punish.h"
#include "sum/sum_store.h"
#include "sum/user_model.h"

namespace spa::sum {
namespace {

TEST(AttributeCatalogTest, SeventyFiveAttributes) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  EXPECT_EQ(catalog.size(), 75u);
  EXPECT_EQ(catalog.ids_of(AttributeKind::kObjective).size(), 30u);
  EXPECT_EQ(catalog.ids_of(AttributeKind::kSubjective).size(), 35u);
  EXPECT_EQ(catalog.ids_of(AttributeKind::kEmotional).size(), 10u);
}

TEST(AttributeCatalogTest, LookupByName) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  const auto id = catalog.IdOf("price_sensitivity");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(catalog.def(id.value()).kind, AttributeKind::kSubjective);
  EXPECT_FALSE(catalog.IdOf("no_such_attribute").ok());
}

TEST(AttributeCatalogTest, EmotionalIdsMapToEitAttributes) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  for (eit::EmotionalAttribute emotion : eit::AllEmotionalAttributes()) {
    const AttributeId id = catalog.EmotionalId(emotion);
    const AttributeDef& def = catalog.def(id);
    EXPECT_EQ(def.kind, AttributeKind::kEmotional);
    EXPECT_EQ(def.emotion, emotion);
    EXPECT_EQ(def.name, eit::EmotionalAttributeName(emotion));
    EXPECT_EQ(def.valence, eit::ValenceOf(emotion));
  }
}

TEST(AttributeCatalogTest, IdsAreDense) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  for (size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog.defs()[i].id, static_cast<AttributeId>(i));
  }
}

class SmartUserModelTest : public ::testing::Test {
 protected:
  AttributeCatalog catalog_ = AttributeCatalog::EmagisterDefault();
};

TEST_F(SmartUserModelTest, InitializesFromDefaults) {
  SmartUserModel model(42, &catalog_);
  EXPECT_EQ(model.user(), 42);
  const auto pref_id = catalog_.IdOf("price_sensitivity").value();
  EXPECT_DOUBLE_EQ(model.value(pref_id), 0.5);  // neutral prior
  const auto age_id = catalog_.IdOf("age_norm").value();
  EXPECT_DOUBLE_EQ(model.value(age_id), 0.0);
  // Sensibilities start at zero (nothing learned yet).
  for (const AttributeDef& def : catalog_.defs()) {
    EXPECT_DOUBLE_EQ(model.sensibility(def.id), 0.0);
  }
}

TEST_F(SmartUserModelTest, ValuesClamped) {
  SmartUserModel model(1, &catalog_);
  model.set_value(0, 2.0);
  EXPECT_DOUBLE_EQ(model.value(0), 1.0);
  model.set_value(0, -1.0);
  EXPECT_DOUBLE_EQ(model.value(0), 0.0);
  model.set_sensibility(0, 1.5);
  EXPECT_DOUBLE_EQ(model.sensibility(0), 1.0);
}

TEST_F(SmartUserModelTest, DominantOrderingAndThreshold) {
  SmartUserModel model(1, &catalog_);
  const AttributeId hopeful =
      catalog_.EmotionalId(eit::EmotionalAttribute::kHopeful);
  const AttributeId shy =
      catalog_.EmotionalId(eit::EmotionalAttribute::kShy);
  const AttributeId lively =
      catalog_.EmotionalId(eit::EmotionalAttribute::kLively);
  model.set_sensibility(hopeful, 0.9);
  model.set_sensibility(shy, 0.5);
  model.set_sensibility(lively, 0.3);

  const auto dominant =
      model.Dominant(AttributeKind::kEmotional, 0.4);
  ASSERT_EQ(dominant.size(), 2u);
  EXPECT_EQ(dominant[0].id, hopeful);
  EXPECT_EQ(dominant[1].id, shy);

  const auto top1 = model.Dominant(AttributeKind::kEmotional, 0.1, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].id, hopeful);
}

TEST_F(SmartUserModelTest, EmotionalSensibilitiesVector) {
  SmartUserModel model(1, &catalog_);
  model.set_sensibility(
      catalog_.EmotionalId(eit::EmotionalAttribute::kEnthusiastic), 0.7);
  const auto v = model.EmotionalSensibilities();
  ASSERT_EQ(v.size(), 10u);
  EXPECT_DOUBLE_EQ(v[0], 0.7);
  EXPECT_DOUBLE_EQ(v[9], 0.0);
}

TEST_F(SmartUserModelTest, FeaturesRespectEmotionalToggle) {
  lifelog::FeatureSpace space;
  SmartUserModel::RegisterFeatures(catalog_, &space);
  SmartUserModel model(1, &catalog_);
  const AttributeId hopeful =
      catalog_.EmotionalId(eit::EmotionalAttribute::kHopeful);
  model.set_value(hopeful, 0.8);
  model.set_sensibility(hopeful, 0.6);

  const auto with = model.Features(space, /*include_emotional=*/true);
  const auto without = model.Features(space, /*include_emotional=*/false);
  EXPECT_GT(with.nnz(), without.nnz());

  const auto sens_idx = space.IndexOf("sum.sens.hopeful");
  ASSERT_TRUE(sens_idx.ok());
  bool found = false;
  for (size_t i = 0; i < with.nnz(); ++i) {
    if (with.index(i) == sens_idx.value()) {
      found = true;
      EXPECT_DOUBLE_EQ(with.value(i), 0.6);
    }
  }
  EXPECT_TRUE(found);
  for (size_t i = 0; i < without.nnz(); ++i) {
    EXPECT_NE(without.index(i), sens_idx.value());
  }
}

TEST(ReinforcementTest, RewardIncreasesBounded) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel model(1, &catalog);
  const ReinforcementUpdater updater;
  const AttributeId id = 70;  // an emotional attribute
  double prev = model.sensibility(id);
  for (int i = 0; i < 100; ++i) {
    updater.Reward(&model, id);
    const double w = model.sensibility(id);
    EXPECT_GE(w, prev);
    EXPECT_LE(w, 1.0);
    prev = w;
  }
  EXPECT_GT(model.sensibility(id), 0.9);  // converges toward 1
  EXPECT_DOUBLE_EQ(model.evidence(id), 100.0);
}

TEST(ReinforcementTest, PunishDecreasesBounded) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel model(1, &catalog);
  const ReinforcementUpdater updater;
  const AttributeId id = 70;
  model.set_sensibility(id, 0.9);
  for (int i = 0; i < 100; ++i) {
    updater.Punish(&model, id);
    EXPECT_GE(model.sensibility(id), 0.0);
  }
  EXPECT_LT(model.sensibility(id), 0.01);
}

TEST(ReinforcementTest, RewardPunishFixedPoint) {
  // Alternating reward/punish should hover, not diverge.
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel model(1, &catalog);
  const ReinforcementUpdater updater;
  const AttributeId id = 72;
  for (int i = 0; i < 200; ++i) {
    if (i % 2 == 0) {
      updater.Reward(&model, id);
    } else {
      updater.Punish(&model, id);
    }
  }
  EXPECT_GT(model.sensibility(id), 0.05);
  EXPECT_LT(model.sensibility(id), 0.7);
}

TEST(ReinforcementTest, MagnitudeScalesStep) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel a(1, &catalog), b(2, &catalog);
  const ReinforcementUpdater updater;
  updater.Reward(&a, 0, 0.1);
  updater.Reward(&b, 0, 1.0);
  EXPECT_LT(a.sensibility(0), b.sensibility(0));
}

TEST(ReinforcementTest, DecayOnlyTouchesRequestedKind) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel model(1, &catalog);
  const ReinforcementUpdater updater({0.15, 0.5, 0.0});
  const AttributeId emotional =
      catalog.EmotionalId(eit::EmotionalAttribute::kLively);
  const AttributeId subjective =
      catalog.IdOf("brand_affinity").value();
  model.set_sensibility(emotional, 0.8);
  model.set_sensibility(subjective, 0.8);
  updater.Decay(&model, AttributeKind::kEmotional);
  EXPECT_NEAR(model.sensibility(emotional), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(model.sensibility(subjective), 0.8);
}

TEST(HumanValuesTest, ScaleReflectsSensibilities) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel model(1, &catalog);
  // A strongly empathic, group-oriented user -> benevolence dominates.
  model.set_sensibility(
      catalog.EmotionalId(eit::EmotionalAttribute::kEmpathic), 0.95);
  model.set_value(catalog.IdOf("group_learning_preference").value(),
                  0.9);
  model.set_value(catalog.IdOf("social_influence").value(), 0.8);
  // Suppress the neutral 0.5 priors that would mask the signal.
  for (AttributeId id : catalog.ids_of(AttributeKind::kSubjective)) {
    if (id != catalog.IdOf("group_learning_preference").value() &&
        id != catalog.IdOf("social_influence").value()) {
      model.set_value(id, 0.0);
    }
  }
  const HumanValuesScale scale = ComputeHumanValues(model);
  EXPECT_EQ(scale.Dominant(), HumanValue::kBenevolence);
  for (double s : scale.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(HumanValuesTest, AllValueNamesDistinct) {
  std::set<std::string_view> names;
  for (size_t v = 0; v < kNumHumanValues; ++v) {
    names.insert(HumanValueName(static_cast<HumanValue>(v)));
  }
  EXPECT_EQ(names.size(), kNumHumanValues);
}

TEST(CoherenceTest, AlignedUserScoresHigh) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel model(1, &catalog);
  // Stated = observed on two attributes; everything else zeroed.
  for (AttributeId id : catalog.ids_of(AttributeKind::kSubjective)) {
    model.set_value(id, 0.0);
  }
  const AttributeId a = catalog.IdOf("topic_it").value();
  const AttributeId b = catalog.IdOf("tech_savviness").value();
  model.set_value(a, 0.9);
  model.set_sensibility(a, 0.9);
  model.set_value(b, 0.7);
  model.set_sensibility(b, 0.7);
  EXPECT_NEAR(CoherenceFunction(model), 1.0, 1e-9);
}

TEST(CoherenceTest, OrthogonalUserScoresHalf) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel model(1, &catalog);
  for (AttributeId id : catalog.ids_of(AttributeKind::kSubjective)) {
    model.set_value(id, 0.0);
  }
  model.set_value(catalog.IdOf("topic_it").value(), 1.0);
  model.set_sensibility(catalog.IdOf("topic_arts").value(), 1.0);
  EXPECT_NEAR(CoherenceFunction(model), 0.5, 1e-9);
}

TEST(CoherenceTest, NoSignalIsNeutral) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel model(1, &catalog);
  for (AttributeId id : catalog.ids_of(AttributeKind::kSubjective)) {
    model.set_value(id, 0.0);
  }
  EXPECT_DOUBLE_EQ(CoherenceFunction(model), 0.5);
}

TEST(SumStoreTest, GetOrCreateAndLookup) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SumStore store(&catalog);
  EXPECT_EQ(store.size(), 0u);
  SmartUserModel* m = store.GetOrCreate(5);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.GetOrCreate(5), m);  // same object
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.Get(5).ok());
  EXPECT_FALSE(store.Get(6).ok());
  ASSERT_TRUE(store.GetMutable(5).ok());
  EXPECT_FALSE(store.GetMutable(7).ok());
}

TEST(SumStoreTest, CsvRoundTripPreservesState) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SumStore store(&catalog);
  SmartUserModel* a = store.GetOrCreate(10);
  a->set_value(catalog.IdOf("age_norm").value(), 0.4);
  a->set_sensibility(
      catalog.EmotionalId(eit::EmotionalAttribute::kHopeful), 0.75);
  a->add_evidence(catalog.EmotionalId(eit::EmotionalAttribute::kHopeful),
                  3.0);
  store.GetOrCreate(11);  // untouched model -> presence row only

  const std::string csv = store.ToCsv();
  const auto restored = SumStore::FromCsv(csv, &catalog);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // The untouched user survives the round trip (regression: presence
  // rows; it used to vanish entirely).
  EXPECT_EQ(restored->size(), 2u);
  ASSERT_TRUE(restored->Get(11).ok());
  const auto loaded = restored->Get(10);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded.value()->value(catalog.IdOf("age_norm").value()),
                   0.4);
  EXPECT_DOUBLE_EQ(
      loaded.value()->sensibility(
          catalog.EmotionalId(eit::EmotionalAttribute::kHopeful)),
      0.75);
  EXPECT_DOUBLE_EQ(
      loaded.value()->evidence(
          catalog.EmotionalId(eit::EmotionalAttribute::kHopeful)),
      3.0);
}

TEST(SumStoreTest, EmptyStoreRoundTripsToEmptyStore) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  const SumStore store(&catalog);
  const std::string csv = store.ToCsv();  // header only
  const auto restored = SumStore::FromCsv(csv, &catalog);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), 0u);
}

TEST(SumStoreTest, CsvSerializesAtFullDoublePrecision) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SumStore store(&catalog);
  SmartUserModel* m = store.GetOrCreate(1);
  // Values with no short decimal representation (regression: %.9g used
  // to round them and the round trip drifted).
  const double value = 1.0 / 3.0;
  const double sensibility = 0.1 + 0.2;  // 0.30000000000000004
  const double evidence = 1e-17 + 7.0;
  const AttributeId attr = catalog.IdOf("age_norm").value();
  m->set_value(attr, value);
  m->set_sensibility(attr, sensibility);
  m->add_evidence(attr, evidence);

  const auto restored = SumStore::FromCsv(store.ToCsv(), &catalog);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const SmartUserModel& loaded = *restored->Get(1).value();
  EXPECT_EQ(loaded.value(attr), value);  // bitwise, not NEAR
  EXPECT_EQ(loaded.sensibility(attr), sensibility);
  EXPECT_EQ(loaded.evidence(attr), evidence);
}

TEST(SumStoreTest, UnknownAttributeRowErrorNamesRowAndAttribute) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  const auto result =
      SumStore::FromCsv("user,attribute,value,sensibility,evidence\n"
                        "1,age_norm,0.5,0.5,1\n"
                        "2,definitely_not_real,0.5,0.5,1\n",
                        &catalog);
  ASSERT_FALSE(result.ok());
  // The error pinpoints the offending row and attribute name.
  EXPECT_NE(result.status().message().find("row 2"), std::string::npos)
      << result.status();
  EXPECT_NE(result.status().message().find("definitely_not_real"),
            std::string::npos)
      << result.status();
}

TEST(SumStoreTest, FromCsvRejectsBadInput) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  EXPECT_FALSE(SumStore::FromCsv("", &catalog).ok());
  EXPECT_FALSE(
      SumStore::FromCsv("user,attribute,value,sensibility,evidence\n"
                        "1,nonexistent_attr,0.5,0.5,1\n",
                        &catalog)
          .ok());
  EXPECT_FALSE(
      SumStore::FromCsv("user,attribute,value,sensibility,evidence\n"
                        "x,age_norm,0.5,0.5,1\n",
                        &catalog)
          .ok());
  EXPECT_FALSE(
      SumStore::FromCsv("user,attribute,value,sensibility,evidence\n"
                        "1,age_norm,0.5\n",
                        &catalog)
          .ok());
}

TEST(SumStoreTest, ForEachVisitsCreationOrder) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SumStore store(&catalog);
  store.GetOrCreate(3);
  store.GetOrCreate(1);
  store.GetOrCreate(2);
  std::vector<UserId> seen;
  store.ForEach([&seen](const SmartUserModel& m) {
    seen.push_back(m.user());
  });
  EXPECT_EQ(seen, (std::vector<UserId>{3, 1, 2}));
}

// Property sweep over learning rates: reward/punish always keep the
// sensibility in [0,1].
class ReinforcementRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReinforcementRateSweep, BoundsInvariant) {
  const AttributeCatalog catalog = AttributeCatalog::EmagisterDefault();
  SmartUserModel model(1, &catalog);
  ReinforcementConfig config;
  config.learning_rate = GetParam();
  const ReinforcementUpdater updater(config);
  for (int i = 0; i < 50; ++i) {
    updater.Reward(&model, 0, 2.0);   // magnitude > 1 exercised too
    updater.Punish(&model, 1, 3.0);
    const double w0 = model.sensibility(0);
    const double w1 = model.sensibility(1);
    ASSERT_GE(w0, 0.0);
    ASSERT_LE(w0, 1.0);
    ASSERT_GE(w1, 0.0);
    ASSERT_LE(w1, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, ReinforcementRateSweep,
                         ::testing::Values(0.01, 0.1, 0.3, 0.5, 1.0));

}  // namespace
}  // namespace spa::sum
