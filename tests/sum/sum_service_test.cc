#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "sum/sum_service.h"
#include "sum/sum_store.h"
#include "sum/sum_update.h"

namespace spa::sum {
namespace {

class SumServiceTest : public ::testing::Test {
 protected:
  SumServiceTest()
      : catalog_(AttributeCatalog::EmagisterDefault()),
        service_(&catalog_) {}

  AttributeId Emo(eit::EmotionalAttribute attr) const {
    return catalog_.EmotionalId(attr);
  }

  AttributeCatalog catalog_;
  SumService service_;
};

TEST_F(SumServiceTest, StartsEmptyAtVersionZero) {
  EXPECT_EQ(service_.version(), 0u);
  EXPECT_EQ(service_.size(), 0u);
  EXPECT_EQ(service_.UserVersion(1), 0u);
  EXPECT_FALSE(service_.snapshot()->Get(1).ok());
}

TEST_F(SumServiceTest, EmptyUpdateTouchesUserIntoExistence) {
  ASSERT_TRUE(service_.Apply(SumUpdate(7)).ok());
  EXPECT_EQ(service_.version(), 1u);
  EXPECT_EQ(service_.UserVersion(7), 1u);
  ASSERT_TRUE(service_.snapshot()->Get(7).ok());
  EXPECT_EQ(service_.snapshot()->Get(7).value()->user(), 7);
}

TEST_F(SumServiceTest, OpsApplyInOrder) {
  const AttributeId attr = Emo(eit::EmotionalAttribute::kHopeful);
  ASSERT_TRUE(service_
                  .Apply(SumUpdate(1)
                             .SetSensibility(attr, 0.5)
                             .ValueFromSensibility(attr)
                             .AddEvidence(attr, 2.0))
                  .ok());
  const SumSnapshotPtr snapshot = service_.snapshot();
  const SmartUserModel& model = *snapshot->Get(1).value();
  EXPECT_DOUBLE_EQ(model.sensibility(attr), 0.5);
  EXPECT_DOUBLE_EQ(model.value(attr), 0.5);
  EXPECT_DOUBLE_EQ(model.evidence(attr), 2.0);
}

TEST_F(SumServiceTest, RewardPunishDecayMatchReinforcementUpdater) {
  const AttributeId attr = Emo(eit::EmotionalAttribute::kLively);
  // Reference trajectory applied directly to a scratch model.
  SmartUserModel reference(1, &catalog_);
  const ReinforcementUpdater updater(
      service_.reinforcement().config());
  updater.Reward(&reference, attr, 1.0);
  updater.Punish(&reference, attr, 0.5);
  updater.Decay(&reference, AttributeKind::kEmotional);

  ASSERT_TRUE(service_.Apply(SumUpdate(1).Reward(attr, 1.0)).ok());
  ASSERT_TRUE(service_.Apply(SumUpdate(1).Punish(attr, 0.5)).ok());
  ASSERT_TRUE(
      service_.Apply(SumUpdate(1).Decay(AttributeKind::kEmotional))
          .ok());
  EXPECT_DOUBLE_EQ(
      service_.snapshot()->Get(1).value()->sensibility(attr),
      reference.sensibility(attr));
}

TEST_F(SumServiceTest, VersionsAreMonotonicAndPerUser) {
  ASSERT_TRUE(service_.Apply(SumUpdate(1)).ok());
  ASSERT_TRUE(service_.Apply(SumUpdate(2)).ok());
  EXPECT_EQ(service_.version(), 2u);
  EXPECT_EQ(service_.UserVersion(1), 1u);
  EXPECT_EQ(service_.UserVersion(2), 2u);

  // Updating user 1 bumps user 1 only; user 2 keeps its version.
  ASSERT_TRUE(
      service_
          .Apply(SumUpdate(1).SetSensibility(
              Emo(eit::EmotionalAttribute::kShy), 0.3))
          .ok());
  EXPECT_EQ(service_.version(), 3u);
  EXPECT_EQ(service_.UserVersion(1), 3u);
  EXPECT_EQ(service_.UserVersion(2), 2u);
}

TEST_F(SumServiceTest, ApplyAllIsOneVersionBump) {
  std::vector<SumUpdate> batch;
  for (UserId u = 0; u < 10; ++u) {
    batch.push_back(SumUpdate(u).SetSensibility(
        Emo(eit::EmotionalAttribute::kMotivated), 0.1 * (u + 1)));
  }
  ASSERT_TRUE(service_.ApplyAll(batch).ok());
  EXPECT_EQ(service_.version(), 1u);
  for (UserId u = 0; u < 10; ++u) {
    EXPECT_EQ(service_.UserVersion(u), 1u);
  }
  EXPECT_EQ(service_.size(), 10u);
}

TEST_F(SumServiceTest, RejectsOutOfCatalogAttribute) {
  const auto status = service_.Apply(
      SumUpdate(1).SetValue(static_cast<AttributeId>(catalog_.size()),
                            0.5));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // Nothing was published.
  EXPECT_EQ(service_.version(), 0u);
  EXPECT_EQ(service_.size(), 0u);
}

TEST_F(SumServiceTest, ApplyAllIsAtomicOnInvalidBatch) {
  std::vector<SumUpdate> batch;
  batch.push_back(SumUpdate(1).SetValue(0, 0.5));
  batch.push_back(SumUpdate(2).SetValue(-3, 0.5));  // invalid
  EXPECT_FALSE(service_.ApplyAll(batch).ok());
  EXPECT_EQ(service_.version(), 0u);
  EXPECT_FALSE(service_.snapshot()->Contains(1));
}

TEST_F(SumServiceTest, SnapshotsAreImmutableViews) {
  const AttributeId attr = Emo(eit::EmotionalAttribute::kEnthusiastic);
  ASSERT_TRUE(
      service_.Apply(SumUpdate(5).SetSensibility(attr, 0.2)).ok());
  const SumSnapshotPtr pinned = service_.snapshot();

  ASSERT_TRUE(
      service_.Apply(SumUpdate(5).SetSensibility(attr, 0.9)).ok());
  // The pinned snapshot still reads the old world; the fresh one reads
  // the new one.
  EXPECT_DOUBLE_EQ(pinned->Get(5).value()->sensibility(attr), 0.2);
  EXPECT_DOUBLE_EQ(
      service_.snapshot()->Get(5).value()->sensibility(attr), 0.9);
  EXPECT_LT(pinned->version(), service_.version());
}

TEST_F(SumServiceTest, SnapshotSharesUntouchedModels) {
  ASSERT_TRUE(service_.Apply(SumUpdate(1)).ok());
  ASSERT_TRUE(service_.Apply(SumUpdate(2)).ok());
  const SumSnapshotPtr before = service_.snapshot();
  ASSERT_TRUE(
      service_
          .Apply(SumUpdate(1).SetSensibility(
              Emo(eit::EmotionalAttribute::kShy), 0.4))
          .ok());
  const SumSnapshotPtr after = service_.snapshot();
  // Copy-on-write: user 2's model object is shared between snapshots,
  // user 1's was cloned.
  EXPECT_EQ(before->Get(2).value(), after->Get(2).value());
  EXPECT_NE(before->Get(1).value(), after->Get(1).value());
}

TEST_F(SumServiceTest, DecayAllDecaysEveryUserOnce) {
  SumServiceConfig config;
  config.reinforcement.decay_rate = 0.5;
  SumService service(&catalog_, config);
  const AttributeId attr = Emo(eit::EmotionalAttribute::kLively);
  ASSERT_TRUE(
      service.Apply(SumUpdate(1).SetSensibility(attr, 0.8)).ok());
  ASSERT_TRUE(
      service.Apply(SumUpdate(2).SetSensibility(attr, 0.4)).ok());
  const uint64_t before = service.version();
  ASSERT_TRUE(service.DecayAll(AttributeKind::kEmotional).ok());
  EXPECT_EQ(service.version(), before + 1);  // one batched publish
  EXPECT_NEAR(service.snapshot()->Get(1).value()->sensibility(attr),
              0.4, 1e-12);
  EXPECT_NEAR(service.snapshot()->Get(2).value()->sensibility(attr),
              0.2, 1e-12);
}

TEST_F(SumServiceTest, ForEachVisitsCreationOrder) {
  ASSERT_TRUE(service_.Apply(SumUpdate(3)).ok());
  ASSERT_TRUE(service_.Apply(SumUpdate(1)).ok());
  ASSERT_TRUE(service_.Apply(SumUpdate(2)).ok());
  std::vector<UserId> seen;
  service_.snapshot()->ForEach(
      [&seen](const SmartUserModel& m) { seen.push_back(m.user()); });
  EXPECT_EQ(seen, (std::vector<UserId>{3, 1, 2}));
}

TEST_F(SumServiceTest, ResetFromStorePublishesWholesale) {
  SumStore store(&catalog_);
  const AttributeId attr = Emo(eit::EmotionalAttribute::kHopeful);
  store.GetOrCreate(10)->set_sensibility(attr, 0.7);
  store.GetOrCreate(11);

  ASSERT_TRUE(service_.Apply(SumUpdate(99)).ok());  // pre-existing state
  service_.Reset(store);
  EXPECT_EQ(service_.size(), 2u);
  EXPECT_FALSE(service_.snapshot()->Contains(99));
  EXPECT_DOUBLE_EQ(
      service_.snapshot()->Get(10).value()->sensibility(attr), 0.7);
  EXPECT_EQ(service_.version(), 2u);  // strictly after the old head
}

TEST_F(SumServiceTest, CsvRoundTripThroughServiceAndStore) {
  const AttributeId attr = Emo(eit::EmotionalAttribute::kStimulated);
  ASSERT_TRUE(
      service_.Apply(SumUpdate(1).SetSensibility(attr, 1.0 / 3.0)).ok());
  ASSERT_TRUE(service_.Apply(SumUpdate(2)).ok());  // untouched model

  const auto restored = SumStore::FromCsv(service_.ToCsv(), &catalog_);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->Get(1).value()->sensibility(attr), 1.0 / 3.0);

  SumService reloaded(&catalog_);
  reloaded.Reset(*restored);
  EXPECT_EQ(reloaded.size(), 2u);
}

TEST_F(SumServiceTest, FromModelCapturesNonDefaultState) {
  SmartUserModel scratch(42, &catalog_);
  const AttributeId attr = Emo(eit::EmotionalAttribute::kEmpathic);
  scratch.set_sensibility(attr, 0.6);
  scratch.set_value(attr, 0.25);
  scratch.add_evidence(attr, 1.5);

  ASSERT_TRUE(service_.Apply(SumUpdate::FromModel(scratch)).ok());
  const SmartUserModel& loaded = *service_.snapshot()->Get(42).value();
  EXPECT_DOUBLE_EQ(loaded.sensibility(attr), 0.6);
  EXPECT_DOUBLE_EQ(loaded.value(attr), 0.25);
  EXPECT_DOUBLE_EQ(loaded.evidence(attr), 1.5);
}

// Concurrency: readers pin snapshots while writers publish. Run under
// TSAN to prove the read/write split is race-free; the invariants
// below hold in any interleaving.
TEST_F(SumServiceTest, ConcurrentReadersSeeConsistentVersions) {
  const AttributeId attr = Emo(eit::EmotionalAttribute::kMotivated);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> max_seen{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const SumSnapshotPtr snapshot = service_.snapshot();
        // Global version never goes backwards for a given reader.
        ASSERT_GE(snapshot->version(), last);
        last = snapshot->version();
        // Per-user version never exceeds the snapshot's global one.
        ASSERT_LE(snapshot->UserVersion(1), snapshot->version());
        const auto model = snapshot->Get(1);
        if (model.ok()) {
          const double w = model.value()->sensibility(attr);
          ASSERT_GE(w, 0.0);
          ASSERT_LE(w, 1.0);
        }
        uint64_t prev = max_seen.load(std::memory_order_relaxed);
        while (last > prev &&
               !max_seen.compare_exchange_weak(prev, last)) {
        }
      }
    });
  }

  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        service_
            .Apply(SumUpdate(1).Reward(attr, 0.05).Punish(attr, 0.02))
            .ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(service_.version(), 300u);
  EXPECT_LE(max_seen.load(), 300u);
}

}  // namespace
}  // namespace spa::sum
