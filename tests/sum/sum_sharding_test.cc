// Randomized differential tests of the sharded copy-on-write
// SumSnapshot: services configured with 1, 4 and 16 user shards are
// driven through identical op sequences and must stay
// observation-equivalent at every step — same global version, same
// per-user versions, same user creation order, byte-identical CSV
// serialization. The single-shard service doubles as the reference
// for the original one-map semantics (shard count 1 holds every user
// in one sub-map).

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sum/sum_service.h"
#include "sum/sum_store.h"
#include "sum/sum_update.h"

namespace spa::sum {
namespace {

constexpr size_t kShardCounts[] = {1, 4, 16};

class ShardedSumParityTest : public ::testing::Test {
 protected:
  ShardedSumParityTest()
      : catalog_(AttributeCatalog::EmagisterDefault()) {
    for (const size_t shards : kShardCounts) {
      SumServiceConfig config;
      config.user_shards = shards;
      services_.push_back(std::make_unique<SumService>(&catalog_, config));
    }
  }

  AttributeId Emo(size_t i) const {
    const auto& ids = catalog_.ids_of(AttributeKind::kEmotional);
    return ids[i % ids.size()];
  }

  /// Applies the same update to every service and asserts success.
  void ApplyEverywhere(const SumUpdate& update) {
    for (auto& service : services_) {
      ASSERT_TRUE(service->Apply(update).ok());
    }
  }

  void ApplyAllEverywhere(const std::vector<SumUpdate>& updates) {
    for (auto& service : services_) {
      uint64_t published = 0;
      ASSERT_TRUE(service->ApplyAll(updates, &published).ok());
      EXPECT_EQ(published, service->version());
    }
  }

  /// Every observable surface must match the first (1-shard) service.
  void ExpectAllEquivalent() {
    const SumService& reference = *services_.front();
    const SumSnapshotPtr ref_snap = reference.snapshot();
    const std::string ref_csv = reference.ToCsv();
    for (size_t i = 1; i < services_.size(); ++i) {
      const SumService& other = *services_[i];
      EXPECT_EQ(other.version(), reference.version());
      EXPECT_EQ(other.size(), reference.size());
      const SumSnapshotPtr snap = other.snapshot();
      // Creation order is shard-count-independent.
      EXPECT_EQ(snap->users(), ref_snap->users());
      for (const UserId user : ref_snap->users()) {
        EXPECT_EQ(snap->UserVersion(user), ref_snap->UserVersion(user))
            << "user " << user;
      }
      // Byte-identical serialization pins the attribute values too.
      EXPECT_EQ(other.ToCsv(), ref_csv);
    }
  }

  AttributeCatalog catalog_;
  std::vector<std::unique_ptr<SumService>> services_;
};

TEST_F(ShardedSumParityTest, SnapshotShardCountsMatchConfig) {
  for (size_t i = 0; i < services_.size(); ++i) {
    EXPECT_EQ(services_[i]->snapshot()->shard_count(), kShardCounts[i]);
  }
}

TEST_F(ShardedSumParityTest, RandomizedApplySequencesAreEquivalent) {
  std::mt19937_64 rng(20070415);
  std::uniform_int_distribution<UserId> user_dist(1, 40);
  std::uniform_real_distribution<double> value_dist(0.0, 1.0);
  for (int step = 0; step < 200; ++step) {
    const UserId user = user_dist(rng);
    const AttributeId attr = Emo(static_cast<size_t>(rng() % 7));
    SumUpdate update(user);
    switch (rng() % 3) {
      case 0:
        update.SetSensibility(attr, value_dist(rng));
        break;
      case 1:
        update.SetSensibility(attr, value_dist(rng))
            .ValueFromSensibility(attr);
        break;
      default:
        break;  // empty update: touches the user into existence
    }
    ApplyEverywhere(update);
    if (step % 25 == 0) ExpectAllEquivalent();
  }
  ExpectAllEquivalent();
}

TEST_F(ShardedSumParityTest, BatchedApplyAllIsEquivalent) {
  std::mt19937_64 rng(8675309);
  std::uniform_int_distribution<UserId> user_dist(1, 64);
  std::uniform_real_distribution<double> value_dist(0.0, 1.0);
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<SumUpdate> updates;
    const size_t n = 1 + rng() % 12;
    for (size_t i = 0; i < n; ++i) {
      SumUpdate update(user_dist(rng));
      update.SetSensibility(Emo(static_cast<size_t>(rng() % 5)),
                            value_dist(rng));
      updates.push_back(std::move(update));
    }
    ApplyAllEverywhere(updates);
    ExpectAllEquivalent();
  }
}

TEST_F(ShardedSumParityTest, ApplyAllBumpsVersionOnceEverywhere) {
  std::vector<SumUpdate> updates;
  for (UserId user = 1; user <= 9; ++user) {
    updates.emplace_back(user);
  }
  ApplyAllEverywhere(updates);
  for (auto& service : services_) {
    EXPECT_EQ(service->version(), 1u);
    EXPECT_EQ(service->size(), 9u);
    for (UserId user = 1; user <= 9; ++user) {
      EXPECT_EQ(service->UserVersion(user), 1u);
    }
  }
}

TEST_F(ShardedSumParityTest, DecayAllIsEquivalent) {
  std::mt19937_64 rng(424242);
  std::uniform_int_distribution<UserId> user_dist(1, 24);
  std::uniform_real_distribution<double> value_dist(0.0, 1.0);
  for (int i = 0; i < 40; ++i) {
    SumUpdate update(user_dist(rng));
    const AttributeId attr = Emo(static_cast<size_t>(rng() % 7));
    update.SetSensibility(attr, value_dist(rng))
        .ValueFromSensibility(attr)
        .AddEvidence(attr, value_dist(rng));
    ApplyEverywhere(update);
  }
  for (auto& service : services_) {
    ASSERT_TRUE(service->DecayAll(AttributeKind::kEmotional).ok());
  }
  ExpectAllEquivalent();
}

TEST_F(ShardedSumParityTest, ResetFromStoreIsEquivalent) {
  std::mt19937_64 rng(1337);
  std::uniform_int_distribution<UserId> user_dist(1, 16);
  std::uniform_real_distribution<double> value_dist(0.0, 1.0);
  for (int i = 0; i < 30; ++i) {
    SumUpdate update(user_dist(rng));
    update.SetSensibility(Emo(static_cast<size_t>(rng() % 7)),
                          value_dist(rng));
    ApplyEverywhere(update);
  }
  // Round-trip the reference state through a store into every service.
  auto store =
      SumStore::FromCsv(services_.front()->ToCsv(), &catalog_);
  ASSERT_TRUE(store.ok());
  for (auto& service : services_) {
    service->Reset(store.value());
  }
  ExpectAllEquivalent();
}

}  // namespace
}  // namespace spa::sum
