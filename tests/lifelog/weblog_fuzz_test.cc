// Robustness properties of the WebLog parser and the cleaning pipeline:
// no input — random bytes, mutated valid lines, truncations — may crash
// or corrupt the store. (The production system fed 50 GB/month of logs
// through this path; garbage tolerance is table stakes.)

#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "lifelog/preprocessor.h"
#include "lifelog/weblog.h"

namespace spa::lifelog {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len =
      static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(max_len)));
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->UniformInt(1, 255)));
  }
  return out;
}

std::string ValidLine(Rng* rng) {
  Event e;
  e.user = rng->UniformInt(1, 100000);
  e.time = rng->UniformInt(0, int64_t{40000} * kMicrosPerDay);
  e.action_code = static_cast<int32_t>(rng->UniformInt(0, 983));
  if (rng->Bernoulli(0.5)) {
    e.item = static_cast<ItemId>(rng->UniformInt(0, 10000));
  }
  WeblogRecord r;
  r.host = "10.0.0.1";
  r.user = std::to_string(e.user);
  r.time = e.time;
  r.method = "GET";
  r.path = PathForEvent(e);
  r.status = 200;
  r.bytes = rng->UniformInt(0, 1 << 20);
  r.referrer = "https://ref/";
  r.user_agent = "UA";
  return FormatCombined(r);
}

class WeblogFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WeblogFuzzSweep, RandomBytesNeverCrashParser) {
  Rng rng(GetParam(), 1);
  for (int i = 0; i < 2000; ++i) {
    const std::string junk = RandomBytes(&rng, 300);
    const auto result = ParseCombined(junk);
    if (result.ok()) {
      // If something parses, its fields must at least be materialized
      // without UB; touch them.
      EXPECT_GE(result->status, 0);
    }
  }
}

TEST_P(WeblogFuzzSweep, MutatedValidLinesNeverCrash) {
  Rng rng(GetParam(), 2);
  for (int i = 0; i < 2000; ++i) {
    std::string line = ValidLine(&rng);
    // Mutate: flip, delete or duplicate a few random positions.
    const int mutations = static_cast<int>(rng.UniformInt(1, 6));
    for (int m = 0; m < mutations && !line.empty(); ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(line.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          line[pos] = static_cast<char>(rng.UniformInt(1, 255));
          break;
        case 1:
          line.erase(pos, 1);
          break;
        default:
          line.insert(pos, 1, line[pos]);
          break;
      }
    }
    (void)ParseCombined(line);  // must not crash; outcome irrelevant
  }
}

TEST_P(WeblogFuzzSweep, PipelineConservesLineAccounting) {
  Rng rng(GetParam(), 3);
  const ActionCatalog catalog = ActionCatalog::Standard();
  LifeLogStore store;
  LifeLogPreprocessor pre(&catalog);
  std::vector<std::string> lines;
  for (int i = 0; i < 500; ++i) {
    switch (rng.UniformInt(0, 2)) {
      case 0:
        lines.push_back(ValidLine(&rng));
        break;
      case 1:
        lines.push_back(RandomBytes(&rng, 200));
        break;
      default: {
        std::string line = ValidLine(&rng);
        line.resize(line.size() / 2);
        lines.push_back(line);
        break;
      }
    }
  }
  pre.ProcessLines(lines, &store);
  const PreprocessStats& stats = pre.stats();
  // Every line lands in exactly one bucket.
  EXPECT_EQ(stats.lines_in, lines.size());
  EXPECT_EQ(stats.lines_in,
            stats.events_out + stats.parse_errors + stats.bot_lines +
                stats.error_status + stats.anonymous +
                stats.non_action + stats.unknown_action +
                stats.duplicates);
  EXPECT_EQ(store.total_events(), stats.events_out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeblogFuzzSweep,
                         ::testing::Values(1ull, 42ull, 1337ull,
                                           0xdeadbeefull));

}  // namespace
}  // namespace spa::lifelog
