#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "lifelog/event.h"
#include "lifelog/features.h"
#include "lifelog/preprocessor.h"
#include "lifelog/session.h"
#include "lifelog/store.h"
#include "lifelog/weblog.h"

namespace spa::lifelog {
namespace {

TEST(ActionCatalogTest, StandardHas984Actions) {
  const ActionCatalog catalog = ActionCatalog::Standard();
  EXPECT_EQ(catalog.size(), 984u);
  size_t total = 0;
  for (size_t t = 0; t < kNumActionTypes; ++t) {
    total += catalog.CodesFor(static_cast<ActionType>(t)).size();
  }
  EXPECT_EQ(total, 984u);
}

TEST(ActionCatalogTest, TypeLookupAndBounds) {
  const ActionCatalog catalog = ActionCatalog::Standard();
  ASSERT_TRUE(catalog.TypeOf(0).ok());
  EXPECT_EQ(catalog.TypeOf(0).value(), ActionType::kPageView);
  EXPECT_FALSE(catalog.TypeOf(-1).ok());
  EXPECT_FALSE(catalog.TypeOf(984).ok());
  // Last code belongs to the last category.
  EXPECT_EQ(catalog.TypeOf(983).value(), ActionType::kEitAnswer);
}

TEST(ActionCatalogTest, NamesEncodeCategory) {
  const ActionCatalog catalog = ActionCatalog::Standard();
  EXPECT_EQ(catalog.NameOf(0), "pageview/0");
  EXPECT_EQ(catalog.NameOf(400), "click/0");
  EXPECT_EQ(catalog.NameOf(-5), "invalid/-5");
}

TEST(ActionCatalogTest, TransactionClassification) {
  EXPECT_TRUE(ActionCatalog::IsTransaction(ActionType::kEnrollment));
  EXPECT_TRUE(ActionCatalog::IsTransaction(ActionType::kClick));
  EXPECT_TRUE(ActionCatalog::IsTransaction(ActionType::kInfoRequest));
  EXPECT_FALSE(ActionCatalog::IsTransaction(ActionType::kPageView));
  EXPECT_FALSE(ActionCatalog::IsTransaction(ActionType::kEitAnswer));
}

TEST(ClfTimeTest, RoundTrip) {
  const spa::TimeMicros t =
      (static_cast<int64_t>(13203) * 86400 + 13 * 3600 + 55 * 60 + 36) *
      spa::kMicrosPerSecond;  // some day in 2006
  const std::string text = FormatClfTime(t);
  const auto parsed = ParseClfTime(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(), t);
}

TEST(ClfTimeTest, KnownEpoch) {
  EXPECT_EQ(FormatClfTime(0), "01/Jan/1970:00:00:00 +0000");
  const auto parsed = ParseClfTime("01/Jan/1970:00:00:00 +0000");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), 0);
}

TEST(ClfTimeTest, RejectsGarbage) {
  EXPECT_FALSE(ParseClfTime("xx/Foo/zzzz").ok());
  EXPECT_FALSE(ParseClfTime("01/Foo/1970:00:00:00 +0000").ok());
}

TEST(WeblogTest, FormatParseRoundTrip) {
  WeblogRecord r;
  r.host = "10.1.2.3";
  r.user = "12345";
  r.time = 1000000 * spa::kMicrosPerSecond;
  r.method = "GET";
  r.path = "/a/42?item=7&v=1.500";
  r.status = 200;
  r.bytes = 1234;
  r.referrer = "https://ref.example/";
  r.user_agent = "Mozilla/5.0 (SimBrowser)";
  const std::string line = FormatCombined(r);
  const auto parsed = ParseCombined(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->host, r.host);
  EXPECT_EQ(parsed->user, r.user);
  EXPECT_EQ(parsed->time, r.time);
  EXPECT_EQ(parsed->path, r.path);
  EXPECT_EQ(parsed->status, r.status);
  EXPECT_EQ(parsed->bytes, r.bytes);
  EXPECT_EQ(parsed->referrer, r.referrer);
  EXPECT_EQ(parsed->user_agent, r.user_agent);
}

TEST(WeblogTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseCombined("").ok());
  EXPECT_FALSE(ParseCombined("garbage line").ok());
  EXPECT_FALSE(ParseCombined("host - user no-brackets \"GET / H\" 200 1")
                   .ok());
}

TEST(WeblogTest, EventPathRoundTrip) {
  Event e;
  e.user = 777;
  e.time = 5 * spa::kMicrosPerDay;
  e.action_code = 450;
  e.item = 33;
  e.value = 4.5;
  WeblogRecord r;
  r.user = "777";
  r.time = e.time;
  r.path = PathForEvent(e);
  const auto back = EventFromRecord(r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->user, e.user);
  EXPECT_EQ(back->time, e.time);
  EXPECT_EQ(back->action_code, e.action_code);
  EXPECT_EQ(back->item, e.item);
  EXPECT_NEAR(back->value, e.value, 1e-3);
}

TEST(WeblogTest, EventPathWithoutItem) {
  Event e;
  e.user = 1;
  e.action_code = 3;
  const auto back = [&] {
    WeblogRecord r;
    r.user = "1";
    r.path = PathForEvent(e);
    return EventFromRecord(r);
  }();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->item, kNoItem);
}

TEST(WeblogTest, NonActionPathIsNotFound) {
  WeblogRecord r;
  r.user = "5";
  r.path = "/robots.txt";
  EXPECT_EQ(EventFromRecord(r).status().code(),
            spa::StatusCode::kNotFound);
}

TEST(WeblogTest, AnonymousRecordRejected) {
  WeblogRecord r;
  r.user = "-";
  r.path = "/a/1";
  EXPECT_EQ(EventFromRecord(r).status().code(),
            spa::StatusCode::kInvalidArgument);
}

TEST(SessionizeTest, SplitsOnGapAndUser) {
  const ActionCatalog catalog = ActionCatalog::Small(2);
  std::vector<Event> events;
  // User 1: two sessions separated by 2 hours.
  events.push_back({1, 0, 0, kNoItem, 0.0});
  events.push_back({1, 10 * spa::kMicrosPerMinute, 1, 5, 0.0});
  events.push_back({1, 3 * spa::kMicrosPerHour, 0, 6, 0.0});
  // User 2: one session.
  events.push_back({2, 0, 2, kNoItem, 0.0});
  const auto sessions = Sessionize(events, catalog);
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_EQ(sessions[0].user, 1);
  EXPECT_EQ(sessions[0].event_count, 2u);
  EXPECT_EQ(sessions[0].distinct_items, 1u);
  EXPECT_EQ(sessions[1].event_count, 1u);
  EXPECT_EQ(sessions[2].user, 2);
}

TEST(SessionizeTest, EmptyInput) {
  const ActionCatalog catalog = ActionCatalog::Small(1);
  EXPECT_TRUE(Sessionize({}, catalog).empty());
}

TEST(SessionizeTest, CustomGap) {
  const ActionCatalog catalog = ActionCatalog::Small(1);
  std::vector<Event> events;
  events.push_back({1, 0, 0, kNoItem, 0.0});
  events.push_back({1, 2 * spa::kMicrosPerMinute, 0, kNoItem, 0.0});
  EXPECT_EQ(Sessionize(events, catalog, spa::kMicrosPerMinute).size(),
            2u);
  EXPECT_EQ(
      Sessionize(events, catalog, 3 * spa::kMicrosPerMinute).size(),
      1u);
}

TEST(LifeLogStoreTest, AppendAndQuery) {
  LifeLogStore store;
  store.Append({1, 10, 0, kNoItem, 0.0});
  store.Append({2, 20, 1, 5, 1.0});
  store.Append({1, 30, 2, kNoItem, 0.0});
  EXPECT_EQ(store.total_events(), 3u);
  EXPECT_EQ(store.user_count(), 2u);
  EXPECT_EQ(store.UserEvents(1).size(), 2u);
  EXPECT_EQ(store.UserEvents(2).size(), 1u);
  EXPECT_TRUE(store.UserEvents(99).empty());
  EXPECT_EQ(store.users(), (std::vector<UserId>{1, 2}));
}

TEST(LifeLogStoreTest, CsvRoundTrip) {
  LifeLogStore store;
  store.Append({1, 10, 0, kNoItem, 0.5});
  store.Append({2, 20, 984, 5, -1.25});
  const std::string csv = store.ToCsv();
  const auto restored = LifeLogStore::FromCsv(csv);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->total_events(), 2u);
  EXPECT_EQ(restored->UserEvents(1)[0].value, 0.5);
  EXPECT_EQ(restored->UserEvents(2)[0].item, 5);
}

TEST(LifeLogStoreTest, FromCsvRejectsBadRows) {
  EXPECT_FALSE(LifeLogStore::FromCsv("").ok());
  EXPECT_FALSE(
      LifeLogStore::FromCsv("user,time,action_code,item,value\n1,2\n")
          .ok());
  EXPECT_FALSE(LifeLogStore::FromCsv(
                   "user,time,action_code,item,value\na,b,c,d,e\n")
                   .ok());
}

TEST(FeatureSpaceTest, InternIsIdempotent) {
  FeatureSpace space;
  const int32_t a = space.Intern("x");
  const int32_t b = space.Intern("y");
  EXPECT_EQ(space.Intern("x"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(space.size(), 2);
  EXPECT_EQ(space.NameOf(a), "x");
  EXPECT_TRUE(space.IndexOf("y").ok());
  EXPECT_FALSE(space.IndexOf("zzz").ok());
}

TEST(FeatureExtractorTest, EmptyEventsGiveEmptyVector) {
  const ActionCatalog catalog = ActionCatalog::Small(2);
  FeatureSpace space;
  const BehaviorFeatureExtractor extractor(&catalog, &space);
  EXPECT_TRUE(extractor.Extract({}, 0).empty());
}

TEST(FeatureExtractorTest, ProducesExpectedSignals) {
  const ActionCatalog catalog = ActionCatalog::Standard();
  FeatureSpace space;
  const BehaviorFeatureExtractor extractor(&catalog, &space);

  std::vector<Event> events;
  // 3 pageviews, 1 enrollment, 1 rating over two days.
  events.push_back({1, 0, 0, 10, 0.0});
  events.push_back({1, spa::kMicrosPerHour, 1, 10, 0.0});
  events.push_back({1, spa::kMicrosPerDay, 2, 11, 0.0});
  events.push_back({1, spa::kMicrosPerDay + spa::kMicrosPerMinute,
                    900, 11, 0.0});  // enrollment range starts at 900
  events.push_back({1, spa::kMicrosPerDay + 2 * spa::kMicrosPerMinute,
                    930, 11, 4.0});  // rating range starts at 930
  const auto features =
      extractor.Extract(events, 2 * spa::kMicrosPerDay);
  ASSERT_FALSE(features.empty());

  auto value_of = [&](const std::string& name) {
    const auto idx = space.IndexOf(name);
    EXPECT_TRUE(idx.ok()) << name;
    for (size_t i = 0; i < features.nnz(); ++i) {
      if (features.index(i) == idx.value()) return features.value(i);
    }
    return 0.0;
  };

  EXPECT_NEAR(value_of("behavior.count.pageview"), std::log1p(3.0),
              1e-9);
  EXPECT_NEAR(value_of("behavior.count.enrollment"), std::log1p(1.0),
              1e-9);
  EXPECT_NEAR(value_of("behavior.mean_rating"), 4.0, 1e-9);
  EXPECT_NEAR(value_of("behavior.recency_days"),
              1.0 - 2.0 / (24.0 * 60.0), 1e-3);
  EXPECT_GT(value_of("behavior.distinct_items"), 0.0);
  EXPECT_GT(value_of("behavior.session_count"), 0.0);
}

TEST(PreprocessorTest, EndToEndPipelineFiltersNoise) {
  const ActionCatalog catalog = ActionCatalog::Standard();
  std::vector<Event> events;
  for (int i = 0; i < 200; ++i) {
    Event e;
    e.user = 100 + i % 10;
    e.time = static_cast<spa::TimeMicros>(i) * spa::kMicrosPerMinute;
    e.action_code = (i * 13) % 984;
    e.item = i % 3 == 0 ? i % 50 : kNoItem;
    events.push_back(e);
  }
  WeblogNoiseOptions noise;
  noise.bot_fraction = 0.2;
  noise.error_fraction = 0.2;
  noise.malformed_fraction = 0.1;
  WeblogSynthesizer synth(noise);
  std::vector<std::string> lines;
  synth.Synthesize(events, &lines);
  EXPECT_GT(lines.size(), events.size());

  LifeLogStore store;
  LifeLogPreprocessor pre(&catalog);
  pre.ProcessLines(lines, &store);
  const PreprocessStats& stats = pre.stats();
  EXPECT_EQ(stats.lines_in, lines.size());
  EXPECT_EQ(stats.events_out, events.size());
  EXPECT_EQ(store.total_events(), events.size());
  EXPECT_GT(stats.bot_lines + stats.anonymous, 0u);
  EXPECT_GT(stats.error_status, 0u);
  EXPECT_GT(stats.parse_errors, 0u);
  // Conservation: every line is accounted for exactly once.
  EXPECT_EQ(stats.lines_in,
            stats.events_out + stats.parse_errors + stats.bot_lines +
                stats.error_status + stats.anonymous +
                stats.non_action + stats.unknown_action +
                stats.duplicates);
}

TEST(PreprocessorTest, DeduplicatesReplays) {
  const ActionCatalog catalog = ActionCatalog::Standard();
  LifeLogStore store;
  LifeLogPreprocessor pre(&catalog);
  Event e;
  e.user = 1;
  e.time = 1000;
  e.action_code = 5;
  WeblogSynthesizer synth({0.0, 0.0, 0.0, 1});
  std::vector<std::string> lines;
  synth.Synthesize({e, e, e}, &lines);
  pre.ProcessLines(lines, &store);
  EXPECT_EQ(store.total_events(), 1u);
  EXPECT_EQ(pre.stats().duplicates, 2u);
}

TEST(PreprocessorTest, UnknownActionCodeFiltered) {
  const ActionCatalog small = ActionCatalog::Small(1);  // 10 codes
  LifeLogStore store;
  LifeLogPreprocessor pre(&small);
  Event e;
  e.user = 1;
  e.time = 0;
  e.action_code = 500;  // out of range for the small catalog
  WeblogSynthesizer synth({0.0, 0.0, 0.0, 1});
  std::vector<std::string> lines;
  synth.Synthesize({e}, &lines);
  pre.ProcessLines(lines, &store);
  EXPECT_EQ(store.total_events(), 0u);
  EXPECT_EQ(pre.stats().unknown_action, 1u);
}

TEST(BotDetectionTest, PatternMatching) {
  EXPECT_TRUE(IsBotUserAgent("CrawlerBot/1.0"));
  EXPECT_TRUE(IsBotUserAgent("googlebot"));
  EXPECT_TRUE(IsBotUserAgent("Spider Monkey spider"));
  EXPECT_FALSE(IsBotUserAgent("Mozilla/5.0 (SimBrowser)"));
}

}  // namespace
}  // namespace spa::lifelog
