// Cross-module integration tests: the full platform + campaign loop,
// snapshot-training semantics, determinism, and serialization paths
// that only surface when everything is wired together.

#include <cmath>
#include <memory>

#include "campaign/redemption.h"
#include "campaign/runner.h"
#include "core/spa.h"
#include "gtest/gtest.h"
#include "ml/metrics.h"

namespace spa {
namespace {

struct World {
  std::unique_ptr<core::Spa> platform;
  std::unique_ptr<campaign::PopulationModel> population;
  std::unique_ptr<campaign::CourseCatalog> courses;
  std::unique_ptr<campaign::ResponseModel> responses;
  std::unique_ptr<campaign::CampaignRunner> runner;
  std::vector<sum::UserId> candidates;
};

World MakeWorld(uint64_t seed, size_t users,
                campaign::RunnerConfig runner_config = {}) {
  World world;
  core::SpaConfig config;
  config.seed = seed;
  config.eit_questions_per_section = 4;
  world.platform = std::make_unique<core::Spa>(config);
  campaign::PopulationConfig pop_config;
  pop_config.seed = seed;
  world.population =
      std::make_unique<campaign::PopulationModel>(pop_config);
  world.courses = std::make_unique<campaign::CourseCatalog>(
      campaign::CourseCatalog::Generate(
          50, world.platform->attribute_catalog(), seed));
  world.responses = std::make_unique<campaign::ResponseModel>();
  runner_config.seed = seed;
  runner_config.bootstrap_events_per_user = 6;
  runner_config.eit_warmup_contacts = 10;
  world.runner = std::make_unique<campaign::CampaignRunner>(
      world.platform.get(), world.population.get(), world.courses.get(),
      world.responses.get(), runner_config);
  world.runner->RegisterCourses();
  for (size_t u = 0; u < users; ++u) {
    world.candidates.push_back(static_cast<sum::UserId>(u));
  }
  world.runner->BootstrapUsers(world.candidates);
  return world;
}

campaign::CampaignSpec MakeSpec(int id, size_t targets) {
  campaign::CampaignSpec spec;
  spec.id = id;
  spec.target_count = targets;
  spec.featured_courses = {0, 1, 2, 3, 4};
  return spec;
}

TEST(IntegrationTest, FullLoopIsDeterministic) {
  World a = MakeWorld(123, 800);
  World b = MakeWorld(123, 800);
  const auto oa = a.runner->RunCampaign(MakeSpec(1, 400), a.candidates);
  const auto ob = b.runner->RunCampaign(MakeSpec(1, 400), b.candidates);
  EXPECT_EQ(oa.useful_impacts, ob.useful_impacts);
  EXPECT_EQ(oa.opened, ob.opened);
  EXPECT_EQ(oa.clicked, ob.clicked);
  EXPECT_EQ(oa.transactions, ob.transactions);
  EXPECT_EQ(oa.eit_questions_answered, ob.eit_questions_answered);
  EXPECT_EQ(oa.message_cases, ob.message_cases);
  ASSERT_EQ(oa.scores.size(), ob.scores.size());
  for (size_t i = 0; i < oa.scores.size(); ++i) {
    ASSERT_DOUBLE_EQ(oa.scores[i], ob.scores[i]);
  }
}

TEST(IntegrationTest, DifferentSeedsDiverge) {
  World a = MakeWorld(123, 500);
  World b = MakeWorld(124, 500);
  const auto oa = a.runner->RunCampaign(MakeSpec(1, 300), a.candidates);
  const auto ob = b.runner->RunCampaign(MakeSpec(1, 300), b.candidates);
  // Same sizes, different realizations (overwhelmingly likely).
  EXPECT_EQ(oa.targeted, ob.targeted);
  EXPECT_NE(oa.labels, ob.labels);
}

TEST(IntegrationTest, SnapshotIsLeakFree) {
  World world = MakeWorld(7, 300);
  const sum::UserId user = world.candidates.front();
  const ml::SparseVector before =
      world.platform->SnapshotFeatures(user);
  // Outcome events land after the snapshot...
  const auto& enroll = world.platform->action_catalog().CodesFor(
      lifelog::ActionType::kEnrollment);
  lifelog::Event event;
  event.user = user;
  event.time = world.platform->clock()->now();
  event.action_code = enroll.front();
  event.item = 3;
  world.platform->RecordEvent(event);
  // ...and the stored snapshot must not change (value semantics).
  const ml::SparseVector after = world.platform->SnapshotFeatures(user);
  // The *new* snapshot sees the enrolment; the old object is intact.
  EXPECT_GT(after.nnz(), before.nnz());
}

TEST(IntegrationTest, SnapshotTrainingAndScoringConsistent) {
  World world = MakeWorld(11, 600);
  // Manufacture linearly-separable labels on snapshots.
  std::vector<ml::SparseVector> features;
  std::vector<ml::Label> labels;
  for (sum::UserId user : world.candidates) {
    features.push_back(world.platform->SnapshotFeatures(user));
    const size_t events =
        world.platform->lifelog()->UserEvents(user).size();
    labels.push_back(events > 8 ? 1 : -1);
  }
  ASSERT_TRUE(world.platform
                  ->TrainPropensityOnSnapshots(features, labels)
                  .ok());
  // Scoring the training snapshots separates the classes.
  std::vector<double> scores;
  for (const auto& f : features) {
    const auto s = world.platform->ScoreSnapshot(f);
    ASSERT_TRUE(s.ok());
    scores.push_back(s.value());
  }
  EXPECT_GT(ml::RocAuc(scores, labels), 0.95);
}

TEST(IntegrationTest, TrainOnSnapshotsValidatesInput) {
  World world = MakeWorld(13, 50);
  std::vector<ml::SparseVector> features(5);
  std::vector<ml::Label> labels(4, 1);
  EXPECT_FALSE(world.platform
                   ->TrainPropensityOnSnapshots(features, labels)
                   .ok());  // size mismatch
  labels.assign(5, 1);
  EXPECT_FALSE(world.platform
                   ->TrainPropensityOnSnapshots(features, labels)
                   .ok());  // too few / single class
}

TEST(IntegrationTest, HistoryBookkeepingPerCampaign) {
  World world = MakeWorld(17, 400);
  EXPECT_EQ(world.runner->history_size(), 0u);
  world.runner->RunCampaign(MakeSpec(1, 200), world.candidates);
  EXPECT_EQ(world.runner->history_size(), 200u);
  EXPECT_EQ(world.runner->campaign_starts().size(), 1u);
  EXPECT_EQ(world.runner->campaign_starts()[0], 0u);
  world.runner->RunCampaign(MakeSpec(2, 150), world.candidates);
  EXPECT_EQ(world.runner->history_size(), 350u);
  ASSERT_EQ(world.runner->campaign_starts().size(), 2u);
  EXPECT_EQ(world.runner->campaign_starts()[1], 200u);
  EXPECT_EQ(world.runner->history_features().size(),
            world.runner->history_labels().size());
}

TEST(IntegrationTest, WindowedRetrainingStaysTrainable) {
  campaign::RunnerConfig config;
  config.training_window_campaigns = 1;  // most aggressive window
  World world = MakeWorld(19, 500, config);
  for (int c = 1; c <= 3; ++c) {
    world.runner->RunCampaign(MakeSpec(c, 300), world.candidates);
  }
  EXPECT_TRUE(world.platform->smart_component()->trained());
  // And the model still ranks: propensities are within [0,1].
  const auto top =
      world.platform->SelectTopProspects(world.candidates, 5);
  ASSERT_TRUE(top.ok());
  for (const auto& [user, score] : top.value()) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(IntegrationTest, EitAdaptiveSelectionBalancesProbes) {
  core::SpaConfig config;
  config.eit_questions_per_section = 6;  // 48 items
  core::Spa platform(config);
  const sum::UserId user = 5;
  // Answer 20 questions; the adaptive selector should spread probes
  // over the ten attributes rather than replay the bank order.
  for (int i = 0; i < 20; ++i) {
    const auto qid = platform.NextEitQuestion(user);
    ASSERT_TRUE(qid.ok());
    ASSERT_TRUE(platform.RecordEitAnswer(user, qid.value(), 0).ok());
  }
  // Probe counts live in the EIT state; recover coverage via evidence
  // in the SUM (every probed attribute received reinforcement).
  const auto snapshot = platform.sum_snapshot();
  const auto model = snapshot->Get(user);
  ASSERT_TRUE(model.ok());
  size_t touched = 0;
  for (eit::EmotionalAttribute e : eit::AllEmotionalAttributes()) {
    if (model.value()->evidence(
            platform.attribute_catalog().EmotionalId(e)) > 0.0) {
      ++touched;
    }
  }
  EXPECT_GE(touched, 8u);  // near-complete coverage in 20 answers
}

TEST(IntegrationTest, SumStoreCsvRoundTripThroughPlatform) {
  World world = MakeWorld(23, 100);
  // Mutate some models through the platform paths first.
  world.runner->RunCampaign(MakeSpec(1, 80), world.candidates);
  const std::string csv = world.platform->sum_service()->ToCsv();
  EXPECT_FALSE(csv.empty());
  const auto restored = sum::SumStore::FromCsv(
      csv, &world.platform->attribute_catalog());
  ASSERT_TRUE(restored.ok()) << restored.status();
  // Every persisted model matches the live one attribute-by-attribute.
  size_t checked = 0;
  const auto live_snapshot = world.platform->sum_snapshot();
  restored->ForEach([&](const sum::SmartUserModel& loaded) {
    const auto live = live_snapshot->Get(loaded.user());
    ASSERT_TRUE(live.ok());
    for (const auto& def :
         world.platform->attribute_catalog().defs()) {
      ASSERT_NEAR(loaded.value(def.id), live.value()->value(def.id),
                  1e-9);
      ASSERT_NEAR(loaded.sensibility(def.id),
                  live.value()->sensibility(def.id), 1e-9);
    }
    ++checked;
  });
  EXPECT_GT(checked, 0u);
}

TEST(IntegrationTest, RedemptionReportFromLiveCampaigns) {
  World world = MakeWorld(29, 1'000);
  std::vector<campaign::CampaignOutcome> outcomes;
  // Pilot to train, then two measured campaigns.
  world.runner->RunCampaign(MakeSpec(0, 400), world.candidates);
  outcomes.push_back(
      world.runner->RunCampaign(MakeSpec(1, 400), world.candidates));
  outcomes.push_back(
      world.runner->RunCampaign(MakeSpec(2, 400), world.candidates));
  const auto report = campaign::ComputeRedemption(outcomes);
  EXPECT_EQ(report.total_targeted, 800u);
  EXPECT_GT(report.base_rate, 0.0);
  // A trained model must beat random targeting.
  EXPECT_GT(report.auc, 0.55);
  EXPECT_GT(report.captured_at_40, 0.45);
  // Structural invariants of the curve.
  ASSERT_FALSE(report.curve.empty());
  EXPECT_DOUBLE_EQ(report.curve.back().fraction_captured, 1.0);
}

TEST(IntegrationTest, LearnerVariantsAllTrainThroughPlatform) {
  for (const auto learner :
       {core::SpaConfig::Learner::kLinearSvm,
        core::SpaConfig::Learner::kLogisticRegression,
        core::SpaConfig::Learner::kNaiveBayes}) {
    core::SpaConfig config;
    config.learner = learner;
    config.eit_questions_per_section = 2;
    core::Spa platform(config);
    const auto& clicks = platform.action_catalog().CodesFor(
        lifelog::ActionType::kClick);
    const auto& views = platform.action_catalog().CodesFor(
        lifelog::ActionType::kPageView);
    std::vector<core::PropensityExample> examples;
    for (sum::UserId u = 0; u < 80; ++u) {
      ASSERT_TRUE(
          platform.sum_service()->Apply(sum::SumUpdate(u)).ok());
      const bool responder = u % 2 == 0;
      // Responders click; non-responders only browse. The *presence*
      // of the click feature separates the classes, so even the
      // Bernoulli NB (which ignores magnitudes) can learn it.
      const auto& codes = responder ? clicks : views;
      for (int j = 0; j < (responder ? 9 : 2); ++j) {
        lifelog::Event e;
        e.user = u;
        e.time = platform.clock()->now();
        e.action_code = codes[static_cast<size_t>(j) % codes.size()];
        platform.RecordEvent(e);
      }
      examples.push_back({u, responder});
    }
    ASSERT_TRUE(platform.TrainPropensity(examples).ok());
    EXPECT_GT(platform.smart_component()->last_validation_auc(), 0.7)
        << "learner variant " << static_cast<int>(learner);
  }
}

}  // namespace
}  // namespace spa
