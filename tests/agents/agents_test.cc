#include <memory>

#include "agents/attributes_agent.h"
#include "agents/messaging_agent.h"
#include "agents/preprocessor_agent.h"
#include "agents/runtime.h"
#include "gtest/gtest.h"
#include "lifelog/weblog.h"

namespace spa::agents {
namespace {

/// Test agent that records everything it receives.
class RecorderAgent : public Agent {
 public:
  explicit RecorderAgent(std::string name) : Agent(std::move(name)) {}
  void OnMessage(const Envelope& envelope, AgentContext* ctx) override {
    (void)ctx;
    received.push_back(envelope);
  }
  std::vector<Envelope> received;
};

/// Test agent that forwards ticks to a peer.
class ForwarderAgent : public Agent {
 public:
  ForwarderAgent(std::string name, std::string peer)
      : Agent(std::move(name)), peer_(std::move(peer)) {}
  void OnMessage(const Envelope& envelope, AgentContext* ctx) override {
    if (std::get_if<Tick>(&envelope.payload) != nullptr &&
        envelope.from == "external") {
      ctx->Send(peer_, envelope.payload);
    }
  }

 private:
  std::string peer_;
};

TEST(RuntimeTest, RegisterRejectsDuplicates) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  ASSERT_TRUE(
      runtime.Register(std::make_unique<RecorderAgent>("a")).ok());
  EXPECT_EQ(runtime.Register(std::make_unique<RecorderAgent>("a")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(runtime.HasAgent("a"));
  EXPECT_FALSE(runtime.HasAgent("b"));
}

TEST(RuntimeTest, DeliversInFifoOrder) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  auto recorder = std::make_unique<RecorderAgent>("rec");
  RecorderAgent* rec = recorder.get();
  ASSERT_TRUE(runtime.Register(std::move(recorder)).ok());
  for (int i = 0; i < 5; ++i) {
    runtime.Inject("rec", Tick{static_cast<TimeMicros>(i)});
  }
  EXPECT_EQ(runtime.RunUntilIdle(), 5u);
  ASSERT_EQ(rec->received.size(), 5u);
  for (size_t i = 1; i < rec->received.size(); ++i) {
    EXPECT_LT(rec->received[i - 1].seq, rec->received[i].seq);
  }
}

TEST(RuntimeTest, UnknownRecipientCountsAsDropped) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  runtime.Inject("ghost", Tick{});
  EXPECT_EQ(runtime.RunUntilIdle(), 0u);
  EXPECT_EQ(runtime.dropped(), 1u);
}

TEST(RuntimeTest, AgentToAgentDelivery) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  ASSERT_TRUE(runtime
                  .Register(std::make_unique<ForwarderAgent>("fwd",
                                                             "rec"))
                  .ok());
  auto recorder = std::make_unique<RecorderAgent>("rec");
  RecorderAgent* rec = recorder.get();
  ASSERT_TRUE(runtime.Register(std::move(recorder)).ok());

  runtime.Inject("fwd", Tick{});
  runtime.RunUntilIdle();
  ASSERT_EQ(rec->received.size(), 1u);
  EXPECT_EQ(rec->received[0].from, "fwd");
  EXPECT_EQ(runtime.stats().at("fwd").sent, 1u);
  EXPECT_EQ(runtime.stats().at("rec").delivered, 1u);
}

TEST(RuntimeTest, TickAllReachesEveryAgent) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  std::vector<RecorderAgent*> recs;
  for (int i = 0; i < 3; ++i) {
    auto r = std::make_unique<RecorderAgent>("rec" + std::to_string(i));
    recs.push_back(r.get());
    ASSERT_TRUE(runtime.Register(std::move(r)).ok());
  }
  runtime.TickAll();
  for (RecorderAgent* r : recs) {
    EXPECT_EQ(r->received.size(), 1u);
  }
}

TEST(PayloadNameTest, AllAlternativesNamed) {
  EXPECT_EQ(PayloadName(RawLogBatch{}), "RawLogBatch");
  EXPECT_EQ(PayloadName(PreprocessReport{}), "PreprocessReport");
  EXPECT_EQ(PayloadName(EitAnswerObserved{}), "EitAnswerObserved");
  EXPECT_EQ(PayloadName(InteractionObserved{}), "InteractionObserved");
  EXPECT_EQ(PayloadName(ComposeMessageRequest{}),
            "ComposeMessageRequest");
  EXPECT_EQ(PayloadName(ComposedMessage{}), "ComposedMessage");
  EXPECT_EQ(PayloadName(Tick{}), "Tick");
}

class PreprocessorAgentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = lifelog::ActionCatalog::Standard();
  }

  std::vector<std::string> MakeLines(size_t n) {
    std::vector<lifelog::Event> events;
    for (size_t i = 0; i < n; ++i) {
      lifelog::Event e;
      e.user = static_cast<lifelog::UserId>(100 + i % 50);
      e.time = static_cast<TimeMicros>(i) * kMicrosPerMinute;
      e.action_code = static_cast<int32_t>((i * 7) % 984);
      events.push_back(e);
    }
    lifelog::WeblogSynthesizer synth({0.0, 0.0, 0.0, 9});
    std::vector<std::string> lines;
    synth.Synthesize(events, &lines);
    return lines;
  }

  lifelog::ActionCatalog catalog_;
};

TEST_F(PreprocessorAgentTest, ProcessesWithinCapacityWithoutReplicating) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  lifelog::LifeLogStore store;
  PreprocessorAgentConfig config;
  config.capacity_per_batch = 1000;
  auto agent = std::make_unique<PreprocessorAgent>(&catalog_, &store,
                                                   config);
  const PreprocessorAgent* primary = agent.get();
  ASSERT_TRUE(runtime.Register(std::move(agent)).ok());

  runtime.Inject("preproc-0", RawLogBatch{MakeLines(500)});
  runtime.RunUntilIdle();
  EXPECT_EQ(store.total_events(), 500u);
  EXPECT_EQ(primary->family_stats().replicas, 1u);
  EXPECT_EQ(primary->family_stats().overflow_handoffs, 0u);
}

TEST_F(PreprocessorAgentTest, ReplicatesUnderOverload) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  lifelog::LifeLogStore store;
  PreprocessorAgentConfig config;
  config.capacity_per_batch = 100;
  config.max_replicas = 4;
  auto agent = std::make_unique<PreprocessorAgent>(&catalog_, &store,
                                                   config);
  const PreprocessorAgent* primary = agent.get();
  ASSERT_TRUE(runtime.Register(std::move(agent)).ok());

  runtime.Inject("preproc-0", RawLogBatch{MakeLines(950)});
  runtime.RunUntilIdle();
  // All lines processed despite the tiny per-replica capacity...
  EXPECT_EQ(store.total_events(), 950u);
  // ...because the family replicated.
  EXPECT_GT(primary->family_stats().replicas, 1u);
  EXPECT_LE(primary->family_stats().replicas, 4u);
  EXPECT_GT(primary->family_stats().overflow_handoffs, 0u);
  EXPECT_TRUE(runtime.HasAgent("preproc-1"));
}

TEST_F(PreprocessorAgentTest, ReplicaCountCapped) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  lifelog::LifeLogStore store;
  PreprocessorAgentConfig config;
  config.capacity_per_batch = 10;
  config.max_replicas = 2;
  auto agent = std::make_unique<PreprocessorAgent>(&catalog_, &store,
                                                   config);
  const PreprocessorAgent* primary = agent.get();
  ASSERT_TRUE(runtime.Register(std::move(agent)).ok());

  runtime.Inject("preproc-0", RawLogBatch{MakeLines(500)});
  runtime.RunUntilIdle();
  EXPECT_EQ(store.total_events(), 500u);
  EXPECT_LE(primary->family_stats().replicas, 2u);
}

class AttributesAgentTest : public ::testing::Test {
 protected:
  AttributesAgentTest()
      : catalog_(sum::AttributeCatalog::EmagisterDefault()),
        sums_(&catalog_) {}

  sum::AttributeCatalog catalog_;
  sum::SumService sums_;
};

TEST_F(AttributesAgentTest, EitAnswerActivatesAttributes) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  auto agent = std::make_unique<AttributesManagerAgent>(&sums_);
  const AttributesManagerAgent* manager = agent.get();
  ASSERT_TRUE(runtime.Register(std::move(agent)).ok());

  // Signed evidence: 0.5 is above the neutral consensus (reward),
  // 0.1 is below it (punish — disagreeing with the consensus is
  // evidence of a weak attribute).
  EitAnswerObserved answer;
  answer.user = 7;
  answer.question_id = 3;
  answer.activations = {
      {eit::EmotionalAttribute::kHopeful, 0.5},
      {eit::EmotionalAttribute::kShy, 0.1},
  };
  runtime.Inject("attributes-manager", answer);
  runtime.RunUntilIdle();

  const sum::SumSnapshotPtr snapshot = sums_.snapshot();
  const auto model = snapshot->Get(7);
  ASSERT_TRUE(model.ok());
  const auto hopeful =
      catalog_.EmotionalId(eit::EmotionalAttribute::kHopeful);
  const auto shy = catalog_.EmotionalId(eit::EmotionalAttribute::kShy);
  EXPECT_GT(model.value()->sensibility(hopeful), 0.0);
  EXPECT_DOUBLE_EQ(model.value()->sensibility(shy), 0.0);  // punished
  EXPECT_EQ(manager->stats().eit_answers, 1u);
  EXPECT_EQ(manager->stats().reinforcements, 1u);
  EXPECT_EQ(manager->stats().punishments, 1u);
}

TEST_F(AttributesAgentTest, InteractionRewardAndPunish) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  auto agent = std::make_unique<AttributesManagerAgent>(&sums_);
  ASSERT_TRUE(runtime.Register(std::move(agent)).ok());

  const auto lively =
      catalog_.EmotionalId(eit::EmotionalAttribute::kLively);
  InteractionObserved good;
  good.user = 9;
  good.argued_attribute = lively;
  good.positive = true;
  runtime.Inject("attributes-manager", good);
  runtime.RunUntilIdle();
  const double after_reward =
      sums_.snapshot()->Get(9).value()->sensibility(lively);
  EXPECT_GT(after_reward, 0.0);
  const uint64_t version_after_reward = sums_.UserVersion(9);
  EXPECT_GT(version_after_reward, 0u);

  InteractionObserved bad = good;
  bad.positive = false;
  runtime.Inject("attributes-manager", bad);
  runtime.RunUntilIdle();
  EXPECT_LT(sums_.snapshot()->Get(9).value()->sensibility(lively),
            after_reward);
  // Every applied observation publishes a new per-user version.
  EXPECT_GT(sums_.UserVersion(9), version_after_reward);
}

TEST_F(AttributesAgentTest, StandardMessageInteractionIsNoOp) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  auto agent = std::make_unique<AttributesManagerAgent>(&sums_);
  const AttributesManagerAgent* manager = agent.get();
  ASSERT_TRUE(runtime.Register(std::move(agent)).ok());

  InteractionObserved standard;
  standard.user = 5;
  standard.argued_attribute = -1;
  standard.positive = true;
  runtime.Inject("attributes-manager", standard);
  runtime.RunUntilIdle();
  EXPECT_EQ(manager->stats().reinforcements, 0u);
  // The first observation touches the user into existence...
  EXPECT_TRUE(sums_.snapshot()->Contains(5));
  const uint64_t version = sums_.UserVersion(5);

  // ...but repeating it publishes nothing: no version bump, so the
  // user's cached recommendations stay valid.
  runtime.Inject("attributes-manager", standard);
  runtime.RunUntilIdle();
  EXPECT_EQ(sums_.UserVersion(5), version);
}

TEST_F(AttributesAgentTest, TickAppliesDecay) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  // Decay parameters live in the service's reinforcement config.
  sum::SumServiceConfig service_config;
  service_config.reinforcement.decay_rate = 0.5;
  sum::SumService sums(&catalog_, service_config);
  auto agent = std::make_unique<AttributesManagerAgent>(&sums);
  ASSERT_TRUE(runtime.Register(std::move(agent)).ok());

  const auto lively =
      catalog_.EmotionalId(eit::EmotionalAttribute::kLively);
  ASSERT_TRUE(
      sums.Apply(sum::SumUpdate(11).SetSensibility(lively, 0.8)).ok());
  runtime.Inject("attributes-manager", Tick{});
  runtime.RunUntilIdle();
  EXPECT_NEAR(sums.snapshot()->Get(11).value()->sensibility(lively),
              0.4, 1e-12);
}

class MessagingAgentTest : public ::testing::Test {
 protected:
  MessagingAgentTest()
      : catalog_(sum::AttributeCatalog::EmagisterDefault()),
        sums_(&catalog_) {}

  sum::AttributeId Emo(eit::EmotionalAttribute attr) const {
    return catalog_.EmotionalId(attr);
  }

  void Touch(sum::UserId user) {
    ASSERT_TRUE(sums_.Apply(sum::SumUpdate(user)).ok());
  }

  void SetSensibility(sum::UserId user, sum::AttributeId attr,
                      double sensibility) {
    ASSERT_TRUE(
        sums_.Apply(sum::SumUpdate(user).SetSensibility(attr, sensibility))
            .ok());
  }

  sum::AttributeCatalog catalog_;
  sum::SumService sums_;
};

TEST_F(MessagingAgentTest, CaseA_NoSensibility_StandardMessage) {
  MessagingAgent agent(&sums_);
  InstallDefaultTemplates(catalog_, &agent);
  Touch(1);  // all sensibilities zero

  ComposeMessageRequest request;
  request.user = 1;
  request.course = 10;
  request.product_attributes = {
      Emo(eit::EmotionalAttribute::kEnthusiastic)};
  const ComposedMessage message = agent.Compose(request);
  EXPECT_EQ(message.message_case, MessageCase::kStandard);
  EXPECT_EQ(message.argued_attribute, -1);
  EXPECT_FALSE(message.text.empty());
}

TEST_F(MessagingAgentTest, CaseB_SingleMatch) {
  MessagingAgent agent(&sums_);
  InstallDefaultTemplates(catalog_, &agent);
  SetSensibility(2, Emo(eit::EmotionalAttribute::kEnthusiastic), 0.9);

  ComposeMessageRequest request;
  request.user = 2;
  request.course = 10;
  request.product_attributes = {
      Emo(eit::EmotionalAttribute::kEnthusiastic),
      Emo(eit::EmotionalAttribute::kShy)};
  const ComposedMessage message = agent.Compose(request);
  EXPECT_EQ(message.message_case, MessageCase::kSingleMatch);
  EXPECT_EQ(message.argued_attribute,
            Emo(eit::EmotionalAttribute::kEnthusiastic));
  EXPECT_NE(message.text.find("enthusiasm"), std::string::npos);
}

TEST_F(MessagingAgentTest, CaseCi_PriorityOrder) {
  MessagingAgentConfig config;
  config.policy = MultiMatchPolicy::kPriority;
  MessagingAgent agent(&sums_, config);
  InstallDefaultTemplates(catalog_, &agent);
  // Both match; "lively" has higher sensibility but "stimulated" comes
  // first in the product's priority list.
  SetSensibility(3, Emo(eit::EmotionalAttribute::kLively), 0.95);
  SetSensibility(3, Emo(eit::EmotionalAttribute::kStimulated), 0.7);

  ComposeMessageRequest request;
  request.user = 3;
  request.course = 11;
  request.product_attributes = {
      Emo(eit::EmotionalAttribute::kStimulated),
      Emo(eit::EmotionalAttribute::kLively)};
  const ComposedMessage message = agent.Compose(request);
  EXPECT_EQ(message.message_case, MessageCase::kPriority);
  EXPECT_EQ(message.argued_attribute,
            Emo(eit::EmotionalAttribute::kStimulated));
}

TEST_F(MessagingAgentTest, CaseCii_MaxSensibility) {
  MessagingAgentConfig config;
  config.policy = MultiMatchPolicy::kMaxSensibility;
  MessagingAgent agent(&sums_, config);
  InstallDefaultTemplates(catalog_, &agent);
  // Fig. 5(c): motivated and hopeful both match; hopeful is stronger.
  SetSensibility(4, Emo(eit::EmotionalAttribute::kMotivated), 0.6);
  SetSensibility(4, Emo(eit::EmotionalAttribute::kHopeful), 0.85);

  ComposeMessageRequest request;
  request.user = 4;
  request.course = 12;
  request.product_attributes = {
      Emo(eit::EmotionalAttribute::kMotivated),
      Emo(eit::EmotionalAttribute::kHopeful)};
  const ComposedMessage message = agent.Compose(request);
  EXPECT_EQ(message.message_case, MessageCase::kMaxSensibility);
  EXPECT_EQ(message.argued_attribute,
            Emo(eit::EmotionalAttribute::kHopeful));
  EXPECT_NE(message.text.find("hoping"), std::string::npos);
}

TEST_F(MessagingAgentTest, UnknownUserGetsStandardMessage) {
  MessagingAgent agent(&sums_);
  ComposeMessageRequest request;
  request.user = 999;  // no SUM
  request.product_attributes = {
      Emo(eit::EmotionalAttribute::kEnthusiastic)};
  const ComposedMessage message = agent.Compose(request);
  EXPECT_EQ(message.message_case, MessageCase::kStandard);
}

TEST_F(MessagingAgentTest, MailboxRoundTrip) {
  SimClock clock;
  AgentRuntime runtime(&clock);
  auto messaging = std::make_unique<MessagingAgent>(&sums_);
  ASSERT_TRUE(runtime.Register(std::move(messaging)).ok());
  auto recorder = std::make_unique<RecorderAgent>("campaigner");
  RecorderAgent* rec = recorder.get();
  ASSERT_TRUE(runtime.Register(std::move(recorder)).ok());

  SetSensibility(5, Emo(eit::EmotionalAttribute::kHopeful), 0.9);

  // The campaigner asks the messaging agent for a message; the reply
  // comes back through the mailbox.
  AgentContext ctx(&runtime, "campaigner");
  ComposeMessageRequest request;
  request.user = 5;
  request.course = 3;
  request.product_attributes = {Emo(eit::EmotionalAttribute::kHopeful)};
  ctx.Send("messaging", request);
  runtime.RunUntilIdle();

  ASSERT_EQ(rec->received.size(), 1u);
  const auto* reply =
      std::get_if<ComposedMessage>(&rec->received[0].payload);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->user, 5);
  EXPECT_EQ(reply->message_case, MessageCase::kSingleMatch);
}

TEST_F(MessagingAgentTest, StatsTrackCases) {
  MessagingAgent agent(&sums_);
  Touch(6);
  ComposeMessageRequest request;
  request.user = 6;
  request.product_attributes = {
      Emo(eit::EmotionalAttribute::kEnthusiastic)};
  agent.Compose(request);
  agent.Compose(request);
  EXPECT_EQ(agent.stats().composed, 2u);
  EXPECT_EQ(agent.stats().by_case[0], 2u);
}

}  // namespace
}  // namespace spa::agents
