#include <cmath>
#include <set>

#include "campaign/behavior.h"
#include "campaign/course.h"
#include "campaign/population.h"
#include "campaign/redemption.h"
#include "campaign/runner.h"
#include "gtest/gtest.h"

namespace spa::campaign {
namespace {

TEST(CourseCatalogTest, GeneratesValidCourses) {
  const auto attrs = sum::AttributeCatalog::EmagisterDefault();
  const CourseCatalog catalog = CourseCatalog::Generate(50, attrs, 42);
  EXPECT_EQ(catalog.size(), 50u);
  for (const Course& course : catalog.courses()) {
    EXPECT_GE(course.topic, 0);
    EXPECT_LT(course.topic, static_cast<int32_t>(kNumTopics));
    EXPECT_GE(course.sellable_attributes.size(), 2u);
    for (double r : course.emotion_profile) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
    // Sellable attributes are valid and the first two are emotional.
    for (size_t s = 0; s < 2; ++s) {
      const auto& def =
          attrs.def(course.sellable_attributes[s]);
      EXPECT_EQ(def.kind, sum::AttributeKind::kEmotional);
    }
    EXPECT_FALSE(course.name.empty());
  }
}

TEST(CourseCatalogTest, DeterministicAndLookup) {
  const auto attrs = sum::AttributeCatalog::EmagisterDefault();
  const CourseCatalog a = CourseCatalog::Generate(20, attrs, 7);
  const CourseCatalog b = CourseCatalog::Generate(20, attrs, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.course(i).name, b.course(i).name);
    EXPECT_EQ(a.course(i).topic, b.course(i).topic);
  }
  EXPECT_TRUE(a.ById(0).ok());
  EXPECT_FALSE(a.ById(-1).ok());
  EXPECT_FALSE(a.ById(20).ok());
}

TEST(CourseCatalogTest, ContentFeaturesEncodeTopicOneHot) {
  const auto attrs = sum::AttributeCatalog::EmagisterDefault();
  const CourseCatalog catalog = CourseCatalog::Generate(5, attrs, 3);
  const Course& course = catalog.course(0);
  const ml::SparseVector features = catalog.ContentFeatures(course);
  ASSERT_GE(features.nnz(), 1u);
  EXPECT_EQ(features.index(0), course.topic);
  EXPECT_DOUBLE_EQ(features.value(0), 1.0);
}

TEST(PopulationTest, DeterministicGroundTruth) {
  const PopulationModel model({42, 0.35, 1.0, 0.25});
  const LatentUser a = model.UserAt(123);
  const LatentUser b = model.UserAt(123);
  EXPECT_EQ(a.emotional, b.emotional);
  EXPECT_EQ(a.topics, b.topics);
  EXPECT_DOUBLE_EQ(a.base_propensity, b.base_propensity);
  const LatentUser c = model.UserAt(124);
  EXPECT_NE(a.emotional, c.emotional);
}

TEST(PopulationTest, LatentsInRange) {
  const PopulationModel model({7, 0.35, 1.0, 0.25});
  for (sum::UserId u = 0; u < 200; ++u) {
    const LatentUser user = model.UserAt(u);
    for (double s : user.emotional) {
      ASSERT_GE(s, 0.0);
      ASSERT_LE(s, 1.0);
    }
    ASSERT_GE(user.base_propensity, 0.0);
    ASSERT_LE(user.base_propensity, 0.95);
    ASSERT_GE(user.open_rate, 0.05);
    ASSERT_LE(user.open_rate, 0.95);
    ASSERT_GE(user.eit_answer_prob, 0.0);
    ASSERT_LE(user.eit_answer_prob, 1.0);
  }
}

TEST(PopulationTest, InitializeSumSkipsEmotionalAttributes) {
  const auto catalog = sum::AttributeCatalog::EmagisterDefault();
  const PopulationModel population({42, 0.35, 1.0, 0.25});
  const LatentUser latent = population.UserAt(5);
  sum::SmartUserModel model(5, &catalog);
  population.InitializeSum(latent, &model);
  // Emotional values/sensibilities untouched.
  for (eit::EmotionalAttribute e : eit::AllEmotionalAttributes()) {
    EXPECT_DOUBLE_EQ(model.value(catalog.EmotionalId(e)), 0.0);
    EXPECT_DOUBLE_EQ(model.sensibility(catalog.EmotionalId(e)), 0.0);
  }
  // Demographics copied.
  EXPECT_DOUBLE_EQ(model.value(catalog.IdOf("age_norm").value()),
                   latent.age_norm);
}

TEST(ResponseModelTest, AlignmentReflectsLatentSensibility) {
  const auto catalog = sum::AttributeCatalog::EmagisterDefault();
  const ResponseModel responses;
  LatentUser user;
  user.emotional[static_cast<size_t>(
      eit::EmotionalAttribute::kHopeful)] = 0.9;

  const auto hopeful =
      catalog.EmotionalId(eit::EmotionalAttribute::kHopeful);
  const auto shy = catalog.EmotionalId(eit::EmotionalAttribute::kShy);
  EXPECT_DOUBLE_EQ(
      responses.ArgumentAlignment(user, hopeful, catalog), 0.9);
  EXPECT_LT(responses.ArgumentAlignment(user, shy, catalog), 0.9);
  EXPECT_DOUBLE_EQ(responses.ArgumentAlignment(user, -1, catalog), 0.0);
}

TEST(ResponseModelTest, GoodArgumentLiftsClickProbability) {
  const ResponseModel responses;
  LatentUser user;
  user.base_propensity = 0.1;
  Course course;
  course.topic = 0;
  user.topics[0] = 0.5;
  const double without =
      responses.ClickProbability(user, course, 0.0);
  const double with = responses.ClickProbability(user, course, 0.9);
  EXPECT_GT(with, without * 1.5);
}

TEST(ResponseModelTest, FunnelIsMonotone) {
  const auto catalog = sum::AttributeCatalog::EmagisterDefault();
  const ResponseModel responses;
  Rng rng(42);
  LatentUser user;
  user.open_rate = 0.8;
  user.base_propensity = 0.3;
  Course course;
  size_t opens = 0, clicks = 0, transactions = 0;
  for (int i = 0; i < 5000; ++i) {
    const ContactOutcome outcome = responses.Sample(
        &rng, user, course, -1, catalog, Channel::kPush);
    if (outcome.opened) ++opens;
    if (outcome.clicked) ++clicks;
    if (outcome.transacted) ++transactions;
    // Funnel invariants.
    ASSERT_FALSE(outcome.clicked && !outcome.opened);
    ASSERT_FALSE(outcome.transacted && !outcome.clicked);
  }
  EXPECT_GT(opens, clicks);
  EXPECT_GT(clicks, transactions);
  EXPECT_GT(transactions, 0u);
}

// Property sweeps: every funnel probability must be monotone in each
// of its drivers — the structural assumption behind the Fig. 6
// calibration.
class ResponseMonotonicitySweep
    : public ::testing::TestWithParam<double> {};

TEST_P(ResponseMonotonicitySweep, ClickMonotoneInPropensity) {
  const ResponseModel responses;
  Course course;
  LatentUser lo, hi;
  lo.base_propensity = GetParam() * 0.5;
  hi.base_propensity = GetParam();
  EXPECT_LE(responses.ClickProbability(lo, course, 0.3),
            responses.ClickProbability(hi, course, 0.3));
}

TEST_P(ResponseMonotonicitySweep, ClickMonotoneInAlignment) {
  const ResponseModel responses;
  Course course;
  LatentUser user;
  user.base_propensity = 0.2;
  EXPECT_LE(responses.ClickProbability(user, course, GetParam() * 0.5),
            responses.ClickProbability(user, course, GetParam()));
}

TEST_P(ResponseMonotonicitySweep, ClickMonotoneInTopicMatch) {
  const ResponseModel responses;
  Course course;
  course.topic = 2;
  LatentUser lo, hi;
  lo.topics[2] = GetParam() * 0.5;
  hi.topics[2] = GetParam();
  EXPECT_LE(responses.ClickProbability(lo, course, 0.0),
            responses.ClickProbability(hi, course, 0.0));
}

TEST_P(ResponseMonotonicitySweep, TransactionMonotoneInPropensity) {
  const ResponseModel responses;
  Course course;
  LatentUser lo, hi;
  lo.base_propensity = GetParam() * 0.5;
  hi.base_propensity = GetParam();
  EXPECT_LE(responses.TransactionProbability(lo, course, 0.2),
            responses.TransactionProbability(hi, course, 0.2));
}

TEST_P(ResponseMonotonicitySweep, ProbabilitiesStayInUnitInterval) {
  const ResponseModel responses;
  Course course;
  LatentUser user;
  user.base_propensity = GetParam();
  user.open_rate = GetParam();
  user.topics[0] = GetParam();
  for (double alignment : {0.0, 0.5, 1.0}) {
    for (double p :
         {responses.OpenProbability(user, Channel::kPush),
          responses.OpenProbability(user, Channel::kNewsletter),
          responses.ClickProbability(user, course, alignment),
          responses.TransactionProbability(user, course, alignment)}) {
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, ResponseMonotonicitySweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 0.95));

TEST(ResponseModelTest, NewsletterOpensLessThanPush) {
  const ResponseModel responses;
  LatentUser user;
  user.open_rate = 0.6;
  EXPECT_GT(responses.OpenProbability(user, Channel::kPush),
            responses.OpenProbability(user, Channel::kNewsletter));
}

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest()
      : population_({42, 0.5, 1.0, 0.25}),
        courses_(CourseCatalog::Generate(
            40, sum::AttributeCatalog::EmagisterDefault(), 42)) {
    core::SpaConfig config;
    config.eit_questions_per_section = 2;
    spa_ = std::make_unique<core::Spa>(config);
    RunnerConfig runner_config;
    runner_config.bootstrap_events_per_user = 6;
    runner_ = std::make_unique<CampaignRunner>(
        spa_.get(), &population_, &courses_, &responses_,
        runner_config);
    runner_->RegisterCourses();
    for (sum::UserId u = 0; u < 400; ++u) candidates_.push_back(u);
    runner_->BootstrapUsers(candidates_);
  }

  PopulationModel population_;
  CourseCatalog courses_;
  ResponseModel responses_;
  std::unique_ptr<core::Spa> spa_;
  std::unique_ptr<CampaignRunner> runner_;
  std::vector<sum::UserId> candidates_;
};

TEST_F(RunnerTest, BootstrapCreatesSumsAndHistory) {
  EXPECT_EQ(spa_->sum_service()->size(), 400u);
  // Bootstrap published through the versioned mutation API.
  EXPECT_GT(spa_->sum_service()->version(), 0u);
  EXPECT_GT(spa_->lifelog()->total_events(), 400u);
}

TEST_F(RunnerTest, RunCampaignProducesConsistentOutcome) {
  CampaignSpec spec;
  spec.id = 1;
  spec.target_count = 200;
  spec.featured_courses = {0, 1, 2, 3, 4};
  const CampaignOutcome outcome =
      runner_->RunCampaign(spec, candidates_);

  EXPECT_EQ(outcome.targeted, 200u);
  EXPECT_EQ(outcome.scores.size(), 200u);
  EXPECT_EQ(outcome.labels.size(), 200u);
  EXPECT_GE(outcome.opened, outcome.clicked);
  EXPECT_GE(outcome.clicked, outcome.transactions);
  EXPECT_EQ(outcome.useful_impacts,
            static_cast<size_t>(std::count(outcome.labels.begin(),
                                           outcome.labels.end(), 1)));
  uint64_t case_total = 0;
  for (uint64_t c : outcome.message_cases) case_total += c;
  EXPECT_EQ(case_total, 200u);
  EXPECT_GT(outcome.eit_questions_answered, 0u);
  EXPECT_EQ(runner_->history_size(), 200u);
}

TEST_F(RunnerTest, CampaignsTrainTheModel) {
  CampaignSpec spec;
  spec.id = 1;
  spec.target_count = 300;
  spec.featured_courses = {0, 1, 2, 3, 4};
  runner_->RunCampaign(spec, candidates_);
  // After one decent-sized campaign both classes almost surely exist.
  EXPECT_TRUE(spa_->smart_component()->trained());
}

TEST_F(RunnerTest, PropensityTargetingSelectsTopUsers) {
  CampaignSpec first;
  first.id = 1;
  first.target_count = 300;
  first.featured_courses = {0, 1, 2, 3, 4};
  runner_->RunCampaign(first, candidates_);
  ASSERT_TRUE(spa_->smart_component()->trained());

  CampaignSpec targeted;
  targeted.id = 2;
  targeted.target_count = 50;
  targeted.featured_courses = {5, 6, 7};
  targeted.targeting = TargetingMode::kPropensity;
  const CampaignOutcome outcome =
      runner_->RunCampaign(targeted, candidates_);
  EXPECT_EQ(outcome.targeted, 50u);
  // Scores come sorted descending under propensity targeting.
  for (size_t i = 1; i < outcome.scores.size(); ++i) {
    EXPECT_GE(outcome.scores[i - 1], outcome.scores[i]);
  }
}

TEST_F(RunnerTest, DefaultScheduleMatchesPaperDesign) {
  const auto schedule =
      runner_->DefaultSchedule(1000, 5, TargetingMode::kRandom);
  ASSERT_EQ(schedule.size(), 10u);
  size_t newsletters = 0;
  std::set<int> ids;
  for (const CampaignSpec& spec : schedule) {
    if (spec.channel == Channel::kNewsletter) ++newsletters;
    ids.insert(spec.id);
    EXPECT_EQ(spec.target_count, 1000u);
    EXPECT_EQ(spec.featured_courses.size(), 5u);
  }
  EXPECT_EQ(newsletters, 2u);  // 8 Push + 2 newsletters
  EXPECT_EQ(ids.size(), 10u);
}

TEST(RedemptionTest, ComputesCurveAndImprovement) {
  // Synthetic outcome: scores perfectly separate responders.
  CampaignOutcome outcome;
  outcome.campaign_id = 1;
  for (int i = 0; i < 100; ++i) {
    const bool responder = i < 20;
    outcome.scores.push_back(responder ? 1.0 - i * 0.001
                                       : 0.5 - i * 0.001);
    outcome.labels.push_back(responder ? 1 : -1);
    if (responder) {
      ++outcome.useful_impacts;
      ++outcome.transactions;
    }
  }
  outcome.targeted = 100;

  const RedemptionReport report = ComputeRedemption({outcome}, 10);
  EXPECT_DOUBLE_EQ(report.base_rate, 0.2);
  // All 20 responders are in the top 40 slots.
  EXPECT_DOUBLE_EQ(report.captured_at_40, 1.0);
  EXPECT_DOUBLE_EQ(report.precision_at_40, 0.5);
  EXPECT_NEAR(report.redemption_improvement, 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(report.auc, 1.0);
  EXPECT_EQ(report.total_targeted, 100u);
  EXPECT_EQ(report.total_useful_impacts, 20u);
}

TEST(RedemptionTest, EmptyOutcomesSafe) {
  const RedemptionReport report = ComputeRedemption({});
  EXPECT_EQ(report.total_targeted, 0u);
  EXPECT_TRUE(report.curve.empty());
}

TEST(RedemptionTest, PredictiveScoreRows) {
  CampaignOutcome a;
  a.campaign_id = 1;
  a.targeted = 100;
  a.useful_impacts = 21;
  CampaignOutcome b;
  b.campaign_id = 2;
  b.channel = Channel::kNewsletter;
  b.targeted = 200;
  b.useful_impacts = 30;
  const auto rows = PredictiveScores({a, b});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].predictive_score, 0.21);
  EXPECT_DOUBLE_EQ(rows[1].predictive_score, 0.15);
  EXPECT_EQ(rows[1].channel, Channel::kNewsletter);
}

}  // namespace
}  // namespace spa::campaign
