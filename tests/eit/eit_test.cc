#include <cmath>
#include <set>

#include "eit/emotion.h"
#include "eit/four_branch.h"
#include "eit/gradual_eit.h"
#include "eit/question_bank.h"
#include "gtest/gtest.h"

namespace spa::eit {
namespace {

TEST(EmotionTest, TenAttributesWithPaperNames) {
  const auto attrs = AllEmotionalAttributes();
  EXPECT_EQ(attrs.size(), 10u);
  EXPECT_EQ(EmotionalAttributeName(EmotionalAttribute::kEnthusiastic),
            "enthusiastic");
  EXPECT_EQ(EmotionalAttributeName(EmotionalAttribute::kApathetic),
            "apathetic");
  std::set<std::string_view> names;
  for (auto a : attrs) names.insert(EmotionalAttributeName(a));
  EXPECT_EQ(names.size(), 10u);  // all distinct
}

TEST(EmotionTest, ValencesSplitSixPositiveFourNegative) {
  size_t positive = 0, negative = 0;
  for (auto a : AllEmotionalAttributes()) {
    (ValenceOf(a) == Valence::kPositive ? positive : negative) += 1;
  }
  EXPECT_EQ(positive, 6u);
  EXPECT_EQ(negative, 4u);
  EXPECT_EQ(ValenceOf(EmotionalAttribute::kHopeful), Valence::kPositive);
  EXPECT_EQ(ValenceOf(EmotionalAttribute::kFrightened),
            Valence::kNegative);
  EXPECT_DOUBLE_EQ(ValenceSign(EmotionalAttribute::kLively), 1.0);
  EXPECT_DOUBLE_EQ(ValenceSign(EmotionalAttribute::kShy), -1.0);
}

TEST(EmotionTest, ParseRoundTrip) {
  for (auto a : AllEmotionalAttributes()) {
    EmotionalAttribute parsed;
    ASSERT_TRUE(
        ParseEmotionalAttribute(EmotionalAttributeName(a), &parsed));
    EXPECT_EQ(parsed, a);
  }
  EmotionalAttribute unused;
  EXPECT_FALSE(ParseEmotionalAttribute("bogus", &unused));
}

TEST(FourBranchTest, TableOneStructure) {
  EXPECT_EQ(kNumBranches, 4u);
  EXPECT_EQ(TaskSections().size(), 8u);
  // Two sections per branch.
  std::array<int, kNumBranches> per_branch{};
  for (const TaskSection& s : TaskSections()) {
    ++per_branch[static_cast<size_t>(s.branch)];
  }
  for (int count : per_branch) EXPECT_EQ(count, 2);
}

TEST(FourBranchTest, AreaGrouping) {
  EXPECT_EQ(AreaOf(Branch::kPerceiving), Area::kExperiential);
  EXPECT_EQ(AreaOf(Branch::kFacilitating), Area::kExperiential);
  EXPECT_EQ(AreaOf(Branch::kUnderstanding), Area::kStrategic);
  EXPECT_EQ(AreaOf(Branch::kManaging), Area::kStrategic);
}

TEST(FourBranchTest, NamesAndDescriptionsNonEmpty) {
  for (Branch b : AllBranches()) {
    EXPECT_FALSE(BranchName(b).empty());
    EXPECT_FALSE(BranchDescription(b).empty());
  }
  EXPECT_EQ(AreaName(Area::kExperiential), "Experiential");
  EXPECT_EQ(AreaName(Area::kStrategic), "Strategic");
}

TEST(QuestionBankTest, GeneratesRequestedStructure) {
  const QuestionBank bank = QuestionBank::Generate(5, 42);
  EXPECT_EQ(bank.size(), 40u);  // 8 sections x 5
  for (Branch b : AllBranches()) {
    EXPECT_EQ(bank.BranchItems(b).size(), 10u);  // 2 sections x 5
  }
}

TEST(QuestionBankTest, ConsensusIsDistribution) {
  const QuestionBank bank = QuestionBank::Generate(10, 7);
  for (size_t i = 0; i < bank.size(); ++i) {
    const EitQuestion& q = bank.question(i);
    double total = 0.0;
    for (double c : q.consensus) {
      EXPECT_GE(c, 0.0);
      total += c;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_FALSE(q.impacts.empty());
    EXPECT_LE(q.impacts.size(), 3u);
    EXPECT_FALSE(q.text.empty());
  }
}

TEST(QuestionBankTest, DeterministicForSeed) {
  const QuestionBank a = QuestionBank::Generate(3, 99);
  const QuestionBank b = QuestionBank::Generate(3, 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.question(i).text, b.question(i).text);
    EXPECT_EQ(a.question(i).consensus, b.question(i).consensus);
  }
}

TEST(QuestionBankTest, ByIdBounds) {
  const QuestionBank bank = QuestionBank::Generate(2, 1);
  EXPECT_TRUE(bank.ById(0).ok());
  EXPECT_TRUE(bank.ById(static_cast<int32_t>(bank.size()) - 1).ok());
  EXPECT_FALSE(bank.ById(-1).ok());
  EXPECT_FALSE(bank.ById(static_cast<int32_t>(bank.size())).ok());
}

TEST(GradualEitTest, RoundRobinCoversAllBranches) {
  const QuestionBank bank = QuestionBank::Generate(4, 42);
  const GradualEit eit(&bank);
  UserEitState state(bank.size());
  std::set<Branch> touched;
  for (int i = 0; i < 4; ++i) {
    const auto qid = eit.NextQuestionFor(state);
    ASSERT_TRUE(qid.ok());
    const EitQuestion& q = *bank.ById(qid.value()).value();
    touched.insert(q.branch);
    ASSERT_TRUE(eit.RecordAnswer(&state, qid.value(), 0).ok());
  }
  EXPECT_EQ(touched.size(), 4u);  // one answer per branch in 4 contacts
}

TEST(GradualEitTest, RejectsDuplicateAnswers) {
  const QuestionBank bank = QuestionBank::Generate(2, 42);
  const GradualEit eit(&bank);
  UserEitState state(bank.size());
  ASSERT_TRUE(eit.RecordAnswer(&state, 0, 1).ok());
  EXPECT_EQ(eit.RecordAnswer(&state, 0, 2).status().code(),
            spa::StatusCode::kAlreadyExists);
}

TEST(GradualEitTest, RejectsBadOptionAndId) {
  const QuestionBank bank = QuestionBank::Generate(2, 42);
  const GradualEit eit(&bank);
  UserEitState state(bank.size());
  EXPECT_FALSE(eit.RecordAnswer(&state, 0, kOptionsPerQuestion).ok());
  EXPECT_FALSE(eit.RecordAnswer(&state, 9999, 0).ok());
}

TEST(GradualEitTest, BankExhaustionReported) {
  const QuestionBank bank = QuestionBank::Generate(1, 42);  // 8 items
  const GradualEit eit(&bank);
  UserEitState state(bank.size());
  for (size_t i = 0; i < bank.size(); ++i) {
    const auto qid = eit.NextQuestionFor(state);
    ASSERT_TRUE(qid.ok());
    ASSERT_TRUE(eit.RecordAnswer(&state, qid.value(), 0).ok());
  }
  EXPECT_EQ(eit.NextQuestionFor(state).status().code(),
            spa::StatusCode::kNotFound);
}

TEST(GradualEitTest, ModalAnswerMaximizesConsensusScore) {
  const QuestionBank bank = QuestionBank::Generate(3, 42);
  const GradualEit eit(&bank);
  const EitQuestion& q = bank.question(0);
  UserEitState modal_state(bank.size());
  UserEitState other_state(bank.size());
  const size_t modal = q.ModalOption();
  const size_t other = (modal + 1) % kOptionsPerQuestion;
  const auto modal_result =
      eit.RecordAnswer(&modal_state, q.id, modal);
  const auto other_result =
      eit.RecordAnswer(&other_state, q.id, other);
  ASSERT_TRUE(modal_result.ok());
  ASSERT_TRUE(other_result.ok());
  EXPECT_GT(modal_result.value().consensus_score,
            other_result.value().consensus_score);
}

TEST(GradualEitTest, ActivationsScaleWithConsensus) {
  const QuestionBank bank = QuestionBank::Generate(3, 42);
  const GradualEit eit(&bank);
  const EitQuestion& q = bank.question(5);
  UserEitState state(bank.size());
  const auto result = eit.RecordAnswer(&state, q.id, q.ModalOption());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().activations.size(), q.impacts.size());
  for (size_t i = 0; i < q.impacts.size(); ++i) {
    EXPECT_EQ(result.value().activations[i].attribute,
              q.impacts[i].attribute);
    EXPECT_NEAR(result.value().activations[i].weight,
                q.impacts[i].weight * result.value().consensus_score,
                1e-12);
  }
}

TEST(GradualEitTest, ScoresAggregateByBranchAndArea) {
  const QuestionBank bank = QuestionBank::Generate(2, 42);
  const GradualEit eit(&bank);
  UserEitState state(bank.size());
  // Answer everything with the modal option.
  while (true) {
    const auto qid = eit.NextQuestionFor(state);
    if (!qid.ok()) break;
    const EitQuestion& q = *bank.ById(qid.value()).value();
    ASSERT_TRUE(
        eit.RecordAnswer(&state, qid.value(), q.ModalOption()).ok());
  }
  const EitScores scores = eit.ScoresFor(state);
  EXPECT_EQ(scores.answered, bank.size());
  for (size_t b = 0; b < kNumBranches; ++b) {
    EXPECT_GT(scores.branch_score[b], 0.0);
    EXPECT_LE(scores.branch_score[b], 1.0);
    EXPECT_EQ(scores.branch_answered[b], 4u);
  }
  // Areas are means of their branches.
  EXPECT_NEAR(scores.area_score[0],
              (scores.branch_score[0] + scores.branch_score[1]) / 2.0,
              1e-12);
  EXPECT_NEAR(scores.area_score[1],
              (scores.branch_score[2] + scores.branch_score[3]) / 2.0,
              1e-12);
  EXPECT_GT(scores.total, 0.0);
  EXPECT_TRUE(std::isfinite(scores.Standardized()));
}

TEST(GradualEitTest, EmptyStateScoresAreZero) {
  const QuestionBank bank = QuestionBank::Generate(2, 42);
  const GradualEit eit(&bank);
  UserEitState state(bank.size());
  const EitScores scores = eit.ScoresFor(state);
  EXPECT_EQ(scores.answered, 0u);
  EXPECT_DOUBLE_EQ(scores.total, 0.0);
}

// Property sweep: consensus scores always within [0,1] regardless of
// option chosen.
class EitOptionSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(EitOptionSweep, ConsensusScoreInRange) {
  const QuestionBank bank = QuestionBank::Generate(4, 17);
  const GradualEit eit(&bank);
  UserEitState state(bank.size());
  for (size_t qi = 0; qi < bank.size(); ++qi) {
    UserEitState fresh(bank.size());
    const auto result = eit.RecordAnswer(
        &fresh, static_cast<int32_t>(qi), GetParam());
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().consensus_score, 0.0);
    EXPECT_LE(result.value().consensus_score, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Options, EitOptionSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace spa::eit
