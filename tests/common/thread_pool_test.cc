#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace spa {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ThreadCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, PendingTasksReportsQueueDepth) {
  ThreadPool pool(1);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool started = false;
  bool release = false;
  // Occupy the single worker behind a gate, then queue two more tasks:
  // the queue depth is exactly 2 until the gate opens.
  pool.Submit([&] {
    {
      std::lock_guard<std::mutex> lock(gate_mu);
      started = true;
    }
    gate_cv.notify_all();
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return started; });
  }
  pool.Submit([] {});
  pool.Submit([] {});
  EXPECT_EQ(pool.pending_tasks(), 2u);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  pool.Wait();
  EXPECT_EQ(pool.pending_tasks(), 0u);
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<int> hits(n, 0);
  ParallelFor(&pool, n, [&hits](size_t i) { hits[i] += 1; });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, SumMatchesSerial) {
  ThreadPool pool(8);
  const size_t n = 100000;
  std::vector<int64_t> values(n);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<int64_t> sum{0};
  ParallelFor(&pool, n, [&](size_t i) { sum.fetch_add(values[i]); });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(n) * (n - 1) / 2);
}

TEST(ParallelForTest, ZeroElements) {
  ThreadPool pool(2);
  bool touched = false;
  ParallelFor(&pool, 0, [&touched](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, FewerElementsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  ParallelFor(&pool, 3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace spa
