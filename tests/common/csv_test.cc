#include "common/csv.h"

#include <sstream>

#include "gtest/gtest.h"

namespace spa {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter w(&out);
  w.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter w(&out);
  w.WriteRow({"a,b", "say \"hi\"", "line\nbreak", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\",plain\n");
}

TEST(CsvWriterTest, WriteCellsMixedTypes) {
  std::ostringstream out;
  CsvWriter w(&out);
  w.WriteCells("id", 42, 3);
  EXPECT_EQ(out.str(), "id,42,3\n");
}

TEST(CsvParseTest, SimpleLine) {
  const auto r = ParseCsvLine("a,b,c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParseTest, EmptyFieldsKept) {
  const auto r = ParseCsvLine("a,,c,");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(CsvParseTest, QuotedFieldWithDelimiter) {
  const auto r = ParseCsvLine("\"a,b\",c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvParseTest, EscapedQuotes) {
  const auto r = ParseCsvLine("\"say \"\"hi\"\"\",x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(CsvParseTest, ToleratesCarriageReturn) {
  const auto r = ParseCsvLine("a,b\r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvParseTest, UnterminatedQuoteFails) {
  const auto r = ParseCsvLine("\"abc");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParseTest, QuoteInsideUnquotedFieldFails) {
  const auto r = ParseCsvLine("ab\"c,d");
  EXPECT_FALSE(r.ok());
}

TEST(CsvParseTest, WholeDocument) {
  const auto r = ParseCsv("h1,h2\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_EQ(r.value()[0], (std::vector<std::string>{"h1", "h2"}));
  EXPECT_EQ(r.value()[2], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParseTest, DocumentWithoutTrailingNewline) {
  const auto r = ParseCsv("a,b\nc,d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(CsvRoundTripTest, WriteThenParse) {
  std::ostringstream out;
  CsvWriter w(&out);
  const std::vector<std::string> original = {"x,y", "\"quoted\"", "",
                                             "multi\nline", "simple"};
  w.WriteRow(original);
  // Note: embedded newline means ParseCsv would split rows; parse the
  // single line boundary-aware by reconstructing from the writer output
  // minus the final newline.
  std::string text = out.str();
  text.pop_back();
  const auto r = ParseCsvLine(text);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), original);
}

TEST(CsvParseTest, AlternateDelimiter) {
  const auto r = ParseCsvLine("a\tb\tc", '\t');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 3u);
}

}  // namespace
}  // namespace spa
