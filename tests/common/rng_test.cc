#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace spa {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7, 3);
  Rng b(7, 3);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.U64(), b.U64());
  }
}

TEST(RngTest, DifferentStreamsDecorrelated) {
  Rng a(7, 0);
  Rng b(7, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.U64() == b.U64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(123);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, PoissonMean) {
  Rng rng(13);
  const int n = 50000;
  int64_t sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.0);
  EXPECT_NEAR(static_cast<double>(sum) / n, 3.0, 0.1);
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(17);
  const int64_t n = 1000;
  int64_t ones = 0;
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = rng.Zipf(n, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, n);
    if (v == 1) ++ones;
  }
  // Rank 1 must dominate: far more than the uniform 1/1000 share.
  EXPECT_GT(ones, 20000 / 100);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(23);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
}

// Property sweep: determinism and unit-interval containment across seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, DeterministicAcrossInstances) {
  Rng a(GetParam());
  Rng b(GetParam());
  for (int i = 0; i < 200; ++i) {
    ASSERT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST_P(RngSeedSweep, UniformStaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 31337ull,
                                           0xffffffffffffffffull));

}  // namespace
}  // namespace spa
