#include "common/frequency_map.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

// Property tests for the cache-tiering frequency map: randomized
// access streams replayed against a naive single-map reference must
// agree on every count, the live-key set, and the top-K ranking — at
// every shard count and across interleaved decay epochs. The
// concurrent suite runs under TSAN in CI (FrequencyMapTest is in the
// TSAN ctest regex).

namespace spa {
namespace {

/// The naive reference: one std::map, the same arithmetic.
class NaiveFrequency {
 public:
  explicit NaiveFrequency(double decay_factor, double min_count)
      : decay_factor_(decay_factor), min_count_(min_count) {}

  void Touch(uint64_t key, double amount) { counts_[key] += amount; }

  void Decay() {
    for (auto it = counts_.begin(); it != counts_.end();) {
      it->second *= decay_factor_;
      if (it->second < min_count_) {
        it = counts_.erase(it);
      } else {
        ++it;
      }
    }
  }

  double Count(uint64_t key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0.0 : it->second;
  }

  size_t size() const { return counts_.size(); }

  std::vector<std::pair<uint64_t, double>> TopK(size_t k) const {
    std::vector<std::pair<uint64_t, double>> entries(counts_.begin(),
                                                     counts_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (entries.size() > k) entries.resize(k);
    return entries;
  }

 private:
  double decay_factor_;
  double min_count_;
  std::map<uint64_t, double> counts_;
};

TEST(FrequencyMapTest, RandomStreamsMatchNaiveReferenceAtEveryShardCount) {
  for (const size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    for (uint32_t seed = 0; seed < 8; ++seed) {
      FrequencyMapConfig config;
      config.shards = shards;
      config.decay_factor = 0.5;
      config.min_count = 0.5;
      FrequencyMap map(config);
      NaiveFrequency naive(config.decay_factor, config.min_count);

      std::mt19937 rng(1234 + seed);
      // Zipf-ish key universe: small ids are hot.
      std::geometric_distribution<uint64_t> key_dist(0.05);
      std::uniform_int_distribution<int> op_dist(0, 99);
      uint64_t decays = 0;
      for (int step = 0; step < 5000; ++step) {
        const int op = op_dist(rng);
        if (op < 90) {
          // Integral amounts: FP accumulation is exact, so the sharded
          // map and the naive fold agree bitwise.
          const uint64_t key = key_dist(rng);
          const double amount = 1.0 + static_cast<double>(op % 3);
          map.Touch(key, amount);
          naive.Touch(key, amount);
        } else if (op < 95) {
          map.Decay();
          naive.Decay();
          ++decays;
        } else {
          // Spot-check a random key mid-stream.
          const uint64_t key = key_dist(rng);
          ASSERT_DOUBLE_EQ(map.Count(key), naive.Count(key))
              << "shards=" << shards << " seed=" << seed
              << " step=" << step;
        }
      }

      EXPECT_EQ(map.size(), naive.size())
          << "shards=" << shards << " seed=" << seed;
      EXPECT_EQ(map.decay_epochs(), decays);
      // Every surviving key agrees exactly; the ranking (a total order
      // on (count desc, key asc)) is therefore shard-count-invariant.
      const auto got = map.TopK(25);
      const auto want = naive.TopK(25);
      ASSERT_EQ(got.size(), want.size())
          << "shards=" << shards << " seed=" << seed;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, want[i].first) << "rank " << i;
        EXPECT_DOUBLE_EQ(got[i].second, want[i].second) << "rank " << i;
      }
    }
  }
}

TEST(FrequencyMapTest, DecayHalvesCountsAndEvictsBelowMinCount) {
  FrequencyMapConfig config;
  config.shards = 4;
  config.decay_factor = 0.5;
  config.min_count = 0.5;
  FrequencyMap map(config);
  map.Touch(1, 4.0);  // survives two decays: 4 -> 2 -> 1
  map.Touch(2, 1.0);  // gone after one: 0.5 < min? no: 0.5 >= 0.5 stays
  ASSERT_EQ(map.size(), 2u);

  map.Decay();
  EXPECT_DOUBLE_EQ(map.Count(1), 2.0);
  EXPECT_DOUBLE_EQ(map.Count(2), 0.5);  // == min_count: retained
  EXPECT_EQ(map.size(), 2u);

  map.Decay();
  EXPECT_DOUBLE_EQ(map.Count(1), 1.0);
  EXPECT_DOUBLE_EQ(map.Count(2), 0.0);  // 0.25 < min_count: erased
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.decay_epochs(), 2u);

  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_DOUBLE_EQ(map.Count(1), 0.0);
}

TEST(FrequencyMapTest, TopKOrdersByCountThenKeyAndTruncates) {
  FrequencyMap map(FrequencyMapConfig{/*shards=*/3, 0.5, 0.5});
  map.Touch(10, 5.0);
  map.Touch(7, 5.0);   // ties with 10: lower key ranks first
  map.Touch(99, 9.0);
  map.Touch(1, 1.0);
  const auto top = map.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 99u);
  EXPECT_EQ(top[1].first, 7u);
  EXPECT_EQ(top[2].first, 10u);
  EXPECT_EQ(map.TopK(100).size(), 4u);
  EXPECT_TRUE(map.TopK(0).empty());
}

TEST(FrequencyMapTest, StatsCountTouchesEpochsAndEntries) {
  FrequencyMap map(FrequencyMapConfig{/*shards=*/2, 0.5, 0.5});
  map.Touch(1);
  map.Touch(1);
  map.Touch(2);
  map.Decay();
  const FrequencyMapStats stats = map.stats();
  EXPECT_EQ(stats.touches, 3u);
  EXPECT_EQ(stats.decay_epochs, 1u);
  EXPECT_EQ(stats.entries, 2u);  // 1.0 and 0.5 both survive at 0.5
}

// TSAN target: concurrent touches on a shared hot set, racing Decay
// and read sweeps. Integral touch totals are order-independent, so
// the final counts are exact despite the concurrency.
TEST(FrequencyMapTest, TsanConcurrentTouchDecayAndSweep) {
  FrequencyMapConfig config;
  config.shards = 8;
  config.decay_factor = 0.5;
  config.min_count = 0.25;
  FrequencyMap map(config);

  constexpr int kThreads = 4;
  constexpr int kTouchesPerThread = 2000;
  constexpr uint64_t kKeys = 64;
  std::atomic<bool> stop{false};

  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)map.size();
      (void)map.TopK(8);
      (void)map.Count(3);
      (void)map.stats();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> touchers;
  touchers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    touchers.emplace_back([&, t] {
      std::mt19937 rng(77 + t);
      std::uniform_int_distribution<uint64_t> key_dist(0, kKeys - 1);
      for (int i = 0; i < kTouchesPerThread; ++i) {
        map.Touch(key_dist(rng));
      }
    });
  }
  for (std::thread& t : touchers) t.join();
  // One quiescent decay epoch while the sweeper still reads.
  map.Decay();
  stop.store(true, std::memory_order_relaxed);
  sweeper.join();

  // Conservation: total decayed mass == (all touches) * decay_factor,
  // since every count was above min_count before the single decay.
  double total = 0.0;
  for (const auto& [key, count] : map.TopK(kKeys)) {
    (void)key;
    total += count;
  }
  EXPECT_DOUBLE_EQ(total, kThreads * kTouchesPerThread * 0.5);
  EXPECT_EQ(map.stats().touches,
            static_cast<uint64_t>(kThreads) * kTouchesPerThread);
}

}  // namespace
}  // namespace spa
