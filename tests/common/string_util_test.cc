#include "common/string_util.h"

#include "gtest/gtest.h"

namespace spa {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split(",a,,", ','),
            (std::vector<std::string>{"", "a", "", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(ToLowerTest, Ascii) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
}

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(WithThousandsSepTest, Values) {
  EXPECT_EQ(WithThousandsSep(0), "0");
  EXPECT_EQ(WithThousandsSep(999), "999");
  EXPECT_EQ(WithThousandsSep(1000), "1,000");
  EXPECT_EQ(WithThousandsSep(1340432), "1,340,432");
  EXPECT_EQ(WithThousandsSep(3162069), "3,162,069");
  EXPECT_EQ(WithThousandsSep(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace spa
