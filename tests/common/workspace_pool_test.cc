#include "common/workspace_pool.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"

namespace spa {
namespace {

TEST(WorkspacePoolTest, AcquireReturnsPageAlignedPageMultiples) {
  WorkspacePool pool;
  for (const size_t bytes : {size_t{1}, size_t{4096}, size_t{4097},
                             size_t{70000}, size_t{1} << 20}) {
    WorkspaceBlock block = pool.Acquire(bytes);
    ASSERT_NE(block.data, nullptr);
    EXPECT_GE(block.capacity, bytes);
    EXPECT_EQ(block.capacity % WorkspacePool::kPageBytes, 0u);
    // Power-of-two page count.
    const size_t pages = block.capacity / WorkspacePool::kPageBytes;
    EXPECT_EQ(pages & (pages - 1), 0u) << bytes;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(block.data) %
                  WorkspacePool::kPageBytes,
              0u);
    // The block is writable end to end.
    std::memset(block.data, 0xab, block.capacity);
    pool.Release(block);
  }
}

TEST(WorkspacePoolTest, ReleaseThenAcquireReusesTheBlock) {
  WorkspacePool pool;
  WorkspaceBlock first = pool.Acquire(10000);
  void* data = first.data;
  pool.Release(first);
  WorkspaceBlock second = pool.Acquire(10000);
  EXPECT_EQ(second.data, data);
  const WorkspacePoolStats stats = pool.stats();
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.outstanding, 1u);
  pool.Release(second);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(WorkspacePoolTest, DistinctSizeClassesDoNotMix) {
  WorkspacePool pool;
  WorkspaceBlock small = pool.Acquire(100);
  WorkspaceBlock large = pool.Acquire(100000);
  EXPECT_LT(small.capacity, large.capacity);
  pool.Release(small);
  // A large request must not be satisfied by the freed small block.
  WorkspaceBlock again = pool.Acquire(100000);
  EXPECT_GE(again.capacity, 100000u);
  EXPECT_NE(again.data, small.data);
  pool.Release(large);
  pool.Release(again);
}

TEST(WorkspacePoolTest, ResidentBytesTracksDistinctAllocations) {
  WorkspacePool pool;
  std::vector<WorkspaceBlock> blocks;
  size_t expected = 0;
  for (int i = 0; i < 4; ++i) {
    blocks.push_back(pool.Acquire(5000));
    expected += blocks.back().capacity;
  }
  EXPECT_EQ(pool.stats().resident_bytes, expected);
  EXPECT_EQ(pool.stats().outstanding, 4u);
  for (WorkspaceBlock& block : blocks) pool.Release(block);
  // Resident bytes persist (the memory is cached, not freed).
  EXPECT_EQ(pool.stats().resident_bytes, expected);
  EXPECT_EQ(pool.stats().outstanding, 0u);
  // Warm steady state: further acquire/release cycles allocate nothing.
  for (int i = 0; i < 8; ++i) {
    WorkspaceBlock block = pool.Acquire(5000);
    pool.Release(block);
  }
  EXPECT_EQ(pool.stats().allocations, 4u);
}

}  // namespace
}  // namespace spa
