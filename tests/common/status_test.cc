#include "common/status.h"

#include <string>

#include "gtest/gtest.h"

namespace spa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  SPA_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(3).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> HalfIfEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterIfDivisible(int x) {
  SPA_ASSIGN_OR_RETURN(int half, HalfIfEven(x));
  SPA_ASSIGN_OR_RETURN(int quarter, HalfIfEven(half));
  return quarter;
}

TEST(StatusMacroTest, AssignOrReturn) {
  const Result<int> ok = QuarterIfDivisible(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  const Result<int> bad = QuarterIfDivisible(6);  // 6/2=3 is odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace spa
