#include "common/stats.h"

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace spa {
namespace {

TEST(StreamingStatsTest, EmptyDefaults) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, KnownValues) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, SingleValueVarianceZero) {
  StreamingStats s;
  s.Add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(StreamingStatsTest, MergeMatchesSequential) {
  Rng rng(7);
  StreamingStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  const double mean_before = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);

  StreamingStats c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.9), 7.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);    // bucket 0
  h.Add(9.99);   // bucket 9
  h.Add(-5.0);   // clamps to 0
  h.Add(15.0);   // clamps to 9
  h.Add(5.0);    // bucket 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.bucket(5), 1u);
}

TEST(HistogramTest, BucketBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(HistogramTest, AsciiRenderNonEmpty) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.Add(0.1);
  const std::string art = h.ToAscii();
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("100"), std::string::npos);
}

// ---- LogHistogram ----------------------------------------------------------

TEST(LogHistogramTest, BucketBoundariesAreGeometric) {
  // 1e-3 .. 1e0 at 4 buckets/decade: 3 decades -> 12 buckets, each a
  // factor of 10^(1/4) wide.
  LogHistogram h(1e-3, 1.0, 4);
  EXPECT_EQ(h.bucket_count(), 12u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 1e-3);
  const double ratio = std::pow(10.0, 0.25);
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_NEAR(h.bucket_hi(i) / h.bucket_lo(i), ratio, 1e-12)
        << "bucket " << i;
    if (i > 0) {
      EXPECT_NEAR(h.bucket_lo(i), h.bucket_hi(i - 1), 1e-15)
          << "bucket " << i;
    }
  }
  EXPECT_NEAR(h.bucket_hi(h.bucket_count() - 1), 1.0, 1e-12);
}

TEST(LogHistogramTest, ValuesLandInTheirBucket) {
  LogHistogram h(1e-3, 1.0, 4);
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    // Geometric bucket midpoint: unambiguous even at FP boundaries.
    h.Add(std::sqrt(h.bucket_lo(i) * h.bucket_hi(i)));
  }
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_EQ(h.bucket(i), 1u) << "bucket " << i;
  }
  EXPECT_EQ(h.total(), h.bucket_count());
}

TEST(LogHistogramTest, OutOfRangeClampsToEdgeBuckets) {
  LogHistogram h(1e-3, 1.0, 4);
  h.Add(0.0);     // below lo (and non-positive)
  h.Add(1e-9);    // below lo
  h.Add(-1.0);    // negative
  h.Add(std::numeric_limits<double>::quiet_NaN());
  h.Add(5.0);     // at/above hi
  h.Add(1e9);     // far above hi
  h.Add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bucket(0), 4u);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 3u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(LogHistogramTest, QuantileInterpolatesWithinBucket) {
  LogHistogram h(1e-3, 1.0, 4);
  // All mass in one bucket: every quantile must stay inside it.
  const size_t target = 5;
  const double mid =
      std::sqrt(h.bucket_lo(target) * h.bucket_hi(target));
  for (int i = 0; i < 1000; ++i) h.Add(mid);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double estimate = h.Quantile(q);
    EXPECT_GE(estimate, h.bucket_lo(target)) << "q=" << q;
    EXPECT_LE(estimate, h.bucket_hi(target) * (1 + 1e-12)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), h.Quantile(0.5));  // deterministic
}

TEST(LogHistogramTest, QuantileOrderingAcrossBuckets) {
  LogHistogram h(1e-3, 1.0, 8);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    h.Add(std::pow(10.0, rng.Uniform(-3.0, 0.0)));
  }
  const double p50 = h.Quantile(0.50);
  const double p95 = h.Quantile(0.95);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-uniform data: the median sits near sqrt(lo*hi) = ~0.0316,
  // within one bucket width (factor 10^(1/8) ~ 1.33).
  EXPECT_GT(p50, 0.0316 / 1.34);
  EXPECT_LT(p50, 0.0316 * 1.34);
}

TEST(LogHistogramTest, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LogHistogramTest, MergeMatchesCombinedRecording) {
  LogHistogram a(1e-3, 1.0, 4), b(1e-3, 1.0, 4), all(1e-3, 1.0, 4);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double v = std::pow(10.0, rng.Uniform(-3.5, 0.5));
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  ASSERT_EQ(a.bucket_count(), all.bucket_count());
  for (size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket(i), all.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.total(), all.total());
  EXPECT_DOUBLE_EQ(a.Quantile(0.95), all.Quantile(0.95));
}

TEST(LogHistogramTest, ResetZeroesEveryBucket) {
  LogHistogram h(1e-3, 1.0, 4);
  h.Add(0.002);
  h.Add(0.05);
  h.Add(0.9);
  ASSERT_EQ(h.total(), 3u);
  h.Reset();
  EXPECT_EQ(h.total(), 0u);
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_EQ(h.bucket(i), 0u) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  // The histogram keeps recording after a reset (the profiler's
  // per-epoch banks rely on this).
  h.Add(0.01);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_GT(h.Quantile(0.5), 0.0);
}

TEST(LogHistogramTest, CopySnapshotsCounts) {
  LogHistogram h(1e-3, 1.0, 4);
  h.Add(0.01);
  LogHistogram copy = h;
  h.Add(0.01);
  EXPECT_EQ(copy.total(), 1u);
  EXPECT_EQ(h.total(), 2u);
  copy = h;
  EXPECT_EQ(copy.total(), 2u);
}

TEST(LogHistogramTest, ConcurrentRecordingLosesNoCounts) {
  // The determinism contract: per-bucket counts equal the number of
  // Add calls no matter how recorder threads interleave (each Add is
  // one atomic fetch_add). Every thread records the same value set, so
  // the expected per-bucket counts are exact.
  LogHistogram h(1e-3, 1.0, 4);
  LogHistogram expected(1e-3, 1.0, 4);
  std::vector<double> values;
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    values.push_back(std::sqrt(h.bucket_lo(i) * h.bucket_hi(i)));
  }
  constexpr int kThreads = 8;
  constexpr int kRounds = 500;
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRounds; ++r) {
      for (double v : values) expected.Add(v);
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &values] {
      for (int r = 0; r < kRounds; ++r) {
        for (double v : values) h.Add(v);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_EQ(h.bucket(i), expected.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(h.total(), expected.total());
}

}  // namespace
}  // namespace spa
