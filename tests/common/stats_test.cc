#include "common/stats.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace spa {
namespace {

TEST(StreamingStatsTest, EmptyDefaults) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, KnownValues) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, SingleValueVarianceZero) {
  StreamingStats s;
  s.Add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(StreamingStatsTest, MergeMatchesSequential) {
  Rng rng(7);
  StreamingStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  const double mean_before = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);

  StreamingStats c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.9), 7.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);    // bucket 0
  h.Add(9.99);   // bucket 9
  h.Add(-5.0);   // clamps to 0
  h.Add(15.0);   // clamps to 9
  h.Add(5.0);    // bucket 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.bucket(5), 1u);
}

TEST(HistogramTest, BucketBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(HistogramTest, AsciiRenderNonEmpty) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.Add(0.1);
  const std::string art = h.ToAscii();
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("100"), std::string::npos);
}

}  // namespace
}  // namespace spa
