#include "common/profiler.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace spa {
namespace {

TEST(ProfilerTest, ItemNamesAndLevelsAreStable) {
  EXPECT_STREQ(ProfilerItemName(ProfilerItem::kRequestServe),
               "request.serve");
  EXPECT_STREQ(ProfilerItemName(ProfilerItem::kStageCandidateGen),
               "stage.candidate_gen");
  EXPECT_STREQ(ProfilerItemName(ProfilerItem::kRerankSort),
               "rerank.sort");
  EXPECT_EQ(ProfilerItemLevel(ProfilerItem::kBatchServe),
            ProfilerLevel::kL1);
  EXPECT_EQ(ProfilerItemLevel(ProfilerItem::kStageBlend),
            ProfilerLevel::kL2);
  EXPECT_EQ(ProfilerItemLevel(ProfilerItem::kApplyItemShardGroup),
            ProfilerLevel::kL3);
}

TEST(ProfilerTest, RecordAccumulatesCountTotalAndMax) {
  Profiler profiler(ProfilerLevel::kL3);
  profiler.Record(ProfilerItem::kRequestServe, 0.010);
  profiler.Record(ProfilerItem::kRequestServe, 0.030);
  profiler.Record(ProfilerItem::kRequestServe, 0.020);
  const ProfilerSnapshot snap = profiler.Snapshot(ProfilerLevel::kL1);
  ASSERT_FALSE(snap.items.empty());
  const ProfilerItemSnapshot& s = snap.items.front();
  EXPECT_EQ(s.item, ProfilerItem::kRequestServe);
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.total_seconds, 0.060, 1e-6);
  EXPECT_NEAR(s.max_seconds, 0.030, 1e-6);
  EXPECT_GT(s.p50_seconds, 0.0);
  EXPECT_LE(s.p50_seconds, s.p95_seconds);
  EXPECT_LE(s.p95_seconds, s.p99_seconds);
}

TEST(ProfilerTest, LevelGatesRecordingPerItem) {
  Profiler profiler(ProfilerLevel::kL1);
  EXPECT_TRUE(profiler.enabled(ProfilerItem::kRequestServe));
  EXPECT_FALSE(profiler.enabled(ProfilerItem::kStageRerank));
  EXPECT_FALSE(profiler.enabled(ProfilerItem::kRerankScore));

  profiler.Record(ProfilerItem::kRequestServe, 0.001);
  profiler.Record(ProfilerItem::kStageRerank, 0.001);   // gated off
  profiler.Record(ProfilerItem::kRerankScore, 0.001);   // gated off

  const ProfilerSnapshot snap = profiler.Snapshot(ProfilerLevel::kL3);
  for (const ProfilerItemSnapshot& s : snap.items) {
    if (s.item == ProfilerItem::kRequestServe) {
      EXPECT_EQ(s.count, 1u);
    } else {
      EXPECT_EQ(s.count, 0u) << s.name;
    }
  }

  // Raising the level turns the gated items back on.
  profiler.set_level(ProfilerLevel::kL3);
  EXPECT_TRUE(profiler.enabled(ProfilerItem::kRerankScore));
  profiler.Record(ProfilerItem::kRerankScore, 0.001);
  const ProfilerSnapshot after = profiler.Snapshot(ProfilerLevel::kL3);
  for (const ProfilerItemSnapshot& s : after.items) {
    if (s.item == ProfilerItem::kRerankScore) {
      EXPECT_EQ(s.count, 1u);
    }
  }
}

TEST(ProfilerTest, OffLevelRecordsNothing) {
  Profiler profiler(ProfilerLevel::kOff);
  profiler.Record(ProfilerItem::kRequestServe, 1.0);
  profiler.Record(ProfilerItem::kStageBlend, 1.0);
  for (const ProfilerItemSnapshot& s :
       profiler.Snapshot(ProfilerLevel::kL3).items) {
    EXPECT_EQ(s.count, 0u) << s.name;
  }
}

TEST(ProfilerTest, SnapshotFiltersByMaxLevel) {
  Profiler profiler;
  const auto level_of = [](const ProfilerSnapshot& snap) {
    int max_level = 0;
    for (const ProfilerItemSnapshot& s : snap.items) {
      max_level = std::max(max_level, s.level);
    }
    return max_level;
  };
  const ProfilerSnapshot l1 = profiler.Snapshot(ProfilerLevel::kL1);
  const ProfilerSnapshot l2 = profiler.Snapshot(ProfilerLevel::kL2);
  const ProfilerSnapshot l3 = profiler.Snapshot(ProfilerLevel::kL3);
  EXPECT_EQ(level_of(l1), 1);
  EXPECT_EQ(level_of(l2), 2);
  EXPECT_EQ(level_of(l3), 3);
  EXPECT_LT(l1.items.size(), l2.items.size());
  EXPECT_LT(l2.items.size(), l3.items.size());
  EXPECT_EQ(l3.items.size(), kProfilerItemCount);
}

TEST(ProfilerTest, HistogramTotalMatchesCountAtEveryLevel) {
  Profiler profiler(ProfilerLevel::kL3);
  const std::vector<std::pair<ProfilerItem, size_t>> plan = {
      {ProfilerItem::kRequestServe, 7},
      {ProfilerItem::kBatchServe, 2},
      {ProfilerItem::kStageCandidateGen, 7},
      {ProfilerItem::kStageExplain, 7},
      {ProfilerItem::kCandidateComponent, 14},
      {ProfilerItem::kApplyUserShardGroup, 3},
  };
  for (const auto& [item, n] : plan) {
    for (size_t i = 0; i < n; ++i) {
      profiler.Record(item, 1e-5 * static_cast<double>(i + 1));
    }
  }
  // On a quiescent profiler every item's histogram total equals its
  // counter, cumulative and per-epoch alike.
  for (const bool current_epoch : {false, true}) {
    const ProfilerSnapshot snap =
        profiler.Snapshot(ProfilerLevel::kL3, current_epoch);
    ASSERT_EQ(snap.items.size(), kProfilerItemCount);
    for (const ProfilerItemSnapshot& s : snap.items) {
      EXPECT_EQ(s.histogram.total(), s.count) << s.name;
    }
  }
}

TEST(ProfilerTest, EpochRolloverResetsEpochBankOnly) {
  Profiler profiler(ProfilerLevel::kL3);
  profiler.Record(ProfilerItem::kStageBlend, 0.002);
  profiler.Record(ProfilerItem::kStageBlend, 0.004);
  EXPECT_EQ(profiler.epochs(), 0u);

  const auto blend_item = [](const ProfilerSnapshot& snap) {
    for (const ProfilerItemSnapshot& s : snap.items) {
      if (s.item == ProfilerItem::kStageBlend) return s;
    }
    return ProfilerItemSnapshot{};
  };
  const ProfilerItemSnapshot before_epoch = blend_item(
      profiler.Snapshot(ProfilerLevel::kL2, /*current_epoch=*/true));
  EXPECT_EQ(before_epoch.count, 2u);

  profiler.AdvanceEpoch();
  EXPECT_EQ(profiler.epochs(), 1u);

  const ProfilerItemSnapshot epoch = blend_item(
      profiler.Snapshot(ProfilerLevel::kL2, /*current_epoch=*/true));
  EXPECT_EQ(epoch.count, 0u);
  EXPECT_EQ(epoch.total_seconds, 0.0);
  EXPECT_EQ(epoch.max_seconds, 0.0);
  EXPECT_EQ(epoch.histogram.total(), 0u);

  const ProfilerItemSnapshot cumulative =
      blend_item(profiler.Snapshot(ProfilerLevel::kL2));
  EXPECT_EQ(cumulative.count, 2u);
  EXPECT_NEAR(cumulative.total_seconds, 0.006, 1e-6);

  // The next epoch accumulates fresh.
  profiler.Record(ProfilerItem::kStageBlend, 0.001);
  const ProfilerItemSnapshot next = blend_item(
      profiler.Snapshot(ProfilerLevel::kL2, /*current_epoch=*/true));
  EXPECT_EQ(next.count, 1u);
  EXPECT_EQ(blend_item(profiler.Snapshot(ProfilerLevel::kL2)).count, 3u);
}

TEST(ProfilerTest, ExportJsonCarriesLeveledItems) {
  Profiler profiler(ProfilerLevel::kL3);
  profiler.Record(ProfilerItem::kRequestServe, 0.001);
  profiler.AdvanceEpoch();
  const std::string l2 = profiler.ExportJson(ProfilerLevel::kL2);
  EXPECT_NE(l2.find("\"level\": 3"), std::string::npos);
  EXPECT_NE(l2.find("\"epochs\": 1"), std::string::npos);
  EXPECT_NE(l2.find("\"request.serve\""), std::string::npos);
  EXPECT_NE(l2.find("\"stage.blend\""), std::string::npos);
  EXPECT_EQ(l2.find("\"rerank.sort\""), std::string::npos);  // L3 item
  const std::string l3 =
      profiler.ExportItemsJson(ProfilerLevel::kL3, /*indent=*/0);
  EXPECT_NE(l3.find("\"rerank.sort\""), std::string::npos);
  EXPECT_NE(l3.find("\"apply.user_shard_group\""), std::string::npos);
}

TEST(ProfilerTest, ConcurrentRecordingLosesNothing) {
  Profiler profiler(ProfilerLevel::kL3);
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profiler] {
      for (size_t i = 0; i < kPerThread; ++i) {
        profiler.Record(ProfilerItem::kStageRerank,
                        1e-6 * static_cast<double>(i % 100 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const ProfilerItemSnapshot& s :
       profiler.Snapshot(ProfilerLevel::kL2).items) {
    if (s.item != ProfilerItem::kStageRerank) continue;
    EXPECT_EQ(s.count, kThreads * kPerThread);
    EXPECT_EQ(s.histogram.total(), kThreads * kPerThread);
  }
}

}  // namespace
}  // namespace spa
