#include "common/hash.h"

#include <gtest/gtest.h>

#include <cstdint>

/// SplitMix64 routes every shard decision in the codebase — the
/// interaction matrix's user/item shards, request fingerprints, and
/// (most demandingly) the router tier's `OwnershipDirectory`, whose
/// user->worker resolution must be identical across processes,
/// platforms and builds: a multi-process deployment where two routers
/// disagree on "who owns user X" double-applies or drops writes. These
/// golden vectors pin the function's exact output forever; if any of
/// them ever fails, the mix was changed and every persisted/foreign
/// shard mapping is invalid — bump a wire/format version, do not
/// "fix" the test.

namespace spa {
namespace {

TEST(SplitMix64Test, GoldenVectors) {
  // Reference values from the canonical Vigna splitmix64; the zero
  // input is the published test vector (0xE220A8397B1DCDAF).
  struct {
    uint64_t input;
    uint64_t expected;
  } const kGolden[] = {
      {0x0000000000000000ULL, 0xe220a8397b1dcdafULL},
      {0x0000000000000001ULL, 0x910a2dec89025cc1ULL},
      {0x0000000000000002ULL, 0x975835de1c9756ceULL},
      {0x000000000000002aULL, 0xbdd732262feb6e95ULL},
      {0x000000000012d687ULL, 0x599ed017fb08fc85ULL},
      {0x00000000deadbeefULL, 0x4adfb90f68c9eb9bULL},
      {0xffffffffffffffffULL, 0xe4d971771b652c20ULL},
      {0x9e3779b97f4a7c15ULL, 0x6e789e6aa1b965f4ULL},
  };
  for (const auto& golden : kGolden) {
    EXPECT_EQ(SplitMix64(golden.input), golden.expected)
        << "input 0x" << std::hex << golden.input;
  }
}

TEST(SplitMix64Test, GoldenIteratedSequence) {
  // Repeated application (the generator form: state <- mix(state)).
  uint64_t state = 0;
  const uint64_t kSequence[] = {
      0xe220a8397b1dcdafULL,
      0xa706dd2f4d197e6fULL,
      0x238275bc38fcbe91ULL,
      0x2130748aaac80268ULL,
  };
  for (uint64_t expected : kSequence) {
    state = SplitMix64(state);
    EXPECT_EQ(state, expected);
  }
}

TEST(SplitMix64Test, NegativeIdsFoldDeterministically) {
  // UserId is signed; shard routes cast to uint64_t first. Pin the
  // two's-complement fold so a signed id maps the same everywhere.
  EXPECT_EQ(SplitMix64(static_cast<uint64_t>(int64_t{-1})),
            0xe4d971771b652c20ULL);
}

}  // namespace
}  // namespace spa
