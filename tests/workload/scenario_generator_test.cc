#include "workload/scenario_generator.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/sim_clock.h"
#include "gtest/gtest.h"
#include "workload/scenario.h"

/// The deterministic scenario generator. The load-bearing claims:
///
///  * **Golden replayability**: the stream is a pure function of
///    (seed, config). The fingerprints and first-event field values
///    pinned below must never drift — they are the contract that lets
///    the bench matrix and the differential parity harness treat a
///    scenario as a recorded trace. Any intentional generator change
///    must regenerate these constants.
///  * **Thread invariance**: `Generate(threads)` is bitwise-identical
///    for every thread count (block-pure generation; threads only
///    decide who computes which block).
///  * **Stream algebra**: disjoint splits of a stream merge back to
///    the original exactly (`MergeStreams` over (time, seq)).
///  * **Population dynamics**: churn moves the cohort-granular active
///    window; storm windows emit correlated same-attribute waves.

namespace spa::workload {
namespace {

constexpr size_t kUsers = 2000;
constexpr size_t kTargetEvents = 400;
constexpr uint64_t kSeed = 7;

std::vector<ScenarioConfig> GoldenMatrix() {
  return StandardScenarioMatrix(kUsers, kTargetEvents, kSeed);
}

// ---- golden values ----------------------------------------------------------

TEST(ScenarioGeneratorTest, GoldenFingerprintsPinTheMatrixStreams) {
  // (name, events, fingerprint) per archetype at the golden config.
  const struct {
    const char* name;
    size_t events;
    uint64_t fingerprint;
  } kGolden[] = {
      {"steady_power_law", 455, 0xfe28be0444249777ULL},
      {"flash_crowd", 375, 0x7893e944df4234f8ULL},
      {"cold_start_churn", 387, 0xf4f413fe86bd54ecULL},
      {"emotion_shift_storm", 375, 0x3d0631451a0134d5ULL},
  };
  const std::vector<ScenarioConfig> matrix = GoldenMatrix();
  ASSERT_EQ(matrix.size(), 4u);
  for (size_t i = 0; i < matrix.size(); ++i) {
    SCOPED_TRACE(matrix[i].name);
    EXPECT_EQ(matrix[i].name, kGolden[i].name);
    const ScenarioGenerator generator(matrix[i]);
    const std::vector<ScenarioEvent> events = generator.Generate();
    EXPECT_EQ(events.size(), kGolden[i].events);
    EXPECT_EQ(StreamFingerprint(events), kGolden[i].fingerprint);
  }
}

TEST(ScenarioGeneratorTest, GoldenFirstEventsOfTheBaselineArchetype) {
  const ScenarioGenerator generator(GoldenMatrix()[0]);
  const std::vector<ScenarioEvent> events = generator.Generate();
  ASSERT_GE(events.size(), 3u);

  const ScenarioEvent& e0 = events[0];
  EXPECT_EQ(e0.time, 107881059);
  EXPECT_EQ(e0.seq, 0u);
  EXPECT_EQ(e0.kind, EventKind::kInteraction);
  ASSERT_EQ(e0.interactions.size(), 4u);
  EXPECT_EQ(e0.interactions[0].user, 26);
  EXPECT_EQ(e0.interactions[0].item, 1);
  EXPECT_DOUBLE_EQ(e0.interactions[0].weight, 2.448557706160237);

  const ScenarioEvent& e1 = events[1];
  EXPECT_EQ(e1.time, 270721398);
  EXPECT_EQ(e1.kind, EventKind::kServe);
  EXPECT_EQ(e1.user, 3);

  const ScenarioEvent& e2 = events[2];
  EXPECT_EQ(e2.time, 272880218);
  EXPECT_EQ(e2.kind, EventKind::kSumUpdate);
  ASSERT_EQ(e2.shifts.size(), 1u);
  EXPECT_EQ(e2.shifts[0].user, 17);
  EXPECT_EQ(e2.shifts[0].attribute, eit::EmotionalAttribute::kImpatient);
  EXPECT_EQ(e2.shifts[0].op, EmotionShift::Op::kReward);
  EXPECT_DOUBLE_EQ(e2.shifts[0].amount, 0.17844631980915898);
}

TEST(ScenarioGeneratorTest, GoldenBootstrapIsDeterministic) {
  const ScenarioGenerator generator(GoldenMatrix()[0]);
  const std::vector<recsys::Interaction> log =
      generator.BootstrapInteractions();
  // Every initially-active user carries history_per_user interactions.
  ASSERT_EQ(log.size(), kUsers * generator.config().history_per_user);
  EXPECT_EQ(log[0].user, 0);
  EXPECT_EQ(log[0].item, 4);
  EXPECT_DOUBLE_EQ(log[0].weight, 2.0179868379174373);

  const std::vector<EmotionShift> emotions =
      generator.BootstrapEmotions();
  EXPECT_EQ(emotions.size(), 6004u);
  for (const EmotionShift& shift : emotions) {
    EXPECT_EQ(shift.op, EmotionShift::Op::kSetSensibility);
  }
}

// ---- determinism ------------------------------------------------------------

TEST(ScenarioGeneratorTest, StreamIsBitwiseIdenticalAcrossThreadCounts) {
  for (const ScenarioConfig& scenario : GoldenMatrix()) {
    SCOPED_TRACE(scenario.name);
    const ScenarioGenerator generator(scenario);
    const std::vector<ScenarioEvent> serial = generator.Generate(1);
    for (size_t threads : {2u, 4u, 8u}) {
      const std::vector<ScenarioEvent> parallel =
          generator.Generate(threads);
      ASSERT_EQ(parallel.size(), serial.size());
      EXPECT_EQ(StreamFingerprint(parallel), StreamFingerprint(serial));
      EXPECT_TRUE(parallel == serial);
    }
  }
}

TEST(ScenarioGeneratorTest, StreamIsSortedWithDenseSeq) {
  const ScenarioGenerator generator(GoldenMatrix()[1]);
  const std::vector<ScenarioEvent> events = generator.Generate(4);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    if (i > 0) {
      EXPECT_LE(events[i - 1].time, events[i].time);
    }
  }
}

TEST(ScenarioGeneratorTest, MergeStreamsReassemblesDisjointSplits) {
  const ScenarioGenerator generator(GoldenMatrix()[3]);
  const std::vector<ScenarioEvent> events = generator.Generate();
  // Split round-robin by seq — an arbitrary disjoint partition that
  // preserves per-part (time, seq) order.
  std::vector<std::vector<ScenarioEvent>> parts(3);
  for (const ScenarioEvent& event : events) {
    parts[event.seq % 3].push_back(event);
  }
  const std::vector<ScenarioEvent> merged =
      MergeStreams(std::move(parts));
  ASSERT_EQ(merged.size(), events.size());
  EXPECT_TRUE(merged == events);
  EXPECT_EQ(StreamFingerprint(merged), StreamFingerprint(events));
}

TEST(ScenarioGeneratorTest, FingerprintSeparatesSeeds) {
  ScenarioConfig a = SteadyPowerLawScenario(kUsers, kSeed);
  a.target_events = kTargetEvents;
  ScenarioConfig b = a;
  b.seed = kSeed + 1;
  EXPECT_NE(StreamFingerprint(ScenarioGenerator(a).Generate()),
            StreamFingerprint(ScenarioGenerator(b).Generate()));
}

// ---- population dynamics ----------------------------------------------------

TEST(ScenarioGeneratorTest, ChurnMovesTheActiveWindow) {
  // cold_start_churn: 60% active at t0, +40%/day arrivals, -20%/day
  // retirements, 2000 users in cohorts of 50 (40 cohorts).
  const ScenarioConfig scenario = GoldenMatrix()[2];
  const ScenarioGenerator generator(scenario);
  ASSERT_EQ(generator.cohort_count(), 40u);

  const auto [first0, last0] = generator.ActiveWindow(0);
  EXPECT_EQ(first0, 0);
  EXPECT_EQ(last0, 1200);  // 0.6 * 2000

  const auto [first1, last1] =
      generator.ActiveWindow(scenario.duration);
  EXPECT_EQ(first1, 400);   // 0.2 * 2000 retired, oldest cohorts first
  EXPECT_EQ(last1, 2000);   // 0.6 + 0.4 arrived => everyone has been

  // Bootstrap covers only the initially-active population: arrivals
  // are genuinely cold (no history, no SUM entry).
  const std::vector<recsys::Interaction> log =
      generator.BootstrapInteractions();
  EXPECT_EQ(log.size(), 1200u * scenario.history_per_user);
  for (const recsys::Interaction& interaction : log) {
    EXPECT_LT(interaction.user, 1200);
  }
}

TEST(ScenarioGeneratorTest, ActiveWindowNeverEmpties) {
  ScenarioConfig scenario = ColdStartChurnScenario(kUsers, kSeed);
  scenario.churn.retirements_per_day = 5.0;  // absurd retirement rate
  const ScenarioGenerator generator(scenario);
  const auto [first, last] = generator.ActiveWindow(scenario.duration);
  EXPECT_LT(first, last);  // at least one cohort stays active
}

TEST(ScenarioGeneratorTest, StormWindowEmitsCorrelatedWaves) {
  const ScenarioConfig scenario = GoldenMatrix()[3];
  ASSERT_EQ(scenario.storms.size(), 2u);
  const ScenarioGenerator generator(scenario);
  const std::vector<ScenarioEvent> events = generator.Generate();

  size_t storm_updates = 0;
  for (const ScenarioEvent& event : events) {
    if (event.kind != EventKind::kSumUpdate) continue;
    const double frac = static_cast<double>(event.time) /
                        static_cast<double>(scenario.duration);
    const EmotionStormSpec* storm = nullptr;
    for (const EmotionStormSpec& spec : scenario.storms) {
      if (frac >= spec.start && frac < spec.start + spec.duration) {
        storm = &spec;
        break;
      }
    }
    if (storm == nullptr) {
      // Baseline drift: one user, one attribute.
      EXPECT_EQ(event.shifts.size(), 1u);
      continue;
    }
    ++storm_updates;
    // A campaign wave: wave_size shifts, all pushing the storm's
    // dominant attribute.
    ASSERT_EQ(event.shifts.size(), storm->wave_size);
    for (const EmotionShift& shift : event.shifts) {
      EXPECT_EQ(shift.attribute, storm->attribute);
      EXPECT_EQ(shift.op, EmotionShift::Op::kReward);
    }
  }
  // The storm windows multiply the sum-update mix share, so waves must
  // actually dominate the archetype's update traffic.
  EXPECT_GT(storm_updates, 10u);
}

TEST(ScenarioGeneratorTest, FlashCrowdConcentratesArrivals) {
  const ScenarioConfig scenario = GoldenMatrix()[1];
  ASSERT_EQ(scenario.flash_crowds.size(), 1u);
  const FlashCrowdSpec& crowd = scenario.flash_crowds[0];
  const ScenarioGenerator generator(scenario);
  const std::vector<ScenarioEvent> events = generator.Generate();

  size_t inside = 0;
  for (const ScenarioEvent& event : events) {
    const double frac = static_cast<double>(event.time) /
                        static_cast<double>(scenario.duration);
    if (frac >= crowd.start && frac < crowd.start + crowd.duration) {
      ++inside;
    }
  }
  // The window covers `duration` of the day but multiplies the rate;
  // it must hold well more than its proportional share of events.
  EXPECT_GT(static_cast<double>(inside),
            1.5 * crowd.duration * static_cast<double>(events.size()));
}

TEST(ScenarioGeneratorTest, LargeBlockMeansStayFinite) {
  // target_events big enough to push every block past the Poisson
  // cutoff into the normal approximation; the stream must still be
  // deterministic and sized sanely.
  ScenarioConfig scenario = SteadyPowerLawScenario(kUsers, kSeed);
  scenario.target_events = 200'000;
  const ScenarioGenerator generator(scenario);
  const std::vector<ScenarioEvent> a = generator.Generate(1);
  const std::vector<ScenarioEvent> b = generator.Generate(4);
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.size(), 150'000u);
  EXPECT_LT(a.size(), 250'000u);
}

}  // namespace
}  // namespace spa::workload
