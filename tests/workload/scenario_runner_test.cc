#include "workload/scenario_runner.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "workload/scenario.h"

/// The SLO-gated replay harness. These tests boot real deployments
/// (an async ServingPipeline and the sharded ServingRouter) and drive
/// tiny scenarios through them, so they exercise the full stack:
/// bootstrap, calibration, open-loop replay, quiesce, differential
/// parity replay and the SLO verdict. Sized for CI (hundreds of
/// events, hundreds of users) — the 100k-user matrix lives in
/// bench_scenarios.

namespace spa::workload {
namespace {

ScenarioConfig TinyScenario(uint64_t seed) {
  ScenarioConfig scenario = SteadyPowerLawScenario(600, seed);
  scenario.target_events = 150;
  return scenario;
}

RunnerConfig TinyRunner(BackendKind backend) {
  RunnerConfig config;
  config.backend = backend;
  config.calibration_requests = 50;
  config.slo.parity_samples = 16;
  return config;
}

TEST(ScenarioRunnerTest, PipelineBackendPassesParityOnTinyScenario) {
  const ScenarioRunner runner(TinyRunner(BackendKind::kPipeline));
  const ScenarioOutcome outcome = runner.Run(TinyScenario(11));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.backend, "pipeline");
  EXPECT_EQ(outcome.users, 600u);
  EXPECT_GT(outcome.events, 0u);
  EXPECT_GT(outcome.responses, 0u);
  EXPECT_GT(outcome.parity_checked, 0u);
  EXPECT_TRUE(outcome.parity);
  EXPECT_NE(outcome.stream_fingerprint, 0u);
  EXPECT_GT(outcome.offered_rps, 0.0);
}

TEST(ScenarioRunnerTest, RouterBackendPassesParityOnTinyScenario) {
  const ScenarioRunner runner(TinyRunner(BackendKind::kRouter));
  const ScenarioOutcome outcome = runner.Run(TinyScenario(11));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.backend, "router");
  EXPECT_GT(outcome.responses, 0u);
  EXPECT_GT(outcome.parity_checked, 0u);
  EXPECT_TRUE(outcome.parity);
}

TEST(ScenarioRunnerTest, StormScenarioKeepsParityThroughBothBackends) {
  // The adversarial archetype: correlated SumUpdate waves colliding
  // with serve traffic — the case that catches version-pinning races
  // in the writer lane.
  ScenarioConfig scenario = EmotionShiftStormScenario(600, 13);
  scenario.target_events = 150;
  for (const BackendKind backend :
       {BackendKind::kPipeline, BackendKind::kRouter}) {
    SCOPED_TRACE(BackendName(backend));
    const ScenarioRunner runner(TinyRunner(backend));
    const ScenarioOutcome outcome = runner.Run(scenario);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_GT(outcome.parity_checked, 0u);
    EXPECT_TRUE(outcome.parity);
    EXPECT_GT(outcome.updates_applied, 0u);
  }
}

TEST(ScenarioRunnerTest, SloVerdictFailsUnderAnImpossibleP99Bound) {
  RunnerConfig config = TinyRunner(BackendKind::kPipeline);
  config.slo.p99_ms = 1e-9;  // nothing real can serve this fast
  const ScenarioRunner runner(config);
  const ScenarioOutcome outcome = runner.Run(TinyScenario(17));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  // Parity (correctness) is independent of the latency verdict.
  EXPECT_TRUE(outcome.parity);
  EXPECT_FALSE(outcome.slo_pass);
}

TEST(ScenarioRunnerTest, OutcomeCountsAreInternallyConsistent) {
  const ScenarioRunner runner(TinyRunner(BackendKind::kPipeline));
  const ScenarioOutcome outcome = runner.Run(TinyScenario(19));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_LE(outcome.responses + outcome.rejected_reads + outcome.shed_reads,
            outcome.submitted + outcome.rejected_reads);
  EXPECT_EQ(outcome.end_to_end.total(), outcome.responses);
  // Quantiles exported into the matrix mirror the raw histogram.
  EXPECT_GE(outcome.p99_ms, outcome.p95_ms);
  EXPECT_GE(outcome.p95_ms, outcome.p50_ms);
}

}  // namespace
}  // namespace spa::workload
