#include <cmath>

#include "campaign/course.h"
#include "core/spa.h"
#include "gtest/gtest.h"
#include "lifelog/weblog.h"

namespace spa::core {
namespace {

class SpaTest : public ::testing::Test {
 protected:
  SpaConfig SmallConfig() {
    SpaConfig config;
    config.eit_questions_per_section = 2;  // 16-question bank
    return config;
  }
};

TEST_F(SpaTest, ConstructsWithAllComponents) {
  Spa spa(SmallConfig());
  EXPECT_EQ(spa.action_catalog().size(), 984u);
  EXPECT_EQ(spa.attribute_catalog().size(), 75u);
  EXPECT_TRUE(spa.runtime()->HasAgent("preproc-0"));
  EXPECT_TRUE(spa.runtime()->HasAgent("attributes-manager"));
  EXPECT_TRUE(spa.runtime()->HasAgent("messaging"));
  EXPECT_FALSE(spa.smart_component()->trained());
}

TEST_F(SpaTest, IngestLogLinesLandsEvents) {
  Spa spa(SmallConfig());
  std::vector<lifelog::Event> events;
  for (int i = 0; i < 50; ++i) {
    lifelog::Event e;
    e.user = 100 + i % 5;
    e.time = spa.clock()->now() -
             static_cast<TimeMicros>(i) * kMicrosPerHour;
    e.action_code = (i * 11) % 984;
    events.push_back(e);
  }
  lifelog::WeblogSynthesizer synth({0.05, 0.05, 0.02, 3});
  std::vector<std::string> lines;
  synth.Synthesize(events, &lines);
  spa.IngestLogLines(lines);
  EXPECT_EQ(spa.lifelog()->total_events(), 50u);
  EXPECT_GT(spa.preprocessor()->family_stats().preprocess.lines_in, 50u);
}

TEST_F(SpaTest, EitFlowActivatesEmotionalAttributes) {
  Spa spa(SmallConfig());
  const sum::UserId user = 42;
  const auto qid = spa.NextEitQuestion(user);
  ASSERT_TRUE(qid.ok());
  const auto& question =
      *spa.gradual_eit().bank().ById(qid.value()).value();
  ASSERT_TRUE(
      spa.RecordEitAnswer(user, qid.value(), question.ModalOption())
          .ok());

  // The EIT answer became a LifeLog event...
  EXPECT_EQ(spa.lifelog()->UserEvents(user).size(), 1u);
  // ...and activated the impacted emotional attributes in the SUM.
  const auto snapshot = spa.sum_snapshot();
  const auto model = snapshot->Get(user);
  ASSERT_TRUE(model.ok());
  double total_sens = 0.0;
  for (double s : model.value()->EmotionalSensibilities()) {
    total_sens += s;
  }
  EXPECT_GT(total_sens, 0.0);
  // Scores are tracked.
  EXPECT_EQ(spa.EitScoresFor(user).answered, 1u);
}

TEST_F(SpaTest, DuplicateEitAnswerRejected) {
  Spa spa(SmallConfig());
  const auto qid = spa.NextEitQuestion(7);
  ASSERT_TRUE(qid.ok());
  ASSERT_TRUE(spa.RecordEitAnswer(7, qid.value(), 0).ok());
  EXPECT_FALSE(spa.RecordEitAnswer(7, qid.value(), 0).ok());
  // NextEitQuestion moves on.
  const auto next = spa.NextEitQuestion(7);
  ASSERT_TRUE(next.ok());
  EXPECT_NE(next.value(), qid.value());
}

TEST_F(SpaTest, ObserveInteractionUpdatesSensibility) {
  Spa spa(SmallConfig());
  const auto attr = spa.attribute_catalog().EmotionalId(
      eit::EmotionalAttribute::kMotivated);
  spa.ObserveInteraction(5, 3, attr, true);
  EXPECT_GT(spa.sum_snapshot()->Get(5).value()->sensibility(attr), 0.0);
}

TEST_F(SpaTest, RecommendCoursesEmptyWithoutInteractions) {
  Spa spa(SmallConfig());
  EXPECT_TRUE(spa.RecommendCourses(1, 5).empty());
}

TEST_F(SpaTest, RecommendCoursesWithContentAndEmotion) {
  Spa spa(SmallConfig());
  const auto attrs = spa.attribute_catalog();
  const campaign::CourseCatalog catalog =
      campaign::CourseCatalog::Generate(30, attrs, 5);
  for (const auto& course : catalog.courses()) {
    spa.SetItemFeatures(course.id, catalog.ContentFeatures(course));
    spa.SetItemEmotionProfile(course.id, course.emotion_profile);
  }
  // Two communities of users.
  const auto& clicks =
      spa.action_catalog().CodesFor(lifelog::ActionType::kClick);
  for (sum::UserId u = 0; u < 12; ++u) {
    for (int j = 0; j < 6; ++j) {
      lifelog::Event e;
      e.user = u;
      e.time = spa.clock()->now();
      e.action_code = clicks[0];
      e.item = static_cast<lifelog::ItemId>(
          (u % 2 == 0 ? 0 : 15) + ((u + j) % 10));
      spa.RecordEvent(e);
    }
  }
  ASSERT_TRUE(spa.RefreshRecommenders().ok());
  const auto recs = spa.RecommendCourses(0, 5);
  EXPECT_FALSE(recs.empty());
  EXPECT_LE(recs.size(), 5u);
  // Recommendations exclude items user 0 already interacted with.
  for (const auto& scored : recs) {
    bool seen = false;
    for (const auto& e : spa.lifelog()->UserEvents(0)) {
      if (e.item == scored.item) seen = true;
    }
    EXPECT_FALSE(seen) << "item " << scored.item;
  }
}

TEST_F(SpaTest, ZeroWeightInteractionsDoNotLeakBack) {
  // A rating of 0 never enters the sparse interaction matrix (its
  // interaction weight is 0), but the user demonstrably saw the item —
  // the serving path must still exclude it.
  Spa spa(SmallConfig());
  const auto& clicks =
      spa.action_catalog().CodesFor(lifelog::ActionType::kClick);
  const auto& ratings =
      spa.action_catalog().CodesFor(lifelog::ActionType::kRating);
  // Item 5 is popular with other users.
  for (sum::UserId u = 1; u <= 6; ++u) {
    for (lifelog::ItemId i : {5, 6, 7}) {
      lifelog::Event e;
      e.user = u;
      e.time = spa.clock()->now();
      e.action_code = clicks[0];
      e.item = i;
      spa.RecordEvent(e);
    }
  }
  // User 0 clicks items 6 and 7, and rates item 5 with value 0.
  for (lifelog::ItemId i : {6, 7}) {
    lifelog::Event e;
    e.user = 0;
    e.time = spa.clock()->now();
    e.action_code = clicks[0];
    e.item = i;
    spa.RecordEvent(e);
  }
  lifelog::Event zero_rating;
  zero_rating.user = 0;
  zero_rating.time = spa.clock()->now();
  zero_rating.action_code = ratings[0];
  zero_rating.item = 5;
  zero_rating.value = 0.0;
  spa.RecordEvent(zero_rating);

  recsys::RecommendRequest request;
  request.user = 0;
  request.k = 10;
  const auto response = spa.Recommend(request);
  ASSERT_TRUE(response.ok());
  for (const auto& item : response.value().items) {
    EXPECT_NE(item.item, 5) << "zero-weight-seen item leaked back";
  }

  // The relaxed policy may return it again: exclusion is per-request.
  recsys::RecommendRequest relaxed;
  relaxed.user = 0;
  relaxed.k = 10;
  relaxed.exclude_seen = recsys::ExcludeSeen::kNo;
  const auto relaxed_response = spa.Recommend(relaxed);
  ASSERT_TRUE(relaxed_response.ok());
  bool has_item_5 = false;
  for (const auto& item : relaxed_response.value().items) {
    if (item.item == 5) has_item_5 = true;
  }
  EXPECT_TRUE(has_item_5);
}

TEST_F(SpaTest, ServingPipelineStreamsThroughTheFacade) {
  Spa spa(SmallConfig());
  const auto& clicks =
      spa.action_catalog().CodesFor(lifelog::ActionType::kClick);
  for (sum::UserId u = 0; u < 12; ++u) {
    for (int j = 0; j < 6; ++j) {
      lifelog::Event e;
      e.user = u;
      e.time = spa.clock()->now();
      e.action_code = clicks[0];
      e.item = static_cast<lifelog::ItemId>(
          (u % 2 == 0 ? 0 : 15) + ((u + j) % 10));
      spa.RecordEvent(e);
    }
  }
  auto pipeline = spa.MakeServingPipeline();
  ASSERT_TRUE(pipeline.ok());

  // Streamed responses match the engine's synchronous serving.
  recsys::RecommendRequest request;
  request.user = 0;
  request.k = 4;
  auto ticket = pipeline.value()->Submit(request);
  ASSERT_TRUE(ticket.ok());
  ASSERT_EQ(ticket.value()->Wait(), recsys::TicketState::kDone);
  ASSERT_TRUE(ticket.value()->response().ok());
  const auto reference = spa.engine()->Recommend(request);
  ASSERT_TRUE(reference.ok());
  const auto& lhs = ticket.value()->response().value().items;
  const auto& rhs = reference.value().items;
  ASSERT_EQ(lhs.size(), rhs.size());
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].item, rhs[i].item);
    EXPECT_EQ(lhs[i].score, rhs[i].score);  // bitwise
  }

  // While the pipeline is alive the facade must refuse to replace the
  // engine its workers serve from (and refuse a second pipeline).
  EXPECT_FALSE(spa.RefreshRecommenders().ok());
  EXPECT_FALSE(spa.MakeServingPipeline().ok());

  pipeline.value().reset();
  EXPECT_TRUE(spa.RefreshRecommenders().ok());
  auto rebuilt = spa.MakeServingPipeline();
  EXPECT_TRUE(rebuilt.ok());
}

TEST_F(SpaTest, ServingRouterRoutesThroughTheFacade) {
  Spa spa(SmallConfig());
  // No interactions recorded: there is nothing to bootstrap replicas
  // from.
  EXPECT_FALSE(spa.MakeServingRouter().ok());

  const auto& clicks =
      spa.action_catalog().CodesFor(lifelog::ActionType::kClick);
  for (sum::UserId u = 0; u < 12; ++u) {
    for (int j = 0; j < 6; ++j) {
      lifelog::Event e;
      e.user = u;
      e.time = spa.clock()->now();
      e.action_code = clicks[0];
      e.item = static_cast<lifelog::ItemId>(
          (u % 2 == 0 ? 0 : 15) + ((u + j) % 10));
      spa.RecordEvent(e);
    }
  }
  recsys::RouterConfig config;
  config.workers = 2;
  auto router = spa.MakeServingRouter(config);
  ASSERT_TRUE(router.ok()) << router.status();
  EXPECT_EQ(router.value()->worker_count(), 2u);

  // Unlike the pipeline, the router borrows nothing from the
  // platform's engine — a stack rebuild must keep working while the
  // router is alive.
  ASSERT_TRUE(spa.RefreshRecommenders().ok());

  // The worker replicas bootstrap from the same ordered interaction
  // log RefreshRecommenders feeds the facade matrix with and build
  // the same default stack, so a routed response is bitwise-equal to
  // the facade engine serving the same request.
  for (sum::UserId user : {sum::UserId{0}, sum::UserId{7}}) {
    recsys::RecommendRequest request;
    request.user = user;
    request.k = 4;
    auto ticket = router.value()->Submit(request);
    ASSERT_TRUE(ticket.ok());
    ASSERT_EQ(ticket.value()->Wait(), recsys::TicketState::kDone);
    ASSERT_TRUE(ticket.value()->response().ok());
    const auto reference = spa.engine()->Recommend(request);
    ASSERT_TRUE(reference.ok());
    const auto& lhs = ticket.value()->response().value().items;
    const auto& rhs = reference.value().items;
    ASSERT_EQ(lhs.size(), rhs.size());
    for (size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].item, rhs[i].item);
      EXPECT_EQ(lhs[i].score, rhs[i].score);  // bitwise
    }
  }
}

TEST_F(SpaTest, RecommendBatchMatchesSequentialThroughSpa) {
  Spa spa(SmallConfig());
  const auto& clicks =
      spa.action_catalog().CodesFor(lifelog::ActionType::kClick);
  for (sum::UserId u = 0; u < 12; ++u) {
    for (int j = 0; j < 6; ++j) {
      lifelog::Event e;
      e.user = u;
      e.time = spa.clock()->now();
      e.action_code = clicks[0];
      e.item = static_cast<lifelog::ItemId>(
          (u % 2 == 0 ? 0 : 15) + ((u + j) % 10));
      spa.RecordEvent(e);
    }
  }
  std::vector<recsys::RecommendRequest> requests;
  for (sum::UserId u = 0; u < 12; ++u) {
    recsys::RecommendRequest request;
    request.user = u;
    request.k = 4;
    requests.push_back(std::move(request));
  }
  std::vector<spa::Result<recsys::RecommendResponse>> sequential;
  for (const auto& request : requests) {
    sequential.push_back(spa.Recommend(request));
  }
  const auto batched = spa.RecommendBatch(requests);
  ASSERT_EQ(batched.size(), sequential.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched[i].ok(), sequential[i].ok());
    if (!batched[i].ok()) continue;
    const auto& lhs = sequential[i].value().items;
    const auto& rhs = batched[i].value().items;
    ASSERT_EQ(lhs.size(), rhs.size());
    for (size_t j = 0; j < lhs.size(); ++j) {
      EXPECT_EQ(lhs[j].item, rhs[j].item);
      EXPECT_EQ(lhs[j].score, rhs[j].score);
    }
  }
}

TEST_F(SpaTest, MessageForComposesThroughAgent) {
  Spa spa(SmallConfig());
  const auto hopeful = spa.attribute_catalog().EmotionalId(
      eit::EmotionalAttribute::kHopeful);
  ASSERT_TRUE(spa.sum_service()
                  ->Apply(sum::SumUpdate(9).SetSensibility(hopeful, 0.9))
                  .ok());
  const auto message = spa.MessageFor(9, 4, {hopeful});
  EXPECT_EQ(message.message_case,
            agents::MessageCase::kSingleMatch);
  EXPECT_EQ(message.argued_attribute, hopeful);
  EXPECT_EQ(spa.messaging()->stats().composed, 1u);
}

TEST_F(SpaTest, PropensityRequiresTraining) {
  Spa spa(SmallConfig());
  ASSERT_TRUE(spa.sum_service()->Apply(sum::SumUpdate(1)).ok());
  EXPECT_EQ(spa.Propensity(1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(spa.SelectTopProspects({1}, 1).ok());
}

TEST_F(SpaTest, TrainPropensityEndToEnd) {
  Spa spa(SmallConfig());
  // Build a population where responders have high activity.
  const auto& clicks =
      spa.action_catalog().CodesFor(lifelog::ActionType::kClick);
  std::vector<PropensityExample> examples;
  Rng rng(3);
  for (sum::UserId u = 0; u < 120; ++u) {
    const bool responder = (u % 3 == 0);
    ASSERT_TRUE(spa.sum_service()->Apply(sum::SumUpdate(u)).ok());
    const int activity =
        responder ? 12 : static_cast<int>(rng.UniformInt(1, 4));
    for (int j = 0; j < activity; ++j) {
      lifelog::Event e;
      e.user = u;
      e.time = spa.clock()->now() -
               static_cast<TimeMicros>(j) * kMicrosPerDay;
      e.action_code = clicks[static_cast<size_t>(j) % clicks.size()];
      e.item = static_cast<lifelog::ItemId>(j % 7);
      spa.RecordEvent(e);
    }
    examples.push_back({u, responder});
  }
  ASSERT_TRUE(spa.TrainPropensity(examples).ok());
  EXPECT_TRUE(spa.smart_component()->trained());
  EXPECT_GT(spa.smart_component()->last_validation_auc(), 0.8);

  // Responders should score higher than non-responders on average.
  double responder_sum = 0.0, other_sum = 0.0;
  size_t responder_n = 0, other_n = 0;
  for (sum::UserId u = 0; u < 120; ++u) {
    const auto p = spa.Propensity(u);
    ASSERT_TRUE(p.ok());
    EXPECT_GE(p.value(), 0.0);
    EXPECT_LE(p.value(), 1.0);
    if (u % 3 == 0) {
      responder_sum += p.value();
      ++responder_n;
    } else {
      other_sum += p.value();
      ++other_n;
    }
  }
  EXPECT_GT(responder_sum / static_cast<double>(responder_n),
            other_sum / static_cast<double>(other_n));

  // Selection function returns the requested count, ordered.
  const auto top = spa.SelectTopProspects(
      [] {
        std::vector<sum::UserId> all;
        for (sum::UserId u = 0; u < 120; ++u) all.push_back(u);
        return all;
      }(),
      10);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top.value().size(), 10u);
  for (size_t i = 1; i < top.value().size(); ++i) {
    EXPECT_GE(top.value()[i - 1].second, top.value()[i].second);
  }
}

TEST_F(SpaTest, TrainRejectsDegenerateInputs) {
  Spa spa(SmallConfig());
  EXPECT_FALSE(spa.TrainPropensity({}).ok());
  std::vector<PropensityExample> all_positive;
  for (sum::UserId u = 0; u < 20; ++u) {
    ASSERT_TRUE(spa.sum_service()->Apply(sum::SumUpdate(u)).ok());
    all_positive.push_back({u, true});
  }
  EXPECT_FALSE(spa.TrainPropensity(all_positive).ok());
}

TEST_F(SpaTest, EmotionalToggleChangesFeatureVector) {
  SpaConfig with = SmallConfig();
  SpaConfig without = SmallConfig();
  without.include_emotional_features = false;

  Spa spa_with(with);
  Spa spa_without(without);
  for (Spa* spa : {&spa_with, &spa_without}) {
    const auto hopeful = spa->attribute_catalog().EmotionalId(
        eit::EmotionalAttribute::kHopeful);
    ASSERT_TRUE(spa->sum_service()
                    ->Apply(sum::SumUpdate(1)
                                .SetSensibility(hopeful, 0.8)
                                .SetValue(hopeful, 0.8))
                    .ok());
  }
  const auto f_with = spa_with.smart_component()->FeaturesFor(
      *spa_with.sum_snapshot()->Get(1).value(), {},
      spa_with.clock()->now());
  const auto f_without = spa_without.smart_component()->FeaturesFor(
      *spa_without.sum_snapshot()->Get(1).value(), {},
      spa_without.clock()->now());
  EXPECT_GT(f_with.nnz(), f_without.nnz());
}

TEST_F(SpaTest, TickAdvancesClockAndDecays) {
  Spa spa(SmallConfig());
  const auto attr = spa.attribute_catalog().EmotionalId(
      eit::EmotionalAttribute::kLively);
  ASSERT_TRUE(spa.sum_service()
                  ->Apply(sum::SumUpdate(2).SetSensibility(attr, 0.8))
                  .ok());
  const TimeMicros before = spa.clock()->now();
  spa.Tick(kMicrosPerDay);
  EXPECT_EQ(spa.clock()->now(), before + kMicrosPerDay);
  EXPECT_LT(spa.sum_snapshot()->Get(2).value()->sensibility(attr), 0.8);
}

TEST_F(SpaTest, TopFeaturesExposeAttributeRanking) {
  Spa spa(SmallConfig());
  // Train quickly (reuse end-to-end construction).
  const auto& clicks =
      spa.action_catalog().CodesFor(lifelog::ActionType::kClick);
  std::vector<PropensityExample> examples;
  for (sum::UserId u = 0; u < 60; ++u) {
    const bool responder = (u % 2 == 0);
    ASSERT_TRUE(spa.sum_service()->Apply(sum::SumUpdate(u)).ok());
    for (int j = 0; j < (responder ? 10 : 2); ++j) {
      lifelog::Event e;
      e.user = u;
      e.time = spa.clock()->now();
      e.action_code = clicks[0];
      spa.RecordEvent(e);
    }
    examples.push_back({u, responder});
  }
  ASSERT_TRUE(spa.TrainPropensity(examples).ok());
  const auto top = spa.smart_component()->TopFeatures(5);
  ASSERT_FALSE(top.empty());
  EXPECT_LE(top.size(), 5u);
  // Ordered by |weight| descending.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(std::abs(top[i - 1].second), std::abs(top[i].second));
  }
}

}  // namespace
}  // namespace spa::core
