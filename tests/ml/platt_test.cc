#include "ml/platt.h"

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/logreg.h"
#include "ml/metrics.h"
#include "ml/svm_linear.h"
#include "ml/test_util.h"

namespace spa::ml {
namespace {

TEST(PlattTest, RejectsMismatchedSizes) {
  PlattScaler scaler;
  EXPECT_FALSE(scaler.Fit({1.0, 2.0}, {1}).ok());
}

TEST(PlattTest, RejectsSingleClass) {
  PlattScaler scaler;
  EXPECT_EQ(scaler.Fit({1.0, 2.0}, {1, 1}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PlattTest, ProbabilitiesMonotoneInScore) {
  Rng rng(5);
  std::vector<double> scores;
  std::vector<Label> labels;
  for (int i = 0; i < 1000; ++i) {
    const double f = rng.Normal(0.0, 2.0);
    scores.push_back(f);
    labels.push_back(rng.Bernoulli(Sigmoid(1.5 * f)) ? 1 : -1);
  }
  PlattScaler scaler;
  ASSERT_TRUE(scaler.Fit(scores, labels).ok());
  EXPECT_LT(scaler.Transform(-3.0), scaler.Transform(0.0));
  EXPECT_LT(scaler.Transform(0.0), scaler.Transform(3.0));
}

TEST(PlattTest, RecoverApproximateCalibration) {
  Rng rng(11);
  std::vector<double> scores;
  std::vector<Label> labels;
  for (int i = 0; i < 20000; ++i) {
    const double f = rng.Normal(0.0, 2.0);
    scores.push_back(f);
    labels.push_back(rng.Bernoulli(Sigmoid(f)) ? 1 : -1);
  }
  PlattScaler scaler;
  ASSERT_TRUE(scaler.Fit(scores, labels).ok());
  // True generating model: P = sigmoid(f) = 1/(1+exp(-f)); Platt form is
  // 1/(1+exp(A f + B)) so A ~ -1, B ~ 0.
  EXPECT_NEAR(scaler.a(), -1.0, 0.15);
  EXPECT_NEAR(scaler.b(), 0.0, 0.15);

  // Calibration: bins should lie near the diagonal.
  const auto probs = scaler.TransformAll(scores);
  const auto bins = CalibrationCurve(probs, labels, 10);
  for (const auto& bin : bins) {
    if (bin.count < 200) continue;
    EXPECT_NEAR(bin.fraction_positive, bin.mean_predicted, 0.08);
  }
}

TEST(PlattTest, CalibratesSvmScoresEndToEnd) {
  const Dataset train = testing::MakeBlobs(600, 4, 2.0, 17);
  const Dataset test = testing::MakeBlobs(400, 4, 2.0, 18);
  LinearSvm svm;
  ASSERT_TRUE(svm.Train(train).ok());
  PlattScaler scaler;
  ASSERT_TRUE(scaler.Fit(svm.ScoreAll(train), train.y).ok());
  const auto probs = scaler.TransformAll(svm.ScoreAll(test));
  for (double p : probs) {
    ASSERT_GT(p, 0.0);
    ASSERT_LT(p, 1.0);
  }
  // Calibrated probabilities keep the SVM's ranking quality.
  EXPECT_NEAR(RocAuc(probs, test.y), RocAuc(svm.ScoreAll(test), test.y),
              1e-9);
  // And the log-loss should beat the uninformative baseline ln(2).
  EXPECT_LT(LogLoss(probs, test.y), 0.6);
}

TEST(PlattTest, TransformAllMatchesTransform) {
  PlattScaler scaler;
  ASSERT_TRUE(
      scaler.Fit({-2.0, -1.0, 1.0, 2.0}, {-1, -1, 1, 1}).ok());
  const auto all = scaler.TransformAll({-1.5, 0.0, 1.5});
  EXPECT_DOUBLE_EQ(all[0], scaler.Transform(-1.5));
  EXPECT_DOUBLE_EQ(all[1], scaler.Transform(0.0));
  EXPECT_DOUBLE_EQ(all[2], scaler.Transform(1.5));
}

}  // namespace
}  // namespace spa::ml
