#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "ml/cross_validation.h"
#include "ml/scaler.h"
#include "ml/test_util.h"

namespace spa::ml {
namespace {

TEST(CrossValidationTest, HighAucOnSeparableData) {
  const Dataset data = testing::MakeBlobs(300, 4, 5.0, 42);
  const auto result = CrossValidateAuc(
      data,
      []() -> std::unique_ptr<BinaryClassifier> {
        return std::make_unique<LinearSvm>();
      },
      5, 42);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().mean_auc, 0.99);
  EXPECT_EQ(result.value().fold_aucs.size(), 5u);
  EXPECT_LE(result.value().stddev_auc, 0.05);
}

TEST(CrossValidationTest, RejectsSingleFold) {
  const Dataset data = testing::MakeBlobs(50, 2, 5.0, 1);
  const auto result = CrossValidateAuc(
      data,
      []() -> std::unique_ptr<BinaryClassifier> {
        return std::make_unique<LinearSvm>();
      },
      1, 42);
  EXPECT_FALSE(result.ok());
}

TEST(GridSearchTest, FindsAReasonableC) {
  const Dataset data = testing::MakeBlobs(300, 3, 2.0, 7);
  SvmConfig base;
  base.max_iterations = 60;
  const auto result =
      GridSearchSvmC(data, {0.01, 0.1, 1.0, 10.0}, base, 3, 42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().tried.size(), 4u);
  EXPECT_GT(result.value().best_auc, 0.9);
  // Best C must be one of the candidates.
  bool found = false;
  for (const auto& [c, auc] : result.value().tried) {
    if (c == result.value().best_c) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GridSearchTest, EmptyGridRejected) {
  const Dataset data = testing::MakeBlobs(50, 2, 5.0, 1);
  EXPECT_FALSE(GridSearchSvmC(data, {}, SvmConfig{}, 3, 42).ok());
}

TEST(ColumnScalerTest, MaxAbsScalesToUnitRange) {
  SparseMatrix m;
  m.AppendRow(std::vector<SparseEntry>{{0, 2.0}, {1, -8.0}});
  m.AppendRow(std::vector<SparseEntry>{{0, -4.0}, {1, 4.0}});
  ColumnScaler scaler(ScalingKind::kMaxAbs);
  ASSERT_TRUE(scaler.Fit(m).ok());
  ASSERT_TRUE(scaler.Transform(&m).ok());
  EXPECT_DOUBLE_EQ(m.row(0).values[0], 0.5);
  EXPECT_DOUBLE_EQ(m.row(0).values[1], -1.0);
  EXPECT_DOUBLE_EQ(m.row(1).values[0], -1.0);
  EXPECT_DOUBLE_EQ(m.row(1).values[1], 0.5);
}

TEST(ColumnScalerTest, AllZeroColumnIsNoOp) {
  SparseMatrix m(2);
  m.AppendRow(std::vector<SparseEntry>{{0, 3.0}});
  ColumnScaler scaler(ScalingKind::kMaxAbs);
  ASSERT_TRUE(scaler.Fit(m).ok());
  EXPECT_DOUBLE_EQ(scaler.factors()[1], 1.0);
}

TEST(ColumnScalerTest, UnitStddevUsesImplicitZeros) {
  // Column 0: values {3, 0} over 2 rows -> E[v^2] = 4.5, stddev ~2.121.
  SparseMatrix m(1);
  m.AppendRow(std::vector<SparseEntry>{{0, 3.0}});
  m.AppendRow(std::vector<SparseEntry>{});
  ColumnScaler scaler(ScalingKind::kUnitStddev);
  ASSERT_TRUE(scaler.Fit(m).ok());
  EXPECT_NEAR(scaler.factors()[0], 1.0 / std::sqrt(4.5), 1e-12);
}

TEST(ColumnScalerTest, TransformBeforeFitFails) {
  SparseMatrix m(1);
  ColumnScaler scaler;
  EXPECT_EQ(scaler.Transform(&m).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ColumnScalerTest, ColumnMismatchRejected) {
  SparseMatrix a(2), b(3);
  a.AppendRow(std::vector<SparseEntry>{{1, 1.0}});
  b.AppendRow(std::vector<SparseEntry>{{2, 1.0}});
  ColumnScaler scaler;
  ASSERT_TRUE(scaler.Fit(a).ok());
  EXPECT_EQ(scaler.Transform(&b).code(), StatusCode::kInvalidArgument);
}

TEST(ColumnScalerTest, TransformRowAppliesFactors) {
  SparseMatrix m;
  m.AppendRow(std::vector<SparseEntry>{{0, 4.0}});
  ColumnScaler scaler(ScalingKind::kMaxAbs);
  ASSERT_TRUE(scaler.Fit(m).ok());
  SparseVector q({{0, 2.0}, {5, 7.0}});  // index 5 beyond fitted: kept
  const SparseVector scaled = scaler.TransformRow(q.view());
  EXPECT_DOUBLE_EQ(scaled.value(0), 0.5);
  EXPECT_DOUBLE_EQ(scaled.value(1), 7.0);
}

}  // namespace
}  // namespace spa::ml
