#include "ml/sparse.h"

#include "gtest/gtest.h"

namespace spa::ml {
namespace {

TEST(SparseVectorTest, BuildAndAccess) {
  SparseVector v;
  v.PushBack(1, 2.0);
  v.PushBack(5, -1.0);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.index(0), 1);
  EXPECT_DOUBLE_EQ(v.value(1), -1.0);
  EXPECT_FALSE(v.empty());
}

TEST(SparseVectorTest, FromEntries) {
  SparseVector v({{0, 1.0}, {3, 2.0}, {7, 3.0}});
  EXPECT_EQ(v.nnz(), 3u);
  EXPECT_EQ(v.index(2), 7);
}

TEST(SparseVectorTest, DotWithDense) {
  SparseVector v({{0, 2.0}, {2, 3.0}});
  std::vector<double> dense = {1.0, 10.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 2.0 + 12.0);
}

TEST(SparseVectorTest, DotIgnoresOutOfRangeIndices) {
  SparseVector v({{0, 2.0}, {10, 100.0}});
  std::vector<double> dense = {3.0};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 6.0);
}

TEST(SparseVectorTest, AxpyInto) {
  SparseVector v({{1, 2.0}, {3, -1.0}});
  std::vector<double> dense(4, 1.0);
  v.AxpyInto(2.0, &dense);
  EXPECT_DOUBLE_EQ(dense[0], 1.0);
  EXPECT_DOUBLE_EQ(dense[1], 5.0);
  EXPECT_DOUBLE_EQ(dense[3], -1.0);
}

TEST(SparseVectorTest, SparseSparseDot) {
  SparseVector a({{0, 1.0}, {2, 2.0}, {5, 3.0}});
  SparseVector b({{2, 4.0}, {5, 1.0}, {9, 7.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 8.0 + 3.0);
  EXPECT_DOUBLE_EQ(b.Dot(a), 11.0);
}

TEST(SparseVectorTest, L2NormSquared) {
  SparseVector v({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.L2NormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(SparseVector().L2NormSquared(), 0.0);
}

TEST(SparseMatrixTest, AppendAndRowViews) {
  SparseMatrix m;
  m.AppendRow(std::vector<SparseEntry>{{0, 1.0}, {2, 2.0}});
  m.AppendRow(std::vector<SparseEntry>{});
  m.AppendRow(std::vector<SparseEntry>{{1, 5.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3u);

  const SparseRowView r0 = m.row(0);
  EXPECT_EQ(r0.nnz, 2u);
  EXPECT_EQ(r0.indices[1], 2);
  EXPECT_DOUBLE_EQ(r0.values[1], 2.0);

  EXPECT_EQ(m.row(1).nnz, 0u);
  EXPECT_EQ(m.row(2).nnz, 1u);
}

TEST(SparseMatrixTest, RowCopyMatchesView) {
  SparseMatrix m;
  m.AppendRow(std::vector<SparseEntry>{{3, 1.5}, {9, -2.5}});
  const SparseVector copy = m.RowCopy(0);
  EXPECT_EQ(copy.nnz(), 2u);
  EXPECT_EQ(copy.index(1), 9);
  EXPECT_DOUBLE_EQ(copy.value(0), 1.5);
}

TEST(SparseMatrixTest, SetColsGrowsOnly) {
  SparseMatrix m(5);
  m.SetCols(10);
  EXPECT_EQ(m.cols(), 10);
}

TEST(SparseMatrixTest, ScaleColumns) {
  SparseMatrix m;
  m.AppendRow(std::vector<SparseEntry>{{0, 2.0}, {1, 4.0}});
  m.AppendRow(std::vector<SparseEntry>{{1, 8.0}});
  m.ScaleColumns({0.5, 0.25});
  EXPECT_DOUBLE_EQ(m.row(0).values[0], 1.0);
  EXPECT_DOUBLE_EQ(m.row(0).values[1], 1.0);
  EXPECT_DOUBLE_EQ(m.row(1).values[0], 2.0);
}

TEST(DenseOpsTest, DotAxpyScaleNorm) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(L2NormSquared(a), 14.0);
  Axpy(2.0, a, &b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  Scale(0.5, &b);
  EXPECT_DOUBLE_EQ(b[0], 3.0);
}

TEST(SparseRowViewTest, EmptyViewIsSafe) {
  SparseRowView v;
  std::vector<double> dense = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 0.0);
  EXPECT_DOUBLE_EQ(v.L2NormSquared(), 0.0);
  v.AxpyInto(3.0, &dense);
  EXPECT_DOUBLE_EQ(dense[0], 1.0);
}

}  // namespace
}  // namespace spa::ml
