#include <cmath>

#include "gtest/gtest.h"
#include "ml/logreg.h"
#include "ml/naive_bayes.h"
#include "ml/online.h"
#include "ml/test_util.h"

namespace spa::ml {
namespace {

TEST(SigmoidTest, KnownValuesAndStability) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 0.8807970779778823, 1e-12);
  EXPECT_NEAR(Sigmoid(-2.0), 1.0 - 0.8807970779778823, 1e-12);
  // No overflow at extremes.
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(LogisticRegressionTest, SeparableBlobs) {
  const Dataset data = testing::MakeBlobs(300, 4, 5.0, 42);
  LogisticRegression model;
  ASSERT_TRUE(model.Train(data).ok());
  EXPECT_GE(testing::AccuracyOf(model, data), 0.98);
}

TEST(LogisticRegressionTest, ProbabilitiesOrderedByScore) {
  const Dataset data = testing::MakeBlobs(200, 3, 4.0, 7);
  LogisticRegression model;
  ASSERT_TRUE(model.Train(data).ok());
  // Probability is a monotone transform of the decision value.
  const auto r0 = data.x.row(0);
  const auto r1 = data.x.row(1);
  const bool score_order = model.Score(r0) < model.Score(r1);
  const bool prob_order =
      model.PredictProbability(r0) < model.PredictProbability(r1);
  EXPECT_EQ(score_order, prob_order);
}

TEST(LogisticRegressionTest, ProbabilitiesInUnitInterval) {
  const Dataset data = testing::MakeBlobs(200, 3, 4.0, 7);
  LogisticRegression model;
  ASSERT_TRUE(model.Train(data).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    const double p = model.PredictProbability(data.x.row(i));
    ASSERT_GT(p, 0.0);
    ASSERT_LT(p, 1.0);
  }
}

TEST(LogisticRegressionTest, RejectsEmpty) {
  LogisticRegression model;
  Dataset empty;
  EXPECT_FALSE(model.Train(empty).ok());
}

TEST(NaiveBayesTest, LearnsInformativeSparseFeatures) {
  const Dataset data =
      testing::MakeSparseBinary(2000, 50, 5, 0.7, 0.1, 42);
  BernoulliNaiveBayes model;
  ASSERT_TRUE(model.Train(data).ok());
  EXPECT_GE(testing::AccuracyOf(model, data), 0.85);
}

TEST(NaiveBayesTest, RequiresBothClasses) {
  Dataset data;
  data.x.AppendRow(std::vector<SparseEntry>{{0, 1.0}});
  data.y = {1};
  BernoulliNaiveBayes model;
  EXPECT_EQ(model.Train(data).code(), StatusCode::kFailedPrecondition);
}

TEST(NaiveBayesTest, IgnoresUnseenFeaturesAtScoreTime) {
  const Dataset data = testing::MakeSparseBinary(500, 10, 3, 0.8, 0.1, 3);
  BernoulliNaiveBayes model;
  ASSERT_TRUE(model.Train(data).ok());
  SparseVector unseen({{100, 1.0}});  // feature index beyond training
  // Must not crash; returns the prior-based score.
  const double s = model.Score(unseen.view());
  EXPECT_TRUE(std::isfinite(s));
}

TEST(PerceptronTest, ConvergesOnSeparableData) {
  const Dataset data = testing::MakeBlobs(400, 4, 6.0, 42);
  Perceptron model(/*averaged=*/false);
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (size_t i = 0; i < data.size(); ++i) {
      model.Update(data.x.row(i), data.y[i]);
    }
  }
  EXPECT_GE(testing::AccuracyOf(model, data), 0.97);
  EXPECT_GT(model.mistakes(), 0);
  EXPECT_EQ(model.updates(), 5 * 400);
}

TEST(PerceptronTest, AveragedSmoothsPredictions) {
  const Dataset data = testing::MakeBlobs(300, 4, 3.0, 19);
  Perceptron averaged(/*averaged=*/true);
  for (size_t i = 0; i < data.size(); ++i) {
    averaged.Update(data.x.row(i), data.y[i]);
  }
  EXPECT_GE(testing::AccuracyOf(averaged, data), 0.9);
}

TEST(PassiveAggressiveTest, ConvergesOnSeparableData) {
  const Dataset data = testing::MakeBlobs(400, 4, 6.0, 42);
  PassiveAggressive model(1.0);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (size_t i = 0; i < data.size(); ++i) {
      model.Update(data.x.row(i), data.y[i]);
    }
  }
  EXPECT_GE(testing::AccuracyOf(model, data), 0.97);
}

TEST(PassiveAggressiveTest, NoUpdateWhenMarginSatisfied) {
  PassiveAggressive model(1.0);
  SparseVector x({{0, 1.0}});
  model.Update(x.view(), 1);  // first update moves the weights
  const double s1 = model.Score(x.view());
  // Keep feeding the same example: once margin >= 1, w stops changing.
  for (int i = 0; i < 10; ++i) model.Update(x.view(), 1);
  EXPECT_GE(model.Score(x.view()), 1.0 - 1e-12);
  EXPECT_GE(s1, 0.0);
}

TEST(OnlineLearnersTest, FeatureSpaceGrowsOnDemand) {
  PassiveAggressive model(1.0);
  SparseVector small({{0, 1.0}});
  model.Update(small.view(), 1);
  SparseVector big({{99, 1.0}});
  model.Update(big.view(), -1);
  EXPECT_LT(model.Score(big.view()), 0.0);
}

}  // namespace
}  // namespace spa::ml
