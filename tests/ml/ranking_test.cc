#include "ml/ranking.h"

#include "gtest/gtest.h"
#include "ml/metrics.h"
#include "ml/test_util.h"

namespace spa::ml {
namespace {

TEST(RankSvmTest, RanksRelevantAboveIrrelevant) {
  const Dataset data = testing::MakeBlobs(400, 4, 4.0, 42);
  RankSvm ranker;
  ASSERT_TRUE(ranker.Train(data).ok());
  std::vector<double> scores;
  for (size_t i = 0; i < data.size(); ++i) {
    scores.push_back(ranker.Score(data.x.row(i)));
  }
  EXPECT_GE(RocAuc(scores, data.y), 0.98);
}

TEST(RankSvmTest, RequiresBothClasses) {
  Dataset data;
  data.x.AppendRow(std::vector<SparseEntry>{{0, 1.0}});
  data.y = {1};
  RankSvm ranker;
  EXPECT_EQ(ranker.Train(data).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RankSvmTest, GeneralizesAcrossSamples) {
  const Dataset train = testing::MakeBlobs(400, 5, 3.0, 1);
  const Dataset test = testing::MakeBlobs(300, 5, 3.0, 2);
  RankSvm ranker;
  ASSERT_TRUE(ranker.Train(train).ok());
  std::vector<double> scores;
  for (size_t i = 0; i < test.size(); ++i) {
    scores.push_back(ranker.Score(test.x.row(i)));
  }
  EXPECT_GE(RocAuc(scores, test.y), 0.95);
}

TEST(KendallTauTest, IdenticalOrderIsOne) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
}

TEST(KendallTauTest, ReversedOrderIsMinusOne) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0);
}

TEST(KendallTauTest, PartialAgreement) {
  // One discordant pair of six -> (5 - 1) / 6 = 2/3.
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {1, 2, 4, 3}), 2.0 / 3.0, 1e-12);
}

TEST(KendallTauTest, ShortVectors) {
  EXPECT_DOUBLE_EQ(KendallTau({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1.0}, {2.0}), 1.0);
}

}  // namespace
}  // namespace spa::ml
