#include "ml/dataset.h"

#include <set>

#include "gtest/gtest.h"
#include "ml/test_util.h"

namespace spa::ml {
namespace {

TEST(DatasetTest, ValidateCatchesSizeMismatch) {
  Dataset d;
  d.x.AppendRow(std::vector<SparseEntry>{{0, 1.0}});
  // no labels
  EXPECT_FALSE(d.Validate().ok());
  d.y.push_back(1);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesBadLabels) {
  Dataset d;
  d.x.AppendRow(std::vector<SparseEntry>{{0, 1.0}});
  d.y.push_back(0);
  EXPECT_FALSE(d.Validate().ok());
  d.y[0] = -1;
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesFeatureNameMismatch) {
  Dataset d;
  d.x.AppendRow(std::vector<SparseEntry>{{1, 1.0}});  // cols = 2
  d.y.push_back(1);
  d.feature_names = {"only_one"};
  EXPECT_FALSE(d.Validate().ok());
  d.feature_names = {"a", "b"};
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, PositivesCount) {
  Dataset d = testing::MakeBlobs(10, 2, 1.0, 1);
  EXPECT_EQ(d.positives(), 5u);  // alternating labels
}

TEST(DatasetTest, SubsetPreservesRowsAndLabels) {
  Dataset d = testing::MakeBlobs(20, 3, 2.0, 7);
  const Dataset sub = d.Subset({0, 5, 19});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.features(), d.features());
  EXPECT_EQ(sub.y[0], d.y[0]);
  EXPECT_EQ(sub.y[2], d.y[19]);
  const SparseRowView orig = d.x.row(5);
  const SparseRowView copy = sub.x.row(1);
  ASSERT_EQ(copy.nnz, orig.nnz);
  for (size_t i = 0; i < copy.nnz; ++i) {
    EXPECT_EQ(copy.indices[i], orig.indices[i]);
    EXPECT_DOUBLE_EQ(copy.values[i], orig.values[i]);
  }
}

TEST(SplitTest, TrainTestPartition) {
  Rng rng(3);
  const auto split = MakeTrainTestSplit(100, 0.25, &rng);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  std::set<size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, StratifiedPreservesPositiveRate) {
  std::vector<Label> y;
  for (int i = 0; i < 1000; ++i) y.push_back(i < 100 ? 1 : -1);
  Rng rng(3);
  const auto split = MakeStratifiedSplit(y, 0.3, &rng);
  size_t test_pos = 0;
  for (size_t i : split.test) {
    if (y[i] > 0) ++test_pos;
  }
  // 10% positives overall -> expect exactly 30 of the 300 test rows.
  EXPECT_EQ(split.test.size(), 300u);
  EXPECT_EQ(test_pos, 30u);
}

TEST(KFoldTest, FoldsPartitionTheData) {
  Rng rng(11);
  const auto folds = KFoldIndices(103, 5, &rng);
  EXPECT_EQ(folds.size(), 5u);
  std::set<size_t> all;
  size_t total = 0;
  for (const auto& f : folds) {
    total += f.size();
    all.insert(f.begin(), f.end());
  }
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(all.size(), 103u);
  // Balanced: sizes differ by at most one.
  for (const auto& f : folds) {
    EXPECT_GE(f.size(), 20u);
    EXPECT_LE(f.size(), 21u);
  }
}

TEST(KFoldTest, StratifiedFoldsKeepClassBalance) {
  std::vector<Label> y;
  for (int i = 0; i < 500; ++i) y.push_back(i % 5 == 0 ? 1 : -1);
  Rng rng(11);
  const auto folds = StratifiedKFoldIndices(y, 5, &rng);
  for (const auto& f : folds) {
    size_t pos = 0;
    for (size_t i : f) {
      if (y[i] > 0) ++pos;
    }
    EXPECT_EQ(pos, 20u);  // 100 positives spread over 5 folds
  }
}

// Property sweep over fractions: split sizes always consistent.
class SplitFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitFractionSweep, SizesAddUp) {
  Rng rng(42);
  const double frac = GetParam();
  const auto split = MakeTrainTestSplit(997, frac, &rng);
  EXPECT_EQ(split.train.size() + split.test.size(), 997u);
  EXPECT_EQ(split.test.size(),
            static_cast<size_t>(997 * frac));
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitFractionSweep,
                         ::testing::Values(0.1, 0.2, 0.25, 0.5, 0.75,
                                           0.9));

}  // namespace
}  // namespace spa::ml
