#include <memory>

#include "gtest/gtest.h"
#include "ml/metrics.h"
#include "ml/svm_linear.h"
#include "ml/svm_smo.h"
#include "ml/test_util.h"

namespace spa::ml {
namespace {

TEST(LinearSvmTest, RejectsEmptyDataset) {
  LinearSvm svm;
  Dataset empty;
  EXPECT_FALSE(svm.Train(empty).ok());
}

TEST(LinearSvmTest, SeparableBlobsPerfectTrainAccuracy) {
  const Dataset data = testing::MakeBlobs(200, 4, 6.0, 42);
  LinearSvm svm;
  ASSERT_TRUE(svm.Train(data).ok());
  EXPECT_GE(testing::AccuracyOf(svm, data), 0.99);
}

TEST(LinearSvmTest, GeneralizesToHeldOut) {
  const Dataset train = testing::MakeBlobs(400, 4, 4.0, 1);
  const Dataset test = testing::MakeBlobs(200, 4, 4.0, 2);
  LinearSvm svm;
  ASSERT_TRUE(svm.Train(train).ok());
  EXPECT_GE(testing::AccuracyOf(svm, test), 0.95);
}

TEST(LinearSvmTest, WeightsPointAcrossTheMargin) {
  // Blob centers at +s/2 on every axis for positives: all weights
  // should be positive.
  const Dataset data = testing::MakeBlobs(300, 3, 5.0, 7);
  LinearSvm svm;
  ASSERT_TRUE(svm.Train(data).ok());
  for (double w : svm.weights()) EXPECT_GT(w, 0.0);
}

TEST(LinearSvmTest, SquaredHingeAlsoSeparates) {
  const Dataset data = testing::MakeBlobs(200, 4, 6.0, 42);
  SvmConfig config;
  config.loss = SvmLoss::kSquaredHinge;
  LinearSvm svm(config);
  ASSERT_TRUE(svm.Train(data).ok());
  EXPECT_GE(testing::AccuracyOf(svm, data), 0.99);
}

TEST(LinearSvmTest, DualVariablesRespectBox) {
  const Dataset data = testing::MakeBlobs(100, 3, 2.0, 9);
  SvmConfig config;
  config.c = 0.5;
  LinearSvm svm(config);
  ASSERT_TRUE(svm.Train(data).ok());
  for (double a : svm.alphas()) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 0.5 + 1e-9);
  }
}

TEST(LinearSvmTest, ConvergesEarlyOnEasyData) {
  const Dataset data = testing::MakeBlobs(100, 2, 8.0, 3);
  SvmConfig config;
  config.max_iterations = 200;
  LinearSvm svm(config);
  ASSERT_TRUE(svm.Train(data).ok());
  EXPECT_LT(svm.iterations_run(), 200);
}

TEST(LinearSvmTest, ClassWeightShiftsDecision) {
  // Imbalanced overlapping data; upweighting positives must increase
  // positive recall.
  Dataset data = testing::MakeBlobs(400, 2, 1.0, 5);
  SvmConfig plain;
  LinearSvm svm_plain(plain);
  ASSERT_TRUE(svm_plain.Train(data).ok());

  SvmConfig weighted = plain;
  weighted.positive_class_weight = 10.0;
  LinearSvm svm_weighted(weighted);
  ASSERT_TRUE(svm_weighted.Train(data).ok());

  const auto scores_plain = svm_plain.ScoreAll(data);
  const auto scores_weighted = svm_weighted.ScoreAll(data);
  const double recall_plain = Confusion(scores_plain, data.y).Recall();
  const double recall_weighted =
      Confusion(scores_weighted, data.y).Recall();
  EXPECT_GE(recall_weighted, recall_plain);
}

TEST(PegasosSvmTest, SeparableBlobs) {
  const Dataset data = testing::MakeBlobs(400, 4, 6.0, 42);
  SvmConfig config;
  config.max_iterations = 30;
  PegasosSvm svm(config);
  ASSERT_TRUE(svm.Train(data).ok());
  EXPECT_GE(testing::AccuracyOf(svm, data), 0.97);
}

TEST(PegasosSvmTest, AgreesWithDcdOnEasyData) {
  const Dataset data = testing::MakeBlobs(300, 4, 5.0, 11);
  LinearSvm dcd;
  PegasosSvm pegasos;
  ASSERT_TRUE(dcd.Train(data).ok());
  ASSERT_TRUE(pegasos.Train(data).ok());
  size_t agree = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.x.row(i);
    if ((dcd.Score(row) >= 0) == (pegasos.Score(row) >= 0)) ++agree;
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(data.size()),
            0.97);
}

TEST(PegasosSvmTest, PartialTrainImprovesOverTime) {
  const Dataset data = testing::MakeBlobs(300, 4, 3.0, 13);
  SvmConfig config;
  config.max_iterations = 1;
  PegasosSvm svm(config);
  ASSERT_TRUE(svm.Train(data).ok());
  // several incremental passes
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(svm.PartialTrain(data).ok());
  }
  const double acc_after = testing::AccuracyOf(svm, data);
  EXPECT_GE(acc_after, 0.95);
}

TEST(PegasosSvmTest, PartialTrainGrowsFeatureSpace) {
  Dataset small = testing::MakeBlobs(50, 2, 5.0, 17);
  PegasosSvm svm;
  ASSERT_TRUE(svm.Train(small).ok());
  Dataset wider = testing::MakeBlobs(50, 6, 5.0, 18);
  ASSERT_TRUE(svm.PartialTrain(wider).ok());
  EXPECT_EQ(svm.weights().size(), 6u);
}

TEST(SmoSvmTest, RbfSolvesXor) {
  const Dataset data = testing::MakeXor(200, 21);
  SmoConfig config;
  config.kernel.kind = KernelKind::kRbf;
  config.kernel.gamma = 2.0;
  config.c = 10.0;
  SmoSvm svm(config);
  ASSERT_TRUE(svm.Train(data).ok());
  EXPECT_GE(testing::AccuracyOf(svm, data), 0.9);
  EXPECT_GT(svm.support_vector_count(), 0u);
}

TEST(SmoSvmTest, LinearKernelMatchesLinearSvmOnBlobs) {
  const Dataset data = testing::MakeBlobs(150, 3, 5.0, 23);
  SmoConfig config;
  config.kernel.kind = KernelKind::kLinear;
  SmoSvm smo(config);
  LinearSvm dcd;
  ASSERT_TRUE(smo.Train(data).ok());
  ASSERT_TRUE(dcd.Train(data).ok());
  size_t agree = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.x.row(i);
    if ((smo.Score(row) >= 0) == (dcd.Score(row) >= 0)) ++agree;
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(data.size()),
            0.98);
}

TEST(SmoSvmTest, RejectsSingleClassData) {
  Dataset data;
  data.x.AppendRow(std::vector<SparseEntry>{{0, 1.0}});
  data.x.AppendRow(std::vector<SparseEntry>{{0, 2.0}});
  data.y = {1, 1};
  SmoSvm svm;
  EXPECT_EQ(svm.Train(data).code(), StatusCode::kFailedPrecondition);
}

TEST(SmoSvmTest, PolynomialKernelSeparatesBlobs) {
  const Dataset data = testing::MakeBlobs(120, 2, 5.0, 29);
  SmoConfig config;
  config.kernel.kind = KernelKind::kPolynomial;
  config.kernel.degree = 2;
  config.kernel.gamma = 1.0;
  SmoSvm svm(config);
  ASSERT_TRUE(svm.Train(data).ok());
  EXPECT_GE(testing::AccuracyOf(svm, data), 0.95);
}

TEST(KernelTest, RbfSelfSimilarityIsOne) {
  SparseVector v({{0, 1.0}, {1, 2.0}});
  KernelConfig k;
  k.kind = KernelKind::kRbf;
  k.gamma = 0.7;
  EXPECT_NEAR(EvalKernel(k, v.view(), v.view()), 1.0, 1e-12);
}

TEST(KernelTest, LinearKernelIsDot) {
  SparseVector a({{0, 1.0}, {1, 2.0}});
  SparseVector b({{1, 3.0}, {2, 4.0}});
  KernelConfig k;
  k.kind = KernelKind::kLinear;
  EXPECT_DOUBLE_EQ(EvalKernel(k, a.view(), b.view()), 6.0);
}

// Property sweep: the DCD SVM must stay accurate across C values on
// separable data (margins change; separation should not).
class SvmCSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmCSweep, SeparableStaysSeparated) {
  const Dataset data = testing::MakeBlobs(200, 3, 6.0, 31);
  SvmConfig config;
  config.c = GetParam();
  LinearSvm svm(config);
  ASSERT_TRUE(svm.Train(data).ok());
  EXPECT_GE(testing::AccuracyOf(svm, data), 0.98) << "C=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CValues, SvmCSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0));

}  // namespace
}  // namespace spa::ml
