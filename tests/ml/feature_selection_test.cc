#include "ml/feature_selection.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "ml/test_util.h"

namespace spa::ml {
namespace {

TEST(ChiSquareTest, InformativeFeaturesScoreHigher) {
  const Dataset data =
      testing::MakeSparseBinary(3000, 30, 5, 0.8, 0.1, 42);
  const auto scores = ChiSquareScores(data);
  ASSERT_EQ(scores.size(), 30u);
  double min_informative = 1e300;
  double max_noise = 0.0;
  for (size_t f = 0; f < 30; ++f) {
    if (f < 5) {
      min_informative = std::min(min_informative, scores[f]);
    } else {
      max_noise = std::max(max_noise, scores[f]);
    }
  }
  EXPECT_GT(min_informative, max_noise);
}

TEST(SelectKBestTest, PicksTopScoresSortedByIndex) {
  const std::vector<double> scores = {0.1, 5.0, 3.0, 4.0, 0.2};
  const auto selected = SelectKBest(scores, 3);
  EXPECT_EQ(selected, (std::vector<int32_t>{1, 2, 3}));
}

TEST(SelectKBestTest, KLargerThanFeatureCountClamps) {
  const auto selected = SelectKBest({1.0, 2.0}, 10);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(SelectKBestTest, TieBreaksByLowerIndex) {
  const auto selected = SelectKBest({2.0, 2.0, 2.0}, 2);
  EXPECT_EQ(selected, (std::vector<int32_t>{0, 1}));
}

TEST(ProjectDatasetTest, RemapsIndicesCompactly) {
  Dataset data;
  data.x.AppendRow(std::vector<SparseEntry>{{0, 1.0}, {2, 2.0}, {4, 3.0}});
  data.x.AppendRow(std::vector<SparseEntry>{{1, 5.0}, {2, 6.0}});
  data.y = {1, -1};
  data.feature_names = {"f0", "f1", "f2", "f3", "f4"};

  const Dataset proj = ProjectDataset(data, {2, 4});
  EXPECT_EQ(proj.features(), 2);
  EXPECT_EQ(proj.feature_names,
            (std::vector<std::string>{"f2", "f4"}));
  const auto r0 = proj.x.row(0);
  ASSERT_EQ(r0.nnz, 2u);
  EXPECT_EQ(r0.indices[0], 0);
  EXPECT_DOUBLE_EQ(r0.values[0], 2.0);
  EXPECT_EQ(r0.indices[1], 1);
  EXPECT_DOUBLE_EQ(r0.values[1], 3.0);
  const auto r1 = proj.x.row(1);
  ASSERT_EQ(r1.nnz, 1u);
  EXPECT_EQ(r1.indices[0], 0);
  EXPECT_DOUBLE_EQ(r1.values[0], 6.0);
}

TEST(SvmRfeTest, RecoversInformativeFeatures) {
  const Dataset data =
      testing::MakeSparseBinary(2000, 25, 5, 0.8, 0.05, 42);
  RfeConfig config;
  config.target_features = 5;
  config.svm.max_iterations = 50;
  const auto result = SvmRfe(data, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().selected.size(), 5u);
  // At least 4 of the 5 truly informative features (indices 0..4)
  // should survive.
  int informative_kept = 0;
  for (int32_t f : result.value().selected) {
    if (f < 5) ++informative_kept;
  }
  EXPECT_GE(informative_kept, 4);
}

TEST(SvmRfeTest, EliminationRanksAreConsistent) {
  const Dataset data =
      testing::MakeSparseBinary(800, 12, 3, 0.8, 0.05, 7);
  RfeConfig config;
  config.target_features = 3;
  const auto result = SvmRfe(data, config);
  ASSERT_TRUE(result.ok());
  const auto& ranks = result.value().elimination_rank;
  ASSERT_EQ(ranks.size(), 12u);
  // Selected features carry the maximal rank.
  const int32_t max_rank =
      *std::max_element(ranks.begin(), ranks.end());
  for (int32_t f : result.value().selected) {
    EXPECT_EQ(ranks[static_cast<size_t>(f)], max_rank);
  }
  // Every feature received a rank >= 1.
  for (int32_t r : ranks) EXPECT_GE(r, 1);
}

TEST(SvmRfeTest, InvalidTargetRejected) {
  const Dataset data = testing::MakeSparseBinary(100, 5, 2, 0.8, 0.1, 1);
  RfeConfig config;
  config.target_features = 0;
  EXPECT_FALSE(SvmRfe(data, config).ok());
  config.target_features = 6;
  EXPECT_FALSE(SvmRfe(data, config).ok());
}

TEST(SvmRfeTest, TargetEqualsTotalKeepsEverything) {
  const Dataset data = testing::MakeSparseBinary(100, 5, 2, 0.8, 0.1, 1);
  RfeConfig config;
  config.target_features = 5;
  const auto result = SvmRfe(data, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().selected.size(), 5u);
}

}  // namespace
}  // namespace spa::ml
