#ifndef SPA_TESTS_ML_TEST_UTIL_H_
#define SPA_TESTS_ML_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/sparse.h"

/// Synthetic dataset builders shared by the ML tests.

namespace spa::ml::testing {

/// Two Gaussian blobs in `dims` dense dimensions, labels +1/-1. The
/// blobs are centered at +separation/2 and -separation/2 along every
/// axis; separation >> 1 gives a linearly separable problem.
inline Dataset MakeBlobs(size_t n, size_t dims, double separation,
                         uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.x.SetCols(static_cast<int32_t>(dims));
  for (size_t i = 0; i < n; ++i) {
    const bool pos = (i % 2 == 0);
    const double center = (pos ? 1.0 : -1.0) * separation / 2.0;
    std::vector<SparseEntry> entries;
    entries.reserve(dims);
    for (size_t d = 0; d < dims; ++d) {
      entries.push_back(
          {static_cast<int32_t>(d), rng.Normal(center, 1.0)});
    }
    data.x.AppendRow(entries);
    data.y.push_back(pos ? 1 : -1);
  }
  return data;
}

/// Sparse binary dataset: `informative` features correlate with the
/// label (present with probability p_match when the label "matches"),
/// the rest are noise. Mirrors the EIT answer sparsity pattern.
inline Dataset MakeSparseBinary(size_t n, size_t dims, size_t informative,
                                double p_informative, double p_noise,
                                uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.x.SetCols(static_cast<int32_t>(dims));
  for (size_t i = 0; i < n; ++i) {
    const bool pos = rng.Bernoulli(0.5);
    std::vector<SparseEntry> entries;
    for (size_t d = 0; d < dims; ++d) {
      double p;
      if (d < informative) {
        p = pos ? p_informative : p_noise;
      } else {
        p = p_noise;
      }
      if (rng.Bernoulli(p)) {
        entries.push_back({static_cast<int32_t>(d), 1.0});
      }
    }
    data.x.AppendRow(entries);
    data.y.push_back(pos ? 1 : -1);
  }
  return data;
}

/// XOR-like dataset in 2D (not linearly separable).
inline Dataset MakeXor(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.x.SetCols(2);
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1.0, 1.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    std::vector<SparseEntry> entries = {{0, x0}, {1, x1}};
    data.x.AppendRow(entries);
    data.y.push_back((x0 * x1 > 0.0) ? 1 : -1);
  }
  return data;
}

/// Fraction of correct sign predictions.
template <typename Model>
double AccuracyOf(const Model& model, const Dataset& data) {
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const double s = model.Score(data.x.row(i));
    const int pred = s >= 0.0 ? 1 : -1;
    if (pred == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.size());
}

}  // namespace spa::ml::testing

#endif  // SPA_TESTS_ML_TEST_UTIL_H_
