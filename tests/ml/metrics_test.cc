#include "ml/metrics.h"

#include <cmath>

#include "gtest/gtest.h"

namespace spa::ml {
namespace {

TEST(ConfusionTest, CountsAndDerivedMetrics) {
  const std::vector<double> scores = {1.0, 1.0, -1.0, -1.0, 1.0};
  const std::vector<Label> labels = {1, -1, -1, 1, 1};
  const ConfusionMatrix cm = Confusion(scores, labels);
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(cm.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.Recall(), 2.0 / 3.0);
  EXPECT_NEAR(cm.F1(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionTest, EmptyInputsSafe) {
  const ConfusionMatrix cm = Confusion({}, {});
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.F1(), 0.0);
}

TEST(RocAucTest, PerfectRanking) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<Label> labels = {1, 1, -1, -1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
}

TEST(RocAucTest, InvertedRanking) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<Label> labels = {1, 1, -1, -1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.0);
}

TEST(RocAucTest, RandomTiedScores) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<Label> labels = {1, -1, 1, -1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(RocAucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {-1, -1}), 0.5);
}

TEST(RocAucTest, KnownPartialValue) {
  // 2 pos, 2 neg; one inversion out of 4 pairs -> AUC = 0.75.
  const std::vector<double> scores = {0.9, 0.3, 0.5, 0.1};
  const std::vector<Label> labels = {1, 1, -1, -1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.75);
}

TEST(LogLossTest, PerfectAndWorst) {
  EXPECT_NEAR(LogLoss({1.0 - 1e-15, 1e-15}, {1, -1}), 0.0, 1e-9);
  EXPECT_GT(LogLoss({0.01, 0.99}, {1, -1}), 4.0);
}

TEST(LogLossTest, UninformativeIsLn2) {
  EXPECT_NEAR(LogLoss({0.5, 0.5}, {1, -1}), std::log(2.0), 1e-12);
}

TEST(GainsTest, PerfectModelCurve) {
  // 100 examples, 10 positives, perfectly scored on top.
  std::vector<double> scores;
  std::vector<Label> labels;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(100.0 - i);
    labels.push_back(i < 10 ? 1 : -1);
  }
  const auto curve = CumulativeGains(scores, labels, 10);
  // First decile captures all positives.
  EXPECT_DOUBLE_EQ(curve[0].fraction_targeted, 0.1);
  EXPECT_DOUBLE_EQ(curve[0].fraction_captured, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].lift, 10.0);
  // Curve ends at (1, 1).
  EXPECT_DOUBLE_EQ(curve.back().fraction_targeted, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fraction_captured, 1.0);
}

TEST(GainsTest, CurveIsMonotone) {
  std::vector<double> scores;
  std::vector<Label> labels;
  for (int i = 0; i < 500; ++i) {
    scores.push_back(static_cast<double>((i * 37) % 100));
    labels.push_back(i % 7 == 0 ? 1 : -1);
  }
  const auto curve = CumulativeGains(scores, labels, 20);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fraction_captured,
              curve[i - 1].fraction_captured);
    EXPECT_GT(curve[i].fraction_targeted,
              curve[i - 1].fraction_targeted);
  }
}

TEST(GainsTest, RandomModelNearDiagonal) {
  std::vector<double> scores;
  std::vector<Label> labels;
  for (int i = 0; i < 10000; ++i) {
    scores.push_back(static_cast<double>((i * 2654435761u) % 997));
    labels.push_back(i % 5 == 0 ? 1 : -1);
  }
  const auto curve = CumulativeGains(scores, labels, 10);
  for (const auto& pt : curve) {
    EXPECT_NEAR(pt.fraction_captured, pt.fraction_targeted, 0.05);
  }
}

TEST(GainsTest, CapturedAtInterpolates) {
  std::vector<GainsPoint> curve = {
      {0.5, 0.8, 1.6},
      {1.0, 1.0, 1.0},
  };
  EXPECT_DOUBLE_EQ(CapturedAt(curve, 0.5), 0.8);
  EXPECT_DOUBLE_EQ(CapturedAt(curve, 0.25), 0.4);
  EXPECT_DOUBLE_EQ(CapturedAt(curve, 0.75), 0.9);
  EXPECT_DOUBLE_EQ(CapturedAt(curve, 1.0), 1.0);
}

TEST(PredictiveScoreTest, TopSliceHitRate) {
  // Top 40% of 10 = 4 rows; 3 of them positive.
  const std::vector<double> scores = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  const std::vector<Label> labels = {1, 1, -1, 1, -1, -1, -1, -1, -1, -1};
  EXPECT_DOUBLE_EQ(PredictiveScore(scores, labels, 0.4), 0.75);
}

TEST(PredictiveScoreTest, FullDepthEqualsBaseRate) {
  const std::vector<double> scores = {3, 1, 2, 0};
  const std::vector<Label> labels = {1, -1, -1, -1};
  EXPECT_DOUBLE_EQ(PredictiveScore(scores, labels, 1.0), 0.25);
}

TEST(CalibrationTest, BinsAggregateCorrectly) {
  const std::vector<double> probs = {0.05, 0.05, 0.95, 0.95};
  const std::vector<Label> labels = {-1, -1, 1, 1};
  const auto bins = CalibrationCurve(probs, labels, 10);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_DOUBLE_EQ(bins[0].fraction_positive, 0.0);
  EXPECT_EQ(bins[9].count, 2u);
  EXPECT_DOUBLE_EQ(bins[9].fraction_positive, 1.0);
  EXPECT_NEAR(bins[9].mean_predicted, 0.95, 1e-12);
}

TEST(CalibrationTest, ProbabilityOneLandsInLastBin) {
  const auto bins = CalibrationCurve({1.0}, {1}, 5);
  EXPECT_EQ(bins[4].count, 1u);
}

// Property sweep: gains curve with k points always has k points, ends
// at (1,1), and lift * fraction == captured.
class GainsPointsSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(GainsPointsSweep, StructuralInvariants) {
  std::vector<double> scores;
  std::vector<Label> labels;
  for (int i = 0; i < 240; ++i) {
    scores.push_back(static_cast<double>((i * 53) % 41));
    labels.push_back(i % 3 == 0 ? 1 : -1);
  }
  const auto curve = CumulativeGains(scores, labels, GetParam());
  EXPECT_EQ(curve.size(), GetParam());
  EXPECT_DOUBLE_EQ(curve.back().fraction_targeted, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fraction_captured, 1.0);
  for (const auto& pt : curve) {
    EXPECT_NEAR(pt.lift * pt.fraction_targeted, pt.fraction_captured,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(PointCounts, GainsPointsSweep,
                         ::testing::Values(1u, 4u, 10u, 20u, 100u));

}  // namespace
}  // namespace spa::ml
