// Serving throughput: single-request vs. thread-pool-batched serving
// through the RecsysEngine request/response API. Measures requests/sec
// sequentially and with RecommendBatch at 1/2/4/8 worker threads,
// verifies that batched rankings are identical to sequential ones, and
// emits BENCH_serving.json so the perf trajectory is tracked.
//
//   ./build/bench/bench_serving [--users=N] [--seed=S]

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"
#include "sum/sum_store.h"

namespace spa::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool SameResults(
    const std::vector<spa::Result<recsys::RecommendResponse>>& a,
    const std::vector<spa::Result<recsys::RecommendResponse>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ok() != b[i].ok()) return false;
    if (!a[i].ok()) continue;
    const auto& lhs = a[i].value().items;
    const auto& rhs = b[i].value().items;
    if (lhs.size() != rhs.size()) return false;
    for (size_t j = 0; j < lhs.size(); ++j) {
      if (lhs[j].item != rhs[j].item || lhs[j].score != rhs[j].score) {
        return false;
      }
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  const size_t users = flags.users > 0 ? flags.users : 2'000;
  const size_t items = 400;
  const size_t k = 10;

  PrintHeader(StrFormat(
      "Serving throughput - sequential vs batched (%zu users)", users));

  // Two-community interaction matrix plus long-tail noise.
  Rng rng(flags.seed);
  recsys::InteractionMatrix matrix;
  for (size_t u = 0; u < users; ++u) {
    const auto base = static_cast<recsys::ItemId>(
        (u % 2 == 0) ? 0 : items / 2);
    for (int j = 0; j < 12; ++j) {
      const auto item = static_cast<recsys::ItemId>(
          base + rng.UniformInt(0, static_cast<int64_t>(items) / 2 - 1));
      matrix.Add(static_cast<recsys::UserId>(u), item,
                 rng.Uniform(0.2, 3.0));
    }
  }

  // Engine: CF + popularity hybrid with emotional re-ranking on top.
  sum::AttributeCatalog catalog = sum::AttributeCatalog::EmagisterDefault();
  sum::SumStore sums(&catalog);
  for (size_t u = 0; u < users; ++u) {
    sum::SmartUserModel* model =
        sums.GetOrCreate(static_cast<sum::UserId>(u));
    for (eit::EmotionalAttribute attr : eit::AllEmotionalAttributes()) {
      if (rng.Bernoulli(0.3)) {
        model->set_sensibility(catalog.EmotionalId(attr),
                               rng.Uniform(0.3, 1.0));
      }
    }
  }

  recsys::RecsysEngine engine;
  engine.AddComponent(std::make_unique<recsys::UserKnnRecommender>(),
                      0.6);
  engine.AddComponent(std::make_unique<recsys::PopularityRecommender>(),
                      0.4);
  for (size_t i = 0; i < items; ++i) {
    recsys::EmotionProfile profile{};
    for (double& p : profile) p = rng.Uniform();
    engine.SetItemEmotionProfile(static_cast<recsys::ItemId>(i),
                                 profile);
  }
  engine.set_sum_store(&sums);
  if (!engine.Fit(matrix).ok()) {
    std::printf("engine fit failed\n");
    return 1;
  }

  std::vector<recsys::RecommendRequest> requests;
  requests.reserve(users);
  for (size_t u = 0; u < users; ++u) {
    recsys::RecommendRequest request;
    request.user = static_cast<recsys::UserId>(u);
    request.k = k;
    requests.push_back(std::move(request));
  }

  // Sequential baseline.
  std::vector<spa::Result<recsys::RecommendResponse>> sequential;
  sequential.reserve(requests.size());
  const auto seq_start = Clock::now();
  for (const auto& request : requests) {
    sequential.push_back(engine.Recommend(request));
  }
  const double seq_seconds = SecondsSince(seq_start);
  const double seq_rps = static_cast<double>(users) / seq_seconds;
  std::printf("\nsequential:        %8.0f req/s  (%.3f s)\n", seq_rps,
              seq_seconds);

  struct BatchPoint {
    size_t threads;
    double rps;
    double speedup;
    bool parity;
  };
  std::vector<BatchPoint> points;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    engine.set_batch_threads(threads);
    (void)engine.batch_thread_count();  // spawn workers outside timing
    const auto start = Clock::now();
    const auto batched = engine.RecommendBatch(requests);
    const double seconds = SecondsSince(start);
    const double rps = static_cast<double>(users) / seconds;
    const bool parity = SameResults(sequential, batched);
    points.push_back({threads, rps, rps / seq_rps, parity});
    std::printf("batched x%zu:        %8.0f req/s  (%.3f s)  "
                "speedup %.2fx  parity %s\n",
                threads, rps, seconds, rps / seq_rps,
                parity ? "OK" : "MISMATCH");
  }

  std::FILE* json = std::fopen("BENCH_serving.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"serving\",\n  \"users\": %zu,\n"
                 "  \"items\": %zu,\n  \"k\": %zu,\n"
                 "  \"sequential_rps\": %.1f,\n  \"batched\": [\n",
                 users, items, k, seq_rps);
    for (size_t i = 0; i < points.size(); ++i) {
      std::fprintf(json,
                   "    {\"threads\": %zu, \"rps\": %.1f, "
                   "\"speedup\": %.3f, \"parity\": %s}%s\n",
                   points[i].threads, points[i].rps, points[i].speedup,
                   points[i].parity ? "true" : "false",
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_serving.json\n");
  }

  for (const BatchPoint& p : points) {
    if (!p.parity) return 1;  // batched serving must match sequential
  }
  return 0;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
