// Serving throughput through the RecsysEngine request/response API:
//
//   * sequential vs. thread-pool-batched serving (parity-checked),
//   * repeat traffic with the response cache enabled vs. disabled
//     (identical requests re-served after nothing changed),
//   * SUM update throughput through SumService::Apply / ApplyAll,
//     including the serve-after-invalidation cost,
//   * KNN cold traffic (every request a cache miss): fit-time
//     similarity index vs. lazy per-request recomputation, with an
//     exact ranking-parity gate (a mismatch fails the run), and
//   * live updates: interleaved ApplyInteractions + serving over a
//     sharded store, incremental index refresh vs. full refit, with
//     the same exact parity gate, and
//   * streaming: an open-loop arrival-rate sweep through the async
//     ServingPipeline (bounded admission queue, micro-batching, writer
//     lane for live updates), reporting p50/p95/p99 end-to-end and
//     queue-wait latencies from the pipeline's log-scale histograms,
//     with a quiescent streamed-vs-RecommendBatch bitwise parity gate,
//     and
//   * router: closed-loop aggregate throughput through the router tier
//     (OwnershipDirectory + shared-nothing worker replicas) at 1/2/4
//     workers, after fanning one live interaction batch to every
//     replica, with a bitwise parity gate against a single-process
//     engine serving the same requests at the same pinned versions.
//
// Everything lands in BENCH_serving.json so the perf trajectory is
// tracked.
//
//   ./build/bench/bench_serving [--users=N] [--seed=S] [--smoke]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "recsys/engine.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"
#include "recsys/router/serving_router.h"
#include "recsys/serving_pipeline.h"
#include "sum/sum_service.h"

// ---- binary-wide allocation counter ----------------------------------------
// The warm-path allocation audit needs to observe every operator-new
// call, so this binary replaces the global allocation functions with
// counting wrappers over malloc/free (zero-overhead passthrough when
// counting is off). Mirrors tests/recsys/allocation_test.cc.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_new_calls{0};

void* BenchCountedAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* BenchCountedAllocAligned(std::size_t size, std::align_val_t align) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t alignment = static_cast<std::size_t>(align);
  std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (rounded == 0) rounded = alignment;
  void* ptr = std::aligned_alloc(alignment, rounded);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
}  // namespace

void* operator new(std::size_t size) { return BenchCountedAlloc(size); }
void* operator new[](std::size_t size) { return BenchCountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return BenchCountedAllocAligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return BenchCountedAllocAligned(size, align);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t,
                       std::align_val_t) noexcept {
  std::free(ptr);
}

namespace spa::bench {
namespace {

using Clock = std::chrono::steady_clock;

bool SameResults(
    const std::vector<spa::Result<recsys::RecommendResponse>>& a,
    const std::vector<spa::Result<recsys::RecommendResponse>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ok() != b[i].ok()) return false;
    if (!a[i].ok()) continue;
    const auto& lhs = a[i].value().items;
    const auto& rhs = b[i].value().items;
    if (lhs.size() != rhs.size()) return false;
    for (size_t j = 0; j < lhs.size(); ++j) {
      if (lhs[j].item != rhs[j].item || lhs[j].score != rhs[j].score) {
        return false;
      }
    }
  }
  return true;
}

/// One indexed-vs-lazy cold-traffic measurement for a KNN variant.
struct KnnIndexPoint {
  const char* scenario = "";
  double lazy_fit_seconds = 0.0;
  double indexed_fit_seconds = 0.0;
  double index_build_seconds = 0.0;
  size_t index_bytes = 0;
  size_t index_entries = 0;
  double lazy_rps = 0.0;
  double indexed_rps = 0.0;
  double speedup = 0.0;
  bool parity = true;
};

/// Serves every user once (cold: no response cache in front) through
/// both the lazy and the indexed recommender and checks exact ranking
/// parity.
template <typename Rec>
KnnIndexPoint RunKnnColdScenario(const char* scenario,
                                 const recsys::InteractionMatrix& matrix,
                                 size_t users, size_t k) {
  KnnIndexPoint point;
  point.scenario = scenario;

  // A failed fit must fail the parity gate, not skip it silently.
  recsys::KnnConfig lazy_config;
  lazy_config.use_index = false;
  Rec lazy(lazy_config);
  auto start = Clock::now();
  if (!lazy.Fit(matrix).ok()) {
    point.parity = false;
    return point;
  }
  point.lazy_fit_seconds = SecondsSince(start);

  Rec indexed;  // use_index defaults on
  start = Clock::now();
  if (!indexed.Fit(matrix).ok()) {
    point.parity = false;
    return point;
  }
  point.indexed_fit_seconds = SecondsSince(start);
  if (indexed.index_stats() != nullptr) {
    point.index_build_seconds = indexed.index_stats()->build_seconds;
    point.index_bytes = indexed.index_stats()->memory_bytes;
    point.index_entries = indexed.index_stats()->entries;
  }

  auto serve_all = [&](const Rec& rec,
                       std::vector<std::vector<recsys::Scored>>* out) {
    out->reserve(users);
    for (size_t u = 0; u < users; ++u) {
      recsys::CandidateQuery query;
      query.user = static_cast<recsys::UserId>(u);
      query.k = k;
      out->push_back(rec.RecommendCandidates(query));
    }
  };
  std::vector<std::vector<recsys::Scored>> lazy_results;
  start = Clock::now();
  serve_all(lazy, &lazy_results);
  point.lazy_rps = static_cast<double>(users) / SecondsSince(start);

  std::vector<std::vector<recsys::Scored>> indexed_results;
  start = Clock::now();
  serve_all(indexed, &indexed_results);
  point.indexed_rps = static_cast<double>(users) / SecondsSince(start);
  point.speedup = point.indexed_rps / point.lazy_rps;

  for (size_t u = 0; u < users && point.parity; ++u) {
    const auto& a = lazy_results[u];
    const auto& b = indexed_results[u];
    if (a.size() != b.size()) point.parity = false;
    for (size_t i = 0; point.parity && i < a.size(); ++i) {
      if (a[i].item != b[i].item || a[i].score != b[i].score) {
        point.parity = false;
      }
    }
  }
  std::printf("%s:  lazy %8.0f req/s | indexed %8.0f req/s | "
              "speedup %7.1fx | build %.3fs | %.1f KiB | parity %s\n",
              scenario, point.lazy_rps, point.indexed_rps, point.speedup,
              point.index_build_seconds,
              static_cast<double>(point.index_bytes) / 1024.0,
              point.parity ? "OK" : "MISMATCH");
  return point;
}

/// One live-update measurement: interleaved ApplyInteractions +
/// serving vs. the old full-refit-per-batch world.
struct LiveUpdatePoint {
  size_t users = 0;
  size_t shards = 0;
  size_t rounds = 0;
  size_t batch_size = 0;
  double incremental_seconds_avg = 0.0;  ///< ApplyInteractions wall
  double full_refit_seconds_avg = 0.0;   ///< engine Fit on same matrix
  double update_speedup = 0.0;
  double interleaved_serve_rps = 0.0;
  size_t rows_refreshed = 0;
  size_t full_rebuilds = 0;
  bool parity = true;
};

/// Clustered interaction topology: users come in communities of 50
/// sharing a 10-item slice, and update bursts hit a couple of
/// communities per round (trending items). This is the workload shape
/// incremental maintenance exists for — the affected neighborhood of a
/// batch is a small fraction of the matrix, unlike the two-community
/// cold-traffic matrix where every row overlaps half the population.
LiveUpdatePoint RunLiveUpdateScenario(size_t users, size_t k,
                                      uint64_t seed, size_t shards,
                                      size_t rounds) {
  constexpr size_t kClusterUsers = 50;
  constexpr size_t kClusterItems = 10;
  const size_t clusters = std::max<size_t>(users / kClusterUsers, 1);
  LiveUpdatePoint point;
  point.users = users;
  point.shards = shards;
  point.rounds = rounds;
  point.batch_size = 16;

  Rng rng(seed);
  recsys::InteractionMatrix matrix(shards);
  for (size_t u = 0; u < users; ++u) {
    const size_t cluster = u / kClusterUsers;
    for (int j = 0; j < 12; ++j) {
      const auto item = static_cast<recsys::ItemId>(
          cluster * kClusterItems +
          rng.UniformInt(0, static_cast<int64_t>(kClusterItems) - 1));
      matrix.Add(static_cast<recsys::UserId>(u), item,
                 rng.Uniform(0.2, 3.0));
    }
  }

  auto make_engine = [] {
    recsys::EngineConfig config;
    config.response_cache_capacity = 0;  // measure compute, not cache
    auto engine = std::make_unique<recsys::RecsysEngine>(config);
    engine->AddComponent(std::make_unique<recsys::UserKnnRecommender>(),
                         0.6);
    engine->AddComponent(std::make_unique<recsys::ItemKnnRecommender>(),
                         0.4);
    return engine;
  };
  auto live = make_engine();
  if (!live->Fit(&matrix).ok()) {
    point.parity = false;
    return point;
  }
  auto refit = make_engine();
  if (!refit->Fit(matrix).ok()) {
    point.parity = false;
    return point;
  }

  double incremental_seconds = 0.0;
  double refit_seconds = 0.0;
  double serve_seconds = 0.0;
  size_t served = 0;
  const size_t sample = std::min<size_t>(users, 100);
  for (size_t round = 0; round < rounds; ++round) {
    // An update burst over two communities.
    std::vector<recsys::Interaction> batch;
    batch.reserve(point.batch_size);
    for (size_t i = 0; i < point.batch_size; ++i) {
      const size_t cluster = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(clusters > 1 ? 2 : 1) - 1));
      const size_t base =
          (round * 2 + cluster) % clusters * kClusterUsers;
      const auto user = static_cast<recsys::UserId>(
          base + rng.UniformInt(
                     0, static_cast<int64_t>(kClusterUsers) - 1));
      const auto item = static_cast<recsys::ItemId>(
          (base / kClusterUsers) * kClusterItems +
          rng.UniformInt(0, static_cast<int64_t>(kClusterItems) - 1));
      batch.push_back({user, item, rng.Uniform(0.2, 3.0)});
    }

    auto start = Clock::now();
    const auto report = live->ApplyInteractions(batch);
    incremental_seconds += SecondsSince(start);
    if (!report.ok()) {
      point.parity = false;
      return point;
    }
    point.rows_refreshed += report.value().rows_refreshed;
    point.full_rebuilds += report.value().full_rebuild ? 1 : 0;

    // The old world: any new interaction means a full refit before
    // serving can resume.
    start = Clock::now();
    if (!refit->Fit(matrix).ok()) {
      point.parity = false;
      return point;
    }
    refit_seconds += SecondsSince(start);

    // Interleaved serving on the live engine, parity-checked against
    // the freshly refitted reference.
    start = Clock::now();
    std::vector<spa::Result<recsys::RecommendResponse>> responses;
    responses.reserve(sample);
    for (size_t s = 0; s < sample; ++s) {
      recsys::RecommendRequest request;
      request.user =
          static_cast<recsys::UserId>((round * sample + s * 7) % users);
      request.k = k;
      responses.push_back(live->Recommend(request));
    }
    serve_seconds += SecondsSince(start);
    served += sample;
    for (size_t s = 0; s < sample && point.parity; ++s) {
      recsys::RecommendRequest request;
      request.user =
          static_cast<recsys::UserId>((round * sample + s * 7) % users);
      request.k = k;
      const auto expected = refit->Recommend(request);
      if (!responses[s].ok() || !expected.ok()) {
        point.parity = false;
        break;
      }
      const auto& lhs = responses[s].value().items;
      const auto& rhs = expected.value().items;
      if (lhs.size() != rhs.size()) point.parity = false;
      for (size_t i = 0; point.parity && i < lhs.size(); ++i) {
        if (lhs[i].item != rhs[i].item || lhs[i].score != rhs[i].score) {
          point.parity = false;
        }
      }
    }
  }

  point.incremental_seconds_avg =
      incremental_seconds / static_cast<double>(rounds);
  point.full_refit_seconds_avg =
      refit_seconds / static_cast<double>(rounds);
  point.update_speedup =
      point.full_refit_seconds_avg / point.incremental_seconds_avg;
  point.interleaved_serve_rps =
      static_cast<double>(served) / serve_seconds;
  std::printf("live_update (x%zu shards): incremental %8.3f ms | "
              "full refit %8.3f ms | speedup %6.1fx | serve %8.0f "
              "req/s | %zu rows | %zu full rebuilds | parity %s\n",
              point.shards, point.incremental_seconds_avg * 1e3,
              point.full_refit_seconds_avg * 1e3, point.update_speedup,
              point.interleaved_serve_rps, point.rows_refreshed,
              point.full_rebuilds, point.parity ? "OK" : "MISMATCH");
  return point;
}

/// One open-loop streaming measurement point.
struct StreamingPoint {
  double target_rps = 0.0;    ///< offered arrival rate (open loop)
  double offered_rps = 0.0;   ///< rate actually achieved by the producer
  double achieved_rps = 0.0;  ///< completions / wall
  double p50_ms = 0.0;        ///< end-to-end latency quantiles
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double queue_p95_ms = 0.0;
  double serve_p95_ms = 0.0;
  uint64_t submitted = 0;
  uint64_t responses = 0;
  uint64_t shed = 0;
  uint64_t updates = 0;
  /// Shed-quality split under kDegrade: degraded popularity responses
  /// actually served vs reads dropped after their deadline expired.
  uint64_t fallback_served = 0;
  uint64_t dropped = 0;
  double hit_rate = 0.0;  ///< response-cache hit rate within this point
  uint64_t max_queue_depth = 0;
};

struct StreamingResult {
  bool parity = true;
  double capacity_rps = 0.0;  ///< closed-loop pipeline throughput
  double deadline_ms = 0.0;   ///< per-request deadline in the sweep
  /// The overload contract: at 2x capacity, deadline-aware degradation
  /// must keep end-to-end p99 bounded (<= the gate printed below)
  /// instead of letting queue wait grow with the backlog.
  bool p99_bounded = true;
  std::vector<StreamingPoint> points;
};

/// Streaming scenario: a quiescent streamed-vs-RecommendBatch bitwise
/// parity gate, then an open-loop arrival-rate sweep (0.5x / 1x / 2x
/// of the measured closed-loop capacity) with live updates riding the
/// writer lane, under the deadline-aware kDegrade overload policy:
/// every read carries a deadline, pressed reads are served from the
/// popularity fallback tier (flagged `degraded`), expired reads are
/// dropped. The sweep cross-checks the flags against the pipeline's
/// fallback/drop counters and gates the 2x point on bounded p99.
/// Latency quantiles come from the pipeline's log-scale histograms.
StreamingResult RunStreamingScenario(size_t users, size_t k,
                                     uint64_t seed, bool smoke) {
  constexpr size_t kClusterUsers = 50;
  constexpr size_t kClusterItems = 10;
  const size_t clusters = std::max<size_t>(users / kClusterUsers, 1);
  StreamingResult result;

  // Dedicated clustered stack (same topology as live_update: update
  // bursts touch a bounded neighborhood).
  Rng rng(seed);
  recsys::InteractionMatrix matrix(/*shards=*/8);
  for (size_t u = 0; u < users; ++u) {
    const size_t cluster = u / kClusterUsers;
    for (int j = 0; j < 12; ++j) {
      const auto item = static_cast<recsys::ItemId>(
          cluster * kClusterItems +
          rng.UniformInt(0, static_cast<int64_t>(kClusterItems) - 1));
      matrix.Add(static_cast<recsys::UserId>(u), item,
                 rng.Uniform(0.2, 3.0));
    }
  }
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  sum::SumService sums(&catalog);
  {
    std::vector<sum::SumUpdate> bootstrap;
    bootstrap.reserve(users);
    for (size_t u = 0; u < users; ++u) {
      sum::SumUpdate update(static_cast<sum::UserId>(u));
      for (eit::EmotionalAttribute attr :
           eit::AllEmotionalAttributes()) {
        if (rng.Bernoulli(0.3)) {
          update.SetSensibility(catalog.EmotionalId(attr),
                                rng.Uniform(0.3, 1.0));
        }
      }
      bootstrap.push_back(std::move(update));
    }
    if (!sums.ApplyAll(bootstrap).ok()) {
      result.parity = false;
      return result;
    }
  }
  recsys::EngineConfig engine_config;
  engine_config.response_cache_capacity = 2 * users;
  engine_config.interaction_shards = 8;
  recsys::RecsysEngine engine(engine_config);
  engine.AddComponent(std::make_unique<recsys::UserKnnRecommender>(),
                      0.6);
  engine.AddComponent(std::make_unique<recsys::ItemKnnRecommender>(),
                      0.4);
  for (size_t i = 0; i < clusters * kClusterItems; ++i) {
    recsys::EmotionProfile profile{};
    for (double& p : profile) p = rng.Uniform();
    engine.SetItemEmotionProfile(static_cast<recsys::ItemId>(i),
                                 profile);
  }
  engine.set_sum_service(&sums);
  if (!engine.Fit(&matrix).ok()) {
    result.parity = false;
    return result;
  }

  const size_t sample = std::min<size_t>(users, smoke ? 200 : 1000);
  std::vector<recsys::RecommendRequest> requests;
  requests.reserve(sample);
  for (size_t s = 0; s < sample; ++s) {
    recsys::RecommendRequest request;
    request.user = static_cast<recsys::UserId>((s * 7) % users);
    request.k = k;
    requests.push_back(std::move(request));
  }

  // ---- quiescent parity gate + capacity estimate --------------------------
  {
    recsys::PipelineConfig config;
    config.workers = 4;
    config.queue_capacity = 4096;
    config.policy = recsys::BackpressurePolicy::kBlock;
    recsys::ServingPipeline pipeline(&engine, &sums, config);
    std::vector<recsys::StreamTicketPtr> tickets;
    tickets.reserve(requests.size());
    const auto start = Clock::now();
    for (const auto& request : requests) {
      auto ticket = pipeline.Submit(request);
      if (!ticket.ok()) {
        result.parity = false;
        return result;
      }
      tickets.push_back(std::move(ticket).value());
    }
    pipeline.Flush();
    const double seconds = SecondsSince(start);
    result.capacity_rps = static_cast<double>(sample) / seconds;

    std::vector<spa::Result<recsys::RecommendResponse>> streamed;
    streamed.reserve(tickets.size());
    for (const auto& ticket : tickets) {
      ticket->Wait();
      if (ticket->pinned().matrix_version != matrix.version() ||
          ticket->pinned().sum_version != sums.version()) {
        result.parity = false;  // quiescent run must pin head versions
      }
      streamed.push_back(ticket->response());
    }
    const auto reference = engine.RecommendBatch(requests);
    if (!SameResults(streamed, reference)) result.parity = false;
    std::printf("streaming parity:  %s  (closed-loop %8.0f req/s, "
                "%zu requests)\n",
                result.parity ? "OK" : "MISMATCH", result.capacity_rps,
                sample);
  }

  // ---- open-loop arrival sweep with live updates --------------------------
  result.deadline_ms = 25.0;
  for (const double fraction : {0.5, 1.0, 2.0}) {
    const double rate = std::max(1.0, result.capacity_rps * fraction);
    recsys::PipelineConfig config;
    config.workers = 4;
    config.queue_capacity = 256;
    config.policy = recsys::BackpressurePolicy::kDegrade;
    config.default_deadline_seconds = result.deadline_ms * 1e-3;
    recsys::ServingPipeline pipeline(&engine, &sums, config);
    const recsys::EngineCacheStats cache_before = engine.cache_stats();

    StreamingPoint point;
    point.target_rps = rate;
    const size_t total = smoke ? 200 : 1200;
    std::vector<recsys::StreamTicketPtr> read_tickets;
    read_tickets.reserve(total);
    Rng arrivals(seed + static_cast<uint64_t>(fraction * 100));
    auto next = Clock::now();
    const auto sweep_start = next;
    for (size_t i = 0; i < total; ++i) {
      // Exponential inter-arrival times: an open-loop Poisson stream
      // that does NOT wait for completions.
      next += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(
              -std::log1p(-arrivals.Uniform()) / rate));
      std::this_thread::sleep_until(next);
      if (i % 40 == 39) {
        // Live updates ride the writer lane within the same stream.
        std::vector<recsys::Interaction> batch;
        const size_t base = (i / 40) % clusters * kClusterUsers;
        for (int b = 0; b < 4; ++b) {
          batch.push_back(
              {static_cast<recsys::UserId>(
                   base + arrivals.UniformInt(
                              0, static_cast<int64_t>(kClusterUsers) -
                                     1)),
               static_cast<recsys::ItemId>(
                   (base / kClusterUsers) * kClusterItems +
                   arrivals.UniformInt(
                       0, static_cast<int64_t>(kClusterItems) - 1)),
               arrivals.Uniform(0.2, 3.0)});
        }
        (void)pipeline.SubmitInteractions(std::move(batch));
      } else {
        recsys::RecommendRequest request;
        request.user = static_cast<recsys::UserId>(arrivals.UniformInt(
            0, static_cast<int64_t>(users) - 1));
        request.k = k;
        auto ticket = pipeline.SubmitWithDeadline(
            std::move(request), result.deadline_ms * 1e-3);
        if (ticket.ok()) read_tickets.push_back(ticket.value());
      }
    }
    const double offered_seconds = SecondsSince(sweep_start);
    pipeline.Flush();
    const double wall_seconds = SecondsSince(sweep_start);

    const recsys::PipelineStats stats = pipeline.stats();
    // Cross-check the per-response `degraded` flags against the
    // pipeline's shed-quality counters: every fallback serve must be
    // flagged, every expired read must carry a non-OK status.
    uint64_t flagged_fallback = 0;
    uint64_t flagged_dropped = 0;
    for (const auto& ticket : read_tickets) {
      switch (ticket->state()) {
        case recsys::TicketState::kDone:
          if (ticket->response().ok() &&
              ticket->response().value().degraded) {
            ++flagged_fallback;
          }
          break;
        case recsys::TicketState::kShed:
          ++flagged_dropped;
          break;
        default:
          break;
      }
    }
    if (flagged_fallback != stats.fallback_served ||
        flagged_dropped != stats.expired_drops) {
      result.parity = false;  // flags must agree with the counters
    }
    point.fallback_served = stats.fallback_served;
    point.dropped = stats.expired_drops;
    const recsys::EngineCacheStats cache_after = engine.cache_stats();
    const double lookups = static_cast<double>(
        (cache_after.hits - cache_before.hits) +
        (cache_after.misses - cache_before.misses));
    point.hit_rate =
        lookups > 0.0
            ? static_cast<double>(cache_after.hits - cache_before.hits) /
                  lookups
            : 0.0;
    point.offered_rps =
        static_cast<double>(total) / offered_seconds;
    point.achieved_rps =
        static_cast<double>(stats.responses + stats.updates_applied) /
        wall_seconds;
    const QuantileSnapshot e2e = Quantiles(stats.end_to_end, 1e3);
    point.p50_ms = e2e.p50;
    point.p95_ms = e2e.p95;
    point.p99_ms = e2e.p99;
    point.queue_p95_ms = Quantiles(stats.queue_wait, 1e3).p95;
    point.serve_p95_ms = Quantiles(stats.batch_serve, 1e3).p95;
    point.submitted = stats.submitted;
    point.responses = stats.responses;
    point.shed = stats.shed;
    point.updates = stats.updates_applied;
    point.max_queue_depth = stats.max_queue_depth;
    if (fraction == 2.0) {
      // The overload point must keep its tail bounded: with deadline
      // degradation every queued read either completes within its
      // slack or exits as a fallback/drop, so p99 stays near the
      // deadline instead of growing with the backlog. The bound is
      // generous (a core-starved CI host still passes) yet far below
      // the unbounded-queue tail the plain policies show at 2x.
      result.p99_bounded =
          point.p99_ms <= std::max(150.0, 6.0 * result.deadline_ms);
    }
    result.points.push_back(point);
    std::printf(
        "streaming %.1fx:    offered %8.0f req/s | served %8.0f "
        "req/s | p50 %7.3f ms | p95 %7.3f ms | p99 %7.3f ms | "
        "fallback %llu | dropped %llu | hit %5.1f%% | depth %llu\n",
        fraction, point.offered_rps, point.achieved_rps, point.p50_ms,
        point.p95_ms, point.p99_ms,
        static_cast<unsigned long long>(point.fallback_served),
        static_cast<unsigned long long>(point.dropped),
        100.0 * point.hit_rate,
        static_cast<unsigned long long>(point.max_queue_depth));
  }
  return result;
}

/// One router-tier measurement point at a fixed worker count.
struct RouterPoint {
  size_t workers = 0;
  double create_seconds = 0.0;  ///< replica bootstrap (replay + fit)
  double fanout_ms = 0.0;       ///< one batch fanned to every replica
  double serve_rps = 0.0;       ///< closed-loop wall-clock (bench host)
  /// Deployment capacity: responses / busiest replica's exact serve
  /// busy time. With one core per worker node (the topology the
  /// router tier targets — in-process workers stand in for separate
  /// processes), wall-clock throughput converges to this number; on a
  /// core-starved bench host the workers time-slice one core and
  /// `serve_rps` cannot show the scaling, while the busy-time bound
  /// still can.
  double capacity_rps = 0.0;
  double busiest_share = 0.0;  ///< busiest replica busy / total busy
  double speedup = 1.0;        ///< capacity vs the 1-worker deployment
  bool parity = true;
};

struct RouterResult {
  bool parity = true;
  double scaling_4x = 0.0;  ///< 4-worker capacity / 1-worker capacity
  std::vector<RouterPoint> points;
};

/// Router tier: the same bootstrap log is replayed into 1-, 2- and
/// 4-worker deployments; each fans one live interaction batch to all
/// replicas, then serves every user once (closed loop, caches off so
/// the aggregate KNN compute is what scales). Every routed response is
/// checked bitwise against a single-process engine that applied the
/// same batch — the router's parity contract, gating the exit code.
RouterResult RunRouterScenario(size_t users, size_t items, size_t k,
                               uint64_t seed) {
  RouterResult result;

  // Deterministic bootstrap log (two-community, same shape as the main
  // matrix) — every replica and the reference replay exactly this.
  Rng rng(seed, /*stream=*/1);
  std::vector<recsys::Interaction> log;
  log.reserve(users * 12);
  for (size_t u = 0; u < users; ++u) {
    const auto base = static_cast<recsys::ItemId>(
        (u % 2 == 0) ? 0 : items / 2);
    for (int j = 0; j < 12; ++j) {
      const auto item = static_cast<recsys::ItemId>(
          base + rng.UniformInt(0, static_cast<int64_t>(items) / 2 - 1));
      log.push_back({static_cast<recsys::UserId>(u), item,
                     rng.Uniform(0.2, 3.0)});
    }
  }

  // One shared SUM service: emotional context is not replicated.
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  sum::SumService sums(&catalog);
  {
    Rng sum_rng(seed, /*stream=*/2);
    std::vector<sum::SumUpdate> bootstrap;
    bootstrap.reserve(users);
    for (size_t u = 0; u < users; ++u) {
      sum::SumUpdate update(static_cast<sum::UserId>(u));
      for (eit::EmotionalAttribute attr :
           eit::AllEmotionalAttributes()) {
        if (sum_rng.Bernoulli(0.3)) {
          update.SetSensibility(catalog.EmotionalId(attr),
                                sum_rng.Uniform(0.3, 1.0));
        }
      }
      bootstrap.push_back(std::move(update));
    }
    if (!sums.ApplyAll(bootstrap).ok()) {
      result.parity = false;
      return result;
    }
  }

  // The stack every replica (and the reference) assembles.
  const auto make_stack = [seed, items](recsys::RecsysEngine& engine) {
    engine.AddComponent(std::make_unique<recsys::UserKnnRecommender>(),
                        0.6);
    engine.AddComponent(std::make_unique<recsys::ItemKnnRecommender>(),
                        0.4);
    Rng profile_rng(seed, /*stream=*/3);
    for (size_t i = 0; i < items; ++i) {
      recsys::EmotionProfile profile{};
      for (double& p : profile) p = profile_rng.Uniform();
      engine.SetItemEmotionProfile(static_cast<recsys::ItemId>(i),
                                   profile);
    }
  };

  // The live batch fanned to every replica before serving.
  std::vector<recsys::Interaction> fanned;
  {
    Rng batch_rng(seed, /*stream=*/4);
    for (int b = 0; b < 8; ++b) {
      fanned.push_back(
          {static_cast<recsys::UserId>(batch_rng.UniformInt(
               0, static_cast<int64_t>(users) - 1)),
           static_cast<recsys::ItemId>(batch_rng.UniformInt(
               0, static_cast<int64_t>(items) - 1)),
           batch_rng.Uniform(0.2, 3.0)});
    }
  }
  const uint64_t head_version = log.size() + fanned.size();

  std::vector<recsys::RecommendRequest> requests;
  requests.reserve(users);
  for (size_t u = 0; u < users; ++u) {
    recsys::RecommendRequest request;
    request.user = static_cast<recsys::UserId>(u);
    request.k = k;
    requests.push_back(std::move(request));
  }

  // Single-process reference: same log, same batch, caches off.
  recsys::InteractionMatrix ref_matrix(/*shards=*/8);
  for (const recsys::Interaction& it : log) {
    ref_matrix.Add(it.user, it.item, it.weight);
  }
  recsys::EngineConfig ref_config;
  ref_config.response_cache_capacity = 0;
  ref_config.interaction_shards = 8;
  recsys::RecsysEngine reference(ref_config);
  make_stack(reference);
  reference.set_sum_service(&sums);
  if (!reference.Fit(&ref_matrix).ok() ||
      !reference.ApplyInteractions(fanned).ok()) {
    result.parity = false;
    return result;
  }
  std::vector<spa::Result<recsys::RecommendResponse>> expected;
  expected.reserve(requests.size());
  for (const auto& request : requests) {
    expected.push_back(reference.Recommend(request));
  }

  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    RouterPoint point;
    point.workers = workers;

    recsys::RouterConfig config;
    config.workers = workers;
    config.engine.response_cache_capacity = 0;  // measure compute
    config.engine.interaction_shards = 8;
    config.queue.workers = 1;  // one serving thread per node
    config.queue.queue_capacity = users + 64;
    config.queue.writer_queue_capacity = 64;
    config.queue.max_batch = 8;
    config.stack_builder = make_stack;

    auto start = Clock::now();
    auto created = recsys::ServingRouter::Create(config, log, &sums);
    point.create_seconds = SecondsSince(start);
    if (!created.ok()) {
      point.parity = false;
      result.parity = false;
      result.points.push_back(point);
      return result;
    }
    std::unique_ptr<recsys::ServingRouter> router =
        std::move(created).value();

    start = Clock::now();
    auto fanout = router->SubmitInteractions(fanned);
    if (!fanout.ok()) {
      point.parity = false;
    } else {
      fanout->Wait();
      if (!fanout->ok() || fanout->matrix_version() != head_version) {
        point.parity = false;
      }
    }
    point.fanout_ms = SecondsSince(start) * 1e3;

    // Closed loop: every user served once by its owning replica.
    std::vector<recsys::StreamTicketPtr> tickets;
    tickets.reserve(requests.size());
    start = Clock::now();
    for (const auto& request : requests) {
      auto ticket = router->Submit(request);
      if (!ticket.ok()) {
        point.parity = false;
        break;
      }
      tickets.push_back(std::move(ticket).value());
    }
    router->Flush();
    point.serve_rps =
        static_cast<double>(tickets.size()) / SecondsSince(start);

    std::vector<spa::Result<recsys::RecommendResponse>> routed;
    routed.reserve(tickets.size());
    for (const auto& ticket : tickets) {
      ticket->Wait();
      if (ticket->pinned().matrix_version != head_version ||
          ticket->pinned().sum_version != sums.version()) {
        point.parity = false;  // quiescent reads must pin the head
      }
      routed.push_back(ticket->response());
    }
    if (!SameResults(routed, expected)) point.parity = false;
    if (!point.parity) result.parity = false;

    // Capacity from exact per-replica busy time: the deployment is
    // bound by its busiest replica, not by how many cores the bench
    // host happens to have.
    double busiest = 0.0;
    double total_busy = 0.0;
    for (const recsys::RouterWorkerStats& ws :
         router->stats().workers) {
      busiest = std::max(busiest, ws.pipeline.serve_busy_seconds);
      total_busy += ws.pipeline.serve_busy_seconds;
    }
    if (busiest > 0.0) {
      point.capacity_rps =
          static_cast<double>(tickets.size()) / busiest;
      point.busiest_share = busiest / total_busy;
    }
    if (!result.points.empty()) {
      point.speedup =
          point.capacity_rps / result.points.front().capacity_rps;
    }
    result.points.push_back(point);
    std::printf("router x%zu:         %8.0f req/s wall | capacity "
                "%8.0f req/s | speedup %5.2fx | busiest %4.2f | "
                "bootstrap %.3fs | fanout %7.3f ms | parity %s\n",
                point.workers, point.serve_rps, point.capacity_rps,
                point.speedup, point.busiest_share,
                point.create_seconds, point.fanout_ms,
                point.parity ? "OK" : "MISMATCH");
  }
  result.scaling_4x = result.points.back().speedup;
  return result;
}

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  const size_t users =
      flags.users > 0 ? flags.users : (flags.smoke ? 400 : 2'000);
  const size_t items = 400;
  const size_t k = 10;

  PrintHeader(StrFormat(
      "Serving throughput - sequential vs batched (%zu users)", users));

  // Two-community interaction matrix plus long-tail noise.
  Rng rng(flags.seed);
  recsys::InteractionMatrix matrix;
  for (size_t u = 0; u < users; ++u) {
    const auto base = static_cast<recsys::ItemId>(
        (u % 2 == 0) ? 0 : items / 2);
    for (int j = 0; j < 12; ++j) {
      const auto item = static_cast<recsys::ItemId>(
          base + rng.UniformInt(0, static_cast<int64_t>(items) / 2 - 1));
      matrix.Add(static_cast<recsys::UserId>(u), item,
                 rng.Uniform(0.2, 3.0));
    }
  }

  // Emotional context through the versioned SUM service.
  sum::AttributeCatalog catalog = sum::AttributeCatalog::EmagisterDefault();
  sum::SumService sums(&catalog);
  {
    std::vector<sum::SumUpdate> bootstrap;
    bootstrap.reserve(users);
    for (size_t u = 0; u < users; ++u) {
      sum::SumUpdate update(static_cast<sum::UserId>(u));
      for (eit::EmotionalAttribute attr :
           eit::AllEmotionalAttributes()) {
        if (rng.Bernoulli(0.3)) {
          update.SetSensibility(catalog.EmotionalId(attr),
                                rng.Uniform(0.3, 1.0));
        }
      }
      bootstrap.push_back(std::move(update));
    }
    if (!sums.ApplyAll(bootstrap).ok()) {
      std::printf("SUM bootstrap failed\n");
      return 1;
    }
  }

  auto make_engine = [&](size_t cache_capacity) {
    recsys::EngineConfig config;
    config.response_cache_capacity = cache_capacity;
    auto engine = std::make_unique<recsys::RecsysEngine>(config);
    engine->AddComponent(std::make_unique<recsys::UserKnnRecommender>(),
                         0.6);
    engine->AddComponent(
        std::make_unique<recsys::PopularityRecommender>(), 0.4);
    for (size_t i = 0; i < items; ++i) {
      recsys::EmotionProfile profile{};
      for (double& p : profile) p = rng.Uniform();
      engine->SetItemEmotionProfile(static_cast<recsys::ItemId>(i),
                                    profile);
    }
    engine->set_sum_service(&sums);
    return engine;
  };

  auto engine = make_engine(/*cache_capacity=*/0);  // uncached baseline
  if (!engine->Fit(matrix).ok()) {
    std::printf("engine fit failed\n");
    return 1;
  }

  std::vector<recsys::RecommendRequest> requests;
  requests.reserve(users);
  for (size_t u = 0; u < users; ++u) {
    recsys::RecommendRequest request;
    request.user = static_cast<recsys::UserId>(u);
    request.k = k;
    requests.push_back(std::move(request));
  }

  // ---- sequential baseline (cache off) ------------------------------------
  std::vector<spa::Result<recsys::RecommendResponse>> sequential;
  sequential.reserve(requests.size());
  const auto seq_start = Clock::now();
  for (const auto& request : requests) {
    sequential.push_back(engine->Recommend(request));
  }
  const double seq_seconds = SecondsSince(seq_start);
  const double seq_rps = static_cast<double>(users) / seq_seconds;
  std::printf("\nsequential:        %8.0f req/s  (%.3f s)\n", seq_rps,
              seq_seconds);

  // ---- batched scaling curve (cache off) ----------------------------------
  struct BatchPoint {
    size_t threads;
    double rps;
    double speedup;
    bool parity;
  };
  std::vector<BatchPoint> points;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    engine->set_batch_threads(threads);
    (void)engine->batch_thread_count();  // spawn workers outside timing
    const auto start = Clock::now();
    const auto batched = engine->RecommendBatch(requests);
    const double seconds = SecondsSince(start);
    const double rps = static_cast<double>(users) / seconds;
    const bool parity = SameResults(sequential, batched);
    points.push_back({threads, rps, rps / seq_rps, parity});
    std::printf("batched x%zu:        %8.0f req/s  (%.3f s)  "
                "speedup %.2fx  parity %s\n",
                threads, rps, seconds, rps / seq_rps,
                parity ? "OK" : "MISMATCH");
  }

  // ---- repeat traffic: cached vs uncached ---------------------------------
  // The same request set served twice; pass 2 models the steady state
  // of production traffic where most users' context did not change
  // between identical requests.
  PrintHeader("Repeat traffic - response cache");
  auto cached_engine = make_engine(/*cache_capacity=*/2 * users);
  if (!cached_engine->Fit(matrix).ok()) {
    std::printf("cached engine fit failed\n");
    return 1;
  }
  const auto warm_start = Clock::now();
  std::vector<spa::Result<recsys::RecommendResponse>> warm_pass;
  warm_pass.reserve(requests.size());
  for (const auto& request : requests) {
    warm_pass.push_back(cached_engine->Recommend(request));
  }
  const double warm_seconds = SecondsSince(warm_start);

  const auto hot_start = Clock::now();
  std::vector<spa::Result<recsys::RecommendResponse>> hot_pass;
  hot_pass.reserve(requests.size());
  for (const auto& request : requests) {
    hot_pass.push_back(cached_engine->Recommend(request));
  }
  const double hot_seconds = SecondsSince(hot_start);

  const auto cache_stats = cached_engine->cache_stats();
  const double cold_rps = static_cast<double>(users) / warm_seconds;
  const double hot_rps = static_cast<double>(users) / hot_seconds;
  const bool cache_parity = SameResults(warm_pass, hot_pass);
  const double hit_rate =
      static_cast<double>(cache_stats.hits) /
      static_cast<double>(cache_stats.hits + cache_stats.misses);
  std::printf("pass 1 (cold):     %8.0f req/s\n", cold_rps);
  std::printf("pass 2 (hot):      %8.0f req/s  speedup %.2fx  "
              "hit-rate %.3f  parity %s\n",
              hot_rps, hot_rps / cold_rps, hit_rate,
              cache_parity ? "OK" : "MISMATCH");

  // ---- warm-path allocation audit -----------------------------------------
  // The allocation-free-hot-path contract, measured end to end: once a
  // request's response is cached and the caller reuses its response
  // object, `RecommendInto` must never enter operator new. Gates the
  // exit code — a regression to even one allocation per request fails
  // the bench.
  PrintHeader("Warm-path allocations - cached RecommendInto");
  recsys::RecommendResponse reused;
  bool warm_ok = true;
  for (const auto& request : requests) {
    warm_ok = warm_ok &&
              cached_engine->RecommendInto(request, &reused).ok();
  }
  g_new_calls.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_release);
  const auto warm_into_start = Clock::now();
  for (const auto& request : requests) {
    warm_ok = warm_ok &&
              cached_engine->RecommendInto(request, &reused).ok();
  }
  const double warm_into_seconds = SecondsSince(warm_into_start);
  g_count_allocs.store(false, std::memory_order_release);
  const uint64_t warm_new_calls =
      g_new_calls.load(std::memory_order_relaxed);
  const double warm_allocs_per_request =
      static_cast<double>(warm_new_calls) / static_cast<double>(users);
  const double warm_into_rps =
      static_cast<double>(users) / warm_into_seconds;
  std::printf("RecommendInto:     %8.0f req/s  %llu operator-new calls "
              "over %zu warm requests (%.4f/request)  %s\n",
              warm_into_rps,
              static_cast<unsigned long long>(warm_new_calls), users,
              warm_allocs_per_request,
              warm_ok && warm_new_calls == 0 ? "OK" : "ALLOCATING");

  // ---- SUM update throughput ----------------------------------------------
  PrintHeader("SUM update throughput");
  const sum::AttributeId lively =
      catalog.EmotionalId(eit::EmotionalAttribute::kLively);
  const size_t update_rounds = users;
  const auto apply_start = Clock::now();
  for (size_t i = 0; i < update_rounds; ++i) {
    (void)sums.Apply(sum::SumUpdate(static_cast<sum::UserId>(i % users))
                         .Reward(lively, 0.05));
  }
  const double apply_seconds = SecondsSince(apply_start);
  const double apply_ups =
      static_cast<double>(update_rounds) / apply_seconds;
  std::printf("Apply (1 op):      %8.0f updates/s  (%.3f s for %zu)\n",
              apply_ups, apply_seconds, update_rounds);

  const size_t batch_size = 256;
  const size_t batch_rounds = update_rounds / batch_size + 1;
  const auto applyall_start = Clock::now();
  for (size_t round = 0; round < batch_rounds; ++round) {
    std::vector<sum::SumUpdate> batch;
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(
          sum::SumUpdate(
              static_cast<sum::UserId>((round * batch_size + i) % users))
              .Reward(lively, 0.05));
    }
    (void)sums.ApplyAll(batch);
  }
  const double applyall_seconds = SecondsSince(applyall_start);
  const double applyall_ups =
      static_cast<double>(batch_rounds * batch_size) / applyall_seconds;
  // How much cheaper a batched publish is per update than single-update
  // publishes. Sharded COW snapshots keep this bounded: one Apply
  // clones a single user shard (~users/S entries), not the world.
  const double apply_vs_apply_all_ratio = applyall_ups / apply_ups;
  std::printf("ApplyAll (x%zu):   %8.0f updates/s  (%.3f s)  "
              "batch-vs-single ratio %.2fx\n",
              batch_size, applyall_ups, applyall_seconds,
              apply_vs_apply_all_ratio);

  // Every user's context changed: the hot cache must now recompute.
  const auto invalidated_start = Clock::now();
  for (const auto& request : requests) {
    (void)cached_engine->Recommend(request);
  }
  const double invalidated_seconds = SecondsSince(invalidated_start);
  const double invalidated_rps =
      static_cast<double>(users) / invalidated_seconds;
  const auto post_stats = cached_engine->cache_stats();
  std::printf("post-update pass:  %8.0f req/s  (%zu stale evictions)\n",
              invalidated_rps,
              static_cast<size_t>(post_stats.stale_evictions -
                                  cache_stats.stale_evictions));

  // ---- KNN cold traffic: fit-time similarity index vs lazy ----------------
  // Every request is a cache miss; this isolates the candidate
  // generation cost the index removes from the serving path.
  PrintHeader("KNN cold traffic - fit-time similarity index vs lazy");
  std::vector<KnnIndexPoint> knn_points;
  knn_points.push_back(RunKnnColdScenario<recsys::ItemKnnRecommender>(
      "ItemKNN", matrix, users, k));
  knn_points.push_back(RunKnnColdScenario<recsys::UserKnnRecommender>(
      "UserKNN", matrix, users, k));

  // ---- live updates: ApplyInteractions vs full refit ----------------------
  // The scaling cliff this PR removes: a new interaction used to mean
  // a full refit before indexed serving could resume; now it is a
  // bounded incremental refresh over the sharded store.
  PrintHeader("Live updates - incremental refresh vs full refit");
  const LiveUpdatePoint live_point = RunLiveUpdateScenario(
      users, k, flags.seed + 1, /*shards=*/8,
      /*rounds=*/flags.smoke ? 5 : 15);

  // ---- streaming: async pipeline under open-loop arrivals -----------------
  PrintHeader("Streaming - async pipeline, open-loop arrival sweep");
  const StreamingResult streaming =
      RunStreamingScenario(users, k, flags.seed + 2, flags.smoke);

  // ---- router tier: sharded serving behind the ownership directory --------
  PrintHeader("Router tier - worker-group scaling, bitwise parity");
  const RouterResult router_result =
      RunRouterScenario(users, items, k, flags.seed + 3);

  // ---- staged dataflow: bitwise parity vs the fused inline path -----------
  // Both passes compute from scratch (cache cleared before each) at
  // the same pinned versions; the responses must match byte-for-byte.
  PrintHeader("Staged dataflow - parity vs fused inline serving");
  cached_engine->ClearResponseCache();
  recsys::BatchPin staged_pin;
  const auto staged_results =
      cached_engine->RecommendBatchStaged(requests, &staged_pin);
  cached_engine->ClearResponseCache();
  recsys::BatchPin inline_pin;
  const auto inline_results =
      cached_engine->RecommendBatchInline(requests, &inline_pin);
  const bool staged_parity =
      SameResults(staged_results, inline_results) &&
      staged_pin.fit_epoch == inline_pin.fit_epoch &&
      staged_pin.matrix_version == inline_pin.matrix_version &&
      staged_pin.sum_version == inline_pin.sum_version;
  std::printf("staged vs inline (%zu requests): %s\n", requests.size(),
              staged_parity ? "OK" : "MISMATCH");

  // ---- per-stage latency --------------------------------------------------
  const recsys::StageStats stages = cached_engine->stage_stats();
  PrintHeader("Per-stage serving latency (cached engine, cumulative)");
  const auto print_stage = [](const char* name,
                              const recsys::StageStats::Stage& s) {
    std::printf("%-14s %8llu calls | total %8.3f ms | mean %8.1f us | "
                "p50 %8.1f us | p95 %8.1f us | p99 %8.1f us | "
                "max %8.1f us\n",
                name, static_cast<unsigned long long>(s.count),
                s.total_seconds * 1e3,
                s.count > 0 ? s.total_seconds * 1e6 /
                                  static_cast<double>(s.count)
                            : 0.0,
                s.p50_seconds * 1e6, s.p95_seconds * 1e6,
                s.p99_seconds * 1e6, s.max_seconds * 1e6);
  };
  print_stage("candidate-gen", stages.candidate_gen);
  print_stage("rerank", stages.rerank);
  print_stage("cache-lookup", stages.cache_lookup);

  // ---- JSON ---------------------------------------------------------------
  std::FILE* json = std::fopen("BENCH_serving.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"serving\",\n  \"users\": %zu,\n"
                 "  \"items\": %zu,\n  \"k\": %zu,\n"
                 "  \"sequential_rps\": %.1f,\n  \"batched\": [\n",
                 users, items, k, seq_rps);
    for (size_t i = 0; i < points.size(); ++i) {
      std::fprintf(json,
                   "    {\"threads\": %zu, \"rps\": %.1f, "
                   "\"speedup\": %.3f, \"parity\": %s}%s\n",
                   points[i].threads, points[i].rps, points[i].speedup,
                   points[i].parity ? "true" : "false",
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"repeat_traffic\": {\n"
                 "    \"cold_rps\": %.1f,\n"
                 "    \"hot_rps\": %.1f,\n"
                 "    \"cache_speedup\": %.3f,\n"
                 "    \"hit_rate\": %.4f,\n"
                 "    \"parity\": %s\n  },\n",
                 cold_rps, hot_rps, hot_rps / cold_rps, hit_rate,
                 cache_parity ? "true" : "false");
    std::fprintf(json,
                 "  \"allocations\": {\n"
                 "    \"warm_requests\": %zu,\n"
                 "    \"warm_new_calls\": %llu,\n"
                 "    \"warm_allocs_per_request\": %.4f,\n"
                 "    \"warm_recommend_into_rps\": %.1f\n  },\n",
                 users,
                 static_cast<unsigned long long>(warm_new_calls),
                 warm_allocs_per_request, warm_into_rps);
    std::fprintf(json,
                 "  \"sum_updates\": {\n"
                 "    \"apply_per_sec\": %.1f,\n"
                 "    \"apply_all_batch_size\": %zu,\n"
                 "    \"apply_all_per_sec\": %.1f,\n"
                 "    \"apply_vs_apply_all_ratio\": %.3f,\n"
                 "    \"post_update_serve_rps\": %.1f\n  },\n",
                 apply_ups, batch_size, applyall_ups,
                 apply_vs_apply_all_ratio, invalidated_rps);
    std::fprintf(json, "  \"knn_index\": [\n");
    for (size_t i = 0; i < knn_points.size(); ++i) {
      const KnnIndexPoint& p = knn_points[i];
      std::fprintf(json,
                   "    {\"scenario\": \"%s\", \"lazy_rps\": %.1f, "
                   "\"indexed_rps\": %.1f, \"speedup\": %.2f, "
                   "\"parity\": %s, \"lazy_fit_seconds\": %.6f, "
                   "\"indexed_fit_seconds\": %.6f, "
                   "\"index_build_seconds\": %.6f, "
                   "\"index_bytes\": %zu, \"index_entries\": %zu}%s\n",
                   p.scenario, p.lazy_rps, p.indexed_rps, p.speedup,
                   p.parity ? "true" : "false", p.lazy_fit_seconds,
                   p.indexed_fit_seconds, p.index_build_seconds,
                   p.index_bytes, p.index_entries,
                   i + 1 < knn_points.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"live_update\": {\n"
                 "    \"users\": %zu,\n    \"shards\": %zu,\n"
                 "    \"rounds\": %zu,\n    \"batch_size\": %zu,\n"
                 "    \"incremental_seconds_avg\": %.6f,\n"
                 "    \"full_refit_seconds_avg\": %.6f,\n"
                 "    \"update_speedup\": %.2f,\n"
                 "    \"interleaved_serve_rps\": %.1f,\n"
                 "    \"rows_refreshed\": %zu,\n"
                 "    \"full_rebuilds\": %zu,\n"
                 "    \"parity\": %s\n  },\n",
                 live_point.users, live_point.shards, live_point.rounds,
                 live_point.batch_size,
                 live_point.incremental_seconds_avg,
                 live_point.full_refit_seconds_avg,
                 live_point.update_speedup,
                 live_point.interleaved_serve_rps,
                 live_point.rows_refreshed, live_point.full_rebuilds,
                 live_point.parity ? "true" : "false");
    std::fprintf(json,
                 "  \"streaming\": {\n"
                 "    \"parity\": %s,\n"
                 "    \"capacity_rps\": %.1f,\n"
                 "    \"overload_policy\": \"deadline_degrade\",\n"
                 "    \"deadline_ms\": %.1f,\n"
                 "    \"p99_bounded\": %s,\n"
                 "    \"points\": [\n",
                 streaming.parity ? "true" : "false",
                 streaming.capacity_rps, streaming.deadline_ms,
                 streaming.p99_bounded ? "true" : "false");
    for (size_t i = 0; i < streaming.points.size(); ++i) {
      const StreamingPoint& p = streaming.points[i];
      std::fprintf(
          json,
          "      {\"target_rps\": %.1f, \"offered_rps\": %.1f, "
          "\"achieved_rps\": %.1f, \"p50_ms\": %.4f, "
          "\"p95_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"queue_p95_ms\": %.4f, \"serve_p95_ms\": %.4f, "
          "\"submitted\": %llu, \"responses\": %llu, "
          "\"shed\": %llu, \"fallback_served\": %llu, "
          "\"dropped\": %llu, \"hit_rate\": %.4f, "
          "\"updates\": %llu, "
          "\"max_queue_depth\": %llu}%s\n",
          p.target_rps, p.offered_rps, p.achieved_rps, p.p50_ms,
          p.p95_ms, p.p99_ms, p.queue_p95_ms, p.serve_p95_ms,
          static_cast<unsigned long long>(p.submitted),
          static_cast<unsigned long long>(p.responses),
          static_cast<unsigned long long>(p.shed),
          static_cast<unsigned long long>(p.fallback_served),
          static_cast<unsigned long long>(p.dropped), p.hit_rate,
          static_cast<unsigned long long>(p.updates),
          static_cast<unsigned long long>(p.max_queue_depth),
          i + 1 < streaming.points.size() ? "," : "");
    }
    std::fprintf(json, "    ]\n  },\n");
    std::fprintf(json,
                 "  \"router\": {\n"
                 "    \"parity\": %s,\n"
                 "    \"scaling_4x\": %.3f,\n"
                 "    \"points\": [\n",
                 router_result.parity ? "true" : "false",
                 router_result.scaling_4x);
    for (size_t i = 0; i < router_result.points.size(); ++i) {
      const RouterPoint& p = router_result.points[i];
      std::fprintf(json,
                   "      {\"workers\": %zu, \"serve_rps\": %.1f, "
                   "\"capacity_rps\": %.1f, \"speedup\": %.3f, "
                   "\"busiest_share\": %.4f, "
                   "\"create_seconds\": %.4f, "
                   "\"fanout_ms\": %.4f, \"parity\": %s}%s\n",
                   p.workers, p.serve_rps, p.capacity_rps, p.speedup,
                   p.busiest_share, p.create_seconds, p.fanout_ms,
                   p.parity ? "true" : "false",
                   i + 1 < router_result.points.size() ? "," : "");
    }
    std::fprintf(json, "    ]\n  },\n");
    const auto stage_json = [json](const char* name,
                                   const recsys::StageStats::Stage& s,
                                   const char* suffix) {
      std::fprintf(json,
                   "    \"%s\": {\"count\": %llu, "
                   "\"total_seconds\": %.6f, \"max_seconds\": %.6f, ",
                   name, static_cast<unsigned long long>(s.count),
                   s.total_seconds, s.max_seconds);
      WriteQuantileFields(json, Quantiles(s.histogram, 1e6), "us");
      std::fprintf(json, "}%s\n", suffix);
    };
    // Hierarchical profiler export (schema: docs/METRICS.md): the
    // leveled L1/L2/L3 item catalog of the cached engine plus the
    // staged-vs-inline parity verdict.
    const spa::Profiler& profiler = cached_engine->profiler();
    std::fprintf(json,
                 "  \"stages\": {\n"
                 "    \"staged_parity\": %s,\n"
                 "    \"level\": %d,\n"
                 "    \"epochs\": %llu,\n"
                 "    \"items\": %s\n  },\n",
                 staged_parity ? "true" : "false",
                 static_cast<int>(profiler.level()),
                 static_cast<unsigned long long>(profiler.epochs()),
                 profiler.ExportItemsJson(spa::ProfilerLevel::kL3, 4)
                     .c_str());
    std::fprintf(json, "  \"stage_latency\": {\n");
    stage_json("candidate_gen", stages.candidate_gen, ",");
    stage_json("rerank", stages.rerank, ",");
    stage_json("cache_lookup", stages.cache_lookup, "");
    std::fprintf(json, "  }\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_serving.json\n");
  }

  for (const BatchPoint& p : points) {
    if (!p.parity) return 1;  // batched serving must match sequential
  }
  for (const KnnIndexPoint& p : knn_points) {
    if (!p.parity) return 1;  // indexed serving must match lazy exactly
  }
  if (!live_point.parity) return 1;  // live updates must match refits
  // The allocation-free contract: warm cached RecommendInto must never
  // enter the allocator.
  if (!warm_ok || warm_new_calls > 0) return 1;
  // Streamed serving must be bitwise-identical to synchronous batches,
  // and every degraded/dropped read must agree with the pipeline's
  // shed-quality counters.
  if (!streaming.parity) return 1;
  // Deadline degradation must keep the 2x-overload tail bounded.
  if (!streaming.p99_bounded) return 1;
  // Routed serving must match the single-process engine bitwise at the
  // same pinned versions — the router tier's whole contract.
  if (!router_result.parity) return 1;
  // The staged dataflow must reproduce the fused path byte-for-byte.
  if (!staged_parity) return 1;
  return cache_parity ? 0 : 1;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
