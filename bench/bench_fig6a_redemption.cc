// Reproduces Fig. 6(a): the cumulative redemption curve of the ten
// push/newsletter campaigns. Paper reference points: with 40 % of the
// commercial action SPA captures > 76 % of useful impacts, and the
// redemption of the campaigns improves by ~ 90 % over an untargeted
// blast. We compare SPA (emotional context ON) against the
// objective-attributes-only pipeline and a random ranking.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "fig6_common.h"

namespace spa::bench {
namespace {

void PrintCurve(const char* label,
                const std::vector<ml::GainsPoint>& curve) {
  std::printf("%-22s", label);
  for (const auto& pt : curve) {
    if (static_cast<int>(pt.fraction_targeted * 100.0 + 0.5) % 10 == 0) {
      std::printf(" %5.1f", pt.fraction_captured * 100.0);
    }
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);

  Fig6Setup setup;
  setup.seed = flags.seed;
  if (flags.paper_scale) {
    setup.pool = 3'162'069;
    setup.targets = 1'340'432;
  } else if (flags.users > 0) {
    setup.pool = flags.users;
    setup.targets = static_cast<size_t>(
        static_cast<double>(flags.users) * 0.424);
  }

  PrintHeader(StrFormat(
      "Fig. 6(a) - Cumulative redemption curve "
      "(pool=%s, targets/campaign=%s, 10 campaigns)",
      WithThousandsSep(static_cast<int64_t>(setup.pool)).c_str(),
      WithThousandsSep(static_cast<int64_t>(setup.targets)).c_str()));

  // One deployment world (SPA fully active); three rankings of the
  // same observed outcomes: the full emotional model, the same model
  // family with the emotional feature group removed, and random.
  const Fig6Result spa_result = RunTenCampaigns(setup);
  const campaign::RedemptionReport& objective_report =
      spa_result.objective_report;

  std::vector<campaign::CampaignOutcome> random_outcomes =
      spa_result.outcomes;
  Rng rng(setup.seed, /*stream=*/999);
  for (auto& outcome : random_outcomes) {
    for (double& s : outcome.scores) s = rng.Uniform();
  }
  const campaign::RedemptionReport random_report =
      campaign::ComputeRedemption(random_outcomes);

  std::printf("\n%% of useful impacts captured at commercial action "
              "depth (10%%..100%%):\n\n");
  std::printf("%-22s", "ranking");
  for (int d = 10; d <= 100; d += 10) std::printf(" %4d%%", d);
  std::printf("\n");
  PrintRule();
  PrintCurve("SPA (emotional)", spa_result.report.curve);
  PrintCurve("objective-only", objective_report.curve);
  PrintCurve("random", random_report.curve);

  std::printf("\nheadline numbers (paper: >76%% captured at 40%%, "
              "~90%% redemption improvement):\n");
  PrintRule();
  std::printf("%-22s %10s %12s %12s %8s\n", "ranking", "capt@40%",
              "prec@40%", "base rate", "AUC");
  auto print_row = [](const char* label,
                      const campaign::RedemptionReport& report) {
    std::printf("%-22s %9.1f%% %11.1f%% %11.1f%% %8.3f\n", label,
                report.captured_at_40 * 100.0,
                report.precision_at_40 * 100.0,
                report.base_rate * 100.0, report.auc);
  };
  print_row("SPA (emotional)", spa_result.report);
  print_row("objective-only", objective_report);
  print_row("random", random_report);

  std::printf("\nredemption improvement of top-40%% targeting over an "
              "untargeted blast:\n");
  std::printf("  SPA (emotional):  %+.0f%%   (paper: ~ +90%%)\n",
              spa_result.report.redemption_improvement * 100.0);
  std::printf("  objective-only:   %+.0f%%\n",
              objective_report.redemption_improvement * 100.0);
  return 0;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
