// Reproduces Fig. 6(b): the predictive scores of the ten Push and
// newsletter campaigns. Paper reference: "SPA achieves an average
// performance of 21%, it means 282,938 useful impacts" out of
// 1,340,432 targeted users per campaign. The predictive score is the
// precision of the model-selected top-40% slice per campaign.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "fig6_common.h"
#include "ml/metrics.h"

namespace spa::bench {
namespace {

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);

  Fig6Setup setup;
  setup.seed = flags.seed;
  if (flags.paper_scale) {
    setup.pool = 3'162'069;
    setup.targets = 1'340'432;
  } else if (flags.users > 0) {
    setup.pool = flags.users;
    setup.targets = static_cast<size_t>(
        static_cast<double>(flags.users) * 0.424);
  }

  PrintHeader(StrFormat(
      "Fig. 6(b) - Predictive scores per campaign "
      "(pool=%s, targets/campaign=%s)",
      WithThousandsSep(static_cast<int64_t>(setup.pool)).c_str(),
      WithThousandsSep(static_cast<int64_t>(setup.targets)).c_str()));

  const Fig6Result result = RunTenCampaigns(setup);

  std::printf("\n%-10s %-11s %12s %14s %18s %15s\n", "campaign",
              "channel", "targeted", "impacts", "score(top-40%)",
              "base rate");
  PrintRule();
  size_t total_targeted = 0;
  size_t total_impacts = 0;
  double score_sum = 0.0;
  size_t selected_impacts_total = 0;
  for (const auto& outcome : result.outcomes) {
    const double top40 =
        ml::PredictiveScore(outcome.scores, outcome.labels, 0.4);
    const size_t depth = static_cast<size_t>(
        static_cast<double>(outcome.targeted) * 0.4);
    selected_impacts_total +=
        static_cast<size_t>(top40 * static_cast<double>(depth) + 0.5);
    std::printf("%-10d %-11s %12s %14s %17.1f%% %14.1f%%\n",
                outcome.campaign_id,
                outcome.channel == campaign::Channel::kPush
                    ? "push"
                    : "newsletter",
                WithThousandsSep(
                    static_cast<int64_t>(outcome.targeted))
                    .c_str(),
                WithThousandsSep(
                    static_cast<int64_t>(outcome.useful_impacts))
                    .c_str(),
                top40 * 100.0, outcome.PredictiveScore() * 100.0);
    total_targeted += outcome.targeted;
    total_impacts += outcome.useful_impacts;
    score_sum += top40;
  }
  PrintRule();
  std::printf("%-10s %-11s %12s %14s %17.1f%% %14.1f%%\n", "average",
              "-",
              WithThousandsSep(
                  static_cast<int64_t>(total_targeted / 10))
                  .c_str(),
              WithThousandsSep(
                  static_cast<int64_t>(total_impacts / 10))
                  .c_str(),
              score_sum / 10.0 * 100.0,
              static_cast<double>(total_impacts) /
                  static_cast<double>(total_targeted) * 100.0);

  std::printf("\npaper reference: average predictive score ~21%% "
              "(282,938 useful impacts out of 1,340,432 targeted)\n");
  std::printf("measured:        average predictive score %.1f%%; "
              "%s useful impacts captured in the top-40%% slices\n",
              score_sum / 10.0 * 100.0,
              WithThousandsSep(
                  static_cast<int64_t>(selected_impacts_total))
                  .c_str());
  return 0;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
