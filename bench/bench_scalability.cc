// Benchmarks the §4 scalability claims: "With SPA the scalability has
// been improved from hundreds of thousands of users to millions of
// users" and "SPA has high performance pre-processing proactively
// LifeLogs of millions of customers". Measures WebLog pre-processing
// throughput, feature extraction, SVM training and population-scoring
// rates with google-benchmark.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/smart_component.h"
#include "lifelog/features.h"
#include "lifelog/preprocessor.h"
#include "lifelog/session.h"
#include "lifelog/weblog.h"
#include "ml/platt.h"
#include "ml/svm_linear.h"

namespace spa {
namespace {

std::vector<std::string> MakeLogLines(size_t n, uint64_t seed) {
  Rng rng(seed, 31);
  std::vector<lifelog::Event> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    lifelog::Event e;
    e.user = static_cast<lifelog::UserId>(rng.UniformInt(0, 99'999));
    e.time = static_cast<TimeMicros>(i) * kMicrosPerSecond;
    e.action_code = static_cast<int32_t>(rng.UniformInt(0, 983));
    if (rng.Bernoulli(0.4)) {
      e.item = static_cast<lifelog::ItemId>(rng.UniformInt(0, 499));
    }
    events.push_back(e);
  }
  lifelog::WeblogNoiseOptions noise;
  noise.bot_fraction = 0.05;
  noise.error_fraction = 0.03;
  noise.malformed_fraction = 0.01;
  lifelog::WeblogSynthesizer synth(noise);
  std::vector<std::string> lines;
  synth.Synthesize(events, &lines);
  return lines;
}

void BM_WeblogParse(benchmark::State& state) {
  const auto lines = MakeLogLines(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    size_t parsed = 0;
    for (const std::string& line : lines) {
      const auto record = lifelog::ParseCombined(line);
      if (record.ok()) ++parsed;
    }
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lines.size()));
}
BENCHMARK(BM_WeblogParse)->Arg(10'000)->Arg(100'000);

void BM_PreprocessPipeline(benchmark::State& state) {
  const auto lines = MakeLogLines(static_cast<size_t>(state.range(0)), 2);
  const lifelog::ActionCatalog catalog = lifelog::ActionCatalog::Standard();
  for (auto _ : state) {
    lifelog::LifeLogStore store;
    lifelog::LifeLogPreprocessor preprocessor(&catalog);
    preprocessor.ProcessLines(lines, &store);
    benchmark::DoNotOptimize(store.total_events());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lines.size()));
}
BENCHMARK(BM_PreprocessPipeline)->Arg(10'000)->Arg(100'000);

void BM_Sessionize(benchmark::State& state) {
  Rng rng(3);
  const lifelog::ActionCatalog catalog = lifelog::ActionCatalog::Standard();
  std::vector<lifelog::Event> events;
  const size_t n = static_cast<size_t>(state.range(0));
  TimeMicros t = 0;
  for (size_t i = 0; i < n; ++i) {
    lifelog::Event e;
    e.user = static_cast<lifelog::UserId>(i / 50);  // 50 events/user
    t += static_cast<TimeMicros>(rng.Exponential(1.0 / 600.0)) *
         kMicrosPerSecond;
    e.time = t;
    e.action_code = static_cast<int32_t>(rng.UniformInt(0, 983));
    events.push_back(e);
  }
  for (auto _ : state) {
    const auto sessions = lifelog::Sessionize(events, catalog);
    benchmark::DoNotOptimize(sessions.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Sessionize)->Arg(100'000);

void BM_FeatureExtraction(benchmark::State& state) {
  Rng rng(4);
  const lifelog::ActionCatalog catalog = lifelog::ActionCatalog::Standard();
  lifelog::FeatureSpace space;
  const lifelog::BehaviorFeatureExtractor extractor(&catalog, &space);
  // One user's events.
  std::vector<lifelog::Event> events;
  TimeMicros t = 0;
  for (int i = 0; i < 40; ++i) {
    lifelog::Event e;
    e.user = 1;
    t += static_cast<TimeMicros>(rng.Exponential(0.5)) * kMicrosPerHour;
    e.time = t;
    e.action_code = static_cast<int32_t>(rng.UniformInt(0, 983));
    events.push_back(e);
  }
  for (auto _ : state) {
    const auto features = extractor.Extract(events, t + kMicrosPerDay);
    benchmark::DoNotOptimize(features.nnz());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FeatureExtraction);

ml::Dataset MakeTrainingSet(size_t n, int32_t dims, uint64_t seed) {
  Rng rng(seed, 17);
  ml::Dataset data;
  data.x.SetCols(dims);
  for (size_t i = 0; i < n; ++i) {
    std::vector<ml::SparseEntry> entries;
    const bool pos = rng.Bernoulli(0.12);
    for (int32_t f = 0; f < dims; ++f) {
      if (!rng.Bernoulli(0.3)) continue;
      const double center = pos && f < 10 ? 0.8 : 0.3;
      entries.push_back({f, rng.Normal(center, 0.3)});
    }
    data.x.AppendRow(entries);
    data.y.push_back(pos ? 1 : -1);
  }
  return data;
}

void BM_SvmTrain(benchmark::State& state) {
  const ml::Dataset data =
      MakeTrainingSet(static_cast<size_t>(state.range(0)), 80, 5);
  ml::SvmConfig config;
  config.c = 0.1;
  config.max_iterations = 60;
  config.tolerance = 1e-3;
  for (auto _ : state) {
    ml::LinearSvm svm(config);
    benchmark::DoNotOptimize(svm.Train(data).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SvmTrain)->Arg(10'000)->Arg(50'000);

void BM_PopulationScoring(benchmark::State& state) {
  // The selection function at scale: score N users with the trained
  // linear model + Platt calibration.
  const size_t n = static_cast<size_t>(state.range(0));
  const ml::Dataset train = MakeTrainingSet(20'000, 80, 6);
  ml::SvmConfig config;
  config.c = 0.1;
  config.max_iterations = 60;
  ml::LinearSvm svm(config);
  if (!svm.Train(train).ok()) state.SkipWithError("train failed");
  ml::PlattScaler platt;
  (void)platt.Fit(svm.ScoreAll(train), train.y);
  const ml::Dataset score_set = MakeTrainingSet(n, 80, 7);

  for (auto _ : state) {
    double checksum = 0.0;
    for (size_t i = 0; i < score_set.size(); ++i) {
      checksum += platt.Transform(svm.Score(score_set.x.row(i)));
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PopulationScoring)->Arg(100'000)->Arg(1'000'000);

void BM_PopulationScoringParallel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ml::Dataset train = MakeTrainingSet(20'000, 80, 6);
  ml::SvmConfig config;
  config.c = 0.1;
  config.max_iterations = 60;
  ml::LinearSvm svm(config);
  if (!svm.Train(train).ok()) state.SkipWithError("train failed");
  const ml::Dataset score_set = MakeTrainingSet(n, 80, 7);
  ThreadPool pool;

  for (auto _ : state) {
    std::vector<double> scores(n);
    ParallelFor(&pool, n, [&](size_t i) {
      scores[i] = svm.Score(score_set.x.row(i));
    });
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PopulationScoringParallel)
    ->Arg(1'000'000)
    ->UseRealTime();  // wall clock: the pool does the work off-thread

}  // namespace
}  // namespace spa

BENCHMARK_MAIN();
