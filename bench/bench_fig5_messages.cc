// Reproduces Fig. 5: samples of individualized messages per the user's
// dominant sensibilities — case (a) a single impacting attribute,
// case (b) several attributes ordered by priority, case (c) several
// attributes with the most-sensitive one chosen — plus the message-case
// distribution over a synthetic population.

#include <cstdio>

#include "agents/messaging_agent.h"
#include "bench_util.h"
#include "campaign/population.h"
#include "common/rng.h"
#include "sum/sum_service.h"

namespace spa::bench {
namespace {

const char* CaseName(agents::MessageCase c) {
  switch (c) {
    case agents::MessageCase::kStandard:
      return "3.a standard";
    case agents::MessageCase::kSingleMatch:
      return "3.b single match";
    case agents::MessageCase::kPriority:
      return "3.c.i priority";
    case agents::MessageCase::kMaxSensibility:
      return "3.c.ii max sensibility";
  }
  return "?";
}

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  const size_t population = flags.users > 0 ? flags.users : 50'000;

  PrintHeader("Fig. 5 - Individualized messages per dominant "
              "sensibility");

  const sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  sum::SumService sums(&catalog);
  auto emo = [&](eit::EmotionalAttribute e) {
    return catalog.EmotionalId(e);
  };

  // --- The paper's three example users -----------------------------------
  // Fig. 5(a): one dominant attribute (enthusiastic).
  (void)sums.Apply(sum::SumUpdate(1).SetSensibility(
      emo(eit::EmotionalAttribute::kEnthusiastic), 0.92));
  // Fig. 5(b): four attributes ordered by priority: lively,
  // stimulated, shy, frightened.
  (void)sums.Apply(
      sum::SumUpdate(2)
          .SetSensibility(emo(eit::EmotionalAttribute::kLively), 0.8)
          .SetSensibility(emo(eit::EmotionalAttribute::kStimulated),
                          0.75)
          .SetSensibility(emo(eit::EmotionalAttribute::kShy), 0.7)
          .SetSensibility(emo(eit::EmotionalAttribute::kFrightened),
                          0.65));
  // Fig. 5(c): motivated and hopeful; hopeful impacts most.
  (void)sums.Apply(
      sum::SumUpdate(3)
          .SetSensibility(emo(eit::EmotionalAttribute::kMotivated), 0.6)
          .SetSensibility(emo(eit::EmotionalAttribute::kHopeful),
                          0.88));

  struct Case {
    sum::UserId user;
    agents::MultiMatchPolicy policy;
    std::vector<sum::AttributeId> product_attributes;
    const char* label;
  };
  const std::vector<Case> cases = {
      {1,
       agents::MultiMatchPolicy::kMaxSensibility,
       {emo(eit::EmotionalAttribute::kEnthusiastic)},
       "(a) single impacting attribute"},
      {2,
       agents::MultiMatchPolicy::kPriority,
       {emo(eit::EmotionalAttribute::kLively),
        emo(eit::EmotionalAttribute::kStimulated),
        emo(eit::EmotionalAttribute::kShy),
        emo(eit::EmotionalAttribute::kFrightened)},
       "(b) several, ordered by priority"},
      {3,
       agents::MultiMatchPolicy::kMaxSensibility,
       {emo(eit::EmotionalAttribute::kMotivated),
        emo(eit::EmotionalAttribute::kHopeful)},
       "(c) several, most sensibility wins"},
  };

  for (const Case& c : cases) {
    agents::MessagingAgentConfig config;
    config.policy = c.policy;
    config.sensibility_threshold = 0.5;
    agents::MessagingAgent agent(&sums, config);
    agents::InstallDefaultTemplates(catalog, &agent);
    agents::ComposeMessageRequest request;
    request.user = c.user;
    request.course = 100;
    request.product_attributes = c.product_attributes;
    const agents::ComposedMessage m = agent.Compose(request);
    std::printf("\n%s\n", c.label);
    std::printf("  case:     %s\n", CaseName(m.message_case));
    std::printf("  argued:   %s\n",
                m.argued_attribute >= 0
                    ? catalog.def(m.argued_attribute).name.c_str()
                    : "-");
    std::printf("  message:  \"%s\"\n", m.text.c_str());
  }

  // --- Case distribution over a population --------------------------------
  std::printf("\nmessage-case distribution over %s synthetic users "
              "(random course attributes):\n",
              WithThousandsSep(static_cast<int64_t>(population)).c_str());
  PrintRule();
  Rng rng(flags.seed, 9);
  agents::MessagingAgentConfig config;
  config.sensibility_threshold = 0.5;
  agents::MessagingAgent agent(&sums, config);
  agents::InstallDefaultTemplates(catalog, &agent);
  const auto attrs = eit::AllEmotionalAttributes();
  for (size_t u = 0; u < population; ++u) {
    const sum::UserId user = 1000 + static_cast<sum::UserId>(u);
    sum::SumUpdate update(user);
    for (eit::EmotionalAttribute e : attrs) {
      if (rng.Bernoulli(0.25)) {
        update.SetSensibility(emo(e), rng.Uniform(0.5, 1.0));
      }
    }
    (void)sums.Apply(update);
    agents::ComposeMessageRequest request;
    request.user = user;
    request.course = static_cast<lifelog::ItemId>(u % 97);
    for (int k = 0; k < 3; ++k) {
      request.product_attributes.push_back(
          emo(attrs[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(attrs.size()) -
                                    1))]));
    }
    agent.Compose(request);
  }
  const auto& stats = agent.stats();
  for (size_t c = 0; c < 4; ++c) {
    std::printf("  %-24s %10s  (%.1f%%)\n",
                CaseName(static_cast<agents::MessageCase>(c)),
                WithThousandsSep(
                    static_cast<int64_t>(stats.by_case[c]))
                    .c_str(),
                100.0 * static_cast<double>(stats.by_case[c]) /
                    static_cast<double>(stats.composed));
  }
  return 0;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
