// Reproduces Fig. 2: the cross-disciplinary synergy — user's emotional
// information model + machine learning + intelligent agents. Runs the
// full pipeline end to end on a small cohort and prints the artifact
// counts each discipline contributes at every stage.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "campaign/runner.h"
#include "core/spa.h"

namespace spa::bench {
namespace {

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  const size_t users = flags.users > 0 ? flags.users : 5'000;

  PrintHeader(StrFormat(
      "Fig. 2 - Cross-disciplinary pipeline (%zu users)", users));

  core::SpaConfig config;
  config.seed = flags.seed;
  auto spa = std::make_unique<core::Spa>(config);
  campaign::PopulationConfig pop_config;
  pop_config.seed = flags.seed;
  const campaign::PopulationModel population(pop_config);
  const campaign::CourseCatalog courses =
      campaign::CourseCatalog::Generate(60, spa->attribute_catalog(),
                                        flags.seed);
  const campaign::ResponseModel responses;
  campaign::RunnerConfig runner_config;
  runner_config.seed = flags.seed;
  campaign::CampaignRunner runner(spa.get(), &population, &courses,
                                  &responses, runner_config);
  runner.RegisterCourses();

  std::vector<sum::UserId> candidates;
  for (size_t u = 0; u < users; ++u) {
    candidates.push_back(static_cast<sum::UserId>(u));
  }

  std::printf("\n[emotional information model]\n");
  runner.BootstrapUsers(candidates);
  std::printf("  SUMs initialized:           %zu (75 attributes each)\n",
              spa->sum_service()->size());
  std::printf("  Gradual EIT bank:           %zu consensus-scored items"
              " across 8 MSCEIT sections\n",
              spa->gradual_eit().bank().size());
  std::printf("  EIT answers recorded:       %llu\n",
              static_cast<unsigned long long>(
                  spa->attributes_manager()->stats().eit_answers));

  std::printf("\n[intelligent agents]\n");
  campaign::CampaignSpec spec;
  spec.id = 1;
  spec.target_count = users / 2;
  const auto schedule = runner.DefaultSchedule(
      users / 2, 5, campaign::TargetingMode::kRandom);
  spec.featured_courses = schedule.front().featured_courses;
  const campaign::CampaignOutcome outcome =
      runner.RunCampaign(spec, candidates);
  std::printf("  messages composed:          %llu "
              "(std/single/prio/max = %llu/%llu/%llu/%llu)\n",
              static_cast<unsigned long long>(
                  spa->messaging()->stats().composed),
              static_cast<unsigned long long>(outcome.message_cases[0]),
              static_cast<unsigned long long>(outcome.message_cases[1]),
              static_cast<unsigned long long>(outcome.message_cases[2]),
              static_cast<unsigned long long>(outcome.message_cases[3]));
  std::printf("  reinforcement updates:      %llu rewards, %llu "
              "punishments\n",
              static_cast<unsigned long long>(
                  spa->attributes_manager()->stats().reinforcements),
              static_cast<unsigned long long>(
                  spa->attributes_manager()->stats().punishments));

  std::printf("\n[machine learning]\n");
  std::printf("  propensity model trained:   %s (validation AUC %.3f, "
              "%zu examples)\n",
              spa->smart_component()->trained() ? "yes" : "no",
              spa->smart_component()->last_validation_auc(),
              spa->smart_component()->last_train_size());
  const auto top = spa->smart_component()->TopFeatures(5);
  std::printf("  top predictive features:\n");
  for (const auto& [name, weight] : top) {
    std::printf("    %-36s %+.4f\n", name.c_str(), weight);
  }

  std::printf("\n[synergy output]\n");
  const auto prospects = spa->SelectTopProspects(candidates, 5);
  if (prospects.ok()) {
    std::printf("  selection function (top prospects by propensity):\n");
    for (const auto& [user, score] : prospects.value()) {
      std::printf("    user %-8lld propensity %.3f\n",
                  static_cast<long long>(user), score);
    }
  }
  recsys::RecommendRequest rec_request;
  rec_request.user = candidates.front();
  rec_request.k = 3;
  const auto rec_response = spa->Recommend(rec_request);
  std::printf("  recommendation function (user %lld): ",
              static_cast<long long>(candidates.front()));
  if (rec_response.ok()) {
    for (const auto& item : rec_response.value().items) {
      std::printf("course#%d(%.2f) ", item.item, item.score);
    }
  }
  std::printf("\n  campaign impacts: %zu/%zu (%.1f%%)\n",
              outcome.useful_impacts, outcome.targeted,
              outcome.PredictiveScore() * 100.0);
  return 0;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
