// Reproduces Table 1: the Four-Branch Model of Emotional Intelligence
// (MSCEIT V2.0) — the structure our Gradual EIT engine implements — and
// exercises it by consensus-scoring a population of simulated
// respondents whose ability correlates with agreement with the norming
// population.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "eit/gradual_eit.h"
#include "eit/question_bank.h"

namespace spa::bench {
namespace {

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  const size_t respondents = flags.users > 0 ? flags.users : 1000;

  PrintHeader("Table 1 - Four-Branch Model of Emotional Intelligence "
              "(MSCEIT V2.0)");

  std::printf("\n%-12s  %-24s  %-18s  %s\n", "area", "branch",
              "task sections", "ability");
  PrintRule();
  for (eit::Branch b : eit::AllBranches()) {
    std::string sections;
    for (const eit::TaskSection& s : eit::TaskSections()) {
      if (s.branch != b) continue;
      if (!sections.empty()) sections += ", ";
      sections += std::string(s.name);
    }
    std::printf("%-12s  %-24s  %-18s  %.60s...\n",
                std::string(eit::AreaName(eit::AreaOf(b))).c_str(),
                std::string(eit::BranchName(b)).c_str(),
                sections.c_str(),
                std::string(eit::BranchDescription(b)).c_str());
  }

  // Score a synthetic population: respondent "ability" drives the
  // probability of endorsing the consensus option per item.
  const eit::QuestionBank bank = eit::QuestionBank::Generate(12, flags.seed);
  const eit::GradualEit engine(&bank);
  Rng rng(flags.seed, 5);

  StreamingStats low_total, high_total;
  std::array<StreamingStats, eit::kNumBranches> branch_stats;
  for (size_t r = 0; r < respondents; ++r) {
    const double ability = rng.Uniform();
    eit::UserEitState state(bank.size());
    while (true) {
      const auto qid = engine.NextQuestionFor(state);
      if (!qid.ok()) break;
      const eit::EitQuestion& q = *bank.ById(qid.value()).value();
      size_t option;
      if (rng.Bernoulli(0.15 + 0.75 * ability)) {
        option = q.ModalOption();
      } else {
        option = static_cast<size_t>(
            rng.UniformInt(0, eit::kOptionsPerQuestion - 1));
      }
      (void)engine.RecordAnswer(&state, qid.value(), option);
    }
    const eit::EitScores scores = engine.ScoresFor(state);
    (ability < 0.5 ? low_total : high_total)
        .Add(scores.Standardized());
    for (size_t b = 0; b < eit::kNumBranches; ++b) {
      branch_stats[b].Add(scores.branch_score[b]);
    }
  }

  std::printf("\nconsensus scoring of %zu simulated respondents "
              "(%zu-item bank):\n",
              respondents, bank.size());
  PrintRule();
  for (eit::Branch b : eit::AllBranches()) {
    const auto& stats = branch_stats[static_cast<size_t>(b)];
    std::printf("%-24s  mean branch score %.3f (sd %.3f)\n",
                std::string(eit::BranchName(b)).c_str(), stats.mean(),
                stats.stddev());
  }
  std::printf("\nstandardized EIQ: low-ability half %.1f vs "
              "high-ability half %.1f\n",
              low_total.mean(), high_total.mean());
  std::printf("(construct validity: higher agreement with the norming "
              "population must score higher)\n");
  return low_total.mean() < high_total.mean() ? 0 : 1;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
