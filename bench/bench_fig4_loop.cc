// Reproduces Fig. 4: the iterative automatic process to discover,
// manage and update emotional attributes. We measure how the platform's
// learned sensibility estimates converge toward the users' latent
// emotional attributes as contacts accumulate — the quantitative
// content of the discover -> advise -> update loop.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "campaign/runner.h"
#include "core/spa.h"

namespace spa::bench {
namespace {

struct LoopStats {
  double mae = 0.0;          // mean |learned - latent|
  double corr = 0.0;         // Pearson over (user, attribute) pairs
  double dominant_hit = 0.0; // P(top learned attr == top latent attr)
  double coverage = 0.0;     // share of attrs with any evidence
};

LoopStats Measure(core::Spa* spa,
                  const campaign::PopulationModel& population,
                  size_t users) {
  LoopStats stats;
  const auto& catalog = spa->attribute_catalog();
  double sum_abs = 0.0;
  double ml = 0.0, mt = 0.0;
  std::vector<double> learned_v, latent_v;
  size_t hits = 0;
  size_t covered = 0, total = 0;
  for (size_t u = 0; u < users; ++u) {
    const campaign::LatentUser latent =
        population.UserAt(static_cast<sum::UserId>(u));
    const auto model =
        spa->sum_snapshot()->Get(static_cast<sum::UserId>(u));
    if (!model.ok()) continue;
    double best_learned = -1.0;
    eit::EmotionalAttribute best_attr =
        eit::EmotionalAttribute::kEnthusiastic;
    for (eit::EmotionalAttribute e : eit::AllEmotionalAttributes()) {
      const double learned =
          model.value()->sensibility(catalog.EmotionalId(e));
      const double truth = latent.emotional[static_cast<size_t>(e)];
      sum_abs += std::abs(learned - truth);
      learned_v.push_back(learned);
      latent_v.push_back(truth);
      ml += learned;
      mt += truth;
      if (learned > best_learned) {
        best_learned = learned;
        best_attr = e;
      }
      if (model.value()->evidence(catalog.EmotionalId(e)) > 0.0) {
        ++covered;
      }
      ++total;
    }
    if (best_attr == latent.DominantEmotion()) ++hits;
  }
  const double n = static_cast<double>(learned_v.size());
  stats.mae = sum_abs / n;
  ml /= n;
  mt /= n;
  double num = 0.0, dl = 0.0, dt = 0.0;
  for (size_t i = 0; i < learned_v.size(); ++i) {
    num += (learned_v[i] - ml) * (latent_v[i] - mt);
    dl += (learned_v[i] - ml) * (learned_v[i] - ml);
    dt += (latent_v[i] - mt) * (latent_v[i] - mt);
  }
  stats.corr = num / std::sqrt(dl * dt + 1e-12);
  stats.dominant_hit =
      static_cast<double>(hits) / static_cast<double>(users);
  stats.coverage =
      static_cast<double>(covered) / static_cast<double>(total);
  return stats;
}

void RunCohort(const CommonFlags& flags, size_t users, size_t rounds,
               double answer_prob, const char* label) {
  std::printf("\n--- cohort: %s (EIT answer probability %.2f) ---\n",
              label, answer_prob);

  core::SpaConfig config;
  config.seed = flags.seed;
  auto spa = std::make_unique<core::Spa>(config);
  campaign::PopulationConfig pop_config;
  pop_config.seed = flags.seed;
  pop_config.mean_eit_answer_prob = answer_prob;
  const campaign::PopulationModel population(pop_config);
  const campaign::CourseCatalog courses =
      campaign::CourseCatalog::Generate(100, spa->attribute_catalog(),
                                        flags.seed);
  const campaign::ResponseModel responses;

  campaign::RunnerConfig runner_config;
  runner_config.seed = flags.seed;
  runner_config.eit_warmup_contacts = 0;  // measure the loop from zero
  runner_config.bootstrap_events_per_user = 6;
  runner_config.retrain_after_campaign = false;
  campaign::CampaignRunner runner(spa.get(), &population, &courses,
                                  &responses, runner_config);
  runner.RegisterCourses();

  std::vector<sum::UserId> candidates;
  for (size_t u = 0; u < users; ++u) {
    candidates.push_back(static_cast<sum::UserId>(u));
  }
  runner.BootstrapUsers(candidates);

  std::printf("\n%-7s %10s %10s %14s %10s\n", "round", "MAE",
              "corr", "dominant-hit", "coverage");
  PrintRule();
  {
    const LoopStats s0 = Measure(spa.get(), population, users);
    std::printf("%-7d %10.3f %10.3f %13.1f%% %9.1f%%\n", 0, s0.mae,
                s0.corr, s0.dominant_hit * 100.0, s0.coverage * 100.0);
  }

  const auto schedule = runner.DefaultSchedule(
      users, 5, campaign::TargetingMode::kRandom);
  for (size_t round = 1; round <= rounds; ++round) {
    campaign::CampaignSpec spec =
        schedule[(round - 1) % schedule.size()];
    spec.id = static_cast<int>(round);
    spec.target_count = users;  // contact everyone each round
    runner.RunCampaign(spec, candidates);
    const LoopStats s = Measure(spa.get(), population, users);
    std::printf("%-7zu %10.3f %10.3f %13.1f%% %9.1f%%\n", round, s.mae,
                s.corr, s.dominant_hit * 100.0, s.coverage * 100.0);
  }
}

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  const size_t users = flags.users > 0 ? flags.users : 20'000;
  const size_t rounds = 12;

  PrintHeader(StrFormat(
      "Fig. 4 - Iterative discovery of emotional attributes "
      "(%zu users, %zu contact rounds)",
      users, rounds));

  // The paper's deployment suffered the sparsity problem (§5.2: "in
  // many occasions users do not answer questions"); contrast the
  // production-like cohort with a cooperative one.
  RunCohort(flags, users, rounds, 0.35, "production sparsity");
  RunCohort(flags, users, rounds, 0.9, "cooperative");

  std::printf("\nexpected shape: correlation and dominant-attribute hit "
              "rate rise monotonically as the\n"
              "discover/advise/update loop accumulates EIT answers and "
              "reinforcement evidence; the\n"
              "cooperative cohort converges several times faster "
              "(sparsity is the limiting factor).\n");
  return 0;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
