#ifndef SPA_BENCH_FIG6_COMMON_H_
#define SPA_BENCH_FIG6_COMMON_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "campaign/redemption.h"
#include "campaign/runner.h"
#include "core/spa.h"
#include "ml/scaler.h"
#include "ml/svm_linear.h"

/// Shared driver for the Fig. 6 reproductions: bootstraps a synthetic
/// population, pre-trains the propensity model on a pilot blast, then
/// runs the paper's 10-campaign schedule (8 Push + 2 newsletters) with
/// randomly chosen targets scored by the model — exactly the §5.4
/// evaluation design.
///
/// The emotional ablation is computed on the SAME deployment data:
/// a second model, trained on identical contact-time snapshots with the
/// emotional feature group removed, re-scores every campaign. This
/// isolates what the emotional context contributes to prediction
/// quality, holding the world fixed.

namespace spa::bench {

struct Fig6Setup {
  size_t pool = 100'000;          ///< candidate population
  size_t targets = 42'400;        ///< per campaign (paper ratio ~42 %)
  size_t courses = 200;
  uint64_t seed = 42;
  bool emotional_features = true;     ///< platform-side ablation switch
  bool personalized_messaging = true;
  double eit_answer_prob = 0.35;
  /// Also compute the same-world objective-only rescoring.
  bool compute_objective_ablation = true;
};

struct Fig6Result {
  std::vector<campaign::CampaignOutcome> outcomes;  // the 10 campaigns
  campaign::RedemptionReport report;
  /// Same outcomes re-scored by the emotion-blind model.
  std::vector<campaign::CampaignOutcome> objective_outcomes;
  campaign::RedemptionReport objective_report;
  double model_auc = 0.0;  ///< SmartComponent validation AUC
};

/// Removes the given feature indices from a sparse snapshot.
inline ml::SparseVector DropFeatures(
    const ml::SparseVector& v,
    const std::unordered_set<int32_t>& dropped) {
  ml::SparseVector out;
  for (size_t i = 0; i < v.nnz(); ++i) {
    if (!dropped.contains(v.index(i))) {
      out.PushBack(v.index(i), v.value(i));
    }
  }
  return out;
}

/// Indices of the emotional feature group (sens + emotional values).
inline std::unordered_set<int32_t> EmotionalFeatureIndices(
    core::Spa* spa) {
  std::unordered_set<int32_t> indices;
  const auto& space = *spa->feature_space();
  const auto& catalog = spa->attribute_catalog();
  for (int32_t f = 0; f < space.size(); ++f) {
    const std::string& name = space.NameOf(f);
    if (name.rfind("sum.sens.", 0) == 0) {
      indices.insert(f);
      continue;
    }
    for (eit::EmotionalAttribute e : eit::AllEmotionalAttributes()) {
      const std::string value_name =
          "sum.value." + std::string(eit::EmotionalAttributeName(e));
      if (name == value_name) indices.insert(f);
    }
    (void)catalog;
  }
  return indices;
}

/// Replays the runner's retraining cadence on ablated snapshots:
/// campaign k is scored by a model trained on the preceding `window`
/// campaigns' (filtered) snapshots. Returns one score vector per
/// recorded campaign (index 0 = pilot).
inline std::vector<std::vector<double>> ReplayAblatedScores(
    const campaign::CampaignRunner& runner,
    const std::unordered_set<int32_t>& dropped_features,
    const ml::SvmConfig& svm_config, size_t window) {
  const auto& features = runner.history_features();
  const auto& labels = runner.history_labels();
  const auto& starts = runner.campaign_starts();

  std::vector<std::vector<double>> scores_per_campaign(starts.size());
  for (size_t k = 0; k < starts.size(); ++k) {
    const size_t begin = starts[k];
    const size_t end =
        (k + 1 < starts.size()) ? starts[k + 1] : labels.size();
    scores_per_campaign[k].assign(end - begin, 0.5);
    if (k == 0) continue;  // pilot scored by the untrained prior

    const size_t train_first = k > window ? starts[k - window] : 0;
    const size_t train_last = starts[k];

    ml::Dataset train;
    for (size_t i = train_first; i < train_last; ++i) {
      train.x.AppendRow(DropFeatures(features[i], dropped_features));
      train.y.push_back(labels[i]);
    }
    if (train.positives() == 0 ||
        train.positives() == train.size()) {
      continue;
    }
    ml::ColumnScaler scaler;
    if (!scaler.Fit(train.x).ok() ||
        !scaler.Transform(&train.x).ok()) {
      continue;
    }
    ml::LinearSvm svm(svm_config);
    if (!svm.Train(train).ok()) continue;

    for (size_t i = begin; i < end; ++i) {
      const ml::SparseVector filtered =
          DropFeatures(features[i], dropped_features);
      const ml::SparseVector scaled =
          scaler.TransformRow(filtered.view());
      scores_per_campaign[k][i - begin] = svm.Score(scaled.view());
    }
  }
  return scores_per_campaign;
}

inline Fig6Result RunTenCampaigns(const Fig6Setup& setup) {
  core::SpaConfig config;
  config.seed = setup.seed;
  config.include_emotional_features = setup.emotional_features;
  auto spa = std::make_unique<core::Spa>(config);

  campaign::PopulationConfig pop_config;
  pop_config.seed = setup.seed;
  pop_config.mean_eit_answer_prob = setup.eit_answer_prob;
  const campaign::PopulationModel population(pop_config);

  const campaign::CourseCatalog courses =
      campaign::CourseCatalog::Generate(
          setup.courses, spa->attribute_catalog(), setup.seed);
  const campaign::ResponseModel responses;

  campaign::RunnerConfig runner_config;
  runner_config.seed = setup.seed;
  runner_config.personalized_messaging = setup.personalized_messaging;
  runner_config.bootstrap_events_per_user = 8;
  campaign::CampaignRunner runner(spa.get(), &population, &courses,
                                  &responses, runner_config);
  runner.RegisterCourses();

  std::vector<sum::UserId> candidates;
  candidates.reserve(setup.pool);
  for (size_t u = 0; u < setup.pool; ++u) {
    candidates.push_back(static_cast<sum::UserId>(u));
  }
  runner.BootstrapUsers(candidates);

  // Pilot blast (not part of the 10 campaigns): gives the Smart
  // Component its initial training data, mirroring the production
  // platform that had historical campaigns before the evaluation.
  {
    campaign::CampaignSpec pilot;
    pilot.id = 0;
    pilot.target_count = setup.targets / 4;
    const auto schedule = runner.DefaultSchedule(
        setup.targets, 5, campaign::TargetingMode::kRandom);
    pilot.featured_courses = schedule.front().featured_courses;
    runner.RunCampaign(pilot, candidates);
  }

  Fig6Result result;
  const auto schedule = runner.DefaultSchedule(
      setup.targets, 5, campaign::TargetingMode::kRandom);
  for (const campaign::CampaignSpec& spec : schedule) {
    result.outcomes.push_back(runner.RunCampaign(spec, candidates));
  }
  result.report = campaign::ComputeRedemption(result.outcomes);
  result.model_auc = spa->smart_component()->last_validation_auc();

  if (setup.compute_objective_ablation) {
    const auto dropped = EmotionalFeatureIndices(spa.get());
    const auto replayed = ReplayAblatedScores(
        runner, dropped, config.svm,
        runner_config.training_window_campaigns);
    // replayed[0] is the pilot; campaigns are 1..10.
    result.objective_outcomes = result.outcomes;
    for (size_t c = 0; c < result.objective_outcomes.size(); ++c) {
      if (c + 1 < replayed.size()) {
        result.objective_outcomes[c].scores = replayed[c + 1];
      }
    }
    result.objective_report =
        campaign::ComputeRedemption(result.objective_outcomes);
  }
  return result;
}

}  // namespace spa::bench

#endif  // SPA_BENCH_FIG6_COMMON_H_
