#ifndef SPA_BENCH_BENCH_UTIL_H_
#define SPA_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/stats.h"
#include "common/string_util.h"

/// Shared flag parsing, latency-quantile export and table rendering
/// for the bench binaries.
///
/// Common flags:
///   --users=N        candidate pool size (default per bench)
///   --seed=S         master seed (default 42)
///   --paper-scale    pool = 3,162,069 / targets = 1,340,432 (memory!)
///   --smoke          CI-sized run: small pools, full scenario +
///                    parity coverage (exit code still gates parity)

namespace spa::bench {

struct CommonFlags {
  size_t users = 0;  // 0 = bench default
  uint64_t seed = 42;
  bool paper_scale = false;
  bool smoke = false;
};

inline CommonFlags ParseFlags(int argc, char** argv) {
  CommonFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--users=", 0) == 0) {
      flags.users = static_cast<size_t>(
          std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--paper-scale") {
      flags.paper_scale = true;
    } else if (arg == "--smoke") {
      flags.smoke = true;
    }
  }
  return flags;
}

/// The three latency quantiles every bench exports, pulled from one
/// `spa::LogHistogram` snapshot (seconds) and scaled into the caller's
/// unit (1e3 = milliseconds, 1e6 = microseconds). Centralizes the
/// `Quantile(0.50/0.95/0.99)` triple that bench_serving and
/// bench_scenarios both emit per histogram.
struct QuantileSnapshot {
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

inline QuantileSnapshot Quantiles(const spa::LogHistogram& histogram,
                                  double scale = 1.0) {
  QuantileSnapshot snapshot;
  snapshot.count = histogram.total();
  snapshot.p50 = histogram.Quantile(0.50) * scale;
  snapshot.p95 = histogram.Quantile(0.95) * scale;
  snapshot.p99 = histogram.Quantile(0.99) * scale;
  return snapshot;
}

/// Emits the quantile triple as JSON fields (no braces, no trailing
/// comma): `"p50_<unit>": x, "p95_<unit>": y, "p99_<unit>": z`.
inline void WriteQuantileFields(std::FILE* json,
                                const QuantileSnapshot& quantiles,
                                const char* unit) {
  std::fprintf(json,
               "\"p50_%s\": %.4f, \"p95_%s\": %.4f, \"p99_%s\": %.4f",
               unit, quantiles.p50, unit, quantiles.p95, unit,
               quantiles.p99);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------\n");
}

}  // namespace spa::bench

#endif  // SPA_BENCH_BENCH_UTIL_H_
