#ifndef SPA_BENCH_BENCH_UTIL_H_
#define SPA_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/string_util.h"

/// Shared flag parsing and table rendering for the bench binaries.
///
/// Common flags:
///   --users=N        candidate pool size (default per bench)
///   --seed=S         master seed (default 42)
///   --paper-scale    pool = 3,162,069 / targets = 1,340,432 (memory!)
///   --smoke          CI-sized run: small pools, full scenario +
///                    parity coverage (exit code still gates parity)

namespace spa::bench {

struct CommonFlags {
  size_t users = 0;  // 0 = bench default
  uint64_t seed = 42;
  bool paper_scale = false;
  bool smoke = false;
};

inline CommonFlags ParseFlags(int argc, char** argv) {
  CommonFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--users=", 0) == 0) {
      flags.users = static_cast<size_t>(
          std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--paper-scale") {
      flags.paper_scale = true;
    } else if (arg == "--smoke") {
      flags.smoke = true;
    }
  }
  return flags;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------\n");
}

}  // namespace spa::bench

#endif  // SPA_BENCH_BENCH_UTIL_H_
