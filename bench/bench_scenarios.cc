// Emotion-dynamic scenario matrix through the serving deployments:
//
//   * every workload archetype (steady power-law, flash crowd,
//     cold-start churn, emotion-shift storm) is expanded by the
//     deterministic ScenarioGenerator and replayed open-loop by the
//     ScenarioRunner against BOTH backends — a single async
//     ServingPipeline and the sharded ServingRouter — at a rate
//     calibrated to the deployment's measured capacity;
//   * each run reports throughput, p50/p95/p99 end-to-end latency,
//     per-lane rejected/shed counts, queue-depth high-water marks,
//     cache hit-rate, and its SLO verdict (p99 bound + shed budget);
//   * sampled responses are re-served synchronously at their pinned
//     (matrix_version, sum_version) on an offline reference and
//     compared bitwise — the parity gate that decides the exit code
//     (the SLO verdict is reported but host-perf dependent, so it
//     does not gate).
//
// Results merge into BENCH_serving.json under the "scenarios" key
// (the rest of the file, written by bench_serving, is preserved).
//
//   ./build/bench/bench_scenarios [--users=N] [--seed=S] [--smoke]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/scenario.h"
#include "workload/scenario_runner.h"

namespace spa::bench {
namespace {

/// Splices `scenarios_json` (the full `"scenarios": {...}` object
/// body) into BENCH_serving.json, replacing any previous "scenarios"
/// key and preserving everything bench_serving wrote. Writes a fresh
/// file when none exists.
void MergeIntoBenchJson(const std::string& scenarios_json) {
  std::string existing;
  if (std::FILE* in = std::fopen("BENCH_serving.json", "rb")) {
    char buffer[4096];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
      existing.append(buffer, got);
    }
    std::fclose(in);
  }

  std::string prefix;
  const size_t marker = existing.find(",\n  \"scenarios\":");
  if (marker != std::string::npos) {
    prefix = existing.substr(0, marker);  // replace the previous run
  } else {
    const size_t close = existing.rfind('}');
    if (close != std::string::npos) {
      prefix = existing.substr(0, close);
    }
  }
  while (!prefix.empty() &&
         (prefix.back() == '\n' || prefix.back() == ' ' ||
          prefix.back() == '\t')) {
    prefix.pop_back();
  }
  if (prefix.empty()) prefix = "{\n  \"bench\": \"serving\"";

  std::FILE* out = std::fopen("BENCH_serving.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "%s,\n  \"scenarios\": %s\n}\n", prefix.c_str(),
               scenarios_json.c_str());
  std::fclose(out);
  std::printf("\nmerged \"scenarios\" into BENCH_serving.json\n");
}

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  // Smoke: CI-sized population, two scenarios (the baseline and one
  // emotion storm), both backends, parity gate fully enforced. Full:
  // the four-archetype matrix at 100k+ users through both backends.
  const size_t users =
      flags.users > 0 ? flags.users : (flags.smoke ? 4'000 : 100'000);
  const size_t target_events = flags.smoke ? 600 : 6'000;

  std::vector<workload::ScenarioConfig> scenarios;
  if (flags.smoke) {
    scenarios.push_back(
        workload::SteadyPowerLawScenario(users, flags.seed));
    scenarios.push_back(
        workload::EmotionShiftStormScenario(users, flags.seed + 3));
    for (workload::ScenarioConfig& scenario : scenarios) {
      scenario.target_events = target_events;
    }
  } else {
    scenarios = workload::StandardScenarioMatrix(users, target_events,
                                                 flags.seed);
  }

  PrintHeader(StrFormat(
      "Scenario matrix - %zu archetypes x {pipeline, router} "
      "(%zu users, %zu events each)",
      scenarios.size(), users, target_events));

  std::vector<workload::ScenarioOutcome> outcomes;
  bool parity = true;
  for (const workload::BackendKind backend :
       {workload::BackendKind::kPipeline,
        workload::BackendKind::kRouter}) {
    for (const workload::ScenarioConfig& scenario : scenarios) {
      workload::RunnerConfig config;
      config.backend = backend;
      if (flags.smoke) {
        config.calibration_requests = 100;
        config.slo.parity_samples = 32;
      }
      const workload::ScenarioRunner runner(config);
      const workload::ScenarioOutcome outcome = runner.Run(scenario);
      if (!outcome.status.ok()) {
        std::printf("%-22s %-8s FAILED: %s\n",
                    outcome.scenario.c_str(), outcome.backend.c_str(),
                    outcome.status.ToString().c_str());
        parity = false;
        outcomes.push_back(outcome);
        continue;
      }
      if (!outcome.parity) parity = false;
      std::printf(
          "%-22s %-8s offered %8.0f req/s | served %8.0f req/s | "
          "p50 %8.3f ms | p99 %8.3f ms | shed %llu | hit %.3f | "
          "slo %s | parity %s (%zu checked)\n",
          outcome.scenario.c_str(), outcome.backend.c_str(),
          outcome.offered_rps, outcome.achieved_rps, outcome.p50_ms,
          outcome.p99_ms,
          static_cast<unsigned long long>(outcome.shed_reads +
                                          outcome.rejected_reads),
          outcome.cache_hit_rate, outcome.slo_pass ? "PASS" : "FAIL",
          outcome.parity ? "OK" : "MISMATCH", outcome.parity_checked);
      outcomes.push_back(outcome);
    }
  }

  // ---- deadline-degraded flash crowd --------------------------------------
  // One extra cell replays the flash-crowd archetype overloaded (1.5x
  // the calibrated capacity) against the pipeline backend under
  // kDegrade with a tight per-read deadline: pressed reads must come
  // back from the popularity fallback tier (flagged `degraded`) rather
  // than queueing without bound, and every sampled response — degraded
  // or not — must still match its offline reference. The cell gates
  // the exit code on both: nonzero fallback serves and parity.
  {
    workload::ScenarioConfig crowd =
        workload::FlashCrowdScenario(users, flags.seed + 7);
    crowd.name = "flash_crowd_degrade";
    crowd.target_events = target_events;
    workload::RunnerConfig config;
    config.backend = workload::BackendKind::kPipeline;
    config.policy = recsys::BackpressurePolicy::kDegrade;
    config.deadline_ms = 2.0;
    // A single drain worker and a short queue make the overload real
    // at smoke scale too: the backlog must outrun one worker before
    // any read feels deadline pressure.
    config.pipeline_workers = 1;
    config.queue_capacity = 64;
    config.offered_fraction = 3.0;
    if (flags.smoke) {
      config.calibration_requests = 100;
      config.slo.parity_samples = 32;
    }
    const workload::ScenarioRunner runner(config);
    const workload::ScenarioOutcome outcome = runner.Run(crowd);
    if (!outcome.status.ok()) {
      std::printf("%-22s %-8s FAILED: %s\n", outcome.scenario.c_str(),
                  outcome.backend.c_str(),
                  outcome.status.ToString().c_str());
      parity = false;
    } else {
      if (!outcome.parity) parity = false;
      if (outcome.fallback_served == 0) {
        // The whole point of the cell: overload must be answered with
        // degraded service, not silence.
        std::printf("flash_crowd_degrade: no fallback serves under "
                    "1.5x overload - degradation path not exercised\n");
        parity = false;
      }
      std::printf(
          "%-22s %-8s offered %8.0f req/s | served %8.0f req/s | "
          "p50 %8.3f ms | p99 %8.3f ms | fallback %llu | "
          "dropped %llu | slo %s | parity %s (%zu checked)\n",
          outcome.scenario.c_str(), outcome.backend.c_str(),
          outcome.offered_rps, outcome.achieved_rps, outcome.p50_ms,
          outcome.p99_ms,
          static_cast<unsigned long long>(outcome.fallback_served),
          static_cast<unsigned long long>(outcome.expired_drops),
          outcome.slo_pass ? "PASS" : "FAIL",
          outcome.parity ? "OK" : "MISMATCH", outcome.parity_checked);
    }
    outcomes.push_back(outcome);
  }

  // ---- JSON ---------------------------------------------------------------
  std::string json = StrFormat(
      "{\n    \"users\": %zu,\n    \"target_events\": %zu,\n"
      "    \"smoke\": %s,\n    \"parity\": %s,\n    \"matrix\": [\n",
      users, target_events, flags.smoke ? "true" : "false",
      parity ? "true" : "false");
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const workload::ScenarioOutcome& o = outcomes[i];
    char fingerprint[32];
    std::snprintf(fingerprint, sizeof(fingerprint), "0x%016llx",
                  static_cast<unsigned long long>(o.stream_fingerprint));
    json += StrFormat(
        "      {\"scenario\": \"%s\", \"backend\": \"%s\", "
        "\"ok\": %s, \"users\": %zu, \"events\": %zu, "
        "\"fingerprint\": \"%s\", \"offered_rps\": %.1f, "
        "\"achieved_rps\": %.1f, ",
        o.scenario.c_str(), o.backend.c_str(),
        o.status.ok() ? "true" : "false", o.users, o.events,
        fingerprint, o.offered_rps, o.achieved_rps);
    const QuantileSnapshot e2e = Quantiles(o.end_to_end, 1e3);
    json += StrFormat(
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, ",
        e2e.p50, e2e.p95, e2e.p99);
    json += StrFormat(
        "\"responses\": %llu, \"updates\": %llu, "
        "\"rejected_reads\": %llu, \"rejected_writes\": %llu, "
        "\"shed_reads\": %llu, \"shed_writes\": %llu, "
        "\"fallback_served\": %llu, \"expired_drops\": %llu, "
        "\"max_queue_depth\": %llu, \"max_writer_queue_depth\": %llu, "
        "\"cache_hit_rate\": %.4f, \"parity_checked\": %zu, "
        "\"parity\": %s, \"slo_pass\": %s}%s\n",
        static_cast<unsigned long long>(o.responses),
        static_cast<unsigned long long>(o.updates_applied),
        static_cast<unsigned long long>(o.rejected_reads),
        static_cast<unsigned long long>(o.rejected_writes),
        static_cast<unsigned long long>(o.shed_reads),
        static_cast<unsigned long long>(o.shed_writes),
        static_cast<unsigned long long>(o.fallback_served),
        static_cast<unsigned long long>(o.expired_drops),
        static_cast<unsigned long long>(o.max_queue_depth),
        static_cast<unsigned long long>(o.max_writer_queue_depth),
        o.cache_hit_rate, o.parity_checked,
        o.parity ? "true" : "false", o.slo_pass ? "true" : "false",
        i + 1 < outcomes.size() ? "," : "");
  }
  json += "    ]\n  }";
  MergeIntoBenchJson(json);

  // Streamed/routed serving must reproduce the synchronous reference
  // bitwise at every sampled pin; SLO verdicts are reported above but
  // depend on host performance, so they do not gate.
  return parity ? 0 : 1;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
