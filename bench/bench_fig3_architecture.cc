// Reproduces Fig. 3: the SPA architecture. Instantiates the agent
// fabric (LifeLogs Pre-processor family, Attributes Manager, Messaging
// Agent, Smart Component) and traces message flow, replication events
// and per-agent delivery counts through a realistic ingest + advise
// cycle.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/rng.h"
#include "core/spa.h"
#include "lifelog/weblog.h"

namespace spa::bench {
namespace {

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  const size_t users = flags.users > 0 ? flags.users : 10'000;
  const size_t events_per_user = 5;

  PrintHeader(StrFormat(
      "Fig. 3 - SPA architecture trace (%zu users, %zu raw events)",
      users, users * events_per_user));

  core::SpaConfig config;
  config.seed = flags.seed;
  config.preprocessor.capacity_per_batch = 8'000;
  config.preprocessor.max_replicas = 6;
  auto spa = std::make_unique<core::Spa>(config);

  // --- component inventory -------------------------------------------------
  std::printf("\nregistered components:\n");
  for (const std::string& name : spa->runtime()->agent_names()) {
    std::printf("  - %s\n", name.c_str());
  }
  std::printf("  - smart-component (in-process learner)\n");
  std::printf("  - intelligent user interface (Human Values Scale, "
              "src/sum/human_values.h)\n");

  // --- raw WebLog ingest through the pre-processor family ------------------
  Rng rng(flags.seed, 21);
  std::vector<lifelog::Event> events;
  events.reserve(users * events_per_user);
  for (size_t u = 0; u < users; ++u) {
    for (size_t e = 0; e < events_per_user; ++e) {
      lifelog::Event event;
      event.user = static_cast<lifelog::UserId>(u);
      event.time = spa->clock()->now() -
                   static_cast<TimeMicros>(rng.UniformInt(0, 86'400)) *
                       kMicrosPerSecond;
      event.action_code = static_cast<int32_t>(rng.UniformInt(0, 983));
      if (rng.Bernoulli(0.4)) {
        event.item = static_cast<lifelog::ItemId>(rng.UniformInt(0, 99));
      }
      events.push_back(event);
    }
  }
  lifelog::WeblogNoiseOptions noise;
  noise.bot_fraction = 0.08;
  noise.error_fraction = 0.05;
  noise.malformed_fraction = 0.02;
  lifelog::WeblogSynthesizer synth(noise);
  std::vector<std::string> lines;
  synth.Synthesize(events, &lines);

  const size_t delivered = spa->IngestLogLines(lines);
  const auto& family = spa->preprocessor()->family_stats();

  std::printf("\ningest: %s raw lines -> %s clean events "
              "(%zu envelopes delivered)\n",
              WithThousandsSep(static_cast<int64_t>(lines.size())).c_str(),
              WithThousandsSep(static_cast<int64_t>(
                  spa->lifelog()->total_events())).c_str(),
              delivered);
  std::printf("  pre-processor replicas:   %zu (max %zu), "
              "overflow handoffs: %llu\n",
              family.replicas, config.preprocessor.max_replicas,
              static_cast<unsigned long long>(family.overflow_handoffs));
  std::printf("  filtered: %llu bots, %llu error-status, %llu "
              "malformed, %llu duplicates\n",
              static_cast<unsigned long long>(family.preprocess.bot_lines +
                                              family.preprocess.anonymous),
              static_cast<unsigned long long>(
                  family.preprocess.error_status),
              static_cast<unsigned long long>(
                  family.preprocess.parse_errors),
              static_cast<unsigned long long>(
                  family.preprocess.duplicates));

  // --- EIT + messaging round through the mailbox ---------------------------
  for (sum::UserId u = 0; u < 500; ++u) {
    const auto qid = spa->NextEitQuestion(u);
    if (qid.ok()) {
      const auto& question =
          *spa->gradual_eit().bank().ById(qid.value()).value();
      (void)spa->RecordEitAnswer(u, qid.value(),
                                 question.ModalOption());
    }
    spa->MessageFor(u, static_cast<lifelog::ItemId>(u % 50),
                    {spa->attribute_catalog().EmotionalId(
                        eit::EmotionalAttribute::kMotivated)});
  }
  spa->Tick();

  std::printf("\nper-agent mailbox statistics:\n");
  std::printf("  %-22s %12s %12s\n", "agent", "delivered", "sent");
  PrintRule();
  for (const std::string& name : spa->runtime()->agent_names()) {
    const auto& stats = spa->runtime()->stats().at(name);
    std::printf("  %-22s %12llu %12llu\n", name.c_str(),
                static_cast<unsigned long long>(stats.delivered),
                static_cast<unsigned long long>(stats.sent));
  }
  std::printf("\nattributes-manager: %llu EIT answers, %llu "
              "reinforcements, %llu decay rounds\n",
              static_cast<unsigned long long>(
                  spa->attributes_manager()->stats().eit_answers),
              static_cast<unsigned long long>(
                  spa->attributes_manager()->stats().reinforcements),
              static_cast<unsigned long long>(
                  spa->attributes_manager()->stats().decay_rounds));
  std::printf("messaging: %llu messages composed\n",
              static_cast<unsigned long long>(
                  spa->messaging()->stats().composed));
  return 0;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
