// Reproduces Fig. 1: the context dimensions of Ambient Recommender
// Systems (the paper's extension of Burke's knowledge-source taxonomy).
// For each context dimension the SUM models, we exercise the feature
// path through the recommender stack and report the score movement it
// produces — demonstrating that every dimension is wired in, with the
// emotional context as the paper's focus.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "campaign/course.h"
#include "core/spa.h"

namespace spa::bench {
namespace {

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  (void)flags;

  PrintHeader("Fig. 1 - Context dimensions of Ambient Recommender "
              "Systems");

  struct Dimension {
    const char* name;
    const char* representation;
  };
  const Dimension dimensions[] = {
      {"cognitive context",
       "stated topic interests (sum.value.topic_*), 15 attributes"},
      {"task context",
       "behaviour features: session counts, searches, info requests"},
      {"social context",
       "group_learning_preference / social_influence attributes"},
      {"emotional context",
       "10 valenced emotional attributes + learned sensibilities"},
      {"cultural context", "language_es/en/ca + region_code attributes"},
      {"physical context", "device_desktop_ratio / mobile_user"},
      {"location context", "city_size / distance_to_center"},
  };
  std::printf("\ncontext dimensions modeled by the SUM:\n");
  for (const Dimension& d : dimensions) {
    std::printf("  %-20s %s\n", d.name, d.representation);
  }

  // Exercise each dimension: perturb the corresponding attributes of a
  // user and measure how the propensity feature vector reacts.
  core::SpaConfig config;
  config.seed = flags.seed;
  auto spa = std::make_unique<core::Spa>(config);
  const auto& catalog = spa->attribute_catalog();

  const std::vector<std::pair<const char*, std::vector<std::string>>>
      perturbations = {
          {"cognitive context", {"topic_it", "topic_business"}},
          {"social context",
           {"group_learning_preference", "social_influence"}},
          {"cultural context", {"language_en", "region_code"}},
          {"physical context", {"device_desktop_ratio", "mobile_user"}},
          {"location context", {"city_size", "distance_to_center"}},
          {"emotional context", {"hopeful", "motivated"}},
      };

  std::printf("\nfeature-path check (non-zero feature deltas when the "
              "dimension changes):\n");
  PrintRule();
  for (const auto& [name, attrs] : perturbations) {
    sum::SmartUserModel base(1, &catalog);
    sum::SmartUserModel shifted(2, &catalog);
    for (const std::string& attr : attrs) {
      const auto id = catalog.IdOf(attr);
      if (!id.ok()) continue;
      shifted.set_value(id.value(), 0.9);
      if (catalog.def(id.value()).kind ==
          sum::AttributeKind::kEmotional) {
        shifted.set_sensibility(id.value(), 0.9);
      }
    }
    const auto f_base = spa->smart_component()->FeaturesFor(
        base, {}, spa->clock()->now());
    const auto f_shift = spa->smart_component()->FeaturesFor(
        shifted, {}, spa->clock()->now());
    std::printf("  %-20s feature nnz %zu -> %zu\n", name, f_base.nnz(),
                f_shift.nnz());
  }

  // Emotional context's effect on actual rankings: the same candidate
  // list re-ranked for an enthusiastic vs an apathetic user.
  const campaign::CourseCatalog courses =
      campaign::CourseCatalog::Generate(40, catalog, flags.seed);
  recsys::EmotionAwareReranker reranker;
  for (const auto& course : courses.courses()) {
    reranker.SetItemProfile(course.id, course.emotion_profile);
  }
  std::vector<recsys::Scored> base_scores;
  for (size_t i = 0; i < courses.size(); ++i) {
    base_scores.push_back(
        {courses.course(i).id, 1.0 - static_cast<double>(i) * 0.01});
  }
  sum::SmartUserModel enthusiastic(10, &catalog);
  enthusiastic.set_sensibility(
      catalog.EmotionalId(eit::EmotionalAttribute::kEnthusiastic), 0.9);
  sum::SmartUserModel apathetic(11, &catalog);
  apathetic.set_sensibility(
      catalog.EmotionalId(eit::EmotionalAttribute::kApathetic), 0.9);

  const auto ranked_enthusiastic =
      reranker.Rerank(enthusiastic, base_scores);
  const auto ranked_apathetic = reranker.Rerank(apathetic, base_scores);
  size_t moved = 0;
  for (size_t i = 0; i < ranked_enthusiastic.size(); ++i) {
    if (ranked_enthusiastic[i].item != ranked_apathetic[i].item) {
      ++moved;
    }
  }
  std::printf("\nemotional re-ranking: %zu of %zu positions differ "
              "between an enthusiastic and an apathetic user given "
              "identical base scores\n",
              moved, ranked_enthusiastic.size());
  std::printf("(the paper's point: context — emotional context above "
              "all — changes what should be recommended)\n");
  return moved > 0 ? 0 : 1;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
