// Ablations over the design choices DESIGN.md calls out:
//   1. emotional feature group on/off (same-world rescoring)
//   2. personalized vs standard messaging (two-world deployment effect)
//   3. Gradual EIT answer rate (the paper's sparsity problem)
//   4. classifier choice: SVM vs logistic regression vs naive Bayes
//   5. SVM-RFE dimensionality-reduction depth
//   6. message assignment policy (priority vs max-sensibility)

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "fig6_common.h"
#include "ml/cross_validation.h"
#include "ml/feature_selection.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"

namespace spa::bench {
namespace {

Fig6Setup SmallSetup(const CommonFlags& flags) {
  Fig6Setup setup;
  setup.seed = flags.seed;
  setup.pool = flags.users > 0 ? flags.users : 30'000;
  setup.targets = static_cast<size_t>(
      static_cast<double>(setup.pool) * 0.424);
  return setup;
}

void AblationEmotionalFeatures(const Fig6Result& result) {
  PrintHeader("Ablation 1 - emotional feature group (same outcomes, "
              "two models)");
  std::printf("%-28s %10s %10s\n", "model", "AUC", "capt@40%");
  PrintRule();
  std::printf("%-28s %10.3f %9.1f%%\n", "full (emotional)",
              result.report.auc, result.report.captured_at_40 * 100.0);
  std::printf("%-28s %10.3f %9.1f%%\n", "objective-only rescoring",
              result.objective_report.auc,
              result.objective_report.captured_at_40 * 100.0);
}

void AblationMessaging(const Fig6Setup& base, const Fig6Result& with) {
  PrintHeader("Ablation 2 - personalized messaging (deployment effect, "
              "two worlds)");
  Fig6Setup without = base;
  without.personalized_messaging = false;
  without.compute_objective_ablation = false;
  const Fig6Result plain = RunTenCampaigns(without);
  std::printf("%-28s %12s %12s\n", "messaging", "base rate",
              "impacts/campaign");
  PrintRule();
  std::printf("%-28s %11.1f%% %12zu\n", "individualized (SPA)",
              with.report.base_rate * 100.0,
              with.report.total_useful_impacts / 10);
  std::printf("%-28s %11.1f%% %12zu\n", "standard message",
              plain.report.base_rate * 100.0,
              plain.report.total_useful_impacts / 10);
  std::printf("\nemotional arguments lift useful impacts by %+.0f%% "
              "(the paper's \"more empathic recommendations\")\n",
              (with.report.base_rate / plain.report.base_rate - 1.0) *
                  100.0);
}

void AblationAnswerRate(const Fig6Setup& base) {
  PrintHeader("Ablation 3 - Gradual EIT answer rate (sparsity)");
  std::printf("%-14s %10s %12s %12s\n", "answer rate", "AUC",
              "capt@40%", "base rate");
  PrintRule();
  for (double rate : {0.05, 0.2, 0.35, 0.6, 0.9}) {
    Fig6Setup setup = base;
    setup.pool = std::min<size_t>(base.pool, 15'000);
    setup.targets = static_cast<size_t>(
        static_cast<double>(setup.pool) * 0.424);
    setup.eit_answer_prob = rate;
    setup.compute_objective_ablation = false;
    const Fig6Result result = RunTenCampaigns(setup);
    std::printf("%-14.2f %10.3f %11.1f%% %11.1f%%\n", rate,
                result.report.auc,
                result.report.captured_at_40 * 100.0,
                result.report.base_rate * 100.0);
  }
  std::printf("(more answered questions -> better emotional discovery "
              "-> more well-argued messages -> higher base rate;\n"
              " the argument-driven share of the response is harder to "
              "rank, so the AUC dips slightly as impacts rise)\n");
}

void AblationClassifier(const campaign::CampaignRunner& runner) {
  PrintHeader("Ablation 4 - classifier choice on campaign snapshots");
  // Train/evaluate on the accumulated snapshot history (chronological
  // split: first 70% train, last 30% test).
  const auto& features = runner.history_features();
  const auto& labels = runner.history_labels();
  const size_t split = features.size() * 7 / 10;
  ml::Dataset train, test;
  for (size_t i = 0; i < features.size(); ++i) {
    auto& target = i < split ? train : test;
    target.x.AppendRow(features[i]);
    target.y.push_back(labels[i]);
  }
  const int32_t cols = std::max(train.x.cols(), test.x.cols());
  train.x.SetCols(cols);
  test.x.SetCols(cols);
  ml::ColumnScaler scaler;
  (void)scaler.Fit(train.x);
  (void)scaler.Transform(&train.x);
  (void)scaler.Transform(&test.x);

  std::printf("%-28s %10s %12s\n", "classifier", "AUC", "prec@40%");
  PrintRule();
  auto evaluate = [&](ml::BinaryClassifier* model) {
    if (!model->Train(train).ok()) {
      std::printf("%-28s %10s\n", model->name().c_str(), "FAILED");
      return;
    }
    const auto scores = model->ScoreAll(test);
    std::printf("%-28s %10.3f %11.1f%%\n", model->name().c_str(),
                ml::RocAuc(scores, test.y),
                ml::PredictiveScore(scores, test.y, 0.4) * 100.0);
  };
  ml::SvmConfig svm_config;
  svm_config.c = 0.1;
  svm_config.max_iterations = 60;
  svm_config.tolerance = 1e-3;
  svm_config.positive_class_weight = 7.0;
  ml::LinearSvm svm(svm_config);
  evaluate(&svm);
  ml::LogisticRegression logreg;
  evaluate(&logreg);
  ml::BernoulliNaiveBayes nb;
  evaluate(&nb);
  ml::PegasosSvm pegasos(svm_config);
  evaluate(&pegasos);
}

void AblationRfe(const campaign::CampaignRunner& runner) {
  PrintHeader("Ablation 5 - SVM-RFE dimensionality reduction depth");
  const auto& features = runner.history_features();
  const auto& labels = runner.history_labels();
  // Subsample for RFE cost.
  ml::Dataset data;
  const size_t step = std::max<size_t>(1, features.size() / 20'000);
  for (size_t i = 0; i < features.size(); i += step) {
    data.x.AppendRow(features[i]);
    data.y.push_back(labels[i]);
  }
  ml::ColumnScaler scaler;
  (void)scaler.Fit(data.x);
  (void)scaler.Transform(&data.x);

  Rng rng(99);
  const auto split = ml::MakeStratifiedSplit(data.y, 0.3, &rng);
  const ml::Dataset train = data.Subset(split.train);
  const ml::Dataset test = data.Subset(split.test);

  std::printf("%-16s %10s  (full space: %d features)\n", "kept features",
              "AUC", data.features());
  PrintRule();
  for (int32_t keep : {8, 16, 32, 64}) {
    if (keep >= data.features()) continue;
    ml::RfeConfig config;
    config.target_features = keep;
    config.svm.c = 0.1;
    config.svm.max_iterations = 40;
    config.svm.positive_class_weight = 7.0;
    const auto selection = ml::SvmRfe(train, config);
    if (!selection.ok()) continue;
    const ml::Dataset train_proj =
        ml::ProjectDataset(train, selection.value().selected);
    const ml::Dataset test_proj =
        ml::ProjectDataset(test, selection.value().selected);
    ml::SvmConfig svm_config;
    svm_config.c = 0.1;
    svm_config.max_iterations = 60;
    svm_config.positive_class_weight = 7.0;
    ml::LinearSvm svm(svm_config);
    if (!svm.Train(train_proj).ok()) continue;
    std::printf("%-16d %10.3f\n", keep,
                ml::RocAuc(svm.ScoreAll(test_proj), test_proj.y));
  }
  {
    ml::SvmConfig svm_config;
    svm_config.c = 0.1;
    svm_config.max_iterations = 60;
    svm_config.positive_class_weight = 7.0;
    ml::LinearSvm svm(svm_config);
    if (svm.Train(train).ok()) {
      std::printf("%-16s %10.3f\n", "all",
                  ml::RocAuc(svm.ScoreAll(test), test.y));
    }
  }
  std::printf("(the paper uses SVMs to \"reduce the dimensionality of "
              "the matrix\"; a compact attribute set retains most of "
              "the ranking power)\n");
}

void AblationMessagePolicy(const Fig6Setup& base) {
  PrintHeader("Ablation 6 - message assignment policy (case 3.c.i vs "
              "3.c.ii)");
  std::printf("%-28s %12s\n", "policy", "base rate");
  PrintRule();
  // Policy is a platform config; run two small worlds.
  for (const bool use_max : {true, false}) {
    Fig6Setup setup = base;
    setup.pool = std::min<size_t>(base.pool, 15'000);
    setup.targets = static_cast<size_t>(
        static_cast<double>(setup.pool) * 0.424);
    setup.compute_objective_ablation = false;
    // RunTenCampaigns does not expose the policy; emulate via seed-
    // stable manual run.
    core::SpaConfig config;
    config.seed = setup.seed;
    config.messaging.policy =
        use_max ? agents::MultiMatchPolicy::kMaxSensibility
                : agents::MultiMatchPolicy::kPriority;
    auto spa = std::make_unique<core::Spa>(config);
    campaign::PopulationConfig pop_config;
    pop_config.seed = setup.seed;
    const campaign::PopulationModel population(pop_config);
    const campaign::CourseCatalog courses =
        campaign::CourseCatalog::Generate(
            setup.courses, spa->attribute_catalog(), setup.seed);
    const campaign::ResponseModel responses;
    campaign::RunnerConfig runner_config;
    runner_config.seed = setup.seed;
    campaign::CampaignRunner runner(spa.get(), &population, &courses,
                                    &responses, runner_config);
    runner.RegisterCourses();
    std::vector<sum::UserId> candidates;
    for (size_t u = 0; u < setup.pool; ++u) {
      candidates.push_back(static_cast<sum::UserId>(u));
    }
    runner.BootstrapUsers(candidates);
    const auto schedule = runner.DefaultSchedule(
        setup.targets, 5, campaign::TargetingMode::kRandom);
    size_t impacts = 0, targeted = 0;
    for (const auto& spec : schedule) {
      const auto outcome = runner.RunCampaign(spec, candidates);
      impacts += outcome.useful_impacts;
      targeted += outcome.targeted;
    }
    std::printf("%-28s %11.2f%%\n",
                use_max ? "3.c.ii max sensibility" : "3.c.i priority",
                100.0 * static_cast<double>(impacts) /
                    static_cast<double>(targeted));
  }
}

int Main(int argc, char** argv) {
  const CommonFlags flags = ParseFlags(argc, argv);
  const Fig6Setup base = SmallSetup(flags);

  // One shared full-world run feeds ablations 1 and 2; runner history
  // feeds 4 and 5. Re-build the world once more to get the runner
  // (RunTenCampaigns owns its runner internally), so construct the
  // heavy pieces here.
  core::SpaConfig config;
  config.seed = base.seed;
  auto spa = std::make_unique<core::Spa>(config);
  campaign::PopulationConfig pop_config;
  pop_config.seed = base.seed;
  const campaign::PopulationModel population(pop_config);
  const campaign::CourseCatalog courses =
      campaign::CourseCatalog::Generate(base.courses,
                                        spa->attribute_catalog(),
                                        base.seed);
  const campaign::ResponseModel responses;
  campaign::RunnerConfig runner_config;
  runner_config.seed = base.seed;
  campaign::CampaignRunner runner(spa.get(), &population, &courses,
                                  &responses, runner_config);
  runner.RegisterCourses();
  std::vector<sum::UserId> candidates;
  for (size_t u = 0; u < base.pool; ++u) {
    candidates.push_back(static_cast<sum::UserId>(u));
  }
  runner.BootstrapUsers(candidates);
  {
    campaign::CampaignSpec pilot;
    pilot.id = 0;
    pilot.target_count = base.targets / 4;
    const auto schedule = runner.DefaultSchedule(
        base.targets, 5, campaign::TargetingMode::kRandom);
    pilot.featured_courses = schedule.front().featured_courses;
    runner.RunCampaign(pilot, candidates);
  }
  std::vector<campaign::CampaignOutcome> outcomes;
  const auto schedule = runner.DefaultSchedule(
      base.targets, 5, campaign::TargetingMode::kRandom);
  for (const auto& spec : schedule) {
    outcomes.push_back(runner.RunCampaign(spec, candidates));
  }
  Fig6Result shared;
  shared.outcomes = outcomes;
  shared.report = campaign::ComputeRedemption(outcomes);
  {
    const auto dropped = EmotionalFeatureIndices(spa.get());
    const auto replayed = ReplayAblatedScores(
        runner, dropped, config.svm,
        runner_config.training_window_campaigns);
    shared.objective_outcomes = outcomes;
    for (size_t c = 0; c < shared.objective_outcomes.size(); ++c) {
      if (c + 1 < replayed.size()) {
        shared.objective_outcomes[c].scores = replayed[c + 1];
      }
    }
    shared.objective_report =
        campaign::ComputeRedemption(shared.objective_outcomes);
  }

  AblationEmotionalFeatures(shared);
  AblationMessaging(base, shared);
  AblationAnswerRate(base);
  AblationClassifier(runner);
  AblationRfe(runner);
  AblationMessagePolicy(base);
  return 0;
}

}  // namespace
}  // namespace spa::bench

int main(int argc, char** argv) { return spa::bench::Main(argc, argv); }
