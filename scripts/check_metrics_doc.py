#!/usr/bin/env python3
"""Fail when docs/METRICS.md and BENCH_serving.json disagree.

The metrics contract (docs/METRICS.md) lists key sets as backticked
names between `<!-- NAME:begin -->` / `<!-- NAME:end -->` markers.
Each marker block is compared with the keys of the matching object in
an actual smoke artifact, in both directions:

  * a key in the artifact but not the doc  -> the doc is stale;
  * a key in the doc but not the artifact  -> the doc over-promises.

Checked blocks:

  * `bench-keys`           -> the artifact's top-level keys;
  * `streaming-keys`       -> the `streaming` section (the open-loop
                              deadline-degradation sweep);
  * `streaming-point-keys` -> each entry of `streaming.points[]`.

Usage: check_metrics_doc.py <docs/METRICS.md> <BENCH_serving.json>

Exit code 0 when every set matches exactly, 1 otherwise (and on a
missing marker block, which would make the check vacuous).
"""

import json
import re
import sys


def documented_keys(text, doc_path, name):
    begin, end = f"<!-- {name}:begin -->", f"<!-- {name}:end -->"
    lo = text.find(begin)
    hi = text.find(end)
    if lo < 0 or hi < 0 or hi <= lo:
        sys.exit(f"error: marker block {begin} .. {end} not found in "
                 f"{doc_path}")
    keys = re.findall(r"`([^`]+)`", text[lo + len(begin):hi])
    if not keys:
        sys.exit(f"error: no backticked keys inside the {name} marker "
                 f"block of {doc_path}")
    return set(keys)


def compare(doc_path, json_path, what, documented, actual):
    undocumented = sorted(actual - documented)
    missing = sorted(documented - actual)
    if undocumented:
        print(f"{doc_path} is stale: {json_path} has undocumented "
              f"{what} keys: {', '.join(undocumented)}")
    if missing:
        print(f"{doc_path} over-promises: documented {what} keys "
              f"absent from {json_path}: {', '.join(missing)}")
    if undocumented or missing:
        return 1
    print(f"ok: {len(documented)} {what} keys match between "
          f"{doc_path} and {json_path}")
    return 0


def main(argv):
    if len(argv) != 3:
        sys.exit(f"usage: {argv[0]} <METRICS.md> <BENCH_serving.json>")
    doc_path, json_path = argv[1], argv[2]
    text = open(doc_path, encoding="utf-8").read()
    with open(json_path, encoding="utf-8") as f:
        artifact = json.load(f)

    rc = compare(doc_path, json_path, "top-level",
                 documented_keys(text, doc_path, "bench-keys"),
                 set(artifact.keys()))

    streaming = artifact.get("streaming")
    if not isinstance(streaming, dict):
        print(f"{json_path} has no \"streaming\" object to check")
        return 1
    rc |= compare(doc_path, json_path, "streaming",
                  documented_keys(text, doc_path, "streaming-keys"),
                  set(streaming.keys()))
    points = streaming.get("points") or []
    if not points:
        print(f"{json_path} has an empty \"streaming.points\" sweep")
        return 1
    rc |= compare(doc_path, json_path, "streaming point",
                  documented_keys(text, doc_path,
                                  "streaming-point-keys"),
                  set(points[0].keys()))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
