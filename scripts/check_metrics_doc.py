#!/usr/bin/env python3
"""Fail when docs/METRICS.md and BENCH_serving.json disagree.

The metrics contract (docs/METRICS.md) lists the artifact's top-level
keys as backticked names between `<!-- bench-keys:begin -->` and
`<!-- bench-keys:end -->` markers. This check compares that list with
the keys of an actual smoke artifact, in both directions:

  * a key in the artifact but not the doc  -> the doc is stale;
  * a key in the doc but not the artifact  -> the doc over-promises.

Usage: check_metrics_doc.py <docs/METRICS.md> <BENCH_serving.json>

Exit code 0 when the sets match exactly, 1 otherwise (and on a
missing marker block, which would make the check vacuous).
"""

import json
import re
import sys

BEGIN = "<!-- bench-keys:begin -->"
END = "<!-- bench-keys:end -->"


def documented_keys(doc_path):
    text = open(doc_path, encoding="utf-8").read()
    begin = text.find(BEGIN)
    end = text.find(END)
    if begin < 0 or end < 0 or end <= begin:
        sys.exit(f"error: marker block {BEGIN} .. {END} not found in "
                 f"{doc_path}")
    block = text[begin + len(BEGIN):end]
    keys = re.findall(r"`([^`]+)`", block)
    if not keys:
        sys.exit(f"error: no backticked keys inside the marker block "
                 f"of {doc_path}")
    return set(keys)


def main(argv):
    if len(argv) != 3:
        sys.exit(f"usage: {argv[0]} <METRICS.md> <BENCH_serving.json>")
    doc_path, json_path = argv[1], argv[2]
    documented = documented_keys(doc_path)
    with open(json_path, encoding="utf-8") as f:
        actual = set(json.load(f).keys())

    undocumented = sorted(actual - documented)
    missing = sorted(documented - actual)
    if undocumented:
        print(f"{doc_path} is stale: {json_path} has undocumented "
              f"top-level keys: {', '.join(undocumented)}")
    if missing:
        print(f"{doc_path} over-promises: documented keys absent from "
              f"{json_path}: {', '.join(missing)}")
    if undocumented or missing:
        return 1
    print(f"ok: {len(documented)} top-level keys match between "
          f"{doc_path} and {json_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
