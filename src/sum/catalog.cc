#include "sum/catalog.h"

#include "common/check.h"
#include "common/string_util.h"

namespace spa::sum {

namespace {

constexpr std::string_view kObjectiveNames[] = {
    "age_norm",
    "gender",
    "region_code",
    "education_level",
    "employment_status",
    "income_band",
    "household_size",
    "has_children",
    "years_experience",
    "city_size",
    "owns_computer",
    "internet_at_home",
    "mobile_user",
    "newsletter_optin",
    "registration_months",
    "profile_completeness",
    "language_es",
    "language_en",
    "language_ca",
    "marital_status",
    "budget_level",
    "available_hours_week",
    "prefers_onsite",
    "distance_to_center",
    "device_desktop_ratio",
    "weekend_activity_ratio",
    "morning_activity_ratio",
    "evening_activity_ratio",
    "discount_usage",
    "referral_source",
};

constexpr std::string_view kTopicNames[] = {
    "topic_business",    "topic_it",        "topic_health",
    "topic_languages",   "topic_arts",      "topic_law",
    "topic_science",     "topic_education", "topic_marketing",
    "topic_finance",     "topic_tourism",   "topic_sports",
    "topic_design",      "topic_engineering",
    "topic_psychology",
};

constexpr std::string_view kPreferenceNames[] = {
    "price_sensitivity",
    "brand_affinity",
    "quality_focus",
    "novelty_seeking",
    "certification_value",
    "practical_orientation",
    "theoretical_orientation",
    "group_learning_preference",
    "self_paced_preference",
    "instructor_importance",
    "flexibility_importance",
    "career_ambition",
    "learning_enjoyment",
    "risk_tolerance",
    "tech_savviness",
    "social_influence",
    "time_pressure",
    "loyalty",
    "exploration",
    "patience",
};

}  // namespace

void AttributeCatalog::Add(AttributeDef def) {
  def.id = static_cast<AttributeId>(defs_.size());
  by_name_.emplace(def.name, def.id);
  by_kind_[static_cast<size_t>(def.kind)].push_back(def.id);
  if (def.kind == AttributeKind::kEmotional) {
    emotional_ids_[static_cast<size_t>(def.emotion)] = def.id;
  }
  defs_.push_back(std::move(def));
}

AttributeCatalog AttributeCatalog::EmagisterDefault() {
  AttributeCatalog catalog;
  for (std::string_view name : kObjectiveNames) {
    AttributeDef def;
    def.name = std::string(name);
    def.kind = AttributeKind::kObjective;
    def.default_value = 0.0;
    catalog.Add(std::move(def));
  }
  for (std::string_view name : kTopicNames) {
    AttributeDef def;
    def.name = std::string(name);
    def.kind = AttributeKind::kSubjective;
    def.default_value = 0.0;
    catalog.Add(std::move(def));
  }
  for (std::string_view name : kPreferenceNames) {
    AttributeDef def;
    def.name = std::string(name);
    def.kind = AttributeKind::kSubjective;
    def.default_value = 0.5;  // neutral prior for preferences
    catalog.Add(std::move(def));
  }
  for (eit::EmotionalAttribute emotion : eit::AllEmotionalAttributes()) {
    AttributeDef def;
    def.name = std::string(eit::EmotionalAttributeName(emotion));
    def.kind = AttributeKind::kEmotional;
    def.valence = eit::ValenceOf(emotion);
    def.emotion = emotion;
    def.default_value = 0.0;
    catalog.Add(std::move(def));
  }
  SPA_CHECK(catalog.size() == 75);
  return catalog;
}

const AttributeDef& AttributeCatalog::def(AttributeId id) const {
  SPA_CHECK(id >= 0 && static_cast<size_t>(id) < defs_.size());
  return defs_[static_cast<size_t>(id)];
}

spa::Result<AttributeId> AttributeCatalog::IdOf(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return spa::Status::NotFound(
        spa::StrFormat("unknown attribute '%s'", name.c_str()));
  }
  return it->second;
}

const std::vector<AttributeId>& AttributeCatalog::ids_of(
    AttributeKind kind) const {
  return by_kind_[static_cast<size_t>(kind)];
}

AttributeId AttributeCatalog::EmotionalId(
    eit::EmotionalAttribute emotion) const {
  return emotional_ids_[static_cast<size_t>(emotion)];
}

}  // namespace spa::sum
