#ifndef SPA_SUM_SUM_SERVICE_H_
#define SPA_SUM_SUM_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sum/reward_punish.h"
#include "sum/sum_store.h"
#include "sum/sum_update.h"
#include "sum/user_model.h"

/// \file
/// Versioned emotional-context service: the read/write split over the
/// Smart User Models. The paper's SUM is a *living* profile — the
/// Attributes Manager keeps re-weighting sensibilities while the
/// serving engine reads them — so the store can no longer be a bare
/// mutable map shared by raw pointer. `SumService` owns the state
/// behind a mutation API (`Apply` / `ApplyAll`, taking `SumUpdate`s)
/// and publishes immutable `SumSnapshot` handles that readers pin for
/// the duration of a request:
///
///  * every publish bumps a global monotonic version and stamps each
///    touched user with it (per-user versions), which is the
///    invalidation signal the engine's response cache keys on;
///  * snapshots are copy-on-write at *user-shard* granularity: users
///    hash onto a fixed power-of-two number of sub-maps
///    (`SumServiceConfig::user_shards`), and a publish clones only the
///    shards its batch touches — a single-user `Apply` copies one
///    shard's map of `users/S` entries plus that user's model, not the
///    world. Untouched shards (and the creation-order vector, when no
///    new user appears) are shared with the previous snapshot by
///    `shared_ptr`;
///  * readers holding a snapshot observe a frozen, consistent view no
///    matter how many updates land concurrently — update-while-serve
///    is safe by construction.

namespace spa::sum {

/// \brief An immutable, cheaply shareable view of every SUM.
///
/// Obtained from `SumService::snapshot()`; hold the `SumSnapshotPtr`
/// for as long as the view must stay stable (typically one request).
class SumSnapshot {
 public:
  /// Global version at publish time (0 = empty initial snapshot).
  uint64_t version() const { return version_; }

  /// Version of the publish that last touched `user` (0 when the user
  /// has no model in this snapshot).
  uint64_t UserVersion(UserId user) const;

  /// The user's model; NotFound when absent.
  spa::Result<const SmartUserModel*> Get(UserId user) const;

  /// The user's model, or nullptr when absent. Alloc-free — the serve
  /// admission path probes every request's user here, and model-less
  /// (cold) users are the common case, so this must not pay `Get`'s
  /// formatted NotFound status.
  const SmartUserModel* GetOrNull(UserId user) const;

  bool Contains(UserId user) const;
  size_t size() const { return order_->size(); }

  /// Users in creation order.
  const std::vector<UserId>& users() const { return *order_; }

  void ForEach(
      const std::function<void(const SmartUserModel&)>& fn) const;

  const AttributeCatalog& catalog() const { return *catalog_; }

  /// Number of copy-on-write user shards (a power of two).
  size_t shard_count() const { return shards_.size(); }

  /// Serializes the snapshot in the SumStore CSV schema.
  std::string ToCsv() const;

 private:
  friend class SumService;

  struct Entry {
    std::shared_ptr<const SmartUserModel> model;
    uint64_t version = 0;
  };

  /// One copy-on-write sub-map. Immutable once published; a publish
  /// that touches a user clones that user's shard and shares the rest.
  struct Shard {
    std::unordered_map<UserId, Entry> models;
  };

  SumSnapshot(const AttributeCatalog* catalog, size_t shard_count);

  size_t ShardIndexOf(UserId user) const;
  const Entry* FindEntry(UserId user) const;

  const AttributeCatalog* catalog_;
  std::vector<std::shared_ptr<const Shard>> shards_;
  /// Shared across publishes; copied only when a batch creates users.
  std::shared_ptr<const std::vector<UserId>> order_;
  uint64_t version_ = 0;
  uint64_t shard_mask_ = 0;
};

/// Shared handle to a pinned snapshot.
using SumSnapshotPtr = std::shared_ptr<const SumSnapshot>;

struct SumServiceConfig {
  /// Parameters of the kReward / kPunish / kDecay ops.
  ReinforcementConfig reinforcement;
  /// Copy-on-write user shards per snapshot; rounded up to a power of
  /// two (minimum 1). More shards make single-user publishes cheaper
  /// (one shard copy of ~users/S entries) at the cost of a slightly
  /// larger per-publish fixed overhead (the shard-pointer vector).
  size_t user_shards = 32;
};

/// \brief Owner of the live SUM state behind the mutation API.
///
/// Thread-safe: any number of threads may call `snapshot()` while
/// writers `Apply` updates; writers are serialized internally.
class SumService {
 public:
  explicit SumService(const AttributeCatalog* catalog,
                      SumServiceConfig config = {});

  /// Pins the current published snapshot (one shared_ptr copy).
  SumSnapshotPtr snapshot() const;

  /// Global monotonic version (bumped once per publish). Reads an
  /// atomic counter maintained alongside the head — no snapshot pin.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  /// Per-user version (0 = user absent).
  uint64_t UserVersion(UserId user) const {
    return snapshot()->UserVersion(user);
  }
  /// User count of the published snapshot (atomic; no snapshot pin).
  size_t size() const { return size_.load(std::memory_order_acquire); }
  const AttributeCatalog& catalog() const { return *catalog_; }

  /// Applies one update atomically and publishes a new snapshot.
  /// Creates the user's model when absent (even with no ops). Errors:
  /// InvalidArgument (op references an attribute outside the catalog);
  /// on error nothing is published.
  spa::Status Apply(const SumUpdate& update);

  /// Applies a batch atomically under a single version bump (one
  /// publish; clones only the touched shards — the cheap path for bulk
  /// maintenance). All-or-nothing: any invalid update rejects the
  /// whole batch. `published_version` (optional) receives the version
  /// this call published — read it from here, not from `version()`
  /// afterwards: with concurrent writers another publish may land in
  /// between, and callers that pin versions (the streaming writer
  /// lane) need the version of *their* publish. An empty batch
  /// publishes nothing and reports the current head version.
  spa::Status ApplyAll(const std::vector<SumUpdate>& updates,
                       uint64_t* published_version = nullptr);

  /// One decay round over every user's attributes of `kind` (periodic
  /// forgetting), as a single batched publish.
  spa::Status DecayAll(AttributeKind kind);

  /// Replaces the whole state from a deserialized store (one publish;
  /// every user stamped with the new version).
  void Reset(const SumStore& store);

  /// Serializes the current snapshot as CSV (SumStore schema).
  std::string ToCsv() const { return snapshot()->ToCsv(); }

  const ReinforcementUpdater& reinforcement() const { return updater_; }

 private:
  spa::Status Validate(const SumUpdate& update) const;
  void Publish(std::shared_ptr<SumSnapshot> next);

  const AttributeCatalog* catalog_;
  ReinforcementUpdater updater_;
  size_t shard_count_;

  /// Serializes writers (Apply/ApplyAll/Reset).
  std::mutex write_mutex_;
  /// Lock-free head: pinning a snapshot is one atomic shared_ptr load.
  std::atomic<SumSnapshotPtr> head_;
  /// Mirrors of the head's version/size so hot-path reads (cache keys,
  /// router pins, empty-batch ApplyAll) skip the snapshot pin.
  std::atomic<uint64_t> version_{0};
  std::atomic<size_t> size_{0};
};

}  // namespace spa::sum

#endif  // SPA_SUM_SUM_SERVICE_H_
