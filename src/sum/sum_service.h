#ifndef SPA_SUM_SUM_SERVICE_H_
#define SPA_SUM_SUM_SERVICE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sum/reward_punish.h"
#include "sum/sum_store.h"
#include "sum/sum_update.h"
#include "sum/user_model.h"

/// \file
/// Versioned emotional-context service: the read/write split over the
/// Smart User Models. The paper's SUM is a *living* profile — the
/// Attributes Manager keeps re-weighting sensibilities while the
/// serving engine reads them — so the store can no longer be a bare
/// mutable map shared by raw pointer. `SumService` owns the state
/// behind a mutation API (`Apply` / `ApplyAll`, taking `SumUpdate`s)
/// and publishes immutable `SumSnapshot` handles that readers pin for
/// the duration of a request:
///
///  * every publish bumps a global monotonic version and stamps each
///    touched user with it (per-user versions), which is the
///    invalidation signal the engine's response cache keys on;
///  * snapshots are copy-on-write per user model: a publish clones
///    only the touched users' models and shares the rest, so pinning
///    is one shared_ptr copy and updates are cheap;
///  * readers holding a snapshot observe a frozen, consistent view no
///    matter how many updates land concurrently — update-while-serve
///    is safe by construction.

namespace spa::sum {

/// \brief An immutable, cheaply shareable view of every SUM.
///
/// Obtained from `SumService::snapshot()`; hold the `SumSnapshotPtr`
/// for as long as the view must stay stable (typically one request).
class SumSnapshot {
 public:
  /// Global version at publish time (0 = empty initial snapshot).
  uint64_t version() const { return version_; }

  /// Version of the publish that last touched `user` (0 when the user
  /// has no model in this snapshot).
  uint64_t UserVersion(UserId user) const;

  /// The user's model; NotFound when absent.
  spa::Result<const SmartUserModel*> Get(UserId user) const;

  bool Contains(UserId user) const;
  size_t size() const { return order_.size(); }

  /// Users in creation order.
  const std::vector<UserId>& users() const { return order_; }

  void ForEach(
      const std::function<void(const SmartUserModel&)>& fn) const;

  const AttributeCatalog& catalog() const { return *catalog_; }

  /// Serializes the snapshot in the SumStore CSV schema.
  std::string ToCsv() const;

 private:
  friend class SumService;

  struct Entry {
    std::shared_ptr<const SmartUserModel> model;
    uint64_t version = 0;
  };

  explicit SumSnapshot(const AttributeCatalog* catalog);

  const AttributeCatalog* catalog_;
  std::unordered_map<UserId, Entry> models_;
  std::vector<UserId> order_;
  uint64_t version_ = 0;
};

/// Shared handle to a pinned snapshot.
using SumSnapshotPtr = std::shared_ptr<const SumSnapshot>;

struct SumServiceConfig {
  /// Parameters of the kReward / kPunish / kDecay ops.
  ReinforcementConfig reinforcement;
};

/// \brief Owner of the live SUM state behind the mutation API.
///
/// Thread-safe: any number of threads may call `snapshot()` while
/// writers `Apply` updates; writers are serialized internally.
class SumService {
 public:
  explicit SumService(const AttributeCatalog* catalog,
                      SumServiceConfig config = {});

  /// Pins the current published snapshot (one shared_ptr copy).
  SumSnapshotPtr snapshot() const;

  /// Global monotonic version (bumped once per publish).
  uint64_t version() const { return snapshot()->version(); }
  /// Per-user version (0 = user absent).
  uint64_t UserVersion(UserId user) const {
    return snapshot()->UserVersion(user);
  }
  size_t size() const { return snapshot()->size(); }
  const AttributeCatalog& catalog() const { return *catalog_; }

  /// Applies one update atomically and publishes a new snapshot.
  /// Creates the user's model when absent (even with no ops). Errors:
  /// InvalidArgument (op references an attribute outside the catalog);
  /// on error nothing is published.
  spa::Status Apply(const SumUpdate& update);

  /// Applies a batch atomically under a single version bump (one
  /// publish, one map copy — the cheap path for bulk maintenance).
  /// All-or-nothing: any invalid update rejects the whole batch.
  /// `published_version` (optional) receives the version this call
  /// published — read it from here, not from `version()` afterwards:
  /// with concurrent writers another publish may land in between, and
  /// callers that pin versions (the streaming writer lane) need the
  /// version of *their* publish. An empty batch publishes nothing and
  /// reports the current head version.
  spa::Status ApplyAll(const std::vector<SumUpdate>& updates,
                       uint64_t* published_version = nullptr);

  /// One decay round over every user's attributes of `kind` (periodic
  /// forgetting), as a single batched publish.
  spa::Status DecayAll(AttributeKind kind);

  /// Replaces the whole state from a deserialized store (one publish;
  /// every user stamped with the new version).
  void Reset(const SumStore& store);

  /// Serializes the current snapshot as CSV (SumStore schema).
  std::string ToCsv() const { return snapshot()->ToCsv(); }

  const ReinforcementUpdater& reinforcement() const { return updater_; }

 private:
  spa::Status Validate(const SumUpdate& update) const;
  void Publish(std::shared_ptr<SumSnapshot> next);

  const AttributeCatalog* catalog_;
  ReinforcementUpdater updater_;

  /// Serializes writers (Apply/ApplyAll/Reset).
  std::mutex write_mutex_;
  /// Guards the head pointer only; held for a shared_ptr copy.
  mutable std::mutex head_mutex_;
  SumSnapshotPtr head_;
};

}  // namespace spa::sum

#endif  // SPA_SUM_SUM_SERVICE_H_
