#ifndef SPA_SUM_REWARD_PUNISH_H_
#define SPA_SUM_REWARD_PUNISH_H_

#include "sum/user_model.h"

/// \file
/// The Update stage of the SUM lifecycle (§3 stage 3): "keeps the SUM
/// informed of user changes according to recent interactions based on
/// reward and punish mechanisms". Multiplicative updates keep every
/// sensibility inside [0,1] by construction.

namespace spa::sum {

struct ReinforcementConfig {
  /// Step size of a unit-magnitude reward/punishment.
  double learning_rate = 0.15;
  /// Per-round multiplicative decay toward 0 (forgetting).
  double decay_rate = 0.01;
  /// Sensibility floor applied after punish/decay (attributes never
  /// become unrecoverable).
  double floor = 0.0;
};

/// \brief Applies reward/punish reinforcement to SUM sensibilities.
class ReinforcementUpdater {
 public:
  explicit ReinforcementUpdater(ReinforcementConfig config = {});

  /// w += lr * magnitude * (1 - w); also accrues evidence.
  void Reward(SmartUserModel* model, AttributeId id,
              double magnitude = 1.0) const;

  /// w -= lr * magnitude * w; also accrues evidence.
  void Punish(SmartUserModel* model, AttributeId id,
              double magnitude = 1.0) const;

  /// Applies one decay round to every attribute of the given kind.
  void Decay(SmartUserModel* model, AttributeKind kind) const;

  const ReinforcementConfig& config() const { return config_; }

 private:
  ReinforcementConfig config_;
};

}  // namespace spa::sum

#endif  // SPA_SUM_REWARD_PUNISH_H_
