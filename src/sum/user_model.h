#ifndef SPA_SUM_USER_MODEL_H_
#define SPA_SUM_USER_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "lifelog/features.h"
#include "ml/sparse.h"
#include "sum/catalog.h"

/// \file
/// The Smart User Model (SUM): per-user attribute values plus learned
/// *sensibility* weights. The Attributes Manager Agent "automatically
/// detects the level of sensibility of each user for each of his/her
/// dominant attributes by automatically assigning weights (relevancies)"
/// (§4); dominant attributes above a threshold drive both the
/// recommender's activation/inhibition stage and the Messaging Agent.

namespace spa::sum {

/// A (attribute, sensibility) pair returned by dominance queries.
struct DominantAttribute {
  AttributeId id = -1;
  double sensibility = 0.0;
};

/// \brief One user's model over a shared catalog.
class SmartUserModel {
 public:
  SmartUserModel(UserId user, const AttributeCatalog* catalog);

  UserId user() const { return user_; }
  const AttributeCatalog& catalog() const { return *catalog_; }

  /// Current value of an attribute, in [0,1].
  double value(AttributeId id) const;
  /// Sets a value (clamped to [0,1]).
  void set_value(AttributeId id, double v);

  /// Sensibility (relevance weight) of an attribute, in [0,1].
  double sensibility(AttributeId id) const;
  void set_sensibility(AttributeId id, double w);

  /// Number of reinforcement events observed for an attribute.
  double evidence(AttributeId id) const;
  void add_evidence(AttributeId id, double amount);

  /// Dominant attributes of a kind: sensibility >= threshold, sorted by
  /// sensibility descending (ties by id), truncated to max_count.
  std::vector<DominantAttribute> Dominant(AttributeKind kind,
                                          double threshold,
                                          size_t max_count = SIZE_MAX) const;

  /// The ten emotional sensibilities in EmotionalAttribute order.
  std::vector<double> EmotionalSensibilities() const;

  /// Contributes SUM features into a shared feature space:
  /// `sum.value.<name>` for every non-default attribute value and
  /// `sum.sens.<name>` for every non-zero emotional sensibility.
  /// Feature names must have been registered with RegisterFeatures.
  ml::SparseVector Features(const lifelog::FeatureSpace& space,
                            bool include_emotional) const;

  /// Registers this catalog's feature names in the space (idempotent).
  static void RegisterFeatures(const AttributeCatalog& catalog,
                               lifelog::FeatureSpace* space);

 private:
  UserId user_;
  const AttributeCatalog* catalog_;
  std::vector<double> values_;
  std::vector<double> sensibility_;
  std::vector<double> evidence_;
};

}  // namespace spa::sum

#endif  // SPA_SUM_USER_MODEL_H_
