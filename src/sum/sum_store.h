#ifndef SPA_SUM_SUM_STORE_H_
#define SPA_SUM_SUM_STORE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sum/user_model.h"

/// \file
/// Collection of Smart User Models, keyed by user. The store owns the
/// models; the shared catalog is borrowed and must outlive the store.

namespace spa::sum {

/// \brief Owning map of SUMs.
class SumStore {
 public:
  explicit SumStore(const AttributeCatalog* catalog);

  /// Existing model or a freshly initialized one.
  SmartUserModel* GetOrCreate(UserId user);

  /// Existing model; NotFound otherwise.
  spa::Result<const SmartUserModel*> Get(UserId user) const;
  spa::Result<SmartUserModel*> GetMutable(UserId user);

  size_t size() const { return models_.size(); }

  /// Users in creation order.
  const std::vector<UserId>& users() const { return order_; }

  void ForEach(
      const std::function<void(const SmartUserModel&)>& fn) const;

  const AttributeCatalog& catalog() const { return *catalog_; }

  /// Serializes every model as CSV: one row per (user, attribute) with
  /// a non-default value, sensibility or evidence.
  std::string ToCsv() const;

  /// Restores a store from ToCsv() output. Attribute names must exist
  /// in `catalog` (rows naming unknown attributes fail the load).
  static spa::Result<SumStore> FromCsv(const std::string& text,
                                       const AttributeCatalog* catalog);

 private:
  const AttributeCatalog* catalog_;
  std::unordered_map<UserId, SmartUserModel> models_;
  std::vector<UserId> order_;
};

}  // namespace spa::sum

#endif  // SPA_SUM_SUM_STORE_H_
