#ifndef SPA_SUM_SUM_STORE_H_
#define SPA_SUM_SUM_STORE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sum/user_model.h"

/// \file
/// Collection of Smart User Models, keyed by user. The store owns the
/// models; the shared catalog is borrowed and must outlive the store.
///
/// NOTE: the store is the *serialization and bootstrap* container of
/// the SUM layer. Live state that is concurrently read and written
/// belongs in `sum::SumService` (sum/sum_service.h), which owns a
/// store-shaped state behind a versioned mutation API; never share a
/// mutable `SumStore*` across module boundaries.

namespace spa {
class CsvWriter;
}

namespace spa::sum {

/// \brief Owning map of SUMs.
class SumStore {
 public:
  explicit SumStore(const AttributeCatalog* catalog);

  /// Existing model or a freshly initialized one.
  SmartUserModel* GetOrCreate(UserId user);

  /// Existing model; NotFound otherwise.
  spa::Result<const SmartUserModel*> Get(UserId user) const;
  spa::Result<SmartUserModel*> GetMutable(UserId user);

  size_t size() const { return models_.size(); }

  /// Users in creation order.
  const std::vector<UserId>& users() const { return order_; }

  void ForEach(
      const std::function<void(const SmartUserModel&)>& fn) const;

  const AttributeCatalog& catalog() const { return *catalog_; }

  /// Serializes every model as CSV: one row per (user, attribute) with
  /// a non-default value, sensibility or evidence, serialized at full
  /// double precision. A model with only default state emits a single
  /// presence row (empty attribute field) so the user survives the
  /// round trip.
  std::string ToCsv() const;

  /// Restores a store from ToCsv() output. Attribute names must exist
  /// in `catalog` (rows naming unknown attributes fail the load with
  /// the offending row and name in the error); an empty attribute
  /// field is a presence row that only creates the user. A header-only
  /// document restores an empty store.
  static spa::Result<SumStore> FromCsv(const std::string& text,
                                       const AttributeCatalog* catalog);

 private:
  const AttributeCatalog* catalog_;
  std::unordered_map<UserId, SmartUserModel> models_;
  std::vector<UserId> order_;
};

namespace internal {

/// Writes the shared SUM CSV header row.
void WriteSumCsvHeader(spa::CsvWriter* writer);

/// Writes one model's rows in the shared SUM CSV schema (used by both
/// SumStore::ToCsv and SumSnapshot::ToCsv).
void WriteModelCsvRows(const AttributeCatalog& catalog,
                       const SmartUserModel& model,
                       spa::CsvWriter* writer);

}  // namespace internal

}  // namespace spa::sum

#endif  // SPA_SUM_SUM_STORE_H_
