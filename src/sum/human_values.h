#ifndef SPA_SUM_HUMAN_VALUES_H_
#define SPA_SUM_HUMAN_VALUES_H_

#include <array>
#include <string_view>

#include "sum/user_model.h"

/// \file
/// The Human Values Scale of SPA's Intelligent User Interface (§4
/// component 5, following Guzmán et al. 2005): an individualized
/// Schwartz-style value scale derived from the user's dominant
/// attributes, plus the *coherence function* between a user's actions
/// and his/her implicit and explicit preferences.

namespace spa::sum {

/// The ten Schwartz basic human values.
enum class HumanValue : uint8_t {
  kPower = 0,
  kAchievement,
  kHedonism,
  kStimulation,
  kSelfDirection,
  kUniversalism,
  kBenevolence,
  kTradition,
  kConformity,
  kSecurity,
};

inline constexpr size_t kNumHumanValues = 10;

std::string_view HumanValueName(HumanValue v);

/// \brief Individualized value scale: one score in [0,1] per value.
struct HumanValuesScale {
  std::array<double, kNumHumanValues> scores{};

  /// The highest-scoring value.
  HumanValue Dominant() const;
};

/// Derives the scale from a SUM's subjective and emotional
/// sensibilities through a fixed attribute-to-value mapping.
HumanValuesScale ComputeHumanValues(const SmartUserModel& model);

/// Coherence between stated preferences (subjective attribute values)
/// and observed behaviour (sensibility weights learned from actions):
/// cosine similarity over the subjective attributes, in [0,1]
/// (0.5 = orthogonal, 1 = perfectly aligned).
double CoherenceFunction(const SmartUserModel& model);

}  // namespace spa::sum

#endif  // SPA_SUM_HUMAN_VALUES_H_
