#ifndef SPA_SUM_ATTRIBUTE_H_
#define SPA_SUM_ATTRIBUTE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "eit/emotion.h"

/// \file
/// Attribute definitions for Smart User Models. The business case models
/// each user with 75 "objective, subjective and emotional attributes"
/// (§5.1); every attribute value and sensibility weight is normalized to
/// [0, 1].

namespace spa::sum {

using AttributeId = int32_t;
using UserId = int64_t;

/// The three attribute families of the SUM.
enum class AttributeKind : uint8_t {
  kObjective = 0,   ///< socio-demographic facts
  kSubjective = 1,  ///< stated/inferred preferences and tastes
  kEmotional = 2,   ///< the ten valenced emotional attributes
};

std::string_view AttributeKindName(AttributeKind kind);

/// \brief Static definition of one attribute.
struct AttributeDef {
  AttributeId id = -1;
  std::string name;
  AttributeKind kind = AttributeKind::kObjective;
  /// Valence; meaningful only for emotional attributes.
  eit::Valence valence = eit::Valence::kPositive;
  /// The underlying emotional attribute for kEmotional defs.
  eit::EmotionalAttribute emotion = eit::EmotionalAttribute::kEnthusiastic;
  /// Default value a fresh SUM starts from.
  double default_value = 0.0;
};

}  // namespace spa::sum

#endif  // SPA_SUM_ATTRIBUTE_H_
