#include "sum/reward_punish.h"

#include <algorithm>

#include "common/check.h"

namespace spa::sum {

ReinforcementUpdater::ReinforcementUpdater(ReinforcementConfig config)
    : config_(config) {
  SPA_CHECK(config_.learning_rate > 0.0 && config_.learning_rate <= 1.0);
  SPA_CHECK(config_.decay_rate >= 0.0 && config_.decay_rate < 1.0);
  SPA_CHECK(config_.floor >= 0.0 && config_.floor < 1.0);
}

void ReinforcementUpdater::Reward(SmartUserModel* model, AttributeId id,
                                  double magnitude) const {
  SPA_DCHECK(magnitude >= 0.0);
  const double w = model->sensibility(id);
  const double step =
      std::min(1.0, config_.learning_rate * magnitude);
  model->set_sensibility(id, w + step * (1.0 - w));
  model->add_evidence(id, magnitude);
}

void ReinforcementUpdater::Punish(SmartUserModel* model, AttributeId id,
                                  double magnitude) const {
  SPA_DCHECK(magnitude >= 0.0);
  const double w = model->sensibility(id);
  const double step =
      std::min(1.0, config_.learning_rate * magnitude);
  model->set_sensibility(id, std::max(config_.floor, w - step * w));
  model->add_evidence(id, magnitude);
}

void ReinforcementUpdater::Decay(SmartUserModel* model,
                                 AttributeKind kind) const {
  for (AttributeId id : model->catalog().ids_of(kind)) {
    const double w = model->sensibility(id);
    if (w > config_.floor) {
      model->set_sensibility(
          id, std::max(config_.floor, w * (1.0 - config_.decay_rate)));
    }
  }
}

}  // namespace spa::sum
