#include "sum/user_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace spa::sum {

SmartUserModel::SmartUserModel(UserId user,
                               const AttributeCatalog* catalog)
    : user_(user), catalog_(catalog) {
  SPA_CHECK(catalog != nullptr);
  values_.resize(catalog->size());
  sensibility_.assign(catalog->size(), 0.0);
  evidence_.assign(catalog->size(), 0.0);
  for (size_t i = 0; i < catalog->size(); ++i) {
    values_[i] = catalog->defs()[i].default_value;
  }
}

double SmartUserModel::value(AttributeId id) const {
  SPA_DCHECK(id >= 0 && static_cast<size_t>(id) < values_.size());
  return values_[static_cast<size_t>(id)];
}

void SmartUserModel::set_value(AttributeId id, double v) {
  SPA_DCHECK(id >= 0 && static_cast<size_t>(id) < values_.size());
  values_[static_cast<size_t>(id)] = std::clamp(v, 0.0, 1.0);
}

double SmartUserModel::sensibility(AttributeId id) const {
  SPA_DCHECK(id >= 0 && static_cast<size_t>(id) < sensibility_.size());
  return sensibility_[static_cast<size_t>(id)];
}

void SmartUserModel::set_sensibility(AttributeId id, double w) {
  SPA_DCHECK(id >= 0 && static_cast<size_t>(id) < sensibility_.size());
  sensibility_[static_cast<size_t>(id)] = std::clamp(w, 0.0, 1.0);
}

double SmartUserModel::evidence(AttributeId id) const {
  SPA_DCHECK(id >= 0 && static_cast<size_t>(id) < evidence_.size());
  return evidence_[static_cast<size_t>(id)];
}

void SmartUserModel::add_evidence(AttributeId id, double amount) {
  SPA_DCHECK(id >= 0 && static_cast<size_t>(id) < evidence_.size());
  evidence_[static_cast<size_t>(id)] += amount;
}

std::vector<DominantAttribute> SmartUserModel::Dominant(
    AttributeKind kind, double threshold, size_t max_count) const {
  std::vector<DominantAttribute> out;
  for (AttributeId id : catalog_->ids_of(kind)) {
    const double w = sensibility_[static_cast<size_t>(id)];
    if (w >= threshold) out.push_back({id, w});
  }
  std::sort(out.begin(), out.end(),
            [](const DominantAttribute& a, const DominantAttribute& b) {
              if (a.sensibility != b.sensibility) {
                return a.sensibility > b.sensibility;
              }
              return a.id < b.id;
            });
  if (out.size() > max_count) out.resize(max_count);
  return out;
}

std::vector<double> SmartUserModel::EmotionalSensibilities() const {
  std::vector<double> out;
  out.reserve(eit::kNumEmotionalAttributes);
  for (eit::EmotionalAttribute emotion : eit::AllEmotionalAttributes()) {
    out.push_back(sensibility(catalog_->EmotionalId(emotion)));
  }
  return out;
}

void SmartUserModel::RegisterFeatures(const AttributeCatalog& catalog,
                                      lifelog::FeatureSpace* space) {
  for (const AttributeDef& def : catalog.defs()) {
    space->Intern(spa::StrFormat("sum.value.%s", def.name.c_str()));
    if (def.kind == AttributeKind::kEmotional) {
      space->Intern(spa::StrFormat("sum.sens.%s", def.name.c_str()));
    }
  }
}

ml::SparseVector SmartUserModel::Features(
    const lifelog::FeatureSpace& space, bool include_emotional) const {
  std::vector<ml::SparseEntry> entries;
  for (const AttributeDef& def : catalog_->defs()) {
    const bool emotional = def.kind == AttributeKind::kEmotional;
    if (emotional && !include_emotional) continue;
    const double v = values_[static_cast<size_t>(def.id)];
    if (v != 0.0) {
      const auto idx = space.IndexOf(
          spa::StrFormat("sum.value.%s", def.name.c_str()));
      SPA_CHECK(idx.ok());
      entries.push_back({idx.value(), v});
    }
    if (emotional) {
      const double w = sensibility_[static_cast<size_t>(def.id)];
      if (w != 0.0) {
        const auto idx = space.IndexOf(
            spa::StrFormat("sum.sens.%s", def.name.c_str()));
        SPA_CHECK(idx.ok());
        entries.push_back({idx.value(), w});
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const ml::SparseEntry& a, const ml::SparseEntry& b) {
              return a.index < b.index;
            });
  return ml::SparseVector(entries);
}

}  // namespace spa::sum
