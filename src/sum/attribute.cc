#include "sum/attribute.h"

namespace spa::sum {

std::string_view AttributeKindName(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kObjective:
      return "objective";
    case AttributeKind::kSubjective:
      return "subjective";
    case AttributeKind::kEmotional:
      return "emotional";
  }
  return "unknown";
}

}  // namespace spa::sum
