#ifndef SPA_SUM_SUM_UPDATE_H_
#define SPA_SUM_SUM_UPDATE_H_

#include <vector>

#include "sum/user_model.h"

/// \file
/// The write half of the versioned SUM API: a `SumUpdate` is an
/// inspectable description of one user's model mutation — a batch of
/// primitive ops (set value/sensibility, add evidence, reward/punish
/// reinforcement, decay) that `SumService::Apply` executes atomically
/// against the current state and publishes as a new snapshot version.
/// Writers never touch a `SmartUserModel*` directly; they describe the
/// change and hand it to the service.

namespace spa::sum {

/// \brief One primitive mutation of a user's model.
struct SumOp {
  enum class Kind : uint8_t {
    kSetValue = 0,        ///< value <- amount (clamped to [0,1])
    kSetSensibility,      ///< sensibility <- amount (clamped to [0,1])
    kAddEvidence,         ///< evidence += amount
    kReward,              ///< reinforcement reward, magnitude = amount
    kPunish,              ///< reinforcement punish, magnitude = amount
    kValueFromSensibility,///< value <- current sensibility
    kDecay,               ///< one decay round over `decay_kind`
  };
  Kind kind = Kind::kSetValue;
  /// Target attribute (ignored by kDecay).
  AttributeId attribute = -1;
  /// Value or reinforcement magnitude (ignored by
  /// kValueFromSensibility and kDecay).
  double amount = 0.0;
  /// Attribute kind decayed by kDecay.
  AttributeKind decay_kind = AttributeKind::kEmotional;
};

/// \brief A batch of ops against one user's model.
///
/// Applying an update with no ops still creates the user's model when
/// absent ("touch") and bumps the user's version — the service-level
/// equivalent of the old `SumStore::GetOrCreate`.
class SumUpdate {
 public:
  SumUpdate() = default;
  explicit SumUpdate(UserId user) : user_(user) {}

  UserId user() const { return user_; }
  const std::vector<SumOp>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  // ---- chainable builders -----------------------------------------------
  SumUpdate& SetValue(AttributeId attribute, double value);
  SumUpdate& SetSensibility(AttributeId attribute, double sensibility);
  SumUpdate& AddEvidence(AttributeId attribute, double amount);
  /// Reinforcement reward (w += lr * magnitude * (1 - w)).
  SumUpdate& Reward(AttributeId attribute, double magnitude = 1.0);
  /// Reinforcement punish (w -= lr * magnitude * w).
  SumUpdate& Punish(AttributeId attribute, double magnitude = 1.0);
  /// value <- sensibility at apply time (activation tracking).
  SumUpdate& ValueFromSensibility(AttributeId attribute);
  /// One decay round over every attribute of `kind`.
  SumUpdate& Decay(AttributeKind kind);

  /// Captures every non-default (value, sensibility, evidence) of a
  /// scratch model as explicit ops — the bridge from initialisation
  /// code that assembles a model locally (e.g. population bootstrap)
  /// to the service's mutation API.
  static SumUpdate FromModel(const SmartUserModel& model);

 private:
  UserId user_ = 0;
  std::vector<SumOp> ops_;
};

}  // namespace spa::sum

#endif  // SPA_SUM_SUM_UPDATE_H_
