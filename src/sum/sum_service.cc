#include "sum/sum_service.h"

#include <bit>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/string_util.h"

namespace spa::sum {

// ---- SumSnapshot -----------------------------------------------------------

SumSnapshot::SumSnapshot(const AttributeCatalog* catalog,
                         size_t shard_count)
    : catalog_(catalog),
      order_(std::make_shared<const std::vector<UserId>>()) {
  SPA_CHECK(catalog != nullptr);
  SPA_CHECK(shard_count > 0 && std::has_single_bit(shard_count));
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_shared<const Shard>());
  }
  shard_mask_ = shard_count - 1;
}

size_t SumSnapshot::ShardIndexOf(UserId user) const {
  return static_cast<size_t>(
      SplitMix64(static_cast<uint64_t>(user)) & shard_mask_);
}

const SumSnapshot::Entry* SumSnapshot::FindEntry(UserId user) const {
  const auto& models = shards_[ShardIndexOf(user)]->models;
  const auto it = models.find(user);
  return it == models.end() ? nullptr : &it->second;
}

uint64_t SumSnapshot::UserVersion(UserId user) const {
  const Entry* entry = FindEntry(user);
  return entry == nullptr ? 0 : entry->version;
}

spa::Result<const SmartUserModel*> SumSnapshot::Get(UserId user) const {
  const Entry* entry = FindEntry(user);
  if (entry == nullptr) {
    return spa::Status::NotFound(
        spa::StrFormat("no SUM for user %lld",
                       static_cast<long long>(user)));
  }
  return entry->model.get();
}

const SmartUserModel* SumSnapshot::GetOrNull(UserId user) const {
  const Entry* entry = FindEntry(user);
  return entry == nullptr ? nullptr : entry->model.get();
}

bool SumSnapshot::Contains(UserId user) const {
  return FindEntry(user) != nullptr;
}

void SumSnapshot::ForEach(
    const std::function<void(const SmartUserModel&)>& fn) const {
  for (UserId user : *order_) {
    const Entry* entry = FindEntry(user);
    SPA_CHECK(entry != nullptr);
    fn(*entry->model);
  }
}

std::string SumSnapshot::ToCsv() const {
  std::ostringstream out;
  spa::CsvWriter writer(&out);
  internal::WriteSumCsvHeader(&writer);
  ForEach([&](const SmartUserModel& model) {
    internal::WriteModelCsvRows(*catalog_, model, &writer);
  });
  return out.str();
}

// ---- SumService ------------------------------------------------------------

namespace {

size_t ResolveShardCount(size_t requested) {
  return std::bit_ceil(requested == 0 ? size_t{1} : requested);
}

}  // namespace

SumService::SumService(const AttributeCatalog* catalog,
                       SumServiceConfig config)
    : catalog_(catalog),
      updater_(config.reinforcement),
      shard_count_(ResolveShardCount(config.user_shards)) {
  SPA_CHECK(catalog != nullptr);
  head_.store(SumSnapshotPtr(new SumSnapshot(catalog, shard_count_)),
              std::memory_order_release);
}

SumSnapshotPtr SumService::snapshot() const {
  return head_.load(std::memory_order_acquire);
}

void SumService::Publish(std::shared_ptr<SumSnapshot> next) {
  const uint64_t version = next->version_;
  const size_t size = next->size();
  head_.store(std::move(next), std::memory_order_release);
  // Mirrors are updated after the head so a reader that observes the
  // new counters can also pin the new snapshot. Writers serialize
  // under write_mutex_, so both stay monotonic.
  version_.store(version, std::memory_order_release);
  size_.store(size, std::memory_order_release);
}

spa::Status SumService::Validate(const SumUpdate& update) const {
  for (const SumOp& op : update.ops()) {
    if (op.kind == SumOp::Kind::kDecay) continue;
    if (op.attribute < 0 ||
        static_cast<size_t>(op.attribute) >= catalog_->size()) {
      return spa::Status::InvalidArgument(spa::StrFormat(
          "update for user %lld references attribute %d outside the "
          "catalog (%zu attributes)",
          static_cast<long long>(update.user()), op.attribute,
          catalog_->size()));
    }
  }
  return spa::Status::OK();
}

namespace {

void ApplyOps(const ReinforcementUpdater& updater, const SumUpdate& update,
              SmartUserModel* model) {
  for (const SumOp& op : update.ops()) {
    switch (op.kind) {
      case SumOp::Kind::kSetValue:
        model->set_value(op.attribute, op.amount);
        break;
      case SumOp::Kind::kSetSensibility:
        model->set_sensibility(op.attribute, op.amount);
        break;
      case SumOp::Kind::kAddEvidence:
        model->add_evidence(op.attribute, op.amount);
        break;
      case SumOp::Kind::kReward:
        updater.Reward(model, op.attribute, op.amount);
        break;
      case SumOp::Kind::kPunish:
        updater.Punish(model, op.attribute, op.amount);
        break;
      case SumOp::Kind::kValueFromSensibility:
        model->set_value(op.attribute, model->sensibility(op.attribute));
        break;
      case SumOp::Kind::kDecay:
        updater.Decay(model, op.decay_kind);
        break;
    }
  }
}

}  // namespace

spa::Status SumService::Apply(const SumUpdate& update) {
  return ApplyAll({update});
}

spa::Status SumService::ApplyAll(const std::vector<SumUpdate>& updates,
                                 uint64_t* published_version) {
  if (updates.empty()) {
    if (published_version != nullptr) *published_version = version();
    return spa::Status::OK();
  }
  for (const SumUpdate& update : updates) {
    SPA_RETURN_IF_ERROR(Validate(update));
  }

  std::lock_guard<std::mutex> writer(write_mutex_);
  // Copy-on-write publish at shard granularity: the new snapshot
  // shares every shard pointer (and the creation-order vector) with
  // the head; only shards the batch touches are cloned below, and only
  // touched users' models inside them.
  auto next = std::shared_ptr<SumSnapshot>(new SumSnapshot(*snapshot()));
  const uint64_t version = next->version_ + 1;

  // Mutable clones of the shards this batch touches, made at most once
  // per shard per publish.
  std::vector<std::shared_ptr<SumSnapshot::Shard>> cloned(
      next->shards_.size());
  const auto mutable_shard = [&](size_t index) -> SumSnapshot::Shard* {
    auto& slot = cloned[index];
    if (slot == nullptr) {
      slot = std::make_shared<SumSnapshot::Shard>(*next->shards_[index]);
      next->shards_[index] = slot;
    }
    return slot.get();
  };
  // Creation order is cloned lazily: a batch that only touches
  // existing users shares the previous snapshot's vector.
  std::shared_ptr<std::vector<UserId>> new_order;

  std::unordered_map<UserId, std::shared_ptr<SmartUserModel>> touched;
  for (const SumUpdate& update : updates) {
    auto& clone = touched[update.user()];
    if (clone == nullptr) {
      const SumSnapshot::Entry* entry = next->FindEntry(update.user());
      if (entry != nullptr) {
        clone = std::make_shared<SmartUserModel>(*entry->model);
      } else {
        clone = std::make_shared<SmartUserModel>(update.user(), catalog_);
        if (new_order == nullptr) {
          new_order =
              std::make_shared<std::vector<UserId>>(*next->order_);
        }
        new_order->push_back(update.user());
      }
    }
    ApplyOps(updater_, update, clone.get());
  }
  for (auto& [user, clone] : touched) {
    mutable_shard(next->ShardIndexOf(user))->models[user] = {
        std::move(clone), version};
  }
  if (new_order != nullptr) next->order_ = std::move(new_order);
  next->version_ = version;
  Publish(std::move(next));
  if (published_version != nullptr) *published_version = version;
  return spa::Status::OK();
}

spa::Status SumService::DecayAll(AttributeKind kind) {
  const SumSnapshotPtr current = snapshot();
  if (current->size() == 0) return spa::Status::OK();
  std::vector<SumUpdate> updates;
  updates.reserve(current->size());
  for (UserId user : current->users()) {
    updates.push_back(SumUpdate(user).Decay(kind));
  }
  return ApplyAll(updates);
}

void SumService::Reset(const SumStore& store) {
  std::lock_guard<std::mutex> writer(write_mutex_);
  auto next = std::shared_ptr<SumSnapshot>(
      new SumSnapshot(catalog_, shard_count_));
  const uint64_t version = snapshot()->version() + 1;
  std::vector<std::shared_ptr<SumSnapshot::Shard>> fresh(shard_count_);
  auto order = std::make_shared<std::vector<UserId>>();
  store.ForEach([&](const SmartUserModel& model) {
    const size_t index = next->ShardIndexOf(model.user());
    if (fresh[index] == nullptr) {
      fresh[index] = std::make_shared<SumSnapshot::Shard>();
      next->shards_[index] = fresh[index];
    }
    fresh[index]->models[model.user()] = {
        std::make_shared<SmartUserModel>(model), version};
    order->push_back(model.user());
  });
  next->order_ = std::move(order);
  next->version_ = version;
  Publish(std::move(next));
}

}  // namespace spa::sum
