#include "sum/sum_service.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/csv.h"
#include "common/string_util.h"

namespace spa::sum {

// ---- SumSnapshot -----------------------------------------------------------

SumSnapshot::SumSnapshot(const AttributeCatalog* catalog)
    : catalog_(catalog) {
  SPA_CHECK(catalog != nullptr);
}

uint64_t SumSnapshot::UserVersion(UserId user) const {
  const auto it = models_.find(user);
  return it == models_.end() ? 0 : it->second.version;
}

spa::Result<const SmartUserModel*> SumSnapshot::Get(UserId user) const {
  const auto it = models_.find(user);
  if (it == models_.end()) {
    return spa::Status::NotFound(
        spa::StrFormat("no SUM for user %lld",
                       static_cast<long long>(user)));
  }
  return it->second.model.get();
}

bool SumSnapshot::Contains(UserId user) const {
  return models_.contains(user);
}

void SumSnapshot::ForEach(
    const std::function<void(const SmartUserModel&)>& fn) const {
  for (UserId user : order_) {
    fn(*models_.at(user).model);
  }
}

std::string SumSnapshot::ToCsv() const {
  std::ostringstream out;
  spa::CsvWriter writer(&out);
  internal::WriteSumCsvHeader(&writer);
  ForEach([&](const SmartUserModel& model) {
    internal::WriteModelCsvRows(*catalog_, model, &writer);
  });
  return out.str();
}

// ---- SumService ------------------------------------------------------------

SumService::SumService(const AttributeCatalog* catalog,
                       SumServiceConfig config)
    : catalog_(catalog), updater_(config.reinforcement) {
  SPA_CHECK(catalog != nullptr);
  head_ = SumSnapshotPtr(new SumSnapshot(catalog));
}

SumSnapshotPtr SumService::snapshot() const {
  std::lock_guard<std::mutex> lock(head_mutex_);
  return head_;
}

void SumService::Publish(std::shared_ptr<SumSnapshot> next) {
  std::lock_guard<std::mutex> lock(head_mutex_);
  head_ = std::move(next);
}

spa::Status SumService::Validate(const SumUpdate& update) const {
  for (const SumOp& op : update.ops()) {
    if (op.kind == SumOp::Kind::kDecay) continue;
    if (op.attribute < 0 ||
        static_cast<size_t>(op.attribute) >= catalog_->size()) {
      return spa::Status::InvalidArgument(spa::StrFormat(
          "update for user %lld references attribute %d outside the "
          "catalog (%zu attributes)",
          static_cast<long long>(update.user()), op.attribute,
          catalog_->size()));
    }
  }
  return spa::Status::OK();
}

namespace {

void ApplyOps(const ReinforcementUpdater& updater, const SumUpdate& update,
              SmartUserModel* model) {
  for (const SumOp& op : update.ops()) {
    switch (op.kind) {
      case SumOp::Kind::kSetValue:
        model->set_value(op.attribute, op.amount);
        break;
      case SumOp::Kind::kSetSensibility:
        model->set_sensibility(op.attribute, op.amount);
        break;
      case SumOp::Kind::kAddEvidence:
        model->add_evidence(op.attribute, op.amount);
        break;
      case SumOp::Kind::kReward:
        updater.Reward(model, op.attribute, op.amount);
        break;
      case SumOp::Kind::kPunish:
        updater.Punish(model, op.attribute, op.amount);
        break;
      case SumOp::Kind::kValueFromSensibility:
        model->set_value(op.attribute, model->sensibility(op.attribute));
        break;
      case SumOp::Kind::kDecay:
        updater.Decay(model, op.decay_kind);
        break;
    }
  }
}

}  // namespace

spa::Status SumService::Apply(const SumUpdate& update) {
  return ApplyAll({update});
}

spa::Status SumService::ApplyAll(const std::vector<SumUpdate>& updates,
                                 uint64_t* published_version) {
  if (updates.empty()) {
    if (published_version != nullptr) *published_version = version();
    return spa::Status::OK();
  }
  for (const SumUpdate& update : updates) {
    SPA_RETURN_IF_ERROR(Validate(update));
  }

  std::lock_guard<std::mutex> writer(write_mutex_);
  // Copy-on-write publish: the map copy shares every untouched model;
  // only touched users' models are cloned below.
  auto next = std::shared_ptr<SumSnapshot>(new SumSnapshot(*snapshot()));
  const uint64_t version = next->version_ + 1;

  std::unordered_map<UserId, std::shared_ptr<SmartUserModel>> touched;
  for (const SumUpdate& update : updates) {
    auto& clone = touched[update.user()];
    if (clone == nullptr) {
      const auto it = next->models_.find(update.user());
      if (it != next->models_.end()) {
        clone = std::make_shared<SmartUserModel>(*it->second.model);
      } else {
        clone = std::make_shared<SmartUserModel>(update.user(), catalog_);
        next->order_.push_back(update.user());
      }
    }
    ApplyOps(updater_, update, clone.get());
  }
  for (auto& [user, clone] : touched) {
    next->models_[user] = {std::move(clone), version};
  }
  next->version_ = version;
  Publish(std::move(next));
  if (published_version != nullptr) *published_version = version;
  return spa::Status::OK();
}

spa::Status SumService::DecayAll(AttributeKind kind) {
  const SumSnapshotPtr current = snapshot();
  if (current->size() == 0) return spa::Status::OK();
  std::vector<SumUpdate> updates;
  updates.reserve(current->size());
  for (UserId user : current->users()) {
    updates.push_back(SumUpdate(user).Decay(kind));
  }
  return ApplyAll(updates);
}

void SumService::Reset(const SumStore& store) {
  std::lock_guard<std::mutex> writer(write_mutex_);
  auto next = std::shared_ptr<SumSnapshot>(new SumSnapshot(catalog_));
  const uint64_t version = snapshot()->version() + 1;
  store.ForEach([&](const SmartUserModel& model) {
    next->models_[model.user()] = {
        std::make_shared<SmartUserModel>(model), version};
    next->order_.push_back(model.user());
  });
  next->version_ = version;
  Publish(std::move(next));
}

}  // namespace spa::sum
