#include "sum/human_values.h"

#include <algorithm>
#include <cmath>

namespace spa::sum {

std::string_view HumanValueName(HumanValue v) {
  switch (v) {
    case HumanValue::kPower:
      return "power";
    case HumanValue::kAchievement:
      return "achievement";
    case HumanValue::kHedonism:
      return "hedonism";
    case HumanValue::kStimulation:
      return "stimulation";
    case HumanValue::kSelfDirection:
      return "self_direction";
    case HumanValue::kUniversalism:
      return "universalism";
    case HumanValue::kBenevolence:
      return "benevolence";
    case HumanValue::kTradition:
      return "tradition";
    case HumanValue::kConformity:
      return "conformity";
    case HumanValue::kSecurity:
      return "security";
  }
  return "unknown";
}

HumanValue HumanValuesScale::Dominant() const {
  const size_t best = static_cast<size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
  return static_cast<HumanValue>(best);
}

namespace {

/// Contribution of an attribute (by name) to each human value. Returns
/// weight 0 for unmapped attributes.
struct ValueMapping {
  std::string_view attribute;
  HumanValue value;
  double weight;
};

constexpr ValueMapping kMappings[] = {
    {"career_ambition", HumanValue::kAchievement, 1.0},
    {"career_ambition", HumanValue::kPower, 0.6},
    {"quality_focus", HumanValue::kAchievement, 0.4},
    {"brand_affinity", HumanValue::kPower, 0.5},
    {"learning_enjoyment", HumanValue::kHedonism, 1.0},
    {"novelty_seeking", HumanValue::kStimulation, 1.0},
    {"exploration", HumanValue::kStimulation, 0.7},
    {"risk_tolerance", HumanValue::kStimulation, 0.5},
    {"self_paced_preference", HumanValue::kSelfDirection, 1.0},
    {"theoretical_orientation", HumanValue::kSelfDirection, 0.4},
    {"topic_education", HumanValue::kUniversalism, 0.6},
    {"topic_health", HumanValue::kUniversalism, 0.5},
    {"group_learning_preference", HumanValue::kBenevolence, 0.8},
    {"social_influence", HumanValue::kBenevolence, 0.5},
    {"loyalty", HumanValue::kTradition, 1.0},
    {"patience", HumanValue::kTradition, 0.4},
    {"instructor_importance", HumanValue::kConformity, 0.7},
    {"certification_value", HumanValue::kConformity, 0.6},
    {"price_sensitivity", HumanValue::kSecurity, 0.7},
    {"practical_orientation", HumanValue::kSecurity, 0.5},
    // Emotional attributes feed the experiential values.
    {"enthusiastic", HumanValue::kStimulation, 0.6},
    {"lively", HumanValue::kHedonism, 0.5},
    {"stimulated", HumanValue::kStimulation, 0.6},
    {"hopeful", HumanValue::kAchievement, 0.4},
    {"motivated", HumanValue::kAchievement, 0.6},
    {"empathic", HumanValue::kBenevolence, 0.8},
    {"frightened", HumanValue::kSecurity, 0.6},
    {"shy", HumanValue::kConformity, 0.4},
    {"impatient", HumanValue::kPower, 0.3},
    {"apathetic", HumanValue::kTradition, 0.2},
};

}  // namespace

HumanValuesScale ComputeHumanValues(const SmartUserModel& model) {
  HumanValuesScale scale;
  std::array<double, kNumHumanValues> weight_sum{};
  const AttributeCatalog& catalog = model.catalog();
  for (const ValueMapping& m : kMappings) {
    const auto id = catalog.IdOf(std::string(m.attribute));
    if (!id.ok()) continue;
    const AttributeDef& def = catalog.def(id.value());
    // Subjective attributes contribute their value; emotional ones
    // contribute their learned sensibility.
    const double signal = def.kind == AttributeKind::kEmotional
                              ? model.sensibility(id.value())
                              : model.value(id.value());
    const size_t v = static_cast<size_t>(m.value);
    scale.scores[v] += m.weight * signal;
    weight_sum[v] += m.weight;
  }
  for (size_t v = 0; v < kNumHumanValues; ++v) {
    if (weight_sum[v] > 0.0) scale.scores[v] /= weight_sum[v];
  }
  return scale;
}

double CoherenceFunction(const SmartUserModel& model) {
  const AttributeCatalog& catalog = model.catalog();
  double dot = 0.0, norm_stated = 0.0, norm_observed = 0.0;
  for (AttributeId id : catalog.ids_of(AttributeKind::kSubjective)) {
    const double stated = model.value(id);
    const double observed = model.sensibility(id);
    dot += stated * observed;
    norm_stated += stated * stated;
    norm_observed += observed * observed;
  }
  if (norm_stated == 0.0 || norm_observed == 0.0) return 0.5;
  const double cosine =
      dot / (std::sqrt(norm_stated) * std::sqrt(norm_observed));
  // Map cosine [0,1] (all-nonnegative vectors) onto [0.5, 1]; a fully
  // orthogonal action/preference pair scores 0.5 ("unknown"), aligned
  // pairs approach 1.
  return 0.5 + 0.5 * cosine;
}

}  // namespace spa::sum
