#ifndef SPA_SUM_CATALOG_H_
#define SPA_SUM_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sum/attribute.h"

/// \file
/// The 75-attribute catalog of the emagister business case: objective
/// socio-demographics, subjective preferences/topic affinities, and the
/// ten valenced emotional attributes (§5.1).

namespace spa::sum {

/// \brief Immutable attribute registry shared by all SUMs.
class AttributeCatalog {
 public:
  /// The deployment catalog: 30 objective + 35 subjective + 10
  /// emotional = 75 attributes.
  static AttributeCatalog EmagisterDefault();

  size_t size() const { return defs_.size(); }
  const AttributeDef& def(AttributeId id) const;

  /// Lookup by name; NotFound for unknown names.
  spa::Result<AttributeId> IdOf(const std::string& name) const;

  const std::vector<AttributeId>& ids_of(AttributeKind kind) const;

  /// Attribute id of one of the ten emotional attributes.
  AttributeId EmotionalId(eit::EmotionalAttribute emotion) const;

  const std::vector<AttributeDef>& defs() const { return defs_; }

 private:
  void Add(AttributeDef def);

  std::vector<AttributeDef> defs_;
  std::unordered_map<std::string, AttributeId> by_name_;
  std::vector<AttributeId> by_kind_[3];
  std::array<AttributeId, eit::kNumEmotionalAttributes> emotional_ids_{};
};

}  // namespace spa::sum

#endif  // SPA_SUM_CATALOG_H_
