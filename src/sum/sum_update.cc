#include "sum/sum_update.h"

namespace spa::sum {

SumUpdate& SumUpdate::SetValue(AttributeId attribute, double value) {
  ops_.push_back({SumOp::Kind::kSetValue, attribute, value,
                  AttributeKind::kEmotional});
  return *this;
}

SumUpdate& SumUpdate::SetSensibility(AttributeId attribute,
                                     double sensibility) {
  ops_.push_back({SumOp::Kind::kSetSensibility, attribute, sensibility,
                  AttributeKind::kEmotional});
  return *this;
}

SumUpdate& SumUpdate::AddEvidence(AttributeId attribute, double amount) {
  ops_.push_back({SumOp::Kind::kAddEvidence, attribute, amount,
                  AttributeKind::kEmotional});
  return *this;
}

SumUpdate& SumUpdate::Reward(AttributeId attribute, double magnitude) {
  ops_.push_back({SumOp::Kind::kReward, attribute, magnitude,
                  AttributeKind::kEmotional});
  return *this;
}

SumUpdate& SumUpdate::Punish(AttributeId attribute, double magnitude) {
  ops_.push_back({SumOp::Kind::kPunish, attribute, magnitude,
                  AttributeKind::kEmotional});
  return *this;
}

SumUpdate& SumUpdate::ValueFromSensibility(AttributeId attribute) {
  ops_.push_back({SumOp::Kind::kValueFromSensibility, attribute, 0.0,
                  AttributeKind::kEmotional});
  return *this;
}

SumUpdate& SumUpdate::Decay(AttributeKind kind) {
  ops_.push_back({SumOp::Kind::kDecay, -1, 0.0, kind});
  return *this;
}

SumUpdate SumUpdate::FromModel(const SmartUserModel& model) {
  SumUpdate update(model.user());
  for (const AttributeDef& def : model.catalog().defs()) {
    const double value = model.value(def.id);
    const double sensibility = model.sensibility(def.id);
    const double evidence = model.evidence(def.id);
    if (value != def.default_value) update.SetValue(def.id, value);
    if (sensibility != 0.0) update.SetSensibility(def.id, sensibility);
    if (evidence != 0.0) update.AddEvidence(def.id, evidence);
  }
  return update;
}

}  // namespace spa::sum
