#include "sum/sum_store.h"

#include <sstream>

#include "common/check.h"
#include "common/csv.h"
#include "common/string_util.h"

namespace spa::sum {

SumStore::SumStore(const AttributeCatalog* catalog) : catalog_(catalog) {
  SPA_CHECK(catalog != nullptr);
}

SmartUserModel* SumStore::GetOrCreate(UserId user) {
  auto it = models_.find(user);
  if (it == models_.end()) {
    it = models_.emplace(user, SmartUserModel(user, catalog_)).first;
    order_.push_back(user);
  }
  return &it->second;
}

spa::Result<const SmartUserModel*> SumStore::Get(UserId user) const {
  const auto it = models_.find(user);
  if (it == models_.end()) {
    return spa::Status::NotFound(
        spa::StrFormat("no SUM for user %lld",
                       static_cast<long long>(user)));
  }
  return &it->second;
}

spa::Result<SmartUserModel*> SumStore::GetMutable(UserId user) {
  const auto it = models_.find(user);
  if (it == models_.end()) {
    return spa::Status::NotFound(
        spa::StrFormat("no SUM for user %lld",
                       static_cast<long long>(user)));
  }
  return &it->second;
}

void SumStore::ForEach(
    const std::function<void(const SmartUserModel&)>& fn) const {
  for (UserId user : order_) {
    fn(models_.at(user));
  }
}

namespace internal {

void WriteSumCsvHeader(spa::CsvWriter* writer) {
  writer->WriteRow({"user", "attribute", "value", "sensibility",
                    "evidence"});
}

void WriteModelCsvRows(const AttributeCatalog& catalog,
                       const SmartUserModel& model,
                       spa::CsvWriter* writer) {
  size_t rows = 0;
  for (const AttributeDef& def : catalog.defs()) {
    const double value = model.value(def.id);
    const double sensibility = model.sensibility(def.id);
    const double evidence = model.evidence(def.id);
    if (value == def.default_value && sensibility == 0.0 &&
        evidence == 0.0) {
      continue;  // sparse: skip untouched attributes
    }
    // %.17g: max_digits10 for double, so values round-trip exactly.
    writer->WriteRow({std::to_string(model.user()), def.name,
                      spa::StrFormat("%.17g", value),
                      spa::StrFormat("%.17g", sensibility),
                      spa::StrFormat("%.17g", evidence)});
    ++rows;
  }
  if (rows == 0) {
    // Presence row: an untouched model must still round-trip (the
    // user exists; creation order matters to ForEach).
    writer->WriteRow(
        {std::to_string(model.user()), "", "0", "0", "0"});
  }
}

}  // namespace internal

std::string SumStore::ToCsv() const {
  std::ostringstream out;
  spa::CsvWriter writer(&out);
  internal::WriteSumCsvHeader(&writer);
  ForEach([&](const SmartUserModel& model) {
    internal::WriteModelCsvRows(*catalog_, model, &writer);
  });
  return out.str();
}

spa::Result<SumStore> SumStore::FromCsv(
    const std::string& text, const AttributeCatalog* catalog) {
  SPA_CHECK(catalog != nullptr);
  SPA_ASSIGN_OR_RETURN(auto rows, spa::ParseCsv(text));
  if (rows.empty()) {
    return spa::Status::InvalidArgument("empty SUM CSV");
  }
  SumStore store(catalog);
  for (size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& row = rows[i];
    if (row.size() != 5) {
      return spa::Status::InvalidArgument(
          spa::StrFormat("row %zu has %zu fields, expected 5", i,
                         row.size()));
    }
    int64_t user;
    double value, sensibility, evidence;
    if (!spa::ParseInt64(row[0], &user) ||
        !spa::ParseDouble(row[2], &value) ||
        !spa::ParseDouble(row[3], &sensibility) ||
        !spa::ParseDouble(row[4], &evidence)) {
      return spa::Status::InvalidArgument(
          spa::StrFormat("row %zu has non-numeric fields", i));
    }
    SmartUserModel* model = store.GetOrCreate(user);
    if (row[1].empty()) continue;  // presence row: user only
    const auto attr = catalog->IdOf(row[1]);
    if (!attr.ok()) {
      return spa::Status::InvalidArgument(
          spa::StrFormat("row %zu names unknown attribute '%s'", i,
                         row[1].c_str()));
    }
    model->set_value(attr.value(), value);
    model->set_sensibility(attr.value(), sensibility);
    model->add_evidence(attr.value(), evidence);
  }
  return store;
}

}  // namespace spa::sum
