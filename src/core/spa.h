#ifndef SPA_CORE_SPA_H_
#define SPA_CORE_SPA_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "agents/attributes_agent.h"
#include "agents/messaging_agent.h"
#include "agents/preprocessor_agent.h"
#include "agents/runtime.h"
#include "core/config.h"
#include "core/smart_component.h"
#include "eit/gradual_eit.h"
#include "recsys/content_based.h"
#include "recsys/emotion_aware.h"
#include "recsys/engine.h"
#include "recsys/request.h"
#include "recsys/router/serving_router.h"
#include "recsys/serving_pipeline.h"

/// \file
/// The SPA platform facade: wires the five Fig. 3 components together —
/// LifeLogs Pre-processor Agent, Smart Component, Attributes Manager
/// Agent, Messaging Agent — over the shared stores (LifeLog, SUM) and
/// the Gradual EIT engine, and exposes the paper's two §5.4 functions:
///
///  * the *recommendation function* — "send in an individualized manner
///    the action with most probabilities of execution by the user"
///    (`RecommendCourses` + `MessageFor`), and
///  * the *selection function* — "choose the user with greater
///    propensity to follow a course" (`SelectTopProspects`).

namespace spa::core {

/// \brief The assembled platform.
class Spa {
 public:
  explicit Spa(SpaConfig config = {});

  // ---- component access -------------------------------------------------
  const lifelog::ActionCatalog& action_catalog() const { return actions_; }
  const sum::AttributeCatalog& attribute_catalog() const { return attrs_; }
  lifelog::FeatureSpace* feature_space() { return &space_; }
  lifelog::LifeLogStore* lifelog() { return &logs_; }
  /// The versioned SUM layer: writes go through Apply(SumUpdate),
  /// reads pin sum_snapshot().
  sum::SumService* sum_service() { return &sum_service_; }
  /// Pins the current immutable view of every SUM.
  sum::SumSnapshotPtr sum_snapshot() const {
    return sum_service_.snapshot();
  }
  const eit::GradualEit& gradual_eit() const { return *eit_; }
  agents::AgentRuntime* runtime() { return &runtime_; }
  agents::MessagingAgent* messaging() { return messaging_; }
  agents::AttributesManagerAgent* attributes_manager() {
    return attributes_agent_;
  }
  const agents::PreprocessorAgent* preprocessor() const {
    return preprocessor_;
  }
  SmartComponent* smart_component() { return &smart_; }
  spa::SimClock* clock() { return &clock_; }
  const SpaConfig& config() const { return config_; }

  // ---- ingestion ---------------------------------------------------------
  /// Feeds raw WebLog lines through the pre-processor agent family and
  /// drains the mailbox. Returns the number of envelopes delivered.
  size_t IngestLogLines(std::vector<std::string> lines);

  /// Directly records an already-clean event (bypasses parsing) and
  /// updates the interaction matrix for the recommenders.
  void RecordEvent(const lifelog::Event& event);

  // ---- Gradual EIT (initialization stage) --------------------------------
  /// Next EIT question to embed in a push/newsletter for this user.
  spa::Result<int32_t> NextEitQuestion(sum::UserId user);

  /// Records the user's answer; activates impacted emotional attributes
  /// through the Attributes Manager.
  spa::Status RecordEitAnswer(sum::UserId user, int32_t question_id,
                              size_t option);

  /// EIT progress scores for a user.
  eit::EitScores EitScoresFor(sum::UserId user) const;

  // ---- update stage -------------------------------------------------------
  /// Reports the outcome of a contact argued on `argued_attribute`
  /// (reward on success, punish on ignore) via the Attributes Manager.
  void ObserveInteraction(sum::UserId user, lifelog::ItemId item,
                          sum::AttributeId argued_attribute, bool positive,
                          double magnitude = 1.0);

  /// Periodic maintenance (sensibility decay, agent ticks); advances the
  /// simulated clock by `advance`.
  void Tick(spa::TimeMicros advance = spa::kMicrosPerDay);

  // ---- advice stage -------------------------------------------------------
  /// Registers course content features / emotional profiles (from the
  /// course catalog) for the content-based and emotion-aware layers.
  void SetItemFeatures(lifelog::ItemId item, ml::SparseVector features);
  void SetItemEmotionProfile(lifelog::ItemId item,
                             const recsys::EmotionProfile& profile);

  /// Rebuilds the serving engine (recommender stack) from the current
  /// interactions.
  spa::Status RefreshRecommenders();

  /// The serving engine behind the advice stage (null until the first
  /// successful RefreshRecommenders / Recommend call).
  recsys::RecsysEngine* engine() { return engine_.get(); }

  /// Serves one recommendation request through the engine. The request
  /// is augmented with exclusions for items the user touched in the
  /// LifeLog that the sparse interaction matrix missed (zero-weight
  /// interactions), so seen items cannot leak back. Refreshes the
  /// engine first when interactions changed.
  spa::Result<recsys::RecommendResponse> Recommend(
      recsys::RecommendRequest request);

  /// Serves a batch of requests in parallel over the engine's thread
  /// pool; results align with `requests` by index and match sequential
  /// Recommend calls exactly.
  std::vector<spa::Result<recsys::RecommendResponse>> RecommendBatch(
      std::vector<recsys::RecommendRequest> requests);

  /// Builds an async streaming pipeline over the serving engine and
  /// the platform's SUM service (refreshing the recommender stack
  /// first when interactions changed): callers Submit requests /
  /// interaction batches / SUM publishes and collect tickets instead
  /// of blocking on a closed batch.
  ///
  /// Lifetime: the pipeline borrows the engine, so while the returned
  /// handle is alive `RefreshRecommenders` *refuses to run* (a lazily
  /// triggered refresh surfaces as FailedPrecondition from
  /// Recommend/RecommendBatch rather than replacing an engine whose
  /// workers are mid-serve). Destroy the pipeline before mutating the
  /// platform in ways that require a stack rebuild.
  ///
  /// Caveats vs. the synchronous facade path: the pipeline's fast
  /// path skips the sparse-seen-item merge (zero-weight LifeLog
  /// events) — callers that need it put those items in
  /// `exclude_items` — and `SubmitInteractions` is a *serving-layer*
  /// live update: it reaches the engine's matrix but not the LifeLog,
  /// so events that must survive the next stack rebuild go through
  /// `Record` as well.
  spa::Result<std::shared_ptr<recsys::ServingPipeline>>
  MakeServingPipeline(recsys::PipelineConfig config = {});

  /// Builds a router-tier serving deployment: `config.workers` worker
  /// nodes (each a full serving replica — own matrix, engine, indexes,
  /// response cache and streaming queue) behind a `ServingRouter` that
  /// resolves request ownership through an `OwnershipDirectory` and
  /// shares the platform's SUM service across all nodes.
  ///
  /// The worker replicas bootstrap from the LifeLog's current
  /// interactions with the same weighting `RefreshRecommenders` uses,
  /// and — unless the caller installs its own `stack_builder` — each
  /// node assembles the platform's standard stack (item-KNN +
  /// popularity + content-based when item features exist, plus the
  /// registered emotion profiles). `config.engine.rerank` and
  /// `.emotion_enabled` are stamped from the platform config so routed
  /// rankings match the facade's.
  ///
  /// Unlike MakeServingPipeline, the router borrows nothing from the
  /// platform's own engine (its nodes are self-contained replicas), so
  /// it does not block `RefreshRecommenders`; like the pipeline,
  /// `SubmitInteractions` is a serving-layer update that does not
  /// reach the LifeLog.
  spa::Result<std::unique_ptr<recsys::ServingRouter>> MakeServingRouter(
      recsys::RouterConfig config = {});

  /// Top-k course suggestions; emotion-aware re-ranking applied when a
  /// SUM exists and emotional features are enabled. (Compatibility
  /// wrapper over Recommend().)
  std::vector<recsys::Scored> RecommendCourses(sum::UserId user, size_t k);

  /// Composes the individualized message for (user, course) (§5.3).
  agents::ComposedMessage MessageFor(
      sum::UserId user, lifelog::ItemId course,
      const std::vector<sum::AttributeId>& product_attributes);

  // ---- Smart Component ----------------------------------------------------
  /// Trains the propensity model from labeled examples (features are
  /// assembled from the current stores).
  spa::Status TrainPropensity(
      const std::vector<PropensityExample>& examples);

  /// Current feature snapshot of a user (empty vector if no SUM).
  ml::SparseVector SnapshotFeatures(sum::UserId user) const;

  /// Trains from contact-time snapshots (the leak-free campaign path).
  spa::Status TrainPropensityOnSnapshots(
      const std::vector<ml::SparseVector>& features,
      const std::vector<ml::Label>& labels);

  /// Scores a snapshot with the trained model.
  spa::Result<double> ScoreSnapshot(
      const ml::SparseVector& features) const;

  /// Calibrated propensity of a single user.
  spa::Result<double> Propensity(sum::UserId user) const;

  /// The selection function: top-k users by propensity.
  spa::Result<std::vector<std::pair<sum::UserId, double>>>
  SelectTopProspects(const std::vector<sum::UserId>& candidates,
                     size_t k) const;

 private:
  SpaConfig config_;
  spa::SimClock clock_;
  lifelog::ActionCatalog actions_;
  sum::AttributeCatalog attrs_;
  lifelog::FeatureSpace space_;
  lifelog::LifeLogStore logs_;
  sum::SumService sum_service_;
  eit::QuestionBank bank_;
  std::unique_ptr<eit::GradualEit> eit_;
  std::unordered_map<sum::UserId, eit::UserEitState> eit_states_;
  agents::AgentRuntime runtime_;
  agents::PreprocessorAgent* preprocessor_ = nullptr;      // owned by runtime
  agents::AttributesManagerAgent* attributes_agent_ = nullptr;
  agents::MessagingAgent* messaging_ = nullptr;
  SmartComponent smart_;
  recsys::InteractionMatrix interactions_;
  std::unordered_map<lifelog::ItemId, ml::SparseVector> item_features_;
  std::unordered_map<lifelog::ItemId, recsys::EmotionProfile>
      emotion_profiles_;
  std::unique_ptr<recsys::RecsysEngine> engine_;
  /// Live streaming pipeline handed out by MakeServingPipeline (if
  /// any). While it is alive the engine must not be replaced.
  std::weak_ptr<recsys::ServingPipeline> serving_pipeline_;
  bool recommenders_ready_ = false;

  /// Per-user cache of SparseSeenFor results; cleared whenever the
  /// interaction matrix is rebuilt.
  std::unordered_map<sum::UserId, std::unordered_set<lifelog::ItemId>>
      sparse_seen_;

  eit::UserEitState& EitStateFor(sum::UserId user);

  /// The LifeLog's interactions as an ordered batch (the weighting
  /// RefreshRecommenders feeds its matrix with) — the bootstrap log
  /// router worker replicas replay.
  std::vector<recsys::Interaction> CollectInteractions() const;

  /// Items the user touched per the LifeLog that never entered the
  /// (sparse) interaction matrix — zero-weight interactions the seen
  /// filter would otherwise miss. Cached per user: serving must not
  /// rescan the whole LifeLog history on every request.
  const std::unordered_set<lifelog::ItemId>& SparseSeenFor(
      sum::UserId user);
};

}  // namespace spa::core

#endif  // SPA_CORE_SPA_H_
