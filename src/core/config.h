#ifndef SPA_CORE_CONFIG_H_
#define SPA_CORE_CONFIG_H_

#include <cstdint>

#include "agents/messaging_agent.h"
#include "agents/preprocessor_agent.h"
#include "ml/logreg.h"
#include "ml/svm_linear.h"
#include "recsys/emotion_aware.h"
#include "recsys/engine.h"
#include "sum/reward_punish.h"

/// \file
/// Platform-wide configuration for SPA.

namespace spa::core {

/// \brief Tunables of the whole platform. Defaults reproduce the
/// paper's deployment behaviour.
struct SpaConfig {
  uint64_t seed = 42;

  /// The central ablation switch: when false, the Smart Component
  /// ignores every emotional feature (the Habitat-Pro-like baseline).
  bool include_emotional_features = true;

  /// EIT bank size: questions generated per MSCEIT task section.
  size_t eit_questions_per_section = 12;

  /// Which learner powers the Smart Component (the paper uses SVMs;
  /// the alternatives exist for the classifier-choice ablation).
  enum class Learner { kLinearSvm, kLogisticRegression, kNaiveBayes };
  Learner learner = Learner::kLinearSvm;

  /// Propensity model (Smart Component). Stronger regularization plus
  /// an inverse-prevalence positive class weight keep the hinge loss
  /// ranking well on the ~8:1 imbalanced campaign-response data.
  ml::SvmConfig svm{.c = 0.1,
                    .max_iterations = 60,
                    .tolerance = 1e-3,
                    .positive_class_weight = 7.0};
  ml::LogRegConfig logreg;
  /// Calibrate raw scores into probabilities with Platt scaling.
  bool calibrate_probabilities = true;

  /// SUM reinforcement (applied by the SumService's reward/punish/decay
  /// ops, driven by the Attributes Manager).
  sum::ReinforcementConfig reinforcement{.learning_rate = 0.12,
                                         .decay_rate = 0.01,
                                         .floor = 0.0};

  /// Messaging Agent behaviour. The lower-than-default threshold lets
  /// personalization engage as soon as the Gradual EIT has gathered
  /// moderate evidence.
  agents::MessagingAgentConfig messaging{
      .sensibility_threshold = 0.3,
      .policy = agents::MultiMatchPolicy::kMaxSensibility};

  /// Pre-processor replication policy.
  agents::PreprocessorAgentConfig preprocessor;

  /// Emotion-aware re-ranking of course recommendations.
  recsys::EmotionRerankConfig rerank;

  /// Serving engine (hybrid component depth, re-rank overfetch, batch
  /// threads). Its `rerank` / `emotion_enabled` fields are overridden
  /// by `rerank` / `include_emotional_features` above when the engine
  /// is built.
  recsys::EngineConfig engine;
};

}  // namespace spa::core

#endif  // SPA_CORE_CONFIG_H_
