#ifndef SPA_CORE_SMART_COMPONENT_H_
#define SPA_CORE_SMART_COMPONENT_H_

#include <string>
#include <vector>

#include <memory>

#include "common/status.h"
#include "core/config.h"
#include "lifelog/features.h"
#include "lifelog/store.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/platt.h"
#include "ml/scaler.h"
#include "ml/svm_linear.h"
#include "sum/sum_service.h"

/// \file
/// The Smart Component (SPA component 2): "implements advanced
/// algorithms and methods for incremental learning in order to
/// accurately predict user behavior ... scorings, classifications,
/// rankings of attributes, items and users, user propensity" (§4).
/// An SVM over the assembled behaviour+SUM features predicts the
/// propensity to transact; Platt scaling turns margins into the
/// probabilities that drive campaign targeting.

namespace spa::core {

/// One labeled training observation: did the user transact after the
/// last contact?
struct PropensityExample {
  sum::UserId user = 0;
  bool responded = false;
};

/// \brief Propensity learner + scorer over the shared feature space.
class SmartComponent {
 public:
  SmartComponent(const lifelog::ActionCatalog* actions,
                 const sum::AttributeCatalog* attributes,
                 lifelog::FeatureSpace* space, SpaConfig config);

  /// Assembles the full feature vector of one user (behaviour features
  /// from the LifeLog + SUM attribute/sensibility features, the latter
  /// only when emotional features are enabled).
  ml::SparseVector FeaturesFor(const sum::SmartUserModel& model,
                               const std::vector<lifelog::Event>& events,
                               spa::TimeMicros now) const;

  /// Trains the propensity SVM from labeled users, assembling features
  /// from the *current* stores. Needs both classes. NOTE: when labels
  /// come from past campaign responses, prefer TrainOnSnapshots with
  /// features captured at contact time — training on current state
  /// leaks the response events into the features.
  spa::Status TrainPropensity(const std::vector<PropensityExample>& examples,
                              const sum::SumSnapshot& sums,
                              const lifelog::LifeLogStore& logs,
                              spa::TimeMicros now);

  /// Trains from pre-assembled (feature, label) pairs — the leak-free
  /// path used by the campaign loop, where features are snapshotted
  /// the moment the contact goes out.
  spa::Status TrainOnSnapshots(const std::vector<ml::SparseVector>& features,
                               const std::vector<ml::Label>& labels);

  bool trained() const { return trained_; }

  /// Calibrated transaction propensity in [0,1] (raw margin mapped by
  /// Platt scaling; monotone in the SVM score).
  spa::Result<double> Propensity(const sum::SmartUserModel& model,
                                 const std::vector<lifelog::Event>& events,
                                 spa::TimeMicros now) const;

  /// Raw decision value for an already-assembled feature vector.
  spa::Result<double> ScoreFeatures(const ml::SparseVector& features) const;

  /// The selection function: ranks candidate users by propensity,
  /// highest first (returns all candidates, ordered).
  spa::Result<std::vector<std::pair<sum::UserId, double>>> RankUsers(
      const std::vector<sum::UserId>& candidates,
      const sum::SumSnapshot& sums, const lifelog::LifeLogStore& logs,
      spa::TimeMicros now) const;

  /// Ranking of attributes: the most predictive features by |weight|.
  std::vector<std::pair<std::string, double>> TopFeatures(size_t k) const;

  /// AUC measured on the internal validation split of the last train.
  double last_validation_auc() const { return last_auc_; }
  size_t last_train_size() const { return last_train_size_; }

 private:
  /// Builds a fresh learner instance per the configuration.
  std::unique_ptr<ml::BinaryClassifier> MakeLearner() const;

  const lifelog::ActionCatalog* actions_;
  const sum::AttributeCatalog* attributes_;
  lifelog::FeatureSpace* space_;
  SpaConfig config_;
  lifelog::BehaviorFeatureExtractor behavior_;
  std::unique_ptr<ml::BinaryClassifier> model_;
  ml::ColumnScaler scaler_;
  ml::PlattScaler platt_;
  bool trained_ = false;
  double last_auc_ = 0.0;
  size_t last_train_size_ = 0;
};

}  // namespace spa::core

#endif  // SPA_CORE_SMART_COMPONENT_H_
