#include "core/smart_component.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "ml/dataset.h"

namespace spa::core {

SmartComponent::SmartComponent(const lifelog::ActionCatalog* actions,
                               const sum::AttributeCatalog* attributes,
                               lifelog::FeatureSpace* space,
                               SpaConfig config)
    : actions_(actions),
      attributes_(attributes),
      space_(space),
      config_(config),
      behavior_(actions, space) {
  SPA_CHECK(actions != nullptr && attributes != nullptr &&
            space != nullptr);
  sum::SmartUserModel::RegisterFeatures(*attributes, space);
}

std::unique_ptr<ml::BinaryClassifier> SmartComponent::MakeLearner()
    const {
  switch (config_.learner) {
    case SpaConfig::Learner::kLinearSvm:
      return std::make_unique<ml::LinearSvm>(config_.svm);
    case SpaConfig::Learner::kLogisticRegression:
      return std::make_unique<ml::LogisticRegression>(config_.logreg);
    case SpaConfig::Learner::kNaiveBayes:
      return std::make_unique<ml::BernoulliNaiveBayes>();
  }
  return std::make_unique<ml::LinearSvm>(config_.svm);
}

ml::SparseVector SmartComponent::FeaturesFor(
    const sum::SmartUserModel& model,
    const std::vector<lifelog::Event>& events,
    spa::TimeMicros now) const {
  const ml::SparseVector behavior = behavior_.Extract(events, now);
  const ml::SparseVector sum_features =
      model.Features(*space_, config_.include_emotional_features);

  // Merge the two sorted sparse vectors.
  std::vector<ml::SparseEntry> merged;
  merged.reserve(behavior.nnz() + sum_features.nnz());
  size_t i = 0, j = 0;
  while (i < behavior.nnz() || j < sum_features.nnz()) {
    if (j >= sum_features.nnz() ||
        (i < behavior.nnz() &&
         behavior.index(i) < sum_features.index(j))) {
      merged.push_back({behavior.index(i), behavior.value(i)});
      ++i;
    } else if (i >= behavior.nnz() ||
               sum_features.index(j) < behavior.index(i)) {
      merged.push_back({sum_features.index(j), sum_features.value(j)});
      ++j;
    } else {
      // Same index (should not happen: disjoint name prefixes).
      merged.push_back({behavior.index(i),
                        behavior.value(i) + sum_features.value(j)});
      ++i;
      ++j;
    }
  }
  return ml::SparseVector(merged);
}

spa::Status SmartComponent::TrainPropensity(
    const std::vector<PropensityExample>& examples,
    const sum::SumSnapshot& sums, const lifelog::LifeLogStore& logs,
    spa::TimeMicros now) {
  if (examples.size() < 10) {
    return spa::Status::InvalidArgument(
        "need at least 10 labeled examples");
  }
  std::vector<ml::SparseVector> features;
  std::vector<ml::Label> labels;
  features.reserve(examples.size());
  labels.reserve(examples.size());
  for (const PropensityExample& example : examples) {
    const auto model = sums.Get(example.user);
    if (!model.ok()) continue;
    features.push_back(
        FeaturesFor(*model.value(), logs.UserEvents(example.user), now));
    labels.push_back(example.responded ? 1 : -1);
  }
  return TrainOnSnapshots(features, labels);
}

spa::Status SmartComponent::TrainOnSnapshots(
    const std::vector<ml::SparseVector>& features,
    const std::vector<ml::Label>& labels) {
  if (features.size() != labels.size()) {
    return spa::Status::InvalidArgument(
        "feature/label count mismatch");
  }
  if (features.size() < 10) {
    return spa::Status::FailedPrecondition(
        "fewer than 10 usable training examples");
  }
  ml::Dataset data;
  data.x.SetCols(space_->size());
  data.x.Reserve(features.size(), features.size() * 24);
  for (size_t i = 0; i < features.size(); ++i) {
    data.x.AppendRow(features[i]);
    data.y.push_back(labels[i]);
  }
  const size_t positives = data.positives();
  if (positives == 0 || positives == data.size()) {
    return spa::Status::FailedPrecondition(
        "training set needs both responders and non-responders");
  }
  // Feature-name list may lag behind new registrations; align columns.
  data.x.SetCols(space_->size());
  data.feature_names = space_->names();

  // Scale columns for SVM conditioning.
  SPA_RETURN_IF_ERROR(scaler_.Fit(data.x));
  SPA_RETURN_IF_ERROR(scaler_.Transform(&data.x));

  // Internal validation split for the reported AUC.
  Rng rng(config_.seed, /*stream=*/3);
  const ml::TrainTestSplit split =
      ml::MakeStratifiedSplit(data.y, 0.2, &rng);
  const ml::Dataset train = data.Subset(split.train);
  const ml::Dataset valid = data.Subset(split.test);

  model_ = MakeLearner();
  SPA_RETURN_IF_ERROR(model_->Train(train));
  const std::vector<double> valid_scores = model_->ScoreAll(valid);
  last_auc_ = ml::RocAuc(valid_scores, valid.y);
  last_train_size_ = train.size();

  if (config_.calibrate_probabilities) {
    // Calibrate on the validation fold (unbiased wrt training margins).
    spa::Status platt_status = platt_.Fit(valid_scores, valid.y);
    if (!platt_status.ok()) {
      // Degenerate fold; fall back to calibrating on train.
      SPA_RETURN_IF_ERROR(
          platt_.Fit(model_->ScoreAll(train), train.y));
    }
  }
  trained_ = true;
  return spa::Status::OK();
}

spa::Result<double> SmartComponent::ScoreFeatures(
    const ml::SparseVector& features) const {
  if (!trained_) {
    return spa::Status::FailedPrecondition("propensity model not trained");
  }
  const ml::SparseVector scaled = scaler_.TransformRow(features.view());
  const double margin = model_->Score(scaled.view());
  if (config_.calibrate_probabilities && platt_.fitted()) {
    return platt_.Transform(margin);
  }
  return margin;
}

spa::Result<double> SmartComponent::Propensity(
    const sum::SmartUserModel& model,
    const std::vector<lifelog::Event>& events,
    spa::TimeMicros now) const {
  return ScoreFeatures(FeaturesFor(model, events, now));
}

spa::Result<std::vector<std::pair<sum::UserId, double>>>
SmartComponent::RankUsers(const std::vector<sum::UserId>& candidates,
                          const sum::SumSnapshot& sums,
                          const lifelog::LifeLogStore& logs,
                          spa::TimeMicros now) const {
  if (!trained_) {
    return spa::Status::FailedPrecondition("propensity model not trained");
  }
  std::vector<std::pair<sum::UserId, double>> ranked;
  ranked.reserve(candidates.size());
  for (sum::UserId user : candidates) {
    const auto model = sums.Get(user);
    if (!model.ok()) continue;
    const auto score =
        Propensity(*model.value(), logs.UserEvents(user), now);
    if (score.ok()) ranked.emplace_back(user, score.value());
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return ranked;
}

std::vector<std::pair<std::string, double>> SmartComponent::TopFeatures(
    size_t k) const {
  std::vector<std::pair<std::string, double>> ranked;
  if (!trained_) return ranked;
  const auto* linear =
      dynamic_cast<const ml::LinearClassifier*>(model_.get());
  if (linear == nullptr) return ranked;  // NB exposes no weights
  const std::vector<double>& w = linear->weights();
  for (size_t f = 0; f < w.size(); ++f) {
    if (w[f] != 0.0 && f < static_cast<size_t>(space_->size())) {
      ranked.emplace_back(space_->NameOf(static_cast<int32_t>(f)),
                          w[f]);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return std::abs(a.second) > std::abs(b.second);
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace spa::core
