#include "core/spa.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"

namespace spa::core {

namespace {

/// Simulation epoch: 2006-01-01 (the business case ran to March 2006).
constexpr spa::TimeMicros kSimEpoch =
    int64_t{13149} * spa::kMicrosPerDay;

/// Interaction strength per action category (enrolment weighs most).
double InteractionWeight(lifelog::ActionType type, double value) {
  using lifelog::ActionType;
  switch (type) {
    case ActionType::kPageView:
      return 0.2;
    case ActionType::kClick:
      return 0.5;
    case ActionType::kSearch:
      return 0.3;
    case ActionType::kEmailOpen:
      return 0.3;
    case ActionType::kEmailClick:
      return 0.6;
    case ActionType::kInfoRequest:
      return 1.5;
    case ActionType::kEnrollment:
      return 3.0;
    case ActionType::kRating:
      return value / 5.0 * 2.0;
    case ActionType::kOpinion:
      return 1.0;
    case ActionType::kEitAnswer:
      return 0.0;
  }
  return 0.0;
}

}  // namespace

Spa::Spa(SpaConfig config)
    : config_(config),
      clock_(kSimEpoch),
      actions_(lifelog::ActionCatalog::Standard()),
      attrs_(sum::AttributeCatalog::EmagisterDefault()),
      sum_service_(&attrs_,
                   sum::SumServiceConfig{config.reinforcement}),
      bank_(eit::QuestionBank::Generate(config.eit_questions_per_section,
                                        config.seed)),
      eit_(std::make_unique<eit::GradualEit>(&bank_)),
      runtime_(&clock_),
      smart_(&actions_, &attrs_, &space_, config) {
  auto preprocessor = std::make_unique<agents::PreprocessorAgent>(
      &actions_, &logs_, config.preprocessor);
  preprocessor_ = preprocessor.get();
  SPA_CHECK(runtime_.Register(std::move(preprocessor)).ok());

  auto attributes_agent = std::make_unique<agents::AttributesManagerAgent>(
      &sum_service_, agents::AttributesAgentConfig{});
  attributes_agent_ = attributes_agent.get();
  SPA_CHECK(runtime_.Register(std::move(attributes_agent)).ok());

  auto messaging = std::make_unique<agents::MessagingAgent>(
      &sum_service_, config.messaging);
  messaging_ = messaging.get();
  SPA_CHECK(runtime_.Register(std::move(messaging)).ok());
  InstallDefaultTemplates(attrs_, messaging_);
}

size_t Spa::IngestLogLines(std::vector<std::string> lines) {
  agents::RawLogBatch batch;
  batch.lines = std::move(lines);
  runtime_.Inject("preproc-0", std::move(batch));
  const size_t delivered = runtime_.RunUntilIdle();
  recommenders_ready_ = false;  // interactions changed
  return delivered;
}

void Spa::RecordEvent(const lifelog::Event& event) {
  logs_.Append(event);
  recommenders_ready_ = false;
}

eit::UserEitState& Spa::EitStateFor(sum::UserId user) {
  auto it = eit_states_.find(user);
  if (it == eit_states_.end()) {
    it = eit_states_.emplace(user, eit::UserEitState(bank_.size())).first;
  }
  return it->second;
}

spa::Result<int32_t> Spa::NextEitQuestion(sum::UserId user) {
  return eit_->NextQuestionFor(EitStateFor(user));
}

spa::Status Spa::RecordEitAnswer(sum::UserId user, int32_t question_id,
                                 size_t option) {
  eit::UserEitState& state = EitStateFor(user);
  SPA_ASSIGN_OR_RETURN(eit::GradualEit::AnswerOutcome outcome,
                       eit_->RecordAnswer(&state, question_id, option));

  // Log the answer as a LifeLog event.
  const auto& codes =
      actions_.CodesFor(lifelog::ActionType::kEitAnswer);
  lifelog::Event event;
  event.user = user;
  event.time = clock_.now();
  event.action_code =
      codes[static_cast<size_t>(question_id) % codes.size()];
  event.value = outcome.consensus_score;
  logs_.Append(event);

  // Route the activations to the Attributes Manager.
  agents::EitAnswerObserved observed;
  observed.user = user;
  observed.question_id = question_id;
  observed.activations = std::move(outcome.activations);
  runtime_.Inject("attributes-manager", std::move(observed));
  runtime_.RunUntilIdle();
  return spa::Status::OK();
}

eit::EitScores Spa::EitScoresFor(sum::UserId user) const {
  const auto it = eit_states_.find(user);
  if (it == eit_states_.end()) {
    return eit::EitScores{};
  }
  return eit_->ScoresFor(it->second);
}

void Spa::ObserveInteraction(sum::UserId user, lifelog::ItemId item,
                             sum::AttributeId argued_attribute,
                             bool positive, double magnitude) {
  agents::InteractionObserved observed;
  observed.user = user;
  observed.item = item;
  observed.argued_attribute = argued_attribute;
  observed.positive = positive;
  observed.magnitude = magnitude;
  runtime_.Inject("attributes-manager", std::move(observed));
  runtime_.RunUntilIdle();
}

void Spa::Tick(spa::TimeMicros advance) {
  clock_.Advance(advance);
  runtime_.TickAll();
}

void Spa::SetItemFeatures(lifelog::ItemId item,
                          ml::SparseVector features) {
  item_features_[item] = std::move(features);
  recommenders_ready_ = false;
}

void Spa::SetItemEmotionProfile(lifelog::ItemId item,
                                const recsys::EmotionProfile& profile) {
  emotion_profiles_[item] = profile;
  if (engine_ != nullptr) engine_->SetItemEmotionProfile(item, profile);
}

spa::Status Spa::RefreshRecommenders() {
  if (!serving_pipeline_.expired()) {
    // Rebuilding replaces engine_ while the pipeline's drain workers
    // may be inside it — refuse loudly instead of a use-after-free.
    return spa::Status::FailedPrecondition(
        "a streaming pipeline is serving from the current engine; "
        "destroy it before refreshing the recommender stack");
  }
  // Rebuild the interaction matrix from the LifeLog (single source of
  // truth for what users touched). Shard count comes from the engine
  // config; any count stores bit-for-bit identical data.
  interactions_ =
      recsys::InteractionMatrix(config_.engine.interaction_shards);
  // Same ordered log the router tier bootstraps worker replicas from
  // (identical Add order => bitwise-identical matrices).
  for (const recsys::Interaction& it : CollectInteractions()) {
    interactions_.Add(it.user, it.item, it.weight);
  }

  if (interactions_.interaction_count() == 0) {
    return spa::Status::FailedPrecondition(
        "no item interactions recorded yet");
  }

  recsys::EngineConfig engine_config = config_.engine;
  engine_config.rerank = config_.rerank;
  engine_config.emotion_enabled = config_.include_emotional_features;
  engine_ = std::make_unique<recsys::RecsysEngine>(engine_config);
  engine_->AddComponent(std::make_unique<recsys::ItemKnnRecommender>(),
                        0.45);
  engine_->AddComponent(
      std::make_unique<recsys::PopularityRecommender>(), 0.10);
  if (!item_features_.empty()) {
    auto content = std::make_unique<recsys::ContentBasedRecommender>();
    for (const auto& [item, features] : item_features_) {
      content->SetItemFeatures(item, features);
    }
    engine_->AddComponent(std::move(content), 0.45);
  }
  for (const auto& [item, profile] : emotion_profiles_) {
    engine_->SetItemEmotionProfile(item, profile);
  }
  engine_->set_sum_service(&sum_service_);
  SPA_RETURN_IF_ERROR(engine_->Fit(interactions_));
  sparse_seen_.clear();  // derived from the matrix just rebuilt
  recommenders_ready_ = true;
  return spa::Status::OK();
}

const std::unordered_set<lifelog::ItemId>& Spa::SparseSeenFor(
    sum::UserId user) {
  auto it = sparse_seen_.find(user);
  if (it == sparse_seen_.end()) {
    std::unordered_set<lifelog::ItemId> out;
    for (const lifelog::Event& event : logs_.UserEvents(user)) {
      if (event.item == lifelog::kNoItem) continue;
      if (!interactions_.Seen(user, event.item)) out.insert(event.item);
    }
    it = sparse_seen_.emplace(user, std::move(out)).first;
  }
  return it->second;
}

spa::Result<recsys::RecommendResponse> Spa::Recommend(
    recsys::RecommendRequest request) {
  if (!recommenders_ready_) {
    SPA_RETURN_IF_ERROR(RefreshRecommenders());
  }
  if (request.exclude_seen == recsys::ExcludeSeen::kYes) {
    // Zero-weight interactions (e.g. a rating of 0) never enter the
    // sparse matrix; without this merge they would leak back as
    // recommendations.
    const auto& sparse_seen = SparseSeenFor(request.user);
    request.exclude_items.insert(sparse_seen.begin(), sparse_seen.end());
  }
  return engine_->Recommend(request);
}

std::vector<spa::Result<recsys::RecommendResponse>> Spa::RecommendBatch(
    std::vector<recsys::RecommendRequest> requests) {
  if (!recommenders_ready_) {
    const spa::Status refreshed = RefreshRecommenders();
    if (!refreshed.ok()) {
      return std::vector<spa::Result<recsys::RecommendResponse>>(
          requests.size(),
          spa::Result<recsys::RecommendResponse>(refreshed));
    }
  }
  for (recsys::RecommendRequest& request : requests) {
    if (request.exclude_seen == recsys::ExcludeSeen::kYes) {
      const auto& sparse_seen = SparseSeenFor(request.user);
      request.exclude_items.insert(sparse_seen.begin(),
                                   sparse_seen.end());
    }
  }
  return engine_->RecommendBatch(requests);
}

spa::Result<std::shared_ptr<recsys::ServingPipeline>>
Spa::MakeServingPipeline(recsys::PipelineConfig config) {
  if (auto live = serving_pipeline_.lock()) {
    return spa::Status::FailedPrecondition(
        "a streaming pipeline is already serving from the engine; "
        "destroy it before building another");
  }
  if (!recommenders_ready_) {
    SPA_RETURN_IF_ERROR(RefreshRecommenders());
  }
  auto pipeline = std::make_shared<recsys::ServingPipeline>(
      engine_.get(), &sum_service_, config);
  serving_pipeline_ = pipeline;
  return pipeline;
}

std::vector<recsys::Interaction> Spa::CollectInteractions() const {
  std::vector<recsys::Interaction> interactions;
  logs_.ForEachUser([this, &interactions](
                        sum::UserId user,
                        const std::vector<lifelog::Event>& events) {
    for (const lifelog::Event& event : events) {
      if (event.item == lifelog::kNoItem) continue;
      const auto type = actions_.TypeOf(event.action_code);
      if (!type.ok()) continue;
      const double weight = InteractionWeight(type.value(), event.value);
      if (weight > 0.0) {
        interactions.push_back(
            recsys::Interaction{user, event.item, weight});
      }
    }
  });
  return interactions;
}

spa::Result<std::unique_ptr<recsys::ServingRouter>>
Spa::MakeServingRouter(recsys::RouterConfig config) {
  std::vector<recsys::Interaction> bootstrap = CollectInteractions();
  if (bootstrap.empty()) {
    return spa::Status::FailedPrecondition(
        "no item interactions recorded yet");
  }
  // Routed rankings must match the facade's: stamp the platform's
  // re-rank parameters and emotion switch, as RefreshRecommenders
  // does for its own engine.
  config.engine.rerank = config_.rerank;
  config.engine.emotion_enabled = config_.include_emotional_features;
  if (!config.stack_builder) {
    // Self-contained copies: the router (and any late-joining worker)
    // must be able to rebuild the stack after the platform's catalogs
    // moved on, and must build the *same* stack every time.
    auto features = item_features_;
    auto profiles = emotion_profiles_;
    config.stack_builder = [features = std::move(features),
                            profiles = std::move(profiles)](
                               recsys::RecsysEngine& engine) {
      engine.AddComponent(std::make_unique<recsys::ItemKnnRecommender>(),
                          0.45);
      engine.AddComponent(
          std::make_unique<recsys::PopularityRecommender>(), 0.10);
      if (!features.empty()) {
        auto content = std::make_unique<recsys::ContentBasedRecommender>();
        for (const auto& [item, feature] : features) {
          content->SetItemFeatures(item, feature);
        }
        engine.AddComponent(std::move(content), 0.45);
      }
      for (const auto& [item, profile] : profiles) {
        engine.SetItemEmotionProfile(item, profile);
      }
    };
  }
  return recsys::ServingRouter::Create(std::move(config),
                                       std::move(bootstrap),
                                       &sum_service_);
}

std::vector<recsys::Scored> Spa::RecommendCourses(sum::UserId user,
                                                  size_t k) {
  recsys::RecommendRequest request;
  request.user = user;
  request.k = k;
  const auto response = Recommend(std::move(request));
  if (!response.ok()) return {};
  return response.value().AsScored();
}

agents::ComposedMessage Spa::MessageFor(
    sum::UserId user, lifelog::ItemId course,
    const std::vector<sum::AttributeId>& product_attributes) {
  agents::ComposeMessageRequest request;
  request.user = user;
  request.course = course;
  request.product_attributes = product_attributes;
  return messaging_->Compose(request);
}

spa::Status Spa::TrainPropensity(
    const std::vector<PropensityExample>& examples) {
  return smart_.TrainPropensity(examples, *sum_service_.snapshot(),
                                logs_, clock_.now());
}

ml::SparseVector Spa::SnapshotFeatures(sum::UserId user) const {
  const sum::SumSnapshotPtr snapshot = sum_service_.snapshot();
  const auto model = snapshot->Get(user);
  if (!model.ok()) return ml::SparseVector();
  return smart_.FeaturesFor(*model.value(), logs_.UserEvents(user),
                            clock_.now());
}

spa::Status Spa::TrainPropensityOnSnapshots(
    const std::vector<ml::SparseVector>& features,
    const std::vector<ml::Label>& labels) {
  return smart_.TrainOnSnapshots(features, labels);
}

spa::Result<double> Spa::ScoreSnapshot(
    const ml::SparseVector& features) const {
  return smart_.ScoreFeatures(features);
}

spa::Result<double> Spa::Propensity(sum::UserId user) const {
  const sum::SumSnapshotPtr snapshot = sum_service_.snapshot();
  SPA_ASSIGN_OR_RETURN(const sum::SmartUserModel* model,
                       snapshot->Get(user));
  return smart_.Propensity(*model, logs_.UserEvents(user), clock_.now());
}

spa::Result<std::vector<std::pair<sum::UserId, double>>>
Spa::SelectTopProspects(const std::vector<sum::UserId>& candidates,
                        size_t k) const {
  const sum::SumSnapshotPtr snapshot = sum_service_.snapshot();
  SPA_ASSIGN_OR_RETURN(auto ranked,
                       smart_.RankUsers(candidates, *snapshot, logs_,
                                        clock_.now()));
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace spa::core
