#ifndef SPA_WORKLOAD_SCENARIO_H_
#define SPA_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "eit/emotion.h"
#include "recsys/interaction_matrix.h"

/// \file
/// The scenario vocabulary of the workload subsystem: event and
/// configuration value types for the emotion-dynamic load generator
/// (`workload::ScenarioGenerator`) and the SLO-gated replay harness
/// (`workload::ScenarioRunner`).
///
/// A *scenario* is a seeded, replayable stream of virtual-timestamped
/// events — serve requests, interaction bursts and emotional-context
/// shifts — over a synthetic population of cohort-structured users
/// (communities of `cohort_users` sharing a `cohort_items` catalog
/// slice, the topology every serving bench in this repo uses). The
/// stream is a pure function of `(seed, config)`: generating it twice,
/// on any thread count, yields bitwise-identical events, so every
/// layer above (pipeline, router, differential parity checks) can
/// treat it as a recorded trace.
///
/// The four archetypes the ROADMAP's million-user matrix calls for:
///
///  * **steady power-law** — Zipf cohort popularity and within-cohort
///    user activity under a diurnal arrival curve; the baseline.
///  * **flash crowd** — the arrival rate multiplies for a window of
///    the day (a viral burst) while the mix is unchanged.
///  * **cold-start churn** — only part of the population is active at
///    t0; fresh cohorts (no interaction history, no SUM entry) arrive
///    over the day while the oldest cohorts retire.
///  * **emotion-shift storm** — a campaign-driven window in which
///    correlated `SumUpdate` waves (one dominant attribute, the
///    hottest cohorts) collide with serve traffic; the dynamic the
///    source paper's emotional rerank stage exists for.

namespace spa::workload {

using recsys::ItemId;
using recsys::UserId;

/// \brief Stream event discriminator.
enum class EventKind : uint8_t {
  kServe = 0,    ///< one recommendation request
  kInteraction,  ///< one correlated interaction burst (writer lane)
  kSumUpdate,    ///< one emotional-context publish (writer lane)
};

/// \brief One primitive emotional-context mutation, catalog-agnostic.
///
/// The generator speaks `eit::EmotionalAttribute`; the runner
/// materializes shifts into `sum::SumUpdate`s against a concrete
/// `AttributeCatalog` (the generator stays independent of the SUM
/// layer).
struct EmotionShift {
  enum class Op : uint8_t {
    kSetSensibility = 0,  ///< bootstrap-style absolute sensibility
    kReward,              ///< reinforcement nudge (campaign push)
  };
  UserId user = 0;
  eit::EmotionalAttribute attribute = eit::EmotionalAttribute::kEnthusiastic;
  Op op = Op::kReward;
  double amount = 0.0;
};

/// \brief One event of the replayable stream.
///
/// `seq` is the event's position in the merged stream (assigned by
/// `ScenarioGenerator::Generate`); events are ordered by
/// `(time, seq)` and `seq` alone is already a total order, which is
/// what makes disjoint sub-streams re-mergeable (`MergeStreams`).
struct ScenarioEvent {
  spa::TimeMicros time = 0;
  uint64_t seq = 0;
  EventKind kind = EventKind::kServe;
  UserId user = 0;                                ///< kServe target
  std::vector<recsys::Interaction> interactions;  ///< kInteraction
  std::vector<EmotionShift> shifts;               ///< kSumUpdate
};

bool operator==(const EmotionShift& a, const EmotionShift& b);
bool operator==(const ScenarioEvent& a, const ScenarioEvent& b);

/// \brief A window of the scenario during which arrivals multiply.
struct FlashCrowdSpec {
  double start = 0.4;      ///< window start, fraction of duration
  double duration = 0.15;  ///< window length, fraction of duration
  double multiplier = 4.0; ///< arrival-rate factor inside the window
};

/// \brief A campaign-driven correlated SumUpdate wave.
struct EmotionStormSpec {
  double start = 0.5;            ///< window start, fraction of duration
  double duration = 0.25;        ///< window length, fraction of duration
  /// Fraction of the *hottest* active cohorts the storm targets.
  double cohort_fraction = 0.1;
  /// Multiplier on the sum-update share of the event mix inside the
  /// window (the wave colliding with serve traffic).
  double intensity = 8.0;
  /// The campaign's dominant attribute — every shift in a wave pushes
  /// the same attribute, which is what makes the wave *correlated*.
  eit::EmotionalAttribute attribute = eit::EmotionalAttribute::kEnthusiastic;
  double magnitude = 0.8;  ///< reinforcement magnitude of each shift
  size_t wave_size = 8;    ///< shifts per storm event (one publish)
};

/// \brief Cohort churn: cold-start influx and retirement.
struct ChurnSpec {
  /// Fraction of the population active (with history) at t0.
  double initial_active = 1.0;
  /// Fraction of the population arriving cold per simulated day.
  double arrivals_per_day = 0.0;
  /// Fraction of the population retiring per simulated day (oldest
  /// cohorts first; at least one cohort always stays active).
  double retirements_per_day = 0.0;
};

/// \brief Full scenario description; pure data, hashable by value.
struct ScenarioConfig {
  std::string name = "steady_power_law";
  uint64_t seed = 42;

  // ---- population ---------------------------------------------------------
  size_t users = 100'000;
  size_t cohort_users = 50;   ///< users per community
  size_t cohort_items = 10;   ///< catalog slice per community
  size_t history_per_user = 12;  ///< bootstrap interactions per user

  // ---- timeline -----------------------------------------------------------
  spa::TimeMicros duration = spa::kMicrosPerDay;
  /// Generation block: events are produced per block by a pure
  /// function of (seed, config, block index), so any thread count
  /// yields the same stream. Must divide into >= 1 blocks.
  spa::TimeMicros block = 15 * spa::kMicrosPerMinute;

  // ---- arrival curve ------------------------------------------------------
  /// Total events the stream targets (the per-block mean is this,
  /// apportioned by the diurnal/flash modulation).
  size_t target_events = 6'000;
  /// Diurnal modulation amplitude in [0, 1): rate follows
  /// 1 + A * sin(2*pi*t/day - pi/2) (trough at t = 0).
  double diurnal_amplitude = 0.35;
  std::vector<FlashCrowdSpec> flash_crowds;

  // ---- event mix ----------------------------------------------------------
  double interaction_fraction = 0.10;  ///< share of interaction bursts
  double sum_update_fraction = 0.05;   ///< baseline emotional drift
  size_t interaction_batch = 4;        ///< interactions per burst

  // ---- skew ---------------------------------------------------------------
  /// Zipf exponents (> 1; see Rng::Zipf). Cohort popularity ranks the
  /// *oldest active* cohort hottest; user activity ranks within the
  /// cohort.
  double cohort_skew = 1.2;
  double user_skew = 1.15;
  double item_skew = 1.2;

  // ---- dynamics -----------------------------------------------------------
  ChurnSpec churn;
  std::vector<EmotionStormSpec> storms;
};

// ---- archetype factories ----------------------------------------------------
ScenarioConfig SteadyPowerLawScenario(size_t users, uint64_t seed);
ScenarioConfig FlashCrowdScenario(size_t users, uint64_t seed);
ScenarioConfig ColdStartChurnScenario(size_t users, uint64_t seed);
ScenarioConfig EmotionShiftStormScenario(size_t users, uint64_t seed);

/// The four-archetype matrix at a common event budget.
std::vector<ScenarioConfig> StandardScenarioMatrix(size_t users,
                                                   size_t target_events,
                                                   uint64_t seed);

/// \brief Order-stable k-way merge of pre-sorted disjoint sub-streams.
///
/// Each input must be sorted by `(time, seq)` (any subsequence of a
/// generated stream is). The result is the unique `(time, seq)`-sorted
/// interleaving — splitting a stream into disjoint parts (e.g. by
/// cohort) and merging them back reproduces the original exactly.
std::vector<ScenarioEvent> MergeStreams(
    std::vector<std::vector<ScenarioEvent>> streams);

/// \brief Order-sensitive 64-bit fingerprint of a stream (SplitMix64
/// mixing over every field of every event). Bitwise-equal streams —
/// and only those — fingerprint equal; the determinism tests and the
/// bench matrix pin these values.
uint64_t StreamFingerprint(const std::vector<ScenarioEvent>& events);

}  // namespace spa::workload

#endif  // SPA_WORKLOAD_SCENARIO_H_
