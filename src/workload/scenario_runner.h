#ifndef SPA_WORKLOAD_SCENARIO_RUNNER_H_
#define SPA_WORKLOAD_SCENARIO_RUNNER_H_

#include <string>

#include "common/stats.h"
#include "common/status.h"
#include "recsys/serving_pipeline.h"
#include "workload/scenario.h"

/// \file
/// The SLO-gated replay harness: `ScenarioRunner` expands a
/// `ScenarioConfig` through `ScenarioGenerator`, boots a full serving
/// deployment (a single `ServingPipeline` or a sharded
/// `ServingRouter`), replays the event stream *open-loop* against it —
/// arrivals are paced by the scenario's virtual timeline compressed to
/// a wall budget derived from the deployment's calibrated capacity, so
/// flash crowds and storms keep their burst shape — and grades the run
/// against the scenario's SLO.
///
/// ## Differential parity
///
/// Every writer op's ticket and a deterministic sample of serve
/// tickets are retained. After the replay quiesces the runner rebuilds
/// the deployment's state transitions on an offline reference:
/// interaction batches are re-applied to a reference engine in
/// ascending post-apply `matrix_version` order (the writer lane is
/// FIFO, so that *is* submission order), SUM batches are re-applied to
/// a reference `SumService` replica in ascending post-apply
/// `sum_version` order with the snapshot of every version retained,
/// and each sampled response is then re-served synchronously at its
/// recorded `BatchPin` — the reference matrix advanced to the pinned
/// `matrix_version`, the pinned `sum_version`'s snapshot re-attached
/// via `RecommendRequest::emotion_override`. The streamed bytes must
/// match exactly; any divergence fails the run's parity bit (which
/// `bench_scenarios` wires into its exit code). Responses flagged
/// `degraded` (kDegrade deadline pressure) are instead re-served
/// against the reference's `RecommendFallback` at the same pin — the
/// popularity fallback tier is deterministic too, just not the full
/// blend.
///
/// ## SLO semantics
///
/// A scenario *passes* its SLO when all of the following hold on the
/// quiesced stats: end-to-end p99 is within `SloConfig::p99_ms`; the
/// fraction of read submissions refused (rejected) or dropped (shed)
/// is within `SloConfig::max_shed_fraction`; and every sampled parity
/// check matched. The latency/shed verdict is *reported* (host-perf
/// dependent); the parity verdict is the correctness gate.

namespace spa::workload {

/// \brief Which serving deployment the scenario replays against.
enum class BackendKind {
  kPipeline,  ///< one engine behind one async ServingPipeline
  kRouter,    ///< sharded: ownership directory + worker replicas
};

const char* BackendName(BackendKind kind);

/// \brief The gate a scenario run is graded against.
struct SloConfig {
  /// End-to-end p99 bound, milliseconds (admission -> completion).
  double p99_ms = 250.0;
  /// Max fraction of read submissions rejected or shed.
  double max_shed_fraction = 0.05;
  /// Serve tickets sampled for the differential parity check (every
  /// Nth serve event so the sample spans the whole timeline).
  size_t parity_samples = 64;
};

/// \brief Deployment + pacing tunables of one runner.
struct RunnerConfig {
  BackendKind backend = BackendKind::kPipeline;

  // ---- deployment ---------------------------------------------------------
  size_t router_workers = 2;    ///< worker replicas (kRouter)
  size_t pipeline_workers = 4;  ///< drain threads (kPipeline; kRouter
                                ///< uses 1 per replica)
  size_t queue_capacity = 512;
  size_t writer_queue_capacity = 256;
  /// Overload policy of the pipeline backend (the router forces
  /// kBlock on its replicas; see serving_router.h).
  recsys::BackpressurePolicy policy =
      recsys::BackpressurePolicy::kShedOldest;
  size_t max_batch = 16;
  size_t interaction_shards = 8;
  size_t k = 10;  ///< items per recommendation
  /// Per-request serve deadline in milliseconds (pipeline backend
  /// only; 0 = none). Under kDegrade, reads that cannot make their
  /// deadline are fallback-served (flagged `degraded`) or — once
  /// expired — dropped; other policies ignore deadlines.
  double deadline_ms = 0.0;

  // ---- pacing -------------------------------------------------------------
  /// Offered load as a fraction of the calibrated mix-weighted
  /// capacity (0.7 = healthy utilization; > 1 = overload).
  double offered_fraction = 0.7;
  /// Floor on the offered rate — a backstop against degenerate
  /// calibration, kept low enough that the peak-block budget wins at
  /// 100k+ users (a floor above the sustainable rate forces the very
  /// overload the pacing exists to avoid).
  double min_rps = 50.0;
  /// Requests served sequentially on the reference engine to estimate
  /// serve capacity (kept off the live deployment so its histograms
  /// and cache counters only see the replay). Writer-lane costs —
  /// interaction applies with index refresh, SUM snapshot publishes —
  /// are probed on a throwaway replica and folded into the offered
  /// rate by the stream's actual event mix: at scale the writer lane,
  /// not serving, is usually the capacity ceiling.
  size_t calibration_requests = 200;

  /// Threads handed to ScenarioGenerator::Generate (the stream is
  /// bitwise-identical regardless).
  size_t generate_threads = 4;

  SloConfig slo;
};

/// \brief Everything one scenario run reports into the matrix.
struct ScenarioOutcome {
  std::string scenario;
  std::string backend;
  size_t users = 0;
  size_t events = 0;
  uint64_t stream_fingerprint = 0;

  // ---- throughput / latency ----------------------------------------------
  double offered_rps = 0.0;   ///< target open-loop arrival rate
  double achieved_rps = 0.0;  ///< completions / wall
  double p50_ms = 0.0;        ///< end-to-end latency quantiles
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Raw end-to-end histogram (seconds; merged across workers for the
  /// router backend) so consumers can export their own quantiles.
  spa::LogHistogram end_to_end;

  // ---- admission ----------------------------------------------------------
  uint64_t submitted = 0;
  uint64_t responses = 0;
  uint64_t updates_applied = 0;
  uint64_t rejected_reads = 0;
  uint64_t rejected_writes = 0;
  uint64_t shed_reads = 0;
  uint64_t shed_writes = 0;
  /// kDegrade shed-quality split: degraded (popularity fallback)
  /// responses actually served, vs reads dropped with a status because
  /// their deadline had already expired (a subset of shed_reads).
  uint64_t fallback_served = 0;
  uint64_t expired_drops = 0;
  uint64_t max_queue_depth = 0;
  uint64_t max_writer_queue_depth = 0;
  double cache_hit_rate = 0.0;

  // ---- verdicts -----------------------------------------------------------
  size_t parity_checked = 0;  ///< sampled responses actually compared
  bool parity = true;         ///< every sampled comparison matched
  bool slo_pass = false;      ///< p99 + shed budget + parity
  /// Non-OK when the run could not complete at all (fit failure,
  /// submission error); parity/slo are then meaningless.
  spa::Status status;
};

/// \brief Replays scenarios against a serving deployment and grades
/// them. Stateless between runs; one `Run` call per scenario.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(RunnerConfig config = {});

  const RunnerConfig& config() const { return config_; }

  /// Generates, boots, replays, parity-checks and grades one scenario.
  /// Never throws; hard failures land in `ScenarioOutcome::status`.
  ScenarioOutcome Run(const ScenarioConfig& scenario) const;

 private:
  RunnerConfig config_;
};

}  // namespace spa::workload

#endif  // SPA_WORKLOAD_SCENARIO_RUNNER_H_
