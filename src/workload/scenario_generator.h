#ifndef SPA_WORKLOAD_SCENARIO_GENERATOR_H_
#define SPA_WORKLOAD_SCENARIO_GENERATOR_H_

#include <utility>
#include <vector>

#include "workload/scenario.h"

/// \file
/// Deterministic scenario generator: expands a `ScenarioConfig` into
/// the bootstrap state of the synthetic population (interaction
/// history + initial emotional sensibilities) and the replayable event
/// stream.
///
/// ## Determinism contract
///
/// The virtual timeline is cut into fixed `config.block`-sized blocks
/// and every block's events are a pure function of
/// `(seed, config, block index)` — each block seeds its own
/// `spa::Rng(seed, stream = block + 1)` and never reads another
/// block's state. `Generate(threads)` only parallelizes *which thread
/// computes which block*; the concatenation (and the `seq` numbering
/// assigned over it) is bitwise-identical for every thread count. The
/// golden-value and thread-sweep tests in
/// `tests/workload/scenario_generator_test.cc` pin this.
///
/// ## Population shape
///
/// Users come in cohorts of `cohort_users` sharing a `cohort_items`
/// catalog slice (bounded-overlap communities: similarity postings
/// stay cohort-sized, so KNN index builds stay linear in users at
/// 100k–1M scale). Cohort popularity is Zipf over the *active* cohort
/// range — the oldest active cohort is the hottest — user activity is
/// Zipf within the cohort, and item popularity is Zipf within the
/// cohort's slice. Churn moves the active window: arrivals append
/// cold cohorts (no bootstrap history, no SUM entry — real cold
/// start), retirement drops the oldest.

namespace spa::workload {

class ScenarioGenerator {
 public:
  /// Validates and captures the config (SPA_CHECK on nonsensical
  /// values: zero users/cohorts, block > duration, fractions outside
  /// range, Zipf exponents <= 1).
  explicit ScenarioGenerator(ScenarioConfig config);

  const ScenarioConfig& config() const { return config_; }

  size_t cohort_count() const { return cohort_count_; }
  size_t item_count() const { return cohort_count_ * config_.cohort_items; }
  size_t block_count() const { return block_count_; }

  /// Users active (serving targets) at virtual time `t`, as the
  /// half-open id window [first, second). Cohort-granular.
  std::pair<UserId, UserId> ActiveWindow(spa::TimeMicros t) const;

  /// Arrival-rate modulation of one block (diurnal x flash crowds),
  /// before normalization; proportional to the block's expected event
  /// count.
  double RateWeight(size_t block) const;

  /// Bootstrap interaction history of the initially-active population
  /// (cohort-local Zipf item popularity). Deterministic.
  std::vector<recsys::Interaction> BootstrapInteractions() const;

  /// Initial SUM sensibilities of the initially-active population
  /// (sparse: ~30% of attributes per user). Deterministic.
  std::vector<EmotionShift> BootstrapEmotions() const;

  /// The full event stream, sorted by (time, seq) with seq = stream
  /// position. Bitwise-identical for every `threads` value (0 = use
  /// hardware concurrency).
  std::vector<ScenarioEvent> Generate(size_t threads = 1) const;

  /// One block's events (sorted by time, seq not yet assigned) — the
  /// pure function `Generate` maps over blocks.
  std::vector<ScenarioEvent> GenerateBlock(size_t block) const;

 private:
  /// Expected event count of `block` (target_events apportioned by
  /// normalized rate weight).
  double BlockMean(size_t block) const;

  ScenarioConfig config_;
  size_t cohort_count_ = 0;
  size_t block_count_ = 0;
  double weight_sum_ = 0.0;
};

}  // namespace spa::workload

#endif  // SPA_WORKLOAD_SCENARIO_GENERATOR_H_
