#include "workload/scenario_generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace spa::workload {

namespace {

/// Dedicated Rng streams for the bootstrap passes; block b uses
/// stream b + 1, so these live far outside any plausible block range.
constexpr uint64_t kBootstrapInteractionsStream = 0xB007'0000'0000'0001ULL;
constexpr uint64_t kBootstrapEmotionsStream = 0xB007'0000'0000'0002ULL;

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Poisson draw that stays well-conditioned for large means (Knuth's
/// product method underflows past ~700); the normal approximation is
/// indistinguishable for workload sizing above mean ~32.
uint64_t SampleCount(Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  if (mean <= 32.0) return static_cast<uint64_t>(rng.Poisson(mean));
  const double draw = rng.Normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(draw));
}

}  // namespace

ScenarioGenerator::ScenarioGenerator(ScenarioConfig config)
    : config_(std::move(config)) {
  SPA_CHECK_MSG(config_.users > 0, "scenario needs users");
  SPA_CHECK_MSG(config_.cohort_users > 0 && config_.cohort_items > 0,
                "scenario cohorts need users and items");
  SPA_CHECK_MSG(config_.duration > 0 && config_.block > 0 &&
                    config_.block <= config_.duration,
                "scenario block must divide a positive duration");
  SPA_CHECK_MSG(config_.interaction_fraction >= 0.0 &&
                    config_.sum_update_fraction >= 0.0 &&
                    config_.interaction_fraction +
                            config_.sum_update_fraction <
                        1.0,
                "event mix fractions must leave room for serves");
  SPA_CHECK_MSG(config_.diurnal_amplitude >= 0.0 &&
                    config_.diurnal_amplitude < 1.0,
                "diurnal amplitude must be in [0, 1)");
  SPA_CHECK_MSG(config_.cohort_skew > 1.0 && config_.user_skew > 1.0 &&
                    config_.item_skew > 1.0,
                "Zipf exponents must be > 1 (see Rng::Zipf)");
  SPA_CHECK_MSG(config_.churn.initial_active > 0.0 &&
                    config_.churn.initial_active <= 1.0,
                "some of the population must start active");
  SPA_CHECK_MSG(config_.interaction_batch > 0,
                "interaction bursts need a batch size");
  cohort_count_ =
      (config_.users + config_.cohort_users - 1) / config_.cohort_users;
  block_count_ = static_cast<size_t>(
      (config_.duration + config_.block - 1) / config_.block);
  weight_sum_ = 0.0;
  for (size_t b = 0; b < block_count_; ++b) weight_sum_ += RateWeight(b);
  SPA_CHECK(weight_sum_ > 0.0);
}

std::pair<UserId, UserId> ScenarioGenerator::ActiveWindow(
    spa::TimeMicros t) const {
  const double days = static_cast<double>(t) /
                      static_cast<double>(spa::kMicrosPerDay);
  const double population = static_cast<double>(config_.users);
  const auto arrived_users = static_cast<size_t>(std::min(
      population,
      static_cast<double>(std::llround(
          population * (config_.churn.initial_active +
                        config_.churn.arrivals_per_day * days)))));
  const auto retired_users = static_cast<size_t>(std::llround(
      population * config_.churn.retirements_per_day * days));
  // Cohort-granular: a cohort is active once its first user arrived,
  // and at least one cohort always stays active.
  size_t end_cohort = std::clamp<size_t>(
      (arrived_users + config_.cohort_users - 1) / config_.cohort_users,
      1, cohort_count_);
  size_t first_cohort =
      std::min(retired_users / config_.cohort_users, end_cohort - 1);
  const UserId first =
      static_cast<UserId>(first_cohort * config_.cohort_users);
  const UserId last = static_cast<UserId>(
      std::min(end_cohort * config_.cohort_users, config_.users));
  return {first, last};
}

double ScenarioGenerator::RateWeight(size_t block) const {
  const spa::TimeMicros tmid =
      static_cast<spa::TimeMicros>(block) * config_.block +
      config_.block / 2;
  const double tod = static_cast<double>(tmid % spa::kMicrosPerDay) /
                     static_cast<double>(spa::kMicrosPerDay);
  double weight = 1.0 + config_.diurnal_amplitude *
                            std::sin(kTwoPi * tod - kTwoPi / 4.0);
  const double frac = static_cast<double>(tmid) /
                      static_cast<double>(config_.duration);
  for (const FlashCrowdSpec& crowd : config_.flash_crowds) {
    if (frac >= crowd.start && frac < crowd.start + crowd.duration) {
      weight *= crowd.multiplier;
    }
  }
  return std::max(weight, 0.05);
}

double ScenarioGenerator::BlockMean(size_t block) const {
  return static_cast<double>(config_.target_events) * RateWeight(block) /
         weight_sum_;
}

std::vector<recsys::Interaction>
ScenarioGenerator::BootstrapInteractions() const {
  Rng rng(config_.seed, kBootstrapInteractionsStream);
  const auto [first, last] = ActiveWindow(0);
  std::vector<recsys::Interaction> log;
  log.reserve(static_cast<size_t>(last - first) *
              config_.history_per_user);
  for (UserId u = first; u < last; ++u) {
    const size_t cohort =
        static_cast<size_t>(u) / config_.cohort_users;
    for (size_t j = 0; j < config_.history_per_user; ++j) {
      const auto item = static_cast<ItemId>(
          cohort * config_.cohort_items +
          static_cast<size_t>(
              rng.Zipf(static_cast<int64_t>(config_.cohort_items),
                       config_.item_skew) -
              1));
      log.push_back({u, item, rng.Uniform(0.2, 3.0)});
    }
  }
  return log;
}

std::vector<EmotionShift> ScenarioGenerator::BootstrapEmotions() const {
  Rng rng(config_.seed, kBootstrapEmotionsStream);
  const auto [first, last] = ActiveWindow(0);
  std::vector<EmotionShift> shifts;
  for (UserId u = first; u < last; ++u) {
    for (eit::EmotionalAttribute attr : eit::AllEmotionalAttributes()) {
      if (rng.Bernoulli(0.3)) {
        shifts.push_back({u, attr, EmotionShift::Op::kSetSensibility,
                          rng.Uniform(0.3, 1.0)});
      }
    }
  }
  return shifts;
}

std::vector<ScenarioEvent> ScenarioGenerator::GenerateBlock(
    size_t block) const {
  SPA_CHECK(block < block_count_);
  Rng rng(config_.seed, /*stream=*/block + 1);
  const spa::TimeMicros t0 =
      static_cast<spa::TimeMicros>(block) * config_.block;
  const spa::TimeMicros t_end =
      std::min(t0 + config_.block, config_.duration);

  const uint64_t count = SampleCount(rng, BlockMean(block));
  std::vector<ScenarioEvent> events;
  events.reserve(count);

  // Cohort-granular picks; a possibly-partial tail cohort caps the
  // within-cohort ranks.
  const auto cohort_size = [this](size_t cohort) {
    return std::min(config_.cohort_users,
                    config_.users - cohort * config_.cohort_users);
  };
  const auto pick_user = [&](size_t cohort) {
    const auto size = static_cast<int64_t>(cohort_size(cohort));
    return static_cast<UserId>(
        cohort * config_.cohort_users +
        static_cast<size_t>(rng.Zipf(size, config_.user_skew) - 1));
  };

  for (uint64_t i = 0; i < count; ++i) {
    ScenarioEvent event;
    event.time =
        t0 + static_cast<spa::TimeMicros>(rng.UniformInt(
                 0, static_cast<int64_t>(t_end - t0) - 1));

    const auto [first, last] = ActiveWindow(event.time);
    const size_t first_cohort =
        static_cast<size_t>(first) / config_.cohort_users;
    const size_t active_cohorts = std::max<size_t>(
        (static_cast<size_t>(last - first) + config_.cohort_users - 1) /
            config_.cohort_users,
        1);
    // Oldest active cohort = hottest (established communities carry
    // the traffic; fresh cold-start cohorts sit in the Zipf tail).
    const auto pick_cohort = [&] {
      return first_cohort +
             static_cast<size_t>(
                 rng.Zipf(static_cast<int64_t>(active_cohorts),
                          config_.cohort_skew) -
                 1);
    };

    // Storm window active at this instant? (First matching spec wins;
    // specs are checked in declaration order.)
    const double frac = static_cast<double>(event.time) /
                        static_cast<double>(config_.duration);
    const EmotionStormSpec* storm = nullptr;
    for (const EmotionStormSpec& spec : config_.storms) {
      if (frac >= spec.start && frac < spec.start + spec.duration) {
        storm = &spec;
        break;
      }
    }

    const double sum_weight =
        config_.sum_update_fraction * (storm != nullptr ? storm->intensity
                                                        : 1.0);
    const double serve_weight =
        1.0 - config_.interaction_fraction - config_.sum_update_fraction;
    const double total =
        serve_weight + config_.interaction_fraction + sum_weight;
    const double draw = rng.Uniform() * total;

    if (draw < serve_weight) {
      event.kind = EventKind::kServe;
      event.user = pick_user(pick_cohort());
    } else if (draw < serve_weight + config_.interaction_fraction) {
      event.kind = EventKind::kInteraction;
      const size_t cohort = pick_cohort();
      event.interactions.reserve(config_.interaction_batch);
      for (size_t j = 0; j < config_.interaction_batch; ++j) {
        const auto item = static_cast<ItemId>(
            cohort * config_.cohort_items +
            static_cast<size_t>(
                rng.Zipf(static_cast<int64_t>(config_.cohort_items),
                         config_.item_skew) -
                1));
        event.interactions.push_back(
            {pick_user(cohort), item, rng.Uniform(0.2, 3.0)});
      }
    } else {
      event.kind = EventKind::kSumUpdate;
      if (storm != nullptr) {
        // Correlated campaign wave: every shift pushes the storm's
        // attribute, aimed at the hottest active cohorts.
        const size_t targets = std::max<size_t>(
            static_cast<size_t>(std::llround(
                storm->cohort_fraction *
                static_cast<double>(active_cohorts))),
            1);
        event.shifts.reserve(storm->wave_size);
        for (size_t j = 0; j < storm->wave_size; ++j) {
          const size_t cohort =
              first_cohort +
              static_cast<size_t>(rng.UniformInt(
                  0, static_cast<int64_t>(targets) - 1));
          event.shifts.push_back(
              {pick_user(cohort), storm->attribute,
               EmotionShift::Op::kReward,
               storm->magnitude * rng.Uniform(0.75, 1.25)});
        }
      } else {
        // Baseline emotional drift: one user, one random attribute.
        const auto attrs = eit::AllEmotionalAttributes();
        event.shifts.push_back(
            {pick_user(pick_cohort()),
             attrs[static_cast<size_t>(rng.UniformInt(
                 0, static_cast<int64_t>(attrs.size()) - 1))],
             EmotionShift::Op::kReward, rng.Uniform(0.05, 0.3)});
      }
    }
    events.push_back(std::move(event));
  }

  // Stable by time: equal-time events keep generation order, so the
  // block is a deterministic, totally ordered slice of the stream.
  std::stable_sort(events.begin(), events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

std::vector<ScenarioEvent> ScenarioGenerator::Generate(
    size_t threads) const {
  std::vector<std::vector<ScenarioEvent>> blocks(block_count_);
  if (threads == 1) {
    for (size_t b = 0; b < block_count_; ++b) {
      blocks[b] = GenerateBlock(b);
    }
  } else {
    ThreadPool pool(threads);
    ParallelFor(&pool, block_count_,
                [&](size_t b) { blocks[b] = GenerateBlock(b); });
  }
  size_t total = 0;
  for (const auto& b : blocks) total += b.size();
  std::vector<ScenarioEvent> stream;
  stream.reserve(total);
  uint64_t seq = 0;
  for (auto& b : blocks) {
    for (ScenarioEvent& event : b) {
      event.seq = seq++;
      stream.push_back(std::move(event));
    }
  }
  return stream;
}

}  // namespace spa::workload
