#include "workload/scenario_runner.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "recsys/engine.h"
#include "recsys/interaction_matrix.h"
#include "recsys/knn_cf.h"
#include "recsys/popularity.h"
#include "recsys/router/serving_router.h"
#include "sum/sum_service.h"
#include "workload/scenario_generator.h"

namespace spa::workload {

namespace {

using Clock = std::chrono::steady_clock;

/// Rng streams of the runner's own deterministic choices; far outside
/// the generator's block range.
constexpr uint64_t kProfileStream = 0xCAFE'0000'0000'0001ULL;
constexpr uint64_t kCalibrationStream = 0xCAFE'0000'0000'0002ULL;

/// Shifts -> SumUpdates, merging consecutive same-user shifts into one
/// update (a storm wave touching a user twice is one model mutation).
std::vector<sum::SumUpdate> MaterializeShifts(
    const std::vector<EmotionShift>& shifts,
    const sum::AttributeCatalog& catalog) {
  std::vector<sum::SumUpdate> updates;
  for (const EmotionShift& shift : shifts) {
    if (updates.empty() ||
        updates.back().user() != static_cast<sum::UserId>(shift.user)) {
      updates.emplace_back(static_cast<sum::UserId>(shift.user));
    }
    const sum::AttributeId attr = catalog.EmotionalId(shift.attribute);
    if (shift.op == EmotionShift::Op::kSetSensibility) {
      updates.back().SetSensibility(attr, shift.amount);
    } else {
      updates.back().Reward(attr, shift.amount);
    }
  }
  return updates;
}

/// Bitwise response comparison (same contract as the parity gates in
/// bench_serving and the router tests: item ids and exact scores).
bool SameResponse(const recsys::RecommendResponse& a,
                  const recsys::RecommendResponse& b) {
  if (a.user != b.user || a.degraded != b.degraded ||
      a.items.size() != b.items.size()) {
    return false;
  }
  for (size_t i = 0; i < a.items.size(); ++i) {
    if (a.items[i].item != b.items[i].item ||
        a.items[i].score != b.items[i].score) {
      return false;
    }
  }
  return true;
}

/// One retained writer op: what was submitted plus the ticket that
/// reports where it landed in the version staircase.
struct WriteRecord {
  bool is_sum = false;
  std::vector<recsys::Interaction> interactions;
  std::vector<sum::SumUpdate> updates;
  recsys::StreamTicketPtr ticket;  ///< pipeline writes + routed SUMs
  std::optional<recsys::FanoutTicket> fanout;  ///< routed interactions
};

/// One sampled serve: the request bytes plus the streamed ticket.
struct SampleRecord {
  recsys::RecommendRequest request;
  recsys::StreamTicketPtr ticket;
};

}  // namespace

const char* BackendName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPipeline:
      return "pipeline";
    case BackendKind::kRouter:
      return "router";
  }
  return "unknown";
}

ScenarioRunner::ScenarioRunner(RunnerConfig config)
    : config_(std::move(config)) {}

ScenarioOutcome ScenarioRunner::Run(const ScenarioConfig& scenario) const {
  ScenarioOutcome out;
  out.scenario = scenario.name;
  out.backend = BackendName(config_.backend);
  out.users = scenario.users;

  ScenarioGenerator generator(scenario);
  const std::vector<ScenarioEvent> events =
      generator.Generate(config_.generate_threads);
  out.events = events.size();
  out.stream_fingerprint = StreamFingerprint(events);

  // ---- bootstrap: population state every deployment starts from ----------
  const std::vector<recsys::Interaction> bootstrap_log =
      generator.BootstrapInteractions();
  sum::AttributeCatalog catalog =
      sum::AttributeCatalog::EmagisterDefault();
  const std::vector<sum::SumUpdate> bootstrap_updates =
      MaterializeShifts(generator.BootstrapEmotions(), catalog);

  sum::SumService sums(&catalog);
  if (!sums.ApplyAll(bootstrap_updates).ok()) {
    out.status = spa::Status::Internal("SUM bootstrap failed");
    return out;
  }

  // Reference SUM replica: replays the same publishes offline and
  // retains the snapshot of every version, so any pinned sum_version
  // can be re-attached to a reference request via emotion_override.
  sum::SumService ref_sums(&catalog);
  if (!ref_sums.ApplyAll(bootstrap_updates).ok()) {
    out.status = spa::Status::Internal("reference SUM bootstrap failed");
    return out;
  }
  std::map<uint64_t, sum::SumSnapshotPtr> sum_snapshots;
  sum_snapshots[ref_sums.version()] = ref_sums.snapshot();

  // The stack every replica and the reference assemble identically
  // (ItemKNN + popularity: cohort-local postings keep index builds
  // linear in users, the scale axis this harness sweeps).
  const size_t items = generator.item_count();
  const uint64_t seed = scenario.seed;
  const auto stack_builder = [seed, items](recsys::RecsysEngine& engine) {
    engine.AddComponent(std::make_unique<recsys::ItemKnnRecommender>(),
                        0.6);
    engine.AddComponent(
        std::make_unique<recsys::PopularityRecommender>(), 0.4);
    Rng profile_rng(seed, kProfileStream);
    for (size_t i = 0; i < items; ++i) {
      recsys::EmotionProfile profile{};
      for (double& p : profile) p = profile_rng.Uniform();
      engine.SetItemEmotionProfile(static_cast<recsys::ItemId>(i),
                                   profile);
    }
  };

  recsys::EngineConfig engine_config;
  engine_config.interaction_shards = config_.interaction_shards;
  engine_config.response_cache_capacity = size_t{1} << 15;

  // Reference engine: caches off, no SUM service wired — every
  // reference serve re-pins its snapshot explicitly.
  recsys::InteractionMatrix ref_matrix(config_.interaction_shards);
  for (const recsys::Interaction& it : bootstrap_log) {
    ref_matrix.Add(it.user, it.item, it.weight);
  }
  recsys::EngineConfig ref_config = engine_config;
  ref_config.response_cache_capacity = 0;
  recsys::RecsysEngine reference(ref_config);
  stack_builder(reference);
  {
    const spa::Status fitted = reference.Fit(&ref_matrix);
    if (!fitted.ok()) {
      out.status = fitted;
      return out;
    }
  }

  // ---- calibration (on the reference: the live deployment's
  // histograms and cache counters must only see the replay) ----------------
  const auto [active_first, active_last] = generator.ActiveWindow(0);
  double sequential_rps;
  {
    Rng cal_rng(seed, kCalibrationStream);
    const sum::SumSnapshotPtr& boot_snapshot =
        sum_snapshots.begin()->second;
    const auto start = Clock::now();
    for (size_t i = 0; i < config_.calibration_requests; ++i) {
      recsys::RecommendRequest request;
      request.user = active_first +
                     cal_rng.UniformInt(
                         0, static_cast<int64_t>(active_last) -
                                static_cast<int64_t>(active_first) - 1);
      request.k = config_.k;
      request.emotion_override = boot_snapshot;
      (void)reference.Recommend(request);
    }
    const double seconds = SecondsSince(start);
    sequential_rps = seconds > 0.0
                         ? static_cast<double>(
                               config_.calibration_requests) /
                               seconds
                         : config_.min_rps;
  }
  // Write-cost probes on a *throwaway* replica: interaction applies
  // refresh similarity indexes and SUM publishes copy the versioned
  // model map, so at 100k+ users the writer lane — not serving — is
  // usually the capacity ceiling. The probes must not touch the
  // reference (its version staircase is the parity baseline) or the
  // live deployment (not built yet, and its state must equal the
  // reference's), so they run against a disposable bootstrap copy.
  double interaction_apply_seconds = 0.0;
  double sum_publish_seconds = 0.0;
  {
    constexpr size_t kWriteProbes = 3;
    std::vector<const ScenarioEvent*> inter_probes;
    std::vector<const ScenarioEvent*> sum_probes;
    for (const ScenarioEvent& event : events) {
      if (event.kind == EventKind::kInteraction &&
          inter_probes.size() < kWriteProbes) {
        inter_probes.push_back(&event);
      } else if (event.kind == EventKind::kSumUpdate &&
                 sum_probes.size() < kWriteProbes) {
        sum_probes.push_back(&event);
      }
    }
    if (!inter_probes.empty()) {
      recsys::InteractionMatrix probe_matrix(config_.interaction_shards);
      for (const recsys::Interaction& it : bootstrap_log) {
        probe_matrix.Add(it.user, it.item, it.weight);
      }
      recsys::RecsysEngine probe_engine(ref_config);
      stack_builder(probe_engine);
      if (probe_engine.Fit(&probe_matrix).ok()) {
        const auto start = Clock::now();
        for (const ScenarioEvent* event : inter_probes) {
          (void)probe_engine.ApplyInteractions(event->interactions);
        }
        interaction_apply_seconds =
            SecondsSince(start) /
            static_cast<double>(inter_probes.size());
      }
    }
    if (!sum_probes.empty()) {
      sum::SumService probe_sums(&catalog);
      if (probe_sums.ApplyAll(bootstrap_updates).ok()) {
        const auto start = Clock::now();
        for (const ScenarioEvent* event : sum_probes) {
          (void)probe_sums.ApplyAll(
              MaterializeShifts(event->shifts, catalog));
        }
        sum_publish_seconds =
            SecondsSince(start) /
            static_cast<double>(sum_probes.size());
      }
    }
  }

  const size_t drain_threads = config_.backend == BackendKind::kPipeline
                                   ? std::max<size_t>(
                                         config_.pipeline_workers, 1)
                                   : std::max<size_t>(
                                         config_.router_workers, 1);
  // Mix-weighted sustainable rate, sized off the *costliest block*:
  // open-loop pacing preserves burst shape, so the flash-crowd and
  // storm windows concentrate load — a mean-rate budget overloads
  // exactly those windows (fatal for the router, whose kBlock
  // replicas turn transients into queueing latency, not sheds).
  // Serves scale across the drain threads; writer-lane applies are
  // effectively serialized per deployment (the router fans
  // interactions to every replica, which apply in parallel, so one
  // apply's wall cost still bounds it).
  const double serve_seconds =
      sequential_rps > 0.0 ? 1.0 / sequential_rps : 0.0;
  double max_block_seconds = 0.0;
  {
    const size_t blocks = generator.block_count();
    std::vector<double> block_seconds(blocks, 0.0);
    for (const ScenarioEvent& event : events) {
      const size_t b = std::min(
          static_cast<size_t>(event.time / scenario.block), blocks - 1);
      switch (event.kind) {
        case EventKind::kServe:
          block_seconds[b] +=
              serve_seconds / static_cast<double>(drain_threads);
          break;
        case EventKind::kInteraction:
          block_seconds[b] += interaction_apply_seconds;
          break;
        case EventKind::kSumUpdate:
          block_seconds[b] += sum_publish_seconds;
          break;
      }
    }
    for (const double seconds : block_seconds) {
      max_block_seconds = std::max(max_block_seconds, seconds);
    }
    // Every block gets an equal wall slice, so the whole replay is
    // paced such that even the peak block stays within the offered
    // utilization fraction.
  }
  const double sustainable_rps =
      max_block_seconds > 0.0
          ? static_cast<double>(events.size()) /
                (static_cast<double>(generator.block_count()) *
                 max_block_seconds)
          : config_.min_rps;
  out.offered_rps =
      std::max(config_.min_rps,
               sustainable_rps * config_.offered_fraction);

  // ---- deployment ---------------------------------------------------------
  std::unique_ptr<recsys::InteractionMatrix> live_matrix;
  std::unique_ptr<recsys::RecsysEngine> live_engine;
  std::unique_ptr<recsys::ServingPipeline> pipeline;
  std::unique_ptr<recsys::ServingRouter> router;
  if (config_.backend == BackendKind::kPipeline) {
    live_matrix = std::make_unique<recsys::InteractionMatrix>(
        config_.interaction_shards);
    for (const recsys::Interaction& it : bootstrap_log) {
      live_matrix->Add(it.user, it.item, it.weight);
    }
    live_engine = std::make_unique<recsys::RecsysEngine>(engine_config);
    stack_builder(*live_engine);
    live_engine->set_sum_service(&sums);
    const spa::Status fitted = live_engine->Fit(live_matrix.get());
    if (!fitted.ok()) {
      out.status = fitted;
      return out;
    }
    recsys::PipelineConfig pconfig;
    pconfig.workers = config_.pipeline_workers;
    pconfig.queue_capacity = config_.queue_capacity;
    pconfig.writer_queue_capacity = config_.writer_queue_capacity;
    pconfig.policy = config_.policy;
    pconfig.max_batch = config_.max_batch;
    pipeline = std::make_unique<recsys::ServingPipeline>(
        live_engine.get(), &sums, pconfig);
  } else {
    recsys::RouterConfig rconfig;
    rconfig.workers = config_.router_workers;
    rconfig.engine = engine_config;
    rconfig.queue.workers = 1;  // node count is the scaling axis
    rconfig.queue.queue_capacity = config_.queue_capacity;
    rconfig.queue.writer_queue_capacity = config_.writer_queue_capacity;
    rconfig.queue.max_batch = config_.max_batch;
    rconfig.stack_builder = stack_builder;
    auto created =
        recsys::ServingRouter::Create(rconfig, bootstrap_log, &sums);
    if (!created.ok()) {
      out.status = created.status();
      return out;
    }
    router = std::move(created).value();
  }

  // ---- open-loop replay ---------------------------------------------------
  // The virtual timeline is compressed onto a wall budget sized from
  // the offered rate; deadlines are proportional to virtual time, so
  // flash crowds and storm windows keep their burst shape instead of
  // being flattened into a uniform arrival train.
  const double wall_budget = events.empty()
                                 ? 0.0
                                 : static_cast<double>(events.size()) /
                                       out.offered_rps;
  const double wall_per_virtual =
      wall_budget / static_cast<double>(scenario.duration);

  size_t serve_events = 0;
  for (const ScenarioEvent& event : events) {
    if (event.kind == EventKind::kServe) ++serve_events;
  }
  const size_t stride = std::max<size_t>(
      config_.slo.parity_samples > 0
          ? serve_events / config_.slo.parity_samples
          : serve_events + 1,
      1);

  std::vector<WriteRecord> writes;
  std::vector<SampleRecord> samples;
  samples.reserve(config_.slo.parity_samples);
  size_t serve_index = 0;
  const auto replay_start = Clock::now();
  for (const ScenarioEvent& event : events) {
    const auto deadline =
        replay_start +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                static_cast<double>(event.time) * wall_per_virtual));
    std::this_thread::sleep_until(deadline);
    switch (event.kind) {
      case EventKind::kServe: {
        recsys::RecommendRequest request;
        request.user = event.user;
        request.k = config_.k;
        const bool sampled =
            serve_index % stride == 0 &&
            samples.size() < config_.slo.parity_samples;
        ++serve_index;
        // Deadlines only reach the pipeline backend (the router forces
        // kBlock on its replicas, which ignores them anyway).
        auto ticket = pipeline != nullptr
                          ? pipeline->SubmitWithDeadline(
                                request, config_.deadline_ms * 1e-3)
                          : router->Submit(request);
        if (ticket.ok() && sampled) {
          samples.push_back({request, std::move(ticket).value()});
        }
        break;
      }
      case EventKind::kInteraction: {
        WriteRecord record;
        record.interactions = event.interactions;
        if (pipeline != nullptr) {
          auto ticket = pipeline->SubmitInteractions(event.interactions);
          if (!ticket.ok()) break;
          record.ticket = std::move(ticket).value();
        } else {
          auto fanout = router->SubmitInteractions(event.interactions);
          if (!fanout.ok()) break;
          record.fanout = std::move(fanout).value();
        }
        writes.push_back(std::move(record));
        break;
      }
      case EventKind::kSumUpdate: {
        WriteRecord record;
        record.is_sum = true;
        record.updates = MaterializeShifts(event.shifts, catalog);
        auto ticket = pipeline != nullptr
                          ? pipeline->SubmitSumUpdates(record.updates)
                          : router->SubmitSumUpdates(record.updates);
        if (!ticket.ok()) break;
        record.ticket = std::move(ticket).value();
        writes.push_back(std::move(record));
        break;
      }
    }
  }
  if (pipeline != nullptr) {
    pipeline->Flush();
  } else {
    router->Flush();
  }
  const double wall_seconds = SecondsSince(replay_start);

  // ---- quiesced stats -----------------------------------------------------
  recsys::PipelineStats stats;
  recsys::EngineCacheStats cache;
  if (pipeline != nullptr) {
    stats = pipeline->stats();
    cache = live_engine->cache_stats();
  } else {
    const recsys::RouterStats rstats = router->stats();
    for (const recsys::RouterWorkerStats& ws : rstats.workers) {
      stats.submitted += ws.pipeline.submitted;
      stats.responses += ws.pipeline.responses;
      stats.updates_applied += ws.pipeline.updates_applied;
      stats.rejected_reads += ws.pipeline.rejected_reads;
      stats.rejected_writes += ws.pipeline.rejected_writes;
      stats.shed_reads += ws.pipeline.shed_reads;
      stats.shed_writes += ws.pipeline.shed_writes;
      stats.fallback_served += ws.pipeline.fallback_served;
      stats.expired_drops += ws.pipeline.expired_drops;
      stats.max_queue_depth =
          std::max(stats.max_queue_depth, ws.pipeline.max_queue_depth);
      stats.max_writer_queue_depth =
          std::max(stats.max_writer_queue_depth,
                   ws.pipeline.max_writer_queue_depth);
      cache.hits += ws.cache.hits;
      cache.misses += ws.cache.misses;
    }
    stats.end_to_end = rstats.end_to_end;
  }
  out.submitted = stats.submitted;
  out.responses = stats.responses;
  out.updates_applied = stats.updates_applied;
  out.rejected_reads = stats.rejected_reads;
  out.rejected_writes = stats.rejected_writes;
  out.shed_reads = stats.shed_reads;
  out.shed_writes = stats.shed_writes;
  out.fallback_served = stats.fallback_served;
  out.expired_drops = stats.expired_drops;
  out.max_queue_depth = stats.max_queue_depth;
  out.max_writer_queue_depth = stats.max_writer_queue_depth;
  out.achieved_rps =
      wall_seconds > 0.0
          ? static_cast<double>(stats.responses +
                                stats.updates_applied) /
                wall_seconds
          : 0.0;
  out.p50_ms = stats.end_to_end.Quantile(0.50) * 1e3;
  out.p95_ms = stats.end_to_end.Quantile(0.95) * 1e3;
  out.p99_ms = stats.end_to_end.Quantile(0.99) * 1e3;
  out.end_to_end = stats.end_to_end;
  if (cache.hits + cache.misses > 0) {
    out.cache_hit_rate =
        static_cast<double>(cache.hits) /
        static_cast<double>(cache.hits + cache.misses);
  }

  // ---- differential parity replay ----------------------------------------
  // Re-apply the writer ops that actually landed, in version order,
  // then re-serve every sampled response synchronously at its pin.
  struct InteractionApply {
    uint64_t post_version = 0;
    const std::vector<recsys::Interaction>* batch = nullptr;
  };
  std::vector<InteractionApply> interaction_applies;
  std::vector<std::pair<uint64_t, const std::vector<sum::SumUpdate>*>>
      sum_applies;
  for (const WriteRecord& record : writes) {
    if (record.is_sum) {
      if (record.ticket->Wait() != recsys::TicketState::kDone ||
          !record.ticket->sum_status().ok()) {
        continue;  // shed/failed publishes never landed anywhere
      }
      sum_applies.push_back(
          {record.ticket->pinned().sum_version, &record.updates});
    } else if (record.fanout.has_value()) {
      record.fanout->Wait();
      if (!record.fanout->ok()) continue;
      interaction_applies.push_back(
          {record.fanout->matrix_version(), &record.interactions});
    } else {
      if (record.ticket->Wait() != recsys::TicketState::kDone ||
          !record.ticket->update_report().ok()) {
        continue;
      }
      interaction_applies.push_back(
          {record.ticket->pinned().matrix_version,
           &record.interactions});
    }
  }
  std::sort(interaction_applies.begin(), interaction_applies.end(),
            [](const InteractionApply& a, const InteractionApply& b) {
              return a.post_version < b.post_version;
            });
  std::sort(sum_applies.begin(), sum_applies.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // SUM staircase: the shared service serializes publishes, so the
  // post-apply versions recorded by the tickets are the exact apply
  // order; replaying in that order must reproduce every version.
  for (const auto& [version, updates] : sum_applies) {
    if (!ref_sums.ApplyAll(*updates).ok() ||
        ref_sums.version() != version) {
      out.parity = false;
      break;
    }
    sum_snapshots[version] = ref_sums.snapshot();
  }

  std::vector<const SampleRecord*> ordered;
  ordered.reserve(samples.size());
  for (const SampleRecord& sample : samples) {
    if (sample.ticket->Wait() != recsys::TicketState::kDone ||
        !sample.ticket->response().ok()) {
      continue;  // shed samples carry no response to compare
    }
    ordered.push_back(&sample);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const SampleRecord* a, const SampleRecord* b) {
              return a->ticket->pinned().matrix_version <
                     b->ticket->pinned().matrix_version;
            });

  size_t next_apply = 0;
  for (const SampleRecord* sample : ordered) {
    if (!out.parity) break;
    const recsys::BatchPin& pin = sample->ticket->pinned();
    while (next_apply < interaction_applies.size() &&
           interaction_applies[next_apply].post_version <=
               pin.matrix_version) {
      if (!reference
               .ApplyInteractions(
                   *interaction_applies[next_apply].batch)
               .ok()) {
        out.parity = false;
        break;
      }
      ++next_apply;
    }
    if (!out.parity) break;
    if (ref_matrix.version() != pin.matrix_version) {
      out.parity = false;  // pin must sit exactly on the staircase
      break;
    }
    const auto snapshot = sum_snapshots.find(pin.sum_version);
    if (snapshot == sum_snapshots.end()) {
      out.parity = false;
      break;
    }
    const recsys::RecommendResponse& streamed =
        sample->ticket->response().value();
    if (streamed.degraded) {
      // Deadline-degraded serves come from the popularity fallback
      // tier: deterministic at the pinned matrix version, independent
      // of SUM state, and flagged — never silently substituted.
      const auto expected = reference.RecommendFallback(sample->request);
      if (!expected.ok() ||
          !SameResponse(streamed, expected.value())) {
        out.parity = false;
        break;
      }
    } else {
      recsys::RecommendRequest request = sample->request;
      request.emotion_override = snapshot->second;
      const auto expected = reference.Recommend(request);
      if (!expected.ok() ||
          !SameResponse(streamed, expected.value())) {
        out.parity = false;
        break;
      }
    }
    ++out.parity_checked;
  }

  // ---- SLO verdict --------------------------------------------------------
  const uint64_t read_outcomes =
      out.responses + out.rejected_reads + out.shed_reads;
  const double shed_fraction =
      read_outcomes > 0
          ? static_cast<double>(out.rejected_reads + out.shed_reads) /
                static_cast<double>(read_outcomes)
          : 0.0;
  out.slo_pass = out.parity && out.p99_ms <= config_.slo.p99_ms &&
                 shed_fraction <= config_.slo.max_shed_fraction;
  return out;
}

}  // namespace spa::workload
