#include "workload/scenario.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"

namespace spa::workload {

bool operator==(const EmotionShift& a, const EmotionShift& b) {
  return a.user == b.user && a.attribute == b.attribute && a.op == b.op &&
         a.amount == b.amount;
}

bool operator==(const ScenarioEvent& a, const ScenarioEvent& b) {
  if (a.time != b.time || a.seq != b.seq || a.kind != b.kind ||
      a.user != b.user) {
    return false;
  }
  if (a.interactions.size() != b.interactions.size() ||
      a.shifts.size() != b.shifts.size()) {
    return false;
  }
  for (size_t i = 0; i < a.interactions.size(); ++i) {
    const recsys::Interaction& x = a.interactions[i];
    const recsys::Interaction& y = b.interactions[i];
    if (x.user != y.user || x.item != y.item || x.weight != y.weight) {
      return false;
    }
  }
  for (size_t i = 0; i < a.shifts.size(); ++i) {
    if (!(a.shifts[i] == b.shifts[i])) return false;
  }
  return true;
}

ScenarioConfig SteadyPowerLawScenario(size_t users, uint64_t seed) {
  ScenarioConfig config;
  config.name = "steady_power_law";
  config.users = users;
  config.seed = seed;
  return config;
}

ScenarioConfig FlashCrowdScenario(size_t users, uint64_t seed) {
  ScenarioConfig config;
  config.name = "flash_crowd";
  config.users = users;
  config.seed = seed;
  config.flash_crowds.push_back({/*start=*/0.45, /*duration=*/0.12,
                                 /*multiplier=*/5.0});
  return config;
}

ScenarioConfig ColdStartChurnScenario(size_t users, uint64_t seed) {
  ScenarioConfig config;
  config.name = "cold_start_churn";
  config.users = users;
  config.seed = seed;
  // 60% of the population has history at t0; over the simulated day
  // the remaining 40% arrives cold and the oldest ~20% retires.
  config.churn.initial_active = 0.6;
  config.churn.arrivals_per_day = 0.4;
  config.churn.retirements_per_day = 0.2;
  return config;
}

ScenarioConfig EmotionShiftStormScenario(size_t users, uint64_t seed) {
  ScenarioConfig config;
  config.name = "emotion_shift_storm";
  config.users = users;
  config.seed = seed;
  // Two overlapping campaign pushes against the hottest communities:
  // an "enthusiastic" midday wave and a late "impatient" counter-wave
  // — back-to-back context flips thrashing the emotional rerank stage
  // and the per-user cache invalidation path.
  config.storms.push_back({/*start=*/0.35, /*duration=*/0.25,
                           /*cohort_fraction=*/0.10, /*intensity=*/10.0,
                           eit::EmotionalAttribute::kEnthusiastic,
                           /*magnitude=*/0.9, /*wave_size=*/8});
  config.storms.push_back({/*start=*/0.62, /*duration=*/0.18,
                           /*cohort_fraction=*/0.08, /*intensity=*/8.0,
                           eit::EmotionalAttribute::kImpatient,
                           /*magnitude=*/0.7, /*wave_size=*/6});
  return config;
}

std::vector<ScenarioConfig> StandardScenarioMatrix(size_t users,
                                                   size_t target_events,
                                                   uint64_t seed) {
  std::vector<ScenarioConfig> matrix;
  matrix.push_back(SteadyPowerLawScenario(users, seed));
  matrix.push_back(FlashCrowdScenario(users, seed + 1));
  matrix.push_back(ColdStartChurnScenario(users, seed + 2));
  matrix.push_back(EmotionShiftStormScenario(users, seed + 3));
  for (ScenarioConfig& config : matrix) {
    config.target_events = target_events;
  }
  return matrix;
}

std::vector<ScenarioEvent> MergeStreams(
    std::vector<std::vector<ScenarioEvent>> streams) {
  std::vector<ScenarioEvent> merged;
  size_t total = 0;
  for (const auto& stream : streams) total += stream.size();
  merged.reserve(total);
  std::vector<size_t> heads(streams.size(), 0);
  for (size_t emitted = 0; emitted < total; ++emitted) {
    size_t best = streams.size();
    for (size_t s = 0; s < streams.size(); ++s) {
      if (heads[s] >= streams[s].size()) continue;
      if (best == streams.size()) {
        best = s;
        continue;
      }
      const ScenarioEvent& candidate = streams[s][heads[s]];
      const ScenarioEvent& incumbent = streams[best][heads[best]];
      if (candidate.time < incumbent.time ||
          (candidate.time == incumbent.time &&
           candidate.seq < incumbent.seq)) {
        best = s;
      }
    }
    merged.push_back(std::move(streams[best][heads[best]]));
    ++heads[best];
  }
  return merged;
}

namespace {

uint64_t MixU64(uint64_t h, uint64_t v) {
  return SplitMix64(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) +
                         (h >> 2)));
}

uint64_t MixDouble(uint64_t h, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return MixU64(h, bits);
}

}  // namespace

uint64_t StreamFingerprint(const std::vector<ScenarioEvent>& events) {
  uint64_t h = SplitMix64(events.size());
  for (const ScenarioEvent& e : events) {
    h = MixU64(h, static_cast<uint64_t>(e.time));
    h = MixU64(h, e.seq);
    h = MixU64(h, static_cast<uint64_t>(e.kind));
    h = MixU64(h, static_cast<uint64_t>(e.user));
    h = MixU64(h, e.interactions.size());
    for (const recsys::Interaction& it : e.interactions) {
      h = MixU64(h, static_cast<uint64_t>(it.user));
      h = MixU64(h, static_cast<uint64_t>(it.item));
      h = MixDouble(h, it.weight);
    }
    h = MixU64(h, e.shifts.size());
    for (const EmotionShift& s : e.shifts) {
      h = MixU64(h, static_cast<uint64_t>(s.user));
      h = MixU64(h, static_cast<uint64_t>(s.attribute));
      h = MixU64(h, static_cast<uint64_t>(s.op));
      h = MixDouble(h, s.amount);
    }
  }
  return h;
}

}  // namespace spa::workload
