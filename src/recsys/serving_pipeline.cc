#include "recsys/serving_pipeline.h"

#include <ctime>

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/clock.h"

namespace spa::recsys {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// CPU seconds consumed by the calling thread, or a negative value
/// when no thread CPU clock is available (caller falls back to wall).
double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return -1.0;
}
}  // namespace

// ---- StreamTicket ----------------------------------------------------------

bool StreamTicket::Poll() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == TicketState::kDone || state_ == TicketState::kShed;
}

TicketState StreamTicket::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return state_ == TicketState::kDone || state_ == TicketState::kShed;
  });
  return state_;
}

TicketState StreamTicket::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

const spa::Result<RecommendResponse>& StreamTicket::response() const {
  std::lock_guard<std::mutex> lock(mu_);
  SPA_CHECK(kind_ == StreamOpKind::kRecommend);
  SPA_CHECK(state_ == TicketState::kDone ||
            state_ == TicketState::kShed);
  return response_;
}

const spa::Result<LiveUpdateReport>& StreamTicket::update_report()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  SPA_CHECK(kind_ == StreamOpKind::kInteractions);
  SPA_CHECK(state_ == TicketState::kDone ||
            state_ == TicketState::kShed);
  return update_report_;
}

const spa::Status& StreamTicket::sum_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  SPA_CHECK(kind_ == StreamOpKind::kSumUpdates);
  SPA_CHECK(state_ == TicketState::kDone ||
            state_ == TicketState::kShed);
  return sum_status_;
}

const BatchPin& StreamTicket::pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  SPA_CHECK(state_ == TicketState::kDone ||
            state_ == TicketState::kShed);
  return pinned_;
}

double StreamTicket::queue_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_seconds_;
}

double StreamTicket::serve_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serve_seconds_;
}

void StreamTicket::Complete(TicketState terminal) {
  SPA_CHECK(terminal == TicketState::kDone ||
            terminal == TicketState::kShed);
  Callback callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = terminal;
    callback = std::move(on_complete_);
  }
  cv_.notify_all();
  if (callback) callback(*this);
}

// ---- ServingPipeline -------------------------------------------------------

ServingPipeline::ServingPipeline(RecsysEngine* engine,
                                 sum::SumService* sums,
                                 PipelineConfig config)
    : engine_(engine), sums_(sums), config_(config) {
  SPA_CHECK(engine_ != nullptr);
  SPA_CHECK(config_.queue_capacity > 0);
  SPA_CHECK(config_.writer_queue_capacity > 0);
  SPA_CHECK(config_.max_batch > 0);
  pool_ = std::make_unique<ThreadPool>(config_.workers);
  // One persistent drain loop per pool worker: the loops only return
  // once Shutdown() raises stopping_ and both lanes are empty.
  for (size_t i = 0; i < pool_->thread_count(); ++i) {
    pool_->Submit([this] { DrainLoop(); });
  }
}

ServingPipeline::~ServingPipeline() { Shutdown(); }

void ServingPipeline::Shutdown() {
  // Claim the pool under mu_ (concurrent Shutdown calls and
  // worker_count() readers race on pool_ otherwise), but join it
  // outside: the drain loops need mu_ to finish.
  std::unique_ptr<ThreadPool> pool;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    pool = std::move(pool_);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  // Joining the pool drains both lanes first (the loops finish every
  // already-admitted op before returning), so no ticket is abandoned.
  pool.reset();
  idle_cv_.notify_all();
}

size_t ServingPipeline::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_ != nullptr ? pool_->thread_count() : 0;
}

spa::Result<StreamTicketPtr> ServingPipeline::Submit(
    RecommendRequest request, StreamTicket::Callback on_complete) {
  return SubmitWithDeadline(std::move(request),
                            config_.default_deadline_seconds,
                            std::move(on_complete));
}

spa::Result<StreamTicketPtr> ServingPipeline::SubmitWithDeadline(
    RecommendRequest request, double deadline_seconds,
    StreamTicket::Callback on_complete) {
  Op op;
  op.ticket = StreamTicketPtr(
      new StreamTicket(StreamOpKind::kRecommend));
  op.ticket->on_complete_ = std::move(on_complete);
  op.request = std::move(request);
  if (deadline_seconds > 0.0) {
    op.has_deadline = true;
    op.deadline = Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(deadline_seconds));
  }
  return Admit(std::move(op), /*writer=*/false);
}

spa::Result<StreamTicketPtr> ServingPipeline::SubmitInteractions(
    std::vector<Interaction> batch,
    StreamTicket::Callback on_complete) {
  Op op;
  op.ticket = StreamTicketPtr(
      new StreamTicket(StreamOpKind::kInteractions));
  op.ticket->on_complete_ = std::move(on_complete);
  op.interactions = std::move(batch);
  return Admit(std::move(op), /*writer=*/true);
}

spa::Result<StreamTicketPtr> ServingPipeline::SubmitSumUpdates(
    std::vector<sum::SumUpdate> updates,
    StreamTicket::Callback on_complete) {
  if (sums_ == nullptr) {
    // Still a Submit* call: keep the `submitted` counter uniform
    // across entry points (admitted or not).
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    return spa::Status::FailedPrecondition(
        "pipeline was built without a SumService; SubmitSumUpdates "
        "needs one");
  }
  Op op;
  op.ticket = StreamTicketPtr(
      new StreamTicket(StreamOpKind::kSumUpdates));
  op.ticket->on_complete_ = std::move(on_complete);
  op.sum_updates = std::move(updates);
  return Admit(std::move(op), /*writer=*/true);
}

spa::Result<StreamTicketPtr> ServingPipeline::Admit(Op op,
                                                    bool writer) {
  std::unique_lock<std::mutex> lock(mu_);
  ++submitted_;
  if (stopping_) {
    return spa::Status::FailedPrecondition("pipeline is shut down");
  }
  std::deque<Op>& queue = writer ? write_queue_ : read_queue_;
  const size_t capacity =
      writer ? config_.writer_queue_capacity : config_.queue_capacity;
  // Writes carry no deadline; a full writer lane under kDegrade falls
  // back to shedding the oldest write.
  BackpressurePolicy policy = config_.policy;
  if (policy == BackpressurePolicy::kDegrade && writer) {
    policy = BackpressurePolicy::kShedOldest;
  }
  while (queue.size() >= capacity) {
    switch (policy) {
      case BackpressurePolicy::kBlock:
        space_cv_.wait(lock, [&] {
          return stopping_ || queue.size() < capacity;
        });
        if (stopping_) {
          return spa::Status::FailedPrecondition(
              "pipeline is shut down");
        }
        break;
      case BackpressurePolicy::kReject:
        ++(writer ? rejected_writes_ : rejected_reads_);
        return spa::Status::ResourceExhausted(
            writer ? "writer lane full" : "admission queue full");
      case BackpressurePolicy::kShedOldest: {
        Op victim = std::move(queue.front());
        queue.pop_front();
        ++(writer ? shed_writes_ : shed_reads_);
        // Complete the shed ticket outside mu_: its completion
        // callback is caller code and must not be able to deadlock
        // the pipeline.
        lock.unlock();
        const auto status = spa::Status::ResourceExhausted(
            "shed by admission control (queue full, newest wins)");
        {
          std::lock_guard<std::mutex> ticket_lock(victim.ticket->mu_);
          switch (victim.ticket->kind_) {
            case StreamOpKind::kRecommend:
              victim.ticket->response_ =
                  spa::Result<RecommendResponse>(status);
              break;
            case StreamOpKind::kInteractions:
              victim.ticket->update_report_ =
                  spa::Result<LiveUpdateReport>(status);
              break;
            case StreamOpKind::kSumUpdates:
              victim.ticket->sum_status_ = status;
              break;
          }
        }
        victim.ticket->Complete(TicketState::kShed);
        lock.lock();
        if (stopping_) {
          return spa::Status::FailedPrecondition(
              "pipeline is shut down");
        }
        break;
      }
      case BackpressurePolicy::kDegrade: {
        // Shed by remaining slack, not queue position: the read with
        // the least time left — queued or incoming — is degraded
        // (fallback-served while its deadline still allows, dropped
        // when expired). Ties prefer the oldest queued op, so an
        // all-deadline-free stream degrades exactly like kShedOldest
        // except the victim gets a popularity answer instead of an
        // error.
        const auto now = Clock::now();
        size_t victim_index = 0;
        double victim_slack = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < queue.size(); ++i) {
          const double slack =
              queue[i].has_deadline
                  ? SecondsBetween(now, queue[i].deadline)
                  : std::numeric_limits<double>::infinity();
          if (slack < victim_slack) {
            victim_slack = slack;
            victim_index = i;
          }
        }
        const double incoming_slack =
            op.has_deadline ? SecondsBetween(now, op.deadline)
                            : std::numeric_limits<double>::infinity();
        if (incoming_slack < victim_slack) {
          // The incoming op is the most pressed: answer it right here
          // and return its (already terminal) ticket without queueing.
          ++admitted_;
          op.ticket->submitted_at_ = now;
          StreamTicketPtr ticket = op.ticket;
          lock.unlock();
          DegradeRead(std::move(op), now);
          return ticket;
        }
        Op victim = std::move(queue[victim_index]);
        queue.erase(queue.begin() +
                    static_cast<std::ptrdiff_t>(victim_index));
        lock.unlock();
        DegradeRead(std::move(victim), now);
        lock.lock();
        if (stopping_) {
          return spa::Status::FailedPrecondition(
              "pipeline is shut down");
        }
        break;
      }
    }
  }
  ++admitted_;
  op.ticket->submitted_at_ = Clock::now();
  StreamTicketPtr ticket = op.ticket;
  queue.push_back(std::move(op));
  if (writer) {
    max_writer_queue_depth_ = std::max(
        max_writer_queue_depth_, static_cast<uint64_t>(queue.size()));
  } else {
    max_queue_depth_ = std::max(
        max_queue_depth_, static_cast<uint64_t>(queue.size()));
  }
  work_cv_.notify_one();
  return ticket;
}

void ServingPipeline::DrainLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return (stopping_ && read_queue_.empty() &&
              write_queue_.empty()) ||
             (!write_queue_.empty() && !writer_inflight_) ||
             !read_queue_.empty();
    });
    // Writer priority: drain the writer lane before any read batch
    // (mirrors the engine's WriterPriorityMutex — continuous read
    // traffic must not starve updates). Exactly one write at a time,
    // popped FIFO, so writes apply in submission order.
    if (!write_queue_.empty() && !writer_inflight_) {
      Op op = std::move(write_queue_.front());
      write_queue_.pop_front();
      writer_inflight_ = true;
      space_cv_.notify_all();
      lock.unlock();
      ExecuteWrite(std::move(op));
      lock.lock();
      writer_inflight_ = false;
      ++updates_applied_;
      work_cv_.notify_all();
      if (read_queue_.empty() && write_queue_.empty() &&
          reads_inflight_ == 0) {
        idle_cv_.notify_all();
      }
      continue;
    }
    if (!read_queue_.empty()) {
      const size_t n =
          std::min(config_.max_batch, read_queue_.size());
      std::vector<Op> batch;
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(read_queue_.front()));
        read_queue_.pop_front();
      }
      reads_inflight_ += n;
      space_cv_.notify_all();
      lock.unlock();
      // Degraded/dropped ops update their counters inside (they are
      // not engine-served responses); only full serves are counted
      // here, and a batch that degraded away entirely never ran the
      // engine, so it is not a drained micro-batch either.
      const size_t full_served = ExecuteReadBatch(std::move(batch));
      lock.lock();
      reads_inflight_ -= n;
      responses_ += full_served;
      if (full_served > 0) ++batches_;
      if (read_queue_.empty() && write_queue_.empty() &&
          !writer_inflight_ && reads_inflight_ == 0) {
        idle_cv_.notify_all();
      }
      continue;
    }
    return;  // stopping_ and both lanes empty
  }
}

void ServingPipeline::ExecuteWrite(Op op) {
  const auto dequeued = Clock::now();
  const double cpu_before = ThreadCpuSeconds();
  const double waited =
      SecondsBetween(op.ticket->submitted_at_, dequeued);
  hist_queue_wait_.Add(waited);

  BatchPin pin;
  spa::Result<LiveUpdateReport> report(
      spa::Status::Internal("pending"));
  spa::Status sum_status;
  if (op.ticket->kind_ == StreamOpKind::kInteractions) {
    report = engine_->ApplyInteractions(op.interactions);
    if (report.ok()) {
      pin.matrix_version = report.value().matrix_version;
    }
    pin.sum_version = sums_ != nullptr ? sums_->version() : 0;
  } else {
    // SumService::ApplyAll is internally atomic; the engine's response
    // cache keys on per-user SUM versions, so no engine-side
    // invalidation call is needed here. The pin must carry the version
    // THIS publish produced — with several pipelines sharing one
    // service (the router tier), reading version() afterwards could
    // observe a later concurrent publish.
    uint64_t published = 0;
    sum_status = sums_->ApplyAll(op.sum_updates, &published);
    pin.sum_version = sum_status.ok() ? published : sums_->version();
  }
  const double seconds = SecondsBetween(dequeued, Clock::now());
  hist_update_apply_.Add(seconds);
  const double cpu_after = ThreadCpuSeconds();
  const double busy = (cpu_before >= 0.0 && cpu_after >= cpu_before)
                          ? cpu_after - cpu_before
                          : seconds;
  update_busy_nanos_.fetch_add(static_cast<uint64_t>(busy * 1e9),
                               std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> ticket_lock(op.ticket->mu_);
    op.ticket->queue_seconds_ = waited;
    op.ticket->serve_seconds_ = seconds;
    op.ticket->pinned_ = pin;
    if (op.ticket->kind_ == StreamOpKind::kInteractions) {
      op.ticket->update_report_ = std::move(report);
    } else {
      op.ticket->sum_status_ = std::move(sum_status);
    }
  }
  op.ticket->Complete(TicketState::kDone);
}

size_t ServingPipeline::ExecuteReadBatch(std::vector<Op> batch) {
  const auto dequeued = Clock::now();
  // kDegrade: classify by remaining slack before burning engine time.
  // Already-expired ops are dropped; ops whose slack cannot cover a
  // full serve (EWMA estimate) get the fallback tier — and they get
  // it FIRST, before the full batch occupies this worker, because
  // they are precisely the ops that cannot afford to wait for it.
  if (config_.policy == BackpressurePolicy::kDegrade) {
    const double estimate =
        static_cast<double>(
            serve_estimate_nanos_.load(std::memory_order_relaxed)) *
        1e-9;
    std::vector<Op> keep;
    std::vector<Op> degraded;
    keep.reserve(batch.size());
    for (Op& op : batch) {
      if (!op.has_deadline) {
        keep.push_back(std::move(op));
        continue;
      }
      const double slack = SecondsBetween(dequeued, op.deadline);
      if (slack <= 0.0 || slack < estimate) {
        degraded.push_back(std::move(op));
      } else {
        keep.push_back(std::move(op));
      }
    }
    batch = std::move(keep);
    for (Op& op : degraded) {
      DegradeRead(std::move(op), dequeued);
    }
  }
  if (batch.empty()) return 0;

  const double cpu_before = ThreadCpuSeconds();
  std::vector<RecommendRequest> requests;
  requests.reserve(batch.size());
  for (Op& op : batch) {
    requests.push_back(std::move(op.request));
  }
  BatchPin pin;
  auto results = config_.staged
                     ? engine_->RecommendBatchStaged(requests, &pin)
                     : engine_->RecommendBatchInline(requests, &pin);
  const auto served = Clock::now();
  const double serve_seconds = SecondsBetween(dequeued, served);
  hist_batch_serve_.Add(serve_seconds);
  const double cpu_after = ThreadCpuSeconds();
  const double busy = (cpu_before >= 0.0 && cpu_after >= cpu_before)
                          ? cpu_after - cpu_before
                          : serve_seconds;
  serve_busy_nanos_.fetch_add(static_cast<uint64_t>(busy * 1e9),
                              std::memory_order_relaxed);
  // Feed the slack classifier: EWMA (3:1 old:new) of per-request full
  // serve wall time. Lossy read-modify-write is fine — this is an
  // estimate, and any worker's recent sample is representative.
  const uint64_t sample = static_cast<uint64_t>(
      serve_seconds / static_cast<double>(batch.size()) * 1e9);
  const uint64_t prev =
      serve_estimate_nanos_.load(std::memory_order_relaxed);
  serve_estimate_nanos_.store(prev == 0 ? sample : (3 * prev + sample) / 4,
                              std::memory_order_relaxed);
  for (size_t i = 0; i < batch.size(); ++i) {
    StreamTicket& ticket = *batch[i].ticket;
    const double waited =
        SecondsBetween(ticket.submitted_at_, dequeued);
    hist_queue_wait_.Add(waited);
    {
      std::lock_guard<std::mutex> ticket_lock(ticket.mu_);
      ticket.queue_seconds_ = waited;
      ticket.serve_seconds_ = serve_seconds;
      ticket.pinned_ = pin;
      ticket.response_ = std::move(results[i]);
    }
    hist_end_to_end_.Add(
        SecondsBetween(ticket.submitted_at_, Clock::now()));
    ticket.Complete(TicketState::kDone);
  }
  return batch.size();
}

void ServingPipeline::DegradeRead(Op op, Clock::time_point now) {
  const bool expired =
      op.has_deadline && SecondsBetween(now, op.deadline) <= 0.0;
  if (expired) {
    // Past-deadline work is waste either way: complete as shed. No
    // histograms — the op was never served, and queue_wait's total
    // must keep matching responses + updates_applied.
    {
      std::lock_guard<std::mutex> ticket_lock(op.ticket->mu_);
      op.ticket->response_ = spa::Result<RecommendResponse>(
          spa::Status::ResourceExhausted(
              "deadline expired before serving; dropped under kDegrade"));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++shed_reads_;
      ++expired_drops_;
    }
    op.ticket->Complete(TicketState::kShed);
    return;
  }
  // Slack remains: answer from the popularity fallback tier. This IS
  // a response — flagged degraded, pinned, both histograms recorded —
  // just a cheap one.
  const double waited = SecondsBetween(op.ticket->submitted_at_, now);
  hist_queue_wait_.Add(waited);
  BatchPin pin;
  RecommendResponse response;
  spa::Status status =
      engine_->RecommendFallbackInto(op.request, &response, &pin);
  const double serve_seconds = SecondsBetween(now, Clock::now());
  {
    std::lock_guard<std::mutex> ticket_lock(op.ticket->mu_);
    op.ticket->queue_seconds_ = waited;
    op.ticket->serve_seconds_ = serve_seconds;
    op.ticket->pinned_ = pin;
    if (status.ok()) {
      op.ticket->response_ =
          spa::Result<RecommendResponse>(std::move(response));
    } else {
      op.ticket->response_ =
          spa::Result<RecommendResponse>(std::move(status));
    }
  }
  hist_end_to_end_.Add(
      SecondsBetween(op.ticket->submitted_at_, Clock::now()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++responses_;
    ++fallback_served_;
  }
  op.ticket->Complete(TicketState::kDone);
}

void ServingPipeline::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return read_queue_.empty() && write_queue_.empty() &&
           !writer_inflight_ && reads_inflight_ == 0;
  });
}

PipelineStats ServingPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PipelineStats out;
  out.submitted = submitted_;
  out.admitted = admitted_;
  out.rejected_reads = rejected_reads_;
  out.rejected_writes = rejected_writes_;
  out.shed_reads = shed_reads_;
  out.shed_writes = shed_writes_;
  out.rejected = rejected_reads_ + rejected_writes_;
  out.shed = shed_reads_ + shed_writes_;
  out.responses = responses_;
  out.batches = batches_;
  out.updates_applied = updates_applied_;
  out.fallback_served = fallback_served_;
  out.expired_drops = expired_drops_;
  out.max_queue_depth = max_queue_depth_;
  out.max_writer_queue_depth = max_writer_queue_depth_;
  out.serve_busy_seconds =
      static_cast<double>(
          serve_busy_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  out.update_busy_seconds =
      static_cast<double>(
          update_busy_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  out.queue_wait = hist_queue_wait_;
  out.batch_serve = hist_batch_serve_;
  out.update_apply = hist_update_apply_;
  out.end_to_end = hist_end_to_end_;
  return out;
}

size_t ServingPipeline::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_queue_.size();
}

size_t ServingPipeline::writer_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_queue_.size();
}

}  // namespace spa::recsys
