#include "recsys/hybrid.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/check.h"
#include "common/clock.h"

namespace spa::recsys {

HybridRecommender::HybridRecommender(HybridConfig config)
    : config_(config) {
  SPA_CHECK(config_.component_depth > 0);
}

void HybridRecommender::AddComponent(
    std::unique_ptr<Recommender> component, double weight) {
  SPA_CHECK(component != nullptr);
  SPA_CHECK(weight >= 0.0);
  components_.push_back({std::move(component), weight});
}

spa::Status HybridRecommender::Fit(const InteractionMatrix& matrix) {
  if (components_.empty()) {
    return spa::Status::FailedPrecondition("hybrid has no components");
  }
  for (Component& c : components_) {
    SPA_RETURN_IF_ERROR(c.recommender->Fit(matrix));
  }
  return spa::Status::OK();
}

spa::Status HybridRecommender::Refresh(RefreshOutcome* outcome) {
  if (components_.empty()) {
    return spa::Status::FailedPrecondition("hybrid has no components");
  }
  for (Component& c : components_) {
    RefreshOutcome o;
    SPA_RETURN_IF_ERROR(c.recommender->Refresh(&o));
    outcome->refreshed_index |= o.refreshed_index;
    outcome->full_rebuild |= o.full_rebuild;
    outcome->rows_refreshed += o.rows_refreshed;
    outcome->seconds += o.seconds;
    outcome->all_users |= o.all_users;
    if (!outcome->all_users) {
      outcome->affected_users.insert(outcome->affected_users.end(),
                                     o.affected_users.begin(),
                                     o.affected_users.end());
    }
  }
  if (outcome->all_users) outcome->affected_users.clear();
  return spa::Status::OK();
}

std::vector<HybridRecommender::Blended>
HybridRecommender::BlendCandidates(const CandidateQuery& query,
                                   bool track_contributions) const {
  return BlendFetched(FetchComponentCandidates(query),
                      track_contributions);
}

std::vector<std::vector<Scored>>
HybridRecommender::FetchComponentCandidates(
    const CandidateQuery& query,
    std::vector<double>* component_seconds) const {
  std::vector<std::vector<Scored>> fetched;
  fetched.reserve(components_.size());
  if (component_seconds != nullptr) {
    component_seconds->clear();
    component_seconds->reserve(components_.size());
  }
  for (const Component& c : components_) {
    CandidateQuery sub = query;
    sub.k = config_.component_depth;
    const auto start = std::chrono::steady_clock::now();
    fetched.push_back(c.recommender->RecommendCandidates(sub));
    if (component_seconds != nullptr) {
      component_seconds->push_back(SecondsSince(start));
    }
  }
  return fetched;
}

std::vector<HybridRecommender::Blended> HybridRecommender::BlendFetched(
    const std::vector<std::vector<Scored>>& fetched,
    bool track_contributions) const {
  SPA_CHECK(fetched.size() == components_.size());
  std::unordered_map<ItemId, size_t> index;
  std::vector<Blended> blended;
  for (size_t ci = 0; ci < components_.size(); ++ci) {
    const Component& c = components_[ci];
    const std::vector<Scored>& scored = fetched[ci];
    if (scored.empty()) continue;
    // Min-max normalize this component's scores to [0,1].
    double lo = scored.back().score;
    double hi = scored.front().score;
    for (const Scored& s : scored) {
      lo = std::min(lo, s.score);
      hi = std::max(hi, s.score);
    }
    const double span = hi - lo;
    // Items the component did not return contribute 0, so a returned
    // candidate must contribute strictly more than 0 or its ranking
    // information is lost when the list is shorter than the blend
    // depth: affinely map [0,1] onto [floor, 1] with floor = 1/(n+1).
    const double floor = 1.0 / static_cast<double>(scored.size() + 1);
    for (const Scored& s : scored) {
      const double raw = span > 0.0 ? (s.score - lo) / span : 1.0;
      const double normalized = floor + (1.0 - floor) * raw;
      const double contribution = c.weight * normalized;
      auto [it, inserted] = index.emplace(s.item, blended.size());
      if (inserted) {
        Blended b;
        b.item = s.item;
        if (track_contributions) {
          b.contributions.assign(components_.size(), 0.0);
        }
        blended.push_back(std::move(b));
      }
      Blended& entry = blended[it->second];
      entry.score += contribution;
      if (track_contributions) entry.contributions[ci] += contribution;
    }
  }
  std::sort(blended.begin(), blended.end(),
            [](const Blended& a, const Blended& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  return blended;
}

std::vector<Scored> HybridRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  const std::vector<Blended> blended =
      BlendCandidates(query, /*track_contributions=*/false);
  std::vector<Scored> out;
  out.reserve(std::min(query.k, blended.size()));
  for (const Blended& b : blended) {
    if (out.size() >= query.k) break;
    out.push_back({b.item, b.score});
  }
  return out;
}

}  // namespace spa::recsys
