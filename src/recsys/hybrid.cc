#include "recsys/hybrid.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/check.h"
#include "common/clock.h"
#include "recsys/kernels.h"

namespace spa::recsys {

// The blend kernel walks Scored::score at stride 2 doubles.
static_assert(sizeof(Scored) == 2 * sizeof(double));

HybridRecommender::HybridRecommender(HybridConfig config)
    : config_(config) {
  SPA_CHECK(config_.component_depth > 0);
}

void HybridRecommender::AddComponent(
    std::unique_ptr<Recommender> component, double weight) {
  SPA_CHECK(component != nullptr);
  SPA_CHECK(weight >= 0.0);
  components_.push_back({std::move(component), weight});
}

spa::Status HybridRecommender::Fit(const InteractionMatrix& matrix) {
  if (components_.empty()) {
    return spa::Status::FailedPrecondition("hybrid has no components");
  }
  for (Component& c : components_) {
    SPA_RETURN_IF_ERROR(c.recommender->Fit(matrix));
  }
  return spa::Status::OK();
}

spa::Status HybridRecommender::Refresh(RefreshOutcome* outcome) {
  if (components_.empty()) {
    return spa::Status::FailedPrecondition("hybrid has no components");
  }
  for (Component& c : components_) {
    RefreshOutcome o;
    SPA_RETURN_IF_ERROR(c.recommender->Refresh(&o));
    outcome->refreshed_index |= o.refreshed_index;
    outcome->full_rebuild |= o.full_rebuild;
    outcome->rows_refreshed += o.rows_refreshed;
    outcome->seconds += o.seconds;
    outcome->all_users |= o.all_users;
    if (!outcome->all_users) {
      outcome->affected_users.insert(outcome->affected_users.end(),
                                     o.affected_users.begin(),
                                     o.affected_users.end());
    }
  }
  if (outcome->all_users) outcome->affected_users.clear();
  return spa::Status::OK();
}

std::vector<HybridRecommender::Blended>
HybridRecommender::BlendCandidates(const CandidateQuery& query,
                                   bool track_contributions) const {
  std::vector<Blended> blended;
  BlendFetchedInto(FetchComponentCandidates(query), track_contributions,
                   query.workspace, &blended);
  return blended;
}

std::vector<std::vector<Scored>>
HybridRecommender::FetchComponentCandidates(
    const CandidateQuery& query,
    std::vector<double>* component_seconds) const {
  std::vector<std::vector<Scored>> fetched;
  FetchComponentCandidatesInto(query, &fetched, component_seconds);
  return fetched;
}

void HybridRecommender::FetchComponentCandidatesInto(
    const CandidateQuery& query,
    std::vector<std::vector<Scored>>* fetched,
    std::vector<double>* component_seconds) const {
  fetched->resize(components_.size());  // keeps inner capacities warm
  if (component_seconds != nullptr) {
    component_seconds->clear();
    component_seconds->reserve(components_.size());
  }
  for (size_t ci = 0; ci < components_.size(); ++ci) {
    CandidateQuery sub = query;
    sub.k = config_.component_depth;
    const auto start = std::chrono::steady_clock::now();
    components_[ci].recommender->RecommendCandidatesInto(sub,
                                                         &(*fetched)[ci]);
    if (component_seconds != nullptr) {
      component_seconds->push_back(SecondsSince(start));
    }
  }
}

std::vector<HybridRecommender::Blended> HybridRecommender::BlendFetched(
    const std::vector<std::vector<Scored>>& fetched,
    bool track_contributions) const {
  std::vector<Blended> blended;
  BlendFetchedInto(fetched, track_contributions, nullptr, &blended);
  return blended;
}

void HybridRecommender::BlendFetchedInto(
    const std::vector<std::vector<Scored>>& fetched,
    bool track_contributions, kernels::ScoreWorkspace* workspace,
    std::vector<Blended>* blended) const {
  SPA_CHECK(fetched.size() == components_.size());
  blended->clear();
  const auto by_score_then_item = [](const Blended& a, const Blended& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  };

  if (track_contributions) {
    // Explanation path: the per-candidate contribution vectors
    // allocate regardless, so keep the straightforward map-based
    // accumulation. Bitwise-equal to the kernel path below — same
    // per-item += order, same total sort order.
    std::unordered_map<ItemId, size_t> index;
    for (size_t ci = 0; ci < components_.size(); ++ci) {
      const Component& c = components_[ci];
      const std::vector<Scored>& scored = fetched[ci];
      if (scored.empty()) continue;
      // Min-max normalize this component's scores to [0,1].
      double lo = scored.back().score;
      double hi = scored.front().score;
      for (const Scored& s : scored) {
        lo = std::min(lo, s.score);
        hi = std::max(hi, s.score);
      }
      const double span = hi - lo;
      // Items the component did not return contribute 0, so a returned
      // candidate must contribute strictly more than 0 or its ranking
      // information is lost when the list is shorter than the blend
      // depth: affinely map [0,1] onto [floor, 1] with floor = 1/(n+1).
      const double floor = 1.0 / static_cast<double>(scored.size() + 1);
      for (const Scored& s : scored) {
        const double raw = span > 0.0 ? (s.score - lo) / span : 1.0;
        const double normalized = floor + (1.0 - floor) * raw;
        const double contribution = c.weight * normalized;
        auto [it, inserted] = index.emplace(s.item, blended->size());
        if (inserted) {
          Blended b;
          b.item = s.item;
          b.contributions.assign(components_.size(), 0.0);
          blended->push_back(std::move(b));
        }
        Blended& entry = (*blended)[it->second];
        entry.score += contribution;
        entry.contributions[ci] += contribution;
      }
    }
    std::sort(blended->begin(), blended->end(), by_score_then_item);
    return;
  }

  // Hot path: normalize-and-weigh each component list with the kernel,
  // fold into the pooled accumulator (first-touch slot order matches
  // the map path's insertion order, so every per-item += sequence is
  // identical).
  kernels::ScoreWorkspace& ws = kernels::ResolveWorkspace(workspace);
  kernels::ScoreAccumulator& acc = ws.acc;
  acc.Begin(/*expected_items=*/64);
  for (size_t ci = 0; ci < components_.size(); ++ci) {
    const Component& c = components_[ci];
    const std::vector<Scored>& scored = fetched[ci];
    if (scored.empty()) continue;
    double lo = scored.back().score;
    double hi = scored.front().score;
    for (const Scored& s : scored) {
      lo = std::min(lo, s.score);
      hi = std::max(hi, s.score);
    }
    const double span = hi - lo;
    const double floor = 1.0 / static_cast<double>(scored.size() + 1);
    const size_t n = scored.size();
    double* products = ws.EnsureProducts(n);
    kernels::NormalizedContribution(&scored[0].score, 2, n, lo, span,
                                    floor, c.weight, products);
    for (size_t i = 0; i < n; ++i) acc.Add(scored[i].item, products[i]);
  }
  const size_t count = acc.size();
  blended->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Blended b;
    b.item = acc.item(i);
    b.score = acc.score(i);
    blended->push_back(std::move(b));
  }
  std::sort(blended->begin(), blended->end(), by_score_then_item);
}

std::vector<Scored> HybridRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  RecommendCandidatesInto(query, &out);
  return out;
}

void HybridRecommender::RecommendCandidatesInto(
    const CandidateQuery& query, std::vector<Scored>* out) const {
  const std::vector<Blended> blended =
      BlendCandidates(query, /*track_contributions=*/false);
  out->clear();
  out->reserve(std::min(query.k, blended.size()));
  for (const Blended& b : blended) {
    if (out->size() >= query.k) break;
    out->push_back({b.item, b.score});
  }
}

}  // namespace spa::recsys
