#include "recsys/hybrid.h"

#include <unordered_map>

#include "common/check.h"

namespace spa::recsys {

void HybridRecommender::AddComponent(
    std::unique_ptr<Recommender> component, double weight) {
  SPA_CHECK(component != nullptr);
  SPA_CHECK(weight >= 0.0);
  components_.push_back({std::move(component), weight});
}

spa::Status HybridRecommender::Fit(const InteractionMatrix& matrix) {
  if (components_.empty()) {
    return spa::Status::FailedPrecondition("hybrid has no components");
  }
  for (Component& c : components_) {
    SPA_RETURN_IF_ERROR(c.recommender->Fit(matrix));
  }
  return spa::Status::OK();
}

std::vector<Scored> HybridRecommender::Recommend(UserId user,
                                                 size_t k) const {
  std::unordered_map<ItemId, double> blended;
  for (const Component& c : components_) {
    const std::vector<Scored> scored =
        c.recommender->Recommend(user, kComponentDepth);
    if (scored.empty()) continue;
    // Min-max normalize this component's scores to [0,1].
    double lo = scored.back().score;
    double hi = scored.front().score;
    for (const Scored& s : scored) {
      lo = std::min(lo, s.score);
      hi = std::max(hi, s.score);
    }
    const double span = hi - lo;
    for (const Scored& s : scored) {
      const double normalized =
          span > 0.0 ? (s.score - lo) / span : 1.0;
      blended[s.item] += c.weight * normalized;
    }
  }
  std::vector<Scored> out;
  out.reserve(blended.size());
  for (const auto& [item, score] : blended) out.push_back({item, score});
  SortAndTruncate(&out, k);
  return out;
}

}  // namespace spa::recsys
