#include "recsys/kernels.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>

#include <immintrin.h>

#include "common/check.h"

// This TU must be compiled with -ffp-contract=off (CMake sets it):
// contracting the scalar reference's a*b+c into FMA would break its
// bitwise parity with the AVX2 bodies, which use explicit mul/add.

namespace spa::recsys::kernels {

// ---- dispatch --------------------------------------------------------------

namespace {

std::atomic<Backend> g_forced{Backend::kAuto};

Backend Resolve() {
  const Backend forced = g_forced.load(std::memory_order_relaxed);
  if (forced != Backend::kAuto) return forced;
  return SupportsAvx2() ? Backend::kAvx2 : Backend::kScalar;
}

}  // namespace

bool SupportsAvx2() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

void SetBackend(Backend backend) {
  SPA_CHECK_MSG(backend != Backend::kAvx2 || SupportsAvx2(),
                "cannot force the AVX2 kernel backend: CPU lacks AVX2");
  g_forced.store(backend, std::memory_order_relaxed);
}

Backend ActiveBackend() { return Resolve(); }

// ---- Dot -------------------------------------------------------------------

namespace {

double DotScalar(const double* x, const double* y, size_t n) {
  // Fixed 4-lane order: lane j accumulates elements j, j+4, j+8, ...
  // exactly as one AVX2 accumulator register would.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += x[i] * y[i];
    acc1 += x[i + 1] * y[i + 1];
    acc2 += x[i + 2] * y[i + 2];
    acc3 += x[i + 3] * y[i + 3];
  }
  double lanes[4] = {acc0, acc1, acc2, acc3};
  for (size_t j = 0; i < n; ++i, ++j) lanes[j] += x[i] * y[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2")))
double DotAvx2(const double* x, const double* y, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (size_t j = 0; i < n; ++i, ++j) lanes[j] += x[i] * y[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace

double Dot(const double* x, const double* y, size_t n) {
  if (n == 0) return 0.0;
  return Resolve() == Backend::kAvx2 ? DotAvx2(x, y, n)
                                     : DotScalar(x, y, n);
}

// ---- ScaleGather -----------------------------------------------------------

namespace {

void ScaleGatherScalar(const double* base, size_t stride, size_t n,
                       double scale, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = base[i * stride] * scale;
}

__attribute__((target("avx2")))
void ScaleGatherAvx2(const double* base, size_t stride, size_t n,
                     double scale, double* out) {
  const __m256d vscale = _mm256_set1_pd(scale);
  size_t i = 0;
  if (stride == 1) {
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(out + i,
                       _mm256_mul_pd(_mm256_loadu_pd(base + i), vscale));
    }
  } else {
    const __m256i idx = _mm256_setr_epi64x(
        0, static_cast<long long>(stride),
        static_cast<long long>(2 * stride),
        static_cast<long long>(3 * stride));
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_i64gather_pd(base + i * stride, idx, 8);
      _mm256_storeu_pd(out + i, _mm256_mul_pd(v, vscale));
    }
  }
  for (; i < n; ++i) out[i] = base[i * stride] * scale;
}

}  // namespace

void ScaleGather(const double* base, size_t stride, size_t n,
                 double scale, double* out) {
  if (n == 0) return;
  if (Resolve() == Backend::kAvx2) {
    ScaleGatherAvx2(base, stride, n, scale, out);
  } else {
    ScaleGatherScalar(base, stride, n, scale, out);
  }
}

// ---- NormalizedContribution ------------------------------------------------

namespace {

void NormalizedContributionScalar(const double* base, size_t stride,
                                  size_t n, double lo, double span,
                                  double floor, double weight,
                                  double* out) {
  const double gain = 1.0 - floor;
  if (span > 0.0) {
    for (size_t i = 0; i < n; ++i) {
      const double raw = (base[i * stride] - lo) / span;
      out[i] = weight * (floor + gain * raw);
    }
  } else {
    const double constant = weight * (floor + gain * 1.0);
    for (size_t i = 0; i < n; ++i) out[i] = constant;
  }
}

__attribute__((target("avx2")))
void NormalizedContributionAvx2(const double* base, size_t stride,
                                size_t n, double lo, double span,
                                double floor, double weight,
                                double* out) {
  const double gain = 1.0 - floor;
  if (!(span > 0.0)) {
    const double constant = weight * (floor + gain * 1.0);
    const __m256d vc = _mm256_set1_pd(constant);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) _mm256_storeu_pd(out + i, vc);
    for (; i < n; ++i) out[i] = constant;
    return;
  }
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vspan = _mm256_set1_pd(span);
  const __m256d vfloor = _mm256_set1_pd(floor);
  const __m256d vgain = _mm256_set1_pd(gain);
  const __m256d vweight = _mm256_set1_pd(weight);
  const __m256i idx = _mm256_setr_epi64x(
      0, static_cast<long long>(stride),
      static_cast<long long>(2 * stride),
      static_cast<long long>(3 * stride));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v =
        stride == 1 ? _mm256_loadu_pd(base + i)
                    : _mm256_i64gather_pd(base + i * stride, idx, 8);
    const __m256d raw = _mm256_div_pd(_mm256_sub_pd(v, vlo), vspan);
    const __m256d normalized =
        _mm256_add_pd(vfloor, _mm256_mul_pd(vgain, raw));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(vweight, normalized));
  }
  for (; i < n; ++i) {
    const double raw = (base[i * stride] - lo) / span;
    out[i] = weight * (floor + gain * raw);
  }
}

}  // namespace

void NormalizedContribution(const double* base, size_t stride, size_t n,
                            double lo, double span, double floor,
                            double weight, double* out) {
  if (n == 0) return;
  if (Resolve() == Backend::kAvx2) {
    NormalizedContributionAvx2(base, stride, n, lo, span, floor, weight,
                               out);
  } else {
    NormalizedContributionScalar(base, stride, n, lo, span, floor,
                                 weight, out);
  }
}

// ---- ScoreAccumulator ------------------------------------------------------

namespace {

WorkspacePool* DefaultPool() {
  // Leaked on purpose: thread_local workspaces release blocks at
  // thread exit, which may run after static destructors.
  static WorkspacePool* pool = new WorkspacePool();
  return pool;
}

}  // namespace

ScoreAccumulator::~ScoreAccumulator() { ReleaseBlock(); }

WorkspacePool* ScoreAccumulator::pool_or_default() {
  return pool_ != nullptr ? pool_ : DefaultPool();
}

void ScoreAccumulator::BindPool(WorkspacePool* pool) {
  if (pool == pool_) return;
  ReleaseBlock();
  pool_ = pool;
}

void ScoreAccumulator::ReleaseBlock() {
  if (block_.data == nullptr) return;
  pool_or_default()->Release(block_);
  block_ = {};
  scores_ = nullptr;
  items_ = nullptr;
  keys_ = nullptr;
  slots_ = nullptr;
  stamps_ = nullptr;
  capacity_ = 0;
  table_mask_ = 0;
  count_ = 0;
  epoch_ = 0;
}

void ScoreAccumulator::EnsureCapacity(size_t min_items) {
  if (capacity_ >= min_items) return;
  const size_t capacity = std::bit_ceil(std::max<size_t>(min_items, 64));
  const size_t table = 2 * capacity;
  // Layout (doubles first for alignment): scores | items | keys |
  // slots | stamps.
  const size_t bytes = capacity * sizeof(double) +
                       capacity * sizeof(ItemId) +
                       table * (sizeof(ItemId) + 2 * sizeof(uint32_t));
  WorkspaceBlock block = pool_or_default()->Acquire(bytes);
  char* p = static_cast<char*>(block.data);
  double* scores = reinterpret_cast<double*>(p);
  p += capacity * sizeof(double);
  ItemId* items = reinterpret_cast<ItemId*>(p);
  p += capacity * sizeof(ItemId);
  ItemId* keys = reinterpret_cast<ItemId*>(p);
  p += table * sizeof(ItemId);
  uint32_t* slots = reinterpret_cast<uint32_t*>(p);
  p += table * sizeof(uint32_t);
  uint32_t* stamps = reinterpret_cast<uint32_t*>(p);

  const size_t old_count = count_;
  if (old_count > 0) {
    std::memcpy(scores, scores_, old_count * sizeof(double));
    std::memcpy(items, items_, old_count * sizeof(ItemId));
  }
  ReleaseBlock();
  block_ = block;
  scores_ = scores;
  items_ = items;
  keys_ = keys;
  slots_ = slots;
  stamps_ = stamps;
  capacity_ = capacity;
  table_mask_ = table - 1;
  count_ = old_count;
  std::memset(stamps_, 0, table * sizeof(uint32_t));
  epoch_ = 1;
  // Reinsert the live items (slot order preserved by construction).
  for (size_t i = 0; i < count_; ++i) {
    size_t idx = static_cast<size_t>(SplitMix64(static_cast<uint64_t>(
                     static_cast<uint32_t>(items_[i])))) &
                 table_mask_;
    while (stamps_[idx] == epoch_) idx = (idx + 1) & table_mask_;
    stamps_[idx] = epoch_;
    keys_[idx] = items_[i];
    slots_[idx] = static_cast<uint32_t>(i);
  }
}

void ScoreAccumulator::Grow() { EnsureCapacity(capacity_ * 2); }

void ScoreAccumulator::Begin(size_t expected_items) {
  count_ = 0;  // before EnsureCapacity: stale items must not migrate
  EnsureCapacity(std::max<size_t>(expected_items, 1));
  ++epoch_;
  if (epoch_ == 0) {
    std::memset(stamps_, 0, (table_mask_ + 1) * sizeof(uint32_t));
    epoch_ = 1;
  }
}

ScoreWorkspace& ThreadLocalWorkspace() {
  thread_local ScoreWorkspace workspace;
  return workspace;
}

}  // namespace spa::recsys::kernels
