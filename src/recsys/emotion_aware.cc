#include "recsys/emotion_aware.h"

#include <algorithm>
#include <cmath>

namespace spa::recsys {

EmotionAwareReranker::EmotionAwareReranker(EmotionRerankConfig config)
    : config_(config) {}

void EmotionAwareReranker::SetItemProfile(ItemId item,
                                          const EmotionProfile& profile) {
  profiles_[item] = profile;
}

double EmotionAwareReranker::Alignment(const sum::SmartUserModel& model,
                                       ItemId item) const {
  const auto it = profiles_.find(item);
  if (it == profiles_.end()) return 0.0;
  const EmotionProfile& resonance = it->second;

  double signal = 0.0;
  double weight_total = 0.0;
  for (eit::EmotionalAttribute attr : eit::AllEmotionalAttributes()) {
    const size_t i = static_cast<size_t>(attr);
    const double sens =
        model.sensibility(model.catalog().EmotionalId(attr));
    if (sens < config_.sensibility_threshold) continue;
    // Activation for positive valence, inhibition for negative.
    signal += eit::ValenceSign(attr) * sens * resonance[i];
    weight_total += sens;
  }
  if (weight_total == 0.0) return 0.0;
  return std::clamp(signal / weight_total, -1.0, 1.0);
}

std::pair<double, double> EmotionAwareReranker::ScoreBounds(
    const std::vector<Scored>& candidates) {
  if (candidates.empty()) return {0.0, 0.0};
  double lo = candidates.front().score;
  double hi = candidates.front().score;
  for (const Scored& s : candidates) {
    lo = std::min(lo, s.score);
    hi = std::max(hi, s.score);
  }
  return {lo, hi};
}

double EmotionAwareReranker::NormalizedBase(double score, double lo,
                                            double hi) {
  const double span = hi - lo;
  return span > 0.0 ? (score - lo) / span : 1.0;
}

double EmotionAwareReranker::BlendScore(double normalized_base,
                                        double alignment) const {
  return (1.0 - config_.beta) * normalized_base +
         config_.beta * alignment;
}

std::vector<Scored> EmotionAwareReranker::Rerank(
    const sum::SmartUserModel& model,
    std::vector<Scored> candidates) const {
  if (candidates.empty()) return candidates;
  // Min-max normalize base scores so beta blends comparable scales.
  const auto [lo, hi] = ScoreBounds(candidates);
  for (Scored& s : candidates) {
    const double base = NormalizedBase(s.score, lo, hi);
    const double alignment = Alignment(model, s.item);
    s.score = BlendScore(base, alignment);
  }
  SortAndTruncate(&candidates, candidates.size());
  return candidates;
}

}  // namespace spa::recsys
