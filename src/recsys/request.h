#ifndef SPA_RECSYS_REQUEST_H_
#define SPA_RECSYS_REQUEST_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "recsys/recommender.h"
#include "sum/sum_service.h"

/// \file
/// Request/response value types of the serving API. A recommendation
/// call is a rich contextual request (Santana & Domingues 2020; Zheng
/// 2017) — the user plus cutoff, an explicit candidate policy, an
/// optional emotional-context override, and an `explain` flag — not a
/// bare `(user, k)` pair. Responses carry scored items with optional
/// per-item score breakdowns.

namespace spa::recsys {

/// \brief One recommendation request.
struct RecommendRequest {
  UserId user = 0;
  /// Number of items wanted.
  size_t k = 10;

  /// Whether items the user already interacted with are filtered.
  ExcludeSeen exclude_seen = ExcludeSeen::kYes;
  /// Items never to return — e.g. interactions the caller knows about
  /// that a sparse interaction matrix missed, or business blocklists.
  std::unordered_set<ItemId> exclude_items;
  /// When set, only these items may be recommended (campaign slates,
  /// category pages). Must be non-empty when present.
  std::optional<std::unordered_set<ItemId>> candidate_items;

  /// When set, the emotion-aware stage resolves `user` in this pinned
  /// snapshot instead of the engine's live SumService view (what-if
  /// serving, group aggregation, A/B overrides, replaying a frozen
  /// version). The handle keeps the snapshot alive for the call;
  /// overridden requests bypass the engine's response cache.
  sum::SumSnapshotPtr emotion_override;

  /// Fill per-item score breakdowns in the response.
  bool explain = false;
};

/// Validates field invariants (k > 0; candidate_items, when present,
/// non-empty). An allowlist fully covered by `exclude_items` is valid
/// and simply yields an empty response — the serving layer merges
/// server-side seen-item exclusions into requests, so that state is
/// reachable from a correct call.
spa::Status ValidateRequest(const RecommendRequest& request);

/// One hybrid component's share of an item's blended base score.
struct ComponentContribution {
  std::string component;
  double weight = 0.0;        ///< the component's blend weight
  double contribution = 0.0;  ///< weight * normalized component score
};

/// \brief Why an item scored what it scored.
struct ScoreBreakdown {
  /// Blended hybrid score before emotional adjustment.
  double base = 0.0;
  /// Base score's share of the final score ((1-beta) * normalized base
  /// when the emotional stage ran, otherwise == score).
  double base_share = 0.0;
  /// Emotional alignment in [-1, 1] (0 when the stage did not run).
  double emotional_alignment = 0.0;
  /// beta * alignment — the emotional delta added to the final score.
  double emotion_delta = 0.0;
  /// Per-component share of `base`, in component order.
  std::vector<ComponentContribution> components;
};

/// \brief One recommended item.
struct RecommendedItem {
  ItemId item = lifelog::kNoItem;
  double score = 0.0;
  /// Populated only when the request asked for explanations.
  ScoreBreakdown breakdown;
};

/// \brief The engine's answer to one request.
struct RecommendResponse {
  UserId user = 0;
  /// Ranked best-first; ties broken by ascending item id.
  std::vector<RecommendedItem> items;
  /// True when breakdowns were filled.
  bool explained = false;
  /// True when the emotion-aware stage adjusted the ranking.
  bool emotion_applied = false;
  /// True when this response was served from the popularity-only
  /// fallback tier under deadline pressure instead of the full stack.
  /// Degraded responses are the only responses allowed to differ from
  /// synchronous full serving at the same pin; they instead match the
  /// engine's `RecommendFallback` at their pinned matrix version
  /// (see docs/ARCHITECTURE.md, "Degraded serving contract").
  bool degraded = false;

  /// Convenience view as the classic (item, score) list.
  std::vector<Scored> AsScored() const;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_REQUEST_H_
