#ifndef SPA_RECSYS_POPULARITY_H_
#define SPA_RECSYS_POPULARITY_H_

#include <cstdint>
#include <unordered_map>

#include "recsys/recommender.h"

/// \file
/// Non-personalized popularity baseline: the weakest comparator every
/// personalization claim must beat.

namespace spa::recsys {

/// \brief Ranks items by total interaction weight.
class PopularityRecommender : public Recommender {
 public:
  spa::Status Fit(const InteractionMatrix& matrix) override;
  /// Recomputes the totals of items whose postings mutated since the
  /// last Fit/Refresh (each re-summed exactly as Fit would, so the
  /// ranking stays bitwise-identical to a refit). Popularity is
  /// non-personalized — a changed total can move any user's blend —
  /// so every user is reported affected.
  spa::Status Refresh(RefreshOutcome* outcome) override;
  std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const override;
  std::string name() const override { return "Popularity"; }

 private:
  /// Rebuilds `ranked_` from `total_` in matrix item order (the exact
  /// construction Fit uses).
  void Rank();

  const InteractionMatrix* matrix_ = nullptr;
  std::unordered_map<ItemId, double> total_;  // interaction weight sums
  std::vector<Scored> ranked_;  // all items by popularity
  /// Matrix version the totals match (dirty-item cursor for Refresh).
  uint64_t synced_version_ = 0;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_POPULARITY_H_
