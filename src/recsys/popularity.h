#ifndef SPA_RECSYS_POPULARITY_H_
#define SPA_RECSYS_POPULARITY_H_

#include "recsys/recommender.h"

/// \file
/// Non-personalized popularity baseline: the weakest comparator every
/// personalization claim must beat.

namespace spa::recsys {

/// \brief Ranks items by total interaction weight.
class PopularityRecommender : public Recommender {
 public:
  spa::Status Fit(const InteractionMatrix& matrix) override;
  std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const override;
  std::string name() const override { return "Popularity"; }

 private:
  const InteractionMatrix* matrix_ = nullptr;
  std::vector<Scored> ranked_;  // all items by popularity
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_POPULARITY_H_
