#include "recsys/evaluator.h"

#include <algorithm>
#include <cmath>

namespace spa::recsys {

TopKMetrics EvaluateTopK(const Recommender& recommender,
                         const RelevanceSets& held_out, size_t k) {
  TopKMetrics metrics;
  if (k == 0) return metrics;

  double precision_sum = 0.0;
  double recall_sum = 0.0;
  double ndcg_sum = 0.0;
  double ap_sum = 0.0;
  size_t hits_users = 0;
  size_t evaluated = 0;

  for (const auto& [user, relevant] : held_out) {
    if (relevant.empty()) continue;
    CandidateQuery query;
    query.user = user;
    query.k = k;
    query.exclude_seen = ExcludeSeen::kYes;
    const std::vector<Scored> recs =
        recommender.RecommendCandidates(query);
    if (recs.empty()) {
      ++evaluated;  // counted with zero contribution
      continue;
    }
    ++evaluated;

    size_t hits = 0;
    double dcg = 0.0;
    double ap = 0.0;
    for (size_t rank = 0; rank < recs.size(); ++rank) {
      if (relevant.contains(recs[rank].item)) {
        ++hits;
        dcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
        ap += static_cast<double>(hits) /
              (static_cast<double>(rank) + 1.0);
      }
    }
    const size_t ideal_hits = std::min(relevant.size(), k);
    double idcg = 0.0;
    for (size_t rank = 0; rank < ideal_hits; ++rank) {
      idcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
    }

    precision_sum +=
        static_cast<double>(hits) / static_cast<double>(recs.size());
    recall_sum +=
        static_cast<double>(hits) / static_cast<double>(relevant.size());
    if (idcg > 0.0) ndcg_sum += dcg / idcg;
    if (!relevant.empty()) {
      ap_sum += ap / static_cast<double>(
                         std::min(relevant.size(), k));
    }
    if (hits > 0) ++hits_users;
  }

  if (evaluated > 0) {
    const double n = static_cast<double>(evaluated);
    metrics.precision = precision_sum / n;
    metrics.recall = recall_sum / n;
    metrics.ndcg = ndcg_sum / n;
    metrics.map = ap_sum / n;
    metrics.hit_rate = static_cast<double>(hits_users) / n;
  }
  metrics.users_evaluated = evaluated;
  return metrics;
}

}  // namespace spa::recsys
