#ifndef SPA_RECSYS_KNN_CF_H_
#define SPA_RECSYS_KNN_CF_H_

#include <cstdint>

#include "recsys/recommender.h"

/// \file
/// Neighborhood collaborative filtering: the canonical memory-based
/// recommenders of the survey literature the paper cites ([1], [2]).
/// Both variants use cosine similarity over interaction weights.

namespace spa::recsys {

struct KnnConfig {
  size_t neighbors = 20;     ///< k in k-nearest-neighbors
  double min_similarity = 1e-6;
};

/// \brief User-based CF: score(u, i) = sum over similar users v of
/// sim(u, v) * weight(v, i).
class UserKnnRecommender : public Recommender {
 public:
  explicit UserKnnRecommender(KnnConfig config = {});

  spa::Status Fit(const InteractionMatrix& matrix) override;
  std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const override;
  std::string name() const override { return "UserKNN"; }

  /// Cosine similarity between two users (exposed for tests).
  double Similarity(UserId a, UserId b) const;

 private:
  KnnConfig config_;
  const InteractionMatrix* matrix_ = nullptr;
};

/// \brief Item-based CF: score(u, i) = sum over items j the user has,
/// of sim(i, j) * weight(u, j).
class ItemKnnRecommender : public Recommender {
 public:
  explicit ItemKnnRecommender(KnnConfig config = {});

  spa::Status Fit(const InteractionMatrix& matrix) override;
  std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const override;
  std::string name() const override { return "ItemKNN"; }

  double Similarity(ItemId a, ItemId b) const;

 private:
  KnnConfig config_;
  const InteractionMatrix* matrix_ = nullptr;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_KNN_CF_H_
