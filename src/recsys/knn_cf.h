#ifndef SPA_RECSYS_KNN_CF_H_
#define SPA_RECSYS_KNN_CF_H_

#include <cstdint>
#include <memory>

#include "recsys/recommender.h"
#include "recsys/similarity_index.h"

/// \file
/// Neighborhood collaborative filtering: the canonical memory-based
/// recommenders of the survey literature the paper cites ([1], [2]).
/// Both variants use cosine similarity over interaction weights.
///
/// Neighborhoods are query-independent: the top-k most similar
/// users/items above `min_similarity`, regardless of which candidates
/// a particular request admits (exclusions are applied when scores are
/// accumulated). With `use_index` (the default) they are precomputed
/// once at `Fit` into a `SimilarityIndex` and serving is a sorted
/// adjacency walk; with `use_index=false` the same neighborhoods are
/// recomputed per request — kept as the exact-parity reference path
/// (both paths produce bitwise-identical rankings).
///
/// An indexed recommender hard-fails (`SPA_CHECK`) when the fitted
/// matrix was mutated after `Fit` and not brought back in sync:
/// serving a stale neighbor graph is a silent-corruption bug. Unlike
/// the original contract (refit or die), `Refresh()` now repairs the
/// index incrementally — only the rows a mutation could have changed
/// are rebuilt — and serving resumes with rankings bitwise-identical
/// to a full refit.

namespace spa::recsys {

struct KnnConfig {
  size_t neighbors = 20;     ///< k in k-nearest-neighbors
  double min_similarity = 1e-6;
  /// Precompute the truncated neighbor index at Fit (false = lazy
  /// per-request similarity recomputation, the parity reference).
  bool use_index = true;
  /// Worker threads for the index build (0 = auto).
  size_t index_build_threads = 0;
  /// Incremental Refresh() falls back to a full index rebuild when
  /// the affected rows exceed this fraction of all rows.
  double refresh_full_rebuild_fraction = 0.25;
};

/// \brief User-based CF: score(u, i) = sum over similar users v of
/// sim(u, v) * weight(v, i).
class UserKnnRecommender : public Recommender {
 public:
  explicit UserKnnRecommender(KnnConfig config = {});

  spa::Status Fit(const InteractionMatrix& matrix) override;
  /// Rebuilds only the user rows affected by post-Fit matrix
  /// mutations; affected users = the rebuilt rows (a user's scores
  /// read its own neighbor row plus live neighbor vectors, and any
  /// row referencing a mutated vector is in the rebuilt set). Lazy
  /// (index-free) instances serve live similarities, so every user is
  /// reported affected.
  spa::Status Refresh(RefreshOutcome* outcome) override;
  std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const override;
  void RecommendCandidatesInto(const CandidateQuery& query,
                               std::vector<Scored>* out) const override;
  std::string name() const override { return "UserKNN"; }
  const SimilarityIndexStats* index_stats() const override;

  /// Cosine similarity between two users (exposed for tests; always
  /// computed live against the current matrix).
  double Similarity(UserId a, UserId b) const;

  const SimilarityIndex<UserId>* index() const { return index_.get(); }

 private:
  KnnConfig config_;
  const InteractionMatrix* matrix_ = nullptr;
  std::unique_ptr<SimilarityIndex<UserId>> index_;
};

/// \brief Item-based CF: score(u, i) = sum over items j the user has,
/// of sim(i, j) * weight(u, j).
class ItemKnnRecommender : public Recommender {
 public:
  explicit ItemKnnRecommender(KnnConfig config = {});

  spa::Status Fit(const InteractionMatrix& matrix) override;
  /// Rebuilds only the item rows affected by post-Fit matrix
  /// mutations; affected users = everyone holding a rebuilt item
  /// (their scores sum over their own items' neighbor rows).
  spa::Status Refresh(RefreshOutcome* outcome) override;
  std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const override;
  void RecommendCandidatesInto(const CandidateQuery& query,
                               std::vector<Scored>* out) const override;
  std::string name() const override { return "ItemKNN"; }
  const SimilarityIndexStats* index_stats() const override;

  double Similarity(ItemId a, ItemId b) const;

  const SimilarityIndex<ItemId>* index() const { return index_.get(); }

 private:
  KnnConfig config_;
  const InteractionMatrix* matrix_ = nullptr;
  std::unique_ptr<SimilarityIndex<ItemId>> index_;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_KNN_CF_H_
