#ifndef SPA_RECSYS_ENGINE_H_
#define SPA_RECSYS_ENGINE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/frequency_map.h"
#include "common/profiler.h"
#include "common/rw_lock.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/workspace_pool.h"
#include "recsys/emotion_aware.h"
#include "recsys/hybrid.h"
#include "recsys/popularity.h"
#include "recsys/request.h"
#include "recsys/similarity_index.h"
#include "sum/sum_service.h"

/// \file
/// The serving facade of the advice stage: owns the recommender stack
/// (base components blended by a weighted hybrid, plus the
/// emotion-aware re-ranker) and answers `RecommendRequest`s one at a
/// time or in thread-pool-parallel batches. This is the seam every
/// scaling layer (sharding, caching, async) plugs into — the streaming
/// layer (`recsys/serving_pipeline.h`) drains its admission queue
/// through `RecommendBatchInline` and its writer lane through
/// `ApplyInteractions`.
///
/// Emotional context comes from a `sum::SumService`: each request pins
/// the service's current `SumSnapshot` — and `RecommendBatch` pins
/// **one** snapshot for the whole batch, so batched rankings are
/// mutually consistent and the N-1 extra snapshot acquisitions
/// disappear — while the Attributes Manager keeps applying
/// `SumUpdate`s concurrently (update-while-serve).
///
/// ## Live interaction updates
///
/// An engine fitted with `Fit(&matrix)` (write access) accepts
/// `ApplyInteractions(batch)`: the batch is routed into the sharded
/// interaction store, every component's fitted state is repaired
/// incrementally (`Recommender::Refresh` — for the KNN components
/// only the similarity-index rows a mutation could change are
/// rebuilt), and only the cache entries of affected users are
/// dropped. Serving after the call is bitwise-identical to a full
/// refit on the same matrix. Writers take the engine's exclusive
/// serve lock; requests hold the shared side, so update-while-serve
/// is safe by construction. Mutating the matrix *without* going
/// through `ApplyInteractions` remains what it always was: cache
/// entries stop matching, and indexed KNN components hard-fail until
/// a Refresh or refit.
///
/// ## Response cache
///
/// The engine memoizes full `RecommendResponse`s per user. A cached
/// entry is served only when ALL of the following match, which makes
/// invalidation precise and automatic:
///
///  * **fit epoch + interaction-matrix version** — the matrix version
///    is compared against the *live* matrix at lookup, so mutating
///    the fitted matrix behind the engine's back invalidates every
///    entry; a refit additionally clears the cache eagerly.
///    `ApplyInteractions` instead re-stamps the entries of unaffected
///    users to the new version (their recompute provably produces the
///    same bytes) and erases exactly the affected users' entries;
///  * **SUM user version** — `SumSnapshot::UserVersion(user)` at serve
///    time; a single `SumService::Apply` touching the user bumps it,
///    so exactly that user's entries stop matching while other users'
///    entries keep hitting;
///  * **request fingerprint** — user, k, exclude-seen policy, explain
///    flag, exclusion set and allowlist compared exactly (a 64-bit
///    hash indexes the entry; equality is verified on the canonical
///    fields, so hash collisions cannot serve a wrong response).
///
/// Requests carrying an `emotion_override` snapshot bypass the cache
/// entirely (their context is caller-pinned, not service-versioned).
/// Entries are evicted LRU beyond `response_cache_capacity`; stale
/// entries found on lookup are dropped in place. Hits return the
/// memoized response byte-identically, so cached and uncached serving
/// are indistinguishable to callers.
///
/// ## Frequency-aware tiering and re-warming
///
/// The cache is *frequency-tiered* on top of LRU: every cacheable
/// lookup touches a sharded per-user `FrequencyMap` (and computed
/// responses touch a per-item map for hot-item telemetry), with
/// periodic multiplicative decay every `cache_decay_interval`
/// lookups. At capacity, a newcomer is admitted only when its user's
/// decayed access count is **at least** the LRU victim's
/// (`cache_frequency_admission`) — strictly-colder one-hit wonders
/// are rejected (counted as `admission_rejections`) instead of
/// evicting the hot set, while ties preserve plain LRU behavior.
/// Admission only ever changes *which* requests are memoized, never
/// the bytes of any served response.
///
/// `ApplyInteractions` additionally **re-warms** the hot set: among
/// the affected users whose entries it just erased, those with
/// frequency >= `rewarm_min_frequency` (hottest first, at most
/// `rewarm_limit` entries) are re-served into the cache at the
/// post-apply versions *before the exclusive serve lock is
/// released*, so concurrent readers never observe the invalidation
/// as a miss. A re-warmed entry is byte-identical to a cold
/// recompute at the same versions (pinned by the re-warm tests).
///
/// ## Popularity fallback tier
///
/// `RecommendFallback` serves a request from a popularity-only tier
/// (no KNN fan-out, no blending, no emotional re-rank): an
/// engine-owned `PopularityRecommender` fitted alongside the stack
/// and incrementally refreshed by every `ApplyInteractions`. The
/// streaming pipeline's degrade policy uses it to answer
/// deadline-pressed requests cheaply; responses are flagged
/// `degraded = true` and are deterministic at their pinned matrix
/// version (fallback ranking ignores SUM state), but they are NOT
/// bitwise-equal to full serving — the one sanctioned parity
/// exception, see docs/ARCHITECTURE.md.

namespace spa::recsys {

/// \brief Engine tunables.
struct EngineConfig {
  /// Candidates fetched from each hybrid component before blending.
  size_t component_depth = 100;
  /// The re-ranker sees `k * rerank_overfetch` base candidates so
  /// emotional alignment has room to move items into the top k.
  size_t rerank_overfetch = 3;
  /// Master switch for the emotion-aware stage.
  bool emotion_enabled = true;
  /// Emotion-aware re-ranking parameters.
  EmotionRerankConfig rerank;
  /// Worker threads for RecommendBatch (0 = hardware concurrency).
  size_t batch_threads = 0;
  /// Max memoized responses (LRU beyond this; 0 disables the cache).
  size_t response_cache_capacity = 4096;
  /// Frequency-aware admission: at capacity, reject newcomers whose
  /// user's decayed access count is strictly below the LRU victim's
  /// (ties admit, reproducing plain LRU). Off = pure LRU.
  bool cache_frequency_admission = true;
  /// Multiplier applied to every frequency count per decay epoch.
  double cache_decay_factor = 0.5;
  /// Cacheable lookups between frequency decay epochs (0 = never).
  uint64_t cache_decay_interval = 4096;
  /// Max cache entries re-warmed per ApplyInteractions (0 disables
  /// re-warming).
  size_t rewarm_limit = 64;
  /// Min decayed user frequency for an invalidated entry to qualify
  /// for re-warming.
  double rewarm_min_frequency = 2.0;
  /// User/item-hash shard count for interaction stores the platform
  /// builds around this engine (`core::Spa` constructs its matrix
  /// with it); 1 reproduces the unsharded layout bit-for-bit.
  size_t interaction_shards = 1;
  /// Granularity of the engine's hierarchical profiler (L1 whole-op /
  /// L2 per-stage / L3 stage internals — see `common/profiler.h`).
  /// Disabled items cost one branch on the serving path.
  ProfilerLevel profiler_level = ProfilerLevel::kL3;
};

/// \brief Fit-time index report of one stack component.
struct ComponentIndexStats {
  std::string component;        ///< Recommender::name()
  SimilarityIndexStats stats;   ///< build time / size / version stamp
};

/// \brief Hit/miss counters of the response cache.
struct EngineCacheStats {
  uint64_t hits = 0;
  /// Lookups that had to compute (includes stale invalidations).
  uint64_t misses = 0;
  /// Entries dropped because a version guard no longer matched, or
  /// because ApplyInteractions marked their user affected.
  uint64_t stale_evictions = 0;
  /// Entries dropped by LRU capacity pressure.
  uint64_t capacity_evictions = 0;
  /// Inserts refused at capacity because the newcomer's user was
  /// strictly colder than the LRU victim's (frequency admission).
  uint64_t admission_rejections = 0;
};

/// \brief What one ApplyInteractions call did.
struct LiveUpdateReport {
  size_t interactions = 0;       ///< batch size routed into the shards
  size_t rows_refreshed = 0;     ///< index rows rebuilt across components
  bool full_rebuild = false;     ///< some component rebuilt everything
  /// Distinct users whose rankings may have changed (batch users plus
  /// component-reported reverse neighbors); 0 with `invalidated_all`.
  size_t affected_users = 0;
  bool invalidated_all = false;  ///< cache dropped engine-wide
  size_t cache_entries_invalidated = 0;
  /// Hot invalidated users proactively re-served into the cache at
  /// the post-apply versions before the writer lock was released.
  size_t users_rewarmed = 0;
  size_t entries_rewarmed = 0;
  double apply_seconds = 0.0;    ///< matrix shard writes
  double refresh_seconds = 0.0;  ///< component state repair
  double rewarm_seconds = 0.0;   ///< hot-set re-serve after apply
  /// Interaction-matrix version after the batch landed (each
  /// interaction bumps it once). Streaming callers correlate this with
  /// the `BatchPin::matrix_version` of later responses.
  uint64_t matrix_version = 0;
};

/// \brief Cumulative ApplyInteractions counters.
struct LiveUpdateStats {
  uint64_t batches = 0;
  uint64_t interactions = 0;
  uint64_t rows_refreshed = 0;
  uint64_t full_rebuilds = 0;
  uint64_t cache_entries_invalidated = 0;
  uint64_t users_rewarmed = 0;
  uint64_t entries_rewarmed = 0;
  double apply_seconds = 0.0;
  double refresh_seconds = 0.0;
  double rewarm_seconds = 0.0;
};

/// \brief Per-stage serving latency counters (cumulative) — the
/// compatibility view over the engine's hierarchical `Profiler`
/// (`profiler()` exposes the full L1/L2/L3 item catalog).
///
/// Each stage snapshots one L2 profiler item: count/total/max plus a
/// log-scale latency histogram and its p50/p95/p99 estimates. The
/// histogram geometry, the `histogram.total() == count` quiescent
/// invariant, and the JSON export format are documented in
/// `docs/METRICS.md`.
struct StageStats {
  struct Stage {
    uint64_t count = 0;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
    /// Latency quantile estimates in seconds (0 when count == 0).
    double p50_seconds = 0.0;
    double p95_seconds = 0.0;
    double p99_seconds = 0.0;
    /// Full log-scale histogram snapshot (seconds).
    LogHistogram histogram;
  };
  Stage candidate_gen;  ///< hybrid blend (component fan-out)
  Stage rerank;         ///< emotion re-score + sort + materialize
  Stage cache_lookup;   ///< response-cache probes (hits and misses)
};

/// \brief The consistency point a (micro-)batch served against: the
/// engine's fit epoch, the interaction-matrix version and the global
/// SUM snapshot version, all captured while the batch held the shared
/// serve lock. Two responses pinned to the same triple were computed
/// from identical state, so replaying the same requests synchronously
/// at that triple reproduces them byte-for-byte — the invariant the
/// streaming pipeline's differential tests are built on.
struct BatchPin {
  uint64_t fit_epoch = 0;
  uint64_t matrix_version = 0;
  uint64_t sum_version = 0;
};

/// \brief Owns the recommender stack and serves requests.
///
/// Assembly order: AddComponent(...) / SetItemEmotionProfile(...) /
/// set_sum_service(...), then Fit(matrix). `Recommend` is const and
/// thread-safe once fitted; `RecommendBatch` fans requests out over an
/// internal `spa::ThreadPool` and returns results in request order,
/// identical to sequential `Recommend` calls.
class RecsysEngine {
 public:
  explicit RecsysEngine(EngineConfig config = {});
  /// Out-of-line: the pooled ServeScratch is only complete in the .cc.
  ~RecsysEngine();

  // ---- stack assembly ----------------------------------------------------
  /// Adds a base recommender with its hybrid blend weight.
  void AddComponent(std::unique_ptr<Recommender> component,
                    double weight);
  /// Registers the emotional-resonance profile of an item.
  void SetItemEmotionProfile(ItemId item, const EmotionProfile& profile);
  /// SUM service consulted for emotional context (borrowed; may be
  /// null — then only requests with `emotion_override` get the
  /// emotional stage). Each Recommend pins the service's current
  /// snapshot. Switching services clears the response cache.
  void set_sum_service(const sum::SumService* sums);

  /// Fits every component; the matrix must outlive the engine. Clears
  /// the response cache and captures the matrix version for the cache
  /// key. Read-only serving: ApplyInteractions needs Fit(&matrix).
  spa::Status Fit(const InteractionMatrix& matrix);
  /// Same, but keeps write access so ApplyInteractions can route live
  /// updates into the matrix.
  spa::Status Fit(InteractionMatrix* matrix);
  bool fitted() const { return fitted_; }

  // ---- serving -----------------------------------------------------------
  /// Serves one request (from the response cache when an entry with
  /// matching versions exists). Errors: InvalidArgument (bad request),
  /// FailedPrecondition (engine not fitted).
  spa::Result<RecommendResponse> Recommend(
      const RecommendRequest& request) const;

  /// Allocation-aware variant of `Recommend`: the response is written
  /// into `*out` (replacing its contents but reusing its capacity), so
  /// a caller recycling one `RecommendResponse` across requests serves
  /// warm cache hits without a single heap allocation — the regression
  /// test gates this with an operator-new counter. Byte-identical
  /// responses to `Recommend`.
  spa::Status RecommendInto(const RecommendRequest& request,
                            RecommendResponse* out) const;

  /// Serves a batch in parallel; results align with `requests` by index
  /// and are byte-identical to sequential `Recommend` calls made
  /// against the batch's pinned SUM snapshot (one snapshot for the
  /// whole batch: rankings are mutually consistent even while updates
  /// land). `pin` (optional) receives the consistency point the batch
  /// served against.
  std::vector<spa::Result<RecommendResponse>> RecommendBatch(
      const std::vector<RecommendRequest>& requests,
      BatchPin* pin = nullptr);

  /// Serves a micro-batch sequentially **in the calling thread** under
  /// one shared-lock hold and one pinned SUM snapshot — the primitive
  /// the streaming `ServingPipeline` drains its admission queue with
  /// (its workers are already parallel, so fanning out again over the
  /// batch pool would only add contention). Results are byte-identical
  /// to `RecommendBatch` / sequential `Recommend` on the same requests
  /// at the same `BatchPin`.
  std::vector<spa::Result<RecommendResponse>> RecommendBatchInline(
      const std::vector<RecommendRequest>& requests,
      BatchPin* pin = nullptr) const;

  /// Serves a micro-batch through the **explicit staged dataflow**:
  /// admit → candidate-gen → blend → rerank → explain, each stage run
  /// stage-major across the whole batch (every request finishes stage
  /// N before any request enters stage N+1). Same locking discipline
  /// as `RecommendBatchInline` — one shared-lock hold, one pinned SUM
  /// snapshot — and byte-identical results at the same `BatchPin`: the
  /// stages compose the exact per-request arithmetic of the fused
  /// path, in the same order, so parity holds by construction (and is
  /// pinned by the stage-pipeline differential tests). Overlap between
  /// micro-batches comes from the streaming pipeline's drain workers,
  /// which run staged batches concurrently on `common/thread_pool`.
  /// Stage timings land in the engine profiler as L2 items plus one
  /// L1 `batch.serve` recording per call.
  std::vector<spa::Result<RecommendResponse>> RecommendBatchStaged(
      const std::vector<RecommendRequest>& requests,
      BatchPin* pin = nullptr) const;

  /// Serves one request from the popularity-only fallback tier: cheap
  /// (no component fan-out, no emotional stage, no cache), with the
  /// response flagged `degraded = true`. `pin` (optional) receives the
  /// consistency point; the ranking depends only on the pinned matrix
  /// version, so replaying the same request on a reference engine that
  /// applied the same interaction history reproduces it byte-for-byte.
  /// Same errors as `Recommend`.
  spa::Status RecommendFallbackInto(const RecommendRequest& request,
                                    RecommendResponse* out,
                                    BatchPin* pin = nullptr) const;

  /// Result-returning wrapper over `RecommendFallbackInto`.
  spa::Result<RecommendResponse> RecommendFallback(
      const RecommendRequest& request, BatchPin* pin = nullptr) const;

  // ---- live updates ------------------------------------------------------
  /// Routes one interaction batch into the (mutable) fitted matrix,
  /// repairs every component's fitted state incrementally, and drops
  /// exactly the affected users' cache entries. Serialized against
  /// serving via the engine's writer lock. Errors: FailedPrecondition
  /// when not fitted or fitted without write access.
  spa::Result<LiveUpdateReport> ApplyInteractions(
      const std::vector<Interaction>& batch);

  /// Cumulative ApplyInteractions counters.
  LiveUpdateStats live_update_stats() const;

  // ---- introspection -----------------------------------------------------
  const EngineConfig& config() const { return config_; }
  const HybridRecommender& hybrid() const { return *hybrid_; }
  EmotionAwareReranker* reranker() { return &reranker_; }
  size_t batch_thread_count();

  /// Resizes the batch pool (tears down the old one after in-flight
  /// work drains; not thread-safe against concurrent RecommendBatch).
  void set_batch_threads(size_t threads);

  /// Fit-time similarity-index statistics of every component that
  /// keeps one (build time, memory, matrix version stamp). Empty
  /// before Fit or when no component is indexed.
  std::vector<ComponentIndexStats> index_stats() const;

  /// Response-cache counters (cumulative since construction).
  EngineCacheStats cache_stats() const;
  /// Current decayed access count of one user / one item in the
  /// cache-tiering frequency maps (0 when untracked).
  double user_frequency(UserId user) const;
  double item_frequency(ItemId item) const;
  /// The per-user frequency tier (touches/decay epochs/live keys).
  FrequencyMapStats user_frequency_stats() const;
  /// Number of live cache entries.
  size_t cache_size() const;
  /// Drops every cached response (counters are kept).
  void ClearResponseCache() const;

  /// Per-stage serving latency counters (cumulative since
  /// construction; candidate-gen and rerank count computed responses,
  /// cache-lookup counts probes). A projection of `profiler()`'s L2
  /// items kept for compatibility with existing consumers.
  StageStats stage_stats() const;

  /// The engine's leveled hierarchical profiler (L1 whole-op, L2
  /// per-stage, L3 stage internals). Mutable so recording stays
  /// possible from const serving paths; callers may `AdvanceEpoch()`
  /// between quiesced measurement windows.
  Profiler& profiler() const { return profiler_; }

 private:
  /// Canonical identity of a cacheable request.
  struct CacheKey {
    UserId user = 0;
    size_t k = 0;
    ExcludeSeen exclude_seen = ExcludeSeen::kYes;
    bool explain = false;
    std::unordered_set<ItemId> exclude_items;
    std::optional<std::unordered_set<ItemId>> candidate_items;
  };
  struct CacheEntry {
    uint64_t hash = 0;
    CacheKey key;
    /// Version guards: all must match the serve-time context.
    uint64_t fit_epoch = 0;
    uint64_t matrix_version = 0;
    uint64_t sum_user_version = 0;
    RecommendResponse response;
  };

  static uint64_t FingerprintRequest(const RecommendRequest& request);
  static bool KeyMatches(const CacheKey& key,
                         const RecommendRequest& request);

  /// Shared Fit body; `live` is the write handle (null = read-only).
  spa::Status FitInternal(const InteractionMatrix& matrix,
                          InteractionMatrix* live);

  /// Counts one cacheable lookup toward the decay cadence and runs a
  /// decay epoch on both frequency tiers every
  /// `cache_decay_interval`-th call.
  void MaybeDecayFrequencies() const;

  /// Copies the cached response into `*out` (capacity-reusing
  /// copy-assign — the warm-hit path allocates nothing) when a fresh
  /// entry matches; returns whether it did.
  bool CacheLookupInto(uint64_t hash, const RecommendRequest& request,
                       uint64_t sum_user_version,
                       RecommendResponse* out) const;
  void CacheInsert(uint64_t hash, const RecommendRequest& request,
                   uint64_t sum_user_version,
                   const RecommendResponse& response) const;

  /// Per-request admission state threaded through the staged dataflow:
  /// everything `RecommendImpl` decides before the serve stages run.
  struct RequestContext {
    spa::Status status = spa::Status::OK();  ///< admit-time failure
    bool done = false;          ///< failed, or served from cache
    sum::SumSnapshotPtr snapshot;  ///< per-request pin (single path)
    const sum::SmartUserModel* model = nullptr;
    uint64_t sum_user_version = 0;
    bool cacheable = false;
    uint64_t fingerprint = 0;
  };

  /// Per-request intermediate state between serve stages (defined in
  /// the .cc; sized/POD enough to live in a batch-long vector).
  struct ServeState;
  /// A pooled ServeState plus its scoring workspace — recycled across
  /// requests so the warm serve path never touches the heap (defined
  /// in the .cc).
  struct ServeScratch;

  /// Checks a recycled scratch out of / back into the free list
  /// (records `workspace.acquire` / `workspace.release`).
  std::unique_ptr<ServeScratch> AcquireScratch() const;
  void ReleaseScratch(std::unique_ptr<ServeScratch> scratch) const;

  /// Validation + fitted check + snapshot/model resolution + cache
  /// probe — the front half of `RecommendImpl`, shared verbatim by the
  /// fused and the staged paths. A cache hit is copy-assigned into
  /// `*hit_out` (and `ctx->done` set). Records `stage.cache_lookup`.
  void AdmitRequest(const RecommendRequest& request,
                    const sum::SumSnapshotPtr& batch_snapshot,
                    RequestContext* ctx,
                    RecommendResponse* hit_out) const;

  // The serving dataflow, stage by stage. `Serve` composes the four
  // sequentially (the fused per-request path); `RecommendBatchStaged`
  // runs each across a whole micro-batch before the next. Identical
  // per-request arithmetic in identical order either way.
  void ServeCandidates(const RecommendRequest& request,
                       ServeState* state) const;
  void ServeBlend(ServeState* state) const;
  void ServeRerank(const RecommendRequest& request,
                   const sum::SmartUserModel* model,
                   ServeState* state) const;
  void ServeExplain(const RecommendRequest& request,
                    ServeState* state) const;

  /// Serving core; the caller holds the shared serve lock.
  /// `batch_snapshot` (may be null) is the batch-pinned SUM view —
  /// single requests pass null and pin their own. The response lands
  /// in `*out` by capacity-reusing copy-assign; the serve stages run
  /// on a pooled `ServeScratch`, so a warm caller allocates nothing on
  /// cache hits and only response-copy growth on misses.
  spa::Status RecommendIntoImpl(
      const RecommendRequest& request,
      const sum::SumSnapshotPtr& batch_snapshot,
      RecommendResponse* out) const;

  /// Result-returning wrapper over RecommendIntoImpl (byte-identical).
  spa::Result<RecommendResponse> RecommendImpl(
      const RecommendRequest& request,
      const sum::SumSnapshotPtr& batch_snapshot) const;

  EngineConfig config_;
  std::unique_ptr<HybridRecommender> hybrid_;
  EmotionAwareReranker reranker_;
  const sum::SumService* sums_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;  // lazily created
  bool fitted_ = false;
  /// Bumped by every Fit; cache entries from earlier fits never match.
  uint64_t fit_epoch_ = 0;
  /// The fitted matrix (borrowed; outlives the engine). Its live
  /// version() is a cache guard: mutations after Fit stop every
  /// earlier entry from matching.
  const InteractionMatrix* matrix_ = nullptr;
  /// Write handle to the same matrix; null when fitted via the const
  /// overload (ApplyInteractions then refuses).
  InteractionMatrix* live_matrix_ = nullptr;

  /// Serve-while-update coordination: requests hold the shared side,
  /// ApplyInteractions/Fit the exclusive side. Writer-priority —
  /// continuous read traffic must not starve live updates.
  mutable WriterPriorityMutex serve_mutex_;

  /// Response cache: LRU list (front = most recent) indexed by request
  /// fingerprint. Guarded by cache_mutex_ (Recommend stays const and
  /// thread-safe).
  mutable std::mutex cache_mutex_;
  mutable std::list<CacheEntry> cache_lru_;
  mutable std::unordered_map<uint64_t, std::list<CacheEntry>::iterator>
      cache_index_;
  mutable EngineCacheStats cache_stats_;

  /// Frequency tiers backing cache admission and re-warm selection.
  /// Their shard mutexes are leaves: FrequencyMap never calls back
  /// into cache_mutex_ or serve_mutex_, so touching them while either
  /// is held cannot deadlock.
  mutable FrequencyMap user_freq_;
  mutable FrequencyMap item_freq_;
  /// Cacheable lookups since the last decay epoch (drives the
  /// `cache_decay_interval` cadence).
  mutable std::atomic<uint64_t> lookups_since_decay_{0};
  /// True while ApplyInteractions re-serves hot users under the
  /// exclusive serve lock; suppresses frequency touches so re-warm
  /// traffic cannot inflate its own users' counts. Only written under
  /// the exclusive serve lock, only read with the lock held (either
  /// side), so no synchronization beyond the lock is needed.
  mutable bool rewarm_in_progress_ = false;

  /// The popularity-only fallback tier: fitted by Fit, incrementally
  /// refreshed by ApplyInteractions (bitwise == refit), served by
  /// RecommendFallback under the shared serve lock.
  mutable PopularityRecommender fallback_pop_;

  /// Leveled latency profiler (updated on every serve, including
  /// cache hits, by every batch worker — lock-free, see
  /// `common/profiler.h`).
  mutable Profiler profiler_;

  /// Live-update counters (mutated only under the exclusive serve
  /// lock; read under the shared side).
  LiveUpdateStats live_stats_;

  /// Guards lazy pool construction: RecommendBatch creates the pool
  /// outside the serve lock, so it can race ApplyInteractions'
  /// EnsurePool call for the parallel shard apply.
  std::mutex pool_mu_;
  ThreadPool* EnsurePool();

  /// Page-granular memory recycled by the scoring accumulators.
  /// Declared before the scratch free list: scratches release their
  /// blocks into the pool on destruction, so the pool must outlive
  /// them (members destroy in reverse declaration order).
  mutable WorkspacePool workspace_pool_;
  /// Recycled serve scratches (state + workspace), guarded by
  /// scratch_mu_. Capacities persist across requests — the warm serve
  /// path performs zero heap allocations.
  mutable std::mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<ServeScratch>> scratch_free_;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_ENGINE_H_
