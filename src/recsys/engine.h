#ifndef SPA_RECSYS_ENGINE_H_
#define SPA_RECSYS_ENGINE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "recsys/emotion_aware.h"
#include "recsys/hybrid.h"
#include "recsys/request.h"
#include "sum/sum_store.h"

/// \file
/// The serving facade of the advice stage: owns the recommender stack
/// (base components blended by a weighted hybrid, plus the
/// emotion-aware re-ranker) and answers `RecommendRequest`s one at a
/// time or in thread-pool-parallel batches. This is the seam every
/// scaling layer (sharding, caching, async) plugs into.

namespace spa::recsys {

/// \brief Engine tunables.
struct EngineConfig {
  /// Candidates fetched from each hybrid component before blending.
  size_t component_depth = 100;
  /// The re-ranker sees `k * rerank_overfetch` base candidates so
  /// emotional alignment has room to move items into the top k.
  size_t rerank_overfetch = 3;
  /// Master switch for the emotion-aware stage.
  bool emotion_enabled = true;
  /// Emotion-aware re-ranking parameters.
  EmotionRerankConfig rerank;
  /// Worker threads for RecommendBatch (0 = hardware concurrency).
  size_t batch_threads = 0;
};

/// \brief Owns the recommender stack and serves requests.
///
/// Assembly order: AddComponent(...) / SetItemEmotionProfile(...) /
/// set_sum_store(...), then Fit(matrix). `Recommend` is const and
/// thread-safe once fitted; `RecommendBatch` fans requests out over an
/// internal `spa::ThreadPool` and returns results in request order,
/// identical to sequential `Recommend` calls.
class RecsysEngine {
 public:
  explicit RecsysEngine(EngineConfig config = {});

  // ---- stack assembly ----------------------------------------------------
  /// Adds a base recommender with its hybrid blend weight.
  void AddComponent(std::unique_ptr<Recommender> component,
                    double weight);
  /// Registers the emotional-resonance profile of an item.
  void SetItemEmotionProfile(ItemId item, const EmotionProfile& profile);
  /// SUM store consulted for emotional context (borrowed; may be null —
  /// then only requests with `emotion_override` get the emotional
  /// stage).
  void set_sum_store(const sum::SumStore* sums) { sums_ = sums; }

  /// Fits every component; the matrix must outlive the engine.
  spa::Status Fit(const InteractionMatrix& matrix);
  bool fitted() const { return fitted_; }

  // ---- serving -----------------------------------------------------------
  /// Serves one request. Errors: InvalidArgument (bad request),
  /// FailedPrecondition (engine not fitted).
  spa::Result<RecommendResponse> Recommend(
      const RecommendRequest& request) const;

  /// Serves a batch in parallel; results align with `requests` by index
  /// and are byte-identical to sequential `Recommend` calls.
  std::vector<spa::Result<RecommendResponse>> RecommendBatch(
      const std::vector<RecommendRequest>& requests);

  // ---- introspection -----------------------------------------------------
  const EngineConfig& config() const { return config_; }
  const HybridRecommender& hybrid() const { return *hybrid_; }
  EmotionAwareReranker* reranker() { return &reranker_; }
  size_t batch_thread_count();

  /// Resizes the batch pool (tears down the old one after in-flight
  /// work drains; not thread-safe against concurrent RecommendBatch).
  void set_batch_threads(size_t threads);

 private:
  EngineConfig config_;
  std::unique_ptr<HybridRecommender> hybrid_;
  EmotionAwareReranker reranker_;
  const sum::SumStore* sums_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;  // lazily created
  bool fitted_ = false;

  ThreadPool* EnsurePool();
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_ENGINE_H_
