#ifndef SPA_RECSYS_ENGINE_H_
#define SPA_RECSYS_ENGINE_H_

#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "recsys/emotion_aware.h"
#include "recsys/hybrid.h"
#include "recsys/request.h"
#include "recsys/similarity_index.h"
#include "sum/sum_service.h"

/// \file
/// The serving facade of the advice stage: owns the recommender stack
/// (base components blended by a weighted hybrid, plus the
/// emotion-aware re-ranker) and answers `RecommendRequest`s one at a
/// time or in thread-pool-parallel batches. This is the seam every
/// scaling layer (sharding, caching, async) plugs into.
///
/// Emotional context comes from a `sum::SumService`: each request pins
/// the service's current `SumSnapshot`, so serving always sees a
/// frozen, consistent view while the Attributes Manager keeps applying
/// `SumUpdate`s concurrently (update-while-serve).
///
/// ## Response cache
///
/// The engine memoizes full `RecommendResponse`s per user. A cached
/// entry is served only when ALL of the following match, which makes
/// invalidation precise and automatic:
///
///  * **fit epoch + interaction-matrix version** — the matrix version
///    is compared against the *live* matrix at lookup, so mutating
///    the fitted matrix (even without a refit) invalidates every
///    entry; a refit additionally clears the cache eagerly. (Stack
///    components that keep a fit-time similarity index — the default
///    KNN configuration — go further: they hard-fail on post-Fit
///    mutation, so a mutated matrix must be refitted before serving.)
///  * **SUM user version** — `SumSnapshot::UserVersion(user)` at serve
///    time; a single `SumService::Apply` touching the user bumps it,
///    so exactly that user's entries stop matching while other users'
///    entries keep hitting;
///  * **request fingerprint** — user, k, exclude-seen policy, explain
///    flag, exclusion set and allowlist compared exactly (a 64-bit
///    hash indexes the entry; equality is verified on the canonical
///    fields, so hash collisions cannot serve a wrong response).
///
/// Requests carrying an `emotion_override` snapshot bypass the cache
/// entirely (their context is caller-pinned, not service-versioned).
/// Entries are evicted LRU beyond `response_cache_capacity`; stale
/// entries found on lookup are dropped in place. Hits return the
/// memoized response byte-identically, so cached and uncached serving
/// are indistinguishable to callers.

namespace spa::recsys {

/// \brief Engine tunables.
struct EngineConfig {
  /// Candidates fetched from each hybrid component before blending.
  size_t component_depth = 100;
  /// The re-ranker sees `k * rerank_overfetch` base candidates so
  /// emotional alignment has room to move items into the top k.
  size_t rerank_overfetch = 3;
  /// Master switch for the emotion-aware stage.
  bool emotion_enabled = true;
  /// Emotion-aware re-ranking parameters.
  EmotionRerankConfig rerank;
  /// Worker threads for RecommendBatch (0 = hardware concurrency).
  size_t batch_threads = 0;
  /// Max memoized responses (LRU beyond this; 0 disables the cache).
  size_t response_cache_capacity = 4096;
};

/// \brief Fit-time index report of one stack component.
struct ComponentIndexStats {
  std::string component;        ///< Recommender::name()
  SimilarityIndexStats stats;   ///< build time / size / version stamp
};

/// \brief Hit/miss counters of the response cache.
struct EngineCacheStats {
  uint64_t hits = 0;
  /// Lookups that had to compute (includes stale invalidations).
  uint64_t misses = 0;
  /// Entries dropped because a version guard no longer matched.
  uint64_t stale_evictions = 0;
  /// Entries dropped by LRU capacity pressure.
  uint64_t capacity_evictions = 0;
};

/// \brief Owns the recommender stack and serves requests.
///
/// Assembly order: AddComponent(...) / SetItemEmotionProfile(...) /
/// set_sum_service(...), then Fit(matrix). `Recommend` is const and
/// thread-safe once fitted; `RecommendBatch` fans requests out over an
/// internal `spa::ThreadPool` and returns results in request order,
/// identical to sequential `Recommend` calls.
class RecsysEngine {
 public:
  explicit RecsysEngine(EngineConfig config = {});

  // ---- stack assembly ----------------------------------------------------
  /// Adds a base recommender with its hybrid blend weight.
  void AddComponent(std::unique_ptr<Recommender> component,
                    double weight);
  /// Registers the emotional-resonance profile of an item.
  void SetItemEmotionProfile(ItemId item, const EmotionProfile& profile);
  /// SUM service consulted for emotional context (borrowed; may be
  /// null — then only requests with `emotion_override` get the
  /// emotional stage). Each Recommend pins the service's current
  /// snapshot. Switching services clears the response cache.
  void set_sum_service(const sum::SumService* sums);

  /// Fits every component; the matrix must outlive the engine. Clears
  /// the response cache and captures the matrix version for the cache
  /// key.
  spa::Status Fit(const InteractionMatrix& matrix);
  bool fitted() const { return fitted_; }

  // ---- serving -----------------------------------------------------------
  /// Serves one request (from the response cache when an entry with
  /// matching versions exists). Errors: InvalidArgument (bad request),
  /// FailedPrecondition (engine not fitted).
  spa::Result<RecommendResponse> Recommend(
      const RecommendRequest& request) const;

  /// Serves a batch in parallel; results align with `requests` by index
  /// and are byte-identical to sequential `Recommend` calls.
  std::vector<spa::Result<RecommendResponse>> RecommendBatch(
      const std::vector<RecommendRequest>& requests);

  // ---- introspection -----------------------------------------------------
  const EngineConfig& config() const { return config_; }
  const HybridRecommender& hybrid() const { return *hybrid_; }
  EmotionAwareReranker* reranker() { return &reranker_; }
  size_t batch_thread_count();

  /// Resizes the batch pool (tears down the old one after in-flight
  /// work drains; not thread-safe against concurrent RecommendBatch).
  void set_batch_threads(size_t threads);

  /// Fit-time similarity-index statistics of every component that
  /// keeps one (build time, memory, matrix version stamp). Empty
  /// before Fit or when no component is indexed.
  std::vector<ComponentIndexStats> index_stats() const;

  /// Response-cache counters (cumulative since construction).
  EngineCacheStats cache_stats() const;
  /// Number of live cache entries.
  size_t cache_size() const;
  /// Drops every cached response (counters are kept).
  void ClearResponseCache() const;

 private:
  /// Canonical identity of a cacheable request.
  struct CacheKey {
    UserId user = 0;
    size_t k = 0;
    ExcludeSeen exclude_seen = ExcludeSeen::kYes;
    bool explain = false;
    std::unordered_set<ItemId> exclude_items;
    std::optional<std::unordered_set<ItemId>> candidate_items;
  };
  struct CacheEntry {
    uint64_t hash = 0;
    CacheKey key;
    /// Version guards: all must match the serve-time context.
    uint64_t fit_epoch = 0;
    uint64_t matrix_version = 0;
    uint64_t sum_user_version = 0;
    RecommendResponse response;
  };

  static uint64_t FingerprintRequest(const RecommendRequest& request);
  static bool KeyMatches(const CacheKey& key,
                         const RecommendRequest& request);

  /// Returns the cached response when a fresh entry matches.
  std::optional<RecommendResponse> CacheLookup(
      uint64_t hash, const RecommendRequest& request,
      uint64_t sum_user_version) const;
  void CacheInsert(uint64_t hash, const RecommendRequest& request,
                   uint64_t sum_user_version,
                   const RecommendResponse& response) const;

  /// The uncached serving path, against a pinned snapshot.
  spa::Result<RecommendResponse> Serve(
      const RecommendRequest& request,
      const sum::SmartUserModel* model) const;

  EngineConfig config_;
  std::unique_ptr<HybridRecommender> hybrid_;
  EmotionAwareReranker reranker_;
  const sum::SumService* sums_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;  // lazily created
  bool fitted_ = false;
  /// Bumped by every Fit; cache entries from earlier fits never match.
  uint64_t fit_epoch_ = 0;
  /// The fitted matrix (borrowed; outlives the engine). Its live
  /// version() is a cache guard: mutations after Fit stop every
  /// earlier entry from matching.
  const InteractionMatrix* matrix_ = nullptr;

  /// Response cache: LRU list (front = most recent) indexed by request
  /// fingerprint. Guarded by cache_mutex_ (Recommend stays const and
  /// thread-safe).
  mutable std::mutex cache_mutex_;
  mutable std::list<CacheEntry> cache_lru_;
  mutable std::unordered_map<uint64_t, std::list<CacheEntry>::iterator>
      cache_index_;
  mutable EngineCacheStats cache_stats_;

  ThreadPool* EnsurePool();
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_ENGINE_H_
