#include "recsys/interaction_matrix.h"

namespace spa::recsys {

void InteractionMatrix::Add(UserId user, ItemId item, double weight) {
  auto [uit, user_new] = by_user_.try_emplace(user);
  if (user_new) user_order_.push_back(user);
  double old_weight = 0.0;
  bool accumulated = false;
  for (auto& [existing_item, w] : uit->second) {
    if (existing_item == item) {
      old_weight = w;
      w += weight;
      accumulated = true;
      break;
    }
  }
  if (!accumulated) uit->second.emplace_back(item, weight);

  // Both sides of the cell move from old_weight to new_weight.
  const double new_weight = old_weight + weight;
  const double norm_delta =
      new_weight * new_weight - old_weight * old_weight;
  user_norm_sq_[user] += norm_delta;
  item_norm_sq_[item] += norm_delta;

  auto [iit, item_new] = by_item_.try_emplace(item);
  if (item_new) item_order_.push_back(item);
  if (accumulated) {
    for (auto& [existing_user, w] : iit->second) {
      if (existing_user == user) {
        w += weight;
        break;
      }
    }
  } else {
    iit->second.emplace_back(user, weight);
  }
  ++interactions_;
  ++version_;
}

const std::vector<std::pair<ItemId, double>>& InteractionMatrix::ItemsOf(
    UserId user) const {
  static const std::vector<std::pair<ItemId, double>> kEmpty;
  const auto it = by_user_.find(user);
  return it == by_user_.end() ? kEmpty : it->second;
}

const std::vector<std::pair<UserId, double>>& InteractionMatrix::UsersOf(
    ItemId item) const {
  static const std::vector<std::pair<UserId, double>> kEmpty;
  const auto it = by_item_.find(item);
  return it == by_item_.end() ? kEmpty : it->second;
}

bool InteractionMatrix::Seen(UserId user, ItemId item) const {
  for (const auto& [existing, w] : ItemsOf(user)) {
    if (existing == item) return true;
  }
  return false;
}

double InteractionMatrix::UserNormSquared(UserId user) const {
  const auto it = user_norm_sq_.find(user);
  return it == user_norm_sq_.end() ? 0.0 : it->second;
}

double InteractionMatrix::ItemNormSquared(ItemId item) const {
  const auto it = item_norm_sq_.find(item);
  return it == item_norm_sq_.end() ? 0.0 : it->second;
}

}  // namespace spa::recsys
