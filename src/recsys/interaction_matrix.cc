#include "recsys/interaction_matrix.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace spa::recsys {

ShardedInteractionMatrix::ShardedInteractionMatrix(size_t shards)
    : global_(std::make_unique<Global>()) {
  SPA_CHECK_MSG(shards > 0, "interaction matrix needs >= 1 shard");
  user_shards_.reserve(shards);
  item_shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    user_shards_.push_back(std::make_unique<UserShard>());
    item_shards_.push_back(std::make_unique<ItemShard>());
  }
}

size_t ShardedInteractionMatrix::UserShardIndex(UserId user) const {
  return user_shards_.size() == 1
             ? 0
             : SplitMix64(static_cast<uint64_t>(user)) %
                   user_shards_.size();
}

size_t ShardedInteractionMatrix::ItemShardIndex(ItemId item) const {
  return item_shards_.size() == 1
             ? 0
             : SplitMix64(static_cast<uint64_t>(item)) %
                   item_shards_.size();
}

void ShardedInteractionMatrix::Add(UserId user, ItemId item,
                                   double weight) {
  UserShard& us = *user_shards_[UserShardIndex(user)];
  ItemShard& is = *item_shards_[ItemShardIndex(item)];
  const uint64_t stamp =
      global_->version.fetch_add(1, std::memory_order_relaxed) + 1;

  std::scoped_lock lock(us.mu, is.mu);

  auto [uit, user_new] = us.rows.try_emplace(user);
  double old_weight = 0.0;
  bool accumulated = false;
  for (auto& [existing_item, w] : uit->second) {
    if (existing_item == item) {
      old_weight = w;
      w += weight;
      accumulated = true;
      break;
    }
  }
  if (!accumulated) uit->second.emplace_back(item, weight);

  // Both sides of the cell move from old_weight to new_weight.
  const double new_weight = old_weight + weight;
  const double norm_delta =
      new_weight * new_weight - old_weight * old_weight;
  us.norm_sq[user] += norm_delta;
  is.norm_sq[item] += norm_delta;

  auto [iit, item_new] = is.postings.try_emplace(item);
  if (accumulated) {
    for (auto& [existing_user, w] : iit->second) {
      if (existing_user == user) {
        w += weight;
        break;
      }
    }
  } else {
    iit->second.emplace_back(user, weight);
  }

  // max, not assignment: stamps are drawn before the shard locks, so
  // a concurrent Add can reach the lock with a *newer* stamp first —
  // overwriting would roll the row back to "clean before version N"
  // and a later TouchedSince(N-1) would silently skip it.
  uint64_t& user_stamp = us.touched[user];
  user_stamp = std::max(user_stamp, stamp);
  us.last_touched = std::max(us.last_touched, stamp);
  ++us.version;
  uint64_t& item_stamp = is.touched[item];
  item_stamp = std::max(item_stamp, stamp);
  is.last_touched = std::max(is.last_touched, stamp);
  ++is.version;

  if (user_new || item_new) {
    std::lock_guard<std::mutex> order_lock(global_->order_mu);
    if (user_new) global_->user_order.push_back(user);
    if (item_new) global_->item_order.push_back(item);
  }
  global_->interactions.fetch_add(1, std::memory_order_relaxed);
}

const std::vector<std::pair<ItemId, double>>&
ShardedInteractionMatrix::ItemsOf(UserId user) const {
  static const std::vector<std::pair<ItemId, double>> kEmpty;
  const UserShard& shard = *user_shards_[UserShardIndex(user)];
  const auto it = shard.rows.find(user);
  return it == shard.rows.end() ? kEmpty : it->second;
}

const std::vector<std::pair<UserId, double>>&
ShardedInteractionMatrix::UsersOf(ItemId item) const {
  static const std::vector<std::pair<UserId, double>> kEmpty;
  const ItemShard& shard = *item_shards_[ItemShardIndex(item)];
  const auto it = shard.postings.find(item);
  return it == shard.postings.end() ? kEmpty : it->second;
}

bool ShardedInteractionMatrix::Seen(UserId user, ItemId item) const {
  for (const auto& [existing, w] : ItemsOf(user)) {
    if (existing == item) return true;
  }
  return false;
}

double ShardedInteractionMatrix::UserNormSquared(UserId user) const {
  const UserShard& shard = *user_shards_[UserShardIndex(user)];
  const auto it = shard.norm_sq.find(user);
  return it == shard.norm_sq.end() ? 0.0 : it->second;
}

double ShardedInteractionMatrix::ItemNormSquared(ItemId item) const {
  const ItemShard& shard = *item_shards_[ItemShardIndex(item)];
  const auto it = shard.norm_sq.find(item);
  return it == shard.norm_sq.end() ? 0.0 : it->second;
}

uint64_t ShardedInteractionMatrix::user_shard_version(
    size_t shard) const {
  SPA_CHECK(shard < user_shards_.size());
  return user_shards_[shard]->version;
}

uint64_t ShardedInteractionMatrix::item_shard_version(
    size_t shard) const {
  SPA_CHECK(shard < item_shards_.size());
  return item_shards_[shard]->version;
}

std::vector<UserId> ShardedInteractionMatrix::UsersTouchedSince(
    uint64_t since) const {
  std::vector<UserId> out;
  for (const auto& shard : user_shards_) {
    if (shard->last_touched <= since) continue;
    for (const auto& [user, stamp] : shard->touched) {
      if (stamp > since) out.push_back(user);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ItemId> ShardedInteractionMatrix::ItemsTouchedSince(
    uint64_t since) const {
  std::vector<ItemId> out;
  for (const auto& shard : item_shards_) {
    if (shard->last_touched <= since) continue;
    for (const auto& [item, stamp] : shard->touched) {
      if (stamp > since) out.push_back(item);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace spa::recsys
