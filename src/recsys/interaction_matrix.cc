#include "recsys/interaction_matrix.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/check.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/thread_pool.h"

namespace spa::recsys {

ShardedInteractionMatrix::ShardedInteractionMatrix(size_t shards)
    : global_(std::make_unique<Global>()) {
  SPA_CHECK_MSG(shards > 0, "interaction matrix needs >= 1 shard");
  user_shards_.reserve(shards);
  item_shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    user_shards_.push_back(std::make_unique<UserShard>());
    item_shards_.push_back(std::make_unique<ItemShard>());
  }
}

size_t ShardedInteractionMatrix::UserShardIndex(UserId user) const {
  return user_shards_.size() == 1
             ? 0
             : SplitMix64(static_cast<uint64_t>(user)) %
                   user_shards_.size();
}

size_t ShardedInteractionMatrix::ItemShardIndex(ItemId item) const {
  return item_shards_.size() == 1
             ? 0
             : SplitMix64(static_cast<uint64_t>(item)) %
                   item_shards_.size();
}

void ShardedInteractionMatrix::Add(UserId user, ItemId item,
                                   double weight) {
  UserShard& us = *user_shards_[UserShardIndex(user)];
  ItemShard& is = *item_shards_[ItemShardIndex(item)];
  const uint64_t stamp =
      global_->version.fetch_add(1, std::memory_order_relaxed) + 1;

  std::scoped_lock lock(us.mu, is.mu);

  auto [uit, user_new] = us.rows.try_emplace(user);
  double old_weight = 0.0;
  bool accumulated = false;
  for (auto& [existing_item, w] : uit->second) {
    if (existing_item == item) {
      old_weight = w;
      w += weight;
      accumulated = true;
      break;
    }
  }
  if (!accumulated) uit->second.emplace_back(item, weight);

  // Both sides of the cell move from old_weight to new_weight.
  const double new_weight = old_weight + weight;
  const double norm_delta =
      new_weight * new_weight - old_weight * old_weight;
  us.norm_sq[user] += norm_delta;
  is.norm_sq[item] += norm_delta;

  auto [iit, item_new] = is.postings.try_emplace(item);
  if (accumulated) {
    for (auto& [existing_user, w] : iit->second) {
      if (existing_user == user) {
        w += weight;
        break;
      }
    }
  } else {
    iit->second.emplace_back(user, weight);
  }

  // max, not assignment: stamps are drawn before the shard locks, so
  // a concurrent Add can reach the lock with a *newer* stamp first —
  // overwriting would roll the row back to "clean before version N"
  // and a later TouchedSince(N-1) would silently skip it.
  uint64_t& user_stamp = us.touched[user];
  user_stamp = std::max(user_stamp, stamp);
  us.last_touched = std::max(us.last_touched, stamp);
  ++us.version;
  uint64_t& item_stamp = is.touched[item];
  item_stamp = std::max(item_stamp, stamp);
  is.last_touched = std::max(is.last_touched, stamp);
  ++is.version;

  if (user_new || item_new) {
    std::lock_guard<std::mutex> order_lock(global_->order_mu);
    if (user_new) global_->user_order.push_back(user);
    if (item_new) global_->item_order.push_back(item);
  }
  global_->interactions.fetch_add(1, std::memory_order_relaxed);
}

void ShardedInteractionMatrix::ApplyBatch(
    const std::vector<Interaction>& batch, ThreadPool* pool,
    ShardGroupTiming* timing) {
  if (timing != nullptr) {
    timing->user_shard_seconds.assign(user_shards_.size(), 0.0);
    timing->item_shard_seconds.assign(item_shards_.size(), 0.0);
    timing->user_shard_ops.assign(user_shards_.size(), 0);
    timing->item_shard_ops.assign(item_shards_.size(), 0);
  }
  if (batch.empty()) return;
  const size_t n = batch.size();
  const uint64_t v0 = global_->version.load(std::memory_order_relaxed);

  // Phase 0 (sequential): fix the registration order of brand-new
  // users/items exactly as a sequential Add loop would (first
  // occurrence in batch order) and bucket op indices per shard. Reads
  // the shard maps without locks — the exclusive-access precondition.
  std::vector<std::vector<size_t>> user_ops(user_shards_.size());
  std::vector<std::vector<size_t>> item_ops(item_shards_.size());
  {
    std::unordered_set<UserId> new_users;
    std::unordered_set<ItemId> new_items;
    for (size_t i = 0; i < n; ++i) {
      const Interaction& op = batch[i];
      const size_t us_idx = UserShardIndex(op.user);
      const size_t is_idx = ItemShardIndex(op.item);
      user_ops[us_idx].push_back(i);
      item_ops[is_idx].push_back(i);
      if (!user_shards_[us_idx]->rows.contains(op.user) &&
          new_users.insert(op.user).second) {
        global_->user_order.push_back(op.user);
      }
      if (!item_shards_[is_idx]->postings.contains(op.item) &&
          new_items.insert(op.item).second) {
        global_->item_order.push_back(op.item);
      }
    }
  }
  if (timing != nullptr) {
    for (size_t s = 0; s < user_ops.size(); ++s) {
      timing->user_shard_ops[s] = user_ops[s].size();
    }
    for (size_t s = 0; s < item_ops.size(); ++s) {
      timing->item_shard_ops[s] = item_ops[s].size();
    }
  }

  // Cell transitions, computed by the user phase (which owns the cell
  // history) and consumed by the item phase: the norm delta of op i
  // and whether it created its (user, item) cell.
  std::vector<double> norm_delta(n, 0.0);
  std::vector<char> cell_new(n, 0);

  // Phase U: each user shard replays its ops in batch order. One task
  // owns one shard, so within a row every accumulate/append — and
  // every floating-point addition into its norm — happens in exactly
  // the sequential order; stamps ascend, so assignment == max-merge.
  const auto user_phase = [&](size_t s) {
    const auto start = std::chrono::steady_clock::now();
    UserShard& us = *user_shards_[s];
    for (const size_t i : user_ops[s]) {
      const Interaction& op = batch[i];
      const uint64_t stamp = v0 + static_cast<uint64_t>(i) + 1;
      auto [uit, user_new] = us.rows.try_emplace(op.user);
      (void)user_new;  // registration already done in phase 0
      double old_weight = 0.0;
      bool accumulated = false;
      for (auto& [existing_item, w] : uit->second) {
        if (existing_item == op.item) {
          old_weight = w;
          w += op.weight;
          accumulated = true;
          break;
        }
      }
      if (!accumulated) uit->second.emplace_back(op.item, op.weight);
      const double new_weight = old_weight + op.weight;
      norm_delta[i] = new_weight * new_weight - old_weight * old_weight;
      cell_new[i] = accumulated ? 0 : 1;
      us.norm_sq[op.user] += norm_delta[i];
      uint64_t& user_stamp = us.touched[op.user];
      user_stamp = std::max(user_stamp, stamp);
      us.last_touched = std::max(us.last_touched, stamp);
      ++us.version;
    }
    if (timing != nullptr) {
      timing->user_shard_seconds[s] = SecondsSince(start);
    }
  };

  // Phase I: mirror the cells into the item shards, again per-shard in
  // batch order, applying the norm deltas the user phase computed.
  const auto item_phase = [&](size_t s) {
    const auto start = std::chrono::steady_clock::now();
    ItemShard& is = *item_shards_[s];
    for (const size_t i : item_ops[s]) {
      const Interaction& op = batch[i];
      const uint64_t stamp = v0 + static_cast<uint64_t>(i) + 1;
      auto [iit, item_new] = is.postings.try_emplace(op.item);
      (void)item_new;
      if (cell_new[i]) {
        iit->second.emplace_back(op.user, op.weight);
      } else {
        for (auto& [existing_user, w] : iit->second) {
          if (existing_user == op.user) {
            w += op.weight;
            break;
          }
        }
      }
      is.norm_sq[op.item] += norm_delta[i];
      uint64_t& item_stamp = is.touched[op.item];
      item_stamp = std::max(item_stamp, stamp);
      is.last_touched = std::max(is.last_touched, stamp);
      ++is.version;
    }
    if (timing != nullptr) {
      timing->item_shard_seconds[s] = SecondsSince(start);
    }
  };

  const auto run = [&](size_t groups,
                       const std::function<void(size_t)>& fn) {
    if (pool != nullptr && groups > 1) {
      ParallelFor(pool, groups, fn);
    } else {
      for (size_t g = 0; g < groups; ++g) fn(g);
    }
  };
  run(user_shards_.size(), user_phase);  // barrier: item phase reads
  run(item_shards_.size(), item_phase);  // norm_delta / cell_new

  global_->version.store(v0 + n, std::memory_order_relaxed);
  global_->interactions.fetch_add(n, std::memory_order_relaxed);
}

const std::vector<std::pair<ItemId, double>>&
ShardedInteractionMatrix::ItemsOf(UserId user) const {
  static const std::vector<std::pair<ItemId, double>> kEmpty;
  const UserShard& shard = *user_shards_[UserShardIndex(user)];
  const auto it = shard.rows.find(user);
  return it == shard.rows.end() ? kEmpty : it->second;
}

const std::vector<std::pair<UserId, double>>&
ShardedInteractionMatrix::UsersOf(ItemId item) const {
  static const std::vector<std::pair<UserId, double>> kEmpty;
  const ItemShard& shard = *item_shards_[ItemShardIndex(item)];
  const auto it = shard.postings.find(item);
  return it == shard.postings.end() ? kEmpty : it->second;
}

bool ShardedInteractionMatrix::Seen(UserId user, ItemId item) const {
  for (const auto& [existing, w] : ItemsOf(user)) {
    if (existing == item) return true;
  }
  return false;
}

double ShardedInteractionMatrix::UserNormSquared(UserId user) const {
  const UserShard& shard = *user_shards_[UserShardIndex(user)];
  const auto it = shard.norm_sq.find(user);
  return it == shard.norm_sq.end() ? 0.0 : it->second;
}

double ShardedInteractionMatrix::ItemNormSquared(ItemId item) const {
  const ItemShard& shard = *item_shards_[ItemShardIndex(item)];
  const auto it = shard.norm_sq.find(item);
  return it == shard.norm_sq.end() ? 0.0 : it->second;
}

uint64_t ShardedInteractionMatrix::user_shard_version(
    size_t shard) const {
  SPA_CHECK(shard < user_shards_.size());
  return user_shards_[shard]->version;
}

uint64_t ShardedInteractionMatrix::item_shard_version(
    size_t shard) const {
  SPA_CHECK(shard < item_shards_.size());
  return item_shards_[shard]->version;
}

std::vector<UserId> ShardedInteractionMatrix::UsersTouchedSince(
    uint64_t since) const {
  std::vector<UserId> out;
  for (const auto& shard : user_shards_) {
    if (shard->last_touched <= since) continue;
    for (const auto& [user, stamp] : shard->touched) {
      if (stamp > since) out.push_back(user);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ItemId> ShardedInteractionMatrix::ItemsTouchedSince(
    uint64_t since) const {
  std::vector<ItemId> out;
  for (const auto& shard : item_shards_) {
    if (shard->last_touched <= since) continue;
    for (const auto& [item, stamp] : shard->touched) {
      if (stamp > since) out.push_back(item);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace spa::recsys
