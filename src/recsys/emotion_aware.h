#ifndef SPA_RECSYS_EMOTION_AWARE_H_
#define SPA_RECSYS_EMOTION_AWARE_H_

#include <array>
#include <unordered_map>
#include <utility>

#include "eit/emotion.h"
#include "recsys/recommender.h"
#include "sum/user_model.h"

/// \file
/// The emotion-aware advice stage (§3 stage 2): recommendations are
/// adjusted by "activation or inhibition of excitatory attributes from
/// each domain of interaction according to the emotional information".
/// Items carry an emotional-resonance profile (how strongly the item's
/// presentation resonates with each of the ten attributes); a user's
/// positively-valenced dominant sensibilities *activate* matching items
/// while negatively-valenced ones *inhibit* them.

namespace spa::recsys {

/// Per-item resonance with the ten emotional attributes, each in [0,1].
using EmotionProfile = std::array<double, eit::kNumEmotionalAttributes>;

struct EmotionRerankConfig {
  /// Strength of the emotional adjustment relative to base scores.
  double beta = 0.5;
  /// Sensibility threshold below which an attribute is ignored.
  double sensibility_threshold = 0.2;
};

/// \brief Re-ranks base recommendations using SUM emotional context.
class EmotionAwareReranker {
 public:
  explicit EmotionAwareReranker(EmotionRerankConfig config = {});

  /// Registers the emotional profile of an item.
  void SetItemProfile(ItemId item, const EmotionProfile& profile);

  /// Emotional alignment of (user, item): sum over dominant attributes
  /// of sensibility * valence_sign * resonance, normalized to [-1, 1].
  double Alignment(const sum::SmartUserModel& model, ItemId item) const;

  /// Re-scores candidates: score' = (1-beta) * normalized_base +
  /// beta * alignment; candidates are re-sorted.
  std::vector<Scored> Rerank(const sum::SmartUserModel& model,
                             std::vector<Scored> candidates) const;

  // The pieces of Rerank's formula, exposed so serving paths that need
  // per-item breakdowns (the engine's explain mode) share one
  // definition of the blend instead of re-implementing it.

  /// Min-max bounds (lo, hi) of the candidate scores ({0,0} if empty).
  static std::pair<double, double> ScoreBounds(
      const std::vector<Scored>& candidates);
  /// Base score normalized against [lo, hi] (1.0 when the span is 0).
  static double NormalizedBase(double score, double lo, double hi);
  /// The blend: (1-beta) * normalized_base + beta * alignment.
  double BlendScore(double normalized_base, double alignment) const;

  const EmotionRerankConfig& config() const { return config_; }

 private:
  EmotionRerankConfig config_;
  std::unordered_map<ItemId, EmotionProfile> profiles_;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_EMOTION_AWARE_H_
