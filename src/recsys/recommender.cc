#include "recsys/recommender.h"

#include <algorithm>

namespace spa::recsys {

void SortAndTruncate(std::vector<Scored>* candidates, size_t k) {
  std::sort(candidates->begin(), candidates->end(),
            [](const Scored& a, const Scored& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (candidates->size() > k) candidates->resize(k);
}

}  // namespace spa::recsys
