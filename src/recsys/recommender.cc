#include "recsys/recommender.h"

#include <algorithm>

namespace spa::recsys {

bool CandidateQuery::Admits(const InteractionMatrix* matrix,
                            ItemId item) const {
  if (candidate_items != nullptr && !candidate_items->contains(item)) {
    return false;
  }
  if (exclude_items != nullptr && exclude_items->contains(item)) {
    return false;
  }
  if (exclude_seen == ExcludeSeen::kYes && matrix != nullptr &&
      matrix->Seen(user, item)) {
    return false;
  }
  return true;
}

void SortAndTruncate(std::vector<Scored>* candidates, size_t k) {
  std::sort(candidates->begin(), candidates->end(),
            [](const Scored& a, const Scored& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (candidates->size() > k) candidates->resize(k);
}

}  // namespace spa::recsys
