#include "recsys/recommender.h"

#include <algorithm>

namespace spa::recsys {

bool CandidateQuery::Admits(const InteractionMatrix* matrix,
                            ItemId item) const {
  if (candidate_items != nullptr && !candidate_items->contains(item)) {
    return false;
  }
  if (exclude_items != nullptr && exclude_items->contains(item)) {
    return false;
  }
  if (exclude_seen == ExcludeSeen::kYes && matrix != nullptr &&
      matrix->Seen(user, item)) {
    return false;
  }
  return true;
}

// Deprecated shim; kept until external callers finish migrating.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
std::vector<Scored> Recommender::Recommend(UserId user, size_t k) const {
  CandidateQuery query;
  query.user = user;
  query.k = k;
  query.exclude_seen = ExcludeSeen::kYes;
  return RecommendCandidates(query);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

void SortAndTruncate(std::vector<Scored>* candidates, size_t k) {
  std::sort(candidates->begin(), candidates->end(),
            [](const Scored& a, const Scored& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (candidates->size() > k) candidates->resize(k);
}

}  // namespace spa::recsys
