#include "recsys/content_based.h"

#include <cmath>

namespace spa::recsys {

void ContentBasedRecommender::SetItemFeatures(ItemId item,
                                              ml::SparseVector features) {
  for (size_t i = 0; i < features.nnz(); ++i) {
    dims_ = std::max(dims_, features.index(i) + 1);
  }
  item_features_[item] = std::move(features);
}

spa::Status ContentBasedRecommender::Fit(const InteractionMatrix& matrix) {
  if (item_features_.empty()) {
    return spa::Status::FailedPrecondition(
        "no item features registered before Fit");
  }
  matrix_ = &matrix;
  return spa::Status::OK();
}

std::vector<double> ContentBasedRecommender::ProfileOf(
    UserId user) const {
  std::vector<double> profile(static_cast<size_t>(dims_), 0.0);
  double total_weight = 0.0;
  for (const auto& [item, weight] : matrix_->ItemsOf(user)) {
    const auto it = item_features_.find(item);
    if (it == item_features_.end()) continue;
    it->second.AxpyInto(weight, &profile);
    total_weight += weight;
  }
  if (total_weight > 0.0) ml::Scale(1.0 / total_weight, &profile);
  return profile;
}

std::vector<Scored> ContentBasedRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  if (matrix_ == nullptr) return out;
  const std::vector<double> profile = ProfileOf(query.user);
  const double profile_norm = std::sqrt(ml::L2NormSquared(profile));
  if (profile_norm == 0.0) return out;

  for (const auto& [item, features] : item_features_) {
    if (!query.Admits(matrix_, item)) continue;
    const double norm = std::sqrt(features.L2NormSquared());
    if (norm == 0.0) continue;
    const double score =
        features.Dot(profile) / (norm * profile_norm);
    out.push_back({item, score});
  }
  SortAndTruncate(&out, query.k);
  return out;
}

}  // namespace spa::recsys
