#ifndef SPA_RECSYS_KERNELS_H_
#define SPA_RECSYS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/workspace_pool.h"
#include "recsys/interaction_matrix.h"

/// \file
/// SIMD scoring kernels with runtime dispatch, and the pooled score
/// accumulator the serve hot path runs on.
///
/// ## The parity rule
///
/// Every kernel here exists in two implementations — a scalar
/// reference and an AVX2 body — and the two are **bitwise identical**
/// for every input, which is what lets the engine's differential
/// parity gates (staged/inline, cached/recomputed, indexed/lazy,
/// routed/single-node) keep holding on machines with and without AVX2:
///
///  * reductions fix the lane order: `Dot` accumulates into four
///    stride-4 partial sums (lane j takes elements j, j+4, j+8, ...)
///    and combines them with the fixed tree (acc0+acc1)+(acc2+acc3).
///    The scalar reference is written in exactly that order — NOT as a
///    single linear accumulator — so vector width never changes the
///    arithmetic;
///  * element-wise kernels (`ScaleGather`, `NormalizedContribution`)
///    perform per-element-independent operations only, so any lane
///    grouping gives the same bits by construction;
///  * the translation unit is compiled with `-ffp-contract=off`: the
///    scalar reference must not be quietly contracted into FMA (the
///    AVX2 bodies use explicit mul/add intrinsics, never FMA).
///
/// `SetBackend` forces a backend process-wide; the kernel parity tests
/// run every kernel under both and assert byte equality.

namespace spa::recsys::kernels {

enum class Backend {
  kAuto,    ///< AVX2 when the CPU supports it, else scalar.
  kScalar,  ///< Fixed-lane-order scalar reference.
  kAvx2,    ///< 4-wide AVX2 (requires CPU support).
};

/// True when the CPU can run the AVX2 bodies.
bool SupportsAvx2();

/// Forces a backend process-wide (tests); kAuto restores dispatch.
/// Forcing kAvx2 on a CPU without AVX2 is a checked error.
void SetBackend(Backend backend);

/// The backend kernels currently execute (never kAuto).
Backend ActiveBackend();

/// sum_i x[i]*y[i] over `n` pairs, in the fixed 4-lane order described
/// in the file comment.
double Dot(const double* x, const double* y, size_t n);

/// out[i] = base[i*stride] * scale for i in [0, n). `stride` is in
/// doubles (2 walks the `double` member of 16-byte (id, weight)
/// pairs). Element-independent, so bitwise backend-invariant.
void ScaleGather(const double* base, size_t stride, size_t n,
                 double scale, double* out);

/// The blend stage's normalize-and-weigh step over one component list:
///   raw_i  = span > 0 ? (base[i*stride] - lo) / span : 1.0
///   out[i] = weight * (floor + (1 - floor) * raw_i)
/// Element-independent, so bitwise backend-invariant.
void NormalizedContribution(const double* base, size_t stride, size_t n,
                            double lo, double span, double floor,
                            double weight, double* out);

/// \brief Epoch-stamped open-addressing score accumulator.
///
/// Replaces the per-request `unordered_map<ItemId, double>` of the KNN
/// and blend accumulation loops. Slots are assigned in first-touch
/// order, so harvesting `item(i)/score(i)` for i in [0, size())
/// enumerates items in exactly the insertion order the map-based code
/// observed its `+=` sequences in — per-item sums are bitwise
/// identical. Clearing is O(1) (an epoch bump invalidates every table
/// stamp); memory comes from a `WorkspacePool`, so the steady state
/// performs no heap allocation.
class ScoreAccumulator {
 public:
  ScoreAccumulator() = default;
  ~ScoreAccumulator();

  ScoreAccumulator(const ScoreAccumulator&) = delete;
  ScoreAccumulator& operator=(const ScoreAccumulator&) = delete;

  /// Pool backing the table/score arrays. Null (the default) uses a
  /// process-wide shared pool. Rebinding releases current blocks.
  void BindPool(WorkspacePool* pool);

  /// Starts a fresh accumulation: O(1) clear, plus an (amortized-away)
  /// capacity ensure for `expected_items` distinct ids.
  void Begin(size_t expected_items);

  /// scores[item] += delta, inserting item at the next dense slot on
  /// first touch. Grows transparently when full.
  void Add(ItemId item, double delta) {
    const size_t slot = SlotOf(item);
    scores_[slot] += delta;
  }

  size_t size() const { return count_; }
  ItemId item(size_t i) const { return items_[i]; }
  double score(size_t i) const { return scores_[i]; }

 private:
  size_t SlotOf(ItemId item) {
    size_t idx = static_cast<size_t>(SplitMix64(static_cast<uint64_t>(
                     static_cast<uint32_t>(item)))) &
                 table_mask_;
    while (stamps_[idx] == epoch_) {
      if (keys_[idx] == item) return slots_[idx];
      idx = (idx + 1) & table_mask_;
    }
    return InsertAt(idx, item);
  }

  size_t InsertAt(size_t idx, ItemId item) {
    if (count_ == capacity_) {
      Grow();
      return SlotOf(item);  // re-probe: the table was rebuilt
    }
    stamps_[idx] = epoch_;
    keys_[idx] = item;
    slots_[idx] = static_cast<uint32_t>(count_);
    items_[count_] = item;
    scores_[count_] = 0.0;
    return count_++;
  }

  void Grow();
  void EnsureCapacity(size_t min_items);
  void ReleaseBlock();
  WorkspacePool* pool_or_default();

  WorkspacePool* pool_ = nullptr;
  WorkspaceBlock block_;
  // Carved from block_: dense arrays of capacity_ plus an open-
  // addressing table of 2*capacity_ (keys/slots/stamps).
  double* scores_ = nullptr;
  ItemId* items_ = nullptr;
  ItemId* keys_ = nullptr;
  uint32_t* slots_ = nullptr;
  uint32_t* stamps_ = nullptr;
  size_t capacity_ = 0;    // max distinct items (power of two)
  size_t table_mask_ = 0;  // table size - 1
  size_t count_ = 0;
  uint32_t epoch_ = 0;
};

/// \brief Per-request/per-batch scratch threaded through the serve
/// stages (`CandidateQuery::workspace`): the score accumulator plus
/// the kernel product buffer. Pooled by the engine; capacity persists
/// across requests, so the warm path allocates nothing.
struct ScoreWorkspace {
  ScoreAccumulator acc;
  std::vector<double> products;

  void BindPool(WorkspacePool* pool) { acc.BindPool(pool); }

  /// Product buffer of at least `n` doubles.
  double* EnsureProducts(size_t n) {
    if (products.size() < n) products.resize(n);
    return products.data();
  }
};

/// The fallback workspace for direct recommender calls that did not
/// thread one through the query (tests, lazy benches): one per thread,
/// backed by the process-wide pool.
ScoreWorkspace& ThreadLocalWorkspace();

inline ScoreWorkspace& ResolveWorkspace(ScoreWorkspace* from_query) {
  return from_query != nullptr ? *from_query : ThreadLocalWorkspace();
}

}  // namespace spa::recsys::kernels

#endif  // SPA_RECSYS_KERNELS_H_
