#include "recsys/engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace spa::recsys {

namespace {

/// SplitMix64: decorrelates raw ids before combining.
uint64_t HashU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Mix(uint64_t h, uint64_t v) {
  return HashU64(h ^ HashU64(v));
}

/// Order-independent digest of an item set.
uint64_t HashItemSet(const std::unordered_set<ItemId>& items) {
  uint64_t acc = 0x1234abcd5678ef90ULL;
  for (ItemId item : items) {
    acc += HashU64(static_cast<uint64_t>(item));
  }
  return acc;
}

}  // namespace

RecsysEngine::RecsysEngine(EngineConfig config)
    : config_(config),
      hybrid_(std::make_unique<HybridRecommender>(
          HybridConfig{config.component_depth})),
      reranker_(config.rerank) {
  SPA_CHECK(config_.rerank_overfetch > 0);
}

void RecsysEngine::AddComponent(std::unique_ptr<Recommender> component,
                                double weight) {
  hybrid_->AddComponent(std::move(component), weight);
  fitted_ = false;
}

void RecsysEngine::SetItemEmotionProfile(ItemId item,
                                         const EmotionProfile& profile) {
  reranker_.SetItemProfile(item, profile);
}

void RecsysEngine::set_sum_service(const sum::SumService* sums) {
  sums_ = sums;
  ClearResponseCache();
}

spa::Status RecsysEngine::Fit(const InteractionMatrix& matrix) {
  SPA_RETURN_IF_ERROR(hybrid_->Fit(matrix));
  fitted_ = true;
  ++fit_epoch_;
  matrix_ = &matrix;
  ClearResponseCache();
  return spa::Status::OK();
}

// ---- response cache --------------------------------------------------------

uint64_t RecsysEngine::FingerprintRequest(
    const RecommendRequest& request) {
  uint64_t h = 0x5ca1ab1e0ddba11ULL;
  h = Mix(h, static_cast<uint64_t>(request.user));
  h = Mix(h, static_cast<uint64_t>(request.k));
  h = Mix(h, static_cast<uint64_t>(request.exclude_seen ==
                                   ExcludeSeen::kYes));
  h = Mix(h, static_cast<uint64_t>(request.explain));
  h = Mix(h, HashItemSet(request.exclude_items));
  if (request.candidate_items.has_value()) {
    h = Mix(h, 1 + HashItemSet(*request.candidate_items));
  }
  return h;
}

bool RecsysEngine::KeyMatches(const CacheKey& key,
                              const RecommendRequest& request) {
  return key.user == request.user && key.k == request.k &&
         key.exclude_seen == request.exclude_seen &&
         key.explain == request.explain &&
         key.exclude_items == request.exclude_items &&
         key.candidate_items == request.candidate_items;
}

std::optional<RecommendResponse> RecsysEngine::CacheLookup(
    uint64_t hash, const RecommendRequest& request,
    uint64_t sum_user_version) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_index_.find(hash);
  if (it == cache_index_.end()) {
    ++cache_stats_.misses;
    return std::nullopt;
  }
  const CacheEntry& entry = *it->second;
  if (!KeyMatches(entry.key, request)) {
    // Fingerprint collision between distinct requests: never serve it.
    ++cache_stats_.misses;
    return std::nullopt;
  }
  if (entry.fit_epoch != fit_epoch_ ||
      entry.matrix_version != matrix_->version() ||
      entry.sum_user_version != sum_user_version) {
    // An update landed for this user, the fitted matrix was mutated,
    // or the stack was refitted since the entry was memoized: drop it
    // in place. (The matrix guard reads the live version — the base
    // recommenders serve from the live matrix too.)
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
    ++cache_stats_.stale_evictions;
    ++cache_stats_.misses;
    return std::nullopt;
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  ++cache_stats_.hits;
  return entry.response;
}

void RecsysEngine::CacheInsert(uint64_t hash,
                               const RecommendRequest& request,
                               uint64_t sum_user_version,
                               const RecommendResponse& response) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_index_.find(hash);
  if (it != cache_index_.end()) {
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
  }
  CacheEntry entry;
  entry.hash = hash;
  entry.key = {request.user, request.k, request.exclude_seen,
               request.explain, request.exclude_items,
               request.candidate_items};
  entry.fit_epoch = fit_epoch_;
  entry.matrix_version = matrix_->version();
  entry.sum_user_version = sum_user_version;
  entry.response = response;
  cache_lru_.push_front(std::move(entry));
  cache_index_[hash] = cache_lru_.begin();
  while (cache_lru_.size() > config_.response_cache_capacity) {
    cache_index_.erase(cache_lru_.back().hash);
    cache_lru_.pop_back();
    ++cache_stats_.capacity_evictions;
  }
}

std::vector<ComponentIndexStats> RecsysEngine::index_stats() const {
  std::vector<ComponentIndexStats> out;
  for (size_t i = 0; i < hybrid_->component_count(); ++i) {
    const SimilarityIndexStats* stats =
        hybrid_->component(i).index_stats();
    if (stats != nullptr) {
      out.push_back({hybrid_->component_name(i), *stats});
    }
  }
  return out;
}

EngineCacheStats RecsysEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_stats_;
}

size_t RecsysEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_lru_.size();
}

void RecsysEngine::ClearResponseCache() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_lru_.clear();
  cache_index_.clear();
}

// ---- serving ---------------------------------------------------------------

spa::Result<RecommendResponse> RecsysEngine::Recommend(
    const RecommendRequest& request) const {
  SPA_RETURN_IF_ERROR(ValidateRequest(request));
  if (!fitted_) {
    return spa::Status::FailedPrecondition(
        "engine not fitted; call Fit() after assembling the stack");
  }

  // Pin the emotional context for the whole request: the caller's
  // override snapshot wins; otherwise the service's current head.
  sum::SumSnapshotPtr snapshot = request.emotion_override;
  const bool overridden = snapshot != nullptr;
  if (!overridden && sums_ != nullptr) snapshot = sums_->snapshot();

  const sum::SmartUserModel* model = nullptr;
  uint64_t sum_user_version = 0;
  if (snapshot != nullptr) {
    const auto found = snapshot->Get(request.user);
    if (found.ok()) model = found.value();
    sum_user_version = snapshot->UserVersion(request.user);
  }

  const bool cacheable =
      config_.response_cache_capacity > 0 && !overridden;
  uint64_t fingerprint = 0;
  if (cacheable) {
    fingerprint = FingerprintRequest(request);
    if (auto cached =
            CacheLookup(fingerprint, request, sum_user_version)) {
      return *std::move(cached);
    }
  }
  auto response = Serve(request, model);
  if (cacheable && response.ok()) {
    CacheInsert(fingerprint, request, sum_user_version,
                response.value());
  }
  return response;
}

spa::Result<RecommendResponse> RecsysEngine::Serve(
    const RecommendRequest& request,
    const sum::SmartUserModel* model) const {
  // Base candidates: blended hybrid scores, overfetched so the
  // emotional stage has room to move items into the top k.
  CandidateQuery query;
  query.user = request.user;
  query.k = request.k * config_.rerank_overfetch;
  query.exclude_seen = request.exclude_seen;
  query.exclude_items =
      request.exclude_items.empty() ? nullptr : &request.exclude_items;
  query.candidate_items = request.candidate_items.has_value()
                              ? &*request.candidate_items
                              : nullptr;
  std::vector<HybridRecommender::Blended> blended =
      hybrid_->BlendCandidates(query,
                               /*track_contributions=*/request.explain);
  if (blended.size() > query.k) blended.resize(query.k);

  const bool apply_emotion =
      config_.emotion_enabled && model != nullptr && !blended.empty();

  RecommendResponse response;
  response.user = request.user;
  response.explained = request.explain;
  response.emotion_applied = apply_emotion;

  // Without the emotional stage scores are final and blended is
  // already sorted: drop the overfetch tail before building anything.
  if (!apply_emotion && blended.size() > request.k) {
    blended.resize(request.k);
  }

  // Re-score with the emotion blend (the formula is the reranker's —
  // one definition shared with EmotionAwareReranker::Rerank), sort,
  // and only then materialize the surviving top-k items.
  struct Ranked {
    double score = 0.0;
    double base_norm = 0.0;
    double alignment = 0.0;
    size_t idx = 0;
  };
  double lo = 0.0, hi = 0.0;
  if (apply_emotion) {
    lo = hi = blended.front().score;
    for (const auto& b : blended) {
      lo = std::min(lo, b.score);
      hi = std::max(hi, b.score);
    }
  }
  std::vector<Ranked> ranked;
  ranked.reserve(blended.size());
  for (size_t i = 0; i < blended.size(); ++i) {
    Ranked r;
    r.idx = i;
    if (apply_emotion) {
      r.base_norm =
          EmotionAwareReranker::NormalizedBase(blended[i].score, lo, hi);
      r.alignment = reranker_.Alignment(*model, blended[i].item);
      r.score = reranker_.BlendScore(r.base_norm, r.alignment);
    } else {
      r.score = blended[i].score;
    }
    ranked.push_back(r);
  }
  std::sort(ranked.begin(), ranked.end(),
            [&blended](const Ranked& a, const Ranked& b) {
              if (a.score != b.score) return a.score > b.score;
              return blended[a.idx].item < blended[b.idx].item;
            });
  if (ranked.size() > request.k) ranked.resize(request.k);

  response.items.reserve(ranked.size());
  for (const Ranked& r : ranked) {
    const HybridRecommender::Blended& b = blended[r.idx];
    RecommendedItem item;
    item.item = b.item;
    item.score = r.score;
    if (request.explain) {
      item.breakdown.base = b.score;
      item.breakdown.emotional_alignment = r.alignment;
      if (apply_emotion) {
        item.breakdown.base_share = reranker_.BlendScore(r.base_norm, 0.0);
        item.breakdown.emotion_delta = r.score - item.breakdown.base_share;
      } else {
        item.breakdown.base_share = b.score;
      }
      item.breakdown.components.reserve(hybrid_->component_count());
      for (size_t ci = 0; ci < hybrid_->component_count(); ++ci) {
        item.breakdown.components.push_back(
            {hybrid_->component_name(ci), hybrid_->component_weight(ci),
             b.contributions[ci]});
      }
    }
    response.items.push_back(std::move(item));
  }
  return response;
}

std::vector<spa::Result<RecommendResponse>> RecsysEngine::RecommendBatch(
    const std::vector<RecommendRequest>& requests) {
  std::vector<spa::Result<RecommendResponse>> results(
      requests.size(),
      spa::Result<RecommendResponse>(
          spa::Status::Internal("request not served")));
  if (requests.empty()) return results;
  ThreadPool* pool = EnsurePool();
  ParallelFor(pool, requests.size(),
              [this, &requests, &results](size_t i) {
                results[i] = Recommend(requests[i]);
              });
  return results;
}

size_t RecsysEngine::batch_thread_count() {
  return EnsurePool()->thread_count();
}

void RecsysEngine::set_batch_threads(size_t threads) {
  config_.batch_threads = threads;
  pool_.reset();
}

ThreadPool* RecsysEngine::EnsurePool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(config_.batch_threads);
  }
  return pool_.get();
}

}  // namespace spa::recsys
