#include "recsys/engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/clock.h"
#include "common/hash.h"
#include "recsys/kernels.h"

namespace spa::recsys {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t Mix(uint64_t h, uint64_t v) {
  return SplitMix64(h ^ SplitMix64(v));
}

/// Order-independent digest of an item set.
uint64_t HashItemSet(const std::unordered_set<ItemId>& items) {
  uint64_t acc = 0x1234abcd5678ef90ULL;
  for (ItemId item : items) {
    acc += SplitMix64(static_cast<uint64_t>(item));
  }
  return acc;
}

/// Times one profiler item; records on Stop(). When the item's level
/// is disabled not even the clock is read, keeping the "one branch"
/// cost promise of EngineConfig::profiler_level.
class ItemTimer {
 public:
  ItemTimer(Profiler& profiler, ProfilerItem item)
      : profiler_(profiler),
        item_(item),
        enabled_(profiler.enabled(item)) {
    if (enabled_) start_ = Clock::now();
  }
  void Stop() {
    if (enabled_) profiler_.Record(item_, SecondsSince(start_));
    enabled_ = false;
  }

 private:
  Profiler& profiler_;
  ProfilerItem item_;
  bool enabled_;
  Clock::time_point start_{};
};

}  // namespace

/// Per-request intermediate state between the serving stages. Owned by
/// the caller (`Serve` keeps one on its stack; `RecommendBatchStaged`
/// keeps one per request for the whole micro-batch).
struct RecsysEngine::ServeState {
  struct Ranked {
    double score = 0.0;
    double base_norm = 0.0;
    double alignment = 0.0;
    size_t idx = 0;
  };
  bool explain = false;
  CandidateQuery query;  ///< borrows the request's item sets
  /// Scoring scratch threaded into the stages via `query.workspace`
  /// (null = the thread-local fallback). Only live within one stage
  /// call, so staged batches share a single workspace across requests.
  kernels::ScoreWorkspace* workspace = nullptr;
  std::vector<std::vector<Scored>> fetched;
  std::vector<HybridRecommender::Blended> blended;
  bool apply_emotion = false;
  std::vector<Ranked> ranked;
  RecommendResponse response;

  /// Readies the state for a (possibly recycled) request: containers
  /// are cleared, not shrunk — their capacities are the whole point of
  /// pooling. The stages reset everything else by assignment.
  void Reset(bool explain_flag) {
    explain = explain_flag;
    ranked.clear();
    response.items.clear();
  }
};

/// The pooled unit the fused serve path recycles: per-request stage
/// state plus the kernel scoring workspace, both keeping their
/// capacities between requests.
struct RecsysEngine::ServeScratch {
  ServeState state;
  kernels::ScoreWorkspace ws;
};

std::unique_ptr<RecsysEngine::ServeScratch> RecsysEngine::AcquireScratch()
    const {
  ItemTimer timer(profiler_, ProfilerItem::kWorkspaceAcquire);
  std::unique_ptr<ServeScratch> scratch;
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    if (!scratch_free_.empty()) {
      scratch = std::move(scratch_free_.back());
      scratch_free_.pop_back();
    }
  }
  if (scratch == nullptr) {
    scratch = std::make_unique<ServeScratch>();
    scratch->ws.BindPool(&workspace_pool_);
  }
  timer.Stop();
  return scratch;
}

void RecsysEngine::ReleaseScratch(
    std::unique_ptr<ServeScratch> scratch) const {
  ItemTimer timer(profiler_, ProfilerItem::kWorkspaceRelease);
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_free_.push_back(std::move(scratch));
  timer.Stop();
}

RecsysEngine::~RecsysEngine() = default;

RecsysEngine::RecsysEngine(EngineConfig config)
    : config_(config),
      hybrid_(std::make_unique<HybridRecommender>(
          HybridConfig{config.component_depth})),
      reranker_(config.rerank),
      user_freq_(FrequencyMapConfig{/*shards=*/16, config.cache_decay_factor,
                                    /*min_count=*/0.5}),
      item_freq_(FrequencyMapConfig{/*shards=*/16, config.cache_decay_factor,
                                    /*min_count=*/0.5}),
      profiler_(config.profiler_level) {
  SPA_CHECK(config_.rerank_overfetch > 0);
  SPA_CHECK_MSG(config_.interaction_shards >= 1,
                "EngineConfig::interaction_shards must be >= 1 (shard "
                "routing is hash % shards; 0 would be modulo-by-zero)");
}

void RecsysEngine::AddComponent(std::unique_ptr<Recommender> component,
                                double weight) {
  hybrid_->AddComponent(std::move(component), weight);
  fitted_ = false;
}

void RecsysEngine::SetItemEmotionProfile(ItemId item,
                                         const EmotionProfile& profile) {
  reranker_.SetItemProfile(item, profile);
}

void RecsysEngine::set_sum_service(const sum::SumService* sums) {
  sums_ = sums;
  ClearResponseCache();
}

spa::Status RecsysEngine::Fit(const InteractionMatrix& matrix) {
  return FitInternal(matrix, /*live=*/nullptr);
}

spa::Status RecsysEngine::Fit(InteractionMatrix* matrix) {
  SPA_CHECK(matrix != nullptr);
  return FitInternal(*matrix, matrix);
}

spa::Status RecsysEngine::FitInternal(const InteractionMatrix& matrix,
                                      InteractionMatrix* live) {
  // matrix_ and live_matrix_ must move together — a second critical
  // section would let a concurrent Fit interleave and leave live
  // updates pointed at a matrix nobody serves from.
  std::unique_lock lock(serve_mutex_);
  SPA_RETURN_IF_ERROR(hybrid_->Fit(matrix));
  // The degrade tier fits alongside the stack so RecommendFallback is
  // always servable once the engine is.
  SPA_RETURN_IF_ERROR(fallback_pop_.Fit(matrix));
  fitted_ = true;
  ++fit_epoch_;
  matrix_ = &matrix;
  live_matrix_ = live;
  ClearResponseCache();
  return spa::Status::OK();
}

// ---- live updates ----------------------------------------------------------

spa::Result<LiveUpdateReport> RecsysEngine::ApplyInteractions(
    const std::vector<Interaction>& batch) {
  std::unique_lock lock(serve_mutex_);
  if (!fitted_) {
    return spa::Status::FailedPrecondition(
        "engine not fitted; call Fit() before ApplyInteractions");
  }
  if (live_matrix_ == nullptr) {
    return spa::Status::FailedPrecondition(
        "engine was fitted from a const matrix; Fit(&matrix) to enable "
        "live updates");
  }
  LiveUpdateReport report;
  report.interactions = batch.size();
  report.matrix_version = live_matrix_->version();
  if (batch.empty()) return report;
  const uint64_t pre_version = live_matrix_->version();
  ItemTimer update_timer(profiler_, ProfilerItem::kUpdateApply);

  // 1. Route the batch into the shards. ApplyBatch parallelizes the
  // per-shard work over the engine's pool while staying byte-identical
  // to a sequential Add loop (registration order is fixed by its
  // sequential routing pass, so shard counts never change rankings —
  // the determinism tests gate this). We hold the exclusive serve
  // lock, which is exactly ApplyBatch's exclusive-access precondition.
  const bool want_shard_timing =
      profiler_.enabled(ProfilerItem::kApplyUserShardGroup);
  ShardedInteractionMatrix::ShardGroupTiming timing;
  ThreadPool* apply_pool =
      live_matrix_->shard_count() > 1 ? EnsurePool() : nullptr;
  const auto apply_start = Clock::now();
  live_matrix_->ApplyBatch(batch, apply_pool,
                           want_shard_timing ? &timing : nullptr);
  report.apply_seconds = SecondsSince(apply_start);
  for (size_t s = 0; s < timing.user_shard_seconds.size(); ++s) {
    if (timing.user_shard_ops[s] == 0) continue;
    profiler_.Record(ProfilerItem::kApplyUserShardGroup,
                     timing.user_shard_seconds[s]);
  }
  for (size_t s = 0; s < timing.item_shard_seconds.size(); ++s) {
    if (timing.item_shard_ops[s] == 0) continue;
    profiler_.Record(ProfilerItem::kApplyItemShardGroup,
                     timing.item_shard_seconds[s]);
  }

  // 2. Repair every component's fitted state incrementally.
  const auto refresh_start = Clock::now();
  RefreshOutcome outcome;
  SPA_RETURN_IF_ERROR(hybrid_->Refresh(&outcome));
  // The fallback tier repairs itself with the same dirty-item re-sum
  // (bitwise == refit). Its outcome is deliberately NOT merged into
  // the stack's: popularity reports every user affected, which would
  // wipe the cache on each batch even when no stack component did.
  RefreshOutcome fallback_outcome;
  SPA_RETURN_IF_ERROR(fallback_pop_.Refresh(&fallback_outcome));
  report.refresh_seconds = SecondsSince(refresh_start);
  report.rows_refreshed = outcome.rows_refreshed;
  report.full_rebuild = outcome.full_rebuild;

  // 3. Cache maintenance: drop the affected users' entries, re-stamp
  // everyone else's to the new matrix version (their recompute would
  // produce the same bytes — that is exactly what "unaffected" means).
  std::unordered_set<UserId> affected;
  report.invalidated_all = outcome.all_users;
  if (!outcome.all_users) {
    affected.reserve(batch.size() + outcome.affected_users.size());
    for (const Interaction& interaction : batch) {
      affected.insert(interaction.user);
    }
    for (const UserId user : outcome.affected_users) {
      affected.insert(user);
    }
    report.affected_users = affected.size();
  }
  const uint64_t new_version = live_matrix_->version();
  report.matrix_version = new_version;
  // Hot entries this apply invalidates, queued for re-warming. Only
  // entries that were fresh at pre_version qualify: ones staled by an
  // out-of-band mutation were not invalidated *by this apply* and are
  // not the writer lane's to resurrect.
  struct RewarmCandidate {
    double frequency = 0.0;
    CacheKey key;
  };
  std::vector<RewarmCandidate> rewarm;
  const bool want_rewarm = config_.rewarm_limit > 0 &&
                           config_.response_cache_capacity > 0;
  if (config_.response_cache_capacity > 0) {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    for (auto it = cache_lru_.begin(); it != cache_lru_.end();) {
      // Only entries that were fresh going into this batch may be
      // re-stamped: an entry staled by an out-of-band matrix mutation
      // must not be resurrected just because no component reported
      // its user for *this* batch.
      if (outcome.all_users || affected.contains(it->key.user) ||
          it->matrix_version != pre_version) {
        if (want_rewarm && it->matrix_version == pre_version) {
          const double freq =
              user_freq_.Count(static_cast<uint64_t>(it->key.user));
          if (freq >= config_.rewarm_min_frequency) {
            rewarm.push_back({freq, std::move(it->key)});
          }
        }
        cache_index_.erase(it->hash);
        it = cache_lru_.erase(it);
        ++report.cache_entries_invalidated;
        ++cache_stats_.stale_evictions;
      } else {
        it->matrix_version = new_version;
        ++it;
      }
    }
  }

  // 4. Re-warm the hot set: re-serve the hottest invalidated entries
  // into the cache at the post-apply versions while we still hold the
  // exclusive serve lock, so no reader ever observes the invalidation
  // as a miss. The serve path re-enters through RecommendIntoImpl,
  // whose internals take only leaf locks (cache_mutex_, scratch_mu_,
  // frequency shards) — never serve_mutex_ — so re-entry under the
  // writer lock is safe. rewarm_in_progress_ suppresses frequency
  // touches so the re-warm traffic cannot inflate its own hot set.
  if (!rewarm.empty()) {
    const auto rewarm_start = Clock::now();
    std::sort(rewarm.begin(), rewarm.end(),
              [](const RewarmCandidate& a, const RewarmCandidate& b) {
                if (a.frequency != b.frequency) {
                  return a.frequency > b.frequency;
                }
                if (a.key.user != b.key.user) return a.key.user < b.key.user;
                return a.key.k < b.key.k;
              });
    if (rewarm.size() > config_.rewarm_limit) {
      rewarm.resize(config_.rewarm_limit);
    }
    rewarm_in_progress_ = true;
    std::unordered_set<UserId> rewarmed_users;
    RecommendResponse scratch_response;
    for (RewarmCandidate& candidate : rewarm) {
      RecommendRequest request;
      request.user = candidate.key.user;
      request.k = candidate.key.k;
      request.exclude_seen = candidate.key.exclude_seen;
      request.explain = candidate.key.explain;
      request.exclude_items = std::move(candidate.key.exclude_items);
      request.candidate_items = std::move(candidate.key.candidate_items);
      if (RecommendIntoImpl(request, /*batch_snapshot=*/nullptr,
                            &scratch_response)
              .ok()) {
        ++report.entries_rewarmed;
        rewarmed_users.insert(request.user);
      }
    }
    rewarm_in_progress_ = false;
    report.users_rewarmed = rewarmed_users.size();
    report.rewarm_seconds = SecondsSince(rewarm_start);
  }

  live_stats_.batches += 1;
  live_stats_.interactions += report.interactions;
  live_stats_.rows_refreshed += report.rows_refreshed;
  live_stats_.full_rebuilds += report.full_rebuild ? 1 : 0;
  live_stats_.cache_entries_invalidated +=
      report.cache_entries_invalidated;
  live_stats_.users_rewarmed += report.users_rewarmed;
  live_stats_.entries_rewarmed += report.entries_rewarmed;
  live_stats_.apply_seconds += report.apply_seconds;
  live_stats_.refresh_seconds += report.refresh_seconds;
  live_stats_.rewarm_seconds += report.rewarm_seconds;
  update_timer.Stop();
  return report;
}

LiveUpdateStats RecsysEngine::live_update_stats() const {
  std::shared_lock lock(serve_mutex_);
  return live_stats_;
}

// ---- response cache --------------------------------------------------------

uint64_t RecsysEngine::FingerprintRequest(
    const RecommendRequest& request) {
  uint64_t h = 0x5ca1ab1e0ddba11ULL;
  h = Mix(h, static_cast<uint64_t>(request.user));
  h = Mix(h, static_cast<uint64_t>(request.k));
  h = Mix(h, static_cast<uint64_t>(request.exclude_seen ==
                                   ExcludeSeen::kYes));
  h = Mix(h, static_cast<uint64_t>(request.explain));
  h = Mix(h, HashItemSet(request.exclude_items));
  if (request.candidate_items.has_value()) {
    h = Mix(h, 1 + HashItemSet(*request.candidate_items));
  }
  return h;
}

bool RecsysEngine::KeyMatches(const CacheKey& key,
                              const RecommendRequest& request) {
  return key.user == request.user && key.k == request.k &&
         key.exclude_seen == request.exclude_seen &&
         key.explain == request.explain &&
         key.exclude_items == request.exclude_items &&
         key.candidate_items == request.candidate_items;
}

bool RecsysEngine::CacheLookupInto(uint64_t hash,
                                   const RecommendRequest& request,
                                   uint64_t sum_user_version,
                                   RecommendResponse* out) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_index_.find(hash);
  if (it == cache_index_.end()) {
    ++cache_stats_.misses;
    return false;
  }
  const CacheEntry& entry = *it->second;
  if (!KeyMatches(entry.key, request)) {
    // Fingerprint collision between distinct requests: never serve it.
    ++cache_stats_.misses;
    return false;
  }
  if (entry.fit_epoch != fit_epoch_ ||
      entry.matrix_version != matrix_->version() ||
      entry.sum_user_version != sum_user_version) {
    // An update landed for this user, the fitted matrix was mutated
    // outside ApplyInteractions, or the stack was refitted since the
    // entry was memoized: drop it in place. (The matrix guard reads
    // the live version — the base recommenders serve from the live
    // matrix too; ApplyInteractions re-stamps unaffected entries, so
    // they keep matching.)
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
    ++cache_stats_.stale_evictions;
    ++cache_stats_.misses;
    return false;
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  ++cache_stats_.hits;
  // Copy-assign: a warm caller's response vectors already hold the
  // capacity, so serving the hit performs no heap allocation.
  *out = entry.response;
  return true;
}

void RecsysEngine::CacheInsert(uint64_t hash,
                               const RecommendRequest& request,
                               uint64_t sum_user_version,
                               const RecommendResponse& response) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  // Hot-item telemetry: computed (cacheable) responses credit their
  // surviving items, admission outcome notwithstanding. Re-warm
  // recomputes do not count as organic accesses.
  if (!rewarm_in_progress_) {
    for (const RecommendedItem& item : response.items) {
      item_freq_.Touch(static_cast<uint64_t>(item.item));
    }
  }
  const auto it = cache_index_.find(hash);
  if (it != cache_index_.end()) {
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
  }
  // Frequency admission: at capacity the newcomer competes with the
  // LRU victim it would evict. A strictly colder user is refused —
  // one-hit wonders cannot churn the hot set — while ties admit, so
  // uniform traffic degrades to plain LRU (and the LRU tests' exact
  // eviction counts still hold).
  if (config_.cache_frequency_admission &&
      cache_lru_.size() >= config_.response_cache_capacity) {
    const double newcomer =
        user_freq_.Count(static_cast<uint64_t>(request.user));
    const double victim = user_freq_.Count(
        static_cast<uint64_t>(cache_lru_.back().key.user));
    if (newcomer < victim) {
      ++cache_stats_.admission_rejections;
      return;
    }
  }
  CacheEntry entry;
  entry.hash = hash;
  entry.key = {request.user, request.k, request.exclude_seen,
               request.explain, request.exclude_items,
               request.candidate_items};
  entry.fit_epoch = fit_epoch_;
  entry.matrix_version = matrix_->version();
  entry.sum_user_version = sum_user_version;
  entry.response = response;
  cache_lru_.push_front(std::move(entry));
  cache_index_[hash] = cache_lru_.begin();
  while (cache_lru_.size() > config_.response_cache_capacity) {
    cache_index_.erase(cache_lru_.back().hash);
    cache_lru_.pop_back();
    ++cache_stats_.capacity_evictions;
  }
}

std::vector<ComponentIndexStats> RecsysEngine::index_stats() const {
  std::vector<ComponentIndexStats> out;
  for (size_t i = 0; i < hybrid_->component_count(); ++i) {
    const SimilarityIndexStats* stats =
        hybrid_->component(i).index_stats();
    if (stats != nullptr) {
      out.push_back({hybrid_->component_name(i), *stats});
    }
  }
  return out;
}

EngineCacheStats RecsysEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_stats_;
}

void RecsysEngine::MaybeDecayFrequencies() const {
  if (config_.cache_decay_interval == 0) return;
  const uint64_t lookups =
      lookups_since_decay_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (lookups % config_.cache_decay_interval == 0) {
    user_freq_.Decay();
    item_freq_.Decay();
  }
}

double RecsysEngine::user_frequency(UserId user) const {
  return user_freq_.Count(static_cast<uint64_t>(user));
}

double RecsysEngine::item_frequency(ItemId item) const {
  return item_freq_.Count(static_cast<uint64_t>(item));
}

FrequencyMapStats RecsysEngine::user_frequency_stats() const {
  return user_freq_.stats();
}

size_t RecsysEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_lru_.size();
}

void RecsysEngine::ClearResponseCache() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_lru_.clear();
  cache_index_.clear();
}

StageStats RecsysEngine::stage_stats() const {
  const ProfilerSnapshot snap = profiler_.Snapshot(ProfilerLevel::kL2);
  const auto to_stage = [&snap](ProfilerItem item) {
    StageStats::Stage out;
    for (const ProfilerItemSnapshot& s : snap.items) {
      if (s.item != item) continue;
      out.count = s.count;
      out.total_seconds = s.total_seconds;
      out.max_seconds = s.max_seconds;
      out.p50_seconds = s.p50_seconds;
      out.p95_seconds = s.p95_seconds;
      out.p99_seconds = s.p99_seconds;
      out.histogram = s.histogram;
      break;
    }
    return out;
  };
  StageStats stats;
  stats.candidate_gen = to_stage(ProfilerItem::kStageCandidateGen);
  stats.rerank = to_stage(ProfilerItem::kStageRerank);
  stats.cache_lookup = to_stage(ProfilerItem::kStageCacheLookup);
  return stats;
}

// ---- serving ---------------------------------------------------------------

spa::Result<RecommendResponse> RecsysEngine::Recommend(
    const RecommendRequest& request) const {
  std::shared_lock lock(serve_mutex_);
  return RecommendImpl(request, /*batch_snapshot=*/nullptr);
}

spa::Status RecsysEngine::RecommendInto(const RecommendRequest& request,
                                        RecommendResponse* out) const {
  SPA_CHECK(out != nullptr);
  std::shared_lock lock(serve_mutex_);
  return RecommendIntoImpl(request, /*batch_snapshot=*/nullptr, out);
}

spa::Status RecsysEngine::RecommendFallbackInto(
    const RecommendRequest& request, RecommendResponse* out,
    BatchPin* pin) const {
  SPA_CHECK(out != nullptr);
  std::shared_lock lock(serve_mutex_);
  SPA_RETURN_IF_ERROR(ValidateRequest(request));
  if (!fitted_) {
    return spa::Status::FailedPrecondition(
        "engine not fitted; call Fit() after assembling the stack");
  }
  if (pin != nullptr) {
    pin->fit_epoch = fit_epoch_;
    pin->matrix_version = matrix_->version();
    pin->sum_version = sums_ != nullptr ? sums_->snapshot()->version() : 0;
  }
  // Popularity-only: no component fan-out, no blend, no emotional
  // stage, no cache — the whole point is a serve that costs a ranked-
  // list walk. The ranking depends on the matrix version alone, so the
  // response is deterministic at the pin even though it is not
  // bitwise-equal to full serving (it is flagged `degraded`).
  CandidateQuery query;
  query.user = request.user;
  query.k = request.k;
  query.exclude_seen = request.exclude_seen;
  query.exclude_items =
      request.exclude_items.empty() ? nullptr : &request.exclude_items;
  query.candidate_items = request.candidate_items.has_value()
                              ? &*request.candidate_items
                              : nullptr;
  out->user = request.user;
  out->items.clear();
  out->explained = false;
  out->emotion_applied = false;
  out->degraded = true;
  const std::vector<Scored> ranked = fallback_pop_.RecommendCandidates(query);
  out->items.reserve(ranked.size());
  for (const Scored& scored : ranked) {
    RecommendedItem item;
    item.item = scored.item;
    item.score = scored.score;
    out->items.push_back(std::move(item));
  }
  return spa::Status::OK();
}

spa::Result<RecommendResponse> RecsysEngine::RecommendFallback(
    const RecommendRequest& request, BatchPin* pin) const {
  RecommendResponse response;
  spa::Status status = RecommendFallbackInto(request, &response, pin);
  if (!status.ok()) return status;
  return response;
}

void RecsysEngine::AdmitRequest(const RecommendRequest& request,
                                const sum::SumSnapshotPtr& batch_snapshot,
                                RequestContext* ctx,
                                RecommendResponse* hit_out) const {
  ctx->status = ValidateRequest(request);
  if (!ctx->status.ok()) {
    ctx->done = true;
    return;
  }
  if (!fitted_) {
    ctx->status = spa::Status::FailedPrecondition(
        "engine not fitted; call Fit() after assembling the stack");
    ctx->done = true;
    return;
  }

  // Pin the emotional context for the whole request: the caller's
  // override snapshot wins, then the batch-pinned view, then the
  // service's current head.
  sum::SumSnapshotPtr snapshot = request.emotion_override;
  const bool overridden = snapshot != nullptr;
  if (!overridden) {
    snapshot = batch_snapshot != nullptr
                   ? batch_snapshot
                   : (sums_ != nullptr ? sums_->snapshot() : nullptr);
  }

  if (snapshot != nullptr) {
    // GetOrNull, not Get: cold users (no SUM yet) are common, and the
    // NotFound status Get formats would be a per-request allocation.
    ctx->model = snapshot->GetOrNull(request.user);
    ctx->sum_user_version = snapshot->UserVersion(request.user);
  }
  ctx->snapshot = std::move(snapshot);

  ctx->cacheable = config_.response_cache_capacity > 0 && !overridden;
  if (ctx->cacheable) {
    // Every cacheable lookup is one access in the user frequency tier
    // (hit or miss — the tier measures demand, not cache behavior).
    // Writer-lane re-warm recomputes are synthetic and do not count.
    if (!rewarm_in_progress_) {
      user_freq_.Touch(static_cast<uint64_t>(request.user));
      MaybeDecayFrequencies();
    }
    ctx->fingerprint = FingerprintRequest(request);
    ItemTimer timer(profiler_, ProfilerItem::kStageCacheLookup);
    const bool hit = CacheLookupInto(ctx->fingerprint, request,
                                     ctx->sum_user_version, hit_out);
    timer.Stop();
    if (hit) ctx->done = true;
  }
}

spa::Status RecsysEngine::RecommendIntoImpl(
    const RecommendRequest& request,
    const sum::SumSnapshotPtr& batch_snapshot,
    RecommendResponse* out) const {
  ItemTimer request_timer(profiler_, ProfilerItem::kRequestServe);
  RequestContext ctx;
  AdmitRequest(request, batch_snapshot, &ctx, out);
  if (ctx.done) {
    request_timer.Stop();
    return ctx.status;
  }
  // Uncached: run the four stages on a pooled scratch, then copy the
  // response out (the scratch keeps its capacities for the next
  // request; the caller's `out` keeps its own).
  std::unique_ptr<ServeScratch> scratch = AcquireScratch();
  ServeState& state = scratch->state;
  state.Reset(request.explain);
  state.workspace = &scratch->ws;
  ServeCandidates(request, &state);
  ServeBlend(&state);
  ServeRerank(request, ctx.model, &state);
  ServeExplain(request, &state);
  if (ctx.cacheable) {
    CacheInsert(ctx.fingerprint, request, ctx.sum_user_version,
                state.response);
  }
  *out = state.response;
  ReleaseScratch(std::move(scratch));
  request_timer.Stop();
  return spa::Status::OK();
}

spa::Result<RecommendResponse> RecsysEngine::RecommendImpl(
    const RecommendRequest& request,
    const sum::SumSnapshotPtr& batch_snapshot) const {
  RecommendResponse response;
  spa::Status status =
      RecommendIntoImpl(request, batch_snapshot, &response);
  if (!status.ok()) return status;
  return response;
}

// ---- the staged serving dataflow -------------------------------------------
//
// `Serve` composes the four stages back-to-back — that IS the fused
// per-request path, so the staged batch executor below is
// byte-identical to it by construction: each stage performs the exact
// floating-point operations of the corresponding slice of the former
// monolithic body, in the same order, on per-request state.

void RecsysEngine::ServeCandidates(const RecommendRequest& request,
                                   ServeState* state) const {
  // Base candidates, overfetched so the emotional stage has room to
  // move items into the top k.
  state->query.user = request.user;
  state->query.k = request.k * config_.rerank_overfetch;
  state->query.exclude_seen = request.exclude_seen;
  state->query.exclude_items =
      request.exclude_items.empty() ? nullptr : &request.exclude_items;
  state->query.candidate_items = request.candidate_items.has_value()
                                     ? &*request.candidate_items
                                     : nullptr;
  state->query.workspace = state->workspace;
  ItemTimer timer(profiler_, ProfilerItem::kStageCandidateGen);
  std::vector<double> component_seconds;
  const bool per_component =
      profiler_.enabled(ProfilerItem::kCandidateComponent);
  hybrid_->FetchComponentCandidatesInto(
      state->query, &state->fetched,
      per_component ? &component_seconds : nullptr);
  timer.Stop();
  for (const double seconds : component_seconds) {
    profiler_.Record(ProfilerItem::kCandidateComponent, seconds);
  }
}

void RecsysEngine::ServeBlend(ServeState* state) const {
  ItemTimer timer(profiler_, ProfilerItem::kStageBlend);
  ItemTimer kernel_timer(profiler_,
                         ProfilerItem::kKernelScoreAccumulate);
  hybrid_->BlendFetchedInto(state->fetched,
                            /*track_contributions=*/state->explain,
                            state->workspace, &state->blended);
  kernel_timer.Stop();
  if (state->blended.size() > state->query.k) {
    state->blended.resize(state->query.k);
  }
  timer.Stop();
  // `fetched` is NOT cleared here: a pooled state keeps the component
  // lists' capacities so the next request's fetch allocates nothing.
}

void RecsysEngine::ServeRerank(const RecommendRequest& request,
                               const sum::SmartUserModel* model,
                               ServeState* state) const {
  ItemTimer timer(profiler_, ProfilerItem::kStageRerank);
  std::vector<HybridRecommender::Blended>& blended = state->blended;
  const bool apply_emotion =
      config_.emotion_enabled && model != nullptr && !blended.empty();
  state->apply_emotion = apply_emotion;

  state->response.user = request.user;
  state->response.explained = request.explain;
  state->response.emotion_applied = apply_emotion;
  state->response.degraded = false;  // full stack, by definition

  // Without the emotional stage scores are final and blended is
  // already sorted: drop the overfetch tail before building anything.
  if (!apply_emotion && blended.size() > request.k) {
    blended.resize(request.k);
  }

  // Re-score with the emotion blend (the formula is the reranker's —
  // one definition shared with EmotionAwareReranker::Rerank).
  using Ranked = ServeState::Ranked;
  double lo = 0.0, hi = 0.0;
  if (apply_emotion) {
    lo = hi = blended.front().score;
    for (const auto& b : blended) {
      lo = std::min(lo, b.score);
      hi = std::max(hi, b.score);
    }
  }
  ItemTimer score_timer(profiler_, ProfilerItem::kRerankScore);
  std::vector<Ranked>& ranked = state->ranked;
  ranked.reserve(blended.size());
  for (size_t i = 0; i < blended.size(); ++i) {
    Ranked r;
    r.idx = i;
    if (apply_emotion) {
      r.base_norm =
          EmotionAwareReranker::NormalizedBase(blended[i].score, lo, hi);
      r.alignment = reranker_.Alignment(*model, blended[i].item);
      r.score = reranker_.BlendScore(r.base_norm, r.alignment);
    } else {
      r.score = blended[i].score;
    }
    ranked.push_back(r);
  }
  score_timer.Stop();
  ItemTimer sort_timer(profiler_, ProfilerItem::kRerankSort);
  std::sort(ranked.begin(), ranked.end(),
            [&blended](const Ranked& a, const Ranked& b) {
              if (a.score != b.score) return a.score > b.score;
              return blended[a.idx].item < blended[b.idx].item;
            });
  if (ranked.size() > request.k) ranked.resize(request.k);
  sort_timer.Stop();
  timer.Stop();
}

void RecsysEngine::ServeExplain(const RecommendRequest& request,
                                ServeState* state) const {
  // Materialize the surviving top-k items (and their score breakdowns
  // when the request asked for an explanation).
  ItemTimer timer(profiler_, ProfilerItem::kStageExplain);
  const std::vector<HybridRecommender::Blended>& blended = state->blended;
  RecommendResponse& response = state->response;
  response.items.reserve(state->ranked.size());
  for (const ServeState::Ranked& r : state->ranked) {
    const HybridRecommender::Blended& b = blended[r.idx];
    RecommendedItem item;
    item.item = b.item;
    item.score = r.score;
    if (request.explain) {
      item.breakdown.base = b.score;
      item.breakdown.emotional_alignment = r.alignment;
      if (state->apply_emotion) {
        item.breakdown.base_share = reranker_.BlendScore(r.base_norm, 0.0);
        item.breakdown.emotion_delta = r.score - item.breakdown.base_share;
      } else {
        item.breakdown.base_share = b.score;
      }
      item.breakdown.components.reserve(hybrid_->component_count());
      for (size_t ci = 0; ci < hybrid_->component_count(); ++ci) {
        item.breakdown.components.push_back(
            {hybrid_->component_name(ci), hybrid_->component_weight(ci),
             b.contributions[ci]});
      }
    }
    response.items.push_back(std::move(item));
  }
  timer.Stop();
}

std::vector<spa::Result<RecommendResponse>> RecsysEngine::RecommendBatch(
    const std::vector<RecommendRequest>& requests, BatchPin* pin) {
  std::vector<spa::Result<RecommendResponse>> results(
      requests.size(),
      spa::Result<RecommendResponse>(
          spa::Status::Internal("request not served")));
  // An empty batch must not spawn the worker pool; it still pins (the
  // lock below) so `pin` reports a real consistency point.
  ThreadPool* pool = requests.empty() ? nullptr : EnsurePool();
  // One shared hold for the whole batch, on behalf of all workers: a
  // concurrent ApplyInteractions cannot interleave mid-batch, so the
  // matrix view is as mutually consistent as the SUM view. (Workers
  // must not re-acquire: a writer queued behind this hold would block
  // them under writer-priority locks while the batch waits on the
  // workers — deadlock.)
  std::shared_lock lock(serve_mutex_);
  // One snapshot for the whole batch: every request sees the same
  // emotional context (mutually consistent rankings) and the per-
  // request snapshot acquisition disappears from the hot path. Pinned
  // *inside* the lock hold so (matrix version, SUM version) is one
  // consistency point (see BatchPin).
  const sum::SumSnapshotPtr batch_snapshot =
      sums_ != nullptr ? sums_->snapshot() : nullptr;
  if (pin != nullptr) {
    pin->fit_epoch = fit_epoch_;
    pin->matrix_version =
        (fitted_ && matrix_ != nullptr) ? matrix_->version() : 0;
    pin->sum_version =
        batch_snapshot != nullptr ? batch_snapshot->version() : 0;
  }
  if (requests.empty()) return results;
  ParallelFor(pool, requests.size(),
              [this, &requests, &results, &batch_snapshot](size_t i) {
                results[i] = RecommendImpl(requests[i], batch_snapshot);
              });
  return results;
}

std::vector<spa::Result<RecommendResponse>>
RecsysEngine::RecommendBatchInline(
    const std::vector<RecommendRequest>& requests, BatchPin* pin) const {
  std::vector<spa::Result<RecommendResponse>> results;
  results.reserve(requests.size());
  std::shared_lock lock(serve_mutex_);
  const sum::SumSnapshotPtr batch_snapshot =
      sums_ != nullptr ? sums_->snapshot() : nullptr;
  if (pin != nullptr) {
    pin->fit_epoch = fit_epoch_;
    pin->matrix_version =
        (fitted_ && matrix_ != nullptr) ? matrix_->version() : 0;
    pin->sum_version =
        batch_snapshot != nullptr ? batch_snapshot->version() : 0;
  }
  for (const RecommendRequest& request : requests) {
    results.push_back(RecommendImpl(request, batch_snapshot));
  }
  return results;
}

std::vector<spa::Result<RecommendResponse>>
RecsysEngine::RecommendBatchStaged(
    const std::vector<RecommendRequest>& requests, BatchPin* pin) const {
  std::vector<spa::Result<RecommendResponse>> results(
      requests.size(),
      spa::Result<RecommendResponse>(
          spa::Status::Internal("request not served")));
  // Same consistency discipline as RecommendBatchInline: one shared
  // hold and one pinned snapshot for the whole micro-batch, so the
  // BatchPin means the same thing on both paths.
  std::shared_lock lock(serve_mutex_);
  const sum::SumSnapshotPtr batch_snapshot =
      sums_ != nullptr ? sums_->snapshot() : nullptr;
  if (pin != nullptr) {
    pin->fit_epoch = fit_epoch_;
    pin->matrix_version =
        (fitted_ && matrix_ != nullptr) ? matrix_->version() : 0;
    pin->sum_version =
        batch_snapshot != nullptr ? batch_snapshot->version() : 0;
  }
  if (requests.empty()) return results;

  ItemTimer batch_timer(profiler_, ProfilerItem::kBatchServe);
  const size_t n = requests.size();

  // Stage-major execution: every request clears stage N before any
  // request enters stage N+1. A request that failed validation or hit
  // the cache at admission skips the serve stages. Note the one
  // intended difference from the fused path: duplicate requests in
  // one batch each compute (all admissions probe the cache before any
  // insert) — deterministically the same bytes, so only the hit/miss
  // counters can differ, never a response.
  std::vector<RequestContext> contexts(n);
  std::vector<RecommendResponse> hits(n);
  for (size_t i = 0; i < n; ++i) {
    AdmitRequest(requests[i], batch_snapshot, &contexts[i], &hits[i]);
  }
  // One pooled workspace serves the whole micro-batch: the stages run
  // request-sequentially, and the accumulator is fully reset by each
  // stage's Begin, so sharing it never changes a bit.
  std::unique_ptr<ServeScratch> scratch = AcquireScratch();
  std::vector<ServeState> states(n);
  for (size_t i = 0; i < n; ++i) {
    if (contexts[i].done) continue;
    states[i].explain = requests[i].explain;
    states[i].workspace = &scratch->ws;
    ServeCandidates(requests[i], &states[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (contexts[i].done) continue;
    ServeBlend(&states[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (contexts[i].done) continue;
    ServeRerank(requests[i], contexts[i].model, &states[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (contexts[i].done) continue;
    ServeExplain(requests[i], &states[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (contexts[i].done) {
      if (contexts[i].status.ok()) {
        results[i] = std::move(hits[i]);
      } else {
        results[i] = contexts[i].status;
      }
      continue;
    }
    if (contexts[i].cacheable) {
      CacheInsert(contexts[i].fingerprint, requests[i],
                  contexts[i].sum_user_version, states[i].response);
    }
    results[i] = std::move(states[i].response);
  }
  ReleaseScratch(std::move(scratch));
  batch_timer.Stop();
  return results;
}

size_t RecsysEngine::batch_thread_count() {
  return EnsurePool()->thread_count();
}

void RecsysEngine::set_batch_threads(size_t threads) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  config_.batch_threads = threads;
  pool_.reset();
}

ThreadPool* RecsysEngine::EnsurePool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(config_.batch_threads);
  }
  return pool_.get();
}

}  // namespace spa::recsys
