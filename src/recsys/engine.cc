#include "recsys/engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace spa::recsys {

RecsysEngine::RecsysEngine(EngineConfig config)
    : config_(config),
      hybrid_(std::make_unique<HybridRecommender>(
          HybridConfig{config.component_depth})),
      reranker_(config.rerank) {
  SPA_CHECK(config_.rerank_overfetch > 0);
}

void RecsysEngine::AddComponent(std::unique_ptr<Recommender> component,
                                double weight) {
  hybrid_->AddComponent(std::move(component), weight);
  fitted_ = false;
}

void RecsysEngine::SetItemEmotionProfile(ItemId item,
                                         const EmotionProfile& profile) {
  reranker_.SetItemProfile(item, profile);
}

spa::Status RecsysEngine::Fit(const InteractionMatrix& matrix) {
  SPA_RETURN_IF_ERROR(hybrid_->Fit(matrix));
  fitted_ = true;
  return spa::Status::OK();
}

spa::Result<RecommendResponse> RecsysEngine::Recommend(
    const RecommendRequest& request) const {
  SPA_RETURN_IF_ERROR(ValidateRequest(request));
  if (!fitted_) {
    return spa::Status::FailedPrecondition(
        "engine not fitted; call Fit() after assembling the stack");
  }

  // Base candidates: blended hybrid scores, overfetched so the
  // emotional stage has room to move items into the top k.
  CandidateQuery query;
  query.user = request.user;
  query.k = request.k * config_.rerank_overfetch;
  query.exclude_seen = request.exclude_seen;
  query.exclude_items =
      request.exclude_items.empty() ? nullptr : &request.exclude_items;
  query.candidate_items = request.candidate_items.has_value()
                              ? &*request.candidate_items
                              : nullptr;
  std::vector<HybridRecommender::Blended> blended =
      hybrid_->BlendCandidates(query,
                               /*track_contributions=*/request.explain);
  if (blended.size() > query.k) blended.resize(query.k);

  // Emotional context: the request's snapshot override wins; otherwise
  // look the user up in the SUM store.
  const sum::SmartUserModel* model = request.emotion_override;
  if (model == nullptr && sums_ != nullptr) {
    const auto found = sums_->Get(request.user);
    if (found.ok()) model = found.value();
  }
  const bool apply_emotion =
      config_.emotion_enabled && model != nullptr && !blended.empty();

  RecommendResponse response;
  response.user = request.user;
  response.explained = request.explain;
  response.emotion_applied = apply_emotion;

  // Without the emotional stage scores are final and blended is
  // already sorted: drop the overfetch tail before building anything.
  if (!apply_emotion && blended.size() > request.k) {
    blended.resize(request.k);
  }

  // Re-score with the emotion blend (the formula is the reranker's —
  // one definition shared with EmotionAwareReranker::Rerank), sort,
  // and only then materialize the surviving top-k items.
  struct Ranked {
    double score = 0.0;
    double base_norm = 0.0;
    double alignment = 0.0;
    size_t idx = 0;
  };
  double lo = 0.0, hi = 0.0;
  if (apply_emotion) {
    lo = hi = blended.front().score;
    for (const auto& b : blended) {
      lo = std::min(lo, b.score);
      hi = std::max(hi, b.score);
    }
  }
  std::vector<Ranked> ranked;
  ranked.reserve(blended.size());
  for (size_t i = 0; i < blended.size(); ++i) {
    Ranked r;
    r.idx = i;
    if (apply_emotion) {
      r.base_norm =
          EmotionAwareReranker::NormalizedBase(blended[i].score, lo, hi);
      r.alignment = reranker_.Alignment(*model, blended[i].item);
      r.score = reranker_.BlendScore(r.base_norm, r.alignment);
    } else {
      r.score = blended[i].score;
    }
    ranked.push_back(r);
  }
  std::sort(ranked.begin(), ranked.end(),
            [&blended](const Ranked& a, const Ranked& b) {
              if (a.score != b.score) return a.score > b.score;
              return blended[a.idx].item < blended[b.idx].item;
            });
  if (ranked.size() > request.k) ranked.resize(request.k);

  response.items.reserve(ranked.size());
  for (const Ranked& r : ranked) {
    const HybridRecommender::Blended& b = blended[r.idx];
    RecommendedItem item;
    item.item = b.item;
    item.score = r.score;
    if (request.explain) {
      item.breakdown.base = b.score;
      item.breakdown.emotional_alignment = r.alignment;
      if (apply_emotion) {
        item.breakdown.base_share = reranker_.BlendScore(r.base_norm, 0.0);
        item.breakdown.emotion_delta = r.score - item.breakdown.base_share;
      } else {
        item.breakdown.base_share = b.score;
      }
      item.breakdown.components.reserve(hybrid_->component_count());
      for (size_t ci = 0; ci < hybrid_->component_count(); ++ci) {
        item.breakdown.components.push_back(
            {hybrid_->component_name(ci), hybrid_->component_weight(ci),
             b.contributions[ci]});
      }
    }
    response.items.push_back(std::move(item));
  }
  return response;
}

std::vector<spa::Result<RecommendResponse>> RecsysEngine::RecommendBatch(
    const std::vector<RecommendRequest>& requests) {
  std::vector<spa::Result<RecommendResponse>> results(
      requests.size(),
      spa::Result<RecommendResponse>(
          spa::Status::Internal("request not served")));
  if (requests.empty()) return results;
  ThreadPool* pool = EnsurePool();
  ParallelFor(pool, requests.size(),
              [this, &requests, &results](size_t i) {
                results[i] = Recommend(requests[i]);
              });
  return results;
}

size_t RecsysEngine::batch_thread_count() {
  return EnsurePool()->thread_count();
}

void RecsysEngine::set_batch_threads(size_t threads) {
  config_.batch_threads = threads;
  pool_.reset();
}

ThreadPool* RecsysEngine::EnsurePool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(config_.batch_threads);
  }
  return pool_.get();
}

}  // namespace spa::recsys
