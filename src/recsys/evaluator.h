#ifndef SPA_RECSYS_EVALUATOR_H_
#define SPA_RECSYS_EVALUATOR_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "recsys/recommender.h"

/// \file
/// Offline top-K evaluation: precision/recall/NDCG/MAP/hit-rate against
/// held-out interactions.

namespace spa::recsys {

/// \brief Held-out relevance sets per user.
using RelevanceSets =
    std::unordered_map<UserId, std::unordered_set<ItemId>>;

/// \brief Aggregate top-K metrics over all evaluated users.
struct TopKMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double ndcg = 0.0;
  double map = 0.0;
  double hit_rate = 0.0;
  size_t users_evaluated = 0;
};

/// Evaluates `recommender` (already fitted on the training matrix)
/// against held-out sets at cutoff k. Users with empty held-out sets
/// are skipped.
TopKMetrics EvaluateTopK(const Recommender& recommender,
                         const RelevanceSets& held_out, size_t k);

}  // namespace spa::recsys

#endif  // SPA_RECSYS_EVALUATOR_H_
