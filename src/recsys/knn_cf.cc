#include "recsys/knn_cf.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "recsys/kernels.h"

namespace spa::recsys {

namespace {

// The ScaleGather kernels below walk the `double` member of 16-byte
// (id, weight) records at stride 2 — pin the layouts they assume.
static_assert(sizeof(std::pair<ItemId, double>) == 2 * sizeof(double));
static_assert(sizeof(std::pair<UserId, double>) == 2 * sizeof(double));
static_assert(sizeof(SimilarityIndex<ItemId>::Neighbor) ==
              2 * sizeof(double));

SimilarityIndexConfig IndexConfigFrom(const KnnConfig& config) {
  SimilarityIndexConfig out;
  out.top_n = config.neighbors;
  out.min_similarity = config.min_similarity;
  out.build_threads = config.index_build_threads;
  out.full_rebuild_fraction = config.refresh_full_rebuild_fraction;
  return out;
}

}  // namespace

UserKnnRecommender::UserKnnRecommender(KnnConfig config)
    : config_(config) {}

spa::Status UserKnnRecommender::Fit(const InteractionMatrix& matrix) {
  matrix_ = &matrix;
  index_.reset();
  if (config_.use_index) {
    index_ = std::make_unique<SimilarityIndex<UserId>>(
        BuildUserSimilarityIndex(matrix, IndexConfigFrom(config_)));
  }
  return spa::Status::OK();
}

const SimilarityIndexStats* UserKnnRecommender::index_stats() const {
  return index_ == nullptr ? nullptr : &index_->stats();
}

spa::Status UserKnnRecommender::Refresh(RefreshOutcome* outcome) {
  if (matrix_ == nullptr) {
    return spa::Status::FailedPrecondition(
        "UserKNN not fitted; nothing to refresh");
  }
  if (index_ == nullptr) {
    // Lazy mode recomputes similarities from the live matrix: any
    // user sharing an item with an updated user re-ranks differently,
    // and without an index there is no cheap way to bound that set.
    outcome->all_users = true;
    return spa::Status::OK();
  }
  auto report = RefreshUserSimilarityIndex(index_.get(), *matrix_);
  outcome->refreshed_index = true;
  outcome->full_rebuild = report.full_rebuild;
  outcome->rows_refreshed =
      report.full_rebuild ? index_->stats().rows : report.rows.size();
  outcome->seconds = report.seconds;
  outcome->all_users = report.full_rebuild;
  if (!report.full_rebuild) {
    outcome->affected_users.insert(outcome->affected_users.end(),
                                   report.rows.begin(),
                                   report.rows.end());
  }
  return spa::Status::OK();
}

double UserKnnRecommender::Similarity(UserId a, UserId b) const {
  return SparseCosine(matrix_->ItemsOf(a), matrix_->ItemsOf(b),
                      matrix_->UserNormSquared(a),
                      matrix_->UserNormSquared(b));
}

std::vector<Scored> UserKnnRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  RecommendCandidatesInto(query, &out);
  return out;
}

void UserKnnRecommender::RecommendCandidatesInto(
    const CandidateQuery& query, std::vector<Scored>* out) const {
  out->clear();
  if (matrix_ == nullptr) return;
  const UserId user = query.user;

  // Score through the pooled workspace: neighbor weights are gathered
  // and scaled by the kernel, then folded into the epoch-cleared
  // accumulator. Admission is checked once per distinct item at
  // harvest — filtering other items never changes an admitted item's
  // += sequence, so the scores are bitwise-identical to the old
  // filter-then-accumulate map.
  kernels::ScoreWorkspace& ws = kernels::ResolveWorkspace(query.workspace);
  kernels::ScoreAccumulator& acc = ws.acc;
  acc.Begin(/*expected_items=*/64);
  auto accumulate = [&](UserId other, double sim) {
    const auto& items = matrix_->ItemsOf(other);
    const size_t n = items.size();
    if (n == 0) return;
    double* products = ws.EnsureProducts(n);
    kernels::ScaleGather(&items[0].second, 2, n, sim, products);
    for (size_t i = 0; i < n; ++i) acc.Add(items[i].first, products[i]);
  };

  if (config_.use_index) {
    SPA_CHECK_MSG(
        index_->built_version() == matrix_->version(),
        "stale UserKNN similarity index: the InteractionMatrix was "
        "mutated after Fit; Refresh() or refit before serving");
    for (const auto& neighbor : index_->NeighborsOf(user)) {
      accumulate(neighbor.id, neighbor.similarity);
    }
  } else {
    // Candidate neighbors: users sharing at least one item.
    const auto& own_items = matrix_->ItemsOf(user);
    std::unordered_map<UserId, double> similarity;
    for (const auto& [item, w] : own_items) {
      for (const auto& [other, w2] : matrix_->UsersOf(item)) {
        if (other != user) similarity.emplace(other, 0.0);
      }
    }
    for (auto& [other, sim] : similarity) {
      sim = Similarity(user, other);
    }

    // Keep the top-k neighbors.
    std::vector<std::pair<UserId, double>> neighbors(similarity.begin(),
                                                     similarity.end());
    std::sort(neighbors.begin(), neighbors.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (neighbors.size() > config_.neighbors) {
      neighbors.resize(config_.neighbors);
    }
    for (const auto& [other, sim] : neighbors) {
      if (sim < config_.min_similarity) continue;
      accumulate(other, sim);
    }
  }

  const size_t scored = acc.size();
  out->reserve(scored);
  for (size_t i = 0; i < scored; ++i) {
    if (query.Admits(matrix_, acc.item(i))) {
      out->push_back({acc.item(i), acc.score(i)});
    }
  }
  SortAndTruncate(out, query.k);
}

ItemKnnRecommender::ItemKnnRecommender(KnnConfig config)
    : config_(config) {}

spa::Status ItemKnnRecommender::Fit(const InteractionMatrix& matrix) {
  matrix_ = &matrix;
  index_.reset();
  if (config_.use_index) {
    index_ = std::make_unique<SimilarityIndex<ItemId>>(
        BuildItemSimilarityIndex(matrix, IndexConfigFrom(config_)));
  }
  return spa::Status::OK();
}

const SimilarityIndexStats* ItemKnnRecommender::index_stats() const {
  return index_ == nullptr ? nullptr : &index_->stats();
}

spa::Status ItemKnnRecommender::Refresh(RefreshOutcome* outcome) {
  if (matrix_ == nullptr) {
    return spa::Status::FailedPrecondition(
        "ItemKNN not fitted; nothing to refresh");
  }
  if (index_ == nullptr) {
    outcome->all_users = true;
    return spa::Status::OK();
  }
  auto report = RefreshItemSimilarityIndex(index_.get(), *matrix_);
  outcome->refreshed_index = true;
  outcome->full_rebuild = report.full_rebuild;
  outcome->rows_refreshed =
      report.full_rebuild ? index_->stats().rows : report.rows.size();
  outcome->seconds = report.seconds;
  outcome->all_users = report.full_rebuild;
  if (!report.full_rebuild) {
    // A user's ItemKNN scores sum over the neighbor rows of their own
    // items: everyone holding a rebuilt item row may re-rank.
    for (const ItemId item : report.rows) {
      for (const auto& [user, w] : matrix_->UsersOf(item)) {
        outcome->affected_users.push_back(user);
      }
    }
  }
  return spa::Status::OK();
}

double ItemKnnRecommender::Similarity(ItemId a, ItemId b) const {
  return SparseCosine(matrix_->UsersOf(a), matrix_->UsersOf(b),
                      matrix_->ItemNormSquared(a),
                      matrix_->ItemNormSquared(b));
}

std::vector<Scored> ItemKnnRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  RecommendCandidatesInto(query, &out);
  return out;
}

void ItemKnnRecommender::RecommendCandidatesInto(
    const CandidateQuery& query, std::vector<Scored>* out) const {
  out->clear();
  if (matrix_ == nullptr) return;
  const UserId user = query.user;
  const auto& own_items = matrix_->ItemsOf(user);

  // Same workspace discipline as UserKNN: kernel-scaled similarity
  // walks into the pooled accumulator, admission hoisted to harvest.
  kernels::ScoreWorkspace& ws = kernels::ResolveWorkspace(query.workspace);
  kernels::ScoreAccumulator& acc = ws.acc;
  acc.Begin(/*expected_items=*/64);
  if (config_.use_index) {
    SPA_CHECK_MSG(
        index_->built_version() == matrix_->version(),
        "stale ItemKNN similarity index: the InteractionMatrix was "
        "mutated after Fit; Refresh() or refit before serving");
    for (const auto& [item, weight] : own_items) {
      const auto& neighbors = index_->NeighborsOf(item);
      const size_t n = neighbors.size();
      if (n == 0) continue;
      double* products = ws.EnsureProducts(n);
      kernels::ScaleGather(&neighbors[0].similarity, 2, n, weight,
                           products);
      for (size_t i = 0; i < n; ++i) {
        acc.Add(neighbors[i].id, products[i]);
      }
    }
  } else {
    for (const auto& [item, weight] : own_items) {
      // The neighborhood of `item`, query-independent — identical to
      // what the index stores for this row.
      std::unordered_set<ItemId> candidates;
      for (const auto& [other_user, w2] : matrix_->UsersOf(item)) {
        for (const auto& [candidate, w3] :
             matrix_->ItemsOf(other_user)) {
          if (candidate != item) candidates.insert(candidate);
        }
      }
      std::vector<std::pair<ItemId, double>> sims;
      sims.reserve(candidates.size());
      for (const ItemId candidate : candidates) {
        const double sim = Similarity(item, candidate);
        if (sim >= config_.min_similarity) {
          sims.emplace_back(candidate, sim);
        }
      }
      std::sort(sims.begin(), sims.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      if (sims.size() > config_.neighbors) {
        sims.resize(config_.neighbors);
      }
      const size_t n = sims.size();
      if (n == 0) continue;
      double* products = ws.EnsureProducts(n);
      kernels::ScaleGather(&sims[0].second, 2, n, weight, products);
      for (size_t i = 0; i < n; ++i) {
        acc.Add(sims[i].first, products[i]);
      }
    }
  }

  const size_t scored = acc.size();
  out->reserve(scored);
  for (size_t i = 0; i < scored; ++i) {
    if (query.Admits(matrix_, acc.item(i))) {
      out->push_back({acc.item(i), acc.score(i)});
    }
  }
  SortAndTruncate(out, query.k);
}

}  // namespace spa::recsys
