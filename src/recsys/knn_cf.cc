#include "recsys/knn_cf.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace spa::recsys {

namespace {

SimilarityIndexConfig IndexConfigFrom(const KnnConfig& config) {
  SimilarityIndexConfig out;
  out.top_n = config.neighbors;
  out.min_similarity = config.min_similarity;
  out.build_threads = config.index_build_threads;
  out.full_rebuild_fraction = config.refresh_full_rebuild_fraction;
  return out;
}

}  // namespace

UserKnnRecommender::UserKnnRecommender(KnnConfig config)
    : config_(config) {}

spa::Status UserKnnRecommender::Fit(const InteractionMatrix& matrix) {
  matrix_ = &matrix;
  index_.reset();
  if (config_.use_index) {
    index_ = std::make_unique<SimilarityIndex<UserId>>(
        BuildUserSimilarityIndex(matrix, IndexConfigFrom(config_)));
  }
  return spa::Status::OK();
}

const SimilarityIndexStats* UserKnnRecommender::index_stats() const {
  return index_ == nullptr ? nullptr : &index_->stats();
}

spa::Status UserKnnRecommender::Refresh(RefreshOutcome* outcome) {
  if (matrix_ == nullptr) {
    return spa::Status::FailedPrecondition(
        "UserKNN not fitted; nothing to refresh");
  }
  if (index_ == nullptr) {
    // Lazy mode recomputes similarities from the live matrix: any
    // user sharing an item with an updated user re-ranks differently,
    // and without an index there is no cheap way to bound that set.
    outcome->all_users = true;
    return spa::Status::OK();
  }
  auto report = RefreshUserSimilarityIndex(index_.get(), *matrix_);
  outcome->refreshed_index = true;
  outcome->full_rebuild = report.full_rebuild;
  outcome->rows_refreshed =
      report.full_rebuild ? index_->stats().rows : report.rows.size();
  outcome->seconds = report.seconds;
  outcome->all_users = report.full_rebuild;
  if (!report.full_rebuild) {
    outcome->affected_users.insert(outcome->affected_users.end(),
                                   report.rows.begin(),
                                   report.rows.end());
  }
  return spa::Status::OK();
}

double UserKnnRecommender::Similarity(UserId a, UserId b) const {
  return SparseCosine(matrix_->ItemsOf(a), matrix_->ItemsOf(b),
                      matrix_->UserNormSquared(a),
                      matrix_->UserNormSquared(b));
}

std::vector<Scored> UserKnnRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  if (matrix_ == nullptr) return out;
  const UserId user = query.user;

  std::unordered_map<ItemId, double> scores;
  auto accumulate = [&](UserId other, double sim) {
    for (const auto& [item, w] : matrix_->ItemsOf(other)) {
      if (query.Admits(matrix_, item)) scores[item] += sim * w;
    }
  };

  if (config_.use_index) {
    SPA_CHECK_MSG(
        index_->built_version() == matrix_->version(),
        "stale UserKNN similarity index: the InteractionMatrix was "
        "mutated after Fit; Refresh() or refit before serving");
    for (const auto& neighbor : index_->NeighborsOf(user)) {
      accumulate(neighbor.id, neighbor.similarity);
    }
  } else {
    // Candidate neighbors: users sharing at least one item.
    const auto& own_items = matrix_->ItemsOf(user);
    std::unordered_map<UserId, double> similarity;
    for (const auto& [item, w] : own_items) {
      for (const auto& [other, w2] : matrix_->UsersOf(item)) {
        if (other != user) similarity.emplace(other, 0.0);
      }
    }
    for (auto& [other, sim] : similarity) {
      sim = Similarity(user, other);
    }

    // Keep the top-k neighbors.
    std::vector<std::pair<UserId, double>> neighbors(similarity.begin(),
                                                     similarity.end());
    std::sort(neighbors.begin(), neighbors.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (neighbors.size() > config_.neighbors) {
      neighbors.resize(config_.neighbors);
    }
    for (const auto& [other, sim] : neighbors) {
      if (sim < config_.min_similarity) continue;
      accumulate(other, sim);
    }
  }

  out.reserve(scores.size());
  for (const auto& [item, score] : scores) out.push_back({item, score});
  SortAndTruncate(&out, query.k);
  return out;
}

ItemKnnRecommender::ItemKnnRecommender(KnnConfig config)
    : config_(config) {}

spa::Status ItemKnnRecommender::Fit(const InteractionMatrix& matrix) {
  matrix_ = &matrix;
  index_.reset();
  if (config_.use_index) {
    index_ = std::make_unique<SimilarityIndex<ItemId>>(
        BuildItemSimilarityIndex(matrix, IndexConfigFrom(config_)));
  }
  return spa::Status::OK();
}

const SimilarityIndexStats* ItemKnnRecommender::index_stats() const {
  return index_ == nullptr ? nullptr : &index_->stats();
}

spa::Status ItemKnnRecommender::Refresh(RefreshOutcome* outcome) {
  if (matrix_ == nullptr) {
    return spa::Status::FailedPrecondition(
        "ItemKNN not fitted; nothing to refresh");
  }
  if (index_ == nullptr) {
    outcome->all_users = true;
    return spa::Status::OK();
  }
  auto report = RefreshItemSimilarityIndex(index_.get(), *matrix_);
  outcome->refreshed_index = true;
  outcome->full_rebuild = report.full_rebuild;
  outcome->rows_refreshed =
      report.full_rebuild ? index_->stats().rows : report.rows.size();
  outcome->seconds = report.seconds;
  outcome->all_users = report.full_rebuild;
  if (!report.full_rebuild) {
    // A user's ItemKNN scores sum over the neighbor rows of their own
    // items: everyone holding a rebuilt item row may re-rank.
    for (const ItemId item : report.rows) {
      for (const auto& [user, w] : matrix_->UsersOf(item)) {
        outcome->affected_users.push_back(user);
      }
    }
  }
  return spa::Status::OK();
}

double ItemKnnRecommender::Similarity(ItemId a, ItemId b) const {
  return SparseCosine(matrix_->UsersOf(a), matrix_->UsersOf(b),
                      matrix_->ItemNormSquared(a),
                      matrix_->ItemNormSquared(b));
}

std::vector<Scored> ItemKnnRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  if (matrix_ == nullptr) return out;
  const UserId user = query.user;
  const auto& own_items = matrix_->ItemsOf(user);

  std::unordered_map<ItemId, double> scores;
  if (config_.use_index) {
    SPA_CHECK_MSG(
        index_->built_version() == matrix_->version(),
        "stale ItemKNN similarity index: the InteractionMatrix was "
        "mutated after Fit; Refresh() or refit before serving");
    for (const auto& [item, weight] : own_items) {
      for (const auto& neighbor : index_->NeighborsOf(item)) {
        if (query.Admits(matrix_, neighbor.id)) {
          scores[neighbor.id] += neighbor.similarity * weight;
        }
      }
    }
  } else {
    for (const auto& [item, weight] : own_items) {
      // The neighborhood of `item`, query-independent — identical to
      // what the index stores for this row.
      std::unordered_set<ItemId> candidates;
      for (const auto& [other_user, w2] : matrix_->UsersOf(item)) {
        for (const auto& [candidate, w3] :
             matrix_->ItemsOf(other_user)) {
          if (candidate != item) candidates.insert(candidate);
        }
      }
      std::vector<std::pair<ItemId, double>> sims;
      sims.reserve(candidates.size());
      for (const ItemId candidate : candidates) {
        const double sim = Similarity(item, candidate);
        if (sim >= config_.min_similarity) {
          sims.emplace_back(candidate, sim);
        }
      }
      std::sort(sims.begin(), sims.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      if (sims.size() > config_.neighbors) {
        sims.resize(config_.neighbors);
      }
      for (const auto& [candidate, sim] : sims) {
        if (query.Admits(matrix_, candidate)) {
          scores[candidate] += sim * weight;
        }
      }
    }
  }

  out.reserve(scores.size());
  for (const auto& [item, score] : scores) out.push_back({item, score});
  SortAndTruncate(&out, query.k);
  return out;
}

}  // namespace spa::recsys
